#!/usr/bin/env bash
# Lint a Prometheus text-exposition (format 0.0.4) payload: every line
# must be a well-formed # HELP / # TYPE comment or a sample, every
# sample's family must carry a # TYPE declaration (histogram series
# resolve through their _bucket/_sum/_count suffixes), and the payload
# must contain at least one sample. Exits non-zero listing every
# offending line.
#
# Usage: promlint.sh <file>     (or pipe the payload on stdin)
set -euo pipefail

awk '
  function fail(msg) { printf "promlint: line %d: %s: %s\n", NR, msg, $0; bad = 1 }
  /^$/ { next }
  /^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* / { next }
  /^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram|summary|untyped)$/ {
    typed[$3] = 1; next
  }
  /^#/ { fail("malformed comment (only # HELP and # TYPE are allowed)"); next }
  {
    if ($0 !~ /^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (-?([0-9]*\.)?[0-9]+([eE][+-]?[0-9]+)?|[+-]?Inf|NaN)$/) {
      fail("malformed sample"); next
    }
    samples++
    name = $1; sub(/\{.*/, "", name)
    base = name; sub(/_(bucket|sum|count)$/, "", base)
    if (!(name in typed) && !(base in typed)) fail("sample without a # TYPE for its family")
  }
  END {
    if (!samples) { print "promlint: no samples found"; bad = 1 }
    exit bad
  }
' "${1:--}"
