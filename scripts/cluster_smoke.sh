#!/usr/bin/env bash
# End-to-end smoke test of the sharded serving tier (run by CI, runnable
# locally): snapshot three graphs, place them onto a 3-replica cluster
# with ccring (owner-only, plus one graph replicated to its ring
# successor), serve each shard's snapshots with a multi-graph ccspd, and
# assert that cluster-routed answers equal single-engine answers for
# every request kind - including after one replica is SIGKILLed, where
# the replicated graph fails over and the dead replica's exclusive
# graphs return typed "unavailable" errors.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pids=()
cleanup() {
  for p in "${pids[@]:-}"; do kill -9 "$p" 2>/dev/null || true; done
  rm -rf "$tmp"
}
trap cleanup EXIT

members="http://127.0.0.1:9161,http://127.0.0.1:9162,http://127.0.0.1:9163"
graphs="alpha beta gamma delta"

go build -o "$tmp/ccsp" ./cmd/ccsp
go build -o "$tmp/ccspd" ./cmd/ccspd
go build -o "$tmp/ccring" ./cmd/ccring

echo "== build one snapshot per graph (distinct sizes and weights)"
awk 'BEGIN { n=8;  for (v=0; v<n; v++) { print v, (v+1)%n, 1+v%5 }; print 0,4,9; print 1,5,2 }' > "$tmp/alpha.txt"
awk 'BEGIN { n=10; for (v=0; v<n; v++) { print v, (v+1)%n, 2+v%3 }; print 0,5,1; print 2,7,4 }' > "$tmp/beta.txt"
awk 'BEGIN { n=12; for (v=0; v<n; v++) { print v, (v+1)%n, 1+v%7 }; print 0,6,3; print 3,9,2 }' > "$tmp/gamma.txt"
awk 'BEGIN { n=9;  for (v=0; v<n; v++) { print v, (v+1)%n, 3 };      print 0,4,1; print 2,6,5 }' > "$tmp/delta.txt"
for g in $graphs; do
  "$tmp/ccsp" -graph "$tmp/$g.txt" -save "$tmp/$g.snap" -algo diameter -quiet > /dev/null
done

echo "== place graphs with ccring (alpha gets a failover copy on its successor)"
"$tmp/ccring" -members "$members" $graphs | tee "$tmp/placement.txt"
mkdir -p "$tmp/shard1" "$tmp/shard2" "$tmp/shard3"
shard_dir() {
  case "$1" in
    *9161) echo "$tmp/shard1" ;;
    *9162) echo "$tmp/shard2" ;;
    *9163) echo "$tmp/shard3" ;;
    *) echo "unknown member $1" >&2; exit 1 ;;
  esac
}
while read -r g owner; do
  cp "$tmp/$g.snap" "$(shard_dir "$owner")/$g.snap"
done < "$tmp/placement.txt"
# alpha's owner and first successor both hold it: k=2 redundancy.
read -r _ alpha_owner alpha_succ < <("$tmp/ccring" -members "$members" -succ 2 alpha)
cp "$tmp/alpha.snap" "$(shard_dir "$alpha_succ")/alpha.snap"

echo "== start the 3 replicas (multi-graph, -graphs dir)"
i=1
for port in 9161 9162 9163; do
  "$tmp/ccspd" -graphs "$tmp/shard$i" -addr "127.0.0.1:$port" &
  pids+=($!)
  i=$((i+1))
done
for port in 9161 9162 9163; do
  for _ in $(seq 50); do
    curl -fs "http://127.0.0.1:$port/readyz" >/dev/null 2>&1 && break
    sleep 0.2
  done
  curl -fs "http://127.0.0.1:$port/readyz" | grep -q '"ready": true'
done
echo "all replicas ready"

echo "== /metrics exposition parses on every replica"
for port in 9161 9162 9163; do
  curl -fs "http://127.0.0.1:$port/metrics" > "$tmp/metrics.$port.txt"
  ./scripts/promlint.sh "$tmp/metrics.$port.txt"
  grep -q '^ccspd_ready 1$' "$tmp/metrics.$port.txt"
  grep -q '^ccspd_requests_total ' "$tmp/metrics.$port.txt"
done
echo "replica metrics ok (3 replicas linted)"

# Every request kind, answered three ways per graph: the warm local
# engine (ccsp -load -batch → Engine.Batch), the owner daemon directly
# (-server -graphid), and the routed cluster (-cluster -graphid). All
# three outputs must match byte for byte (modulo mode headers/footers).
cat > "$tmp/q.txt" <<'EOF'
mssp 0,2
sssp 1
apsp
apsp3
distance 0 5
diameter
knearest 2
sourcedetect 0,3 4 2
EOF
strip() { grep -v '^preprocess\|^  \|^batch:\|^saved engine' "$1"; }

echo "== cluster answers == owner answers == local engine answers, all kinds"
for g in $graphs; do
  owner=$(awk -v g="$g" '$1 == g { print $2 }' "$tmp/placement.txt")
  "$tmp/ccsp" -load "$tmp/$g.snap" -batch "$tmp/q.txt" > "$tmp/$g.local.out"
  "$tmp/ccsp" -server "$owner" -graphid "$g" -batch "$tmp/q.txt" > "$tmp/$g.owner.out"
  "$tmp/ccsp" -cluster "$members" -graphid "$g" -batch "$tmp/q.txt" > "$tmp/$g.cluster.out"
  strip "$tmp/$g.local.out"   > "$tmp/$g.local.cmp"
  strip "$tmp/$g.owner.out"   > "$tmp/$g.owner.cmp"
  strip "$tmp/$g.cluster.out" > "$tmp/$g.cluster.cmp"
  if ! diff "$tmp/$g.local.cmp" "$tmp/$g.cluster.cmp"; then
    echo "graph $g: cluster answers differ from the local engine"
    exit 1
  fi
  if ! diff "$tmp/$g.owner.cmp" "$tmp/$g.cluster.cmp"; then
    echo "graph $g: cluster answers differ from the owner daemon"
    exit 1
  fi
done
echo "3-way agreement ok ($(echo $graphs | wc -w) graphs x 8 kinds)"

echo "== SIGKILL alpha's owner: failover + typed unavailability"
victim_pid=""
case "$alpha_owner" in
  *9161) victim_pid=${pids[0]} ;;
  *9162) victim_pid=${pids[1]} ;;
  *9163) victim_pid=${pids[2]} ;;
esac
kill -9 "$victim_pid"

# Graphs exclusively on the dead replica must fail with the typed
# unavailable error; everything else keeps answering correctly.
dead_graphs=""
live_graphs=""
for g in $graphs; do
  owner=$(awk -v g="$g" '$1 == g { print $2 }' "$tmp/placement.txt")
  if [ "$owner" = "$alpha_owner" ] && [ "$g" != "alpha" ]; then
    dead_graphs="$dead_graphs $g"
  else
    live_graphs="$live_graphs $g"
  fi
done

# alpha survives via its successor copy; other live graphs via their
# untouched owners - and the answers still equal the local engine's.
for g in $live_graphs; do
  "$tmp/ccsp" -cluster "$members" -graphid "$g" -batch "$tmp/q.txt" > "$tmp/$g.after.out"
  strip "$tmp/$g.after.out" > "$tmp/$g.after.cmp"
  if ! diff "$tmp/$g.local.cmp" "$tmp/$g.after.cmp"; then
    echo "graph $g: answers changed after killing $alpha_owner"
    exit 1
  fi
done
echo "survivor agreement ok (alpha failed over to $alpha_succ)"

for g in $dead_graphs; do
  if "$tmp/ccsp" -cluster "$members" -graphid "$g" -algo diameter 2> "$tmp/$g.err"; then
    echo "graph $g: query succeeded with its only replica dead"
    exit 1
  fi
  grep -q "unavailable" "$tmp/$g.err"
done
if [ -n "$dead_graphs" ]; then
  echo "dead-shard graphs return typed unavailable ok ($dead_graphs )"
else
  echo "note: no graph was exclusive to the killed replica this placement"
fi
echo "SMOKE PASS"
