#!/usr/bin/env bash
# End-to-end smoke test of the snapshot + serving pipeline (run by CI,
# runnable locally): build a graph, answer an MSSP query with the one-shot
# CLI, persist the engine as a snapshot, serve it with ccspd, and assert
# the daemon's /v1/distance answers match the CLI's distances exactly.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pid=""
pid2=""
cleanup() {
  [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  [ -n "$pid2" ] && kill "$pid2" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

addr=127.0.0.1:8947

cat > "$tmp/g.txt" <<'EOF'
# smoke graph: a weighted ring with chords
0 1 2
1 2 3
2 3 1
3 4 4
4 5 2
5 6 5
6 7 1
7 0 3
0 4 9
1 5 2
2 6 7
EOF

go build -o "$tmp/ccsp" ./cmd/ccsp
go build -o "$tmp/ccspd" ./cmd/ccspd

echo "== one-shot CLI MSSP from node 0 (and snapshot save)"
"$tmp/ccsp" -graph "$tmp/g.txt" -algo mssp -sources 0 -save "$tmp/warm.snap" | tee "$tmp/cli.out"
test -s "$tmp/warm.snap"

echo "== serving the snapshot"
"$tmp/ccspd" -load "$tmp/warm.snap" -addr "$addr" &
pid=$!

for _ in $(seq 50); do
  curl -fs "http://$addr/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -fs "http://$addr/healthz" | grep -q '"status": "ok"'
echo "healthz ok"

# Every node's distance-to-0 from the daemon must equal the CLI's MSSP
# column (both run the same Theorem 3 query over the same artifact).
fail=0
for v in 0 1 2 3 4 5 6 7; do
  cli=$(awk -v v="$v" '$1 == v { print $2 }' "$tmp/cli.out")
  http=$(curl -fs "http://$addr/v1/distance?from=0&to=$v" \
    | tr -d ' \n' | grep -o '"distance":-\?[0-9]*' | cut -d: -f2)
  if [ "$cli" != "$http" ]; then
    echo "MISMATCH node $v: cli=$cli http=$http"
    fail=1
  fi
done
[ "$fail" = 0 ]
echo "distance agreement ok (8 pairs)"

curl -fs "http://$addr/v1/diameter" | grep -q '"estimate"'
curl -fs "http://$addr/v1/stats" | grep -q '"preprocess"'
echo "diameter + stats ok"

echo "== typed query plane: POST /v1/query + mixed /v1/batch"
curl -fs "http://$addr/v1/query" -d '{"kind":"distance","distance":{"from":0,"to":5}}' \
  | grep -q '"kind": "distance"'
curl -fs "http://$addr/v1/batch" -d '{"requests":[{"kind":"diameter"},{"kind":"sssp","sssp":{"source":0}}]}' \
  | grep -q '"responses"'
echo "query plane endpoints ok"

# A mixed batch over every algorithm family, answered three ways: the
# local engine batch (ccsp -load -batch → Engine.Batch), the remote
# batch (ccsp -server -batch → one POST /v1/batch), and - for the MSSP
# member - the sequential CLI answers from the top of this script. All
# three must agree exactly.
cat > "$tmp/q.txt" <<'EOF'
mssp 0
sssp 0
diameter
knearest 2
apsp3
sourcedetect 0,3 4 2
distance 0 5
EOF
"$tmp/ccsp" -load "$tmp/warm.snap" -batch "$tmp/q.txt" > "$tmp/local.out"
"$tmp/ccsp" -server "http://$addr" -batch "$tmp/q.txt" > "$tmp/remote.out"
# Strip the mode-specific headers/footers (preprocess ledger, summary
# line); every per-query answer and stats line must match byte for byte.
grep -v '^preprocess\|^  \|^batch:' "$tmp/local.out" > "$tmp/local.cmp"
grep -v '^batch:' "$tmp/remote.out" > "$tmp/remote.cmp"
if ! diff "$tmp/local.cmp" "$tmp/remote.cmp"; then
  echo "local Engine.Batch and remote /v1/batch outputs differ"
  exit 1
fi
# The batch's "mssp 0" rows equal the sequential CLI's distance rows.
sed -n '/^query "mssp 0"/q;p' "$tmp/remote.out" \
  | awk -F'\t' 'NF>=2 && $1 ~ /^[0-9]+$/' > "$tmp/batch_mssp.txt"
awk -F'\t' 'NF>=2 && $1 ~ /^[0-9]+$/' "$tmp/cli.out" > "$tmp/cli_mssp.txt"
if ! diff "$tmp/batch_mssp.txt" "$tmp/cli_mssp.txt"; then
  echo "batch MSSP answers differ from sequential CLI answers"
  exit 1
fi
echo "mixed batch ok (local == remote == sequential CLI)"

echo "== direct-kernel daemon answers match simulated mode"
# The same graph served with -exec direct: every /v1/distance answer must
# equal the simulated daemon's (= the CLI's MSSP column) byte for byte -
# the differential-oracle guarantee, end to end over the serving stack.
addr2=127.0.0.1:8949
"$tmp/ccspd" -graph "$tmp/g.txt" -exec direct -addr "$addr2" &
pid2=$!
for _ in $(seq 50); do
  curl -fs "http://$addr2/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -fs "http://$addr2/healthz" | grep -q '"status": "ok"'
fail=0
for v in 0 1 2 3 4 5 6 7; do
  cli=$(awk -v v="$v" '$1 == v { print $2 }' "$tmp/cli.out")
  http=$(curl -fs "http://$addr2/v1/distance?from=0&to=$v" \
    | tr -d ' \n' | grep -o '"distance":-\?[0-9]*' | cut -d: -f2)
  if [ "$cli" != "$http" ]; then
    echo "DIRECT MISMATCH node $v: cli=$cli http=$http"
    fail=1
  fi
done
[ "$fail" = 0 ]
kill -TERM "$pid2"
wait "$pid2"
pid2=""
echo "direct-mode agreement ok (8 pairs)"

echo "== dynamic update plane: POST /v1/update bumps the epoch and changes answers"
# Reweight the {1,5} chord from 2 to 100: dist(0,5) must leave the
# 4-range answer behind, the epoch must tick 0 -> 1, and the mutated
# daemon must agree with a cold CLI run on the mutated graph - the
# rebuild-equals-cold-build differential, end to end over HTTP.
pre=$(curl -fs "http://$addr/v1/distance?from=0&to=5" \
  | tr -d ' \n' | grep -o '"distance":-\?[0-9]*' | cut -d: -f2)
curl -fs "http://$addr/v1/epoch" | grep -q '"epoch": 0'
curl -fs "http://$addr/v1/update" -d '{"updates":[{"u":1,"v":5,"w":100}]}' \
  | grep -q '"epoch": 1'
curl -fs "http://$addr/v1/epoch" | grep -q '"epoch": 1'
post=$(curl -fs "http://$addr/v1/distance?from=0&to=5" \
  | tr -d ' \n' | grep -o '"distance":-\?[0-9]*' | cut -d: -f2)
if [ "$pre" = "$post" ]; then
  echo "dist(0,5) unchanged ($pre) after reweighting its shortest path"
  exit 1
fi
sed 's/^1 5 2$/1 5 100/' "$tmp/g.txt" > "$tmp/g2.txt"
"$tmp/ccsp" -graph "$tmp/g2.txt" -algo mssp -sources 0 > "$tmp/cli2.out"
fail=0
for v in 0 1 2 3 4 5 6 7; do
  cli=$(awk -v v="$v" '$1 == v { print $2 }' "$tmp/cli2.out")
  http=$(curl -fs "http://$addr/v1/distance?from=0&to=$v" \
    | tr -d ' \n' | grep -o '"distance":-\?[0-9]*' | cut -d: -f2)
  if [ "$cli" != "$http" ]; then
    echo "UPDATE MISMATCH node $v: cold-cli=$cli mutated-daemon=$http"
    fail=1
  fi
done
[ "$fail" = 0 ]
echo "update differential ok (epoch 1, rebuilt == cold build, 8 pairs)"

# The CLI's -update flag drives the same endpoint: delete the {0,7}
# edge through it and the epoch ticks again.
"$tmp/ccsp" -server "http://$addr" -update "0,7,-1" > "$tmp/upd.out"
grep -q 'epoch 2' "$tmp/upd.out"
curl -fs "http://$addr/v1/epoch" | grep -q '"epoch": 2'
post2=$(curl -fs "http://$addr/v1/distance?from=0&to=7" \
  | tr -d ' \n' | grep -o '"distance":-\?[0-9]*' | cut -d: -f2)
if [ "$post2" = "3" ]; then
  echo "dist(0,7) still 3 after deleting the direct edge"
  exit 1
fi
echo "ccsp -update ok (epoch 2, deletion visible)"

kill -TERM "$pid"
wait "$pid"
pid=""
echo "graceful shutdown ok"

echo "== overload: concurrency >> admission limit sheds typed 503s, health stays green"
# One execution slot, no wait queue, cache off: a 40-way parallel burst
# must shed most requests as typed 503s carrying Retry-After, while
# /healthz (which bypasses admission) answers 200 throughout.
addr3=127.0.0.1:8950
"$tmp/ccspd" -load "$tmp/warm.snap" -addr "$addr3" -max-inflight 1 -max-queue=-1 -cache=-1 &
pid2=$!
for _ in $(seq 50); do
  curl -fs "http://$addr3/readyz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -fs "http://$addr3/readyz" | grep -q '"ready": true'

burst() {
  # shellcheck disable=SC2046
  # -o consumes one URL each, so every URL brings its own /dev/null sink.
  curl -s --no-progress-meter --parallel --parallel-max 40 \
    -d '{"kind":"mssp","mssp":{"sources":[0,1,2,3]}}' \
    -w '%{http_code} %header{retry-after}\n' \
    $(for _ in $(seq 40); do printf -- '-o /dev/null http://%s/v1/query ' "$addr3"; done)
}
got503=0
for attempt in $(seq 5); do
  ( for _ in $(seq 10); do
      curl -s -o /dev/null -w '%{http_code}\n' "http://$addr3/healthz"
    done ) > "$tmp/health_during.txt" &
  health_pid=$!
  burst > "$tmp/burst.txt"
  wait "$health_pid"
  if grep -q '^503' "$tmp/burst.txt"; then
    got503=1
    break
  fi
  echo "burst $attempt: no shed yet, retrying"
done
[ "$got503" = 1 ] || { echo "no 503 in $attempt overload bursts"; exit 1; }
# Nothing but admitted 200s and typed 503s; every 503 carries the hint.
if grep -vq '^200 \|^503 1$' "$tmp/burst.txt"; then
  echo "unexpected status or missing Retry-After in overload burst:"
  grep -v '^200 \|^503 1$' "$tmp/burst.txt"
  exit 1
fi
if grep -vq '^200$' "$tmp/health_during.txt"; then
  echo "/healthz flapped during overload:"
  cat "$tmp/health_during.txt"
  exit 1
fi
# The shed path is typed end to end: body code + counter both say so.
curl -s "http://$addr3/v1/stats" | grep -q '"shed": [1-9]'
echo "overload ok ($(grep -c '^503' "$tmp/burst.txt") shed of 40, healthz stayed 200)"

kill -TERM "$pid2"
wait "$pid2"
pid2=""

echo "== SIGINT mid-preprocess must not leave a (partial) snapshot"
# A clique large enough that the hopset build takes many seconds (n=256
# takes ~57s, E15); the INT lands while the build is in flight and the
# daemon must unwind at the next simulator barrier, exit cleanly, and
# never create the -save target (the atomic temp-file+rename write only
# runs after a *completed* build).
awk 'BEGIN {
  n = 192
  for (v = 0; v < n; v++) print v, (v+1)%n, 1+v%7
  for (v = 0; v < n; v++) print v, (v*7+3)%n, 1+v%5
}' > "$tmp/big.txt"
"$tmp/ccspd" -graph "$tmp/big.txt" -save "$tmp/big.snap" -addr 127.0.0.1:8948 &
pid=$!
sleep 1
kill -INT "$pid"
if ! wait "$pid"; then
  echo "ccspd exited non-zero after SIGINT during preprocess"
  exit 1
fi
pid=""
if [ -e "$tmp/big.snap" ]; then
  echo "interrupted preprocess left a snapshot at the -save path"
  exit 1
fi
if ls "$tmp"/.ccspd-snap-* >/dev/null 2>&1; then
  echo "interrupted preprocess left temp snapshot files"
  exit 1
fi
echo "kill-mid-preprocess ok (no partial snapshot)"
echo "SMOKE PASS"
