#!/usr/bin/env bash
# CI load smoke (runnable locally): serve a small graph with ccspd, run
# ccload against it for ~5s of mixed closed-loop traffic, assert every
# request came back successfully (zero errors of any kind - against a
# healthy daemon even typed errors are bugs), and lint the /metrics
# exposition on both the serving port and the -debug-addr listener.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pid=""
cleanup() {
  [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

addr=127.0.0.1:8957
dbg=127.0.0.1:8958

awk 'BEGIN { n=16; for (v=0; v<n; v++) print v, (v+1)%n, 1+v%5; print 0,8,9; print 3,11,2 }' > "$tmp/g.txt"

go build -o "$tmp/ccspd" ./cmd/ccspd
go build -o "$tmp/ccload" ./cmd/ccload

"$tmp/ccspd" -graph "$tmp/g.txt" -addr "$addr" -debug-addr "$dbg" &
pid=$!

echo "== 5s mixed closed-loop workload"
"$tmp/ccload" -targets "http://$addr" -duration 5s -concurrency 4 -format json \
  | tee "$tmp/load.json"

# errors_by_code is omitted from the JSON only when the census is empty.
if grep -q '"errors_by_code"' "$tmp/load.json"; then
  echo "load run reported errors against a healthy daemon"
  exit 1
fi
if grep -q '"ok": 0,' "$tmp/load.json"; then
  echo "load run completed zero requests"
  exit 1
fi
echo "workload clean"

echo "== /metrics parses on the serving port and the debug listener"
curl -fs "http://$addr/metrics" > "$tmp/metrics.txt"
./scripts/promlint.sh "$tmp/metrics.txt"
curl -fs "http://$dbg/metrics" | ./scripts/promlint.sh
# The three instrumented layers all surface on one page: serving
# counters, per-endpoint latency histograms, engine query counters.
grep -q '^ccspd_requests_total ' "$tmp/metrics.txt"
grep -q '^ccspd_http_request_seconds_bucket' "$tmp/metrics.txt"
grep -q '^ccsp_engine_queries_total' "$tmp/metrics.txt"
# ...and pprof profiles answer on the debug listener only.
curl -fs "http://$dbg/debug/pprof/cmdline" > /dev/null
if curl -fs "http://$addr/debug/pprof/cmdline" > /dev/null 2>&1; then
  echo "pprof must not be mounted on the public serving port"
  exit 1
fi
echo "metrics + pprof placement ok"

kill -TERM "$pid"
wait "$pid"
pid=""
echo "LOAD SMOKE PASS"
