package ccsp

import (
	"context"
	"reflect"
	"runtime"
	"testing"
)

// TestWorkersStatsRegression: the worker pool must be invisible in every
// deterministic observable - workers=1 (the serial engine) and workers=P
// produce identical Stats (rounds, messages, words, per-phase breakdowns)
// and identical distances for weighted APSP on a seeded random graph.
func TestWorkersStatsRegression(t *testing.T) {
	gr := testGraph(40, 55, 9, 1234)
	p := runtime.GOMAXPROCS(0)
	if p < 2 {
		p = 4 // still exercises the sharded path, concurrently on one core
	}
	var ref *APSPResult
	for _, w := range []int{1, p} {
		res, err := APSPWeighted(context.Background(), gr, Options{Epsilon: 0.5, Workers: w})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if !reflect.DeepEqual(res.Dist, ref.Dist) {
			t.Errorf("workers=%d: distances differ from workers=1", w)
		}
		got, want := res.Stats, ref.Stats
		got.CollectiveTime, want.CollectiveTime = nil, nil
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: stats differ from workers=1:\n%+v\nvs\n%+v", w, got, want)
		}
		if res.Stats.TotalRounds != ref.Stats.TotalRounds ||
			res.Stats.Messages != ref.Stats.Messages ||
			res.Stats.Words != ref.Stats.Words {
			t.Errorf("workers=%d: rounds/messages/words differ", w)
		}
	}
}

// TestWorkersValidated: negative worker counts are rejected up front.
func TestWorkersValidated(t *testing.T) {
	gr := testGraph(8, 4, 3, 5)
	if _, err := APSPWeighted(context.Background(), gr, Options{Workers: -2}); err == nil {
		t.Fatal("want error for negative Workers")
	}
}
