package ccsp

import (
	"context"
	"reflect"
	"testing"

	"github.com/congestedclique/ccsp/api"
)

// FuzzDirectVsSimulated fuzzes the differential oracle: an arbitrary
// byte string decodes to a small graph, a stretch setting, and one query,
// and the direct-mode answer must equal the simulated-mode answer exactly
// - including which calls fail (validation is mode-independent). The
// committed corpus under testdata/fuzz covers every kind; the CI fuzz
// smoke mutates from there.
func FuzzDirectVsSimulated(f *testing.F) {
	f.Add([]byte{8, 0, 0, 1, 2, 0, 1, 3, 1, 2, 5, 2, 3, 1, 0, 4, 7})
	f.Add([]byte{5, 1, 3, 0, 1, 0, 1, 1, 1, 2, 1, 2, 3, 1, 3, 4, 1})
	f.Add([]byte{9, 2, 5, 1, 4, 0, 8, 2, 1, 7, 6, 3, 4, 9, 5, 6, 2, 0, 3, 11})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 5 {
			return
		}
		n := 2 + int(data[0])%9 // 2..10 nodes
		eps := []float64{0.25, 0.5, 1.0}[int(data[1])%3]
		kinds := api.Kinds()
		kind := kinds[int(data[2])%len(kinds)]
		unweighted := data[3]&1 == 1
		pick := int(data[4])

		gr := NewGraph(n)
		for i := 5; i+2 < len(data); i += 3 {
			u, v := int(data[i])%n, int(data[i+1])%n
			if u == v {
				continue
			}
			w := int64(data[i+2])%8 + 1
			if unweighted {
				w = 1
			}
			gr.MustAddEdge(u, v, w)
		}

		req := api.Request{Kind: kind}
		switch kind {
		case api.KindSSSP:
			req.SSSP = &api.SSSPParams{Source: pick % n}
		case api.KindMSSP:
			req.MSSP = &api.MSSPParams{Sources: []int{pick % n, (pick / 2) % n}}
		case api.KindAPSP:
			variants := []api.APSPVariant{api.APSPAuto, api.APSPWeighted, api.APSPWeighted3, api.APSPUnweighted}
			req.APSP = &api.APSPParams{Variant: variants[pick%len(variants)]}
		case api.KindDistance:
			req.Distance = &api.DistanceParams{From: pick % n, To: (pick / 3) % n}
		case api.KindKNearest:
			req.KNearest = &api.KNearestParams{K: pick%n + 1}
		case api.KindSourceDetection:
			req.SourceDetection = &api.SourceDetectionParams{Sources: []int{pick % n}, D: pick%4 + 1, K: pick%3 + 1}
		}

		ctx := context.Background()
		sim, err := newEngine(gr, Options{Epsilon: eps})
		if err != nil {
			t.Fatalf("simulated newEngine: %v", err)
		}
		dir, err := newEngine(gr, Options{Epsilon: eps, Execution: ExecDirect})
		if err != nil {
			t.Fatalf("direct newEngine: %v", err)
		}
		simResp, simErr := sim.Query(ctx, req)
		dirResp, dirErr := dir.Query(ctx, req)
		if (simErr == nil) != (dirErr == nil) {
			t.Fatalf("error mismatch for %s: simulated %v, direct %v", kind, simErr, dirErr)
		}
		if simErr != nil {
			return
		}
		simResp.Stats, dirResp.Stats = nil, nil
		if !reflect.DeepEqual(simResp, dirResp) {
			t.Fatalf("answers differ for %s on n=%d:\nsimulated: %+v\ndirect:    %+v", kind, n, simResp, dirResp)
		}
	})
}
