package disttools

import (
	"context"
	"testing"

	"github.com/congestedclique/ccsp/internal/cc"
	"github.com/congestedclique/ccsp/internal/matrix"
	"github.com/congestedclique/ccsp/internal/semiring"
)

// TestKNearestRoutedWitnesses: the §3.1 path-recovery feature - k-nearest
// over the routed semiring yields first hops that walk shortest paths.
func TestKNearestRoutedWitnesses(t *testing.T) {
	g := randGraph(20, 24, 10, 11)
	sr := g.RoutedSemiring()
	k := 8
	rows := make([]matrix.Row[semiring.WHF], g.N)
	_, err := cc.Run(context.Background(), cc.Config{N: g.N}, func(nd *cc.Node) error {
		rows[nd.ID] = KNearest[semiring.WHF](nd, sr, g.WeightRowRouted(nd.ID), k)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N; v++ {
		trueDist := g.Dijkstra(v)
		for _, e := range rows[v] {
			if int(e.Col) == v {
				if e.Val.FH != -1 {
					t.Errorf("node %d: self entry has witness %d", v, e.Val.FH)
				}
				continue
			}
			// Distances exact.
			if e.Val.W != trueDist[e.Col] {
				t.Fatalf("node %d -> %d: distance %d, want %d", v, e.Col, e.Val.W, trueDist[e.Col])
			}
			// The witness is a neighbor on a shortest path: d(v,u) =
			// w(v,fh) + d(fh,u).
			fh := int(e.Val.FH)
			var edgeW int64 = -1
			for _, a := range g.Adj[v] {
				if int(a.To) == fh && (edgeW < 0 || a.W < edgeW) {
					edgeW = a.W
				}
			}
			if edgeW < 0 {
				t.Fatalf("node %d -> %d: witness %d is not a neighbor", v, e.Col, fh)
			}
			rest := g.Dijkstra(fh)[e.Col]
			if edgeW+rest != e.Val.W {
				t.Fatalf("node %d -> %d: witness %d not on a shortest path (%d + %d != %d)",
					v, e.Col, fh, edgeW, rest, e.Val.W)
			}
		}
	}
}

// TestRoutedFullClosureWalk: following witnesses hop by hop reconstructs a
// full shortest path.
func TestRoutedFullClosureWalk(t *testing.T) {
	g := randGraph(16, 18, 6, 13)
	sr := g.RoutedSemiring()
	rows := make([]matrix.Row[semiring.WHF], g.N)
	_, err := cc.Run(context.Background(), cc.Config{N: g.N}, func(nd *cc.Node) error {
		// k = n: full closure with witnesses.
		rows[nd.ID] = KNearest[semiring.WHF](nd, sr, g.WeightRowRouted(nd.ID), g.N)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	get := func(v, u int) (semiring.WHF, bool) {
		for _, e := range rows[v] {
			if int(e.Col) == u {
				return e.Val, true
			}
		}
		return semiring.InfWHF, false
	}
	for v := 0; v < g.N; v++ {
		trueDist := g.Dijkstra(v)
		for u := 0; u < g.N; u++ {
			if u == v || trueDist[u] >= semiring.Inf {
				continue
			}
			// Walk the first-hop chain from v to u, summing edge weights.
			cur, steps, total := v, 0, int64(0)
			for cur != u {
				e, ok := get(cur, u)
				if !ok {
					t.Fatalf("no routing entry %d -> %d", cur, u)
				}
				fh := int(e.FH)
				var edgeW int64 = -1
				for _, a := range g.Adj[cur] {
					if int(a.To) == fh && (edgeW < 0 || a.W < edgeW) {
						edgeW = a.W
					}
				}
				if edgeW < 0 {
					t.Fatalf("witness %d not adjacent to %d", fh, cur)
				}
				total += edgeW
				cur = fh
				if steps++; steps > g.N {
					t.Fatalf("routing loop from %d to %d", v, u)
				}
			}
			if total != trueDist[u] {
				t.Fatalf("walked path %d -> %d has weight %d, want %d", v, u, total, trueDist[u])
			}
		}
	}
}
