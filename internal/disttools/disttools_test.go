package disttools

import (
	"context"
	"math/rand"
	"testing"

	"github.com/congestedclique/ccsp/internal/cc"
	"github.com/congestedclique/ccsp/internal/graph"
	"github.com/congestedclique/ccsp/internal/matrix"
	"github.com/congestedclique/ccsp/internal/semiring"
)

// randGraph builds a connected random weighted graph: a random spanning
// tree plus extra random edges.
func randGraph(n, extraEdges int, maxW int64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(v, rng.Intn(v), rng.Int63n(maxW)+1)
	}
	for e := 0; e < extraEdges; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.MustAddEdge(u, v, rng.Int63n(maxW)+1)
		}
	}
	return g
}

// closureRef builds the full augmented closure matrix from DijkstraAug.
func closureRef(g *graph.Graph) *matrix.Mat[semiring.WH] {
	sr := g.AugSemiring()
	m := matrix.New[semiring.WH](g.N)
	for v := 0; v < g.N; v++ {
		row := make(matrix.Row[semiring.WH], 0, g.N)
		for u, d := range g.DijkstraAug(v) {
			if !sr.IsZero(d) {
				row = append(row, matrix.Entry[semiring.WH]{Col: int32(u), Val: d})
			}
		}
		m.Rows[v] = row
	}
	return m
}

func TestKNearestMatchesReference(t *testing.T) {
	cases := []struct {
		n, extra, k int
		seed        int64
	}{
		{8, 4, 3, 1},
		{16, 10, 4, 2},
		{16, 10, 1, 3},
		{24, 20, 8, 4},
		{32, 16, 6, 5},
		{20, 0, 5, 6}, // tree
	}
	for _, tc := range cases {
		g := randGraph(tc.n, tc.extra, 20, tc.seed)
		sr := g.AugSemiring()
		want := matrix.Filter[semiring.WH](sr, closureRef(g), tc.k)
		got := matrix.New[semiring.WH](tc.n)
		_, err := cc.Run(context.Background(), cc.Config{N: tc.n}, func(nd *cc.Node) error {
			got.Rows[nd.ID] = KNearest(nd, sr, g.WeightRow(nd.ID), tc.k)
			return nil
		})
		if err != nil {
			t.Fatalf("n=%d k=%d: %v", tc.n, tc.k, err)
		}
		if !matrix.Equal[semiring.WH](sr, got, want) {
			t.Errorf("n=%d k=%d seed=%d: k-nearest differs from reference", tc.n, tc.k, tc.seed)
		}
	}
}

func TestKNearestLine(t *testing.T) {
	// On a unit line, the 3 nearest to an interior node are itself and its
	// two neighbors.
	n := 10
	g := graph.New(n)
	for v := 0; v+1 < n; v++ {
		g.MustAddEdge(v, v+1, 1)
	}
	sr := g.AugSemiring()
	got := matrix.New[semiring.WH](n)
	_, err := cc.Run(context.Background(), cc.Config{N: n}, func(nd *cc.Node) error {
		got.Rows[nd.ID] = KNearest(nd, sr, g.WeightRow(nd.ID), 3)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	row := got.Rows[5]
	if len(row) != 3 {
		t.Fatalf("node 5 learned %d neighbors, want 3", len(row))
	}
	wantCols := map[int32]semiring.WH{4: {W: 1, H: 1}, 5: {}, 6: {W: 1, H: 1}}
	for _, e := range row {
		if want, ok := wantCols[e.Col]; !ok || want != e.Val {
			t.Errorf("unexpected 3-nearest entry %d=%v", e.Col, e.Val)
		}
	}
}

// sourceDetectRef computes U_d by reference multiplication.
func sourceDetectRef(g *graph.Graph, inS []bool, d int) *matrix.Mat[semiring.WH] {
	sr := g.AugSemiring()
	w := g.WeightMatrix()
	u := matrix.New[semiring.WH](g.N)
	for v := 0; v < g.N; v++ {
		for _, e := range w.Rows[v] {
			if inS[e.Col] {
				u.Rows[v] = append(u.Rows[v], e)
			}
		}
	}
	for i := 1; i < d; i++ {
		u = matrix.MulRef[semiring.WH](sr, w, u)
	}
	return u
}

func TestSourceDetectMatchesReference(t *testing.T) {
	cases := []struct {
		n, extra, nS, d int
		seed            int64
	}{
		{12, 8, 2, 3, 1},
		{16, 12, 4, 4, 2},
		{24, 10, 1, 5, 3},
		{20, 30, 6, 2, 4},
	}
	for _, tc := range cases {
		g := randGraph(tc.n, tc.extra, 10, tc.seed)
		sr := g.AugSemiring()
		inS := make([]bool, tc.n)
		rng := rand.New(rand.NewSource(tc.seed + 99))
		for c := 0; c < tc.nS; {
			v := rng.Intn(tc.n)
			if !inS[v] {
				inS[v] = true
				c++
			}
		}
		want := sourceDetectRef(g, inS, tc.d)
		got := matrix.New[semiring.WH](tc.n)
		_, err := cc.Run(context.Background(), cc.Config{N: tc.n}, func(nd *cc.Node) error {
			row, err := SourceDetect(nd, sr, g.WeightRow(nd.ID), inS, tc.d)
			if err != nil {
				return err
			}
			got.Rows[nd.ID] = row
			return nil
		})
		if err != nil {
			t.Fatalf("case %+v: %v", tc, err)
		}
		if !matrix.Equal[semiring.WH](sr, got, want) {
			t.Errorf("case %+v: source detection differs from reference", tc)
		}
	}
}

func TestSourceDetectHopLimit(t *testing.T) {
	// On a unit line with source 0, after d products only nodes within d
	// hops know a distance.
	n := 12
	g := graph.New(n)
	for v := 0; v+1 < n; v++ {
		g.MustAddEdge(v, v+1, 1)
	}
	sr := g.AugSemiring()
	inS := make([]bool, n)
	inS[0] = true
	d := 4
	got := matrix.New[semiring.WH](n)
	_, err := cc.Run(context.Background(), cc.Config{N: n}, func(nd *cc.Node) error {
		row, err := SourceDetect(nd, sr, g.WeightRow(nd.ID), inS, d)
		if err != nil {
			return err
		}
		got.Rows[nd.ID] = row
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < n; v++ {
		d0 := got.Get(sr, v, 0)
		if v <= d {
			if d0.W != int64(v) || d0.H != int64(v) {
				t.Errorf("node %d: d-hop distance %v, want (%d,%d)", v, d0, v, v)
			}
		} else if !sr.IsZero(d0) {
			t.Errorf("node %d beyond hop limit learned %v", v, d0)
		}
	}
}

func TestSourceDetectKMatchesFilteredReference(t *testing.T) {
	g := randGraph(18, 14, 10, 7)
	sr := g.AugSemiring()
	inS := make([]bool, g.N)
	for _, s := range []int{1, 5, 9, 13} {
		inS[s] = true
	}
	d, k := 4, 2
	want := matrix.Filter[semiring.WH](sr, sourceDetectRef(g, inS, d), k)
	got := matrix.New[semiring.WH](g.N)
	_, err := cc.Run(context.Background(), cc.Config{N: g.N}, func(nd *cc.Node) error {
		got.Rows[nd.ID] = SourceDetectK(nd, sr, g.WeightRow(nd.ID), inS, d, k)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal[semiring.WH](sr, got, want) {
		t.Error("k-source detection differs from filtered reference")
	}
}

func TestDistThroughSets(t *testing.T) {
	// Sets W_v = {v, pivot set members}; brute-force comparison.
	n := 14
	rng := rand.New(rand.NewSource(3))
	sr := semiring.NewMinPlus(1 << 40)
	sets := make([][]Est, n)
	for v := 0; v < n; v++ {
		used := map[int32]bool{}
		for c := 0; c < 4; c++ {
			w := int32(rng.Intn(n))
			if used[w] {
				continue
			}
			used[w] = true
			sets[v] = append(sets[v], Est{W: w, To: rng.Int63n(50) + 1, From: rng.Int63n(50) + 1})
		}
	}
	got := matrix.New[int64](n)
	_, err := cc.Run(context.Background(), cc.Config{N: n}, func(nd *cc.Node) error {
		row, err := DistThroughSets(nd, sr, sets[nd.ID])
		if err != nil {
			return err
		}
		got.Rows[nd.ID] = row
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < n; v++ {
		for u := 0; u < n; u++ {
			want := sr.Zero()
			for _, ev := range sets[v] {
				for _, eu := range sets[u] {
					if ev.W == eu.W {
						want = sr.Add(want, ev.To+eu.From)
					}
				}
			}
			if gotV := got.Get(sr, v, u); !sr.Eq(gotV, want) {
				t.Fatalf("dist-through-sets [%d,%d]=%d, want %d", v, u, gotV, want)
			}
		}
	}
}

// TestTheorem18Rounds: with k = √n the bound is O(log n · log k); rounds
// must stay far from polynomial.
func TestTheorem18Rounds(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling test")
	}
	rounds := map[int]int{}
	for _, n := range []int{36, 144} {
		g := randGraph(n, 2*n, 10, int64(n))
		sr := g.AugSemiring()
		k := 6 // = √36; fixed k isolates the n-dependence
		stats, err := cc.Run(context.Background(), cc.Config{N: n}, func(nd *cc.Node) error {
			KNearest(nd, sr, g.WeightRow(nd.ID), k)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		rounds[n] = stats.TotalRounds()
	}
	if rounds[144] > 2*rounds[36] {
		t.Errorf("k-nearest rounds grew too fast: %v", rounds)
	}
}
