// Package disttools implements the paper's distance-computation tools (§3)
// on top of the sparse matrix multiplication machinery: augmented distance
// products (§3.1), k-nearest neighbors (Theorem 18), (S,d,k)-source
// detection in both variants (Theorem 19), and distance through node sets
// (Theorem 20). All functions are collectives: they run inside cc node
// programs, with node v holding row v of the relevant matrices.
package disttools

import (
	"math/bits"

	"github.com/congestedclique/ccsp/internal/cc"
	"github.com/congestedclique/ccsp/internal/matmul"
	"github.com/congestedclique/ccsp/internal/matrix"
	"github.com/congestedclique/ccsp/internal/semiring"
)

// KNearest solves the k-nearest problem (Theorem 18): given row v of the
// augmented weight matrix W (§3.1, diagonal included), it returns the k
// lexicographically smallest entries of row v of W^n - the distances (and
// hop counts) to the k closest nodes, ties broken by (distance, hops,
// node ID). It runs ceil(log2 k) filtered squarings (Theorem 14), each with
// output density k. It is generic over ordered semirings: with
// semiring.AugMinPlus it returns distances, with semiring.RoutedMinPlus it
// additionally returns first-hop routing witnesses (§3.1, recovering
// paths).
func KNearest[E any](nd *cc.Node, sr semiring.Ordered[E], wrow matrix.Row[E], k int) matrix.Row[E] {
	if k < 1 {
		k = 1
	}
	if k > nd.N {
		k = nd.N
	}
	cur := matrix.FilterRow(sr, wrow, k)
	// W̄^{2^t}: by Lemma 17, 2^t >= k hops suffice to reach the k nearest.
	iters := bits.Len(uint(k - 1)) // ceil(log2 k)
	for t := 0; t < iters; t++ {
		cur = matmul.MultiplyFiltered(nd, sr, cur, cur, k)
	}
	return cur
}

// SourceDetect solves the (S,d,|S|)-source detection problem, second
// variant of Theorem 19: it returns, for this node, the d-hop-limited
// augmented distances to every source (row v of U_d). inS marks the source
// set; all nodes must pass identical inS and d. wrow is row v of the
// augmented weight matrix of the graph (which may include hopset edges).
// The iterated products use Theorem 8 with output density |S|, which is an
// upper bound on the support density of every U_i by construction.
func SourceDetect[E any](nd *cc.Node, sr semiring.Semiring[E], wrow matrix.Row[E], inS []bool, d int) (matrix.Row[E], error) {
	nS := 0
	for _, s := range inS {
		if s {
			nS++
		}
	}
	if nS == 0 {
		return nil, nil
	}
	// U_1: row v of W restricted to source columns (self-distance (0,0)
	// included for sources via the diagonal of W).
	u := make(matrix.Row[E], 0, nS)
	for _, e := range wrow {
		if inS[e.Col] {
			u = append(u, e)
		}
	}
	for i := 1; i < d; i++ {
		next, err := matmul.Multiply(nd, sr, wrow, u, nS)
		if err != nil {
			return nil, err
		}
		u = next
	}
	return u, nil
}

// SourceDetectK solves the (S,d,k)-source detection problem, first variant
// of Theorem 19: each node learns the k nearest sources within d hops,
// using d filtered products (Theorem 14) with output density k. Ties break
// by (distance, hops, node ID) as in the filtered order.
func SourceDetectK[E any](nd *cc.Node, sr semiring.Ordered[E], wrow matrix.Row[E], inS []bool, d, k int) matrix.Row[E] {
	if k < 1 {
		k = 1
	}
	if k > nd.N {
		k = nd.N
	}
	// W_1: the k lightest edges to sources (and the self entry for
	// sources), per the proof of Theorem 19.
	u := make(matrix.Row[E], 0, k)
	for _, e := range wrow {
		if inS[e.Col] {
			u = append(u, e)
		}
	}
	u = matrix.FilterRow(sr, u, k)
	for i := 1; i < d; i++ {
		u = matmul.MultiplyFiltered(nd, sr, wrow, u, k)
	}
	return u
}

// Est carries one node's distance estimates to and from a member w of its
// set W_v, the input of the distance-through-sets problem (§3.4). For
// undirected estimates To == From.
type Est struct {
	W        int32
	To, From int64
}

// DistThroughSets solves the distance-through-sets problem (Theorem 20):
// given each node's estimates to and from its set W_v, every node v learns
// min over w in W_v ∩ W_u of (δ(v,w) + δ(w,u)) for all u, as row v of the
// product W_1 ⋆ W_2 over the plain min-plus semiring, computed by Theorem 8
// with output density n.
func DistThroughSets(nd *cc.Node, sr semiring.MinPlus, ests []Est) (matrix.Row[int64], error) {
	// Build row v of W_1 and ship δ(w,v) entries to w so node w can
	// assemble row w of W_2 (one message per set member; at most one per
	// destination, so a single round).
	w1 := make(matrix.Row[int64], 0, len(ests))
	out := make([]cc.Packet, 0, len(ests))
	for _, e := range ests {
		w1 = append(w1, matrix.Entry[int64]{Col: e.W, Val: e.To})
		out = append(out, cc.Packet{Dst: e.W, M: cc.Msg{A: e.From}})
	}
	w1 = matrix.SortRow(w1)
	var w2 matrix.Row[int64]
	for _, m := range nd.Sync(out) {
		w2 = append(w2, matrix.Entry[int64]{Col: m.Src, Val: m.A})
	}
	return matmul.Multiply(nd, sr, w1, w2, nd.N)
}

// Square computes one augmented distance-product squaring A ⋆ A with
// automatic output-density discovery, a §3.1 building block used by the
// dense-baseline APSP.
func Square(nd *cc.Node, sr semiring.AugMinPlus, arow matrix.Row[semiring.WH]) matrix.Row[semiring.WH] {
	return matmul.MultiplyAuto(nd, sr, arow, arow)
}
