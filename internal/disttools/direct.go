// Direct (host-side) counterparts of the distance tools: the same §3
// algebra computed on whole matrices with the matmul kernels instead of
// per-node collectives. Each function mirrors its distributed sibling
// step by step - same clamping, same iteration counts, same filter
// orders - so the outputs are byte-identical rows for every node (the
// oracle-equivalence guarantee of DESIGN.md §12). The ctx parameter is
// checked between product iterations: these are the long loops of direct
// preprocessing, and a canceled caller unwinds within one multiply.
package disttools

import (
	"context"
	"math/bits"
	"sync/atomic"

	"github.com/congestedclique/ccsp/internal/matmul"
	"github.com/congestedclique/ccsp/internal/matrix"
	"github.com/congestedclique/ccsp/internal/semiring"
)

// KNearestAll solves the k-nearest problem (Theorem 18) for every node at
// once on the host: row v of the result equals what KNearest returns at
// node v. w is the full augmented weight matrix (diagonal included).
func KNearestAll[E any](ctx context.Context, sr semiring.Ordered[E], w *matrix.Mat[E], k, workers int) (*matrix.Mat[E], error) {
	n := w.N
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	cur := matrix.New[E](n)
	for v := 0; v < n; v++ {
		cur.Rows[v] = matrix.FilterRow(sr, w.Rows[v], k)
	}
	iters := bits.Len(uint(k - 1)) // ceil(log2 k), as in KNearest
	for t := 0; t < iters; t++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cur = matmul.KernelMulFiltered(sr, cur, cur, k, workers)
	}
	return cur, nil
}

// SourceDetectAll solves (S,d,|S|)-source detection (Theorem 19, second
// variant) for every node at once: row v of the result equals what
// SourceDetect returns at node v. g is the full augmented weight matrix
// of the graph (which may include hopset edges).
func SourceDetectAll[E any](ctx context.Context, sr semiring.Semiring[E], g *matrix.Mat[E], inS []bool, d, workers int) (*matrix.Mat[E], error) {
	n := g.N
	nS := 0
	for _, s := range inS {
		if s {
			nS++
		}
	}
	u := matrix.New[E](n)
	if nS == 0 {
		return u, nil // every per-node row is nil, as in SourceDetect
	}
	for v := 0; v < n; v++ {
		row := make(matrix.Row[E], 0, nS)
		for _, e := range g.Rows[v] {
			if inS[e.Col] {
				row = append(row, e)
			}
		}
		u.Rows[v] = row
	}
	for i := 1; i < d; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		u = matmul.KernelMul(sr, g, u, workers)
	}
	return u, nil
}

// SourceDetectAllRestricted solves (S,d,|S|)-source detection over the
// augmented semiring exactly like SourceDetectAll, but propagates only
// the |S| source columns through the d iterations as a flat n×|S| panel
// (DESIGN.md §13). The sparse iteration U_i = G·U_{i-1} never grows
// support beyond the source columns, so restricting the representation
// to those columns - two struct-of-arrays (weight, hops) panels, one
// read and one written per step - changes nothing about the result: row
// v of the output is entry-for-entry identical to SourceDetectAll's,
// while each step does tight O(nnz(G)·|S|) flat work with zero
// allocations. The two panel shortcuts mirror the specialized kernel's
// (matmul/dense.go): products saturating at or above semiring.Inf are
// skipped (the sparse path drops them at every per-step emit), and the
// (Inf, Inf) rest state doubles as "no entry".
//
// The iteration also stops at its fixed point: U_i = G·U_{i-1}, so an
// iteration that changes no cell makes every later iterate identical and
// the remaining steps are dead work. Hopset-augmented graphs converge in
// far fewer than β steps (the hopset's whole point), so this routinely
// saves most of the d-1 iterations without changing a single entry.
func SourceDetectAllRestricted(ctx context.Context, g *matrix.Mat[semiring.WH], inS []bool, d, workers int) (*matrix.Mat[semiring.WH], error) {
	n := g.N
	srcs := make([]int32, 0, n)
	idx := make([]int32, n)
	for v := 0; v < n; v++ {
		idx[v] = -1
		if inS[v] {
			idx[v] = int32(len(srcs))
			srcs = append(srcs, int32(v))
		}
	}
	out := matrix.New[semiring.WH](n)
	q := len(srcs)
	if q == 0 {
		return out, nil // every per-node row is nil, as in SourceDetect
	}
	curW := make([]int64, n*q)
	curH := make([]int64, n*q)
	nextW := make([]int64, n*q)
	nextH := make([]int64, n*q)
	for i := range curW {
		curW[i] = semiring.Inf
		curH[i] = semiring.Inf
	}
	// U_1: row v of G restricted to source columns (self-distance (0,0)
	// included for sources via the diagonal of G).
	for v := 0; v < n; v++ {
		base := v * q
		for _, e := range g.Rows[v] {
			if j := idx[e.Col]; j >= 0 {
				curW[base+int(j)] = e.Val.W
				curH[base+int(j)] = e.Val.H
			}
		}
	}
	for i := 1; i < d; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var changed atomic.Bool
		matmul.RunRows(n, workers, func() func(int) {
			return func(v int) {
				base := v * q
				rw := nextW[base : base+q]
				rh := nextH[base : base+q]
				for j := range rw {
					rw[j] = semiring.Inf
					rh[j] = semiring.Inf
				}
				for _, es := range g.Rows[v] {
					tb := int(es.Col) * q
					ew, eh := es.Val.W, es.Val.H
					for j := 0; j < q; j++ {
						cw := curW[tb+j]
						if cw >= semiring.Inf {
							continue
						}
						w := ew + cw
						if w >= semiring.Inf || w > rw[j] {
							continue
						}
						h := eh + curH[tb+j]
						if w < rw[j] || h < rh[j] {
							rw[j], rh[j] = w, h
						}
					}
				}
				if !changed.Load() {
					for j := 0; j < q; j++ {
						if rw[j] != curW[base+j] || rh[j] != curH[base+j] {
							changed.Store(true)
							break
						}
					}
				}
			}
		})
		curW, nextW = nextW, curW
		curH, nextH = nextH, curH
		if !changed.Load() {
			break
		}
	}
	for v := 0; v < n; v++ {
		base := v * q
		var row matrix.Row[semiring.WH]
		for j := 0; j < q; j++ {
			if curW[base+j] < semiring.Inf {
				row = append(row, matrix.Entry[semiring.WH]{Col: srcs[j], Val: semiring.WH{W: curW[base+j], H: curH[base+j]}})
			}
		}
		out.Rows[v] = row
	}
	return out, nil
}

// SourceDetectKAll solves (S,d,k)-source detection (Theorem 19, first
// variant) for every node at once: row v equals what SourceDetectK
// returns at node v.
func SourceDetectKAll[E any](ctx context.Context, sr semiring.Ordered[E], w *matrix.Mat[E], inS []bool, d, k, workers int) (*matrix.Mat[E], error) {
	n := w.N
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	u := matrix.New[E](n)
	for v := 0; v < n; v++ {
		row := make(matrix.Row[E], 0, k)
		for _, e := range w.Rows[v] {
			if inS[e.Col] {
				row = append(row, e)
			}
		}
		u.Rows[v] = matrix.FilterRow(sr, row, k)
	}
	for i := 1; i < d; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		u = matmul.KernelMulFiltered(sr, w, u, k, workers)
	}
	return u, nil
}

// DistThroughSetsAll solves distance-through-sets (Theorem 20) for every
// node at once: ests[v] is node v's estimate list, and row v of the
// result equals what DistThroughSets returns at node v. W2 rows are
// assembled in ascending sender order, matching the Sync inbox ordering
// of the collective version.
func DistThroughSetsAll(ctx context.Context, sr semiring.MinPlus, n int, ests [][]Est, workers int) (*matrix.Mat[int64], error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	w1 := matrix.New[int64](n)
	w2 := matrix.New[int64](n)
	for v := 0; v < n; v++ {
		row := make(matrix.Row[int64], 0, len(ests[v]))
		for _, e := range ests[v] {
			row = append(row, matrix.Entry[int64]{Col: e.W, Val: e.To})
			w2.Rows[e.W] = append(w2.Rows[e.W], matrix.Entry[int64]{Col: int32(v), Val: e.From})
		}
		w1.Rows[v] = matrix.SortRow(row)
	}
	return matmul.KernelMul(sr, w1, w2, workers), nil
}
