// Direct (host-side) counterparts of the distance tools: the same §3
// algebra computed on whole matrices with the matmul kernels instead of
// per-node collectives. Each function mirrors its distributed sibling
// step by step - same clamping, same iteration counts, same filter
// orders - so the outputs are byte-identical rows for every node (the
// oracle-equivalence guarantee of DESIGN.md §12). The ctx parameter is
// checked between product iterations: these are the long loops of direct
// preprocessing, and a canceled caller unwinds within one multiply.
package disttools

import (
	"context"
	"math/bits"

	"github.com/congestedclique/ccsp/internal/matmul"
	"github.com/congestedclique/ccsp/internal/matrix"
	"github.com/congestedclique/ccsp/internal/semiring"
)

// KNearestAll solves the k-nearest problem (Theorem 18) for every node at
// once on the host: row v of the result equals what KNearest returns at
// node v. w is the full augmented weight matrix (diagonal included).
func KNearestAll[E any](ctx context.Context, sr semiring.Ordered[E], w *matrix.Mat[E], k, workers int) (*matrix.Mat[E], error) {
	n := w.N
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	cur := matrix.New[E](n)
	for v := 0; v < n; v++ {
		cur.Rows[v] = matrix.FilterRow(sr, w.Rows[v], k)
	}
	iters := bits.Len(uint(k - 1)) // ceil(log2 k), as in KNearest
	for t := 0; t < iters; t++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cur = matmul.KernelMulFiltered(sr, cur, cur, k, workers)
	}
	return cur, nil
}

// SourceDetectAll solves (S,d,|S|)-source detection (Theorem 19, second
// variant) for every node at once: row v of the result equals what
// SourceDetect returns at node v. g is the full augmented weight matrix
// of the graph (which may include hopset edges).
func SourceDetectAll[E any](ctx context.Context, sr semiring.Semiring[E], g *matrix.Mat[E], inS []bool, d, workers int) (*matrix.Mat[E], error) {
	n := g.N
	nS := 0
	for _, s := range inS {
		if s {
			nS++
		}
	}
	u := matrix.New[E](n)
	if nS == 0 {
		return u, nil // every per-node row is nil, as in SourceDetect
	}
	for v := 0; v < n; v++ {
		row := make(matrix.Row[E], 0, nS)
		for _, e := range g.Rows[v] {
			if inS[e.Col] {
				row = append(row, e)
			}
		}
		u.Rows[v] = row
	}
	for i := 1; i < d; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		u = matmul.KernelMul(sr, g, u, workers)
	}
	return u, nil
}

// SourceDetectKAll solves (S,d,k)-source detection (Theorem 19, first
// variant) for every node at once: row v equals what SourceDetectK
// returns at node v.
func SourceDetectKAll[E any](ctx context.Context, sr semiring.Ordered[E], w *matrix.Mat[E], inS []bool, d, k, workers int) (*matrix.Mat[E], error) {
	n := w.N
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	u := matrix.New[E](n)
	for v := 0; v < n; v++ {
		row := make(matrix.Row[E], 0, k)
		for _, e := range w.Rows[v] {
			if inS[e.Col] {
				row = append(row, e)
			}
		}
		u.Rows[v] = matrix.FilterRow(sr, row, k)
	}
	for i := 1; i < d; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		u = matmul.KernelMulFiltered(sr, w, u, k, workers)
	}
	return u, nil
}

// DistThroughSetsAll solves distance-through-sets (Theorem 20) for every
// node at once: ests[v] is node v's estimate list, and row v of the
// result equals what DistThroughSets returns at node v. W2 rows are
// assembled in ascending sender order, matching the Sync inbox ordering
// of the collective version.
func DistThroughSetsAll(ctx context.Context, sr semiring.MinPlus, n int, ests [][]Est, workers int) (*matrix.Mat[int64], error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	w1 := matrix.New[int64](n)
	w2 := matrix.New[int64](n)
	for v := 0; v < n; v++ {
		row := make(matrix.Row[int64], 0, len(ests[v]))
		for _, e := range ests[v] {
			row = append(row, matrix.Entry[int64]{Col: e.W, Val: e.To})
			w2.Rows[e.W] = append(w2.Rows[e.W], matrix.Entry[int64]{Col: int32(v), Val: e.From})
		}
		w1.Rows[v] = matrix.SortRow(row)
	}
	return matmul.KernelMul(sr, w1, w2, workers), nil
}
