package disttools

import (
	"context"
	"math/rand"
	"testing"

	"github.com/congestedclique/ccsp/internal/matrix"
	"github.com/congestedclique/ccsp/internal/semiring"
)

// sameWH asserts exact entry-for-entry row equality (including entry
// order), the contract the restricted panel must honor against the
// sparse iteration it replaces on the query path.
func sameWH(t *testing.T, got, want *matrix.Mat[semiring.WH]) bool {
	t.Helper()
	for v := 0; v < want.N; v++ {
		g, w := got.Rows[v], want.Rows[v]
		if len(g) != len(w) {
			t.Logf("row %d: length %d != %d", v, len(g), len(w))
			return false
		}
		for i := range w {
			if g[i] != w[i] {
				t.Logf("row %d entry %d: %+v != %+v", v, i, g[i], w[i])
				return false
			}
		}
	}
	return true
}

// TestSourceDetectAllRestrictedEquivalence: the flat-panel restricted
// detection equals SourceDetectAll entry for entry across graph shapes
// (connected and disconnected), source-set sizes (empty, sparse, all),
// hop bounds (including d=1, no iterations), and worker counts.
func TestSourceDetectAllRestrictedEquivalence(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		n, extra, nS, d int
		seed            int64
	}{
		{8, 4, 1, 3, 11},
		{16, 10, 3, 5, 12},
		{24, 20, 8, 2, 13},
		{32, 16, 32, 6, 14}, // S = V
		{20, 0, 5, 1, 15},   // tree, d=1: U_1 only
		{24, 12, 0, 4, 16},  // empty S
		{28, 14, 6, 28, 17}, // d = n
	}
	for _, tc := range cases {
		g := randGraph(tc.n, tc.extra, 20, tc.seed)
		sr := g.AugSemiring()
		w := g.WeightMatrix()
		rng := rand.New(rand.NewSource(tc.seed + 1000))
		inS := make([]bool, tc.n)
		for len(srcsOf(inS)) < tc.nS {
			inS[rng.Intn(tc.n)] = true
		}
		want, err := SourceDetectAll[semiring.WH](ctx, sr, w, inS, tc.d, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4, 0} {
			got, err := SourceDetectAllRestricted(ctx, w, inS, tc.d, workers)
			if err != nil {
				t.Fatal(err)
			}
			if !sameWH(t, got, want) {
				t.Errorf("n=%d nS=%d d=%d workers=%d: restricted differs from SourceDetectAll", tc.n, tc.nS, tc.d, workers)
			}
		}
	}
}

// TestSourceDetectAllRestrictedDisconnected pins the unreachable case:
// sources in one component must not appear in rows of the other.
func TestSourceDetectAllRestrictedDisconnected(t *testing.T) {
	ctx := context.Background()
	// Two components: a path 0-1-2 and a path 3-4-5.
	w := matrix.New[semiring.WH](6)
	add := func(u, v int, wt int64) {
		w.Rows[u] = append(w.Rows[u], matrix.Entry[semiring.WH]{Col: int32(v), Val: semiring.WH{W: wt, H: 1}})
		w.Rows[v] = append(w.Rows[v], matrix.Entry[semiring.WH]{Col: int32(u), Val: semiring.WH{W: wt, H: 1}})
	}
	for v := 0; v < 6; v++ {
		w.Rows[v] = append(w.Rows[v], matrix.Entry[semiring.WH]{Col: int32(v)})
	}
	add(0, 1, 2)
	add(1, 2, 3)
	add(3, 4, 1)
	add(4, 5, 4)
	for v := 0; v < 6; v++ {
		w.Rows[v] = matrix.SortRow(w.Rows[v])
	}
	inS := []bool{true, false, false, true, false, false}
	sr := semiring.NewAugMinPlus(1<<20, 16)
	want, err := SourceDetectAll[semiring.WH](ctx, sr, w, inS, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SourceDetectAllRestricted(ctx, w, inS, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !sameWH(t, got, want) {
		t.Fatal("disconnected case differs from SourceDetectAll")
	}
	for v := 0; v < 3; v++ {
		for _, e := range got.Rows[v] {
			if e.Col == 3 {
				t.Fatalf("node %d reached source 3 across components", v)
			}
		}
	}
}

// srcsOf lists the true indices of a membership vector.
func srcsOf(inS []bool) []int {
	var out []int
	for v, s := range inS {
		if s {
			out = append(out, v)
		}
	}
	return out
}
