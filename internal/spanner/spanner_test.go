package spanner

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"github.com/congestedclique/ccsp/internal/cc"
	"github.com/congestedclique/ccsp/internal/graph"
	"github.com/congestedclique/ccsp/internal/semiring"
)

func randGraph(n, extraEdges int, maxW int64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(v, rng.Intn(v), rng.Int63n(maxW)+1)
	}
	for e := 0; e < extraEdges; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.MustAddEdge(u, v, rng.Int63n(maxW)+1)
		}
	}
	return g
}

func runSpanner(t *testing.T, g *graph.Graph, k int, seed int64) []*Result {
	t.Helper()
	results := make([]*Result, g.N)
	_, err := cc.Run(context.Background(), cc.Config{N: g.N}, func(nd *cc.Node) error {
		res, err := APSP(nd, g.WeightRow(nd.ID), k, seed)
		if err != nil {
			return err
		}
		results[nd.ID] = res
		return nil
	})
	if err != nil {
		t.Fatalf("spanner APSP failed: %v", err)
	}
	return results
}

func TestSpannerStretch(t *testing.T) {
	for _, k := range []int{1, 2, 3} {
		for _, seed := range []int64{1, 2} {
			g := randGraph(24, 60, 10, seed)
			results := runSpanner(t, g, k, seed*7+1)
			ref := g.APSPRef()
			for v := 0; v < g.N; v++ {
				for u := 0; u < g.N; u++ {
					d, got := ref[v][u], results[v].Dist[u]
					if d >= semiring.Inf {
						if got < semiring.Inf {
							t.Fatalf("k=%d: unreachable pair (%d,%d) got %d", k, v, u, got)
						}
						continue
					}
					if got < d {
						t.Fatalf("k=%d: spanner distance %d below true %d", k, got, d)
					}
					if float64(got) > float64(2*k-1)*float64(d)+1e-9 {
						t.Fatalf("k=%d: pair (%d,%d) stretch %d/%d exceeds 2k-1", k, v, u, got, d)
					}
				}
			}
		}
	}
}

func TestSpannerK1IsWholeGraphDistances(t *testing.T) {
	// k=1 yields stretch 1: exact distances (spanner = whole graph).
	g := randGraph(16, 30, 5, 3)
	results := runSpanner(t, g, 1, 11)
	ref := g.APSPRef()
	for v := 0; v < g.N; v++ {
		for u := 0; u < g.N; u++ {
			want := ref[v][u]
			if want >= semiring.Inf {
				continue
			}
			if results[v].Dist[u] != want {
				t.Fatalf("k=1 must be exact: (%d,%d) got %d want %d", v, u, results[v].Dist[u], want)
			}
		}
	}
}

func TestSpannerSize(t *testing.T) {
	// |H| = O(k · n^{1+1/k}) for Baswana-Sen.
	n := 64
	g := randGraph(n, 6*n, 10, 4)
	for _, k := range []int{2, 3} {
		results := runSpanner(t, g, k, 13)
		size := results[0].SpannerEdges
		bound := 8 * float64(k) * math.Pow(float64(n), 1+1.0/float64(k))
		if float64(size) > bound {
			t.Errorf("k=%d: spanner has %d edges, above bound %.0f", k, size, bound)
		}
		for v := 1; v < n; v++ {
			if results[v].SpannerEdges != size {
				t.Fatal("nodes disagree on spanner size")
			}
		}
	}
}
