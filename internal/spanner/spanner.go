// Package spanner implements the spanner-route baseline of §1.1: build a
// (2k-1)-spanner, have every node learn all its O~(n^{1+1/k}) edges, and
// answer APSP queries locally - a (2k-1)-approximation in O~(n^{1/k})
// rounds, the approach the paper's polylogarithmic algorithms are compared
// against.
//
// Substitution note (DESIGN.md): the paper cites the deterministic spanners
// of Parter-Yogev [52]; we substitute the classic Baswana-Sen construction
// with a seeded deterministic hash (same size/stretch trade-off,
// reproducible runs). Each clustering phase costs one broadcast round; the
// dominant cost is learning the spanner, charged through routing.
package spanner

import (
	"fmt"
	"math"
	"sort"

	"github.com/congestedclique/ccsp/internal/cc"
	"github.com/congestedclique/ccsp/internal/graph"
	"github.com/congestedclique/ccsp/internal/matrix"
	"github.com/congestedclique/ccsp/internal/semiring"
)

// Result is one node's baseline APSP output.
type Result struct {
	// Dist is this node's distance estimates via the spanner (stretch at
	// most 2k-1).
	Dist []int64
	// SpannerEdges is the global spanner size |H| (undirected edges).
	SpannerEdges int
}

// APSP runs the spanner baseline: Baswana-Sen clustering (k-1 broadcast
// phases), a final per-cluster edge phase, full dissemination of the
// spanner, and local Dijkstra. All nodes pass identical k and seed.
func APSP(nd *cc.Node, wrow matrix.Row[semiring.WH], k int, seed int64) (*Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("spanner: invalid k=%d", k)
	}
	n := nd.N
	me := nd.ID

	// Adjacency (excluding the diagonal), deduplicated by neighbor.
	type edge struct {
		to int32
		w  int64
	}
	adj := make([]edge, 0, len(wrow))
	for _, e := range wrow {
		if int(e.Col) != me {
			adj = append(adj, edge{to: e.Col, w: e.Val.W})
		}
	}

	// sampled reports whether cluster center c survives phase i, with
	// probability n^{-1/k} under a seeded hash (deterministic across
	// nodes).
	thresholdNum := int64(1 << 30)
	// p = n^{-1/k}: realize as (2^30)·n^{-1/k}.
	pScaled := float64(int64(1)<<30) * math.Pow(float64(n), -1.0/float64(k))
	sampled := func(c int64, phase int) bool {
		return float64(hash3(seed, c, int64(phase))%thresholdNum) < pScaled
	}

	cluster := int64(me)             // my cluster center; -1 once dropped out
	myEdges := make(map[int64]int64) // packed (u<<32|v) -> weight, u<v

	addEdge := func(u, v int32, w int64) {
		a, b := u, v
		if a > b {
			a, b = b, a
		}
		key := int64(a)<<32 | int64(b)
		if old, ok := myEdges[key]; !ok || w < old {
			myEdges[key] = w
		}
	}

	// exitWith adds the lightest edge to every adjacent cluster (per the
	// broadcast cluster vector) and leaves the clustering.
	exitWith := func(clusters []int64) {
		best := make(map[int64]edge)
		for _, e := range adj {
			c := clusters[e.to]
			if c < 0 {
				continue
			}
			if b, ok := best[c]; !ok || e.w < b.w || (e.w == b.w && e.to < b.to) {
				best[c] = e
			}
		}
		for _, e := range best {
			addEdge(int32(me), e.to, e.w)
		}
		cluster = -1
	}

	for phase := 1; phase < k; phase++ {
		clusters := nd.BroadcastVal(cluster)
		if cluster < 0 {
			continue // dropped out; still participates in the broadcast
		}
		if sampled(cluster, phase) {
			continue // my cluster survives this phase
		}
		// Find the lightest edge into a sampled cluster.
		bestTo := int32(-1)
		var bestW int64
		for _, e := range adj {
			c := clusters[e.to]
			if c < 0 || !sampled(c, phase) {
				continue
			}
			if bestTo < 0 || e.w < bestW || (e.w == bestW && e.to < bestTo) {
				bestTo, bestW = e.to, e.w
			}
		}
		if bestTo >= 0 {
			addEdge(int32(me), bestTo, bestW)
			cluster = clusters[bestTo]
		} else {
			exitWith(clusters)
		}
	}
	// Final phase: clustered nodes connect to every adjacent cluster.
	clusters := nd.BroadcastVal(cluster)
	if cluster >= 0 {
		exitWith(clusters)
	} else {
		_ = clusters
	}

	// Learn the spanner: every node ships each of its edges to every node.
	out := make([]cc.Packet, 0, len(myEdges)*n)
	for key, w := range myEdges {
		for v := 0; v < n; v++ {
			out = append(out, cc.Packet{Dst: int32(v), M: cc.Msg{A: key >> 32, B: key & 0xffffffff, C: w}})
		}
	}
	all := nd.Route(out)

	// Deduplicate (edges may be announced by both endpoints) and build the
	// local spanner graph.
	type rec struct {
		u, v int32
		w    int64
	}
	recs := make([]rec, 0, len(all))
	for _, m := range all {
		recs = append(recs, rec{u: int32(m.A), v: int32(m.B), w: m.C})
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].u != recs[j].u {
			return recs[i].u < recs[j].u
		}
		if recs[i].v != recs[j].v {
			return recs[i].v < recs[j].v
		}
		return recs[i].w < recs[j].w
	})
	h := graph.New(n)
	edges := 0
	for i, r := range recs {
		if i > 0 && recs[i-1].u == r.u && recs[i-1].v == r.v {
			continue
		}
		if err := h.AddEdge(int(r.u), int(r.v), r.w); err != nil {
			return nil, fmt.Errorf("spanner: bad edge: %w", err)
		}
		edges++
	}
	return &Result{Dist: h.Dijkstra(me), SpannerEdges: edges}, nil
}

func hash3(seed, a, b int64) int64 {
	h := uint64(seed)*0x9E3779B9 ^ uint64(a)*0x85EBCA6B ^ uint64(b)*0xC2B2AE3D
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	h *= 0xC4CEB9FE1A85EC53
	h ^= h >> 33
	return int64(h & (1<<62 - 1))
}
