package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/congestedclique/ccsp/internal/semiring"
)

func randMinPlus(n, perRow int, seed int64) *Mat[int64] {
	sr := semiring.NewMinPlus(1 << 30)
	rng := rand.New(rand.NewSource(seed))
	m := New[int64](n)
	for i, cols := range RandomSupport(n, perRow, seed) {
		row := make(Row[int64], 0, len(cols))
		for _, c := range cols {
			row = append(row, Entry[int64]{Col: c, Val: int64(rng.Intn(100) + 1)})
		}
		m.Rows[i] = SortRow(row)
	}
	if err := m.Check(sr); err != nil {
		panic(err)
	}
	return m
}

func TestSetGet(t *testing.T) {
	sr := semiring.NewMinPlus(1000)
	m := New[int64](5)
	m.Set(sr, 1, 3, 7)
	m.Set(sr, 1, 0, 2)
	m.Set(sr, 1, 4, 9)
	if got := m.Get(sr, 1, 3); got != 7 {
		t.Errorf("Get(1,3)=%d, want 7", got)
	}
	if got := m.Get(sr, 1, 2); !sr.IsZero(got) {
		t.Errorf("Get(1,2)=%d, want zero", got)
	}
	m.Set(sr, 1, 3, 5) // overwrite
	if got := m.Get(sr, 1, 3); got != 5 {
		t.Errorf("after overwrite Get(1,3)=%d, want 5", got)
	}
	m.Set(sr, 1, 3, sr.Zero()) // delete
	if got := m.Get(sr, 1, 3); !sr.IsZero(got) {
		t.Errorf("after delete Get(1,3)=%d, want zero", got)
	}
	if m.NNZ() != 2 {
		t.Errorf("NNZ=%d, want 2", m.NNZ())
	}
	if err := m.Check(sr); err != nil {
		t.Fatal(err)
	}
}

func TestDensity(t *testing.T) {
	sr := semiring.NewMinPlus(1000)
	m := New[int64](4)
	if m.Density() != 1 {
		t.Errorf("empty density=%d, want 1", m.Density())
	}
	for j := 0; j < 3; j++ {
		m.Set(sr, 0, j, 1)
	}
	// nnz=3, n=4 => ceil(3/4)=1
	if m.Density() != 1 {
		t.Errorf("density=%d, want 1", m.Density())
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			m.Set(sr, i, j, 1)
		}
	}
	if m.Density() != 4 {
		t.Errorf("dense density=%d, want 4", m.Density())
	}
}

func TestTransposeInvolution(t *testing.T) {
	sr := semiring.NewMinPlus(1 << 30)
	m := randMinPlus(20, 5, 1)
	tt := m.Transpose().Transpose()
	if !Equal[int64](sr, m, tt) {
		t.Error("transpose twice is not identity")
	}
	tr := m.Transpose()
	if err := tr.Check(sr); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m.N; i++ {
		for _, e := range m.Rows[i] {
			if got := tr.Get(sr, int(e.Col), i); got != e.Val {
				t.Fatalf("transpose mismatch at (%d,%d)", i, e.Col)
			}
		}
	}
}

func TestMulRefIdentity(t *testing.T) {
	sr := semiring.NewMinPlus(1 << 30)
	m := randMinPlus(16, 4, 2)
	id := Identity[int64](sr, 16)
	if p := MulRef[int64](sr, m, id); !Equal[int64](sr, p, m) {
		t.Error("M * I != M")
	}
	if p := MulRef[int64](sr, id, m); !Equal[int64](sr, p, m) {
		t.Error("I * M != M")
	}
}

func TestMulRefAgainstBruteForce(t *testing.T) {
	sr := semiring.NewMinPlus(1 << 30)
	a := randMinPlus(12, 4, 3)
	b := randMinPlus(12, 4, 4)
	p := MulRef[int64](sr, a, b)
	for i := 0; i < 12; i++ {
		for j := 0; j < 12; j++ {
			want := sr.Zero()
			for k := 0; k < 12; k++ {
				want = sr.Add(want, sr.Mul(a.Get(sr, i, k), b.Get(sr, k, j)))
			}
			if got := p.Get(sr, i, j); !sr.Eq(got, want) {
				t.Fatalf("P[%d,%d]=%d, want %d", i, j, got, want)
			}
		}
	}
}

func TestMulRefArithCancellation(t *testing.T) {
	// Over the standard ring, cancellations must not leave explicit zeros.
	sr := semiring.Arith{}
	a := New[int64](2)
	a.Set(sr, 0, 0, 1)
	a.Set(sr, 0, 1, 1)
	b := New[int64](2)
	b.Set(sr, 0, 0, 5)
	b.Set(sr, 1, 0, -5)
	p := MulRef[int64](sr, a, b)
	if p.NNZ() != 0 {
		t.Errorf("cancelled product has %d entries, want 0", p.NNZ())
	}
	if err := p.Check(sr); err != nil {
		t.Fatal(err)
	}
}

func TestSupportDensityIgnoresCancellation(t *testing.T) {
	sr := semiring.Arith{}
	a := New[int64](2)
	a.Set(sr, 0, 0, 1)
	a.Set(sr, 0, 1, 1)
	b := New[int64](2)
	b.Set(sr, 0, 0, 5)
	b.Set(sr, 1, 0, -5)
	// The Boolean support product has entry (0,0) even though the ring
	// product cancels: ρ̂ counts it (§2.1).
	if got := SupportDensity[int64](a, b); got != 1 {
		t.Errorf("SupportDensity=%d, want 1", got)
	}
}

func TestSupportDensityMatchesMinPlusDensity(t *testing.T) {
	// Over min-plus there are no cancellations, so ρ̂_ST = ρ_P (§2.1).
	sr := semiring.NewMinPlus(1 << 30)
	for seed := int64(0); seed < 5; seed++ {
		a := randMinPlus(24, 3, seed*2+10)
		b := randMinPlus(24, 3, seed*2+11)
		p := MulRef[int64](sr, a, b)
		if got, want := SupportDensity[int64](a, b), p.Density(); got != want {
			t.Errorf("seed %d: SupportDensity=%d, product density=%d", seed, got, want)
		}
	}
}

func TestFilterRowKeepsSmallest(t *testing.T) {
	sr := semiring.NewMinPlus(1000)
	r := Row[int64]{{0, 50}, {1, 10}, {2, 30}, {3, 10}, {4, 20}}
	f := FilterRow[int64](sr, r, 3)
	if len(f) != 3 {
		t.Fatalf("filtered size %d, want 3", len(f))
	}
	// Smallest three by (value, col): (1,10), (3,10), (4,20).
	want := map[int32]int64{1: 10, 3: 10, 4: 20}
	for _, e := range f {
		if want[e.Col] != e.Val {
			t.Errorf("unexpected kept entry (%d,%d)", e.Col, e.Val)
		}
		delete(want, e.Col)
	}
	if len(want) != 0 {
		t.Errorf("missing entries: %v", want)
	}
}

func TestFilterProperties(t *testing.T) {
	// Property check of the §2.2 filtered-matrix definition.
	sr := semiring.NewMinPlus(1 << 30)
	prop := func(seed int64, rhoRaw uint8) bool {
		rho := int(rhoRaw)%8 + 1
		m := randMinPlus(16, 6, seed)
		f := Filter[int64](sr, m, rho)
		for i := 0; i < m.N; i++ {
			orig, filt := m.Rows[i], f.Rows[i]
			// (2) row sizes
			wantLen := len(orig)
			if wantLen > rho {
				wantLen = rho
			}
			if len(filt) != wantLen {
				return false
			}
			// (1) values preserved
			for _, e := range filt {
				if m.Get(sr, i, int(e.Col)) != e.Val {
					return false
				}
			}
			// (3) every dropped entry is >= every kept entry
			maxKept := int64(-1)
			for _, e := range filt {
				if e.Val > maxKept {
					maxKept = e.Val
				}
			}
			kept := make(map[int32]struct{}, len(filt))
			for _, e := range filt {
				kept[e.Col] = struct{}{}
			}
			for _, e := range orig {
				if _, ok := kept[e.Col]; !ok && e.Val < maxKept {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckCatchesCorruption(t *testing.T) {
	sr := semiring.NewMinPlus(1000)
	m := New[int64](3)
	m.Rows[0] = Row[int64]{{Col: 2, Val: 1}, {Col: 1, Val: 1}} // unsorted
	if err := m.Check(sr); err == nil {
		t.Error("want error for unsorted row")
	}
	m.Rows[0] = Row[int64]{{Col: 5, Val: 1}} // out of range
	if err := m.Check(sr); err == nil {
		t.Error("want error for out-of-range column")
	}
	m.Rows[0] = Row[int64]{{Col: 1, Val: semiring.Inf}} // explicit zero
	if err := m.Check(sr); err == nil {
		t.Error("want error for explicit zero")
	}
}

func TestRandomSupportShape(t *testing.T) {
	rows := RandomSupport(10, 3, 7)
	if len(rows) != 10 {
		t.Fatalf("rows=%d", len(rows))
	}
	for i, r := range rows {
		if len(r) != 3 {
			t.Errorf("row %d has %d cols, want 3", i, len(r))
		}
		seen := map[int32]bool{}
		for _, c := range r {
			if c < 0 || c >= 10 || seen[c] {
				t.Errorf("row %d invalid col %d", i, c)
			}
			seen[c] = true
		}
	}
}
