// Package matrix provides the row-sparse matrix representation the paper's
// distributed matrix multiplication operates on (§2): n×n matrices over a
// semiring, held row-wise (node v holds row v), with the density notions ρ
// and ρ̂ of §2.1 and the ρ-filtering of §2.2. The sequential products here
// serve as reference implementations that the distributed algorithms are
// verified against.
package matrix

import (
	"fmt"
	"sort"

	"github.com/congestedclique/ccsp/internal/semiring"
)

// Entry is a non-zero entry within a row.
type Entry[E any] struct {
	Col int32
	Val E
}

// Row is a sparse matrix row: entries with non-zero values, sorted by
// column, at most one entry per column.
type Row[E any] []Entry[E]

// Mat is an n×n row-sparse matrix. Rows[i] is row i. The zero value of a
// row (nil) is an all-zero row.
type Mat[E any] struct {
	N    int
	Rows []Row[E]
}

// New returns an all-zero n×n matrix.
func New[E any](n int) *Mat[E] {
	return &Mat[E]{N: n, Rows: make([]Row[E], n)}
}

// Identity returns the n×n semiring identity matrix.
func Identity[E any](sr semiring.Semiring[E], n int) *Mat[E] {
	m := New[E](n)
	for i := 0; i < n; i++ {
		m.Rows[i] = Row[E]{{Col: int32(i), Val: sr.One()}}
	}
	return m
}

// Set sets entry (i, j); setting a semiring zero removes the entry.
func (m *Mat[E]) Set(sr semiring.Semiring[E], i, j int, v E) {
	row := m.Rows[i]
	k := sort.Search(len(row), func(t int) bool { return row[t].Col >= int32(j) })
	switch {
	case k < len(row) && row[k].Col == int32(j):
		if sr.IsZero(v) {
			m.Rows[i] = append(row[:k], row[k+1:]...)
		} else {
			row[k].Val = v
		}
	case sr.IsZero(v):
		// nothing to do
	default:
		row = append(row, Entry[E]{})
		copy(row[k+1:], row[k:])
		row[k] = Entry[E]{Col: int32(j), Val: v}
		m.Rows[i] = row
	}
}

// Get returns entry (i, j), or the semiring zero if absent.
func (m *Mat[E]) Get(sr semiring.Semiring[E], i, j int) E {
	row := m.Rows[i]
	k := sort.Search(len(row), func(t int) bool { return row[t].Col >= int32(j) })
	if k < len(row) && row[k].Col == int32(j) {
		return row[k].Val
	}
	return sr.Zero()
}

// NNZ returns the number of stored entries.
func (m *Mat[E]) NNZ() int {
	total := 0
	for _, r := range m.Rows {
		total += len(r)
	}
	return total
}

// Density returns ρ_M: the smallest positive integer with nz(M) ≤ ρ·n
// (§2.1).
func (m *Mat[E]) Density() int {
	nnz := m.NNZ()
	rho := (nnz + m.N - 1) / m.N
	if rho < 1 {
		rho = 1
	}
	return rho
}

// MaxRowNNZ returns the largest row size.
func (m *Mat[E]) MaxRowNNZ() int {
	mx := 0
	for _, r := range m.Rows {
		if len(r) > mx {
			mx = len(r)
		}
	}
	return mx
}

// Clone returns a deep copy.
func (m *Mat[E]) Clone() *Mat[E] {
	c := New[E](m.N)
	for i, r := range m.Rows {
		c.Rows[i] = append(Row[E](nil), r...)
	}
	return c
}

// Transpose returns the transposed matrix (a sequential helper used by
// reference computations and tests; the distributed algorithms transpose
// via routing).
func (m *Mat[E]) Transpose() *Mat[E] {
	t := New[E](m.N)
	counts := make([]int, m.N)
	for _, r := range m.Rows {
		for _, e := range r {
			counts[e.Col]++
		}
	}
	for j, c := range counts {
		t.Rows[j] = make(Row[E], 0, c)
	}
	for i, r := range m.Rows {
		for _, e := range r {
			t.Rows[e.Col] = append(t.Rows[e.Col], Entry[E]{Col: int32(i), Val: e.Val})
		}
	}
	return t
}

// Equal reports whether a and b are equal entry-wise under sr.
func Equal[E any](sr semiring.Semiring[E], a, b *Mat[E]) bool {
	if a.N != b.N {
		return false
	}
	for i := 0; i < a.N; i++ {
		ra, rb := a.Rows[i], b.Rows[i]
		if len(ra) != len(rb) {
			return false
		}
		for k := range ra {
			if ra[k].Col != rb[k].Col || !sr.Eq(ra[k].Val, rb[k].Val) {
				return false
			}
		}
	}
	return true
}

// Check validates the representation invariants (sorted columns, no
// duplicates, no explicit zeros, columns in range).
func (m *Mat[E]) Check(sr semiring.Semiring[E]) error {
	if len(m.Rows) != m.N {
		return fmt.Errorf("matrix: %d rows for N=%d", len(m.Rows), m.N)
	}
	for i, r := range m.Rows {
		for k, e := range r {
			if e.Col < 0 || int(e.Col) >= m.N {
				return fmt.Errorf("matrix: row %d has out-of-range column %d", i, e.Col)
			}
			if k > 0 && r[k-1].Col >= e.Col {
				return fmt.Errorf("matrix: row %d not strictly sorted at position %d", i, k)
			}
			if sr.IsZero(e.Val) {
				return fmt.Errorf("matrix: row %d stores an explicit zero at column %d", i, e.Col)
			}
		}
	}
	return nil
}

// SortRow normalizes a row built by appends: sorts by column and asserts
// uniqueness.
func SortRow[E any](r Row[E]) Row[E] {
	sort.Slice(r, func(i, j int) bool { return r[i].Col < r[j].Col })
	return r
}

// MergeRows combines rows by semiring addition on overlapping columns
// (for min-plus: the lightest entry wins), e.g. to form a row of G ∪ H
// from graph and hopset rows.
func MergeRows[E any](sr semiring.Semiring[E], rows ...Row[E]) Row[E] {
	var all Row[E]
	for _, r := range rows {
		all = append(all, r...)
	}
	SortRow(all)
	out := all[:0]
	for _, e := range all {
		if len(out) > 0 && out[len(out)-1].Col == e.Col {
			out[len(out)-1].Val = sr.Add(out[len(out)-1].Val, e.Val)
			continue
		}
		out = append(out, e)
	}
	return out
}
