package matrix

import (
	"math/rand"
	"sort"

	"github.com/congestedclique/ccsp/internal/semiring"
)

// MulRef computes the product P = S·T over sr sequentially. It is the
// reference implementation the distributed algorithms of §2 are verified
// against.
func MulRef[E any](sr semiring.Semiring[E], s, t *Mat[E]) *Mat[E] {
	n := s.N
	p := New[E](n)
	acc := make([]E, n)
	hit := make([]bool, n)
	touched := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		touched = touched[:0]
		for _, es := range s.Rows[i] {
			trow := t.Rows[es.Col]
			for _, et := range trow {
				prod := sr.Mul(es.Val, et.Val)
				if hit[et.Col] {
					acc[et.Col] = sr.Add(acc[et.Col], prod)
				} else {
					hit[et.Col] = true
					acc[et.Col] = prod
					touched = append(touched, et.Col)
				}
			}
		}
		row := make(Row[E], 0, len(touched))
		for _, j := range touched {
			if !sr.IsZero(acc[j]) {
				row = append(row, Entry[E]{Col: j, Val: acc[j]})
			}
			hit[j] = false
		}
		p.Rows[i] = SortRow(row)
	}
	return p
}

// SupportDensity computes ρ̂_ST of §2.1: the density of the Boolean product
// of the supports of S and T, ignoring cancellations. It is what the
// known-density variant of Theorem 8 assumes known.
func SupportDensity[E any](s, t *Mat[E]) int {
	n := s.N
	words := (n + 63) / 64
	tbits := make([][]uint64, n)
	for k := 0; k < n; k++ {
		bits := make([]uint64, words)
		for _, e := range t.Rows[k] {
			bits[e.Col>>6] |= 1 << (uint(e.Col) & 63)
		}
		tbits[k] = bits
	}
	rowBits := make([]uint64, words)
	nnz := 0
	for i := 0; i < n; i++ {
		for w := range rowBits {
			rowBits[w] = 0
		}
		for _, es := range s.Rows[i] {
			for w, b := range tbits[es.Col] {
				rowBits[w] |= b
			}
		}
		for _, w := range rowBits {
			nnz += popcount(w)
		}
	}
	rho := (nnz + n - 1) / n
	if rho < 1 {
		rho = 1
	}
	return rho
}

func popcount(x uint64) int {
	count := 0
	for x != 0 {
		x &= x - 1
		count++
	}
	return count
}

// FilterRow returns the ρ-filtered version of a row per §2.2: the ρ
// smallest entries under the order (Rank(value), column), matching the
// tie-breaking used by the cutoff values of Lemma 15. The input row is not
// modified.
func FilterRow[E any](sr semiring.Ordered[E], r Row[E], rho int) Row[E] {
	if len(r) <= rho {
		return r
	}
	idx := make([]int, len(r))
	for i := range idx {
		idx[i] = i
	}
	ranks := make([]int64, len(r))
	for i, e := range r {
		ranks[i] = sr.Rank(e.Val)
	}
	sort.Slice(idx, func(a, b int) bool {
		if ranks[idx[a]] != ranks[idx[b]] {
			return ranks[idx[a]] < ranks[idx[b]]
		}
		return r[idx[a]].Col < r[idx[b]].Col
	})
	out := make(Row[E], 0, rho)
	for _, i := range idx[:rho] {
		out = append(out, r[i])
	}
	return SortRow(out)
}

// Filter returns the ρ-filtered version of m: each row keeps its ρ smallest
// entries (§2.2).
func Filter[E any](sr semiring.Ordered[E], m *Mat[E], rho int) *Mat[E] {
	out := New[E](m.N)
	for i, r := range m.Rows {
		out.Rows[i] = FilterRow(sr, r, rho)
	}
	return out
}

// RandomSupport returns a deterministic random support pattern with the
// given number of entries per row (used by tests and benchmarks to build
// workload matrices).
func RandomSupport(n, perRow int, seed int64) [][]int32 {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]int32, n)
	for i := range rows {
		seen := make(map[int32]struct{}, perRow)
		cols := make([]int32, 0, perRow)
		for len(cols) < perRow && len(cols) < n {
			c := int32(rng.Intn(n))
			if _, dup := seen[c]; dup {
				continue
			}
			seen[c] = struct{}{}
			cols = append(cols, c)
		}
		rows[i] = cols
	}
	return rows
}
