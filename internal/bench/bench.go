// Package bench defines the reproduction experiments of DESIGN.md §4: one
// experiment per theorem ("table") of the paper, plus the ablations. Each
// experiment generates its workload, runs the distributed algorithms on the
// simulator, verifies the theorem's guarantee, and renders a table of
// measured rounds against the paper's bound. cmd/ccbench and the package's
// benchmarks (bench_test.go) are thin wrappers around Run.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/congestedclique/ccsp/internal/cc"
)

// Config carries cross-experiment settings to every experiment.
type Config struct {
	// Scale selects experiment sizes.
	Scale Scale
	// Workers is the engine worker-pool size experiments use when
	// building simulator configs; 0 keeps the engine default (GOMAXPROCS,
	// serial for small cliques). E13 ignores it: that experiment sweeps
	// worker counts itself.
	Workers int
}

// engineCfg is the simulator config shared by all experiments.
func engineCfg(c Config, n int) cc.Config { return cc.Config{N: n, Workers: c.Workers} }

// Scale selects experiment sizes.
type Scale int

const (
	// Quick runs reduced sizes (seconds); used by benchmarks and CI.
	Quick Scale = iota
	// Full runs the sizes recorded in EXPERIMENTS.md (minutes).
	Full
)

// Table is one regenerated result table.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Add appends a row; values are formatted with %v.
func (t *Table) Add(vals ...interface{}) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", x)
		default:
			row[i] = fmt.Sprintf("%v", x)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a free-text note under the table.
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the table as aligned text (valid Markdown).
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	fmt.Fprintf(w, "### %s: %s\n\n", t.ID, t.Title)
	line := func(cells []string) {
		parts := make([]string, len(widths))
		for i := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintf(w, "| %s |\n", strings.Join(parts, " | "))
	}
	line(t.Columns)
	sep := make([]string, len(widths))
	for i, wd := range widths {
		sep[i] = strings.Repeat("-", wd)
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(sep, " | "))
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "\n%s\n", n)
	}
	fmt.Fprintln(w)
}

// Experiment is a registered reproduction experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func(c Config) (*Table, error)
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns the registered experiments in ID order.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Run executes one experiment by ID at the given scale with default
// settings.
func Run(id string, s Scale) (*Table, error) {
	return RunConfig(id, Config{Scale: s})
}

// RunConfig executes one experiment by ID with explicit settings.
func RunConfig(id string, c Config) (*Table, error) {
	for _, e := range registry {
		if e.ID == id {
			return e.Run(c)
		}
	}
	return nil, fmt.Errorf("bench: unknown experiment %q", id)
}

func sizes(s Scale, quick, full []int) []int {
	if s == Full {
		return full
	}
	return quick
}
