package bench

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"github.com/congestedclique/ccsp/internal/cc"
	"github.com/congestedclique/ccsp/internal/matmul"
	"github.com/congestedclique/ccsp/internal/matrix"
	"github.com/congestedclique/ccsp/internal/semiring"
)

func init() {
	register(Experiment{ID: "E1", Title: "Theorem 8: output-sensitive sparse matrix multiplication", Run: e1})
	register(Experiment{ID: "E2", Title: "Theorem 14: sparse multiplication with output filtering", Run: e2})
	register(Experiment{ID: "A3", Title: "Ablation: filtered (Thm 14) vs known-density (Thm 8) multiplication", Run: a3})
}

func randSparse(n, perRow int, seed int64) *matrix.Mat[int64] {
	rng := rand.New(rand.NewSource(seed))
	m := matrix.New[int64](n)
	for i, cols := range matrix.RandomSupport(n, perRow, seed) {
		row := make(matrix.Row[int64], 0, len(cols))
		for _, c := range cols {
			row = append(row, matrix.Entry[int64]{Col: c, Val: int64(rng.Intn(1000) + 1)})
		}
		m.Rows[i] = matrix.SortRow(row)
	}
	return m
}

// e1 sweeps input density at several n and reports measured rounds against
// the Theorem 8 formula (ρS·ρT·ρ̂)^{1/3}/n^{2/3} + 1, with output verified
// against the sequential reference.
func e1(c Config) (*Table, error) {
	t := &Table{
		ID:      "E1",
		Title:   "Theorem 8 - rounds vs (ρSρT ρ̂)^{1/3}/n^{2/3}+1 (min-plus, random supports)",
		Columns: []string{"n", "ρS=ρT", "ρ̂ (true)", "rounds", "formula", "rounds/formula", "correct"},
	}
	sr := semiring.NewMinPlus(1 << 40)
	for _, n := range sizes(c.Scale, []int{64, 128}, []int{64, 128, 256}) {
		for _, rho := range []int{1, intPow(n, 1.0/3), intPow(n, 0.5), intPow(n, 2.0/3)} {
			a := randSparse(n, rho, int64(n*31+rho))
			b := randSparse(n, rho, int64(n*37+rho))
			rhoHat := matrix.SupportDensity[int64](a, b)
			want := matrix.MulRef[int64](sr, a, b)
			got := matrix.New[int64](n)
			stats, err := cc.Run(context.Background(), engineCfg(c, n), func(nd *cc.Node) error {
				row, err := matmul.Multiply(nd, sr, a.Rows[nd.ID], b.Rows[nd.ID], rhoHat)
				if err != nil {
					return err
				}
				got.Rows[nd.ID] = row
				return nil
			})
			if err != nil {
				return nil, err
			}
			formula := math.Cbrt(float64(rho)*float64(rho)*float64(rhoHat))/math.Pow(float64(n), 2.0/3) + 1
			t.Add(n, rho, rhoHat, stats.TotalRounds(), formula,
				float64(stats.TotalRounds())/formula, matrix.Equal[int64](sr, got, want))
		}
	}
	t.Note("Shape check: rounds/formula stays within a constant band across the sweep; 'correct' verifies the product against the sequential reference.")
	return t, nil
}

// e2 measures the filtered multiplication: the formula gains the +log W
// binary-search term; the output is the ρ smallest entries per row.
func e2(c Config) (*Table, error) {
	t := &Table{
		ID:      "E2",
		Title:   "Theorem 14 - filtered multiplication, rounds vs (ρSρTρ)^{1/3}/n^{2/3}+log W",
		Columns: []string{"n", "ρS=ρT", "ρ (filter)", "rounds", "formula", "rounds/formula", "correct"},
	}
	sr := semiring.NewMinPlus(1 << 20)
	logW := math.Log2(float64(sr.MaxRank()))
	for _, n := range sizes(c.Scale, []int{64, 128}, []int{64, 128, 256}) {
		for _, rho := range []int{intPow(n, 1.0/3), intPow(n, 0.5)} {
			a := randSparse(n, rho, int64(n*41+rho))
			b := randSparse(n, rho, int64(n*43+rho))
			want := matrix.Filter[int64](sr, matrix.MulRef[int64](sr, a, b), rho)
			got := matrix.New[int64](n)
			stats, err := cc.Run(context.Background(), engineCfg(c, n), func(nd *cc.Node) error {
				got.Rows[nd.ID] = matmul.MultiplyFiltered(nd, sr, a.Rows[nd.ID], b.Rows[nd.ID], rho)
				return nil
			})
			if err != nil {
				return nil, err
			}
			formula := math.Cbrt(float64(rho)*float64(rho)*float64(rho))/math.Pow(float64(n), 2.0/3) + logW
			t.Add(n, rho, rho, stats.TotalRounds(), formula,
				float64(stats.TotalRounds())/formula, matrix.Equal[int64](sr, got, want))
		}
	}
	t.Note("The additive log W term (log W = %d binary-search bits) dominates at these sizes, as the theorem predicts for ρ = o(n^{2/3}).", int64(logW))
	return t, nil
}

// a3 contrasts Theorem 14 against Theorem 8 on the §1.3 star adversary,
// where the unfiltered product is dense: the filtered variant's rounds stay
// flat while the known-density variant pays for ρ̂ = n.
func a3(c Config) (*Table, error) {
	t := &Table{
		ID:      "A3",
		Title:   "Ablation - dense-output adversary (star²): Thm 14 filtering vs Thm 8 full product",
		Columns: []string{"n", "algorithm", "output entries/row", "rounds"},
	}
	sr := semiring.NewMinPlus(1 << 40)
	for _, n := range sizes(c.Scale, []int{64, 128}, []int{64, 128, 256}) {
		star := matrix.New[int64](n)
		for j := 1; j < n; j++ {
			star.Set(sr, 0, j, int64(j))
			star.Set(sr, j, 0, int64(j))
		}
		rho := intPow(n, 0.5)
		statsF, err := cc.Run(context.Background(), engineCfg(c, n), func(nd *cc.Node) error {
			matmul.MultiplyFiltered(nd, sr, star.Rows[nd.ID], star.Rows[nd.ID], rho)
			return nil
		})
		if err != nil {
			return nil, err
		}
		t.Add(n, fmt.Sprintf("Thm 14 (ρ=%d)", rho), rho, statsF.TotalRounds())
		rhoHat := matrix.SupportDensity[int64](star, star)
		statsD, err := cc.Run(context.Background(), engineCfg(c, n), func(nd *cc.Node) error {
			_, err := matmul.Multiply(nd, sr, star.Rows[nd.ID], star.Rows[nd.ID], rhoHat)
			return err
		})
		if err != nil {
			return nil, err
		}
		t.Add(n, "Thm 8 (full)", rhoHat, statsD.TotalRounds())
	}
	t.Note("The star graph is the dense-product adversary named in §1.3: its square has ρ̂ ≈ n. Filtering keeps the cost output-sensitive.")
	return t, nil
}

func intPow(n int, e float64) int {
	v := int(math.Ceil(math.Pow(float64(n), e)))
	if v < 1 {
		v = 1
	}
	if v > n {
		v = n
	}
	return v
}
