package bench

import (
	"context"
	"math"

	"github.com/congestedclique/ccsp/internal/cc"
	"github.com/congestedclique/ccsp/internal/disttools"
	"github.com/congestedclique/ccsp/internal/graph"
	"github.com/congestedclique/ccsp/internal/graphgen"
	"github.com/congestedclique/ccsp/internal/matrix"
	"github.com/congestedclique/ccsp/internal/semiring"
)

func init() {
	register(Experiment{ID: "E3", Title: "Theorem 18: k-nearest neighbors", Run: e3})
	register(Experiment{ID: "E4", Title: "Theorem 19: (S,d,k) source detection", Run: e4})
	register(Experiment{ID: "E5", Title: "Theorem 20: distance through node sets", Run: e5})
}

// knearRef computes the exact k-nearest reference via Dijkstra.
func knearRef(g *graph.Graph, k int) *matrix.Mat[semiring.WH] {
	sr := g.AugSemiring()
	m := matrix.New[semiring.WH](g.N)
	for v := 0; v < g.N; v++ {
		row := make(matrix.Row[semiring.WH], 0, g.N)
		for u, d := range g.DijkstraAug(v) {
			if !sr.IsZero(d) {
				row = append(row, matrix.Entry[semiring.WH]{Col: int32(u), Val: d})
			}
		}
		m.Rows[v] = matrix.FilterRow(sr, row, k)
	}
	return m
}

// e3 sweeps k and reports rounds against (k/n^{2/3}+log n)·log k, with the
// output checked against the Dijkstra reference.
func e3(c Config) (*Table, error) {
	t := &Table{
		ID:      "E3",
		Title:   "Theorem 18 - k-nearest, rounds vs (k/n^{2/3}+log n)·log k",
		Columns: []string{"n", "k", "rounds", "formula", "rounds/formula", "exact"},
	}
	for _, n := range sizes(c.Scale, []int{64, 121}, []int{64, 121, 225}) {
		g := graphgen.Connected(n, 2*n, graphgen.Weights{Max: 10}, int64(n))
		sr := g.AugSemiring()
		for _, k := range []int{intPow(n, 0.5), intPow(n, 2.0/3)} {
			want := knearRef(g, k)
			got := matrix.New[semiring.WH](n)
			stats, err := cc.Run(context.Background(), engineCfg(c, n), func(nd *cc.Node) error {
				got.Rows[nd.ID] = disttools.KNearest[semiring.WH](nd, sr, g.WeightRow(nd.ID), k)
				return nil
			})
			if err != nil {
				return nil, err
			}
			logn := math.Log2(float64(n))
			logk := math.Log2(float64(k)) + 1
			formula := (float64(k)/math.Pow(float64(n), 2.0/3) + logn) * logk
			t.Add(n, k, stats.TotalRounds(), formula,
				float64(stats.TotalRounds())/formula, matrix.Equal[semiring.WH](sr, got, want))
		}
	}
	t.Note("'exact' compares all k-nearest sets and distances against a sequential Dijkstra reference with identical tie-breaking.")
	return t, nil
}

// e4 reports both Theorem 19 variants across source-set sizes and hop
// limits.
func e4(c Config) (*Table, error) {
	t := &Table{
		ID:      "E4",
		Title:   "Theorem 19 - source detection, both variants",
		Columns: []string{"n", "|S|", "d", "variant", "rounds", "formula", "correct"},
	}
	for _, n := range sizes(c.Scale, []int{64, 121}, []int{64, 121, 225}) {
		g := graphgen.Connected(n, 3*n, graphgen.Weights{Max: 10}, int64(n)+5)
		sr := g.AugSemiring()
		m := float64(2 * g.M())
		for _, nS := range []int{intPow(n, 0.25), intPow(n, 0.5)} {
			inS := make([]bool, n)
			for i := 0; i < nS; i++ {
				inS[(i*n)/nS] = true
			}
			for _, d := range []int{2, 4} {
				want := sourceDetectRefBench(g, inS, d)
				got := matrix.New[semiring.WH](n)
				stats, err := cc.Run(context.Background(), engineCfg(c, n), func(nd *cc.Node) error {
					row, err := disttools.SourceDetect[semiring.WH](nd, sr, g.WeightRow(nd.ID), inS, d)
					if err != nil {
						return err
					}
					got.Rows[nd.ID] = row
					return nil
				})
				if err != nil {
					return nil, err
				}
				formula := (math.Cbrt(m)*math.Pow(float64(nS), 2.0/3)/float64(n) + 1) * float64(d)
				t.Add(n, nS, d, "all-sources", stats.TotalRounds(), formula,
					matrix.Equal[semiring.WH](sr, got, want))

				k := 2
				wantK := matrix.New[semiring.WH](n)
				for v := 0; v < n; v++ {
					wantK.Rows[v] = matrix.FilterRow(sr, want.Rows[v], k)
				}
				gotK := matrix.New[semiring.WH](n)
				statsK, err := cc.Run(context.Background(), engineCfg(c, n), func(nd *cc.Node) error {
					gotK.Rows[nd.ID] = disttools.SourceDetectK[semiring.WH](nd, sr, g.WeightRow(nd.ID), inS, d, k)
					return nil
				})
				if err != nil {
					return nil, err
				}
				formulaK := (math.Cbrt(m)*math.Pow(float64(k), 2.0/3)/float64(n) + math.Log2(float64(n))) * float64(d)
				t.Add(n, nS, d, "k=2 filtered", statsK.TotalRounds(), formulaK,
					matrix.Equal[semiring.WH](sr, gotK, wantK))
			}
		}
	}
	t.Note("Formulas: (m^{1/3}|S|^{2/3}/n + 1)·d for the all-sources variant, (m^{1/3}k^{2/3}/n + log n)·d for the filtered one.")
	return t, nil
}

func sourceDetectRefBench(g *graph.Graph, inS []bool, d int) *matrix.Mat[semiring.WH] {
	sr := g.AugSemiring()
	w := g.WeightMatrix()
	u := matrix.New[semiring.WH](g.N)
	for v := 0; v < g.N; v++ {
		for _, e := range w.Rows[v] {
			if inS[e.Col] {
				u.Rows[v] = append(u.Rows[v], e)
			}
		}
	}
	for i := 1; i < d; i++ {
		u = matrix.MulRef[semiring.WH](sr, w, u)
	}
	return u
}

// e5 measures distance-through-sets with sets of size ~√n: the Theorem 20
// bound ρ^{2/3}/n^{1/3}+1 is O(1) there.
func e5(c Config) (*Table, error) {
	t := &Table{
		ID:      "E5",
		Title:   "Theorem 20 - distance through sets, rounds vs ρ^{2/3}/n^{1/3}+1",
		Columns: []string{"n", "ρ (set size)", "rounds", "formula", "rounds/formula", "correct"},
	}
	for _, n := range sizes(c.Scale, []int{64, 121}, []int{64, 121, 225}) {
		sr := semiring.NewMinPlus(1 << 40)
		rho := intPow(n, 0.5)
		sets := make([][]disttools.Est, n)
		for v := 0; v < n; v++ {
			for i := 0; i < rho; i++ {
				w := int32((v*7 + i*13) % n)
				dup := false
				for _, e := range sets[v] {
					if e.W == w {
						dup = true
						break
					}
				}
				if !dup {
					sets[v] = append(sets[v], disttools.Est{W: w, To: int64(v%50 + i + 1), From: int64(v%50 + i + 1)})
				}
			}
		}
		got := matrix.New[int64](n)
		stats, err := cc.Run(context.Background(), engineCfg(c, n), func(nd *cc.Node) error {
			row, err := disttools.DistThroughSets(nd, sr, sets[nd.ID])
			if err != nil {
				return err
			}
			got.Rows[nd.ID] = row
			return nil
		})
		if err != nil {
			return nil, err
		}
		// Spot-check correctness by brute force on a diagonal sample.
		correct := true
		for v := 0; v < n && correct; v += 7 {
			u := (v * 3) % n
			want := sr.Zero()
			for _, ev := range sets[v] {
				for _, eu := range sets[u] {
					if ev.W == eu.W {
						want = sr.Add(want, ev.To+eu.From)
					}
				}
			}
			if !sr.Eq(got.Get(sr, v, u), want) {
				correct = false
			}
		}
		formula := math.Pow(float64(rho), 2.0/3)/math.Cbrt(float64(n)) + 1
		t.Add(n, rho, stats.TotalRounds(), formula, float64(stats.TotalRounds())/formula, correct)
	}
	return t, nil
}
