package bench

import (
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/congestedclique/ccsp"
	"github.com/congestedclique/ccsp/internal/graphgen"
)

func init() {
	register(Experiment{ID: "E18", Title: "Direct query-path latency after the PR7 overhaul", Run: e18})
}

// e18 measures the warm direct-mode MSSP query latency the PR7 overhaul
// targets: per-artifact G ∪ H caching, the source-restricted detection
// panel, and the specialized WH kernel (DESIGN.md §13). The graph family
// and sources match E17, so the q=3 rows are directly comparable to
// E17's "direct query ms" column (11.8ms at n=256, 135ms at n=1024
// before the overhaul). Warm latency and allocations per query come from
// testing.Benchmark; the cold column is the first query on a fresh
// engine, which additionally pays the one-time G ∪ H merge.
func e18(c Config) (*Table, error) {
	t := &Table{
		ID:      "E18",
		Title:   "Direct query path - warm MSSP latency and allocations per query",
		Columns: []string{"n", "q", "cold query ms", "warm ms/op", "KB/op", "allocs/op"},
	}
	eps := 0.5
	for _, n := range sizes(c.Scale, []int{48, 96}, []int{256, 1024}) {
		g := graphgen.Connected(n, 3*n, graphgen.Weights{Max: 10}, int64(n)+17)
		gr, err := toPublic(g)
		if err != nil {
			return nil, err
		}
		eng, err := ccsp.NewEngine(context.Background(), gr,
			ccsp.Options{Epsilon: eps, Workers: c.Workers, Execution: ccsp.ExecDirect})
		if err != nil {
			return nil, err
		}
		for _, q := range []int{1, 3, 8} {
			sources := make([]int, 0, q)
			for i := 0; i < q; i++ {
				sources = append(sources, (i*n/q+1)%n)
			}
			if q == 3 {
				sources = []int{1 % n, n / 2, n - 1} // the E17 query, for comparison
			}
			cold, err := coldQueryMS(gr, eps, c.Workers, sources)
			if err != nil {
				return nil, err
			}
			var qErr error
			res := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := eng.MSSP(context.Background(), sources); err != nil {
						qErr = err
						b.FailNow()
					}
				}
			})
			if qErr != nil {
				return nil, fmt.Errorf("E18: n=%d q=%d: %w", n, q, qErr)
			}
			t.Add(n, q,
				fmt.Sprintf("%.2f", cold),
				fmt.Sprintf("%.2f", float64(res.NsPerOp())/1e6),
				fmt.Sprintf("%.0f", float64(res.AllocedBytesPerOp())/1024),
				res.AllocsPerOp())
		}
	}
	t.Note("Same graph family and q=3 sources as E17, so those rows are before/after comparable with E17's direct query column. Warm queries reuse the engine's cached G ∪ H merge and run the source-restricted detection panel with the specialized WH kernel; cold is the first query on a fresh engine (one-time merge included). Allocations are per query via testing.Benchmark.")
	return t, nil
}

// coldQueryMS times the first MSSP query on a freshly preprocessed
// engine: the per-artifact caches are empty, so it includes the one-time
// G ∪ H merge a warm query skips.
func coldQueryMS(gr *ccsp.Graph, eps float64, workers int, sources []int) (float64, error) {
	eng, err := ccsp.NewEngine(context.Background(), gr,
		ccsp.Options{Epsilon: eps, Workers: workers, Execution: ccsp.ExecDirect})
	if err != nil {
		return 0, err
	}
	start := time.Now()
	if _, err := eng.MSSP(context.Background(), sources); err != nil {
		return 0, err
	}
	return float64(time.Since(start).Microseconds()) / 1000, nil
}
