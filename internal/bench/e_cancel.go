package bench

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/congestedclique/ccsp/internal/cc"
)

func init() {
	register(Experiment{ID: "E16", Title: "Cancellation latency: cancel() to cc.Run return, barrier granularity", Run: e16})
}

// e16 measures the responsiveness bound of the context plumbing (PR 4):
// the simulator only observes cancellation at barrier steps (between
// collectives), so the latency from cancel() to cc.Run returning is
// bounded by the longest single collective in flight. The workload is the
// E13 collective-heavy mix (route + sort + broadcast per round), canceled
// mid-run; the table reports how much work the run completed before
// cancellation and how fast it unwound - at n=256 a full preprocessing
// run takes ~57s (E15), so milliseconds-scale unwind latency is what
// makes server-side deadlines (504s) meaningful.
func e16(c Config) (*Table, error) {
	t := &Table{
		ID:      "E16",
		Title:   "Cancellation latency - cancel() to cc.Run return (collective-heavy workload)",
		Columns: []string{"n", "workers", "cancel after", "rounds done", "latency ms", "typed error"},
	}
	const trials = 3
	cancelAfter := 25 * time.Millisecond
	for _, n := range sizes(c.Scale, []int{16, 32, 64}, []int{64, 128, 256}) {
		best := time.Duration(-1)
		var rounds int
		var typed bool
		for trial := 0; trial < trials; trial++ {
			ctx, cancel := context.WithCancel(context.Background())
			canceledAt := make(chan time.Time, 1)
			timer := time.AfterFunc(cancelAfter, func() {
				canceledAt <- time.Now()
				cancel()
			})
			// An effectively unbounded run: only cancellation ends it.
			stats, err := cc.Run(ctx, cc.Config{N: n, Workers: c.Workers, MaxRounds: 1 << 30},
				scalingWorkload(1<<30))
			returned := time.Now()
			timer.Stop()
			cancel()
			if err == nil {
				return nil, fmt.Errorf("E16: n=%d: unbounded run returned without error", n)
			}
			if !errors.Is(err, cc.ErrCanceled) || !errors.Is(err, context.Canceled) {
				return nil, fmt.Errorf("E16: n=%d: error is not the typed cancel chain: %w", n, err)
			}
			typed = true
			latency := returned.Sub(<-canceledAt)
			if best < 0 || latency < best {
				best = latency
				rounds = stats.TotalRounds()
			}
		}
		t.Add(n, c.Workers, cancelAfter, rounds, ms(best), typed)
	}
	t.Note("latency = best of %d trials, wall-clock from cancel() to cc.Run return; bounded by the longest in-flight collective (barrier granularity).", trials)
	t.Note("'rounds done' is the partial Stats prefix the canceled run still reports; 'typed error' asserts errors.Is(err, cc.ErrCanceled) and context.Canceled.")
	return t, nil
}
