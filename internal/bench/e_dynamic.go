package bench

import (
	"context"
	"fmt"
	"net/http/httptest"
	"runtime"
	"sort"
	"time"

	"github.com/congestedclique/ccsp"
	"github.com/congestedclique/ccsp/api"
	"github.com/congestedclique/ccsp/client"
	"github.com/congestedclique/ccsp/internal/graphgen"
	"github.com/congestedclique/ccsp/internal/server"
)

func init() {
	register(Experiment{ID: "E20", Title: "Dynamic graphs: update-to-fresh-answer latency and query latency held during rebuilds", Run: e20})
}

// e20 measures the mutation subsystem per graph size:
//
//   - update->fresh: end-to-end wall time of one synchronous POST
//     /v1/update (stage, background rebuild of the mutated graph, atomic
//     swap) plus the query that reads the new epoch - the operational
//     "how long until a write is answerable" number. Direct-mode
//     rebuilds keep this in engine-build territory (E17), not simulator
//     territory.
//   - held latency: distance queries sampled against the serving engine
//     in-process, steady state vs inside exactly one rebuild window
//     (async update staged, sampled until its epoch publishes). The
//     claim under test is the hot-swap design's: readers take one atomic
//     engine load and never wait on the builder, so the during-rebuild
//     quantiles sit in the steady band rather than the
//     rebuild-duration band. Sampling in-process keeps the measurement
//     about the swap protocol; on a box with few cores the HTTP stack's
//     goroutine hops would otherwise measure scheduler starvation by
//     the CPU-bound build, not blocking.
func e20(c Config) (*Table, error) {
	t := &Table{
		ID:    "E20",
		Title: "Dynamic updates - update-to-fresh-answer latency and held query latency",
		Columns: []string{"n", "update->fresh p50 ms", "update->fresh max ms",
			"q p50 ms steady", "q p99 ms steady", "q p50 ms during", "q p99 ms during", "rebuild ms"},
	}
	ns := sizes(c.Scale, []int{64, 128}, []int{256, 1024})
	steadyDur := 300 * time.Millisecond
	if c.Scale == Full {
		steadyDur = time.Second
	}
	ctx := context.Background()
	msf := func(d time.Duration) string { return fmt.Sprintf("%.3f", float64(d)/float64(time.Millisecond)) }

	for _, n := range ns {
		g := graphgen.Connected(n, 3*n, graphgen.Weights{Max: 10}, int64(n)+29)
		gr, err := toPublic(g)
		if err != nil {
			return nil, err
		}
		eng, err := ccsp.NewEngine(ctx, gr,
			ccsp.Options{Epsilon: 0.5, Workers: c.Workers, Execution: ccsp.ExecDirect})
		if err != nil {
			return nil, err
		}
		dyn := ccsp.NewDynamicEngine(eng)
		srv, err := server.New(server.Config{Deferred: true})
		if err != nil {
			dyn.Close()
			return nil, err
		}
		if err := srv.AddDynamicGraph("", dyn); err != nil {
			dyn.Close()
			return nil, err
		}
		srv.SetReady()
		ts := httptest.NewServer(srv.Handler())
		cl := client.New(ts.URL)

		// Update-to-fresh-answer, over HTTP: each iteration reweights one
		// spanning edge (a distance-changing write), blocks until the
		// epoch publishes, and re-reads a distance at the new epoch.
		const kUpdates = 8
		updSamples := make([]time.Duration, 0, kUpdates)
		for i := 0; i < kUpdates; i++ {
			begin := time.Now()
			if _, err := cl.Update(ctx, "", []api.EdgeUpdate{{U: 1 + i%(n-1), V: 0, W: int64(5 + i)}}); err != nil {
				ts.Close()
				dyn.Close()
				return nil, err
			}
			if _, err := cl.Distance(ctx, 0, n-1); err != nil {
				ts.Close()
				dyn.Close()
				return nil, err
			}
			updSamples = append(updSamples, time.Since(begin))
		}
		ts.Close()
		sort.Slice(updSamples, func(i, j int) bool { return updSamples[i] < updSamples[j] })

		// Held latency, in-process: the same single-epoch read the server
		// takes per request (one atomic engine load, then a query).
		req := api.Request{Kind: api.KindDistance, Distance: &api.DistanceParams{From: 0, To: n - 1}}
		query := func() (time.Duration, error) {
			e := dyn.Engine()
			begin := time.Now()
			_, err := e.Query(ctx, req)
			return time.Since(begin), err
		}
		if _, err := query(); err != nil { // warm the direct matrices
			dyn.Close()
			return nil, err
		}
		var steady []time.Duration
		for end := time.Now().Add(steadyDur); time.Now().Before(end); {
			lat, err := query()
			if err != nil {
				dyn.Close()
				return nil, err
			}
			steady = append(steady, lat)
		}
		rebuildStart := time.Now()
		epoch, err := dyn.ApplyUpdates(ctx, []EdgeUpdate{{U: 1, V: 0, W: 77}})
		if err != nil {
			dyn.Close()
			return nil, err
		}
		var during []time.Duration
		for dyn.Epoch() < epoch {
			lat, err := query()
			if err != nil {
				dyn.Close()
				return nil, err
			}
			during = append(during, lat)
		}
		rebuildWall := time.Since(rebuildStart)
		dyn.Close()

		q := func(s []time.Duration, f float64) time.Duration {
			if len(s) == 0 {
				return 0
			}
			c := append([]time.Duration(nil), s...)
			sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
			return c[int(f*float64(len(c)-1))]
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			msf(updSamples[len(updSamples)/2]),
			msf(updSamples[len(updSamples)-1]),
			msf(q(steady, 0.5)), msf(q(steady, 0.99)),
			msf(q(during, 0.5)), msf(q(during, 0.99)),
			msf(rebuildWall),
		})
	}
	t.Note("Direct-mode engines over connected graphs with m=3n, GOMAXPROCS=%d. update->fresh times one synchronous POST /v1/update (stage + background rebuild + hot swap) plus the distance query that reads the new epoch, end to end over HTTP, %d samples per n. The held-latency columns sample the same distance query in-process against the serving engine - the identical single-atomic-load read the daemon takes per request - in steady state and then inside exactly one rebuild window (async update staged, sampled until its epoch publishes; \"rebuild ms\" is that window). The claim: readers never wait on the builder, so the during-rebuild quantiles sit in the steady band, not the rebuild-duration band, even while the builder saturates a core.", runtime.GOMAXPROCS(0), 8)
	return t, nil
}

// EdgeUpdate alias avoids the bench package spelling ccsp.EdgeUpdate
// at every literal above.
type EdgeUpdate = ccsp.EdgeUpdate
