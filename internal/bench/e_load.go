package bench

import (
	"context"
	"fmt"
	"net/http/httptest"
	"time"

	"github.com/congestedclique/ccsp"
	"github.com/congestedclique/ccsp/api"
	"github.com/congestedclique/ccsp/client"
	"github.com/congestedclique/ccsp/internal/graphgen"
	"github.com/congestedclique/ccsp/internal/loadgen"
	"github.com/congestedclique/ccsp/internal/server"
)

func init() {
	register(Experiment{ID: "E19", Title: "Serving under load: throughput, tail latency and admission-control shedding", Run: e19})
}

// e19 measures the serving tier from the outside with the loadgen
// harness, in-process against httptest daemons.
//
// Rows:
//
//  1. "direct closed": a warm direct-mode daemon driven closed-loop -
//     the headline throughput of the fast query path.
//  2. "sim closed (saturation)": the same graph behind a simulated-mode
//     engine, closed-loop at the admission limit - each query costs
//     real engine work for tens of milliseconds, so this row IS the
//     daemon's capacity, robust to how many cores the harness shares.
//  3. "sim overload 2x": that daemon rebuilt with MaxInFlight equal to
//     row 2's concurrency and no wait queue, offered ~2x row 2's
//     measured throughput open-loop. The claim under test is the PR's:
//     admitted requests ("ok") hold a tail comparable to row 2 and the
//     excess sheds as fast typed 503s ("shed") instead of queueing
//     into latency collapse.
//  4. "cluster closed": three replicas behind consistent-hash routing
//     over three named graphs - the PR 8 serving tier under the same
//     workload shape.
func e19(c Config) (*Table, error) {
	t := &Table{
		ID:      "E19",
		Title:   "Serving under load - loadgen throughput, tails and shedding",
		Columns: loadgen.BenchColumns(),
	}
	n := sizes(c.Scale, []int{64}, []int{128})[0]
	dur := 800 * time.Millisecond
	if c.Scale == Full {
		dur = 5 * time.Second
	}
	// The saturation/overload pair runs the simulated engine, whose
	// queries cost tens of milliseconds - slow enough that capacity is
	// set by the admission limit rather than by how many cores this
	// harness shares with its own daemons. Smaller graph and a longer
	// window keep the op counts statistically useful.
	nsim := sizes(c.Scale, []int{32}, []int{64})[0]
	simDur := 2 * time.Second
	if c.Scale == Full {
		simDur = 8 * time.Second
	}
	ctx := context.Background()

	g := graphgen.Connected(n, 3*n, graphgen.Weights{Max: 10}, int64(n)+23)
	gr, err := toPublic(g)
	if err != nil {
		return nil, err
	}
	direct, err := ccsp.NewEngine(ctx, gr,
		ccsp.Options{Epsilon: 0.5, Workers: c.Workers, Execution: ccsp.ExecDirect})
	if err != nil {
		return nil, err
	}
	gs := graphgen.Connected(nsim, nsim, graphgen.Weights{Max: 10}, int64(nsim)+23)
	grs, err := toPublic(gs)
	if err != nil {
		return nil, err
	}
	sim, err := ccsp.NewEngine(ctx, grs,
		ccsp.Options{Epsilon: 0.5, Workers: c.Workers})
	if err != nil {
		return nil, err
	}

	// Uncacheable kind-diverse traffic, MSSP-heavy so every request
	// does real engine work (caches disabled: the rows measure the
	// query path, not the LRU).
	mix := map[api.Kind]int{api.KindMSSP: 6, api.KindDistance: 3, api.KindSSSP: 1}
	load := func(target loadgen.Target, graphs []string, qps float64, conc, nodes int, d time.Duration) (*loadgen.Report, error) {
		return loadgen.Run(ctx, target, loadgen.Config{
			Mix: mix, Graphs: graphs, Nodes: nodes, Duration: d,
			Concurrency: conc, QPS: qps, Seed: 19,
		})
	}
	// one daemon per row: build, drive, tear down.
	daemon := func(cfg server.Config, qps float64, conc, nodes int, d time.Duration) (*loadgen.Report, error) {
		cfg.CacheSize = -1
		srv, err := server.New(cfg)
		if err != nil {
			return nil, err
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		return load(client.New(ts.URL), nil, qps, conc, nodes, d)
	}

	const lim = 4

	headline, err := daemon(server.Config{Engine: direct, MaxInFlight: -1}, 0, lim, n, dur)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, headline.BenchRow(fmt.Sprintf("direct closed c=%d", lim)))

	saturation, err := daemon(server.Config{Engine: sim, MaxInFlight: -1}, 0, lim, nsim, simDur)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, saturation.BenchRow(fmt.Sprintf("sim closed c=%d (saturation)", lim)))

	overload, err := daemon(server.Config{Engine: sim, MaxInFlight: lim, MaxQueue: -1},
		2*saturation.QPS, 4*lim, nsim, simDur)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, overload.BenchRow("sim overload 2x sat"))

	// Cluster row: three replicas, three named graphs, ring routing.
	members := make([]string, 3)
	servers := make([]*httptest.Server, 3)
	graphIDs := []string{"g0", "g1", "g2"}
	for i := range members {
		rs, err := server.New(server.Config{Deferred: true, CacheSize: -1})
		if err != nil {
			return nil, err
		}
		for _, id := range graphIDs {
			if err := rs.AddGraph(id, direct); err != nil {
				return nil, err
			}
		}
		rs.SetReady()
		servers[i] = httptest.NewServer(rs.Handler())
		members[i] = servers[i].URL
	}
	cl := client.NewCluster(members)
	cl.Refresh(ctx)
	cluster, err := load(cl, graphIDs, 0, lim, n, dur)
	cl.Close()
	for _, s := range servers {
		s.Close()
	}
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, cluster.BenchRow("cluster 3 replicas closed"))

	t.Note("Direct rows n=%d, simulated rows n=%d; caches disabled, mix mssp=6,distance=3,sssp=1 uniform, in-process httptest daemons. The overload row rebuilds the simulated-mode daemon with MaxInFlight=%d and no wait queue, then offers ~2x the saturation row's measured throughput open-loop: \"ok\" counts admitted requests (whose p99 is the tail-holding claim, compare against the saturation row) and \"shed\" counts typed overloaded 503s returned without executing.", n, nsim, lim)
	shed := overload.ErrorsByCode[string(api.CodeOverloaded)]
	t.Note("Overload row offered %.0f QPS against measured capacity ~%.0f: %d admitted, %d shed typed, %d other errors.",
		2*saturation.QPS, saturation.QPS, overload.OK, shed, overload.Errors()-shed)
	return t, nil
}
