package bench

import (
	"context"
	"fmt"
	"reflect"
	"time"

	"github.com/congestedclique/ccsp"
	"github.com/congestedclique/ccsp/internal/graph"
	"github.com/congestedclique/ccsp/internal/graphgen"
)

func init() {
	register(Experiment{ID: "E14", Title: "Amortization: preprocess-once Engine vs repeated one-shot queries", Run: e14})
}

// toPublic converts an internal generator graph to the public API type.
func toPublic(g *graph.Graph) (*ccsp.Graph, error) {
	gr := ccsp.NewGraph(g.N)
	for v := 0; v < g.N; v++ {
		for _, e := range g.Adj[v] {
			if int(e.To) > v {
				if err := gr.AddEdge(v, int(e.To), e.W); err != nil {
					return nil, err
				}
			}
		}
	}
	return gr, nil
}

// e14 measures what the preprocess-once architecture buys: q MSSP queries
// answered through one ccsp.Engine (hopset built once, reused by every
// query) against q independent one-shot calls (hopset rebuilt every
// time). Results are checked identical; the rounds saved are exactly
// (q-1) hopset constructions.
func e14(c Config) (*Table, error) {
	t := &Table{
		ID:      "E14",
		Title:   "Amortization - q MSSP queries: one-shot (rebuild per query) vs Engine (preprocess once)",
		Columns: []string{"n", "q", "one-shot rounds", "engine rounds", "saved", "speedup", "one-shot ms", "engine ms"},
	}
	eps := 0.5
	for _, n := range sizes(c.Scale, []int{36, 64}, []int{64, 100}) {
		g := graphgen.Connected(n, 2*n, graphgen.Weights{Max: 10}, int64(n)+81)
		gr, err := toPublic(g)
		if err != nil {
			return nil, err
		}
		opts := ccsp.Options{Epsilon: eps, Workers: c.Workers}
		for _, q := range sizes(c.Scale, []int{2, 8}, []int{2, 8, 32}) {
			// Query workload: q distinct small source sets.
			srcSets := make([][]int, q)
			for i := range srcSets {
				a, b := (i*13+1)%n, (i*29+3)%n
				srcSets[i] = []int{a}
				if b != a {
					srcSets[i] = append(srcSets[i], b)
				}
			}

			// Without reuse: q one-shot calls, each rebuilding the hopset.
			oneRounds := 0
			oneStart := time.Now()
			oneRes := make([]*ccsp.MSSPResult, q)
			for i, s := range srcSets {
				res, err := ccsp.MSSP(context.Background(), gr, s, opts)
				if err != nil {
					return nil, err
				}
				oneRes[i] = res
				oneRounds += res.Stats.TotalRounds
			}
			oneElapsed := time.Since(oneStart)

			// With reuse: one Engine, preprocessing charged once.
			engStart := time.Now()
			eng, err := ccsp.NewEngine(context.Background(), gr, opts)
			if err != nil {
				return nil, err
			}
			engRounds := eng.PreprocessStats().Total.TotalRounds
			for i, s := range srcSets {
				res, err := eng.MSSP(context.Background(), s)
				if err != nil {
					return nil, err
				}
				engRounds += res.Stats.TotalRounds
				if !reflect.DeepEqual(res.Dist, oneRes[i].Dist) {
					return nil, fmt.Errorf("E14: n=%d query %d: engine result differs from one-shot", n, i)
				}
			}
			engElapsed := time.Since(engStart)

			t.Add(n, q, oneRounds, engRounds, oneRounds-engRounds,
				float64(oneRounds)/float64(engRounds),
				float64(oneElapsed.Milliseconds()), float64(engElapsed.Milliseconds()))
		}
	}
	t.Note("Engine rounds = one preprocessing run + q source detections; the saved rounds are exactly (q-1) hopset constructions (§4). Distances are verified identical to the one-shot results; ms columns are wall-clock and observational.")
	return t, nil
}
