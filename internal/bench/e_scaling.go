package bench

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"github.com/congestedclique/ccsp/internal/cc"
)

func init() {
	register(Experiment{ID: "E13", Title: "Engine scaling: sharded collective execution, workers=1 vs workers=P", Run: e13})
}

// scalingWorkload is a collective-heavy synthetic program with the mix of
// the paper's distance-product algorithms: balanced all-to-all routes
// (n messages per node, the Lenzen [43] sweet spot), global sorts of n
// records per node, and broadcast rounds.
func scalingWorkload(rounds int) cc.Program {
	return func(nd *cc.Node) error {
		n := nd.N
		for rep := 0; rep < rounds; rep++ {
			pkts := make([]cc.Packet, n)
			for i := range pkts {
				pkts[i] = cc.Packet{Dst: int32(i), M: cc.Msg{A: int64(nd.ID), B: int64(i ^ rep)}}
			}
			if got := len(nd.Route(pkts)); got != n {
				return fmt.Errorf("node %d: %d routed messages, want %d", nd.ID, got, n)
			}
			recs := make([]cc.Rec, n)
			for i := range recs {
				recs[i] = cc.Rec{Key: int64((nd.ID*53 + i*29 + rep) % 2048), M: cc.Msg{A: int64(i)}}
			}
			nd.Sort(recs)
			nd.BroadcastVal(int64(nd.ID + rep))
		}
		return nil
	}
}

// e13 measures the worker pool of internal/cc (DESIGN.md §5): the same
// workload runs with the serial engine (workers=1) and the sharded pool
// (workers=P), reporting wall-clock per collective kind and verifying that
// the deterministic statistics are identical.
func e13(c Config) (*Table, error) {
	t := &Table{
		ID:      "E13",
		Title:   "Engine scaling - wall-clock per collective kind, workers=1 vs workers=P",
		Columns: []string{"n", "workers", "route ms", "sort ms", "bcast ms", "exec ms", "speedup", "stats equal"},
	}
	p := runtime.GOMAXPROCS(0)
	if p < 2 {
		p = 2 // still exercises the sharded path; no speedup on one core
	}
	const rounds = 4
	for _, n := range sizes(c.Scale, []int{64, 128}, []int{256, 512}) {
		var serial cc.Stats
		for _, w := range []int{1, p} {
			stats, err := cc.Run(context.Background(), cc.Config{N: n, Workers: w}, scalingWorkload(rounds))
			if err != nil {
				return nil, err
			}
			exec := stats.ExecTime()
			speedup, equal := "-", "-"
			if w == 1 {
				serial = stats
			} else {
				speedup = fmt.Sprintf("%.2f", float64(serial.ExecTime())/float64(exec))
				equal = fmt.Sprintf("%t", statsEqual(&serial, &stats))
			}
			t.Add(n, w,
				ms(stats.CollectiveTime["route"]), ms(stats.CollectiveTime["sort"]), ms(stats.CollectiveTime["broadcast"]),
				ms(exec), speedup, equal)
		}
	}
	t.Note("P=%d (runtime.GOMAXPROCS); speedup = serial exec time / parallel exec time. Single-core hosts show <=1.", p)
	t.Note("'stats equal' asserts rounds, messages and words are byte-identical across worker counts.")
	return t, nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// statsEqual compares the deterministic fields of two runs (rounds,
// messages, words, per-tag charges), ignoring wall-clock observations.
func statsEqual(a, b *cc.Stats) bool {
	if a.SimRounds != b.SimRounds || a.Messages != b.Messages ||
		a.TotalRounds() != b.TotalRounds() || a.Words() != b.Words() {
		return false
	}
	if len(a.Charged) != len(b.Charged) {
		return false
	}
	for k, v := range a.Charged {
		if b.Charged[k] != v {
			return false
		}
	}
	return true
}
