package bench

import (
	"context"
	"strconv"

	"github.com/congestedclique/ccsp/internal/apsp"
	"github.com/congestedclique/ccsp/internal/baseline"
	"github.com/congestedclique/ccsp/internal/cc"
	"github.com/congestedclique/ccsp/internal/diameter"
	"github.com/congestedclique/ccsp/internal/graph"
	"github.com/congestedclique/ccsp/internal/graphgen"
	"github.com/congestedclique/ccsp/internal/hitting"
	"github.com/congestedclique/ccsp/internal/hopset"
	"github.com/congestedclique/ccsp/internal/semiring"
	"github.com/congestedclique/ccsp/internal/spanner"
	"github.com/congestedclique/ccsp/internal/sssp"
)

func init() {
	register(Experiment{ID: "E10", Title: "Theorem 33: exact SSSP vs Bellman-Ford baseline", Run: e10})
	register(Experiment{ID: "E11", Title: "§7.2: diameter approximation", Run: e11})
	register(Experiment{ID: "E12", Title: "§1.1 comparison: this paper vs dense-MM and spanner baselines", Run: e12})
}

func apspWeighted(nd *cc.Node, sr semiring.AugMinPlus, g *graph.Graph, eps float64, boards *hitting.BoardSeq) ([]int64, error) {
	return apsp.TwoPlusEpsWeighted(nd, sr, g.WeightRow(nd.ID), eps, boards, hopset.Practical(eps))
}

func apspUnweighted(nd *cc.Node, sr semiring.AugMinPlus, g *graph.Graph, eps float64, boards *hitting.BoardSeq) ([]int64, error) {
	return apsp.TwoPlusEpsUnweighted(nd, sr, g.WeightRow(nd.ID), eps, boards, hopset.Practical(eps))
}

// e10 contrasts Theorem 33 against plain Bellman-Ford on the adversarial
// high-SPD family (paths): the baseline needs Θ(SPD) = Θ(n) rounds while
// the shortcut algorithm needs O~(n^{1/6}) plus the k-nearest phase.
func e10(c Config) (*Table, error) {
	t := &Table{
		ID:      "E10",
		Title:   "Theorem 33 - exact SSSP on paths: shortcut algorithm vs Bellman-Ford (rounds)",
		Columns: []string{"n", "SPD", "algorithm", "rounds", "BF iterations", "exact"},
	}
	for _, n := range sizes(c.Scale, []int{64, 128}, []int{64, 128, 256}) {
		g := graphgen.Path(n, graphgen.Weights{Max: 5}, int64(n)+41)
		sr := g.AugSemiring()
		want := g.Dijkstra(0)

		var gotS []int64
		var itS int
		statsS, err := cc.Run(context.Background(), engineCfg(c, n), func(nd *cc.Node) error {
			d, it := sssp.Exact(nd, sr, g.WeightRow(nd.ID), 0, 0)
			if nd.ID == 0 {
				gotS = append([]int64(nil), d...)
				itS = it
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		t.Add(n, n-1, "Thm 33 (k=n^{5/6})", statsS.TotalRounds(), itS, equalDist(gotS, want))

		var gotB []int64
		var itB int
		statsB, err := cc.Run(context.Background(), engineCfg(c, n), func(nd *cc.Node) error {
			d, it := baseline.BellmanFordSSSP(nd, g.WeightRow(nd.ID), 0)
			if nd.ID == 0 {
				gotB = append([]int64(nil), d...)
				itB = it
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		t.Add(n, n-1, "Bellman-Ford", statsB.TotalRounds(), itB, equalDist(gotB, want))
	}
	t.Note("Paths maximize the shortest-path diameter; the baseline's rounds grow linearly in n while the shortcut algorithm's Bellman-Ford phase stays at ~4n/k+O(1) iterations.")
	return t, nil
}

func equalDist(got, want []int64) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

// e11 measures diameter estimates across families with known diameters.
func e11(c Config) (*Table, error) {
	t := &Table{
		ID:      "E11",
		Title:   "§7.2 - diameter: estimate within [lower bound, (1+ε)D]",
		Columns: []string{"n", "family", "true D", "estimate", "Claim 35 lower", "(1+ε)D", "rounds"},
	}
	eps := 0.5
	for _, n := range sizes(c.Scale, []int{36, 64}, []int{36, 64, 100}) {
		families := []struct {
			name string
			g    *graph.Graph
		}{
			{"path", graphgen.Path(n, graphgen.Weights{}, 1)},
			{"cycle", graphgen.Cycle(n, graphgen.Weights{}, 1)},
			{"random", graphgen.Connected(n, 2*n, graphgen.Weights{}, int64(n)+51)},
		}
		for _, fam := range families {
			d, _ := fam.g.Diameter()
			sr := fam.g.AugSemiring()
			boards := hitting.NewBoardSeq(fam.g.N)
			var est int64
			stats, err := cc.Run(context.Background(), engineCfg(c, fam.g.N), func(nd *cc.Node) error {
				e, err := diameter.Approx(nd, sr, fam.g.WeightRow(nd.ID), eps, boards, hopset.Practical(eps))
				if err != nil {
					return err
				}
				if nd.ID == 0 {
					est = e
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			h, z := d/3, d%3
			lower := 2*h + z
			if z == 2 {
				lower = 2*h + 1
			}
			t.Add(fam.g.N, fam.name, d, est, lower, (1+eps)*float64(d), stats.TotalRounds())
		}
	}
	return t, nil
}

// e12 is the headline comparison of §1.1: our polylog approximations
// against exact dense-MM APSP [13] and spanner-based APSP [52]-style, on a
// common workload - who wins on rounds, at what stretch.
func e12(c Config) (*Table, error) {
	t := &Table{
		ID:      "E12",
		Title:   "§1.1 comparison - APSP algorithms: rounds and measured stretch on a common workload",
		Columns: []string{"n", "algorithm", "guarantee", "rounds", "max stretch"},
	}
	eps := 0.5
	for _, n := range sizes(c.Scale, []int{36, 64}, []int{36, 64, 100}) {
		g := graphgen.Connected(n, 3*n, graphgen.Weights{Max: 10}, int64(n)+61)
		sr := g.AugSemiring()

		// Ours: (2+ε, (1+ε)W) weighted APSP (Theorem 28).
		rows, stats, err := runWeightedAPSP(c, g, eps)
		if err != nil {
			return nil, err
		}
		t.Add(n, "Thm 28 (this paper)", "(2+ε,(1+ε)W)", stats.TotalRounds(), apspStretch(g, rows))

		// Ours: (3+ε) (§6.1).
		boards := hitting.NewBoardSeq(n)
		rows3 := make([][]int64, n)
		stats3, err := cc.Run(context.Background(), engineCfg(c, n), func(nd *cc.Node) error {
			row, err := apsp.ThreePlusEps(nd, sr, g.WeightRow(nd.ID), eps, boards, hopset.Practical(eps))
			if err != nil {
				return err
			}
			rows3[nd.ID] = row
			return nil
		})
		if err != nil {
			return nil, err
		}
		t.Add(n, "§6.1 (this paper)", "(3+ε)", stats3.TotalRounds(), apspStretch(g, rows3))

		// Baseline: exact APSP by iterated dense squaring [13].
		rowsD := make([][]int64, n)
		statsD, err := cc.Run(context.Background(), engineCfg(c, n), func(nd *cc.Node) error {
			row, err := baseline.DenseAPSP(nd, sr, g.WeightRow(nd.ID))
			if err != nil {
				return err
			}
			dense := make([]int64, n)
			for i := range dense {
				dense[i] = semiring.Inf
			}
			for _, e := range row {
				dense[e.Col] = e.Val.W
			}
			rowsD[nd.ID] = dense
			return nil
		})
		if err != nil {
			return nil, err
		}
		t.Add(n, "dense MM [13]", "exact", statsD.TotalRounds(), apspStretch(g, rowsD))

		// Baseline: spanner APSP for k = 2, 3.
		for _, k := range []int{2, 3} {
			rowsS := make([][]int64, n)
			statsS, err := cc.Run(context.Background(), engineCfg(c, n), func(nd *cc.Node) error {
				res, err := spanner.APSP(nd, g.WeightRow(nd.ID), k, 7)
				if err != nil {
					return err
				}
				rowsS[nd.ID] = res.Dist
				return nil
			})
			if err != nil {
				return nil, err
			}
			t.Add(n, "spanner k="+strconv.Itoa(k), "("+strconv.Itoa(2*k-1)+")", statsS.TotalRounds(), apspStretch(g, rowsS))
		}
	}
	t.Note("Expected shape (§1.1): the dense-MM baseline is exact but grows as n^{1/3}·log n; spanners are cheap but pay stretch 2k-1; the paper's algorithms hold (2+ε)-class stretch at polylog rounds.")
	return t, nil
}
