package bench

import (
	"context"
	"math"
	"sort"

	"github.com/congestedclique/ccsp/internal/cc"
	"github.com/congestedclique/ccsp/internal/graph"
	"github.com/congestedclique/ccsp/internal/graphgen"
	"github.com/congestedclique/ccsp/internal/hitting"
	"github.com/congestedclique/ccsp/internal/hopset"
	"github.com/congestedclique/ccsp/internal/matrix"
	"github.com/congestedclique/ccsp/internal/semiring"
)

func init() {
	register(Experiment{ID: "E6", Title: "Theorem 25: hopset size, hopbound and rounds", Run: e6})
	register(Experiment{ID: "A2", Title: "Ablation: paper vs practical hopset constants", Run: a2})
	register(Experiment{ID: "A1", Title: "Ablation: greedy vs seeded hitting sets", Run: a1})
	register(Experiment{ID: "A4", Title: "Phase breakdown of Theorem 28 (where rounds go)", Run: a4})
}

// a4 decomposes the weighted APSP round count by algorithm phase, showing
// that the hopset's level iterations dominate - the cost the paper's
// distance tools were designed to tame.
func a4(c Config) (*Table, error) {
	t := &Table{
		ID:      "A4",
		Title:   "Phase breakdown - Theorem 28 weighted APSP rounds by phase",
		Columns: []string{"n", "phase", "rounds", "share"},
	}
	for _, n := range sizes(c.Scale, []int{64}, []int{64, 100}) {
		g := graphgen.Connected(n, 2*n, graphgen.Weights{Max: 10}, int64(n)+71)
		_, stats, err := runWeightedAPSP(c, g, 0.5)
		if err != nil {
			return nil, err
		}
		total := stats.TotalRounds()
		var phases []phaseRounds
		for name, r := range stats.Phases {
			if name == "" {
				name = "(setup)"
			}
			phases = append(phases, phaseRounds{name, r})
		}
		sort.Slice(phases, func(i, j int) bool {
			if phases[i].rounds != phases[j].rounds {
				return phases[i].rounds > phases[j].rounds
			}
			return phases[i].name < phases[j].name
		})
		for _, p := range phases {
			t.Add(n, p.name, p.rounds, float64(p.rounds)/float64(total))
		}
	}
	t.Note("The hopset level iterations (4β-hop source detections, §4.2) dominate; this is exactly the cost Theorem 8's output-sensitivity keeps polylogarithmic.")
	return t, nil
}

type phaseRounds struct {
	name   string
	rounds int
}

// buildHopsetBench constructs a hopset and returns per-node results.
func buildHopsetBench(c Config, g *graph.Graph, p hopset.Params) ([]*hopset.Result, cc.Stats, error) {
	sr := g.AugSemiring()
	board := hitting.NewBoard(g.N)
	results := make([]*hopset.Result, g.N)
	stats, err := cc.Run(context.Background(), engineCfg(c, g.N), func(nd *cc.Node) error {
		res, err := hopset.Build(nd, sr, g.WeightRow(nd.ID), board, p)
		if err != nil {
			return err
		}
		results[nd.ID] = res
		return nil
	})
	return results, stats, err
}

// maxHopsetStretch verifies the (β,ε) guarantee exhaustively and returns
// the worst measured ratio d^β_{G∪H}/d_G.
func maxHopsetStretch(g *graph.Graph, results []*hopset.Result, beta int) float64 {
	sr := semiring.NewMinPlus(semiring.Inf - 1)
	n := g.N
	base := matrix.New[int64](n)
	for v := 0; v < n; v++ {
		row := matrix.Row[int64]{{Col: int32(v), Val: 0}}
		for _, e := range g.Adj[v] {
			row = append(row, matrix.Entry[int64]{Col: e.To, Val: e.W})
		}
		for _, e := range results[v].Row {
			row = append(row, matrix.Entry[int64]{Col: e.Col, Val: e.Val.W})
		}
		base.Rows[v] = matrix.MergeRows[int64](sr, row)
	}
	pow := matrix.Identity[int64](sr, n)
	sq := base
	for e := beta; e > 0; e >>= 1 {
		if e&1 == 1 {
			pow = matrix.MulRef[int64](sr, pow, sq)
		}
		sq = matrix.MulRef[int64](sr, sq, sq)
	}
	worst := 1.0
	for v := 0; v < n; v++ {
		trueDist := g.Dijkstra(v)
		for u := 0; u < n; u++ {
			d := trueDist[u]
			if d <= 0 || d >= semiring.Inf {
				continue
			}
			h := pow.Get(sr, v, u)
			if r := float64(h) / float64(d); r > worst {
				worst = r
			}
		}
	}
	return worst
}

func hopsetEdgeCount(results []*hopset.Result) int {
	total := 0
	for _, r := range results {
		total += r.EdgeCount()
	}
	return total / 2
}

// e6 reports hopset size against the Claim 21 bound, the measured β-hop
// stretch against 1+ε, and construction rounds against O(log²n/ε).
func e6(c Config) (*Table, error) {
	t := &Table{
		ID:      "E6",
		Title:   "Theorem 25 - (β,ε)-hopsets: size vs n^{3/2}·log n, stretch vs 1+ε, rounds vs log²n/ε",
		Columns: []string{"n", "ε", "β", "|H| edges", "n^{3/2}logn", "max stretch", "1+ε", "rounds", "log²n/ε"},
	}
	eps := 0.5
	for _, n := range sizes(c.Scale, []int{36, 64}, []int{36, 64, 100}) {
		g := graphgen.Connected(n, 2*n, graphgen.Weights{Max: 20}, int64(n)+1)
		results, stats, err := buildHopsetBench(c, g, hopset.Practical(eps))
		if err != nil {
			return nil, err
		}
		beta := results[0].Beta
		logn := math.Log2(float64(n))
		t.Add(n, eps, beta, hopsetEdgeCount(results),
			int(float64(n)*math.Sqrt(float64(n))*logn),
			maxHopsetStretch(g, results, beta), 1+eps,
			stats.TotalRounds(), logn*logn/eps)
	}
	t.Note("The guarantee check is exhaustive: every pair's β-hop distance in G∪H is compared against its true distance.")
	return t, nil
}

// a2 contrasts the proof-faithful constants against the practical preset.
// At simulable sizes the exploration budget d = min(4β, n) saturates at n
// for both presets (paths never need more than n-1 hops), so the presets
// are distinguished by a third, uncapped configuration with few levels.
func a2(c Config) (*Table, error) {
	t := &Table{
		ID:      "A2",
		Title:   "Ablation - hopset constants: Paper (β=12L/ε) vs Practical (β=2L/ε)",
		Columns: []string{"n", "preset", "β", "d=min(4β,n)", "|H|", "max stretch", "1+ε", "rounds"},
	}
	eps := 0.5
	for _, n := range sizes(c.Scale, []int{36}, []int{36, 64}) {
		g := graphgen.Connected(n, 2*n, graphgen.Weights{Max: 20}, int64(n)+2)
		pinned := hopset.Params{Eps: eps, Levels: 3, BetaFactor: 2}
		for _, preset := range []struct {
			name string
			p    hopset.Params
		}{{"paper", hopset.Paper(eps)}, {"practical", hopset.Practical(eps)}, {"practical-L3", pinned}} {
			results, stats, err := buildHopsetBench(c, g, preset.p)
			if err != nil {
				return nil, err
			}
			beta := results[0].Beta
			d := 4 * beta
			if d > n {
				d = n
			}
			t.Add(n, preset.name, beta, d, hopsetEdgeCount(results),
				maxHopsetStretch(g, results, beta), 1+eps, stats.TotalRounds())
		}
	}
	t.Note("Where d caps at n, paper and practical behave identically (exact exploration); the uncapped practical-L3 row shows the cost/quality trade. All rows satisfy the stretch guarantee on every pair.")
	return t, nil
}

// a1 compares the two Lemma 4 substitutes on identical k-nearest sets.
func a1(c Config) (*Table, error) {
	t := &Table{
		ID:      "A1",
		Title:   "Ablation - hitting sets: deterministic greedy vs seeded sampling (sets = N_k(v))",
		Columns: []string{"n", "k", "|A| greedy", "|A| seeded", "bound (nlogn/k)", "hits all"},
	}
	for _, n := range sizes(c.Scale, []int{64, 121}, []int{64, 121, 225}) {
		g := graphgen.Connected(n, 2*n, graphgen.Weights{Max: 10}, int64(n)+3)
		k := intPow(n, 0.5)
		ref := knearRef(g, k)
		sets := make([][]int32, n)
		for v := 0; v < n; v++ {
			for _, e := range ref.Rows[v] {
				sets[v] = append(sets[v], e.Col)
			}
		}
		greedy := hitting.Greedy(n, sets)
		seeded := hitting.Seeded(n, sets, k, 12345)
		hitsAll := func(inA []bool) bool {
			for _, sv := range sets {
				ok := false
				for _, u := range sv {
					if inA[u] {
						ok = true
						break
					}
				}
				if !ok && len(sv) > 0 {
					return false
				}
			}
			return true
		}
		count := func(inA []bool) int {
			c := 0
			for _, b := range inA {
				if b {
					c++
				}
			}
			return c
		}
		bound := int(math.Ceil(float64(n) * math.Log2(float64(n)) / float64(k)))
		t.Add(n, k, count(greedy), count(seeded), bound, hitsAll(greedy) && hitsAll(seeded))
	}
	t.Note("Both constructions satisfy the Lemma 4 size bound O(n log n / k); greedy is deterministic (matching the paper), seeded is the randomized comparison point.")
	return t, nil
}
