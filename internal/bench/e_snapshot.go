package bench

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"time"

	"github.com/congestedclique/ccsp"
	"github.com/congestedclique/ccsp/internal/graphgen"
)

func init() {
	register(Experiment{ID: "E15", Title: "Snapshot store: save/load wall-time vs cold preprocessing", Run: e15})
}

// e15 measures what the snapshot subsystem buys at startup: the
// wall-time to restore a warm engine from snapshot bytes (ccspd's -load
// path) against the cold NewEngine preprocessing it replaces, across
// clique sizes. Loaded engines are verified to answer an MSSP query
// byte-identically to the cold engine, and the snapshot is verified to
// round-trip byte-identically through a second save.
func e15(c Config) (*Table, error) {
	t := &Table{
		ID:    "E15",
		Title: "Snapshot store - cold preprocessing vs save+load (β,ε-hopset artifact persistence)",
		Columns: []string{"n", "preprocess rounds", "preprocess ms", "snapshot KiB", "save ms", "load ms",
			"load speedup", "query rounds"},
	}
	eps := 0.5
	for _, n := range sizes(c.Scale, []int{64, 128}, []int{64, 128, 256}) {
		g := graphgen.Connected(n, 3*n, graphgen.Weights{Max: 10}, int64(n)+15)
		gr, err := toPublic(g)
		if err != nil {
			return nil, err
		}
		opts := ccsp.Options{Epsilon: eps, Workers: c.Workers}

		coldStart := time.Now()
		cold, err := ccsp.NewEngine(context.Background(), gr, opts)
		if err != nil {
			return nil, err
		}
		coldElapsed := time.Since(coldStart)

		var buf bytes.Buffer
		saveStart := time.Now()
		if err := cold.Save(&buf); err != nil {
			return nil, err
		}
		saveElapsed := time.Since(saveStart)
		snapBytes := buf.Bytes()

		loadStart := time.Now()
		loaded, err := ccsp.LoadEngine(context.Background(), bytes.NewReader(snapBytes))
		if err != nil {
			return nil, err
		}
		loadElapsed := time.Since(loadStart)

		// Correctness: the loaded engine is indistinguishable from the
		// cold one - same query results and rounds, same re-saved bytes.
		sources := []int{1 % n, (n / 2), n - 1}
		wantQ, err := cold.MSSP(context.Background(), sources)
		if err != nil {
			return nil, err
		}
		gotQ, err := loaded.MSSP(context.Background(), sources)
		if err != nil {
			return nil, err
		}
		if !reflect.DeepEqual(gotQ.Dist, wantQ.Dist) || gotQ.Stats.TotalRounds != wantQ.Stats.TotalRounds {
			return nil, fmt.Errorf("E15: n=%d: loaded engine query differs from cold engine", n)
		}
		var again bytes.Buffer
		if err := loaded.Save(&again); err != nil {
			return nil, err
		}
		if !bytes.Equal(again.Bytes(), snapBytes) {
			return nil, fmt.Errorf("E15: n=%d: save→load→save not byte-identical", n)
		}

		speedup := float64(coldElapsed) / float64(loadElapsed)
		t.Add(n, cold.PreprocessStats().Total.TotalRounds,
			float64(coldElapsed.Milliseconds()), fmt.Sprintf("%.1f", float64(len(snapBytes))/1024),
			float64(saveElapsed.Microseconds())/1000, float64(loadElapsed.Microseconds())/1000,
			speedup, wantQ.Stats.TotalRounds)
	}
	t.Note("Load replaces the whole preprocessing simulator run with decoding one checksummed file: the loaded engine answers queries byte-identically (verified per row, including a byte-identical re-save) while startup drops from 'preprocess ms' to 'load ms'. ms columns are wall-clock and observational.")
	return t, nil
}
