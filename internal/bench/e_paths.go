package bench

import (
	"context"
	"math"

	"github.com/congestedclique/ccsp/internal/cc"
	"github.com/congestedclique/ccsp/internal/graph"
	"github.com/congestedclique/ccsp/internal/graphgen"
	"github.com/congestedclique/ccsp/internal/hitting"
	"github.com/congestedclique/ccsp/internal/hopset"
	"github.com/congestedclique/ccsp/internal/mssp"
	"github.com/congestedclique/ccsp/internal/semiring"
)

func init() {
	register(Experiment{ID: "E7", Title: "Theorem 3: multi-source shortest paths", Run: e7})
	register(Experiment{ID: "E8", Title: "Theorem 28: weighted APSP (2+ε, (1+ε)W)", Run: e8})
	register(Experiment{ID: "E9", Title: "Theorem 31: unweighted APSP (2+ε)", Run: e9})
}

// e7 sweeps the source-set size and reports measured stretch (always
// checked <= 1+ε) and rounds against (|S|^{2/3}/n^{1/3}+log n)·log n/ε.
func e7(c Config) (*Table, error) {
	t := &Table{
		ID:      "E7",
		Title:   "Theorem 3 - MSSP: stretch vs 1+ε, rounds vs (|S|^{2/3}/n^{1/3}+log n)·log n/ε",
		Columns: []string{"n", "|S|", "ε", "hop budget", "max stretch", "1+ε", "rounds", "formula", "rounds/formula"},
	}
	eps := 0.5
	// The pinned configuration fixes the hopset's levels and hop factor so
	// the hop budget d = min(4β, n) stops tracking n; it isolates the
	// polylog shape of the theorem from the small-n saturation of the
	// exploration budget (see EXPERIMENTS.md).
	pinned := hopset.Params{Eps: eps, Levels: 4, BetaFactor: 1}
	for _, n := range sizes(c.Scale, []int{49, 81}, []int{49, 81, 144}) {
		g := graphgen.Connected(n, 2*n, graphgen.Weights{Max: 15}, int64(n)+11)
		sqn := intPow(n, 0.5)
		for _, cfg := range []struct {
			label string
			p     hopset.Params
		}{{"adaptive", hopset.Practical(eps)}, {"pinned", pinned}} {
			for _, nS := range []int{sqn, 2 * sqn} {
				inS := make([]bool, n)
				for i := 0; i < nS; i++ {
					inS[(i*n)/nS] = true
				}
				worst, stats, err := runMSSPBench(c, g, inS, cfg.p)
				if err != nil {
					return nil, err
				}
				logn := math.Log2(float64(n))
				formula := (math.Pow(float64(nS), 2.0/3)/math.Cbrt(float64(n)) + logn) * logn / eps
				t.Add(n, nS, eps, cfg.label, worst, 1+eps, stats.TotalRounds(), formula,
					float64(stats.TotalRounds())/formula)
			}
		}
	}
	t.Note("Stretch is measured exhaustively over all (node, source) pairs and never exceeds 1+ε in either configuration.")
	return t, nil
}

func runMSSPBench(c Config, g *graph.Graph, inS []bool, p hopset.Params) (float64, cc.Stats, error) {
	n := g.N
	sr := g.AugSemiring()
	boards := hitting.NewBoardSeq(n)
	dists := make([][]int64, n)
	stats, err := cc.Run(context.Background(), engineCfg(c, n), func(nd *cc.Node) error {
		res, err := mssp.Run(nd, sr, g.WeightRow(nd.ID), inS, boards.Next(nd.ID), p)
		if err != nil {
			return err
		}
		row := make([]int64, n)
		for i := range row {
			row[i] = semiring.Inf
		}
		for _, e := range res.Dist {
			row[e.Col] = e.Val.W
		}
		dists[nd.ID] = row
		return nil
	})
	if err != nil {
		return 0, stats, err
	}
	worst := 1.0
	for src := 0; src < n; src++ {
		if !inS[src] {
			continue
		}
		ref := g.Dijkstra(src)
		for v := 0; v < n; v++ {
			if ref[v] <= 0 || ref[v] >= semiring.Inf {
				continue
			}
			if r := float64(dists[v][src]) / float64(ref[v]); r > worst {
				worst = r
			}
		}
	}
	return worst, stats, nil
}

// apspStretch returns the worst multiplicative stretch over all connected
// pairs, and the worst value of (δ - (1+eps)·W) / d for the weighted bound
// check.
func apspStretch(g *graph.Graph, rows [][]int64) float64 {
	worst := 1.0
	for v := 0; v < g.N; v++ {
		ref := g.Dijkstra(v)
		for u := 0; u < g.N; u++ {
			if ref[u] <= 0 || ref[u] >= semiring.Inf {
				continue
			}
			if r := float64(rows[v][u]) / float64(ref[u]); r > worst {
				worst = r
			}
		}
	}
	return worst
}

// e8 measures the weighted APSP on several graph families.
func e8(c Config) (*Table, error) {
	t := &Table{
		ID:      "E8",
		Title:   "Theorem 28 - weighted APSP: stretch vs 2+ε (+additive (1+ε)W/d), rounds vs log²n/ε",
		Columns: []string{"n", "family", "ε", "max stretch", "bound incl. W-term", "rounds", "log²n/ε"},
	}
	eps := 0.5
	for _, n := range sizes(c.Scale, []int{36, 64}, []int{36, 64, 100}) {
		families := []struct {
			name string
			g    *graph.Graph
		}{
			{"random", graphgen.Connected(n, 2*n, graphgen.Weights{Max: 10}, int64(n)+21)},
			{"grid", graphgen.Grid(intPow(n, 0.5), n/intPow(n, 0.5), graphgen.Weights{Max: 10}, int64(n)+22)},
			{"power-law", graphgen.PreferentialAttachment(n, 2, graphgen.Weights{Max: 10}, int64(n)+23)},
		}
		for _, fam := range families {
			rows, stats, err := runWeightedAPSP(c, fam.g, eps)
			if err != nil {
				return nil, err
			}
			logn := math.Log2(float64(fam.g.N))
			// The additive (1+ε)W term can push pair stretch up to
			// (2+ε) + (1+ε)·W/d; report the worst-case admissible bound
			// for the family's heaviest edge at distance >= 1.
			t.Add(fam.g.N, fam.name, eps, apspStretch(fam.g, rows),
				(2+eps)+(1+eps)*float64(fam.g.MaxW()), stats.TotalRounds(), logn*logn/eps)
		}
	}
	t.Note("The per-pair guarantee δ <= (2+ε)d + (1+ε)W is verified exactly in the test suite (internal/apsp); the table reports the worst measured ratio.")
	return t, nil
}

func runWeightedAPSP(c Config, g *graph.Graph, eps float64) ([][]int64, cc.Stats, error) {
	sr := g.AugSemiring()
	boards := hitting.NewBoardSeq(g.N)
	rows := make([][]int64, g.N)
	stats, err := cc.Run(context.Background(), engineCfg(c, g.N), func(nd *cc.Node) error {
		row, err := apspWeighted(nd, sr, g, eps, boards)
		if err != nil {
			return err
		}
		rows[nd.ID] = row
		return nil
	})
	return rows, stats, err
}

// e9 measures the unweighted APSP across degree regimes.
func e9(c Config) (*Table, error) {
	t := &Table{
		ID:      "E9",
		Title:   "Theorem 31 - unweighted APSP: stretch vs 2+ε, rounds vs log²n/ε",
		Columns: []string{"n", "family", "ε", "max stretch", "2+ε", "rounds", "log²n/ε"},
	}
	eps := 0.5
	for _, n := range sizes(c.Scale, []int{36, 64}, []int{36, 64, 100}) {
		spine := n / 4
		families := []struct {
			name string
			g    *graph.Graph
		}{
			{"sparse", graphgen.Connected(n, n/2, graphgen.Weights{}, int64(n)+31)},
			{"dense", graphgen.GNP(n, 0.3, graphgen.Weights{}, int64(n)+32)},
			{"caterpillar", graphgen.Caterpillar(spine, 3, graphgen.Weights{}, int64(n)+33)},
		}
		for _, fam := range families {
			rows, stats, err := runUnweightedAPSP(c, fam.g, eps)
			if err != nil {
				return nil, err
			}
			logn := math.Log2(float64(fam.g.N))
			t.Add(fam.g.N, fam.name, eps, apspStretch(fam.g, rows), 2+eps,
				stats.TotalRounds(), logn*logn/eps)
		}
	}
	t.Note("Max stretch is exhaustive over all connected pairs; the caterpillar family mixes the high-degree and low-degree phases of §6.3.")
	return t, nil
}

func runUnweightedAPSP(c Config, g *graph.Graph, eps float64) ([][]int64, cc.Stats, error) {
	sr := g.AugSemiring()
	boards := hitting.NewBoardSeq(g.N)
	rows := make([][]int64, g.N)
	stats, err := cc.Run(context.Background(), engineCfg(c, g.N), func(nd *cc.Node) error {
		row, err := apspUnweighted(nd, sr, g, eps, boards)
		if err != nil {
			return err
		}
		rows[nd.ID] = row
		return nil
	})
	return rows, stats, err
}
