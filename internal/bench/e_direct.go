package bench

import (
	"context"
	"fmt"
	"reflect"
	"time"

	"github.com/congestedclique/ccsp"
	"github.com/congestedclique/ccsp/internal/graphgen"
)

func init() {
	register(Experiment{ID: "E17", Title: "Direct-kernel execution vs simulated preprocessing", Run: e17})
}

// e17 measures what ExecDirect buys: the wall-time of NewEngine
// preprocessing (the base hopset artifact) in the round-synchronous
// simulator against the same computation on flat matrices with the
// matmul kernels. Both modes are byte-identical by the differential
// oracle guarantee (DESIGN.md §12); this experiment spot-checks an MSSP
// query per row and reports the speedup. Above simCap the simulated
// baseline is skipped - its cost is the point of the experiment - and
// only direct timings are reported.
func e17(c Config) (*Table, error) {
	t := &Table{
		ID:    "E17",
		Title: "Direct-kernel execution - simulated vs direct preprocessing wall-time (identical answers)",
		Columns: []string{"n", "sim preprocess s", "direct preprocess s", "speedup",
			"direct query ms", "identical"},
	}
	// Largest clique the simulated baseline runs at (~a minute at 256);
	// beyond it the simulator is the bottleneck this mode removes.
	const simCap = 256
	eps := 0.5
	for _, n := range sizes(c.Scale, []int{48, 96}, []int{256, 1024}) {
		g := graphgen.Connected(n, 3*n, graphgen.Weights{Max: 10}, int64(n)+17)
		gr, err := toPublic(g)
		if err != nil {
			return nil, err
		}

		dirStart := time.Now()
		dir, err := ccsp.NewEngine(context.Background(), gr,
			ccsp.Options{Epsilon: eps, Workers: c.Workers, Execution: ccsp.ExecDirect})
		if err != nil {
			return nil, err
		}
		dirElapsed := time.Since(dirStart)

		sources := []int{1 % n, n / 2, n - 1}
		qStart := time.Now()
		dirQ, err := dir.MSSP(context.Background(), sources)
		if err != nil {
			return nil, err
		}
		qElapsed := time.Since(qStart)

		simCell, speedup, identical := "skipped", "-", "-"
		if n <= simCap {
			simStart := time.Now()
			sim, err := ccsp.NewEngine(context.Background(), gr,
				ccsp.Options{Epsilon: eps, Workers: c.Workers})
			if err != nil {
				return nil, err
			}
			simElapsed := time.Since(simStart)
			simQ, err := sim.MSSP(context.Background(), sources)
			if err != nil {
				return nil, err
			}
			if !reflect.DeepEqual(simQ.Dist, dirQ.Dist) || !reflect.DeepEqual(simQ.Sources, dirQ.Sources) {
				return nil, fmt.Errorf("E17: n=%d: direct MSSP differs from simulated", n)
			}
			simCell = fmt.Sprintf("%.2f", simElapsed.Seconds())
			speedup = fmt.Sprintf("%.1fx", float64(simElapsed)/float64(dirElapsed))
			identical = "true"
		}
		t.Add(n, simCell, fmt.Sprintf("%.2f", dirElapsed.Seconds()), speedup,
			float64(qElapsed.Microseconds())/1000, identical)
	}
	t.Note("Both modes compute the same algebra; direct skips per-node message construction, Lenzen routing and sorting, so the speedup is pure simulator overhead. 'identical' spot-checks an MSSP query (the full byte-identity claim is enforced by the differential oracle test suite). Rows above n=%d skip the simulated baseline.", simCap)
	return t, nil
}
