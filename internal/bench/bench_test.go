package bench

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"A1", "A2", "A3", "A4", "E1", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19", "E2", "E20", "E3", "E4", "E5", "E6", "E7", "E8", "E9"}
	got := All()
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(got), len(want))
	}
	for i, e := range got {
		if e.ID != want[i] {
			t.Errorf("experiment %d is %s, want %s", i, e.ID, want[i])
		}
		if e.Title == "" {
			t.Errorf("experiment %s has no title", e.ID)
		}
	}
	if _, err := Run("nope", Quick); err == nil {
		t.Error("want error for unknown experiment")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{ID: "X", Title: "demo", Columns: []string{"a", "bb"}}
	tab.Add(1, 2.5)
	tab.Add("x", true)
	tab.Note("note %d", 7)
	var b strings.Builder
	tab.Fprint(&b)
	out := b.String()
	for _, want := range []string{"### X: demo", "| a | bb", "| 1 | 2.50", "| x | true", "note 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q in:\n%s", want, out)
		}
	}
}

// TestE13StatsIdentical runs the engine-scaling experiment at quick scale
// and asserts every workers=P row reports deterministic stats identical to
// its workers=1 baseline.
func TestE13StatsIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	tab, err := Run("E13", Quick)
	if err != nil {
		t.Fatal(err)
	}
	col := -1
	for i, c := range tab.Columns {
		if c == "stats equal" {
			col = i
		}
	}
	if col < 0 {
		t.Fatalf("no 'stats equal' column in %v", tab.Columns)
	}
	parallelRows := 0
	for _, row := range tab.Rows {
		if row[col] == "-" {
			continue
		}
		parallelRows++
		if row[col] != "true" {
			t.Errorf("parallel run has divergent stats: row %v", row)
		}
	}
	if parallelRows == 0 {
		t.Error("E13 produced no workers=P rows")
	}
}

// TestExperimentsRunQuick executes the cheap experiments end to end and
// asserts their correctness columns. The heavier path experiments are
// exercised by the top-level benchmarks.
func TestExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	for _, id := range []string{"E1", "E2", "E3", "E5", "A1", "A3"} {
		id := id
		t.Run(id, func(t *testing.T) {
			tab, err := Run(id, Quick)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if len(tab.Rows) == 0 {
				t.Fatalf("%s: empty table", id)
			}
			// Any row with a correctness column must say true.
			for ci, col := range tab.Columns {
				if col != "correct" && col != "exact" && col != "hits all" {
					continue
				}
				for _, row := range tab.Rows {
					if row[ci] != "true" {
						t.Errorf("%s: correctness column is %q in row %v", id, row[ci], row)
					}
				}
			}
		})
	}
}
