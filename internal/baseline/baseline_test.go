package baseline

import (
	"context"
	"math/rand"
	"testing"

	"github.com/congestedclique/ccsp/internal/cc"
	"github.com/congestedclique/ccsp/internal/graph"
	"github.com/congestedclique/ccsp/internal/semiring"
)

func randGraph(n, extraEdges int, maxW int64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(v, rng.Intn(v), rng.Int63n(maxW)+1)
	}
	for e := 0; e < extraEdges; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.MustAddEdge(u, v, rng.Int63n(maxW)+1)
		}
	}
	return g
}

func TestDenseAPSPExact(t *testing.T) {
	for _, seed := range []int64{1, 2} {
		g := randGraph(18, 25, 10, seed)
		sr := g.AugSemiring()
		rows := make([][]int64, g.N)
		_, err := cc.Run(context.Background(), cc.Config{N: g.N}, func(nd *cc.Node) error {
			row, err := DenseAPSP(nd, sr, g.WeightRow(nd.ID))
			if err != nil {
				return err
			}
			dense := make([]int64, g.N)
			for i := range dense {
				dense[i] = semiring.Inf
			}
			for _, e := range row {
				dense[e.Col] = e.Val.W
			}
			rows[nd.ID] = dense
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		ref := g.APSPRef()
		for v := 0; v < g.N; v++ {
			for u := 0; u < g.N; u++ {
				want := ref[v][u]
				if want >= semiring.Inf {
					want = semiring.Inf
				}
				if rows[v][u] != want {
					t.Fatalf("seed %d: dense APSP [%d,%d]=%d, want %d", seed, v, u, rows[v][u], want)
				}
			}
		}
	}
}

// TestDenseAPSPRoundsPolynomial: the baseline costs Θ(n^{1/3} log n)
// rounds - it must grow markedly with n, which is exactly what E12
// contrasts with the polylog algorithms.
func TestDenseAPSPRoundsPolynomial(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling test")
	}
	rounds := map[int]int{}
	for _, n := range []int{27, 216} {
		g := randGraph(n, 3*n, 5, int64(n))
		sr := g.AugSemiring()
		stats, err := cc.Run(context.Background(), cc.Config{N: n}, func(nd *cc.Node) error {
			_, err := DenseAPSP(nd, sr, g.WeightRow(nd.ID))
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		rounds[n] = stats.TotalRounds()
	}
	if rounds[216] <= rounds[27] {
		t.Errorf("dense baseline rounds did not grow with n: %v", rounds)
	}
}

func TestBellmanFordSSSPBaseline(t *testing.T) {
	g := randGraph(20, 20, 10, 3)
	want := g.Dijkstra(4)
	var got []int64
	_, err := cc.Run(context.Background(), cc.Config{N: g.N}, func(nd *cc.Node) error {
		dist, _ := BellmanFordSSSP(nd, g.WeightRow(nd.ID), 4)
		if nd.ID == 0 {
			got = append([]int64(nil), dist...)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if got[v] != want[v] {
			t.Errorf("d[%d]=%d, want %d", v, got[v], want[v])
		}
	}
}
