// Package baseline implements the prior-work comparison points of §1.1:
// exact APSP by iterated squaring of the augmented weight matrix over the
// dense 3D semiring multiplication of Censor-Hillel et al. [13] (O(n^{1/3})
// rounds per product), and plain distributed Bellman-Ford SSSP (SPD
// rounds). Sequential ground truth lives in package graph.
package baseline

import (
	"fmt"
	"math/bits"

	"github.com/congestedclique/ccsp/internal/cc"
	"github.com/congestedclique/ccsp/internal/matmul"
	"github.com/congestedclique/ccsp/internal/matrix"
	"github.com/congestedclique/ccsp/internal/semiring"
	"github.com/congestedclique/ccsp/internal/sssp"
)

// DenseAPSP computes exact APSP by squaring the augmented weight matrix
// ceil(log2 n) times with output density n - which makes Theorem 8's cube
// partition degenerate to the classic 3D multiplication of [13] with
// a = b = c = n^{1/3} and O(n^{1/3}) rounds per product. Returns this
// node's row of exact distances.
func DenseAPSP(nd *cc.Node, sr semiring.AugMinPlus, wrow matrix.Row[semiring.WH]) (matrix.Row[semiring.WH], error) {
	cur := wrow
	for t := 0; t < bits.Len(uint(nd.N-1)); t++ {
		next, err := matmul.Multiply(nd, sr, cur, cur, nd.N)
		if err != nil {
			return nil, fmt.Errorf("baseline: squaring %d: %w", t, err)
		}
		cur = next
	}
	return cur, nil
}

// BellmanFordSSSP is the baseline exact SSSP without shortcuts: plain
// distributed Bellman-Ford on G, converging in SPD(G) rounds. Returns the
// global distance vector (shared read-only) and iterations used.
func BellmanFordSSSP(nd *cc.Node, wrow matrix.Row[semiring.WH], src int) ([]int64, int) {
	return sssp.BellmanFord(nd, wrow, src, nd.N+2)
}
