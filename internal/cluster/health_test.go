package cluster

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"
)

// fakeProbe is a scriptable ProbeFunc: each member's next answer is set
// by the test between sweeps.
type fakeProbe struct {
	mu   sync.Mutex
	next map[string]func() (Status, error)
}

func (f *fakeProbe) set(member string, st Status, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.next == nil {
		f.next = make(map[string]func() (Status, error))
	}
	f.next[member] = func() (Status, error) { return st, err }
}

func (f *fakeProbe) probe(_ context.Context, member string) (Status, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if fn, ok := f.next[member]; ok {
		return fn()
	}
	return Status{}, errors.New("unscripted member")
}

func newTestProber(members []string, f *fakeProbe, threshold int) *Prober {
	return NewProber(members, Config{
		Probe:     f.probe,
		Threshold: threshold,
		Interval:  time.Hour, // tests drive Sweep explicitly
		Timeout:   time.Second,
	})
}

// TestProberStateMachine walks the liveness transitions: down until
// first success, Threshold consecutive failures to go down, one success
// to revive.
func TestProberStateMachine(t *testing.T) {
	const m = "http://a"
	f := &fakeProbe{}
	p := newTestProber([]string{m}, f, 3)
	ctx := context.Background()

	if p.Alive(m) {
		t.Fatal("member alive before any probe")
	}

	f.set(m, Status{Ready: true, Graphs: []string{"", "roads"}}, nil)
	p.Sweep(ctx)
	if !p.Alive(m) {
		t.Fatal("member down after a successful ready probe")
	}
	if !p.Holds(m, "roads") || !p.Holds(m, "") || p.Holds(m, "other") {
		t.Fatal("graph advertisement not recorded")
	}

	// Failures below the threshold keep the member up.
	f.set(m, Status{}, errors.New("connection refused"))
	p.Sweep(ctx)
	p.Sweep(ctx)
	if !p.Alive(m) {
		t.Fatal("member down after 2 failures with threshold 3")
	}
	p.Sweep(ctx)
	if p.Alive(m) {
		t.Fatal("member still up after 3 consecutive failures")
	}

	// A "ready: false" answer counts as failure toward the threshold.
	f.set(m, Status{Ready: true, Graphs: []string{"roads"}}, nil)
	p.Sweep(ctx)
	if !p.Alive(m) {
		t.Fatal("member not revived by one success")
	}
	f.set(m, Status{Ready: false}, nil)
	p.Sweep(ctx)
	p.Sweep(ctx)
	p.Sweep(ctx)
	if p.Alive(m) {
		t.Fatal("not-ready answers did not count toward the threshold")
	}
}

// TestProberFailureResetOnSuccess pins that a success zeroes the
// failure counter: 2 fails, success, 2 fails must stay alive at
// threshold 3.
func TestProberFailureResetOnSuccess(t *testing.T) {
	const m = "http://a"
	f := &fakeProbe{}
	p := newTestProber([]string{m}, f, 3)
	ctx := context.Background()

	f.set(m, Status{Ready: true}, nil)
	p.Sweep(ctx)
	f.set(m, Status{}, errors.New("refused"))
	p.Sweep(ctx)
	p.Sweep(ctx)
	f.set(m, Status{Ready: true}, nil)
	p.Sweep(ctx)
	f.set(m, Status{}, errors.New("refused"))
	p.Sweep(ctx)
	p.Sweep(ctx)
	if !p.Alive(m) {
		t.Fatal("interleaved success did not reset the failure counter")
	}
}

// TestMarkDown pins the passive path: a transport failure reported by
// the data path downs the member immediately, and the next successful
// probe revives it.
func TestMarkDown(t *testing.T) {
	const m = "http://a"
	f := &fakeProbe{}
	p := newTestProber([]string{m}, f, 3)
	ctx := context.Background()

	f.set(m, Status{Ready: true, Graphs: []string{"g"}}, nil)
	p.Sweep(ctx)
	p.MarkDown(m)
	if p.Alive(m) {
		t.Fatal("MarkDown did not take effect immediately")
	}
	p.Sweep(ctx)
	if !p.Alive(m) {
		t.Fatal("successful probe did not revive a marked-down member")
	}
	if p.Alive("http://unknown") {
		t.Fatal("unknown member reported alive")
	}
	p.MarkDown("http://unknown") // must not panic or register the member
	if got := p.Live(); !reflect.DeepEqual(got, []string{m}) {
		t.Fatalf("Live() = %v, want [%s]", got, m)
	}
}

// TestRoute pins the failover rule end to end: owner first, fall
// through dead members, skip members that do not hold the graph, empty
// when no live holder exists.
func TestRoute(t *testing.T) {
	r := NewRing(testMembers, 0)
	f := &fakeProbe{}
	p := newTestProber(testMembers, f, 1)
	ctx := context.Background()

	const g = "graph-007"
	succ := r.Successors(g)

	// Everyone up and holding g: route order is exactly ring order.
	for _, m := range testMembers {
		f.set(m, Status{Ready: true, Graphs: []string{g}}, nil)
	}
	p.Sweep(ctx)
	if got := Route(r, p, g); !reflect.DeepEqual(got, succ) {
		t.Fatalf("all-up Route = %v, want ring order %v", got, succ)
	}

	// Dead owner: route starts at the next live successor.
	p.MarkDown(succ[0])
	if got := Route(r, p, g); !reflect.DeepEqual(got, succ[1:]) {
		t.Fatalf("dead-owner Route = %v, want %v", got, succ[1:])
	}

	// A live member that does not advertise g is skipped.
	f.set(succ[1], Status{Ready: true, Graphs: []string{"something-else"}}, nil)
	p.Sweep(ctx) // also revives succ[0]
	if got := Route(r, p, g); !reflect.DeepEqual(got, []string{succ[0], succ[2]}) {
		t.Fatalf("non-holder Route = %v, want %v", got, []string{succ[0], succ[2]})
	}

	// No live holder anywhere: empty (the typed-503 case).
	p.MarkDown(succ[0])
	p.MarkDown(succ[2])
	if got := Route(r, p, g); len(got) != 0 {
		t.Fatalf("no-holder Route = %v, want empty", got)
	}
}

// TestSweepConcurrent runs overlapping sweeps and reads under -race.
func TestSweepConcurrent(t *testing.T) {
	f := &fakeProbe{}
	for _, m := range testMembers {
		f.set(m, Status{Ready: true, Graphs: []string{"g"}}, nil)
	}
	p := newTestProber(testMembers, f, 2)
	ctx := context.Background()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				p.Sweep(ctx)
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				for _, m := range testMembers {
					p.Alive(m)
					p.Holds(m, "g")
				}
				p.Live()
			}
		}()
	}
	wg.Wait()
	for _, m := range testMembers {
		if !p.Alive(m) {
			t.Errorf("member %s down after all-success sweeps", m)
		}
	}
}
