package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

var testMembers = []string{
	"http://127.0.0.1:9001",
	"http://127.0.0.1:9002",
	"http://127.0.0.1:9003",
}

// graphIDs returns n synthetic graph IDs for placement tests.
func graphIDs(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("graph-%03d", i)
	}
	return ids
}

// TestRingDeterministic pins the deployment contract: the same member
// set yields identical placement regardless of input order, vnode
// construction run, or which Ring instance answers.
func TestRingDeterministic(t *testing.T) {
	a := NewRing(testMembers, 0)
	b := NewRing([]string{testMembers[2], testMembers[0], testMembers[1], testMembers[0]}, 0)
	if !reflect.DeepEqual(a.Members(), b.Members()) {
		t.Fatalf("member normalization differs: %v vs %v", a.Members(), b.Members())
	}
	for _, g := range graphIDs(200) {
		ao, aok := a.Owner(g)
		bo, bok := b.Owner(g)
		if !aok || !bok || ao != bo {
			t.Fatalf("placement of %q differs across instances: %q vs %q", g, ao, bo)
		}
		if succ := a.Successors(g); succ[0] != ao {
			t.Fatalf("Successors(%q)[0] = %q, want owner %q", g, succ[0], ao)
		}
	}
}

// TestRingSpreads checks the virtual nodes actually spread load: with
// 200 graphs on 3 members, every member owns a nontrivial share.
func TestRingSpreads(t *testing.T) {
	r := NewRing(testMembers, 0)
	counts := make(map[string]int)
	for _, g := range graphIDs(200) {
		o, _ := r.Owner(g)
		counts[o]++
	}
	for _, m := range testMembers {
		if counts[m] < 20 {
			t.Errorf("member %s owns only %d/200 graphs; vnode spread is broken: %v", m, counts[m], counts)
		}
	}
}

// TestRingBoundedDisruption is the consistent-hashing property test:
// removing one member only remaps the graphs that member owned; every
// other graph keeps its owner.
func TestRingBoundedDisruption(t *testing.T) {
	full := NewRing(testMembers, 0)
	for _, removed := range testMembers {
		var rest []string
		for _, m := range testMembers {
			if m != removed {
				rest = append(rest, m)
			}
		}
		shrunk := NewRing(rest, 0)
		moved, kept := 0, 0
		for _, g := range graphIDs(500) {
			before, _ := full.Owner(g)
			after, _ := shrunk.Owner(g)
			if before != removed {
				kept++
				if after != before {
					t.Errorf("removing %s remapped %q: %s -> %s (owner was untouched)", removed, g, before, after)
				}
			} else {
				moved++
				if after == removed {
					t.Errorf("%q still owned by removed member %s", g, removed)
				}
			}
		}
		if moved == 0 || kept == 0 {
			t.Fatalf("degenerate placement: removed=%s moved=%d kept=%d", removed, moved, kept)
		}
	}
}

// TestRingSuccessorsDistinct pins that the failover chain visits each
// member exactly once, covering the whole cluster.
func TestRingSuccessorsDistinct(t *testing.T) {
	r := NewRing(testMembers, 0)
	for _, g := range graphIDs(50) {
		succ := r.Successors(g)
		if len(succ) != len(testMembers) {
			t.Fatalf("Successors(%q) = %v, want all %d members", g, succ, len(testMembers))
		}
		seen := make(map[string]bool)
		for _, m := range succ {
			if seen[m] {
				t.Fatalf("Successors(%q) repeats %s: %v", g, m, succ)
			}
			seen[m] = true
		}
	}
}

// TestRingEmpty pins the no-member edge cases.
func TestRingEmpty(t *testing.T) {
	r := NewRing(nil, 0)
	if o, ok := r.Owner("g"); ok {
		t.Errorf("empty ring produced owner %q", o)
	}
	if succ := r.Successors("g"); succ != nil {
		t.Errorf("empty ring produced successors %v", succ)
	}
	single := NewRing([]string{"http://one"}, 4)
	if o, ok := single.Owner("g"); !ok || o != "http://one" {
		t.Errorf("single-member ring: Owner = %q, %v", o, ok)
	}
}
