// Package cluster is the placement and membership layer of the sharded
// serving tier (ROADMAP item 3, DESIGN.md §14): N ccspd replicas each
// hold preprocessed snapshots for a subset of graphs, and queries route
// to the replica that owns the target graph instead of rebuilding
// hopsets anywhere - preprocessing is the expensive step (seconds to
// minutes per graph), so a graph's artifacts must stay resident where
// they were built.
//
// Three pieces compose:
//
//   - Ring: a consistent-hash ring with virtual nodes. Placement of
//     graph IDs onto replica addresses is deterministic (same member
//     set ⇒ same placement, across processes and runs) and
//     bounded-disruption (removing a member only remaps the graphs that
//     member owned).
//   - Prober: health-checked membership. Each member's /readyz is
//     probed on an interval; a replica is marked down after a
//     configurable number of consecutive failures and revives on the
//     first success. A successful probe also records which graphs the
//     replica actually serves, so routing never sends a query to a
//     replica that would answer 404.
//   - Route: the failover rule. Candidates for a graph are the ring
//     successors starting at the owner, filtered to live members that
//     hold the graph; a dead owner fails over to the next live holder,
//     and an empty candidate list is the typed "no replica" outcome the
//     client maps to a 503.
//
// The package is transport-free (the default probe speaks HTTP, but the
// probe function is injectable), so the ring and failover state machine
// are unit-testable without processes.
package cluster
