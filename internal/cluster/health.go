package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"github.com/congestedclique/ccsp/api"
)

// Defaults for Config fields left zero.
const (
	DefaultProbeInterval = 2 * time.Second
	DefaultProbeTimeout  = 1 * time.Second
	DefaultThreshold     = 3
)

// Status is the result of one successful probe exchange: whether the
// replica reports itself ready, and which graphs it serves. The empty
// string names a replica's default (unnamed) graph.
type Status struct {
	Ready  bool
	Graphs []string
}

// ProbeFunc performs one health exchange with member (a base URL). It
// returns an error only when the exchange itself failed (connection
// refused, timeout, non-JSON body); a well-formed "not ready yet"
// answer is Status{Ready: false} with a nil error.
type ProbeFunc func(ctx context.Context, member string) (Status, error)

// Config tunes a Prober. The zero value is usable: defaults fill in and
// the probe speaks HTTP to each member's /readyz endpoint.
type Config struct {
	// Interval between probe sweeps (default DefaultProbeInterval).
	Interval time.Duration
	// Threshold is the number of consecutive failed probes after which a
	// member is marked down (default DefaultThreshold). Recovery is
	// immediate: one success revives the member.
	Threshold int
	// Timeout bounds each individual probe (default DefaultProbeTimeout).
	Timeout time.Duration
	// Probe overrides the health exchange; nil uses HTTPProbe with a
	// probe-dedicated client.
	Probe ProbeFunc
}

// Prober tracks liveness and graph placement for a fixed member set.
// Members start down (nothing routes to a replica never seen healthy)
// and transition up on the first successful ready probe. Failures -
// probe errors and explicit MarkDown calls from the data path - count
// toward Threshold; crossing it marks the member down until the next
// success.
type Prober struct {
	cfg     Config
	mu      sync.Mutex
	members map[string]*memberState
}

type memberState struct {
	alive   bool
	fails   int
	graphs  map[string]bool
	lastErr error
}

// HTTPProbe returns the default ProbeFunc: GET <member>/readyz with
// client, decoding an api.Ready body. Both 200 (ready) and 503
// (starting) are valid exchanges; other statuses are probe errors.
func HTTPProbe(client *http.Client) ProbeFunc {
	return func(ctx context.Context, member string) (Status, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, member+"/readyz", nil)
		if err != nil {
			return Status{}, err
		}
		resp, err := client.Do(req)
		if err != nil {
			return Status{}, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
			return Status{}, fmt.Errorf("cluster: %s/readyz: unexpected status %s", member, resp.Status)
		}
		var ready api.Ready
		if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
			return Status{}, fmt.Errorf("cluster: %s/readyz: %w", member, err)
		}
		return Status{Ready: ready.Ready, Graphs: ready.Graphs}, nil
	}
}

// NewProber builds a Prober over members. No probe runs until Sweep or
// Run is called, so every member starts down.
func NewProber(members []string, cfg Config) *Prober {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultProbeInterval
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = DefaultThreshold
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultProbeTimeout
	}
	if cfg.Probe == nil {
		cfg.Probe = HTTPProbe(&http.Client{Timeout: cfg.Timeout})
	}
	p := &Prober{cfg: cfg, members: make(map[string]*memberState, len(members))}
	for _, m := range members {
		p.members[m] = &memberState{}
	}
	return p
}

// Sweep probes every member once, concurrently, and applies the results
// to the liveness state. It blocks until the slowest probe returns or
// times out.
func (p *Prober) Sweep(ctx context.Context) {
	var wg sync.WaitGroup
	p.mu.Lock()
	names := make([]string, 0, len(p.members))
	for m := range p.members {
		names = append(names, m)
	}
	p.mu.Unlock()
	for _, m := range names {
		wg.Add(1)
		go func(m string) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, p.cfg.Timeout)
			defer cancel()
			st, err := p.cfg.Probe(pctx, m)
			p.apply(m, st, err)
		}(m)
	}
	wg.Wait()
}

// Run sweeps immediately, then on every Interval tick until ctx is
// done. It is the long-lived goroutine body of a routing client.
func (p *Prober) Run(ctx context.Context) {
	p.Sweep(ctx)
	ticker := time.NewTicker(p.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			p.Sweep(ctx)
		}
	}
}

// apply folds one probe outcome into a member's state machine.
func (p *Prober) apply(member string, st Status, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	ms, ok := p.members[member]
	if !ok {
		return
	}
	if err != nil || !st.Ready {
		ms.fails++
		ms.lastErr = err
		if ms.fails >= p.cfg.Threshold && ms.alive {
			ms.alive = false
			markTransition(member, false)
		}
		return
	}
	if !ms.alive {
		markTransition(member, true)
	}
	ms.alive = true
	ms.fails = 0
	ms.lastErr = nil
	ms.graphs = make(map[string]bool, len(st.Graphs))
	for _, g := range st.Graphs {
		ms.graphs[g] = true
	}
}

// MarkDown immediately marks member down, bypassing the threshold. The
// data path calls this on a transport failure (connection refused,
// reset): the evidence is as strong as Threshold failed probes, and
// waiting for the prober to catch up would route more queries into the
// same dead socket.
func (p *Prober) MarkDown(member string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if ms, ok := p.members[member]; ok {
		if ms.alive {
			markTransition(member, false)
		}
		ms.alive = false
		ms.fails = p.cfg.Threshold
	}
}

// Alive reports whether member is currently considered live.
func (p *Prober) Alive(member string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	ms, ok := p.members[member]
	return ok && ms.alive
}

// Holds reports whether member's last successful probe advertised
// graph. A member that has never probed healthy holds nothing.
func (p *Prober) Holds(member, graph string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	ms, ok := p.members[member]
	return ok && ms.graphs[graph]
}

// Live returns the currently live members, sorted.
func (p *Prober) Live() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []string
	for m, ms := range p.members {
		if ms.alive {
			out = append(out, m)
		}
	}
	sort.Strings(out)
	return out
}

// Route returns the members that can serve graph, in failover
// preference order: the ring successors of the graph, filtered to
// members that are live and advertise the graph. Empty means no live
// replica holds the graph - the caller's typed-unavailable case.
func Route(r *Ring, p *Prober, graph string) []string {
	var out []string
	for _, m := range r.Successors(graph) {
		if p.Alive(m) && p.Holds(m, graph) {
			out = append(out, m)
		}
	}
	return out
}
