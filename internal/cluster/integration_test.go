// Multi-process integration test of the sharded serving tier: builds
// the real ccspd binary, starts three daemon processes each loading the
// snapshots the ring places on it, and drives them through
// client.Cluster - asserting cluster-routed answers equal in-process
// engine answers for every request kind, then SIGKILLing one replica
// and asserting its graphs degrade to typed unavailable errors while
// every other position keeps answering correctly.
package cluster_test

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"github.com/congestedclique/ccsp"
	"github.com/congestedclique/ccsp/api"
	"github.com/congestedclique/ccsp/client"
	"github.com/congestedclique/ccsp/internal/cluster"
)

// integrationGraphs mirrors the client package's cluster fixtures:
// distinct sizes so graphs are distinguishable by vector length.
var integrationGraphs = map[string]int{"alpha": 8, "beta": 10, "gamma": 12, "delta": 14, "omega": 9}

// buildEngine is the same generator the in-process cluster tests use,
// so a daemon restoring the saved snapshot answers identically.
func buildEngine(t *testing.T, n int) *ccsp.Engine {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(n)))
	gr := ccsp.NewGraph(n)
	for v := 1; v < n; v++ {
		gr.MustAddEdge(v, rng.Intn(v), rng.Int63n(9)+1)
	}
	for e := 0; e < n; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			gr.MustAddEdge(u, v, rng.Int63n(9)+1)
		}
	}
	eng, err := ccsp.NewEngine(context.Background(), gr, ccsp.Options{Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// allKinds is one request of every kind against graph g (sized n).
func allKinds(g string, n int) []api.Request {
	return []api.Request{
		{Kind: api.KindSSSP, Graph: g, SSSP: &api.SSSPParams{Source: 1}},
		{Kind: api.KindMSSP, Graph: g, MSSP: &api.MSSPParams{Sources: []int{0, 2}}},
		{Kind: api.KindAPSP, Graph: g},
		{Kind: api.KindAPSP, Graph: g, APSP: &api.APSPParams{Variant: api.APSPWeighted3}},
		{Kind: api.KindDistance, Graph: g, Distance: &api.DistanceParams{From: 0, To: n - 1}},
		{Kind: api.KindDiameter, Graph: g},
		{Kind: api.KindKNearest, Graph: g, KNearest: &api.KNearestParams{K: 2}},
		{Kind: api.KindSourceDetection, Graph: g,
			SourceDetection: &api.SourceDetectionParams{Sources: []int{0, 3}, D: 4, K: 2}},
	}
}

// reservePorts grabs n distinct loopback ports by listening and
// immediately closing. Racy in principle, fine for CI in practice.
func reservePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs
}

// daemon is one spawned ccspd process.
type daemon struct {
	cmd *exec.Cmd
	out bytes.Buffer
	url string
}

func TestMultiProcessCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test; skipped with -short")
	}
	ctx := context.Background()
	dir := t.TempDir()

	bin := filepath.Join(dir, "ccspd")
	build := exec.Command("go", "build", "-o", bin, "github.com/congestedclique/ccsp/cmd/ccspd")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build ccspd: %v\n%s", err, out)
	}

	addrs := reservePorts(t, 3)
	members := make([]string, len(addrs))
	for i, a := range addrs {
		members[i] = "http://" + a
	}
	ring := cluster.NewRing(members, 0)

	// Build each graph's engine in-process and save its snapshot into
	// the owner's load list - owner-only placement, no failover copies,
	// so killing a replica makes its graphs strictly unavailable.
	engines := make(map[string]*ccsp.Engine, len(integrationGraphs))
	loads := make(map[string][]string) // member -> repeated -load flags
	for g, n := range integrationGraphs {
		eng := buildEngine(t, n)
		engines[g] = eng
		snap := filepath.Join(dir, g+".snap")
		f, err := os.Create(snap)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Save(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		owner, ok := ring.Owner(g)
		if !ok {
			t.Fatal("empty ring")
		}
		loads[owner] = append(loads[owner], "-load", g+"="+snap)
	}
	owners := make(map[string]bool)
	for g := range integrationGraphs {
		o, _ := ring.Owner(g)
		owners[o] = true
	}
	if len(owners) < 2 {
		t.Fatalf("placement spans %d replicas; fixtures must spread over >= 2", len(owners))
	}

	// Spawn a daemon per member that owns at least one graph (ccspd
	// requires a source; a member the ring assigned nothing stays dark
	// and the prober correctly never marks it live).
	daemons := make(map[string]*daemon, len(members))
	for i, m := range members {
		if len(loads[m]) == 0 {
			continue
		}
		args := append([]string{"-addr", addrs[i]}, loads[m]...)
		d := &daemon{cmd: exec.Command(bin, args...), url: m}
		d.cmd.Stdout = &d.out
		d.cmd.Stderr = &d.out
		if err := d.cmd.Start(); err != nil {
			t.Fatal(err)
		}
		daemons[m] = d
		t.Cleanup(func() {
			d.cmd.Process.Kill()
			d.cmd.Wait()
			if t.Failed() {
				t.Logf("ccspd %s output:\n%s", d.url, d.out.String())
			}
		})
	}
	for _, d := range daemons {
		waitReady(t, d.url)
	}

	c := client.NewCluster(members)
	defer c.Close()
	if live := c.Live(); len(live) != len(daemons) {
		t.Fatalf("Live() = %v, want the %d spawned members", live, len(daemons))
	}

	// Every request kind, every graph: cluster == in-process engine.
	for g, n := range integrationGraphs {
		reqs := allKinds(g, n)
		want, err := engines[g].Batch(ctx, reqs)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Batch(ctx, reqs)
		if err != nil {
			t.Fatalf("graph %s: %v", g, err)
		}
		for i := range got {
			got[i].Cached = want[i].Cached
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Errorf("graph %s %s: cluster answer differs\n got %+v\nwant %+v",
					g, reqs[i].Kind, got[i], want[i])
			}
		}
	}

	// SIGKILL alpha's owner mid-run. Its graphs must degrade to typed
	// per-position 503s; graphs on surviving replicas keep answering.
	victim, _ := ring.Owner("alpha")
	vd := daemons[victim]
	if err := vd.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	vd.cmd.Wait()

	var deadG, liveG []string
	for g := range integrationGraphs {
		if o, _ := ring.Owner(g); o == victim {
			deadG = append(deadG, g)
		} else {
			liveG = append(liveG, g)
		}
	}
	if len(liveG) == 0 {
		t.Fatal("no graph survived the kill; placement check should have prevented this")
	}

	// Mixed batch across dead and live graphs: never a whole-batch
	// failure, dead positions typed, live positions still exact.
	var mixed []api.Request
	for _, g := range append(append([]string{}, deadG...), liveG...) {
		mixed = append(mixed, api.Request{Kind: api.KindSSSP, Graph: g, SSSP: &api.SSSPParams{Source: 1}})
	}
	resps, err := c.Batch(ctx, mixed)
	if err != nil {
		t.Fatalf("mixed batch after kill: %v", err)
	}
	for i, resp := range resps {
		g := mixed[i].Graph
		if i < len(deadG) {
			if resp.Error == nil || resp.Error.Code != api.CodeUnavailable {
				t.Fatalf("dead graph %s: error = %+v, want code %q", g, resp.Error, api.CodeUnavailable)
			}
			if resp.Graph != g || resp.Kind != api.KindSSSP {
				t.Errorf("dead graph %s: response echo = (%q, %q)", g, resp.Graph, resp.Kind)
			}
			// errors.Is parity with the single-call path's sentinels.
			if !errors.Is(client.SentinelError(resp.Error), ccsp.ErrUnavailable) {
				t.Errorf("dead graph %s: SentinelError not ErrUnavailable", g)
			}
			continue
		}
		want, qerr := engines[g].Query(ctx, mixed[i])
		if qerr != nil {
			t.Fatal(qerr)
		}
		resp.Cached = want.Cached
		if !reflect.DeepEqual(resp, *want) {
			t.Errorf("survivor graph %s: answer changed after kill\n got %+v\nwant %+v", g, resp, *want)
		}
	}

	// Single-call path agrees: typed sentinel for dead, exact for live.
	if _, err := c.Query(ctx, api.Request{Kind: api.KindDiameter, Graph: deadG[0]}); !errors.Is(err, ccsp.ErrUnavailable) {
		t.Errorf("dead graph query: err = %v, want ErrUnavailable", err)
	}
	if _, err := c.Query(ctx, api.Request{Kind: api.KindDiameter, Graph: liveG[0]}); err != nil {
		t.Errorf("survivor graph query: %v", err)
	}
}

// waitReady polls member/readyz until it reports 200 or the deadline
// passes.
func waitReady(t *testing.T, member string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(member + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("replica %s never became ready", member)
}
