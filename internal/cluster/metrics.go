package cluster

import "github.com/congestedclique/ccsp/internal/telemetry"

// markTransition records one liveness flip in the process-global
// registry, labeled by member and direction ("up"/"down"). Flips are
// rare (a healthy cluster's counter stands still), so the registry's
// get-or-create lookup on this cold path is fine; the member label set
// is bounded by the fixed replica set.
func markTransition(member string, alive bool) {
	direction := "down"
	if alive {
		direction = "up"
	}
	telemetry.Default.Counter("ccsp_cluster_member_transitions_total",
		"Replica liveness transitions observed by the health prober, by member and direction.",
		telemetry.L("member", member), telemetry.L("direction", direction)).Inc()
}
