package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVirtualNodes is the per-member virtual-node count. 128 points
// per member keeps the expected load imbalance across a handful of
// replicas within a few percent while the whole ring stays a few KiB.
const DefaultVirtualNodes = 128

// Ring is an immutable consistent-hash ring: members (replica base
// URLs) each project VirtualNodes points onto a 64-bit circle, and a
// key (a graph ID) is owned by the member of the first point at or
// after the key's hash. Construction is deterministic - member order,
// duplicates and process identity do not affect placement.
type Ring struct {
	vnodes  int
	members []string // sorted, deduplicated
	points  []point  // sorted by (hash, member index, replica index)
}

type point struct {
	hash   uint64
	member int // index into members
}

// NewRing builds a ring over members with vnodes virtual nodes per
// member (<= 0 picks DefaultVirtualNodes). Members are deduplicated;
// an empty member set yields a ring whose lookups report no owner.
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	sorted := append([]string(nil), members...)
	sort.Strings(sorted)
	uniq := sorted[:0]
	for i, m := range sorted {
		if i > 0 && m == sorted[i-1] {
			continue
		}
		uniq = append(uniq, m)
	}
	r := &Ring{vnodes: vnodes, members: append([]string(nil), uniq...)}
	r.points = make([]point, 0, len(r.members)*vnodes)
	for mi, m := range r.members {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: hash64(m + "#" + strconv.Itoa(v)), member: mi})
		}
	}
	// Hash ties (astronomically unlikely, but placement must be a total
	// order) break by member index so the ring is identical everywhere.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
	return r
}

// Members returns the deduplicated, sorted member list.
func (r *Ring) Members() []string {
	return append([]string(nil), r.members...)
}

// Owner returns the member owning key, and false on an empty ring.
func (r *Ring) Owner(key string) (string, bool) {
	if len(r.points) == 0 {
		return "", false
	}
	return r.members[r.points[r.search(key)].member], true
}

// Successors returns every member in ring order starting at key's
// owner: the preference order for failover (Successors(k)[0] is the
// owner; a query falls through to the next entries only when earlier
// ones are down or do not hold the graph).
func (r *Ring) Successors(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	start := r.search(key)
	out := make([]string, 0, len(r.members))
	seen := make([]bool, len(r.members))
	for i := 0; i < len(r.points) && len(out) < len(r.members); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, r.members[p.member])
		}
	}
	return out
}

// search returns the index of the first point at or clockwise-after
// key's hash.
func (r *Ring) search(key string) int {
	h := hash64(key)
	idx := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if idx == len(r.points) {
		idx = 0 // wrap: the circle's first point
	}
	return idx
}

// hash64 is FNV-1a followed by a murmur-style finalizer. Plain FNV-1a
// puts short keys with shared prefixes ("graph-000", "graph-001", ...)
// within a narrow band of the 64-bit circle - the last byte only passes
// through one multiply - which collapses placement onto one member; the
// finalizer diffuses every input bit across the whole word. Both steps
// are fixed arithmetic, so placement is identical across platforms and
// Go versions (it is part of the deployment contract: scripts, tests
// and clients must all compute the same owners).
func hash64(s string) uint64 {
	f := fnv.New64a()
	f.Write([]byte(s)) //nolint:errcheck // fnv never fails
	h := f.Sum64()
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
