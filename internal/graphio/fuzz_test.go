package graphio

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead asserts the parser's hardening contract for both text formats:
// arbitrary input must parse into a structurally valid graph or return an
// error - never panic. The committed seed corpus (testdata/fuzz/FuzzRead)
// plus the seeds below cover both formats and the error classes the unit
// tests exercise.
func FuzzRead(f *testing.F) {
	f.Add("0 1 2\n1 2 3\n")
	f.Add("# comment\n0 1\n")
	f.Add("c x\np sp 3 2\na 1 2 7\na 2 3 1\n")
	f.Add("p sp 2 5\na 1 2 1\n")
	f.Add("0 1 99999999999999999999\n")
	f.Add("a 1 2 3\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := Read(strings.NewReader(in), FormatAuto)
		if err != nil {
			return
		}
		// A successful parse must produce a graph the rest of the system
		// can rely on: positive n, in-range symmetric adjacency, and the
		// ability to re-serialize in both formats.
		if g.N < 1 {
			t.Fatalf("parsed graph has n=%d", g.N)
		}
		for v, adj := range g.Adj {
			for _, e := range adj {
				if int(e.To) < 0 || int(e.To) >= g.N || int(e.To) == v || e.W < 0 {
					t.Fatalf("invalid half-edge %d->%d (w=%d)", v, e.To, e.W)
				}
			}
		}
		var buf bytes.Buffer
		if err := Write(&buf, g, FormatEdgeList); err != nil {
			t.Fatalf("re-serialize edge list: %v", err)
		}
		if err := Write(&buf, g, FormatDIMACS); err != nil {
			t.Fatalf("re-serialize DIMACS: %v", err)
		}
	})
}
