package graphio

import (
	"bufio"
	"bytes"
	"reflect"
	"strings"
	"testing"

	"github.com/congestedclique/ccsp/internal/graph"
)

func TestReadEdgeList(t *testing.T) {
	in := `# a comment
0 1 2
1 2
 3 0   7

# trailing comment
`
	g, err := Read(strings.NewReader(in), FormatAuto)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 4 || g.M() != 3 {
		t.Fatalf("got n=%d m=%d, want n=4 m=3", g.N, g.M())
	}
	if d := g.Dijkstra(0); d[2] != 3 { // 0-1 (2) + 1-2 (default 1)
		t.Errorf("dist(0,2) = %d, want 3", d[2])
	}
}

func TestReadDIMACS(t *testing.T) {
	in := `c road network fragment
p sp 4 6
a 1 2 5
a 2 1 5
a 2 3 2
a 3 2 2
a 3 4 4
a 4 3 4
`
	g, err := Read(strings.NewReader(in), FormatAuto)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 4 || g.M() != 3 {
		t.Fatalf("got n=%d m=%d, want n=4 m=3 (arc pairs collapsed)", g.N, g.M())
	}
	if d := g.Dijkstra(0); d[3] != 11 {
		t.Errorf("dist(1,4) = %d, want 11", d[3])
	}
}

func TestAutoDetect(t *testing.T) {
	det := func(s string) Format {
		f, err := detect(bufio.NewReader(strings.NewReader(s)))
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	if det("p sp 2 2\na 1 2 1\na 2 1 1\n") != FormatDIMACS {
		t.Error("DIMACS input not detected")
	}
	if det("# hello\n0 1 4\n") != FormatEdgeList {
		t.Error("edge list input not detected")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	// Nodes 5 and 6 are isolated: both formats must still round-trip the
	// node count (the edge list via its "# <n> nodes" header).
	g := graph.New(7)
	g.MustAddEdge(0, 1, 3)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 4)
	g.MustAddEdge(3, 4, 1)
	g.MustAddEdge(4, 0, 9)

	for _, f := range []Format{FormatEdgeList, FormatDIMACS} {
		var buf bytes.Buffer
		if err := Write(&buf, g, f); err != nil {
			t.Fatal(err)
		}
		got, err := Read(&buf, FormatAuto) // auto-detect must recognize our own output
		if err != nil {
			t.Fatalf("format %d: %v", f, err)
		}
		if got.N != g.N || got.M() != g.M() {
			t.Fatalf("format %d: got n=%d m=%d, want n=%d m=%d", f, got.N, got.M(), g.N, g.M())
		}
		if !reflect.DeepEqual(got.APSPRef(), g.APSPRef()) {
			t.Errorf("format %d: round-tripped distances differ", f)
		}
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"empty", ""},
		{"one field", "0\n"},
		{"four fields", "0 1 2 3\n"},
		{"bad id", "x 1\n"},
		{"negative id", "-1 1\n"},
		{"bad weight", "0 1 x\n"},
		{"negative weight", "0 1 -2\n"},
		{"self loop", "3 3 1\n"},
		{"dimacs no problem line", "a 1 2 3\n"},
		{"dimacs bad problem", "p xx 3 1\n"},
		{"dimacs dup problem", "p sp 2 0\np sp 2 0\n"},
		{"dimacs arc out of range", "p sp 2 1\na 1 5 1\n"},
		{"dimacs arc count mismatch", "p sp 2 5\na 1 2 1\n"},
		{"dimacs zero id", "p sp 2 1\na 0 1 1\n"},
		{"dimacs unknown line", "p sp 2 1\nz 1 2 3\n"},
		{"dimacs empty", "p sp 0 0\n"},
	}
	for _, tc := range cases {
		if _, err := Read(strings.NewReader(tc.in), FormatAuto); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}
