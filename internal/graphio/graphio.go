// Package graphio reads and writes graphs in the two interchange formats
// real shortest-path datasets come in: whitespace edge lists ("u v [w]",
// 0-based, '#' comments) and the 9th DIMACS Implementation Challenge
// format (.gr: 'c' comments, one 'p sp <n> <m>' problem line, 'a <u> <v>
// <w>' arcs, 1-based). It exists so cmd/ccsp and cmd/ccspd can serve
// published road-network and benchmark graphs, not just graphgen
// synthetics. Parsing is hardened: malformed input returns an error with
// a line number, never a panic (asserted by the fuzz harness).
package graphio

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"github.com/congestedclique/ccsp/internal/graph"
)

// Format identifies a graph file encoding.
type Format int

const (
	// FormatAuto detects the format from content: a 'p'/'a'/'c' leading
	// token means DIMACS, anything else is read as an edge list.
	FormatAuto Format = iota
	// FormatEdgeList is "u v [w]" per line, 0-based IDs, optional weight
	// (default 1), '#' comments. The node count is one more than the
	// largest ID seen.
	FormatEdgeList
	// FormatDIMACS is the DIMACS shortest-path format: 'p sp <n> <m>',
	// then 'a <u> <v> <w>' arc lines with 1-based IDs. The two arcs of an
	// undirected edge collapse to one.
	FormatDIMACS
)

// maxNodes caps parsed graph sizes: the simulator is quadratic in n, so
// anything beyond this is a malformed or hostile input, not a workload.
const maxNodes = 1 << 20

// Read parses a graph from r in the given format.
func Read(r io.Reader, f Format) (*graph.Graph, error) {
	br := bufio.NewReader(r)
	if f == FormatAuto {
		detected, err := detect(br)
		if err != nil {
			return nil, err
		}
		f = detected
	}
	switch f {
	case FormatEdgeList:
		return readEdgeList(br)
	case FormatDIMACS:
		return readDIMACS(br)
	default:
		return nil, fmt.Errorf("graphio: unknown format %d", f)
	}
}

// ReadFile parses the graph file at path, inferring DIMACS from a ".gr"
// extension and auto-detecting otherwise.
func ReadFile(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	format := FormatAuto
	if strings.EqualFold(filepath.Ext(path), ".gr") {
		format = FormatDIMACS
	}
	g, err := Read(f, format)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return g, nil
}

// detect peeks at the first non-blank, non-'#' line: DIMACS lines start
// with a single-letter 'c', 'p' or 'a' token, edge-list lines with a
// node ID.
func detect(br *bufio.Reader) (Format, error) {
	peek, err := br.Peek(4096)
	if err != nil && err != io.EOF && err != bufio.ErrBufferFull {
		return FormatAuto, fmt.Errorf("graphio: %w", err)
	}
	for _, line := range strings.Split(string(peek), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch fields := strings.Fields(line); fields[0] {
		case "c", "p", "a":
			return FormatDIMACS, nil
		default:
			return FormatEdgeList, nil
		}
	}
	return FormatEdgeList, nil
}

// edge is one parsed undirected edge.
type edge struct {
	u, v int
	w    int64
}

// build materializes parsed edges into a graph, deduplicating exact
// (endpoints, weight) repeats - in DIMACS files every undirected edge
// appears as two arcs - while keeping genuinely parallel edges of
// different weight (AddEdge's lighter-wins semantics resolves them at
// query time).
func build(n int, edges []edge) (*graph.Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("graphio: empty graph")
	}
	if n > maxNodes {
		return nil, fmt.Errorf("graphio: %d nodes exceeds the %d limit", n, maxNodes)
	}
	g := graph.New(n)
	seen := make(map[[3]int64]bool, len(edges))
	for _, e := range edges {
		lo, hi := e.u, e.v
		if lo > hi {
			lo, hi = hi, lo
		}
		key := [3]int64{int64(lo), int64(hi), e.w}
		if seen[key] {
			continue
		}
		seen[key] = true
		if err := g.AddEdge(e.u, e.v, e.w); err != nil {
			return nil, fmt.Errorf("graphio: %w", err)
		}
	}
	return g, nil
}

func readEdgeList(br *bufio.Reader) (*graph.Graph, error) {
	sc := bufio.NewScanner(br)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var edges []edge
	maxID := 0
	headerN := 0
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			// The edge list itself cannot express trailing isolated
			// nodes; honor the "# <n> nodes, ..." header our own Write
			// emits so Write → Read round-trips the node count exactly.
			if headerN == 0 {
				f := strings.Fields(strings.TrimPrefix(text, "#"))
				if len(f) >= 2 && (f[1] == "nodes," || f[1] == "nodes") {
					if n, err := parseID(f[0], 1); err == nil {
						headerN = n
					}
				}
			}
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("graphio: line %d: want 'u v [w]', got %d fields", line, len(fields))
		}
		u, err := parseID(fields[0], 0)
		if err != nil {
			return nil, fmt.Errorf("graphio: line %d: %w", line, err)
		}
		v, err := parseID(fields[1], 0)
		if err != nil {
			return nil, fmt.Errorf("graphio: line %d: %w", line, err)
		}
		w := int64(1)
		if len(fields) == 3 {
			if w, err = parseWeight(fields[2]); err != nil {
				return nil, fmt.Errorf("graphio: line %d: %w", line, err)
			}
		}
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
		edges = append(edges, edge{u, v, w})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graphio: %w", err)
	}
	if len(edges) == 0 && headerN == 0 {
		return nil, fmt.Errorf("graphio: no edges in edge-list input")
	}
	n := maxID + 1
	if headerN > n {
		n = headerN
	}
	return build(n, edges)
}

func readDIMACS(br *bufio.Reader) (*graph.Graph, error) {
	sc := bufio.NewScanner(br)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var edges []edge
	n, declaredArcs := 0, 0
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "c": // comment
		case "p":
			if n > 0 {
				return nil, fmt.Errorf("graphio: line %d: duplicate problem line", line)
			}
			if len(fields) != 4 || fields[1] != "sp" {
				return nil, fmt.Errorf("graphio: line %d: want 'p sp <n> <m>'", line)
			}
			var err error
			if n, err = parseID(fields[2], 1); err != nil {
				return nil, fmt.Errorf("graphio: line %d: %w", line, err)
			}
			if declaredArcs, err = parseID(fields[3], 0); err != nil {
				return nil, fmt.Errorf("graphio: line %d: %w", line, err)
			}
			if n > maxNodes {
				return nil, fmt.Errorf("graphio: line %d: %d nodes exceeds the %d limit", line, n, maxNodes)
			}
		case "a":
			if n == 0 {
				return nil, fmt.Errorf("graphio: line %d: arc before problem line", line)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("graphio: line %d: want 'a <u> <v> <w>'", line)
			}
			u, err := parseID(fields[1], 1)
			if err != nil {
				return nil, fmt.Errorf("graphio: line %d: %w", line, err)
			}
			v, err := parseID(fields[2], 1)
			if err != nil {
				return nil, fmt.Errorf("graphio: line %d: %w", line, err)
			}
			w, err := parseWeight(fields[3])
			if err != nil {
				return nil, fmt.Errorf("graphio: line %d: %w", line, err)
			}
			if u > n || v > n {
				return nil, fmt.Errorf("graphio: line %d: arc (%d,%d) outside 1..%d", line, u, v, n)
			}
			edges = append(edges, edge{u - 1, v - 1, w})
		default:
			return nil, fmt.Errorf("graphio: line %d: unknown DIMACS line type %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graphio: %w", err)
	}
	if n == 0 {
		return nil, fmt.Errorf("graphio: missing 'p sp' problem line")
	}
	if declaredArcs != len(edges) {
		return nil, fmt.Errorf("graphio: problem line declares %d arcs, file has %d", declaredArcs, len(edges))
	}
	return build(n, edges)
}

// parseID parses a non-negative node ID or count with the given minimum.
func parseID(s string, min int) (int, error) {
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad integer %q", s)
	}
	if v < min {
		return 0, fmt.Errorf("value %d below minimum %d", v, min)
	}
	return v, nil
}

// parseWeight parses a non-negative edge weight.
func parseWeight(s string) (int64, error) {
	w, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad weight %q", s)
	}
	if w < 0 {
		return 0, fmt.Errorf("negative weight %d", w)
	}
	return w, nil
}

// Write renders g in the given format (FormatAuto writes an edge list).
// Each undirected edge is written once in edge-list form and as the
// conventional arc pair in DIMACS form. Both formats carry the node
// count (the edge list as the "# <n> nodes" header readEdgeList honors),
// so Write → Read round-trips to an equivalent graph, trailing isolated
// nodes included.
func Write(w io.Writer, g *graph.Graph, f Format) error {
	bw := bufio.NewWriter(w)
	switch f {
	case FormatAuto, FormatEdgeList:
		fmt.Fprintf(bw, "# %d nodes, %d edges\n", g.N, g.M())
		for v := 0; v < g.N; v++ {
			for _, e := range g.Adj[v] {
				if int(e.To) > v {
					fmt.Fprintf(bw, "%d %d %d\n", v, e.To, e.W)
				}
			}
		}
	case FormatDIMACS:
		fmt.Fprintf(bw, "c generated by ccsp graphio\np sp %d %d\n", g.N, 2*g.M())
		for v := 0; v < g.N; v++ {
			for _, e := range g.Adj[v] {
				fmt.Fprintf(bw, "a %d %d %d\n", v+1, e.To+1, e.W)
			}
		}
	default:
		return fmt.Errorf("graphio: unknown format %d", f)
	}
	return bw.Flush()
}
