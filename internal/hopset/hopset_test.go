package hopset

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"github.com/congestedclique/ccsp/internal/cc"
	"github.com/congestedclique/ccsp/internal/graph"
	"github.com/congestedclique/ccsp/internal/hitting"
	"github.com/congestedclique/ccsp/internal/matrix"
	"github.com/congestedclique/ccsp/internal/semiring"
)

func randGraph(n, extraEdges int, maxW int64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(v, rng.Intn(v), rng.Int63n(maxW)+1)
	}
	for e := 0; e < extraEdges; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.MustAddEdge(u, v, rng.Int63n(maxW)+1)
		}
	}
	return g
}

// buildHopset runs the collective construction and gathers results.
func buildHopset(t *testing.T, g *graph.Graph, p Params) ([]*Result, cc.Stats) {
	t.Helper()
	sr := g.AugSemiring()
	board := hitting.NewBoard(g.N)
	results := make([]*Result, g.N)
	stats, err := cc.Run(context.Background(), cc.Config{N: g.N}, func(nd *cc.Node) error {
		res, err := Build(nd, sr, g.WeightRow(nd.ID), board, p)
		if err != nil {
			return err
		}
		results[nd.ID] = res
		return nil
	})
	if err != nil {
		t.Fatalf("hopset build failed: %v", err)
	}
	return results, stats
}

// betaHopDistances computes exact β-hop-limited all-pairs distances of
// G ∪ H by square-and-multiply over plain min-plus.
func betaHopDistances(g *graph.Graph, results []*Result, beta int) [][]int64 {
	sr := semiring.NewMinPlus(semiring.Inf - 1)
	n := g.N
	base := matrix.New[int64](n)
	for v := 0; v < n; v++ {
		row := make(matrix.Row[int64], 0, 8)
		row = append(row, matrix.Entry[int64]{Col: int32(v), Val: 0})
		for _, e := range g.Adj[v] {
			row = append(row, matrix.Entry[int64]{Col: e.To, Val: e.W})
		}
		for _, e := range results[v].Row {
			row = append(row, matrix.Entry[int64]{Col: e.Col, Val: e.Val.W})
		}
		base.Rows[v] = dedupMin(matrix.SortRow(row))
	}
	// pow = base^beta via binary exponentiation (base includes the
	// diagonal, so base^t gives <= t-hop paths).
	pow := matrix.Identity[int64](sr, n)
	sq := base
	for e := beta; e > 0; e >>= 1 {
		if e&1 == 1 {
			pow = matrix.MulRef[int64](sr, pow, sq)
		}
		sq = matrix.MulRef[int64](sr, sq, sq)
	}
	out := make([][]int64, n)
	for v := 0; v < n; v++ {
		out[v] = make([]int64, n)
		for u := 0; u < n; u++ {
			out[v][u] = pow.Get(sr, v, u)
		}
	}
	return out
}

func dedupMin(r matrix.Row[int64]) matrix.Row[int64] {
	out := r[:0]
	for _, e := range r {
		if len(out) > 0 && out[len(out)-1].Col == e.Col {
			if e.Val < out[len(out)-1].Val {
				out[len(out)-1].Val = e.Val
			}
			continue
		}
		out = append(out, e)
	}
	return out
}

// TestHopsetGuarantee is the defining property of a (β,ε)-hopset:
// d_G(u,v) <= d^β_{G∪H}(u,v) <= (1+ε)·d_G(u,v) for all pairs.
func TestHopsetGuarantee(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		p    Params
	}{
		{"random-paper", randGraph(24, 20, 10, 1), Paper(0.5)},
		{"random-practical", randGraph(32, 30, 20, 2), Practical(0.5)},
		{"tree", randGraph(20, 0, 8, 3), Paper(1.0)},
		{"line", lineGraph(24, 5), Practical(0.25)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			results, _ := buildHopset(t, tc.g, tc.p)
			beta := results[0].Beta
			hop := betaHopDistances(tc.g, results, beta)
			trueDist := tc.g.APSPRef()
			for v := 0; v < tc.g.N; v++ {
				for u := 0; u < tc.g.N; u++ {
					d, h := trueDist[v][u], hop[v][u]
					if d >= semiring.Inf {
						if h < semiring.Inf {
							t.Fatalf("pair (%d,%d): hopset connected an unreachable pair", v, u)
						}
						continue
					}
					if h < d {
						t.Fatalf("pair (%d,%d): hopset shortcut %d below true distance %d", v, u, h, d)
					}
					if float64(h) > (1+tc.p.Eps)*float64(d)+1e-9 {
						t.Fatalf("pair (%d,%d): β-hop distance %d exceeds (1+ε)·%d", v, u, h, d)
					}
				}
			}
		})
	}
}

func lineGraph(n int, w int64) *graph.Graph {
	g := graph.New(n)
	for v := 0; v+1 < n; v++ {
		g.MustAddEdge(v, v+1, w)
	}
	return g
}

// TestHopsetSize checks Claim 21: O(n^{3/2} log n) edges.
func TestHopsetSize(t *testing.T) {
	g := randGraph(48, 100, 10, 4)
	results, _ := buildHopset(t, g, Practical(0.5))
	total := 0
	for _, r := range results {
		total += r.EdgeCount()
	}
	total /= 2 // both endpoints count each edge
	n := float64(g.N)
	bound := 4 * n * math.Sqrt(n) * math.Log2(n)
	if float64(total) > bound {
		t.Errorf("hopset has %d edges, exceeds bound %f", total, bound)
	}
}

// TestBunchProperty (white box): for v outside A_1, every bunch member is
// strictly closer than p(v), and the p(v) edge is present (§4.1).
func TestBunchProperty(t *testing.T) {
	g := randGraph(28, 40, 10, 5)
	results, _ := buildHopset(t, g, Practical(0.5))
	trueDist := g.APSPRef()
	for v, r := range results {
		if r.InA1[v] {
			continue
		}
		if r.PV < 0 {
			t.Fatalf("node %d has no pivot", v)
		}
		if trueDist[v][r.PV] != r.DPV.W {
			t.Errorf("node %d: pivot distance %d, want %d", v, r.DPV.W, trueDist[v][r.PV])
		}
	}
}

// TestPivotsAreHittingSetMembers: p(v) ∈ A_1 and d(v,p(v)) = d(v,A_1)
// restricted to N_k(v).
func TestPivotsAreHittingSetMembers(t *testing.T) {
	g := randGraph(24, 30, 10, 6)
	results, _ := buildHopset(t, g, Practical(0.5))
	for v, r := range results {
		if r.PV >= 0 && !r.InA1[r.PV] {
			t.Errorf("node %d: pivot %d not in A_1", v, r.PV)
		}
	}
}

func TestHopsetDeterministic(t *testing.T) {
	g := randGraph(20, 24, 10, 7)
	r1, s1 := buildHopset(t, g, Practical(0.5))
	r2, s2 := buildHopset(t, g, Practical(0.5))
	if s1.String() != s2.String() {
		t.Errorf("stats differ: %v vs %v", s1.String(), s2.String())
	}
	for v := range r1 {
		if len(r1[v].Row) != len(r2[v].Row) {
			t.Fatalf("node %d: hopset rows differ", v)
		}
		for i := range r1[v].Row {
			if r1[v].Row[i] != r2[v].Row[i] {
				t.Fatalf("node %d entry %d differs", v, i)
			}
		}
	}
}

func TestBuildRejectsBadEps(t *testing.T) {
	g := lineGraph(4, 1)
	sr := g.AugSemiring()
	board := hitting.NewBoard(g.N)
	_, err := cc.Run(context.Background(), cc.Config{N: g.N}, func(nd *cc.Node) error {
		_, err := Build(nd, sr, g.WeightRow(nd.ID), board, Params{Eps: 0})
		if err == nil {
			return nil
		}
		return err
	})
	if err == nil {
		t.Fatal("want error for eps=0")
	}
}

// TestArtifactRoundTrip: Collect followed by At must reproduce every
// node's Result exactly, and the artifact's shared fields must match.
func TestArtifactRoundTrip(t *testing.T) {
	g := randGraph(24, 30, 8, 9)
	results, _ := buildHopset(t, g, Practical(0.5))
	art, err := Collect(results)
	if err != nil {
		t.Fatal(err)
	}
	if art.N != g.N || art.Beta != results[0].Beta || art.K != results[0].K {
		t.Errorf("artifact metadata wrong: %+v", art)
	}
	edges := 0
	for v, want := range results {
		got := art.At(v)
		if got.Beta != want.Beta || got.K != want.K || got.PV != want.PV || got.DPV != want.DPV {
			t.Errorf("node %d: rehydrated scalars differ: %+v vs %+v", v, got, want)
		}
		if len(got.Row) != len(want.Row) {
			t.Fatalf("node %d: row length %d vs %d", v, len(got.Row), len(want.Row))
		}
		for i := range got.Row {
			if got.Row[i] != want.Row[i] {
				t.Fatalf("node %d row[%d]: %+v vs %+v", v, i, got.Row[i], want.Row[i])
			}
		}
		for u, in := range got.InA1 {
			if in != want.InA1[u] {
				t.Fatalf("node %d: InA1[%d] differs", v, u)
			}
		}
		edges += len(want.Row)
	}
	if art.Edges() != edges/2 {
		t.Errorf("Edges() = %d, want %d", art.Edges(), edges/2)
	}
}

// TestArtifactCollectErrors: Collect rejects empty, incomplete and
// inconsistent result sets.
func TestArtifactCollectErrors(t *testing.T) {
	if _, err := Collect(nil); err == nil {
		t.Error("want error for empty results")
	}
	g := randGraph(9, 6, 4, 10)
	results, _ := buildHopset(t, g, Practical(0.5))
	hole := append([]*Result(nil), results...)
	hole[4] = nil
	if _, err := Collect(hole); err == nil {
		t.Error("want error for missing node result")
	}
	bad := append([]*Result(nil), results...)
	cp := *results[2]
	cp.Beta++
	bad[2] = &cp
	if _, err := Collect(bad); err == nil {
		t.Error("want error for inconsistent beta")
	}
}
