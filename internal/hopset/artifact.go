package hopset

import (
	"fmt"

	"github.com/congestedclique/ccsp/internal/matrix"
	"github.com/congestedclique/ccsp/internal/semiring"
)

// Artifact is the host-side aggregation of one collective Build: every
// node's hopset row plus the shared hitting-set membership, pivots and
// hop bound. It is the reusable product of the preprocess-once /
// query-many pipeline (§4 builds once, Theorems 3/28/31 query many
// times): a later simulator run rehydrates per-node Results via At and
// pays zero construction rounds. An Artifact is immutable after Collect
// and safe to share between concurrent query runs.
type Artifact struct {
	// N is the clique size the artifact was built for.
	N int
	// Beta is the hop bound β of the (β, ε)-hopset guarantee.
	Beta int
	// K is the neighborhood size used for bunches.
	K int
	// InA1 marks the hitting-set nodes (shared read-only).
	InA1 []bool
	// Rows[v] is node v's hopset row (symmetric across endpoints).
	Rows []matrix.Row[semiring.WH]
	// PV[v] is p(v), the A_1 node closest to v (§4.1; -1 only for
	// isolated nodes), and DPV[v] its exact distance.
	PV  []int32
	DPV []semiring.WH
}

// Collect assembles an Artifact from the per-node Results of one
// collective Build, indexed by node ID. The Results' shared fields
// (Beta, K, InA1) must agree, which Build guarantees when all nodes pass
// identical params.
func Collect(results []*Result) (*Artifact, error) {
	n := len(results)
	if n == 0 {
		return nil, fmt.Errorf("hopset: no results to collect")
	}
	a := &Artifact{
		N:    n,
		Rows: make([]matrix.Row[semiring.WH], n),
		PV:   make([]int32, n),
		DPV:  make([]semiring.WH, n),
	}
	for v, r := range results {
		if r == nil {
			return nil, fmt.Errorf("hopset: missing result for node %d", v)
		}
		if v == 0 {
			a.Beta, a.K, a.InA1 = r.Beta, r.K, r.InA1
		} else if r.Beta != a.Beta || r.K != a.K {
			return nil, fmt.Errorf("hopset: inconsistent results: node %d has (β=%d, k=%d), node 0 has (β=%d, k=%d)",
				v, r.Beta, r.K, a.Beta, a.K)
		}
		a.Rows[v] = r.Row
		a.PV[v] = r.PV
		a.DPV[v] = r.DPV
	}
	return a, nil
}

// At rehydrates node id's share of the hopset. The returned Result
// aliases the artifact's read-only data; callers must not mutate it.
func (a *Artifact) At(id int) *Result {
	return &Result{Row: a.Rows[id], Beta: a.Beta, InA1: a.InA1, K: a.K, PV: a.PV[id], DPV: a.DPV[id]}
}

// Edges returns the number of undirected hopset edges (each edge appears
// in the rows of both endpoints).
func (a *Artifact) Edges() int {
	total := 0
	for _, r := range a.Rows {
		total += len(r)
	}
	return total / 2
}
