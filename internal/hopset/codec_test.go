package hopset

import (
	"reflect"
	"testing"

	"github.com/congestedclique/ccsp/internal/matrix"
	"github.com/congestedclique/ccsp/internal/semiring"
	"github.com/congestedclique/ccsp/internal/wire"
)

// testArtifact builds a small synthetic artifact with the structural
// invariants of a real one (sorted rows, pivots in range).
func testArtifact() *Artifact {
	return &Artifact{
		N:    4,
		Beta: 6,
		K:    3,
		InA1: []bool{true, false, false, true},
		Rows: []matrix.Row[semiring.WH]{
			{{Col: 1, Val: semiring.WH{W: 2, H: 1}}, {Col: 3, Val: semiring.WH{W: 7, H: 1}}},
			{{Col: 0, Val: semiring.WH{W: 2, H: 1}}},
			nil,
			{{Col: 0, Val: semiring.WH{W: 7, H: 1}}},
		},
		PV:  []int32{0, 0, 3, 3},
		DPV: []semiring.WH{{}, {W: 2, H: 1}, {W: 5, H: 2}, {}},
	}
}

func TestArtifactCodecRoundTrip(t *testing.T) {
	a := testArtifact()
	var w wire.Writer
	EncodeArtifact(&w, a)
	r := wire.NewReader(w.Bytes())
	got, err := DecodeArtifact(r)
	if err != nil {
		t.Fatal(err)
	}
	r.Expect(0)
	if err := r.Err(); err != nil {
		t.Fatalf("leftover bytes: %v", err)
	}
	// Decode materializes empty rows as empty (non-nil) slices; normalize
	// before comparing.
	if len(got.Rows[2]) != 0 {
		t.Fatalf("row 2: got %d entries, want 0", len(got.Rows[2]))
	}
	got.Rows[2] = nil
	if !reflect.DeepEqual(got, a) {
		t.Errorf("round-trip mismatch:\n got %+v\nwant %+v", got, a)
	}

	// Determinism: encoding the same artifact twice gives the same bytes.
	var w2 wire.Writer
	EncodeArtifact(&w2, a)
	if !reflect.DeepEqual(w.Bytes(), w2.Bytes()) {
		t.Error("encoding is not deterministic")
	}
}

func TestParamsCodecRoundTrip(t *testing.T) {
	for _, p := range []Params{Paper(0.5), Practical(0.25), {Eps: 0.1, K: 9, Levels: 4, BetaFactor: 3.5, HopCap: 12}} {
		var w wire.Writer
		EncodeParams(&w, p)
		r := wire.NewReader(w.Bytes())
		got, err := DecodeParams(r)
		if err != nil {
			t.Fatal(err)
		}
		// Params are used as map keys; the round-trip must be ==, not
		// just DeepEqual.
		if got != p {
			t.Errorf("params round-trip: got %+v, want %+v", got, p)
		}
	}
}

func TestDecodeArtifactRejectsMalformed(t *testing.T) {
	a := testArtifact()
	var w wire.Writer
	EncodeArtifact(&w, a)
	valid := w.Bytes()

	// Truncation at every prefix must error, never panic.
	for i := 0; i < len(valid); i++ {
		if _, err := DecodeArtifact(wire.NewReader(valid[:i])); err == nil {
			t.Fatalf("truncation at %d: no error", i)
		}
	}

	// Structural corruption: out-of-range pivot.
	bad := testArtifact()
	bad.PV[1] = 99
	w = wire.Writer{}
	EncodeArtifact(&w, bad)
	if _, err := DecodeArtifact(wire.NewReader(w.Bytes())); err == nil {
		t.Error("out-of-range pivot: no error")
	}

	// Structural corruption: unsorted row columns.
	bad = testArtifact()
	bad.Rows[0] = matrix.Row[semiring.WH]{{Col: 3, Val: semiring.WH{W: 1, H: 1}}, {Col: 1, Val: semiring.WH{W: 1, H: 1}}}
	w = wire.Writer{}
	EncodeArtifact(&w, bad)
	if _, err := DecodeArtifact(wire.NewReader(w.Bytes())); err == nil {
		t.Error("unsorted row: no error")
	}
}
