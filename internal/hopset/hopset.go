// Package hopset implements the paper's deterministic hopset construction
// (§4, Theorem 25): a variant of the Elkin-Neiman construction [24] built
// from the distance tools, producing a (β, ε)-hopset of O(n^{3/2} log n)
// edges with β = O(log n / ε) in O(log²n / ε) rounds, independent of the
// hopset size.
package hopset

import (
	"fmt"
	"math"
	"math/bits"

	"github.com/congestedclique/ccsp/internal/cc"
	"github.com/congestedclique/ccsp/internal/disttools"
	"github.com/congestedclique/ccsp/internal/hitting"
	"github.com/congestedclique/ccsp/internal/matrix"
	"github.com/congestedclique/ccsp/internal/semiring"
)

// Params configures the construction.
type Params struct {
	// Eps is the target stretch parameter ε' of the final (β, ε')-hopset.
	Eps float64
	// K is the neighborhood size for bunches; 0 means ceil(√n·log2 n)
	// (§4.1), which makes the hitting set A_1 of size O(√n).
	K int
	// Levels is the number of doubling levels; 0 means ceil(log2 n).
	Levels int
	// BetaFactor scales β = ceil(BetaFactor·Levels/Eps). The proof of
	// Lemma 24 uses 12 (δ = ε/4 per level, β = 3/δ); the Practical preset
	// uses a smaller constant whose guarantee is checked empirically.
	BetaFactor float64
	// HopCap caps the source-detection hop limit 4β (paths never need
	// more than n-1 hops); 0 means n.
	HopCap int
}

// Paper returns the proof-faithful parameters of Theorem 25.
func Paper(eps float64) Params { return Params{Eps: eps, BetaFactor: 12} }

// Practical returns parameters with a smaller hop budget; the stretch
// guarantee is then validated empirically (EXPERIMENTS.md, E6) rather than
// by the Lemma 24 constants. Used by larger benchmarks.
func Practical(eps float64) Params { return Params{Eps: eps, BetaFactor: 2} }

// Result is one node's share of the hopset.
type Result struct {
	// Row holds this node's hopset edges as augmented entries (weight =
	// the discovered distance estimate, hop count 1). Symmetric across
	// endpoints.
	Row matrix.Row[semiring.WH]
	// Beta is the hop bound β of the (β, ε)-hopset guarantee.
	Beta int
	// InA1 marks the hitting-set nodes (shared read-only).
	InA1 []bool
	// K is the neighborhood size used for bunches.
	K int
	// PV is p(v): the A_1 node closest to this node, and DPV its distance
	// (§4.1); PV = -1 only if the node is isolated.
	PV  int32
	DPV semiring.WH
}

// Build constructs the hopset collectively (all nodes call it with
// identical params). wrow is row nd.ID of the augmented weight matrix of G;
// board is a fresh hitting-set board shared by all nodes.
func Build(nd *cc.Node, sr semiring.AugMinPlus, wrow matrix.Row[semiring.WH], board *hitting.Board, p Params) (*Result, error) {
	n := nd.N
	if p.Eps <= 0 || p.Eps > 1 {
		return nil, fmt.Errorf("hopset: invalid eps %v", p.Eps)
	}
	k := p.K
	if k == 0 {
		k = int(math.Ceil(math.Sqrt(float64(n)) * math.Log2(float64(n)+1)))
	}
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	levels := p.Levels
	if levels == 0 {
		levels = bits.Len(uint(n - 1)) // ceil(log2 n)
	}
	if levels < 1 {
		levels = 1
	}
	bf := p.BetaFactor
	if bf == 0 {
		bf = 12
	}
	beta := int(math.Ceil(bf * float64(levels) / p.Eps))
	if beta < 3 {
		beta = 3
	}
	hopCap := p.HopCap
	if hopCap == 0 {
		hopCap = n
	}
	d := 4 * beta
	if d > hopCap {
		d = hopCap
	}
	if d < 1 {
		d = 1
	}

	// Bunch computation via k-nearest (§4.2.1): each node learns exact
	// distances to its k closest nodes.
	nd.Phase("hopset/k-nearest")
	knear := disttools.KNearest(nd, sr, wrow, k)
	sv := make([]int32, 0, len(knear))
	for _, e := range knear {
		sv = append(sv, e.Col)
	}
	inA1 := board.Hit(nd, sv)

	res := &Result{Beta: beta, InA1: inA1, K: k, PV: -1, DPV: semiring.InfWH}
	// p(v): the closest A_1 node within N_k(v); exists because A_1 hits
	// every nonempty N_k(v) (which always contains v itself).
	for _, e := range knear {
		if inA1[e.Col] && semiring.LessWH(e.Val, res.DPV) {
			res.PV = e.Col
			res.DPV = e.Val
		}
	}

	// H_0: bunch edges of nodes outside A_1 - everything strictly closer
	// than p(v), plus p(v) itself, with exact weights (§4.1). Symmetrized
	// by routing each edge to its other endpoint.
	nd.Phase("hopset/bunches")
	var h0 matrix.Row[semiring.WH]
	var out []cc.Packet
	if !inA1[nd.ID] && res.PV >= 0 {
		for _, e := range knear {
			if e.Col == int32(nd.ID) {
				continue
			}
			if e.Val.W < res.DPV.W || e.Col == res.PV {
				h0 = append(h0, matrix.Entry[semiring.WH]{Col: e.Col, Val: semiring.WH{W: e.Val.W, H: 1}})
				out = append(out, cc.Packet{Dst: e.Col, M: cc.Msg{A: e.Val.W}})
			}
		}
	}
	for _, m := range nd.Route(out) {
		h0 = append(h0, matrix.Entry[semiring.WH]{Col: m.Src, Val: semiring.WH{W: m.A, H: 1}})
	}
	h0 = matrix.MergeRows(sr, h0)

	// Iterated bounded hopsets (§4.2.1): level ℓ computes 4β-hop distances
	// between A_1 nodes in G' = G ∪ H^{ℓ-1} and replaces the A_1 clique
	// edges with the improved estimates.
	nd.Phase("hopset/levels")
	var aRow matrix.Row[semiring.WH]
	for level := 0; level < levels; level++ {
		gRow := matrix.MergeRows(sr, wrow, h0, aRow)
		det, err := disttools.SourceDetect(nd, sr, gRow, inA1, d)
		if err != nil {
			return nil, fmt.Errorf("hopset: level %d source detection: %w", level, err)
		}
		var fresh matrix.Row[semiring.WH]
		var sym []cc.Packet
		if inA1[nd.ID] {
			for _, e := range det {
				if e.Col == int32(nd.ID) {
					continue
				}
				fresh = append(fresh, matrix.Entry[semiring.WH]{Col: e.Col, Val: semiring.WH{W: e.Val.W, H: 1}})
				sym = append(sym, cc.Packet{Dst: e.Col, M: cc.Msg{A: e.Val.W}})
			}
		}
		// Symmetrize within A_1 (the paper lets both endpoints learn each
		// added edge); distances are symmetric in undirected graphs, so
		// this is a min-merge.
		for _, m := range nd.Route(sym) {
			fresh = append(fresh, matrix.Entry[semiring.WH]{Col: m.Src, Val: semiring.WH{W: m.A, H: 1}})
		}
		aRow = matrix.MergeRows(sr, fresh)
	}

	res.Row = matrix.MergeRows(sr, h0, aRow)
	return res, nil
}

// GraphRow returns this node's row of the augmented weight matrix of G ∪ H.
func (r *Result) GraphRow(sr semiring.AugMinPlus, wrow matrix.Row[semiring.WH]) matrix.Row[semiring.WH] {
	return matrix.MergeRows(sr, wrow, r.Row)
}

// EdgeCount returns the number of hopset entries in this node's row (each
// undirected hopset edge is counted at both endpoints).
func (r *Result) EdgeCount() int { return len(r.Row) }
