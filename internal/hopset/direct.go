package hopset

import (
	"context"
	"fmt"
	"math"
	"math/bits"

	"github.com/congestedclique/ccsp/internal/disttools"
	"github.com/congestedclique/ccsp/internal/hitting"
	"github.com/congestedclique/ccsp/internal/matrix"
	"github.com/congestedclique/ccsp/internal/semiring"
)

// BuildDirect constructs the §4 hopset on the host: the same algorithm
// as the collective Build, computed for all nodes at once on the full
// augmented weight matrix w with the matmul kernels (DESIGN.md §12). The
// returned Artifact is byte-identical to Collect over a collective
// Build's per-node Results on the same (graph, params): every step -
// parameter derivation, k-nearest, the greedy hitting set, bunch-edge
// selection, per-level source detection, and the row merges - mirrors
// Build exactly, and each underlying kernel equals its distributed
// counterpart entry-for-entry.
//
// workers sizes the kernel worker pool (<= 0 means GOMAXPROCS); the
// result is identical for every value. ctx is checked between product
// iterations, so a canceled build unwinds within one multiply.
func BuildDirect(ctx context.Context, sr semiring.AugMinPlus, w *matrix.Mat[semiring.WH], p Params, workers int) (*Artifact, error) {
	n := w.N
	if p.Eps <= 0 || p.Eps > 1 {
		return nil, fmt.Errorf("hopset: invalid eps %v", p.Eps)
	}
	// Parameter derivation, identical to Build.
	k := p.K
	if k == 0 {
		k = int(math.Ceil(math.Sqrt(float64(n)) * math.Log2(float64(n)+1)))
	}
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	levels := p.Levels
	if levels == 0 {
		levels = bits.Len(uint(n - 1)) // ceil(log2 n)
	}
	if levels < 1 {
		levels = 1
	}
	bf := p.BetaFactor
	if bf == 0 {
		bf = 12
	}
	beta := int(math.Ceil(bf * float64(levels) / p.Eps))
	if beta < 3 {
		beta = 3
	}
	hopCap := p.HopCap
	if hopCap == 0 {
		hopCap = n
	}
	d := 4 * beta
	if d > hopCap {
		d = hopCap
	}
	if d < 1 {
		d = 1
	}

	// Bunch computation via k-nearest (§4.2.1), all rows at once.
	knear, err := disttools.KNearestAll[semiring.WH](ctx, sr, w, k, workers)
	if err != nil {
		return nil, fmt.Errorf("hopset: k-nearest: %w", err)
	}
	sets := make([][]int32, n)
	for v := 0; v < n; v++ {
		sv := make([]int32, 0, len(knear.Rows[v]))
		for _, e := range knear.Rows[v] {
			sv = append(sv, e.Col)
		}
		sets[v] = sv
	}
	inA1 := hitting.Greedy(n, sets)

	art := &Artifact{
		N:    n,
		Beta: beta,
		K:    k,
		InA1: inA1,
		Rows: make([]matrix.Row[semiring.WH], n),
		PV:   make([]int32, n),
		DPV:  make([]semiring.WH, n),
	}
	// p(v): the closest A_1 node within N_k(v).
	for v := 0; v < n; v++ {
		art.PV[v], art.DPV[v] = -1, semiring.InfWH
		for _, e := range knear.Rows[v] {
			if inA1[e.Col] && semiring.LessWH(e.Val, art.DPV[v]) {
				art.PV[v] = e.Col
				art.DPV[v] = e.Val
			}
		}
	}

	// H_0: bunch edges of nodes outside A_1, symmetrized at both
	// endpoints (the collective version routes each edge to its other
	// end; here we append to both rows directly - MergeRows makes the
	// accumulation order irrelevant).
	h0 := make([]matrix.Row[semiring.WH], n)
	for v := 0; v < n; v++ {
		if inA1[v] || art.PV[v] < 0 {
			continue
		}
		for _, e := range knear.Rows[v] {
			if e.Col == int32(v) {
				continue
			}
			if e.Val.W < art.DPV[v].W || e.Col == art.PV[v] {
				h0[v] = append(h0[v], matrix.Entry[semiring.WH]{Col: e.Col, Val: semiring.WH{W: e.Val.W, H: 1}})
				h0[e.Col] = append(h0[e.Col], matrix.Entry[semiring.WH]{Col: int32(v), Val: semiring.WH{W: e.Val.W, H: 1}})
			}
		}
	}
	for v := 0; v < n; v++ {
		h0[v] = matrix.MergeRows(sr, h0[v])
	}

	// Iterated bounded hopsets (§4.2.1): level ℓ computes d-hop distances
	// between A_1 nodes in G ∪ H^{ℓ-1} and replaces the A_1 clique edges
	// with the improved estimates, exactly like the collective loop.
	aRows := make([]matrix.Row[semiring.WH], n)
	g := matrix.New[semiring.WH](n)
	for level := 0; level < levels; level++ {
		for v := 0; v < n; v++ {
			g.Rows[v] = matrix.MergeRows(sr, w.Rows[v], h0[v], aRows[v])
		}
		det, err := disttools.SourceDetectAll[semiring.WH](ctx, sr, g, inA1, d, workers)
		if err != nil {
			return nil, fmt.Errorf("hopset: level %d source detection: %w", level, err)
		}
		fresh := make([]matrix.Row[semiring.WH], n)
		for v := 0; v < n; v++ {
			if !inA1[v] {
				continue
			}
			for _, e := range det.Rows[v] {
				if e.Col == int32(v) {
					continue
				}
				fresh[v] = append(fresh[v], matrix.Entry[semiring.WH]{Col: e.Col, Val: semiring.WH{W: e.Val.W, H: 1}})
				fresh[e.Col] = append(fresh[e.Col], matrix.Entry[semiring.WH]{Col: int32(v), Val: semiring.WH{W: e.Val.W, H: 1}})
			}
		}
		for v := 0; v < n; v++ {
			aRows[v] = matrix.MergeRows(sr, fresh[v])
		}
	}

	for v := 0; v < n; v++ {
		art.Rows[v] = matrix.MergeRows(sr, h0[v], aRows[v])
	}
	return art, nil
}
