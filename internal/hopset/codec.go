package hopset

import (
	"fmt"

	"github.com/congestedclique/ccsp/internal/matrix"
	"github.com/congestedclique/ccsp/internal/semiring"
	"github.com/congestedclique/ccsp/internal/wire"
)

// This file is the binary codec for preprocessing artifacts, used by the
// snapshot format (internal/snapshot) to persist a warm engine. The
// encoding is deterministic - the same artifact always produces the same
// bytes - which is what makes snapshot round-trips byte-identical.

// EncodeParams appends the binary encoding of p to w.
func EncodeParams(w *wire.Writer, p Params) {
	w.Float64(p.Eps)
	w.Int(p.K)
	w.Int(p.Levels)
	w.Float64(p.BetaFactor)
	w.Int(p.HopCap)
}

// DecodeParams reads a Params encoded by EncodeParams. Float fields
// round-trip bit-exactly, so decoded params are map-key-equal to the
// originals.
func DecodeParams(r *wire.Reader) (Params, error) {
	p := Params{
		Eps:        r.Float64(),
		K:          r.Int(),
		Levels:     r.Int(),
		BetaFactor: r.Float64(),
		HopCap:     r.Int(),
	}
	return p, r.Err()
}

// EncodeArtifact appends the binary encoding of a to w: the shared scalar
// fields, the A_1 bitset, and the per-node rows, pivots and pivot
// distances.
func EncodeArtifact(w *wire.Writer, a *Artifact) {
	w.Int(a.N)
	w.Int(a.Beta)
	w.Int(a.K)
	// InA1 as a packed bitset (its length always equals N).
	bits := make([]byte, (a.N+7)/8)
	for v, in := range a.InA1 {
		if in {
			bits[v/8] |= 1 << (v % 8)
		}
	}
	for _, b := range bits {
		w.Byte(b)
	}
	for _, row := range a.Rows {
		w.Uvarint(uint64(len(row)))
		prev := int32(-1)
		for _, e := range row {
			// Columns are sorted strictly ascending; delta-encode them.
			w.Uvarint(uint64(e.Col - prev))
			w.Varint(e.Val.W)
			w.Varint(e.Val.H)
			prev = e.Col
		}
	}
	for _, pv := range a.PV {
		w.Varint(int64(pv))
	}
	for _, d := range a.DPV {
		w.Varint(d.W)
		w.Varint(d.H)
	}
}

// DecodeArtifact reads an Artifact encoded by EncodeArtifact, validating
// structure as it goes: row columns must be strictly ascending and in
// range, pivots must be in [-1, n). Malformed input returns an error,
// never a panic.
func DecodeArtifact(r *wire.Reader) (*Artifact, error) {
	a := &Artifact{N: r.Int(), Beta: r.Int(), K: r.Int()}
	if r.Err() != nil {
		return nil, r.Err()
	}
	// Every node contributes at least 4 bytes downstream (bitset bit, one
	// row-length byte, one PV byte, two DPV bytes), so any N beyond a
	// quarter of the remaining input is malformed; reject it before
	// allocating the per-node slices.
	if a.N < 1 || a.N > r.Remaining()/4 {
		return nil, fmt.Errorf("hopset: artifact node count %d out of range", a.N)
	}
	if a.Beta < 0 || a.K < 0 {
		return nil, fmt.Errorf("hopset: negative artifact scalars (beta=%d, k=%d)", a.Beta, a.K)
	}
	a.InA1 = make([]bool, a.N)
	for v := 0; v < a.N; v += 8 {
		b := r.Byte()
		for j := 0; j < 8 && v+j < a.N; j++ {
			a.InA1[v+j] = b&(1<<j) != 0
		}
	}
	a.Rows = make([]matrix.Row[semiring.WH], a.N)
	for v := 0; v < a.N && r.Err() == nil; v++ {
		cnt := r.Count(3) // each entry is at least 3 varint bytes
		row := make(matrix.Row[semiring.WH], 0, cnt)
		prev := int32(-1)
		for i := 0; i < cnt; i++ {
			delta := r.Uvarint()
			wgt := r.Varint()
			hop := r.Varint()
			if r.Err() != nil {
				return nil, r.Err()
			}
			if delta == 0 || delta > uint64(a.N) {
				return nil, fmt.Errorf("hopset: row %d column delta %d not strictly ascending in [0, %d)", v, delta, a.N)
			}
			col := int64(prev) + int64(delta)
			if col >= int64(a.N) {
				return nil, fmt.Errorf("hopset: row %d column %d out of range [0, %d)", v, col, a.N)
			}
			prev = int32(col)
			row = append(row, matrix.Entry[semiring.WH]{Col: prev, Val: semiring.WH{W: wgt, H: hop}})
		}
		a.Rows[v] = row
	}
	a.PV = make([]int32, a.N)
	for v := range a.PV {
		pv := r.Varint()
		if r.Err() != nil {
			return nil, r.Err()
		}
		if pv < -1 || pv >= int64(a.N) {
			return nil, fmt.Errorf("hopset: pivot p(%d)=%d out of range", v, pv)
		}
		a.PV[v] = int32(pv)
	}
	a.DPV = make([]semiring.WH, a.N)
	for v := range a.DPV {
		a.DPV[v] = semiring.WH{W: r.Varint(), H: r.Varint()}
	}
	return a, r.Err()
}
