// Package dynamic implements the mutation side of the dynamic-graph
// subsystem (DESIGN.md §16): edge updates, the pure graph-patching
// function that applies them, and a Coordinator that stages updates
// into generations and runs one background rebuild at a time,
// coalescing updates that arrive mid-build into the next generation.
//
// The package is deliberately engine-agnostic: the Coordinator drives
// an opaque BuildFunc, so it can be unit- and race-tested with a stub
// build (no preprocessing in the loop) while ccsp.DynamicEngine plugs
// in the real direct-mode rebuild.
package dynamic

import (
	"fmt"

	"github.com/congestedclique/ccsp/internal/graph"
)

// Update is one edge mutation. W >= 0 sets the weight of the
// undirected edge {U, V} (inserting it if absent, collapsing any
// parallel edges); W < 0 deletes the edge (a no-op if absent).
type Update struct {
	U, V int
	W    int64
}

// Validate checks every update against an n-node graph: endpoints in
// range and no self-loops. Weights need no check - any W >= 0 is a
// valid edge weight and any W < 0 is a delete.
func Validate(n int, ups []Update) error {
	if len(ups) == 0 {
		return fmt.Errorf("dynamic: empty update batch")
	}
	for i, u := range ups {
		if u.U == u.V {
			return fmt.Errorf("dynamic: update %d: self-loop at %d", i, u.U)
		}
		if u.U < 0 || u.V < 0 || u.U >= n || u.V >= n {
			return fmt.Errorf("dynamic: update %d: edge (%d,%d) out of range [0,%d)", i, u.U, u.V, n)
		}
	}
	return nil
}

// Apply returns a new graph: g with ups applied in order. g itself is
// never modified. Each update first removes every stored parallel edge
// {U, V} and then, for W >= 0, inserts the single edge with weight W -
// so a reweight replaces rather than stacks, and applying the same
// batch twice is idempotent.
func Apply(g *graph.Graph, ups []Update) (*graph.Graph, error) {
	if err := Validate(g.N, ups); err != nil {
		return nil, err
	}
	out := g.Clone()
	for _, u := range ups {
		removeEdge(out, u.U, u.V)
		if u.W >= 0 {
			if err := out.AddEdge(u.U, u.V, u.W); err != nil {
				return nil, fmt.Errorf("dynamic: %w", err)
			}
		}
	}
	return out, nil
}

// removeEdge deletes every half-edge between u and v (parallel edges
// included), preserving the relative order of the survivors so that
// update application stays deterministic.
func removeEdge(g *graph.Graph, u, v int) {
	g.Adj[u] = dropTo(g.Adj[u], int32(v))
	g.Adj[v] = dropTo(g.Adj[v], int32(u))
}

func dropTo(adj []graph.Edge, to int32) []graph.Edge {
	out := adj[:0]
	for _, e := range adj {
		if e.To != to {
			out = append(out, e)
		}
	}
	return out
}
