package dynamic

import (
	"context"
	"errors"
	"sync"
)

// ErrClosed is returned by Stage and Wait after Close.
var ErrClosed = errors.New("dynamic: coordinator closed")

// BuildFunc rebuilds whatever the coordinator guards for one
// generation: it is called with the generation's epoch number and the
// coalesced updates staged for it, off the caller's goroutine, one call
// at a time. A nil return means the generation is published (its epoch
// becomes visible to Wait); an error means the generation is dropped -
// its updates are NOT retried, the previous generation keeps serving,
// and waiters for that epoch receive the error.
type BuildFunc func(ctx context.Context, epoch uint64, ups []Update) error

// failure records one dropped generation so its waiters can learn why.
type failure struct {
	epoch uint64
	err   error
}

// maxFailures bounds the failure ring. Best-effort by design: a Wait
// arriving more than maxFailures generations after its epoch failed
// finds the record evicted and (if a later generation has published)
// returns success. Waiters in practice block before their generation
// completes, so eviction is theoretical.
const maxFailures = 64

// Coordinator serializes background rebuilds over a monotonically
// increasing epoch sequence. Updates staged while a build is in flight
// coalesce into a single next generation (one rebuild absorbs them
// all); there is never more than one build running. Epoch numbers are
// assigned once and never reused - a failed generation's number is
// skipped forever, so the published sequence is monotone but not
// necessarily contiguous.
type Coordinator struct {
	build  BuildFunc
	ctx    context.Context // lifecycle: canceled by Close, governs builds
	cancel context.CancelFunc

	mu           sync.Mutex
	pending      []Update
	pendingEpoch uint64 // epoch assigned to the pending batch; 0 = none staged
	seq          uint64 // last epoch ever assigned (monotone, never reused)
	published    uint64 // last epoch whose build succeeded
	building     bool   // a builder goroutine is alive
	fails        []failure
	change       chan struct{} // closed and replaced at every publish/fail/Close
	closed       bool
}

// New returns a coordinator whose epoch sequence starts after start
// (the wrapped state's current epoch): the first staged generation gets
// start+1.
func New(start uint64, build BuildFunc) *Coordinator {
	ctx, cancel := context.WithCancel(context.Background())
	return &Coordinator{
		build:     build,
		ctx:       ctx,
		cancel:    cancel,
		seq:       start,
		published: start,
		change:    make(chan struct{}),
	}
}

// Stage appends ups to the pending generation (creating it - and
// assigning its epoch - if none is staged) and ensures a builder is
// running. It returns the epoch the updates will be visible at, for use
// with Wait. Stage never blocks on the build itself.
func (c *Coordinator) Stage(ups []Update) (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, ErrClosed
	}
	if c.pendingEpoch == 0 {
		c.seq++
		c.pendingEpoch = c.seq
	}
	c.pending = append(c.pending, ups...)
	if !c.building {
		c.building = true
		go c.run()
	}
	return c.pendingEpoch, nil
}

// run is the builder goroutine: it drains pending generations one at a
// time until none remain, publishing or recording failure after each.
func (c *Coordinator) run() {
	for {
		c.mu.Lock()
		if len(c.pending) == 0 || c.closed {
			c.building = false
			c.mu.Unlock()
			return
		}
		ups := c.pending
		epoch := c.pendingEpoch
		c.pending = nil
		c.pendingEpoch = 0
		c.mu.Unlock()

		err := c.build(c.ctx, epoch, ups)

		c.mu.Lock()
		if err != nil {
			c.fails = append(c.fails, failure{epoch: epoch, err: err})
			if len(c.fails) > maxFailures {
				c.fails = c.fails[len(c.fails)-maxFailures:]
			}
		} else if epoch > c.published {
			c.published = epoch
		}
		close(c.change)
		c.change = make(chan struct{})
		c.mu.Unlock()
	}
}

// Wait blocks until the generation with the given epoch is published
// (nil), its build failed (the build's error), the coordinator closes
// (ErrClosed), or ctx fires (its error). Waiting for an already
// published epoch returns immediately.
func (c *Coordinator) Wait(ctx context.Context, epoch uint64) error {
	for {
		c.mu.Lock()
		// Failure first: a later generation may have published past a
		// dropped epoch, and "published >= epoch" must not mask that
		// this epoch's updates never landed.
		for _, f := range c.fails {
			if f.epoch == epoch {
				c.mu.Unlock()
				return f.err
			}
		}
		if c.published >= epoch {
			c.mu.Unlock()
			return nil
		}
		if c.closed {
			c.mu.Unlock()
			return ErrClosed
		}
		ch := c.change
		c.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Published returns the epoch of the newest successfully built
// generation.
func (c *Coordinator) Published() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.published
}

// Pending reports how many updates are staged for the next generation
// (including one currently being built, until it completes).
func (c *Coordinator) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// Close rejects further staging and cancels the in-flight build (which
// unwinds at its next cancellation point and is recorded as a failed
// generation). Waiters are released with ErrClosed or the canceled
// build's error. Close is idempotent.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	close(c.change)
	c.change = make(chan struct{})
	c.mu.Unlock()
	c.cancel()
}
