package dynamic

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/congestedclique/ccsp/internal/graph"
)

func ring(n int) *graph.Graph {
	g := graph.New(n)
	for v := 0; v < n; v++ {
		g.MustAddEdge(v, (v+1)%n, int64(1+v%5))
	}
	return g
}

func edges(g *graph.Graph) map[string]bool {
	out := map[string]bool{}
	for u, adj := range g.Adj {
		for _, e := range adj {
			a, b := u, int(e.To)
			if a > b {
				a, b = b, a
			}
			out[fmt.Sprintf("%d-%d:%d", a, b, e.W)] = true
		}
	}
	return out
}

func TestValidate(t *testing.T) {
	cases := []struct {
		ups []Update
		ok  bool
	}{
		{nil, false},
		{[]Update{{U: 0, V: 0, W: 1}}, false},
		{[]Update{{U: -1, V: 2, W: 1}}, false},
		{[]Update{{U: 0, V: 8, W: 1}}, false},
		{[]Update{{U: 0, V: 7, W: 0}}, true},
		{[]Update{{U: 0, V: 7, W: -1}}, true}, // delete
	}
	for i, c := range cases {
		err := Validate(8, c.ups)
		if (err == nil) != c.ok {
			t.Errorf("case %d: Validate = %v, want ok=%v", i, err, c.ok)
		}
	}
}

func TestApplyInsertReweightDelete(t *testing.T) {
	g := graph.New(4)
	g.MustAddEdge(0, 1, 5)
	g.MustAddEdge(0, 1, 7) // parallel
	g.MustAddEdge(1, 2, 3)

	out, err := Apply(g, []Update{
		{U: 0, V: 1, W: 2},  // reweight: collapses both parallels to one edge
		{U: 2, V: 3, W: 9},  // insert
		{U: 1, V: 2, W: -1}, // delete
		{U: 0, V: 3, W: -1}, // delete absent: no-op
	})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"0-1:2": true, "2-3:9": true}
	if got := edges(out); !reflect.DeepEqual(got, want) {
		t.Errorf("edges = %v, want %v", got, want)
	}
	// The input graph is untouched.
	if g.M() != 3 || len(g.Adj[0]) != 2 {
		t.Errorf("Apply mutated its input: M=%d deg(0)=%d", g.M(), len(g.Adj[0]))
	}
	// Idempotence: the same batch applied to the result is a fixpoint.
	again, err := Apply(out, []Update{{U: 0, V: 1, W: 2}, {U: 2, V: 3, W: 9}, {U: 1, V: 2, W: -1}, {U: 0, V: 3, W: -1}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(edges(again), want) {
		t.Errorf("reapply changed edges: %v", edges(again))
	}
}

func TestApplyRejectsInvalid(t *testing.T) {
	g := ring(4)
	if _, err := Apply(g, []Update{{U: 1, V: 1, W: 2}}); err == nil {
		t.Error("self-loop accepted")
	}
	if _, err := Apply(g, []Update{{U: 0, V: 99, W: 2}}); err == nil {
		t.Error("out-of-range accepted")
	}
}

func TestCoordinatorPublishAndWait(t *testing.T) {
	var built [][]Update
	c := New(0, func(ctx context.Context, epoch uint64, ups []Update) error {
		built = append(built, ups)
		return nil
	})
	defer c.Close()
	ep, err := c.Stage([]Update{{U: 0, V: 1, W: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if ep != 1 {
		t.Fatalf("first epoch = %d, want 1", ep)
	}
	if err := c.Wait(context.Background(), ep); err != nil {
		t.Fatal(err)
	}
	if got := c.Published(); got != 1 {
		t.Errorf("Published = %d, want 1", got)
	}
	if len(built) != 1 || len(built[0]) != 1 {
		t.Errorf("built = %v", built)
	}
}

func TestCoordinatorCoalesces(t *testing.T) {
	// A build that blocks until released; updates staged meanwhile must
	// coalesce into ONE next generation.
	release := make(chan struct{})
	var mu sync.Mutex
	var gens [][]Update
	c := New(0, func(ctx context.Context, epoch uint64, ups []Update) error {
		mu.Lock()
		gens = append(gens, ups)
		first := len(gens) == 1
		mu.Unlock()
		if first {
			<-release
		}
		return nil
	})
	defer c.Close()

	ep1, _ := c.Stage([]Update{{U: 0, V: 1, W: 1}})
	// Give the builder a moment to take generation 1.
	for c.Pending() != 0 {
		time.Sleep(time.Millisecond)
	}
	ep2, _ := c.Stage([]Update{{U: 1, V: 2, W: 2}})
	ep3, _ := c.Stage([]Update{{U: 2, V: 3, W: 3}})
	if ep1 != 1 || ep2 != 2 || ep3 != 2 {
		t.Fatalf("epochs = %d,%d,%d, want 1,2,2 (coalesced)", ep1, ep2, ep3)
	}
	close(release)
	if err := c.Wait(context.Background(), ep3); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(gens) != 2 || len(gens[1]) != 2 {
		t.Errorf("generations = %v, want 2 gens with the coalesced pair second", gens)
	}
}

func TestCoordinatorFailedGenerationDropped(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int64
	c := New(5, func(ctx context.Context, epoch uint64, ups []Update) error {
		if calls.Add(1) == 1 {
			return boom
		}
		return nil
	})
	defer c.Close()
	ep1, _ := c.Stage([]Update{{U: 0, V: 1, W: 1}})
	if err := c.Wait(context.Background(), ep1); !errors.Is(err, boom) {
		t.Fatalf("Wait(failed gen) = %v, want boom", err)
	}
	if got := c.Published(); got != 5 {
		t.Errorf("Published after failure = %d, want 5 (unchanged)", got)
	}
	// The next generation gets a fresh epoch (failed numbers never reused)
	// and publishes past the dropped one.
	ep2, _ := c.Stage([]Update{{U: 1, V: 2, W: 1}})
	if ep2 != 7 {
		t.Errorf("epoch after failed gen = %d, want 7 (6 burned)", ep2)
	}
	if err := c.Wait(context.Background(), ep2); err != nil {
		t.Fatal(err)
	}
	// Waiting on the failed epoch still reports its failure.
	if err := c.Wait(context.Background(), ep1); !errors.Is(err, boom) {
		t.Errorf("late Wait(failed gen) = %v, want boom", err)
	}
}

func TestCoordinatorWaitContext(t *testing.T) {
	block := make(chan struct{})
	c := New(0, func(ctx context.Context, epoch uint64, ups []Update) error {
		<-block
		return nil
	})
	defer func() { close(block); c.Close() }()
	ep, _ := c.Stage([]Update{{U: 0, V: 1, W: 1}})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := c.Wait(ctx, ep); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Wait = %v, want deadline exceeded", err)
	}
}

func TestCoordinatorClose(t *testing.T) {
	started := make(chan struct{})
	c := New(0, func(ctx context.Context, epoch uint64, ups []Update) error {
		close(started)
		<-ctx.Done() // the real rebuild unwinds on cancellation
		return ctx.Err()
	})
	ep, _ := c.Stage([]Update{{U: 0, V: 1, W: 1}})
	<-started
	c.Close()
	err := c.Wait(context.Background(), ep)
	if err == nil {
		t.Fatal("Wait after Close = nil, want error")
	}
	if _, err := c.Stage([]Update{{U: 0, V: 1, W: 1}}); !errors.Is(err, ErrClosed) {
		t.Errorf("Stage after Close = %v, want ErrClosed", err)
	}
	c.Close() // idempotent
}

// TestCoordinatorConcurrentStagers is the package's -race workout:
// many goroutines staging while builds run, every Wait resolving, and
// the published epoch ending monotone and >= every returned epoch.
func TestCoordinatorConcurrentStagers(t *testing.T) {
	var builds atomic.Int64
	c := New(0, func(ctx context.Context, epoch uint64, ups []Update) error {
		builds.Add(1)
		time.Sleep(time.Millisecond)
		return nil
	})
	defer c.Close()
	const workers, perWorker = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)
	var maxEpoch atomic.Uint64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				ep, err := c.Stage([]Update{{U: w, V: (w + 1) % workers, W: int64(i)}})
				if err != nil {
					errs <- err
					return
				}
				if err := c.Wait(context.Background(), ep); err != nil {
					errs <- err
					return
				}
				for {
					cur := maxEpoch.Load()
					if ep <= cur || maxEpoch.CompareAndSwap(cur, ep) {
						break
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := c.Published(); got < maxEpoch.Load() {
		t.Errorf("Published = %d < max waited epoch %d", got, maxEpoch.Load())
	}
	// Coalescing must have collapsed the 200 stages into fewer builds
	// (coalescing is the point; equality would mean none happened) while
	// every Wait above still resolved.
	if b := builds.Load(); b > workers*perWorker {
		t.Errorf("builds = %d > stages", b)
	}
	t.Logf("stages=%d builds=%d published=%d", workers*perWorker, builds.Load(), c.Published())
}
