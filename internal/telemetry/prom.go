// Prometheus text exposition rendering (version 0.0.4 of the format:
// the plain-text lines every Prometheus-compatible scraper ingests).
package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// escapeLabelValue escapes a label value per the exposition format:
// backslash, double-quote and newline.
func escapeLabelValue(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string: backslash and newline.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatValue renders a sample value; integral floats render without a
// fraction, like the reference client.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// renderLabels renders {a="x",b="y"}, with extra appended last (the
// histogram "le" label); empty input renders nothing.
func renderLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	parts := make([]string, len(all))
	for i, l := range all {
		parts[i] = fmt.Sprintf(`%s="%s"`, l.Name, escapeLabelValue(l.Value))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// WritePrometheus renders every family in registration order: one
// # HELP and # TYPE header per family, then its children in
// registration order. Histograms render cumulative _bucket series plus
// _sum and _count, per the format.
func (r *Registry) WritePrometheus(w io.Writer) {
	// Snapshot the family/child structure under the lock, then render
	// (and evaluate read-through funcs) outside it: a fn that itself
	// grabs an unrelated lock must not do so under the registry mutex.
	type snap struct {
		fam      *family
		children []*child
	}
	r.mu.Lock()
	snaps := make([]snap, 0, len(r.order))
	for _, name := range r.order {
		f := r.families[name]
		s := snap{fam: f, children: make([]*child, 0, len(f.order))}
		for _, key := range f.order {
			s.children = append(s.children, f.children[key])
		}
		snaps = append(snaps, s)
	}
	r.mu.Unlock()

	for _, s := range snaps {
		f := s.fam
		if f.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
		for _, c := range s.children {
			switch {
			case c.fn != nil:
				fmt.Fprintf(w, "%s%s %s\n", f.name, renderLabels(c.labels), formatValue(c.fn()))
			case c.ctr != nil:
				fmt.Fprintf(w, "%s%s %d\n", f.name, renderLabels(c.labels), c.ctr.Value())
			case c.gauge != nil:
				fmt.Fprintf(w, "%s%s %d\n", f.name, renderLabels(c.labels), c.gauge.Value())
			case c.hist != nil:
				h := c.hist
				var cum uint64
				for i, b := range h.bounds {
					cum += h.counts[i].Load()
					fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
						renderLabels(c.labels, L("le", formatValue(b))), cum)
				}
				cum += h.counts[len(h.bounds)].Load()
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, renderLabels(c.labels, L("le", "+Inf")), cum)
				fmt.Fprintf(w, "%s_sum%s %s\n", f.name, renderLabels(c.labels), formatValue(h.Sum()))
				fmt.Fprintf(w, "%s_count%s %d\n", f.name, renderLabels(c.labels), h.count.Load())
			}
		}
	}
}

// Handler serves the registries' metrics as one exposition page, in
// argument order (a daemon passes its server registry plus Default so
// engine- and cluster-level metrics ride along). Families must not
// collide across registries; per-package name prefixes (ccspd_,
// ccsp_engine_, ccsp_cluster_) keep that true by construction.
func Handler(regs ...*Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		for _, r := range regs {
			r.WritePrometheus(w)
		}
	})
}
