// Package telemetry is the metrics plane of the serving stack: a small,
// dependency-free registry of counters, gauges and fixed-bucket latency
// histograms, rendered in the Prometheus text exposition format (GET
// /metrics on ccspd). The ROADMAP's serving claim - sustained query
// traffic against preprocessed engines - is only checkable with a
// metrics surface to read QPS, latency distribution and shed load from;
// this package is that surface, shared by the HTTP server, the query
// engine, and the cluster routing client.
//
// Design constraints, in order:
//
//  1. Zero dependencies. The repo's no-new-deps rule applies to the
//     daemon too, so the Prometheus client library is out; the text
//     format is simple enough to emit directly.
//  2. Atomic hot paths. A counter increment or histogram observation on
//     the query path is a handful of atomic adds - no locks, no
//     allocation - so instrumentation never becomes the bottleneck it
//     is supposed to measure.
//  3. Get-or-create registration. Registering the same (name, labels)
//     twice returns the same metric, so instrumented packages can
//     declare their metrics at use sites without init-order
//     choreography, and tests can re-create servers freely.
//
// Metrics live in a Registry; Default is the process-global one that
// package-level instrumentation (engine, cluster client) records into,
// while the HTTP server builds a private registry per Server so tests
// stay isolated. A serving daemon exposes both: see Handler.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name="value" pair attached to a metric. Metrics with the
// same name and different label sets are children of one family and
// render under one # TYPE header.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta; negative deltas are ignored (counters only go up).
func (c *Counter) Add(delta int64) {
	if delta > 0 {
		c.v.Add(delta)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (negative allowed).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds 1.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefBuckets are the default histogram bucket upper bounds in seconds,
// spanning sub-millisecond cache hits to the multi-second simulated
// APSP runs a loaded daemon legitimately serves.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket latency histogram. Observation is a
// linear scan over ~14 bounds plus two atomic adds - no locks - so it
// is safe (and cheap) on concurrent request paths. Bounds are upper
// bounds in seconds; an implicit +Inf bucket catches the rest.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1; last = +Inf
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits of the running sum, CAS-updated
}

// Observe records one value (in seconds, for latency histograms).
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records d as seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile returns an estimate of the q-quantile (0 < q <= 1) from the
// bucket counts: the upper bound of the bucket the quantile falls in
// (+Inf degrades to the largest finite bound). It is a coarse,
// bucket-resolution estimate - load reports wanting exact percentiles
// keep raw samples instead - but good enough for smoke assertions.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			break
		}
	}
	if len(h.bounds) == 0 {
		return math.Inf(1)
	}
	return h.bounds[len(h.bounds)-1]
}

// metricKind tags a family's Prometheus type.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// child is one (labels, metric) member of a family.
type child struct {
	labels []Label
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
	fn     func() float64 // read-through child (CounterFunc/GaugeFunc)
}

// family groups the children sharing one metric name.
type family struct {
	name     string
	help     string
	kind     metricKind
	children map[string]*child // keyed by canonical label encoding
	order    []string          // registration order, for stable output
}

// Registry holds metric families and renders them; safe for concurrent
// registration, recording and rendering.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Default is the process-global registry package-level instrumentation
// (engine preprocess/query timings, cluster failovers) records into.
var Default = NewRegistry()

// labelKey is the canonical child key: labels sorted by name.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// lookup returns the family for (name, kind), creating it if absent.
// A name reused with a different kind panics: that is a programming
// error no caller should swallow.
func (r *Registry) lookup(name, help string, kind metricKind) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, children: make(map[string]*child)}
		r.families[name] = f
		r.order = append(r.order, name)
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s and %s", name, f.kind, kind))
	}
	return f
}

// childOf returns the family's child for labels, creating it with mk if
// absent.
func (f *family) childOf(labels []Label, mk func() *child) *child {
	key := labelKey(labels)
	c, ok := f.children[key]
	if !ok {
		c = mk()
		c.labels = append([]Label(nil), labels...)
		f.children[key] = c
		f.order = append(f.order, key)
	}
	return c
}

// Counter returns the counter for (name, labels), registering it on
// first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.lookup(name, help, kindCounter).childOf(labels, func() *child { return &child{ctr: &Counter{}} })
	return c.ctr
}

// Gauge returns the gauge for (name, labels), registering it on first
// use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.lookup(name, help, kindGauge).childOf(labels, func() *child { return &child{gauge: &Gauge{}} })
	return c.gauge
}

// CounterFunc registers a read-through counter whose value is fn() at
// scrape time - for sources that already count (the LRU's hit/miss
// tallies) where double-counting into a second atomic would drift.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.lookup(name, help, kindCounter).childOf(labels, func() *child { return &child{fn: fn} })
}

// GaugeFunc registers a read-through gauge evaluated at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.lookup(name, help, kindGauge).childOf(labels, func() *child { return &child{fn: fn} })
}

// Histogram returns the histogram for (name, labels) with the given
// bucket upper bounds (nil = DefBuckets), registering it on first use.
// Bounds must be sorted ascending; the first registration wins, so
// children of one family always share buckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.lookup(name, help, kindHistogram).childOf(labels, func() *child {
		h := &Histogram{bounds: append([]float64(nil), buckets...)}
		h.counts = make([]atomic.Uint64, len(h.bounds)+1)
		return &child{hist: h}
	})
	return c.hist
}
