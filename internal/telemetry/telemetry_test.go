package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Get-or-create: same (name, labels) returns the same metric.
	if r.Counter("reqs_total", "requests") != c {
		t.Fatal("re-registration returned a different counter")
	}
	// Different labels are a different child of the same family.
	c2 := r.Counter("reqs_total", "requests", L("endpoint", "query"))
	c2.Add(3)
	if c.Value() != 5 || c2.Value() != 3 {
		t.Fatalf("labeled children not independent: %d, %d", c.Value(), c2.Value())
	}

	g := r.Gauge("inflight", "in-flight")
	g.Inc()
	g.Inc()
	g.Dec()
	g.Add(10)
	if got := g.Value(); got != 11 {
		t.Fatalf("gauge = %d, want 11", got)
	}
	g.Set(-2)
	if got := g.Value(); got != -2 {
		t.Fatalf("gauge = %d, want -2", got)
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering one name as counter then gauge did not panic")
		}
	}()
	r.Gauge("m", "")
}

func TestHistogramBucketsAndSum(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 2} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got := h.Sum(); math.Abs(got-2.565) > 1e-9 {
		t.Fatalf("sum = %v, want 2.565", got)
	}
	// Per-bucket (non-cumulative) expectations: le=0.01 gets 0.005 and
	// 0.01 (bounds are inclusive), le=0.1 gets 0.05, le=1 gets 0.5,
	// +Inf gets 2.
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
	// Quantile estimates resolve to bucket upper bounds.
	if q := h.Quantile(0.5); q != 0.1 {
		t.Fatalf("p50 = %v, want 0.1", q)
	}
	if q := h.Quantile(0.99); q != 1 { // +Inf degrades to the largest finite bound
		t.Fatalf("p99 = %v, want 1", q)
	}
}

func TestPrometheusRendering(t *testing.T) {
	r := NewRegistry()
	r.Counter("ccspd_requests_total", "Total HTTP requests.").Add(7)
	r.Counter("ccspd_http_requests_total", "By endpoint.", L("endpoint", "query"), L("class", "2xx")).Add(3)
	r.Gauge("ccspd_inflight", "In-flight queries.").Set(2)
	r.GaugeFunc("ccspd_cache_entries", "Cache entries.", func() float64 { return 42 })
	h := r.Histogram("ccspd_request_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# HELP ccspd_requests_total Total HTTP requests.",
		"# TYPE ccspd_requests_total counter",
		"ccspd_requests_total 7",
		`ccspd_http_requests_total{endpoint="query",class="2xx"} 3`,
		"# TYPE ccspd_inflight gauge",
		"ccspd_inflight 2",
		"ccspd_cache_entries 42",
		"# TYPE ccspd_request_seconds histogram",
		`ccspd_request_seconds_bucket{le="0.1"} 1`,
		`ccspd_request_seconds_bucket{le="1"} 2`,
		`ccspd_request_seconds_bucket{le="+Inf"} 3`,
		"ccspd_request_seconds_sum 5.55",
		"ccspd_request_seconds_count 3",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("output missing line %q\n---\n%s", want, out)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("m_total", "", L("member", `http://a:1/"x"\y`)).Inc()
	var b strings.Builder
	r.WritePrometheus(&b)
	want := `m_total{member="http://a:1/\"x\"\\y"} 1`
	if !strings.Contains(b.String(), want+"\n") {
		t.Fatalf("escaped label missing: want %q in\n%s", want, b.String())
	}
}

// TestHotPathsConcurrent hammers one counter, gauge and histogram from
// many goroutines while a renderer scrapes concurrently; run under
// -race this pins the lock-free hot paths, and the final totals pin
// that no increment is lost.
func TestHotPathsConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "", nil)

	const workers = 8
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Inc()
				h.Observe(float64(i%100) / 1000)
				g.Dec()
				// Concurrent get-or-create of labeled children too.
				r.Counter("c_total", "", L("w", string(rune('a'+w)))).Inc()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var b strings.Builder
			r.WritePrometheus(&b)
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	<-done

	if got := c.Value(); got != workers*iters {
		t.Fatalf("counter lost increments: %d, want %d", got, workers*iters)
	}
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
	if got := h.Count(); got != workers*iters {
		t.Fatalf("histogram lost observations: %d, want %d", got, workers*iters)
	}
	wantSum := 0.0
	for i := 0; i < iters; i++ {
		wantSum += float64(i%100) / 1000
	}
	wantSum *= workers
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-6*wantSum {
		t.Fatalf("histogram sum drifted: %v, want %v", got, wantSum)
	}
}

func TestObserveDuration(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("d_seconds", "", []float64{0.001, 1})
	h.ObserveDuration(500 * time.Millisecond)
	if h.counts[1].Load() != 1 {
		t.Fatalf("500ms not in the le=1 bucket")
	}
}
