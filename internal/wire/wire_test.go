package wire

import (
	"math"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var w Writer
	w.Uvarint(0)
	w.Uvarint(1 << 40)
	w.Varint(-12345)
	w.Int(42)
	w.Float64(0.5)
	w.Float64(math.Inf(1))
	w.Byte(0xAB)
	w.String("hopset")
	w.String("")

	r := NewReader(w.Bytes())
	if got := r.Uvarint(); got != 0 {
		t.Errorf("uvarint: got %d", got)
	}
	if got := r.Uvarint(); got != 1<<40 {
		t.Errorf("uvarint: got %d", got)
	}
	if got := r.Varint(); got != -12345 {
		t.Errorf("varint: got %d", got)
	}
	if got := r.Int(); got != 42 {
		t.Errorf("int: got %d", got)
	}
	if got := r.Float64(); got != 0.5 {
		t.Errorf("float64: got %v", got)
	}
	if got := r.Float64(); !math.IsInf(got, 1) {
		t.Errorf("float64: got %v, want +Inf", got)
	}
	if got := r.Byte(); got != 0xAB {
		t.Errorf("byte: got %#x", got)
	}
	if got := r.String(); got != "hopset" {
		t.Errorf("string: got %q", got)
	}
	if got := r.String(); got != "" {
		t.Errorf("string: got %q", got)
	}
	r.Expect(0)
	if err := r.Err(); err != nil {
		t.Fatalf("round-trip error: %v", err)
	}
}

func TestReaderErrors(t *testing.T) {
	// Truncated varint: continuation bit set on the last byte.
	r := NewReader([]byte{0x80})
	r.Uvarint()
	if r.Err() == nil {
		t.Error("truncated uvarint: no error")
	}

	// Reads past the end.
	r = NewReader(nil)
	r.Byte()
	if r.Err() == nil {
		t.Error("byte past end: no error")
	}
	r = NewReader([]byte{1, 2, 3})
	r.Float64()
	if r.Err() == nil {
		t.Error("truncated float64: no error")
	}

	// String length exceeding the buffer.
	var w Writer
	w.Uvarint(1000)
	r = NewReader(w.Bytes())
	_ = r.String()
	if r.Err() == nil {
		t.Error("oversized string: no error")
	}

	// Count bounded by remaining bytes.
	w = Writer{}
	w.Uvarint(50)
	w.Byte(0)
	r = NewReader(w.Bytes())
	r.Count(2)
	if r.Err() == nil || !strings.Contains(r.Err().Error(), "count") {
		t.Errorf("oversized count: err = %v", r.Err())
	}

	// Trailing garbage.
	r = NewReader([]byte{7, 7})
	r.Byte()
	r.Expect(0)
	if r.Err() == nil {
		t.Error("trailing bytes: no error")
	}

	// Errors are sticky: later reads keep the first error.
	r = NewReader(nil)
	r.Byte()
	first := r.Err()
	r.Uvarint()
	r.Float64()
	if r.Err() != first {
		t.Errorf("error not sticky: %v then %v", first, r.Err())
	}
}
