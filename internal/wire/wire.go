// Package wire provides the low-level binary encoding shared by the
// snapshot format (internal/snapshot) and the hopset artifact codec
// (internal/hopset): varint primitives over an in-memory buffer, with a
// sticky-error reader hardened against malformed input. Every read is
// bounds-checked and every count-prefixed allocation is capped by the
// bytes actually remaining, so decoding adversarial input returns an
// error instead of panicking or over-allocating (the property the fuzz
// harnesses assert).
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Writer appends primitive values to a byte buffer. The zero value is
// ready to use.
type Writer struct {
	buf []byte
}

// Bytes returns the encoded buffer.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// Uvarint appends an unsigned varint.
func (w *Writer) Uvarint(u uint64) { w.buf = binary.AppendUvarint(w.buf, u) }

// Varint appends a signed (zig-zag) varint.
func (w *Writer) Varint(i int64) { w.buf = binary.AppendVarint(w.buf, i) }

// Int appends an int as a signed varint.
func (w *Writer) Int(i int) { w.Varint(int64(i)) }

// Float64 appends the IEEE-754 bits of f as a fixed 8-byte little-endian
// word (bit-exact round-trips, including negative zero and NaN payloads).
func (w *Writer) Float64(f float64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(f))
}

// Byte appends a single byte.
func (w *Writer) Byte(b byte) { w.buf = append(w.buf, b) }

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Reader consumes primitive values from a byte slice. Errors are sticky:
// after the first failure every subsequent read returns the zero value,
// so decoders can read a whole structure and check Err once (interleaved
// validation still short-circuits at the first error).
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a Reader over buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Err returns the first error encountered, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// fail records the first error.
func (r *Reader) fail(format string, args ...interface{}) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	u, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail("wire: bad uvarint at offset %d", r.off)
		return 0
	}
	r.off += n
	return u
}

// Varint reads a signed varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	i, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail("wire: bad varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return i
}

// Int reads a signed varint as an int, rejecting values outside the
// platform int range.
func (r *Reader) Int() int {
	i := r.Varint()
	if int64(int(i)) != i {
		r.fail("wire: varint %d overflows int", i)
		return 0
	}
	return int(i)
}

// Float64 reads a fixed 8-byte little-endian IEEE-754 value.
func (r *Reader) Float64() float64 {
	if r.err != nil {
		return 0
	}
	if r.Remaining() < 8 {
		r.fail("wire: truncated float64 at offset %d", r.off)
		return 0
	}
	u := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return math.Float64frombits(u)
}

// Byte reads a single byte.
func (r *Reader) Byte() byte {
	if r.err != nil {
		return 0
	}
	if r.Remaining() < 1 {
		r.fail("wire: truncated byte at offset %d", r.off)
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.Count(1)
	if r.err != nil {
		return ""
	}
	s := string(r.buf[r.off : r.off+n])
	r.off += n
	return s
}

// Count reads a uvarint element count and validates it against the bytes
// remaining: each element needs at least minBytes (>= 1) of input, so any
// count exceeding Remaining()/minBytes is malformed. This caps the slice
// allocations of count-prefixed decoders at the input size.
func (r *Reader) Count(minBytes int) int {
	u := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if minBytes < 1 {
		minBytes = 1
	}
	if u > uint64(r.Remaining()/minBytes) {
		r.fail("wire: count %d exceeds remaining input (%d bytes, >=%d each)", u, r.Remaining(), minBytes)
		return 0
	}
	return int(u)
}

// Expect consumes exactly the remaining input; trailing garbage after a
// complete structure is an error.
func (r *Reader) Expect(remaining int) {
	if r.err != nil {
		return
	}
	if r.Remaining() != remaining {
		r.fail("wire: %d trailing bytes after structure", r.Remaining()-remaining)
	}
}
