package matmul

import (
	"strings"
	"testing"

	"github.com/congestedclique/ccsp/internal/matrix"
	"github.com/congestedclique/ccsp/internal/semiring"
)

// TestPartitionSketch regenerates the Figure 1/2 content and checks it
// names the structures of the paper's figures.
func TestPartitionSketch(t *testing.T) {
	sr := semiring.NewMinPlus(1 << 30)
	n := 8
	s := randMat(n, 3, 81)
	tm := randMat(n, 3, 82)
	sketch, err := PartitionSketch[int64](sr, s, tm, matrix.SupportDensity[int64](s, tm))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cube partition", "Figure 1", "Figure 2", "Lemma 9 balance", "P_1:"} {
		if !strings.Contains(sketch, want) {
			t.Errorf("sketch missing %q:\n%s", want, sketch)
		}
	}
}

// TestPkDecomposition (Figure 2 claim): summing the layer matrices P_k
// equals the product P - verified end to end by comparing the distributed
// output with the reference product.
func TestPkDecomposition(t *testing.T) {
	sr := semiring.NewMinPlus(1 << 30)
	n := 16
	s := randMat(n, 4, 83)
	tm := randMat(n, 4, 84)
	want := matrix.MulRef[int64](sr, s, tm)
	got, _ := runMultiply[int64](t, sr, s, tm, matrix.SupportDensity[int64](s, tm))
	if !matrix.Equal[int64](sr, got, want) {
		t.Error("sum of subtask layers differs from the true product")
	}
}

// TestLemma9Balance asserts the subtask-size guarantees (1) and (2) of
// Lemma 9 on several inputs: every subcube's S and T submatrices stay
// within the O(ρS·a + n) / O(ρT·b + n) bounds.
func TestLemma9Balance(t *testing.T) {
	sr := semiring.NewMinPlus(1 << 30)
	cases := []struct {
		n, perRowS, perRowT int
		seed                int64
	}{
		{32, 5, 5, 85},
		{48, 2, 9, 86},
		{64, 8, 8, 87},
		{33, 1, 6, 88},
	}
	for _, tc := range cases {
		s := randMat(tc.n, tc.perRowS, tc.seed)
		tm := randMat(tc.n, tc.perRowT, tc.seed+1)
		bal, err := MeasureBalance[int64](sr, s, tm, matrix.SupportDensity[int64](s, tm))
		if err != nil {
			t.Fatal(err)
		}
		if bal.MaxSubS > bal.BoundSubS {
			t.Errorf("n=%d: max S-subtask %d exceeds bound %d (params %+v)",
				tc.n, bal.MaxSubS, bal.BoundSubS, bal.Params)
		}
		if bal.MaxSubT > bal.BoundSubT {
			t.Errorf("n=%d: max T-subtask %d exceeds bound %d (params %+v)",
				tc.n, bal.MaxSubT, bal.BoundSubT, bal.Params)
		}
	}
}
