package matmul

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/congestedclique/ccsp/internal/cc"
	"github.com/congestedclique/ccsp/internal/matrix"
	"github.com/congestedclique/ccsp/internal/semiring"
)

// TestMultiplyProperty: for random sparse min-plus matrices of random
// shapes, the distributed product equals the sequential reference.
func TestMultiplyProperty(t *testing.T) {
	sr := semiring.NewMinPlus(1 << 40)
	prop := func(seed int64, nRaw, dS, dT uint8) bool {
		n := int(nRaw)%24 + 2
		s := randMat(n, int(dS)%n+1, seed)
		tm := randMat(n, int(dT)%n+1, seed+1)
		rhoHat := matrix.SupportDensity[int64](s, tm)
		want := matrix.MulRef[int64](sr, s, tm)
		got := matrix.New[int64](n)
		_, err := cc.Run(context.Background(), cc.Config{N: n}, func(nd *cc.Node) error {
			row, err := Multiply(nd, sr, s.Rows[nd.ID], tm.Rows[nd.ID], rhoHat)
			if err != nil {
				return err
			}
			got.Rows[nd.ID] = row
			return nil
		})
		if err != nil {
			t.Logf("run error: %v", err)
			return false
		}
		return matrix.Equal[int64](sr, got, want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestFilteredProperty: the distributed filtered product equals the
// filtered reference for random shapes and filter sizes.
func TestFilteredProperty(t *testing.T) {
	sr := semiring.NewMinPlus(1 << 20)
	prop := func(seed int64, nRaw, dRaw, rhoRaw uint8) bool {
		n := int(nRaw)%24 + 2
		d := int(dRaw)%n + 1
		rho := int(rhoRaw)%n + 1
		s := randMat(n, d, seed+100)
		tm := randMat(n, d, seed+101)
		want := matrix.Filter[int64](sr, matrix.MulRef[int64](sr, s, tm), rho)
		got := matrix.New[int64](n)
		_, err := cc.Run(context.Background(), cc.Config{N: n}, func(nd *cc.Node) error {
			got.Rows[nd.ID] = MultiplyFiltered(nd, sr, s.Rows[nd.ID], tm.Rows[nd.ID], rho)
			return nil
		})
		if err != nil {
			t.Logf("run error: %v", err)
			return false
		}
		return matrix.Equal[int64](sr, got, want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestMultiplyRectangularShapes exercises the padding claim of §2.1:
// rectangular multiplications are square multiplications with zero rows.
func TestMultiplyRectangularShapes(t *testing.T) {
	sr := semiring.NewMinPlus(1 << 40)
	n := 20
	// S is n x n, T has only 5 populated rows (an n x 5 product after
	// transposition of roles).
	s := randMat(n, 4, 301)
	tm := matrix.New[int64](n)
	rng := rand.New(rand.NewSource(302))
	for i := 0; i < 5; i++ {
		row := make(matrix.Row[int64], 0, 4)
		seen := map[int32]bool{}
		for len(row) < 4 {
			c := int32(rng.Intn(n))
			if !seen[c] {
				seen[c] = true
				row = append(row, matrix.Entry[int64]{Col: c, Val: int64(rng.Intn(50) + 1)})
			}
		}
		tm.Rows[i*3] = matrix.SortRow(row)
	}
	want := matrix.MulRef[int64](sr, s, tm)
	got, _ := runMultiply[int64](t, sr, s, tm, matrix.SupportDensity[int64](s, tm))
	if !matrix.Equal[int64](sr, got, want) {
		t.Error("rectangular-shaped product differs from reference")
	}
}

// TestMultiplySelfAndPowers: A², A⁴ by repeated distributed squaring match
// reference powers (the §3.1 usage pattern).
func TestMultiplySelfAndPowers(t *testing.T) {
	sr := semiring.NewMinPlus(1 << 40)
	n := 16
	a := randMat(n, 3, 303)
	want := a.Clone()
	got := a.Clone()
	for pow := 0; pow < 2; pow++ {
		want = matrix.MulRef[int64](sr, want, want)
		next := matrix.New[int64](n)
		_, err := cc.Run(context.Background(), cc.Config{N: n}, func(nd *cc.Node) error {
			next.Rows[nd.ID] = MultiplyAuto(nd, sr, got.Rows[nd.ID], got.Rows[nd.ID])
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		got = next
		if !matrix.Equal[int64](sr, got, want) {
			t.Fatalf("power %d differs from reference", pow+2)
		}
	}
}

// TestMultiplyDeterministic: identical runs give identical stats and
// outputs (the paper's algorithms are deterministic).
func TestMultiplyDeterministic(t *testing.T) {
	sr := semiring.NewMinPlus(1 << 40)
	n := 24
	s := randMat(n, 5, 304)
	tm := randMat(n, 5, 305)
	rhoHat := matrix.SupportDensity[int64](s, tm)
	run := func() (string, *matrix.Mat[int64]) {
		got := matrix.New[int64](n)
		stats, err := cc.Run(context.Background(), cc.Config{N: n}, func(nd *cc.Node) error {
			row, err := Multiply(nd, sr, s.Rows[nd.ID], tm.Rows[nd.ID], rhoHat)
			if err != nil {
				return err
			}
			got.Rows[nd.ID] = row
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats.String(), got
	}
	s1, g1 := run()
	s2, g2 := run()
	if s1 != s2 {
		t.Errorf("stats differ: %s vs %s", s1, s2)
	}
	if !matrix.Equal[int64](sr, g1, g2) {
		t.Error("outputs differ between identical runs")
	}
}

// withReflexiveDiagonal returns m with every diagonal entry forced to 0
// (the reflexive closure min-plus convergence needs).
func withReflexiveDiagonal(m *matrix.Mat[int64]) *matrix.Mat[int64] {
	out := matrix.New[int64](m.N)
	for v := range m.Rows {
		row := make(matrix.Row[int64], 0, len(m.Rows[v])+1)
		hasDiag := false
		for _, e := range m.Rows[v] {
			if int(e.Col) == v {
				hasDiag = true
				row = append(row, matrix.Entry[int64]{Col: e.Col, Val: 0})
			} else {
				row = append(row, e)
			}
		}
		if !hasDiag {
			row = append(row, matrix.Entry[int64]{Col: int32(v), Val: 0})
		}
		out.Rows[v] = matrix.SortRow(row)
	}
	return out
}

// TestKernelMulEquivalence: the block-partitioned host kernel equals the
// unpartitioned sequential reference for every worker count - the direct
// execution mode's ground contract (DESIGN.md §12). Worker count 1 runs
// the serial inline path; larger counts exercise the atomic block
// claiming.
func TestKernelMulEquivalence(t *testing.T) {
	sr := semiring.NewMinPlus(1 << 40)
	prop := func(seed int64, nRaw, dS, dT uint8) bool {
		n := int(nRaw)%24 + 2
		s := randMat(n, int(dS)%n+1, seed+400)
		tm := randMat(n, int(dT)%n+1, seed+401)
		want := matrix.MulRef[int64](sr, s, tm)
		for _, workers := range []int{1, 3, 8} {
			if !matrix.Equal[int64](sr, KernelMul[int64](sr, s, tm, workers), want) {
				t.Logf("workers=%d differs (n=%d)", workers, n)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestKernelMulFilteredEquivalence: the filtered kernel equals
// Filter ∘ MulRef - the same identity MultiplyFiltered satisfies
// (Theorem 14's output contract) - for every worker count.
func TestKernelMulFilteredEquivalence(t *testing.T) {
	sr := semiring.NewMinPlus(1 << 20)
	prop := func(seed int64, nRaw, dRaw, rhoRaw uint8) bool {
		n := int(nRaw)%24 + 2
		d := int(dRaw)%n + 1
		rho := int(rhoRaw)%n + 1
		s := randMat(n, d, seed+500)
		tm := randMat(n, d, seed+501)
		want := matrix.Filter[int64](sr, matrix.MulRef[int64](sr, s, tm), rho)
		for _, workers := range []int{1, 3, 8} {
			if !matrix.Equal[int64](sr, KernelMulFiltered[int64](sr, s, tm, rho, workers), want) {
				t.Logf("workers=%d differs (n=%d rho=%d)", workers, n, rho)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestMinPlusAssociativity: (A·B)·C == A·(B·C) over the min-plus
// semiring - the algebraic fact that lets the direct mode regroup and
// reorder the paper's product chains without changing any entry.
func TestMinPlusAssociativity(t *testing.T) {
	sr := semiring.NewMinPlus(1 << 40)
	prop := func(seed int64, nRaw, dRaw uint8) bool {
		n := int(nRaw)%20 + 2
		d := int(dRaw)%n + 1
		a := randMat(n, d, seed+600)
		b := randMat(n, d, seed+601)
		c := randMat(n, d, seed+602)
		left := KernelMul[int64](sr, KernelMul[int64](sr, a, b, 3), c, 3)
		right := KernelMul[int64](sr, a, KernelMul[int64](sr, b, c, 3), 3)
		return matrix.Equal[int64](sr, left, right)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestIdempotentClosureConvergence: with a reflexive diagonal, repeated
// self-products are monotone and reach the min-plus closure within
// ⌈log₂ n⌉ squarings; one more squaring is a no-op (idempotence). This is
// the fixed-point argument behind the k-nearest iteration count
// (Lemma 17) that both execution modes rely on.
func TestIdempotentClosureConvergence(t *testing.T) {
	sr := semiring.NewMinPlus(1 << 40)
	prop := func(seed int64, nRaw, dRaw uint8) bool {
		n := int(nRaw)%20 + 2
		d := int(dRaw)%n + 1
		a := withReflexiveDiagonal(randMat(n, d, seed+700))
		cur := a
		// ceil(log2 n) squarings reach the closure A^n.
		for sq := 1; sq < n; sq *= 2 {
			cur = KernelMul[int64](sr, cur, cur, 3)
		}
		again := KernelMul[int64](sr, cur, cur, 3)
		return matrix.Equal[int64](sr, again, cur)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestChunkHelpers covers the chunk-selection arithmetic directly.
func TestChunkHelpers(t *testing.T) {
	product := make([]triple[int64], 10)
	for i := range product {
		product[i] = triple[int64]{row: int32(i)}
	}
	if got := chunk(product, 0, 4); len(got) != 4 || got[0].row != 0 {
		t.Errorf("chunk 0: %v", got)
	}
	if got := chunk(product, 2, 4); len(got) != 2 || got[0].row != 8 {
		t.Errorf("chunk 2: %v", got)
	}
	if got := chunk(product, 3, 4); got != nil {
		t.Errorf("chunk beyond end: %v", got)
	}
	if got := chunkTail(product, 1, 4); len(got) != 6 || got[0].row != 4 {
		t.Errorf("chunkTail: %v", got)
	}
	if got := chunkTail(product, 9, 4); got != nil {
		t.Errorf("chunkTail beyond end: %v", got)
	}
}

// TestBuildSigma2 covers the Lemma 12 helper-assignment arithmetic.
func TestBuildSigma2(t *testing.T) {
	counts := []int64{10, 0, 25, 4}
	sigma := buildSigma2(counts, 4, 8, 10)
	// Subcube 0 needs floor(10/10)=1 helper, subcube 2 floor(25/10)=2,
	// subcube 3 floor(4/10)=0.
	wantPrefix := []int32{0, 2, 2, -1, -1, -1, -1, -1}
	for i, want := range wantPrefix {
		if sigma[i] != want {
			t.Errorf("sigma[%d]=%d, want %d (full: %v)", i, sigma[i], want, sigma)
			break
		}
	}
}
