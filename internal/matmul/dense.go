// Specialized min-plus product kernels for the augmented semiring
// (DESIGN.md §13). The generic KernelMul pays an interface dispatch per
// semiring operation plus a row allocation and sort per output row; for
// semiring.WH - the element type of every hot query-path product - the
// same accumulation can run on flat struct-of-arrays scratch (separate
// weight and hop vectors), a guarded branch-light lexicographic min, and
// per-worker row arenas that amortize output allocation across many
// rows. The emitted rows are entry-for-entry identical to the generic
// kernel's (and therefore to matrix.MulRef and the distributed
// Multiply): the min is computed over the same product set, semiring
// addition is a commutative min so accumulation order is irrelevant, and
// the two deliberate shortcuts preserve the emitted set exactly -
//
//   - products whose weight saturates at or above semiring.Inf are
//     skipped instead of stored: stored rows never contain them (the
//     generic kernel drops IsZero entries at emit), and under the
//     lexicographic min a finite candidate always beats them, so
//     skipping changes no emitted entry;
//   - the accumulator's rest state is exactly (Inf, Inf), which doubles
//     as the "untouched" marker: a finite first product always wins
//     against it, replicating the generic first-touch assignment.
//
// KernelMulWH selects per output row between a sparse-row product
// (touched-column list, sorted once per row) and a dense-tile product
// (no touch tracking, one ordered scan over all n columns): when the row
// accumulates at least n products - which hopset-augmented matrices
// reach quickly - the O(n) ordered scan is cheaper than touch
// bookkeeping plus a sort. Both paths produce identical rows, so the
// selection is invisible to callers and to the differential oracle.
package matmul

import (
	"slices"

	"github.com/congestedclique/ccsp/internal/matrix"
	"github.com/congestedclique/ccsp/internal/semiring"
)

// arenaChunkEntries is the row-arena chunk size: large enough that row
// allocation cost is amortized over hundreds of rows, small enough that
// an almost-unused final chunk wastes little.
const arenaChunkEntries = 1 << 14

// rowArena carves output rows out of large shared chunks, replacing the
// per-row make of the generic kernel. Rows are handed out with full
// slice expressions (len == cap), so a later append by a caller can
// never clobber a neighboring row; chunks stay alive exactly as long as
// the rows placed in them.
type rowArena struct {
	free []matrix.Entry[semiring.WH]
}

// place copies src into arena-backed storage and returns it; an empty
// src returns nil (an all-zero row).
func (a *rowArena) place(src []matrix.Entry[semiring.WH]) matrix.Row[semiring.WH] {
	if len(src) == 0 {
		return nil
	}
	if len(a.free) < len(src) {
		size := arenaChunkEntries
		if size < len(src) {
			size = len(src)
		}
		a.free = make([]matrix.Entry[semiring.WH], size)
	}
	out := a.free[:len(src):len(src)]
	a.free = a.free[len(src):]
	copy(out, src)
	return out
}

// whWorker is one kernel worker's reusable scratch: flat weight/hop
// accumulators (rest state (Inf, Inf) everywhere), the touched-column
// list of the sparse path, a reusable row build buffer, and the arena
// the finished rows are placed in.
type whWorker struct {
	accW, accH []int64
	touched    []int32
	rowBuf     []matrix.Entry[semiring.WH]
	arena      rowArena
}

func newWHWorker(n int) *whWorker {
	w := &whWorker{
		accW:    make([]int64, n),
		accH:    make([]int64, n),
		touched: make([]int32, 0, n),
		rowBuf:  make([]matrix.Entry[semiring.WH], 0, n),
	}
	for j := 0; j < n; j++ {
		w.accW[j] = semiring.Inf
		w.accH[j] = semiring.Inf
	}
	return w
}

// mulRow computes row srow · T into the worker's scratch and returns the
// finished row in rowBuf (valid until the next call; callers must copy
// it out, e.g. via arena.place). The accumulators are restored to their
// (Inf, Inf) rest state before returning.
func (wk *whWorker) mulRow(srow matrix.Row[semiring.WH], t *matrix.Mat[semiring.WH]) []matrix.Entry[semiring.WH] {
	n := t.N
	products := 0
	for _, es := range srow {
		products += len(t.Rows[es.Col])
	}
	accW, accH := wk.accW, wk.accH
	buf := wk.rowBuf[:0]

	if products >= n {
		// Dense tile: no touch tracking; emit with one ordered scan
		// that also resets the accumulators.
		for _, es := range srow {
			ew, eh := es.Val.W, es.Val.H
			for _, et := range t.Rows[es.Col] {
				w := ew + et.Val.W
				if w >= semiring.Inf {
					continue
				}
				j := et.Col
				aw := accW[j]
				if w > aw {
					continue
				}
				h := eh + et.Val.H
				if w < aw || h < accH[j] {
					accW[j], accH[j] = w, h
				}
			}
		}
		for j := 0; j < n; j++ {
			if accW[j] < semiring.Inf {
				buf = append(buf, matrix.Entry[semiring.WH]{Col: int32(j), Val: semiring.WH{W: accW[j], H: accH[j]}})
				accW[j] = semiring.Inf
				accH[j] = semiring.Inf
			}
		}
	} else {
		// Sparse row: track touched columns, sort the (small) column
		// list once, emit in column order.
		tch := wk.touched[:0]
		for _, es := range srow {
			ew, eh := es.Val.W, es.Val.H
			for _, et := range t.Rows[es.Col] {
				w := ew + et.Val.W
				if w >= semiring.Inf {
					continue
				}
				j := et.Col
				aw := accW[j]
				if w > aw {
					continue
				}
				h := eh + et.Val.H
				if aw == semiring.Inf {
					accW[j], accH[j] = w, h
					tch = append(tch, j)
				} else if w < aw || h < accH[j] {
					accW[j], accH[j] = w, h
				}
			}
		}
		slices.Sort(tch)
		for _, j := range tch {
			buf = append(buf, matrix.Entry[semiring.WH]{Col: j, Val: semiring.WH{W: accW[j], H: accH[j]}})
			accW[j] = semiring.Inf
			accH[j] = semiring.Inf
		}
		wk.touched = tch[:0]
	}
	wk.rowBuf = buf
	return buf
}

// KernelMulWH computes P = S·T over the augmented min-plus semiring with
// the specialized flat kernel. The result equals
// KernelMulGeneric(semiring.AugMinPlus{...}, s, t, workers) - and
// therefore matrix.MulRef - entry-for-entry at every worker count. The
// semiring's bounds only parameterize rank encoding, not Add/Mul, so no
// semiring value is needed.
func KernelMulWH(s, t *matrix.Mat[semiring.WH], workers int) *matrix.Mat[semiring.WH] {
	n := s.N
	p := matrix.New[semiring.WH](n)
	runRows(n, workers, func() func(int) {
		wk := newWHWorker(n)
		return func(i int) {
			p.Rows[i] = wk.arena.place(wk.mulRow(s.Rows[i], t))
		}
	})
	return p
}

// KernelMulFilteredWH computes the ρ-filtered product Filter(S·T, rho)
// with the specialized kernel: the full row accumulates in reusable
// scratch, only the ρ surviving entries are copied into the arena. sr is
// needed for the (Rank, column) filter order of §2.2.
func KernelMulFilteredWH(sr semiring.Ordered[semiring.WH], s, t *matrix.Mat[semiring.WH], rho, workers int) *matrix.Mat[semiring.WH] {
	n := s.N
	p := matrix.New[semiring.WH](n)
	runRows(n, workers, func() func(int) {
		wk := newWHWorker(n)
		return func(i int) {
			row := matrix.FilterRow(sr, wk.mulRow(s.Rows[i], t), rho)
			p.Rows[i] = wk.arena.place(row)
		}
	})
	return p
}
