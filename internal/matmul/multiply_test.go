package matmul

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"github.com/congestedclique/ccsp/internal/cc"
	"github.com/congestedclique/ccsp/internal/matrix"
	"github.com/congestedclique/ccsp/internal/semiring"
)

// runMultiply executes the distributed Theorem 8 multiplication of full
// matrices and gathers the output rows.
func runMultiply[E any](t *testing.T, sr semiring.Semiring[E], s, tm *matrix.Mat[E], rhoHat int) (*matrix.Mat[E], cc.Stats) {
	t.Helper()
	n := s.N
	out := matrix.New[E](n)
	stats, err := cc.Run(context.Background(), cc.Config{N: n}, func(nd *cc.Node) error {
		row, err := Multiply(nd, sr, s.Rows[nd.ID], tm.Rows[nd.ID], rhoHat)
		if err != nil {
			return err
		}
		out.Rows[nd.ID] = row
		return nil
	})
	if err != nil {
		t.Fatalf("Multiply failed: %v", err)
	}
	return out, stats
}

func randMat(n, perRow int, seed int64) *matrix.Mat[int64] {
	rng := rand.New(rand.NewSource(seed))
	m := matrix.New[int64](n)
	for i, cols := range matrix.RandomSupport(n, perRow, seed) {
		row := make(matrix.Row[int64], 0, len(cols))
		for _, c := range cols {
			row = append(row, matrix.Entry[int64]{Col: c, Val: int64(rng.Intn(1000) + 1)})
		}
		m.Rows[i] = matrix.SortRow(row)
	}
	return m
}

func TestMultiplyIdentity(t *testing.T) {
	sr := semiring.NewMinPlus(1 << 40)
	for _, n := range []int{2, 5, 16} {
		m := randMat(n, min(3, n), 7)
		id := matrix.Identity[int64](sr, n)
		got, _ := runMultiply[int64](t, sr, m, id, n)
		if !matrix.Equal[int64](sr, got, m) {
			t.Errorf("n=%d: M*I != M", n)
		}
		got, _ = runMultiply[int64](t, sr, id, m, n)
		if !matrix.Equal[int64](sr, got, m) {
			t.Errorf("n=%d: I*M != M", n)
		}
	}
}

func TestMultiplyMatchesReferenceMinPlus(t *testing.T) {
	sr := semiring.NewMinPlus(1 << 40)
	cases := []struct {
		n, perRowS, perRowT int
		seed                int64
	}{
		{4, 2, 2, 1},
		{8, 3, 2, 2},
		{16, 4, 4, 3},
		{24, 2, 8, 4},
		{32, 6, 6, 5},
		{48, 1, 1, 6},
		{33, 5, 3, 7}, // odd n: parameter rounding paths
	}
	for _, tc := range cases {
		s := randMat(tc.n, tc.perRowS, tc.seed)
		tm := randMat(tc.n, tc.perRowT, tc.seed+100)
		want := matrix.MulRef[int64](sr, s, tm)
		rhoHat := matrix.SupportDensity[int64](s, tm)
		got, _ := runMultiply[int64](t, sr, s, tm, rhoHat)
		if !matrix.Equal[int64](sr, got, want) {
			t.Errorf("n=%d seed=%d: distributed product differs from reference", tc.n, tc.seed)
		}
	}
}

func TestMultiplyAugmentedSemiring(t *testing.T) {
	n := 20
	sr := semiring.NewAugMinPlus(int64(n)*1000, int64(n))
	rng := rand.New(rand.NewSource(11))
	s := matrix.New[semiring.WH](n)
	for i, cols := range matrix.RandomSupport(n, 4, 21) {
		row := make(matrix.Row[semiring.WH], 0, len(cols))
		for _, c := range cols {
			row = append(row, matrix.Entry[semiring.WH]{Col: c, Val: semiring.WH{W: int64(rng.Intn(50) + 1), H: 1}})
		}
		s.Rows[i] = matrix.SortRow(row)
	}
	want := matrix.MulRef[semiring.WH](sr, s, s)
	rhoHat := matrix.SupportDensity[semiring.WH](s, s)
	got, _ := runMultiply[semiring.WH](t, sr, s, s, rhoHat)
	if !matrix.Equal[semiring.WH](sr, got, want) {
		t.Error("augmented distance product differs from reference")
	}
}

func TestMultiplyArithWithCancellation(t *testing.T) {
	// Over the standard ring, cancellations may make the true output
	// sparser than ρ̂ (which is defined on supports); the algorithm must
	// still be correct.
	sr := semiring.Arith{}
	n := 12
	rng := rand.New(rand.NewSource(5))
	mk := func(seed int64) *matrix.Mat[int64] {
		m := matrix.New[int64](n)
		for i, cols := range matrix.RandomSupport(n, 4, seed) {
			row := make(matrix.Row[int64], 0, len(cols))
			for _, c := range cols {
				v := int64(rng.Intn(7) - 3)
				if v == 0 {
					v = 1
				}
				row = append(row, matrix.Entry[int64]{Col: c, Val: v})
			}
			m.Rows[i] = matrix.SortRow(row)
		}
		return m
	}
	s, tm := mk(31), mk(32)
	want := matrix.MulRef[int64](sr, s, tm)
	rhoHat := matrix.SupportDensity[int64](s, tm)
	got, _ := runMultiply[int64](t, sr, s, tm, rhoHat)
	if !matrix.Equal[int64](sr, got, want) {
		t.Error("ring product with cancellation differs from reference")
	}
}

func TestMultiplyDensityUnderestimated(t *testing.T) {
	// A star: row 0 is full and column 0 is full, so the product support
	// is the full matrix (ρ̂ = n); claiming ρ̂ = 1 must fail consistently.
	sr := semiring.NewMinPlus(1 << 40)
	n := 16
	s := matrix.New[int64](n)
	for j := 0; j < n; j++ {
		s.Set(sr, 0, j, 1)
		s.Set(sr, j, 0, 1)
	}
	sawErr := make([]bool, n) // per-node slot: no cross-goroutine writes
	_, err := cc.Run(context.Background(), cc.Config{N: n}, func(nd *cc.Node) error {
		_, err := Multiply(nd, sr, s.Rows[nd.ID], s.Rows[nd.ID], 1)
		if errors.Is(err, ErrDensityUnderestimated) {
			sawErr[nd.ID] = true
			return nil
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	for v, saw := range sawErr {
		if !saw {
			t.Errorf("node %d did not see ErrDensityUnderestimated; all must agree", v)
		}
	}
}

func TestMultiplyAutoFindsDensity(t *testing.T) {
	sr := semiring.NewMinPlus(1 << 40)
	n := 16
	s := matrix.New[int64](n)
	for j := 0; j < n; j++ {
		s.Set(sr, 0, j, 1)
		s.Set(sr, j, 0, 1)
	}
	want := matrix.MulRef[int64](sr, s, s)
	out := matrix.New[int64](n)
	_, err := cc.Run(context.Background(), cc.Config{N: n}, func(nd *cc.Node) error {
		out.Rows[nd.ID] = MultiplyAuto(nd, sr, s.Rows[nd.ID], s.Rows[nd.ID])
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal[int64](sr, out, want) {
		t.Error("MultiplyAuto product differs from reference")
	}
}

func TestMultiplyEmpty(t *testing.T) {
	sr := semiring.NewMinPlus(1 << 40)
	n := 8
	empty := matrix.New[int64](n)
	got, _ := runMultiply[int64](t, sr, empty, empty, 1)
	if got.NNZ() != 0 {
		t.Errorf("empty product has %d entries", got.NNZ())
	}
}

// TestTheorem8RoundsFlat is the core scaling claim of Theorem 8: with
// ρS = ρT = ρ̂ = √n the term (ρSρT ρ̂)^{1/3}/n^{2/3} = O(1), so total rounds
// must stay bounded as n grows (no polynomial growth).
func TestTheorem8RoundsFlat(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling test")
	}
	sr := semiring.NewMinPlus(1 << 40)
	rounds := map[int]int{}
	for _, n := range []int{36, 144} {
		perRow := isqrt(n)
		s := randMat(n, perRow, int64(n))
		tm := randMat(n, perRow, int64(n)+1)
		rhoHat := matrix.SupportDensity[int64](s, tm)
		want := matrix.MulRef[int64](sr, s, tm)
		got, stats := runMultiply[int64](t, sr, s, tm, rhoHat)
		if !matrix.Equal[int64](sr, got, want) {
			t.Fatalf("n=%d: wrong product", n)
		}
		rounds[n] = stats.TotalRounds()
	}
	// 4x the nodes must not cost 2x the rounds in the O(1) regime.
	if rounds[144] > 2*rounds[36] {
		t.Errorf("rounds grew with n in the O(1) regime: %v", rounds)
	}
}

func isqrt(n int) int {
	r := 0
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
