package matmul

import (
	"context"
	"fmt"
	"strings"

	"github.com/congestedclique/ccsp/internal/cc"
	"github.com/congestedclique/ccsp/internal/matrix"
	"github.com/congestedclique/ccsp/internal/semiring"
)

// PartitionSketch runs the real cube-partitioning collective (Lemma 9) on
// the given matrices and renders the decomposition as text - the content of
// the paper's Figure 1 (subcubes C^S_i × C^ij_k × C^T_j) and Figure 2 (the
// layer matrices P_k assembled from subtask blocks). Intended for small n
// (it prints O(n²) characters); used by cmd/cubeviz.
func PartitionSketch[E any](sr semiring.Semiring[E], s, t *matrix.Mat[E], rhoHat int) (string, error) {
	n := s.N
	var sketch string
	_, err := cc.Run(context.Background(), cc.Config{N: n}, func(nd *cc.Node) error {
		cs := newCube(nd, sr, s.Rows[nd.ID], t.Rows[nd.ID], rhoHat)
		if nd.ID != 0 {
			return nil
		}
		sketch = renderSketch(cs, s, t)
		return nil
	})
	if err != nil {
		return "", err
	}
	return sketch, nil
}

func renderSketch[E any](cs *cubeState[E], s, t *matrix.Mat[E]) string {
	var b strings.Builder
	p := cs.par
	fmt.Fprintf(&b, "cube partition of V³ (n=%d): a=%d b=%d c=%d  (ρS=%d ρT=%d ρ̂=%d)\n",
		cs.n, p.A, p.B, p.C, cs.rhoS, cs.rhoT, cs.rhoHat)
	fmt.Fprintf(&b, "subcubes: %d of shape (n/b=%d) × middle × (n/a=%d)\n\n", cs.nsub, cs.n/p.B, cs.n/p.A)

	// Figure 1 left: S sliced into row groups C^S_i (Lemma 5 deal
	// partition) × middle groups C^ij_k for j = 0.
	fmt.Fprintf(&b, "Figure 1 - S block structure (cell = row group i / middle part k for j=0):\n")
	for u := 0; u < cs.n; u++ {
		for w := 0; w < cs.n; w++ {
			i := int(cs.sAssign[u])
			k := cs.findPart(i, 0, w)
			ch := '.'
			if !anyZero(s.Rows[u], w) {
				ch = rune('A' + (i*p.C+k)%26)
			}
			b.WriteRune(ch)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "\nFigure 1 - T block structure (cell = middle part k for i=0 / column group j):\n")
	tt := t.Transpose()
	for w := 0; w < cs.n; w++ {
		for u := 0; u < cs.n; u++ {
			j := int(cs.tAssign[u])
			k := cs.findPart(0, j, w)
			ch := '.'
			if !anyZero(tt.Rows[u], w) {
				ch = rune('A' + (j*p.C+k)%26)
			}
			b.WriteRune(ch)
		}
		b.WriteByte('\n')
	}

	// Figure 2: the layer matrices P_k: block (i, j) of P_k is the subtask
	// S[C^S_i, C^ij_k]·T[C^ij_k, C^T_j].
	fmt.Fprintf(&b, "\nFigure 2 - layer matrices P_k (block (i,j) computed by node (i*a+j)*c+k):\n")
	for k := 0; k < p.C; k++ {
		fmt.Fprintf(&b, "P_%d:\n", k+1)
		for i := 0; i < p.B; i++ {
			for j := 0; j < p.A; j++ {
				fmt.Fprintf(&b, "  [C^S_%d × C^T_%d via C^{%d,%d}_%d] node %d\n",
					i, j, i, j, k, cs.subcubeID(i, j, k))
			}
		}
	}

	// Lemma 9 balance evidence: per-subcube input sizes.
	fmt.Fprintf(&b, "\nLemma 9 balance (entries per subtask, bounds O(ρS·a+n)=%d, O(ρT·b+n)=%d):\n",
		cs.rhoS*p.A+cs.n, cs.rhoT*p.B+cs.n)
	maxS, maxT := 0, 0
	for sid := 0; sid < cs.nsub; sid++ {
		i, j, k := cs.decode(sid)
		nzS, nzT := 0, 0
		for u := 0; u < cs.n; u++ {
			if int(cs.sAssign[u]) == i {
				for _, e := range s.Rows[u] {
					if cs.findPart(i, j, int(e.Col)) == k {
						nzS++
					}
				}
			}
		}
		for w := 0; w < cs.n; w++ {
			if cs.findPart(i, j, w) == k {
				for _, e := range t.Rows[w] {
					if int(cs.tAssign[e.Col]) == j {
						nzT++
					}
				}
			}
		}
		if nzS > maxS {
			maxS = nzS
		}
		if nzT > maxT {
			maxT = nzT
		}
	}
	fmt.Fprintf(&b, "  max nz(S[C^S_i, C^ij_k]) = %d, max nz(T[C^ij_k, C^T_j]) = %d\n", maxS, maxT)
	return b.String()
}

func anyZero[E any](row matrix.Row[E], col int) bool {
	for _, e := range row {
		if int(e.Col) == col {
			return false
		}
	}
	return true
}

// Balance reports the Lemma 9 subtask-size guarantees for the given
// inputs: the largest S-submatrix and T-submatrix over all subcubes, and
// the corresponding O(ρS·a + n), O(ρT·b + n) bounds (up to the Lemma 7
// factor 2). Used by tests and cmd/cubeviz.
type Balance struct {
	MaxSubS, MaxSubT     int
	BoundSubS, BoundSubT int
	Params               Params
}

// MeasureBalance runs the cube partitioning and measures the subtask sizes.
func MeasureBalance[E any](sr semiring.Semiring[E], s, t *matrix.Mat[E], rhoHat int) (Balance, error) {
	n := s.N
	var bal Balance
	_, err := cc.Run(context.Background(), cc.Config{N: n}, func(nd *cc.Node) error {
		cs := newCube(nd, sr, s.Rows[nd.ID], t.Rows[nd.ID], rhoHat)
		if nd.ID != 0 {
			return nil
		}
		bal.Params = cs.par
		for sid := 0; sid < cs.nsub; sid++ {
			i, j, k := cs.decode(sid)
			nzS, nzT := 0, 0
			for u := 0; u < cs.n; u++ {
				if int(cs.sAssign[u]) == i {
					for _, e := range s.Rows[u] {
						if cs.findPart(i, j, int(e.Col)) == k {
							nzS++
						}
					}
				}
			}
			for w := 0; w < cs.n; w++ {
				if cs.findPart(i, j, w) == k {
					for _, e := range t.Rows[w] {
						if int(cs.tAssign[e.Col]) == j {
							nzT++
						}
					}
				}
			}
			if nzS > bal.MaxSubS {
				bal.MaxSubS = nzS
			}
			if nzT > bal.MaxSubT {
				bal.MaxSubT = nzT
			}
		}
		// Lemma 9 bounds with the Lemma 5 (+w) and Lemma 7 (×2) slack.
		bal.BoundSubS = 2 * (cs.rhoS*cs.par.A + cs.n)
		bal.BoundSubT = 2 * (cs.rhoT*cs.par.B + cs.n)
		return nil
	})
	return bal, err
}
