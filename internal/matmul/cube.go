package matmul

import (
	"sort"

	"github.com/congestedclique/ccsp/internal/cc"
	"github.com/congestedclique/ccsp/internal/matrix"
	"github.com/congestedclique/ccsp/internal/semiring"
)

// triple is a matrix entry in transit: absolute (row, col) coordinates plus
// a semiring value.
type triple[E any] struct {
	row, col int32
	val      E
}

// cubeState is the globally known outcome of the cube partitioning of
// Lemma 9 at one node, together with the node's redistributed input data
// (column ID of S, row ID of T). Every node derives the identical partition
// from broadcast information, as in the paper.
type cubeState[E any] struct {
	nd   *cc.Node
	sr   semiring.Semiring[E]
	n    int
	par  Params
	nsub int // number of subcubes = A*B*C <= n

	rhoS, rhoT, rhoHat int

	// sAssign[u] = i: row u of S belongs to C^S_i (Lemma 5 partition by
	// S-row weights, b groups).
	sAssign []int32
	// tAssign[u] = j: column u of T belongs to C^T_j (a groups).
	tAssign []int32
	// cb[i*A+j] holds the c+1 half-open boundaries of the consecutive
	// middle-dimension partition C^ij_k (Lemma 7).
	cb [][]int32

	// scol is column nd.ID of S: triples (u, nd.ID) sorted by row.
	scol []matrix.Entry[E]
	// trow is row nd.ID of T.
	trow matrix.Row[E]
}

// subcubeID encodes (i, j, k) with i in [0,B), j in [0,A), k in [0,C).
func (cs *cubeState[E]) subcubeID(i, j, k int) int {
	return (i*cs.par.A+j)*cs.par.C + k
}

func (cs *cubeState[E]) decode(sid int) (i, j, k int) {
	k = sid % cs.par.C
	ij := sid / cs.par.C
	return ij / cs.par.A, ij % cs.par.A, k
}

// findPart returns k such that w lies in C^ij_k.
func (cs *cubeState[E]) findPart(i, j, w int) int {
	starts := cs.cb[i*cs.par.A+j]
	lo, hi := 0, len(starts)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if int(starts[mid]) <= w {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// newCube runs the cube-partitioning phase (Lemma 9) as a collective:
// it redistributes the inputs (transposing S so node w holds column w),
// computes the balanced partitions C^S, C^T from broadcast weights, and the
// doubly-balanced consecutive partitions C^ij via per-group counts, making
// the full partition globally known. rhoHat is the assumed output density.
func newCube[E any](nd *cc.Node, sr semiring.Semiring[E], srow, trow matrix.Row[E], rhoHat int) *cubeState[E] {
	n := nd.N
	cs := &cubeState[E]{nd: nd, sr: sr, n: n, trow: trow}

	// Row weights of S are broadcast (Lemma 9 step (1)).
	rowWS64 := nd.BroadcastVal(int64(len(srow)))
	rowWS := append([]int64(nil), rowWS64...)

	// Column counts of T: one message per entry to the column owner (at
	// most one per link), then broadcast the totals.
	out := make([]cc.Packet, 0, len(trow))
	for _, e := range trow {
		out = append(out, cc.Packet{Dst: e.Col, M: cc.Msg{}})
	}
	colCnt := int64(len(nd.Sync(out)))
	colWT64 := nd.BroadcastVal(colCnt)
	colWT := append([]int64(nil), colWT64...)

	// Transpose S: entry (v, u) travels to node u; inboxes arrive sorted
	// by sender = row index.
	out = out[:0]
	for _, e := range srow {
		c, d := sr.Enc(e.Val)
		out = append(out, cc.Packet{Dst: e.Col, M: cc.Msg{A: c, B: d}})
	}
	for _, m := range nd.Sync(out) {
		cs.scol = append(cs.scol, matrix.Entry[E]{Col: m.Src, Val: sr.Dec(m.A, m.B)})
	}

	var nnzS, nnzT int64
	for v := 0; v < n; v++ {
		nnzS += rowWS[v]
		nnzT += colWT[v]
	}
	cs.rhoS = densityOf(nnzS, n)
	cs.rhoT = densityOf(nnzT, n)
	cs.rhoHat = rhoHat
	cs.par = ChooseParams(n, cs.rhoS, cs.rhoT, rhoHat)
	cs.nsub = cs.par.A * cs.par.B * cs.par.C

	cs.sAssign = PartitionBalanced(rowWS, cs.par.B)
	cs.tAssign = PartitionBalanced(colWT, cs.par.A)

	// Per-pair counts: node v sends (nz(S[C^S_i, v]), nz(T[v, C^T_j])) to
	// every node (i, j, k) (Lemma 9 proof, step (2)); each node sends at
	// most n messages and receives n.
	cntS := make([]int64, cs.par.B)
	for _, e := range cs.scol {
		cntS[cs.sAssign[e.Col]]++ // e.Col is the row index of S here
	}
	cntT := make([]int64, cs.par.A)
	for _, e := range cs.trow {
		cntT[cs.tAssign[e.Col]]++
	}
	pkts := make([]cc.Packet, 0, cs.nsub)
	for sid := 0; sid < cs.nsub; sid++ {
		i, j, _ := cs.decode(sid)
		pkts = append(pkts, cc.Packet{Dst: int32(sid), M: cc.Msg{A: cntS[i], B: cntT[j]}})
	}
	in := nd.Route(pkts)

	// Nodes (i, j, *) compute the Lemma 7 partition of the middle
	// dimension for their pair and announce their own part's boundary.
	var packed int64
	if nd.ID < cs.nsub {
		wS := make([]int64, n)
		wT := make([]int64, n)
		for _, m := range in {
			wS[m.Src] = m.A
			wT[m.Src] = m.B
		}
		_, _, k := cs.decode(nd.ID)
		starts := PartitionConsecutive2(wS, wT, cs.par.C)
		packed = int64(starts[k])<<32 | int64(starts[k+1])
	}
	bounds := nd.BroadcastVal(packed)

	cs.cb = make([][]int32, cs.par.B*cs.par.A)
	for ij := range cs.cb {
		starts := make([]int32, cs.par.C+1)
		for k := 0; k < cs.par.C; k++ {
			p := bounds[ij*cs.par.C+k]
			starts[k] = int32(p >> 32)
		}
		starts[cs.par.C] = int32(n)
		cs.cb[ij] = starts
	}
	return cs
}

func densityOf(nnz int64, n int) int {
	rho := int((nnz + int64(n) - 1) / int64(n))
	if rho < 1 {
		rho = 1
	}
	return rho
}

// Message kinds used by the delivery phase.
const (
	kindS uint8 = iota + 1
	kindT
)

// deliver implements Lemma 11: given an assignment sigma (node -> subcube
// ID, or -1), it delivers to each node v the submatrices S[C^S_i, C^ij_k]
// and T[C^ij_k, C^T_j] of its assigned subcube sigma(v) = (i,j,k). The
// balancing of Lemma 10 (global sort by duplication weight + round-robin
// deal) keeps every node's send load at O(W/n + n) messages.
func (cs *cubeState[E]) deliver(sigma []int32) (ssub, tsub []triple[E]) {
	nd := cs.nd
	// owners[sid] = nodes assigned to subcube sid, ascending.
	owners := make([][]int32, cs.nsub)
	for v, sid := range sigma {
		if sid >= 0 {
			owners[sid] = append(owners[sid], int32(v))
		}
	}

	// Collect this node's held entries with duplication weights.
	// S entries: held column-wise, (row u, col me); duplicated to owners
	// of (sAssign[u], j, findPart(.,j,me)) for every j.
	// T entries: held row-wise, (row me, col u); duplicated to owners of
	// (i, tAssign[u], findPart(i,.,me)) for every i.
	recs := make([]cc.Rec, 0, len(cs.scol)+len(cs.trow))
	me := nd.ID
	for _, e := range cs.scol {
		u := int(e.Col) // row index of S
		i := int(cs.sAssign[u])
		dup := 0
		for j := 0; j < cs.par.A; j++ {
			dup += len(owners[cs.subcubeID(i, j, cs.findPart(i, j, me))])
		}
		c, d := cs.sr.Enc(e.Val)
		recs = append(recs, cc.Rec{Key: -int64(dup), M: cc.Msg{Kind: kindS, A: int64(u), B: int64(me), C: c, D: d}})
	}
	for _, e := range cs.trow {
		u := int(e.Col)
		j := int(cs.tAssign[u])
		dup := 0
		for i := 0; i < cs.par.B; i++ {
			dup += len(owners[cs.subcubeID(i, j, cs.findPart(i, j, me))])
		}
		c, d := cs.sr.Enc(e.Val)
		recs = append(recs, cc.Rec{Key: -int64(dup), M: cc.Msg{Kind: kindT, A: int64(me), B: int64(u), C: c, D: d}})
	}

	// Lemma 10 balancing: global sort by weight (descending via negated
	// key), then deal item of global rank r to node r mod n.
	res := nd.Sort(recs)
	deal := make([]cc.Packet, 0, len(res.Recs))
	for i, r := range res.Recs {
		deal = append(deal, cc.Packet{Dst: int32(res.Rank(i) % cs.n), M: r.M})
	}
	balanced := nd.Route(deal)

	// Duplication send: each balanced holder forwards its entries to all
	// subcube owners that need them.
	var dups []cc.Packet
	for _, m := range balanced {
		switch m.Kind {
		case kindS:
			u, w := int(m.A), int(m.B)
			i := int(cs.sAssign[u])
			for j := 0; j < cs.par.A; j++ {
				sid := cs.subcubeID(i, j, cs.findPart(i, j, w))
				for _, x := range owners[sid] {
					dups = append(dups, cc.Packet{Dst: x, M: m})
				}
			}
		case kindT:
			w, u := int(m.A), int(m.B)
			j := int(cs.tAssign[u])
			for i := 0; i < cs.par.B; i++ {
				sid := cs.subcubeID(i, j, cs.findPart(i, j, w))
				for _, x := range owners[sid] {
					dups = append(dups, cc.Packet{Dst: x, M: m})
				}
			}
		}
	}
	for _, m := range nd.Route(dups) {
		t := triple[E]{row: int32(m.A), col: int32(m.B), val: cs.sr.Dec(m.C, m.D)}
		if m.Kind == kindS {
			ssub = append(ssub, t)
		} else {
			tsub = append(tsub, t)
		}
	}
	return ssub, tsub
}

// localProduct computes the subtask product of the delivered submatrices
// sequentially at one node, returning non-zero entries sorted by (row, col).
func localProduct[E any](sr semiring.Semiring[E], ssub, tsub []triple[E]) []triple[E] {
	if len(ssub) == 0 || len(tsub) == 0 {
		return nil
	}
	tByRow := make(map[int32][]triple[E])
	for _, t := range tsub {
		tByRow[t.row] = append(tByRow[t.row], t)
	}
	acc := make(map[int64]E)
	for _, s := range ssub {
		trow, ok := tByRow[s.col]
		if !ok {
			continue
		}
		for _, t := range trow {
			key := int64(s.row)<<32 | int64(uint32(t.col))
			prod := sr.Mul(s.val, t.val)
			if prev, ok := acc[key]; ok {
				acc[key] = sr.Add(prev, prod)
			} else {
				acc[key] = prod
			}
		}
	}
	out := make([]triple[E], 0, len(acc))
	for key, v := range acc {
		if sr.IsZero(v) {
			continue
		}
		out = append(out, triple[E]{row: int32(key >> 32), col: int32(uint32(key)), val: v})
	}
	sortTriples(out)
	return out
}

// sortTriples orders entries deterministically by (row, col).
func sortTriples[E any](ts []triple[E]) {
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].row != ts[j].row {
			return ts[i].row < ts[j].row
		}
		return ts[i].col < ts[j].col
	})
}
