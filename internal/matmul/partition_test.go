package matmul

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func maxOf(ws []int64) int64 {
	var mx int64
	for _, w := range ws {
		if w > mx {
			mx = w
		}
	}
	return mx
}

func sumOf(ws []int64) int64 {
	var s int64
	for _, w := range ws {
		s += w
	}
	return s
}

func randWeights(n int, maxw int64, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	ws := make([]int64, n)
	for i := range ws {
		ws[i] = rng.Int63n(maxw + 1)
	}
	return ws
}

// TestLemma5Bounds property-checks Lemma 5: groups of size <= ceil(n/k) and
// weight <= W/k + max(w).
func TestLemma5Bounds(t *testing.T) {
	prop := func(seed int64, nRaw, kRaw uint8) bool {
		n := int(nRaw)%60 + 1
		k := int(kRaw)%n + 1
		ws := randWeights(n, 50, seed)
		assign := PartitionBalanced(ws, k)
		sizes := make([]int, k)
		sums := make([]int64, k)
		for i, g := range assign {
			if g < 0 || int(g) >= k {
				return false
			}
			sizes[g]++
			sums[g] += ws[i]
		}
		maxSize := (n + k - 1) / k
		bound := sumOf(ws)/int64(k) + maxOf(ws)
		for g := 0; g < k; g++ {
			if sizes[g] > maxSize {
				return false
			}
			if sums[g] > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestLemma6Bounds property-checks Lemma 6: consecutive groups of weight at
// most W/k + max(w), with exactly k+1 monotone boundaries covering [0,n).
func TestLemma6Bounds(t *testing.T) {
	prop := func(seed int64, nRaw, kRaw uint8) bool {
		n := int(nRaw)%60 + 1
		k := int(kRaw)%n + 1
		ws := randWeights(n, 50, seed)
		starts := PartitionConsecutive(ws, k)
		if len(starts) != k+1 || starts[0] != 0 || starts[k] != n {
			return false
		}
		bound := sumOf(ws)/int64(k) + maxOf(ws)
		for g := 0; g < k; g++ {
			if starts[g] > starts[g+1] {
				return false
			}
			var s int64
			for i := starts[g]; i < starts[g+1]; i++ {
				s += ws[i]
			}
			if s > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestLemma7Bounds property-checks Lemma 7: consecutive groups
// doubly-bounded by 2(W/k + max w) and 2(U/k + max u).
func TestLemma7Bounds(t *testing.T) {
	prop := func(seedW, seedU int64, nRaw, kRaw uint8) bool {
		n := int(nRaw)%60 + 1
		k := int(kRaw)%n + 1
		w := randWeights(n, 50, seedW)
		u := randWeights(n, 70, seedU)
		starts := PartitionConsecutive2(w, u, k)
		if len(starts) != k+1 || starts[0] != 0 || starts[k] != n {
			return false
		}
		boundW := 2 * (sumOf(w)/int64(k) + maxOf(w))
		boundU := 2 * (sumOf(u)/int64(k) + maxOf(u))
		for g := 0; g < k; g++ {
			if starts[g] > starts[g+1] {
				return false
			}
			var sw, su int64
			for i := starts[g]; i < starts[g+1]; i++ {
				sw += w[i]
				su += u[i]
			}
			if sw > boundW || su > boundU {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLocate(t *testing.T) {
	starts := []int{0, 3, 3, 7, 10}
	cases := []struct{ x, want int }{
		{0, 0}, {2, 0}, {3, 2}, {6, 2}, {7, 3}, {9, 3},
	}
	for _, tc := range cases {
		if got := locate(starts, tc.x); got != tc.want {
			t.Errorf("locate(%d)=%d, want %d", tc.x, got, tc.want)
		}
	}
}

func TestLocateProperty(t *testing.T) {
	prop := func(seed int64, nRaw, kRaw uint8) bool {
		n := int(nRaw)%60 + 1
		k := int(kRaw)%n + 1
		ws := randWeights(n, 20, seed)
		starts := PartitionConsecutive(ws, k)
		for x := 0; x < n; x++ {
			g := locate(starts, x)
			if g < 0 || g >= k || starts[g] > x || x >= starts[g+1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestChooseParamsBudget(t *testing.T) {
	prop := func(nRaw, sRaw, tRaw, hRaw uint16) bool {
		n := int(nRaw)%500 + 1
		rhoS := int(sRaw)%n + 1
		rhoT := int(tRaw)%n + 1
		rhoHat := int(hRaw)%n + 1
		p := ChooseParams(n, rhoS, rhoT, rhoHat)
		if p.A < 1 || p.B < 1 || p.C < 1 {
			return false
		}
		return p.A*p.B*p.C <= n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestChooseParamsBalancedRegimes(t *testing.T) {
	// Dense inputs and output: the classic 3D split a = b = c = n^{1/3}.
	p := ChooseParams(512, 512, 512, 512)
	if p.A != 8 || p.B != 8 || p.C != 8 {
		t.Errorf("dense params = %+v, want 8,8,8", p)
	}
	// Paper §1.3: two matrices with O(n^{3/2}) entries (ρ = √n) and sparse
	// output multiply in O(1) rounds; the cost terms ρS·a/n etc. must all
	// be O(1). n = 256, ρ = 16.
	p = ChooseParams(256, 16, 16, 16)
	costS := float64(16*p.A) / 256
	costT := float64(16*p.B) / 256
	costP := float64(16*p.C) / 256
	if costS > 4 || costT > 4 || costP > 4 {
		t.Errorf("sqrt-sparse params %+v give costs %.1f %.1f %.1f, want O(1)", p, costS, costT, costP)
	}
}
