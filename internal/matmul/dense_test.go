package matmul

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/congestedclique/ccsp/internal/matrix"
	"github.com/congestedclique/ccsp/internal/semiring"
)

// randMatWH builds a random sparse augmented matrix with about perRow
// entries per row (plus a zero diagonal, as every query-path matrix has).
func randMatWH(n, perRow int, seed int64) *matrix.Mat[semiring.WH] {
	rng := rand.New(rand.NewSource(seed))
	m := matrix.New[semiring.WH](n)
	for v := 0; v < n; v++ {
		row := matrix.Row[semiring.WH]{{Col: int32(v), Val: semiring.WH{W: 0, H: 0}}}
		seen := map[int32]bool{int32(v): true}
		for i := 0; i < perRow; i++ {
			c := int32(rng.Intn(n))
			if !seen[c] {
				seen[c] = true
				row = append(row, matrix.Entry[semiring.WH]{
					Col: c,
					Val: semiring.WH{W: int64(rng.Intn(40) + 1), H: int64(rng.Intn(4) + 1)},
				})
			}
		}
		m.Rows[v] = matrix.SortRow(row)
	}
	return m
}

// sameMatWH asserts exact entry-for-entry equality, stricter than
// matrix.Equal: it distinguishes the stored representation (columns,
// weights, hops) entry by entry, which is the byte-identity contract the
// specialized kernel must honor.
func sameMatWH(t *testing.T, got, want *matrix.Mat[semiring.WH], label string) bool {
	t.Helper()
	if got.N != want.N {
		t.Logf("%s: size %d != %d", label, got.N, want.N)
		return false
	}
	for v := 0; v < want.N; v++ {
		g, w := got.Rows[v], want.Rows[v]
		if len(g) != len(w) {
			t.Logf("%s: row %d length %d != %d", label, v, len(g), len(w))
			return false
		}
		for i := range w {
			if g[i] != w[i] {
				t.Logf("%s: row %d entry %d: %+v != %+v", label, v, i, g[i], w[i])
				return false
			}
		}
	}
	return true
}

// TestKernelMulWHEquivalence: the specialized augmented kernel equals the
// generic reference (and therefore matrix.MulRef) entry for entry, at
// every worker count. Random shapes cover both the sparse-row and the
// dense-tile paths of mulRow; the densities below force each explicitly.
func TestKernelMulWHEquivalence(t *testing.T) {
	sr := semiring.NewAugMinPlus(1<<30, 1<<16)
	prop := func(seed int64, nRaw, dS, dT uint8) bool {
		n := int(nRaw)%24 + 2
		s := randMatWH(n, int(dS)%n+1, seed+800)
		tm := randMatWH(n, int(dT)%n+1, seed+801)
		want := KernelMulGeneric[semiring.WH](sr, s, tm, 1)
		for _, workers := range []int{1, 2, 3, 8} {
			if !sameMatWH(t, KernelMulWH(s, tm, workers), want, "direct") {
				t.Logf("workers=%d differs (n=%d)", workers, n)
				return false
			}
			// The dispatching entry point must route here too.
			if !sameMatWH(t, KernelMul[semiring.WH](sr, s, tm, workers), want, "dispatch") {
				t.Logf("dispatch workers=%d differs (n=%d)", workers, n)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestKernelMulWHDensityPaths pins each mulRow path: a near-empty matrix
// keeps every row under the products >= n threshold (sparse path), a
// dense one puts every row over it (dense tile), and both must equal the
// generic kernel exactly.
func TestKernelMulWHDensityPaths(t *testing.T) {
	sr := semiring.NewAugMinPlus(1<<30, 1<<16)
	n := 40
	for _, tc := range []struct {
		name   string
		perRow int
	}{
		{"sparse", 1},   // ~2 entries/row: products ~ 4 < n
		{"dense", n},    // full rows: products ~ n² >= n
		{"boundary", 6}, // ~7 entries/row: products ~ 49 straddles n
	} {
		s := randMatWH(n, tc.perRow, 900)
		tm := randMatWH(n, tc.perRow, 901)
		want := KernelMulGeneric[semiring.WH](sr, s, tm, 1)
		for _, workers := range []int{1, 4} {
			if !sameMatWH(t, KernelMulWH(s, tm, workers), want, tc.name) {
				t.Fatalf("%s: workers=%d differs from generic", tc.name, workers)
			}
		}
	}
}

// TestKernelMulFilteredWHEquivalence: the specialized filtered kernel
// equals Filter ∘ MulRef via the generic filtered reference, for random
// shapes, filter sizes, and worker counts (including rho >= row length,
// where FilterRow returns its input - the arena must still copy it out
// of the reused row buffer).
func TestKernelMulFilteredWHEquivalence(t *testing.T) {
	sr := semiring.NewAugMinPlus(1<<30, 1<<16)
	prop := func(seed int64, nRaw, dRaw, rhoRaw uint8) bool {
		n := int(nRaw)%24 + 2
		d := int(dRaw)%n + 1
		rho := int(rhoRaw)%n + 1
		s := randMatWH(n, d, seed+1000)
		tm := randMatWH(n, d, seed+1001)
		want := KernelMulFilteredGeneric[semiring.WH](sr, s, tm, rho, 1)
		for _, workers := range []int{1, 2, 3, 8} {
			if !sameMatWH(t, KernelMulFilteredWH(sr, s, tm, rho, workers), want, "filtered") {
				t.Logf("workers=%d differs (n=%d rho=%d)", workers, n, rho)
				return false
			}
			if !sameMatWH(t, KernelMulFiltered[semiring.WH](sr, s, tm, rho, workers), want, "filtered dispatch") {
				t.Logf("dispatch workers=%d differs (n=%d rho=%d)", workers, n, rho)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestKernelMulWHSaturation: entries whose products overflow past
// semiring.Inf are dropped identically by both kernels (the specialized
// skip-at-accumulate shortcut vs the generic drop-at-emit).
func TestKernelMulWHSaturation(t *testing.T) {
	sr := semiring.NewAugMinPlus(1<<30, 1<<16)
	n := 6
	s := matrix.New[semiring.WH](n)
	tm := matrix.New[semiring.WH](n)
	big := semiring.Inf - 5 // finite, but saturates when added to weights > 5
	for v := 0; v < n; v++ {
		s.Rows[v] = matrix.Row[semiring.WH]{
			{Col: int32(v), Val: semiring.WH{W: 0, H: 0}},
			{Col: int32((v + 1) % n), Val: semiring.WH{W: big, H: 1}},
		}
		tm.Rows[v] = matrix.Row[semiring.WH]{
			{Col: int32(v), Val: semiring.WH{W: 0, H: 0}},
			{Col: int32((v + 2) % n), Val: semiring.WH{W: 7, H: 1}},
			{Col: int32((v + 3) % n), Val: semiring.WH{W: 3, H: 1}},
		}
		s.Rows[v] = matrix.SortRow(s.Rows[v])
		tm.Rows[v] = matrix.SortRow(tm.Rows[v])
	}
	want := KernelMulGeneric[semiring.WH](sr, s, tm, 1)
	if !sameMatWH(t, KernelMulWH(s, tm, 1), want, "saturation") {
		t.Fatal("saturating products handled differently from generic kernel")
	}
}
