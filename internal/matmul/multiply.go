package matmul

import (
	"errors"

	"github.com/congestedclique/ccsp/internal/cc"
	"github.com/congestedclique/ccsp/internal/matrix"
	"github.com/congestedclique/ccsp/internal/semiring"
)

// ErrDensityUnderestimated reports that the supplied output density ρ̂ was
// smaller than the true support density, so the balancing guarantee of
// Lemma 12 does not hold. MultiplyAuto retries with a doubled estimate
// (§2.1, remark after Theorem 8). All nodes agree on this outcome, since it
// is derived from broadcast counts.
var ErrDensityUnderestimated = errors.New("matmul: output density underestimated")

// Multiply computes one row of the product P = S·T over sr using the
// output-sensitive sparse matrix multiplication of Theorem 8. It must be
// called from within a cc node program by all nodes collectively: node v
// passes row v of S and row v of T and receives row v of P. rhoHat is the
// assumed density ρ̂_ST of the product's support (§2.1); if it turns out
// too small, all nodes return ErrDensityUnderestimated.
func Multiply[E any](nd *cc.Node, sr semiring.Semiring[E], srow, trow matrix.Row[E], rhoHat int) (matrix.Row[E], error) {
	if rhoHat < 1 {
		rhoHat = 1
	}
	if rhoHat > nd.N {
		rhoHat = nd.N
	}
	cs := newCube(nd, sr, srow, trow, rhoHat)

	// Step (2): sigma1 is the identity - node v computes the product of
	// subcube v (nodes beyond the a*b*c subcubes idle).
	sigma1 := make([]int32, cs.n)
	for v := range sigma1 {
		if v < cs.nsub {
			sigma1[v] = int32(v)
		} else {
			sigma1[v] = -1
		}
	}
	ssub, tsub := cs.deliver(sigma1)
	pmine := localProduct(cs.sr, ssub, tsub)

	// Step (3), Lemma 12: balance the intermediate product matrices by
	// duplicating dense subtasks across helper nodes.
	counts := nd.BroadcastVal(int64(len(pmine)))
	capPer := int64(rhoHat * cs.par.C)
	var total int64
	for sid := 0; sid < cs.nsub; sid++ {
		total += counts[sid]
	}
	if total > int64(rhoHat)*int64(cs.n)*int64(cs.par.C) {
		return nil, ErrDensityUnderestimated
	}
	sigma2 := buildSigma2(counts, cs.nsub, cs.n, capPer)
	ssub2, tsub2 := cs.deliver(sigma2)
	p2 := localProduct(cs.sr, ssub2, tsub2)

	// Each responsible node takes its chunk(s) of O(rhoHat*c) entries.
	mine := selectChunks(nd.ID, sigma1, sigma2, counts, capPer, pmine, p2)

	// Step (4), Lemma 13: balanced summation into output rows.
	return cs.sumIntermediates(mine), nil
}

// MultiplyAuto is the variant of Theorem 8 that does not assume knowledge
// of ρ̂: it starts from an estimate of 1 and doubles on failure, for an
// extra O(log n) factor (§2.1).
func MultiplyAuto[E any](nd *cc.Node, sr semiring.Semiring[E], srow, trow matrix.Row[E]) matrix.Row[E] {
	for rhoHat := 1; ; rhoHat *= 2 {
		row, err := Multiply(nd, sr, srow, trow, rhoHat)
		if err == nil {
			return row
		}
		if rhoHat >= nd.N {
			// rhoHat = n can always accommodate the output; unreachable.
			panic("matmul: MultiplyAuto failed at rhoHat=n: " + err.Error())
		}
	}
}

// buildSigma2 constructs the duplication assignment of Lemma 12: a subcube
// whose product holds nz >= capPer entries gets floor(nz/capPer) helper
// nodes. Sum of helpers is at most n by the density bound.
func buildSigma2(counts []int64, nsub, n int, capPer int64) []int32 {
	sigma := make([]int32, n)
	for v := range sigma {
		sigma[v] = -1
	}
	next := 0
	for sid := 0; sid < nsub; sid++ {
		helpers := int(counts[sid] / capPer)
		for t := 0; t < helpers && next < n; t++ {
			sigma[next] = int32(sid)
			next++
		}
	}
	return sigma
}

// selectChunks returns the intermediate values node me is responsible for:
// for every subcube it computed (via sigma1 and/or sigma2), the chunk(s) of
// up to capPer entries determined by its position among the subcube's
// responsible nodes (Lemma 12 step (3)).
func selectChunks[E any](me int, sigma1, sigma2 []int32, counts []int64, capPer int64, p1, p2 []triple[E]) []triple[E] {
	var mine []triple[E]
	take := func(sid int, product []triple[E]) {
		if counts[sid] == 0 {
			return
		}
		// Responsible nodes in order: the sigma1 owner first, then sigma2
		// helpers ascending. A node appearing twice takes two chunks. The
		// last responsible node takes any remainder, so no entry is lost
		// even if parameter rounding left the helper pool short.
		var positions []int
		pos := 0
		for v := 0; v < len(sigma1); v++ {
			if sigma1[v] >= 0 && int(sigma1[v]) == sid {
				if v == me {
					positions = append(positions, pos)
				}
				pos++
			}
		}
		for v := 0; v < len(sigma2); v++ {
			if sigma2[v] >= 0 && int(sigma2[v]) == sid {
				if v == me {
					positions = append(positions, pos)
				}
				pos++
			}
		}
		for _, p := range positions {
			if p == pos-1 {
				mine = append(mine, chunkTail(product, p, capPer)...)
			} else {
				mine = append(mine, chunk(product, p, capPer)...)
			}
		}
	}
	if s1 := int32OrNeg(sigma1, me); s1 >= 0 {
		take(s1, p1)
	}
	if s2 := int32OrNeg(sigma2, me); s2 >= 0 && s2 != int32OrNeg(sigma1, me) {
		take(s2, p2)
	}
	return mine
}

func int32OrNeg(sigma []int32, v int) int {
	if v < 0 || v >= len(sigma) {
		return -1
	}
	return int(sigma[v])
}

func chunk[E any](product []triple[E], idx int, capPer int64) []triple[E] {
	lo := int64(idx) * capPer
	hi := lo + capPer
	if lo >= int64(len(product)) {
		return nil
	}
	if hi > int64(len(product)) {
		hi = int64(len(product))
	}
	return product[lo:hi]
}

// chunkTail is chunk for the last responsible node: it takes everything
// from its chunk start to the end of the product.
func chunkTail[E any](product []triple[E], idx int, capPer int64) []triple[E] {
	lo := int64(idx) * capPer
	if lo >= int64(len(product)) {
		return nil
	}
	return product[lo:]
}

// sumIntermediates implements Lemma 13: the intermediate values held by all
// nodes are summed into the output matrix, one row per node, in
// O(maxHeld/n) repetitions of (sort, combine, boundary-fix, route-to-row).
func (cs *cubeState[E]) sumIntermediates(mine []triple[E]) matrix.Row[E] {
	nd, sr, n := cs.nd, cs.sr, cs.n
	heldCounts := nd.BroadcastVal(int64(len(mine)))
	reps := 0
	for _, c := range heldCounts {
		if r := int((c + int64(n) - 1) / int64(n)); r > reps {
			reps = r
		}
	}

	acc := make([]E, n)
	hit := make([]bool, n)
	for rep := 0; rep < reps; rep++ {
		lo := rep * n
		hi := lo + n
		if lo > len(mine) {
			lo = len(mine)
		}
		if hi > len(mine) {
			hi = len(mine)
		}
		batch := mine[lo:hi]

		recs := make([]cc.Rec, 0, len(batch))
		for _, t := range batch {
			c, d := sr.Enc(t.val)
			pos := int64(t.row)*int64(n) + int64(t.col)
			recs = append(recs, cc.Rec{Key: pos, M: cc.Msg{A: int64(t.row), B: int64(t.col), C: c, D: d}})
		}
		res := nd.Sort(recs)

		// Combine runs with equal position within my sorted batch.
		var sums []triple[E]
		for _, r := range res.Recs {
			t := triple[E]{row: int32(r.M.A), col: int32(r.M.B), val: sr.Dec(r.M.C, r.M.D)}
			if len(sums) > 0 && sums[len(sums)-1].row == t.row && sums[len(sums)-1].col == t.col {
				sums[len(sums)-1].val = sr.Add(sums[len(sums)-1].val, t.val)
			} else {
				sums = append(sums, t)
			}
		}

		// Boundary resolution: broadcast min/max positions; the smallest
		// node holding a position owns it; only a node's minimum position
		// can be owned elsewhere (positions are globally sorted).
		minPos, maxPos := int64(-1), int64(-1)
		if len(sums) > 0 {
			minPos = int64(sums[0].row)*int64(n) + int64(sums[0].col)
			maxPos = int64(sums[len(sums)-1].row)*int64(n) + int64(sums[len(sums)-1].col)
		}
		mins := nd.BroadcastVal(minPos)
		maxs := nd.BroadcastVal(maxPos)
		owner := func(pos int64) int {
			for v := 0; v < n; v++ {
				if mins[v] >= 0 && mins[v] <= pos && pos <= maxs[v] {
					return v
				}
			}
			return nd.ID
		}
		var boundary []cc.Packet
		if len(sums) > 0 {
			if own := owner(minPos); own != nd.ID {
				t := sums[0]
				sums = sums[1:]
				c, d := sr.Enc(t.val)
				boundary = append(boundary, cc.Packet{Dst: int32(own), M: cc.Msg{A: int64(t.row), B: int64(t.col), C: c, D: d}})
			}
		}
		for _, m := range nd.Sync(boundary) {
			t := triple[E]{row: int32(m.A), col: int32(m.B), val: sr.Dec(m.C, m.D)}
			merged := false
			for i := range sums {
				if sums[i].row == t.row && sums[i].col == t.col {
					sums[i].val = sr.Add(sums[i].val, t.val)
					merged = true
					break
				}
			}
			if !merged {
				sums = append(sums, t)
			}
		}

		// Deliver sums to row owners.
		final := make([]cc.Packet, 0, len(sums))
		for _, t := range sums {
			c, d := sr.Enc(t.val)
			final = append(final, cc.Packet{Dst: t.row, M: cc.Msg{A: int64(t.row), B: int64(t.col), C: c, D: d}})
		}
		for _, m := range nd.Route(final) {
			col := int(m.B)
			v := sr.Dec(m.C, m.D)
			if hit[col] {
				acc[col] = sr.Add(acc[col], v)
			} else {
				hit[col] = true
				acc[col] = v
			}
		}
	}

	row := make(matrix.Row[E], 0, 16)
	for j := 0; j < n; j++ {
		if hit[j] && !sr.IsZero(acc[j]) {
			row = append(row, matrix.Entry[E]{Col: int32(j), Val: acc[j]})
		}
	}
	return row
}
