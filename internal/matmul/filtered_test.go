package matmul

import (
	"context"
	"testing"

	"github.com/congestedclique/ccsp/internal/cc"
	"github.com/congestedclique/ccsp/internal/matrix"
	"github.com/congestedclique/ccsp/internal/semiring"
)

// runFiltered executes the distributed Theorem 14 filtered multiplication.
func runFiltered[E any](t *testing.T, sr semiring.Ordered[E], s, tm *matrix.Mat[E], rho int) (*matrix.Mat[E], cc.Stats) {
	t.Helper()
	n := s.N
	out := matrix.New[E](n)
	stats, err := cc.Run(context.Background(), cc.Config{N: n}, func(nd *cc.Node) error {
		out.Rows[nd.ID] = MultiplyFiltered(nd, sr, s.Rows[nd.ID], tm.Rows[nd.ID], rho)
		return nil
	})
	if err != nil {
		t.Fatalf("MultiplyFiltered failed: %v", err)
	}
	return out, stats
}

func TestFilteredMatchesReference(t *testing.T) {
	sr := semiring.NewMinPlus(1 << 40)
	cases := []struct {
		n, perRowS, perRowT, rho int
		seed                     int64
	}{
		{8, 3, 3, 2, 1},
		{16, 4, 4, 3, 2},
		{16, 8, 8, 1, 3},
		{24, 5, 5, 8, 4},
		{32, 6, 6, 4, 5},
		{33, 4, 7, 5, 6},  // odd n
		{16, 2, 2, 16, 7}, // rho = n: no filtering
	}
	for _, tc := range cases {
		s := randMat(tc.n, tc.perRowS, tc.seed+500)
		tm := randMat(tc.n, tc.perRowT, tc.seed+600)
		want := matrix.Filter[int64](sr, matrix.MulRef[int64](sr, s, tm), tc.rho)
		got, _ := runFiltered[int64](t, sr, s, tm, tc.rho)
		if !matrix.Equal[int64](sr, got, want) {
			t.Errorf("n=%d rho=%d seed=%d: filtered product differs from reference", tc.n, tc.rho, tc.seed)
		}
	}
}

func TestFilteredDenseProductSparseOutput(t *testing.T) {
	// The star-graph adversary of §1.3: the unfiltered product is dense
	// (ρ_P = n), but Theorem 14 never materializes it. The result must be
	// the rho smallest per row.
	sr := semiring.NewMinPlus(1 << 40)
	n := 16
	s := matrix.New[int64](n)
	for j := 1; j < n; j++ {
		s.Set(sr, 0, j, int64(j))
		s.Set(sr, j, 0, int64(j))
	}
	rho := 3
	want := matrix.Filter[int64](sr, matrix.MulRef[int64](sr, s, s), rho)
	got, _ := runFiltered[int64](t, sr, s, s, rho)
	if !matrix.Equal[int64](sr, got, want) {
		t.Error("star-graph filtered product differs from reference")
	}
}

func TestFilteredAugmentedTieBreakByHops(t *testing.T) {
	// Paths with equal weight but different hop counts must be ordered by
	// hops (the augmented semiring's lexicographic order), which is what
	// Lemma 17's consistency needs.
	n := 12
	sr := semiring.NewAugMinPlus(int64(n*100), int64(n))
	s := matrix.New[semiring.WH](n)
	// A cycle with unit weights: squaring gives 2-hop entries.
	for v := 0; v < n; v++ {
		s.Set(sr, v, (v+1)%n, semiring.WH{W: 1, H: 1})
		s.Set(sr, v, v, semiring.WH{W: 0, H: 0})
	}
	rho := 2
	want := matrix.Filter[semiring.WH](sr, matrix.MulRef[semiring.WH](sr, s, s), rho)
	got, _ := runFiltered[semiring.WH](t, sr, s, s, rho)
	if !matrix.Equal[semiring.WH](sr, got, want) {
		t.Error("augmented filtered product differs from reference")
	}
}

func TestFilteredNeedsNoDensityKnowledge(t *testing.T) {
	// Unlike Theorem 8, no ρ̂ estimate exists to get wrong; the only
	// parameter is rho itself. Check a range of inputs where the true
	// product density varies wildly.
	sr := semiring.NewMinPlus(1 << 40)
	for _, perRow := range []int{1, 4, 12} {
		n := 24
		s := randMat(n, perRow, int64(perRow)*7)
		tm := randMat(n, perRow, int64(perRow)*7+1)
		rho := 3
		want := matrix.Filter[int64](sr, matrix.MulRef[int64](sr, s, tm), rho)
		got, _ := runFiltered[int64](t, sr, s, tm, rho)
		if !matrix.Equal[int64](sr, got, want) {
			t.Errorf("perRow=%d: filtered product differs", perRow)
		}
	}
}

// TestTheorem14RoundsLogarithmic: with ρS = ρT = ρ = √n the round bound is
// O(log n); rounds must grow far slower than any polynomial in n.
func TestTheorem14RoundsLogarithmic(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling test")
	}
	sr := semiring.NewMinPlus(1 << 20)
	rounds := map[int]int{}
	for _, n := range []int{36, 144} {
		perRow := isqrt(n)
		s := randMat(n, perRow, int64(n)+50)
		tm := randMat(n, perRow, int64(n)+51)
		rho := perRow
		want := matrix.Filter[int64](sr, matrix.MulRef[int64](sr, s, tm), rho)
		got, stats := runFiltered[int64](t, sr, s, tm, rho)
		if !matrix.Equal[int64](sr, got, want) {
			t.Fatalf("n=%d: wrong filtered product", n)
		}
		rounds[n] = stats.TotalRounds()
	}
	// Quadrupling n must not even double the rounds (the +log W term is
	// fixed here because MaxVal is fixed).
	if rounds[144] > 2*rounds[36] {
		t.Errorf("rounds grew too fast: %v", rounds)
	}
}
