package matmul

import (
	"fmt"
	"testing"

	"github.com/congestedclique/ccsp/internal/semiring"
)

// BenchmarkKernelMul compares the specialized WH kernel against the
// generic reference on sparse and dense inputs (run with -benchmem: the
// arena should collapse allocs/op versus the generic per-row makes).
func BenchmarkKernelMul(b *testing.B) {
	sr := semiring.NewAugMinPlus(1<<30, 1<<16)
	for _, tc := range []struct {
		name   string
		n, per int
	}{
		{"sparse", 512, 4},  // products/row well under n: sparse-row path
		{"dense", 512, 128}, // products/row far over n: dense-tile path
	} {
		s := randMatWH(tc.n, tc.per, 1900)
		t := randMatWH(tc.n, tc.per, 1901)
		b.Run(fmt.Sprintf("%s/specialized", tc.name), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				KernelMulWH(s, t, 1)
			}
		})
		b.Run(fmt.Sprintf("%s/generic", tc.name), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				KernelMulGeneric[semiring.WH](sr, s, t, 1)
			}
		})
	}
}
