// Host-side ("direct") semiring product kernels. The distributed
// algorithms of this package compute S·T by shuffling row fragments
// between simulated nodes; when the caller only wants the algebra - the
// direct execution mode of DESIGN.md §12 - the same products can be
// computed on flat, cache-blocked matrices with a worker pool and zero
// message construction. KernelMul is row-for-row equal to matrix.MulRef
// (and therefore to the distributed Multiply), and KernelMulFiltered
// equals matrix.Filter ∘ matrix.MulRef (and therefore MultiplyFiltered):
// rows are independent, the scratch accumulators replicate MulRef's
// accumulation exactly, and semiring addition is commutative, so the
// output is byte-identical for every worker count.
package matmul

import (
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/congestedclique/ccsp/internal/matrix"
	"github.com/congestedclique/ccsp/internal/semiring"
)

// kernelBlock is the number of consecutive rows a worker claims at a
// time: large enough that the claim counter is cold, small enough that
// the rows of one block (plus the scratch accumulator) stay
// cache-resident and the tail imbalance is negligible.
const kernelBlock = 32

// kernelWorkers resolves a worker-count knob: <= 0 means GOMAXPROCS,
// and the count is capped so no worker would sit idle.
func kernelWorkers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if blocks := (n + kernelBlock - 1) / kernelBlock; workers > blocks {
		workers = blocks
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// RunRows exposes the kernel worker pool's deterministic row
// partitioning to sibling packages (the restricted source-detection
// panel of internal/disttools iterates it per product step): each row is
// computed by exactly one worker, so any per-row function whose output
// depends only on its row index runs identically at every worker count.
func RunRows(n, workers int, newWorker func() func(row int)) {
	runRows(n, workers, newWorker)
}

// runRows executes a per-row function over rows [0, n), block-partitioned
// across workers. newWorker is called once per worker to allocate its
// private scratch state and returns the row function; with one worker the
// loop runs inline with no goroutines (the serial engine analogue).
func runRows(n, workers int, newWorker func() func(row int)) {
	w := kernelWorkers(workers, n)
	if w == 1 {
		fn := newWorker()
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < w; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn := newWorker()
			for {
				lo := int(next.Add(kernelBlock)) - kernelBlock
				if lo >= n {
					return
				}
				hi := min(lo+kernelBlock, n)
				for i := lo; i < hi; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
}

// kernelMulRow computes row i of S·T into the caller's scratch, exactly
// like the inner loop of matrix.MulRef: accumulate products column-wise,
// drop semiring zeros, sort by column.
func kernelMulRow[E any](sr semiring.Semiring[E], srow matrix.Row[E], t *matrix.Mat[E], acc []E, hit []bool, touched *[]int32) matrix.Row[E] {
	tch := (*touched)[:0]
	for _, es := range srow {
		for _, et := range t.Rows[es.Col] {
			prod := sr.Mul(es.Val, et.Val)
			if hit[et.Col] {
				acc[et.Col] = sr.Add(acc[et.Col], prod)
			} else {
				hit[et.Col] = true
				acc[et.Col] = prod
				tch = append(tch, et.Col)
			}
		}
	}
	row := make(matrix.Row[E], 0, len(tch))
	for _, j := range tch {
		if !sr.IsZero(acc[j]) {
			row = append(row, matrix.Entry[E]{Col: j, Val: acc[j]})
		}
		hit[j] = false
	}
	*touched = tch
	return matrix.SortRow(row)
}

// KernelMul computes P = S·T over sr on the host, parallel over
// cache-sized row blocks. The result equals matrix.MulRef(sr, s, t)
// entry-for-entry at every worker count (workers <= 0 means GOMAXPROCS,
// 1 runs serially). Products over the augmented min-plus semiring
// dispatch to the specialized flat kernel (dense.go); every other
// semiring runs the generic reference path.
func KernelMul[E any](sr semiring.Semiring[E], s, t *matrix.Mat[E], workers int) *matrix.Mat[E] {
	if _, ok := any(sr).(semiring.AugMinPlus); ok {
		p := KernelMulWH(any(s).(*matrix.Mat[semiring.WH]), any(t).(*matrix.Mat[semiring.WH]), workers)
		return any(p).(*matrix.Mat[E])
	}
	return KernelMulGeneric(sr, s, t, workers)
}

// KernelMulGeneric is the generic reference kernel: the exact row
// accumulation of matrix.MulRef, block-parallelized. The specialized WH
// kernel is verified against it entry-for-entry (dense_test.go), so it
// remains the checkable specification of every product.
func KernelMulGeneric[E any](sr semiring.Semiring[E], s, t *matrix.Mat[E], workers int) *matrix.Mat[E] {
	n := s.N
	p := matrix.New[E](n)
	runRows(n, workers, func() func(int) {
		acc := make([]E, n)
		hit := make([]bool, n)
		touched := make([]int32, 0, n)
		return func(i int) {
			p.Rows[i] = kernelMulRow(sr, s.Rows[i], t, acc, hit, &touched)
		}
	})
	return p
}

// KernelMulFiltered computes the ρ-filtered product Filter(S·T, rho) on
// the host: each output row keeps its rho smallest entries under the
// (Rank, column) order of §2.2. It equals
// matrix.Filter(sr, matrix.MulRef(sr, s, t), rho) - and therefore the
// distributed MultiplyFiltered - at every worker count. Augmented
// min-plus products dispatch to the specialized flat kernel (dense.go).
func KernelMulFiltered[E any](sr semiring.Ordered[E], s, t *matrix.Mat[E], rho, workers int) *matrix.Mat[E] {
	if aug, ok := any(sr).(semiring.AugMinPlus); ok {
		p := KernelMulFilteredWH(aug, any(s).(*matrix.Mat[semiring.WH]), any(t).(*matrix.Mat[semiring.WH]), rho, workers)
		return any(p).(*matrix.Mat[E])
	}
	return KernelMulFilteredGeneric(sr, s, t, rho, workers)
}

// KernelMulFilteredGeneric is the generic reference filtered kernel; see
// KernelMulGeneric.
func KernelMulFilteredGeneric[E any](sr semiring.Ordered[E], s, t *matrix.Mat[E], rho, workers int) *matrix.Mat[E] {
	n := s.N
	p := matrix.New[E](n)
	runRows(n, workers, func() func(int) {
		acc := make([]E, n)
		hit := make([]bool, n)
		touched := make([]int32, 0, n)
		return func(i int) {
			p.Rows[i] = matrix.FilterRow(sr, kernelMulRow(sr, s.Rows[i], t, acc, hit, &touched), rho)
		}
	})
	return p
}
