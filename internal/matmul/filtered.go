package matmul

import (
	"math/bits"
	"sort"

	"github.com/congestedclique/ccsp/internal/cc"
	"github.com/congestedclique/ccsp/internal/matrix"
	"github.com/congestedclique/ccsp/internal/semiring"
)

// Message kinds of the filtered-multiplication protocol (Lemma 15).
const (
	kindCntInit uint8 = iota + 8
	kindQuery
	kindReply
	kindCutoff
)

// cutoff is the per-row filtering threshold computed by Lemma 15: keep
// entry (val, col) iff Rank(val) < rank, or Rank(val) == rank and
// col <= colCut. This realizes the paper's ρ-th smallest element of the set
// {(P_k[ℓ,i], i)} under the order (value, column).
type cutoff struct {
	rank   int64
	colCut int32
}

func (c cutoff) keeps(rank int64, col int32) bool {
	return rank < c.rank || (rank == c.rank && col <= c.colCut)
}

// MultiplyFiltered computes one row of the ρ-filtered product of S·T over
// an ordered semiring (Theorem 14): each output row holds the ρ smallest
// entries of the true product row. Unlike Multiply, no knowledge of the
// output density is needed - the output is sparsified on the fly via the
// distributed binary searches of Lemma 15 and the balancing of Lemma 16.
func MultiplyFiltered[E any](nd *cc.Node, sr semiring.Ordered[E], srow, trow matrix.Row[E], rho int) matrix.Row[E] {
	if rho < 1 {
		rho = 1
	}
	if rho > nd.N {
		rho = nd.N
	}
	cs := newCube(nd, sr, srow, trow, rho)

	// Step (2): identity assignment; node v computes subtask v, which is
	// the (i,j) block of the layer matrix P_k for (i,j,k) = decode(v).
	sigma1 := make([]int32, cs.n)
	for v := range sigma1 {
		if v < cs.nsub {
			sigma1[v] = int32(v)
		} else {
			sigma1[v] = -1
		}
	}
	ssub, tsub := cs.deliver(sigma1)
	pmine := localProduct(cs.sr, ssub, tsub)

	// Step (3), Lemma 15: per-row distributed binary searches within the
	// groups B_ik determine the cutoff values.
	fs := newFilterState(cs, sr, pmine)
	fs.runSearches(rho)

	kept := fs.filter(pmine)

	// Step (4), Lemma 16: balance the filtered entries by duplicating
	// overloaded subtasks within their B_ik group.
	wkept := nd.BroadcastVal(int64(len(kept)))
	sigma2, capPer := buildSigma2InGroups(cs, wkept, rho)
	ssub2, tsub2 := cs.deliver(sigma2)
	var kept2 []triple[E]
	if sigma2[nd.ID] >= 0 {
		// Helpers recompute the product and filter with the cutoffs they
		// learned as members of the same group B_ik.
		kept2 = fs.filter(localProduct(cs.sr, ssub2, tsub2))
	}
	counts := make([]int64, cs.n)
	for v := 0; v < cs.n; v++ {
		counts[v] = wkept[v]
	}
	mine := selectChunksPerGroup(cs, nd.ID, sigma1, sigma2, counts, capPer, kept, kept2)

	// Step (5): balanced summation gives Q = Σ_k P̄_k; step (6): the final
	// local filter of the owned row gives the ρ-filtered product.
	qrow := cs.sumIntermediates(mine)
	return matrix.FilterRow(sr, qrow, rho)
}

// filterState holds one node's view of the Lemma 15 searches: its group
// B_ik, the rows of C^S_i, its per-row entries sorted by (rank, col), the
// rows it coordinates, and the resulting cutoffs.
type filterState[E any] struct {
	cs *cubeState[E]
	sr semiring.Ordered[E]

	active  bool // node participates (ID < nsub)
	i, j, k int

	groupRows []int32 // C^S_i, ascending
	rowIdx    map[int32]int

	// rowEntries[ℓ] = my block entries of row ℓ as (rank, col), sorted.
	rowEntries map[int32][]rankCol

	// coordinated[t] for rows I coordinate: search state.
	searches map[int32]*searchState

	cutoffs map[int32]cutoff
}

type rankCol struct {
	rank int64
	col  int32
}

type searchState struct {
	total   int64
	lo, hi  int64
	cntLess int64 // count of rank < result, learned in the pre-col round
	colLo   int64
	colHi   int64
	done    bool
}

func newFilterState[E any](cs *cubeState[E], sr semiring.Ordered[E], pmine []triple[E]) *filterState[E] {
	fs := &filterState[E]{cs: cs, sr: sr, cutoffs: make(map[int32]cutoff)}
	if cs.nd.ID >= cs.nsub {
		return fs
	}
	fs.active = true
	fs.i, fs.j, fs.k = cs.decode(cs.nd.ID)
	for u := 0; u < cs.n; u++ {
		if int(cs.sAssign[u]) == fs.i {
			fs.groupRows = append(fs.groupRows, int32(u))
		}
	}
	fs.rowIdx = make(map[int32]int, len(fs.groupRows))
	for t, u := range fs.groupRows {
		fs.rowIdx[u] = t
	}
	fs.rowEntries = make(map[int32][]rankCol)
	for _, t := range pmine {
		fs.rowEntries[t.row] = append(fs.rowEntries[t.row], rankCol{rank: sr.Rank(t.val), col: t.col})
	}
	for _, es := range fs.rowEntries {
		sort.Slice(es, func(a, b int) bool {
			if es[a].rank != es[b].rank {
				return es[a].rank < es[b].rank
			}
			return es[a].col < es[b].col
		})
	}
	fs.searches = make(map[int32]*searchState)
	return fs
}

// coordinator returns the node coordinating the search for group row index
// t: the t-mod-a member of B_ik (each coordinator leads O(n/ab) searches,
// as in the proof of Lemma 15).
func (fs *filterState[E]) coordinator(t int) int32 {
	return int32(fs.cs.subcubeID(fs.i, t%fs.cs.par.A, fs.k))
}

// countAtMost returns |{e in row: e.rank <= r}|.
func countAtMost(es []rankCol, r int64) int64 {
	return int64(sort.Search(len(es), func(x int) bool { return es[x].rank > r }))
}

// countEqColAtMost returns |{e in row: e.rank == r && e.col <= c}|.
func countEqColAtMost(es []rankCol, r int64, c int64) int64 {
	lo := sort.Search(len(es), func(x int) bool { return es[x].rank >= r })
	hi := sort.Search(len(es), func(x int) bool {
		return es[x].rank > r || (es[x].rank == r && int64(es[x].col) > c)
	})
	return int64(hi - lo)
}

// runSearches executes the batched distributed binary searches of Lemma 15
// in global lockstep: an initial count round, O(log W) value iterations,
// one pre-column round, O(log n) column iterations, and a cutoff
// dissemination round. All rows of all groups proceed in parallel;
// converged rows simply stop generating traffic.
func (fs *filterState[E]) runSearches(rho int) {
	nd := fs.cs.nd
	maxRank := fs.sr.MaxRank()

	// Initial counts: every participant reports its per-row entry counts
	// to the row's coordinator.
	var out []cc.Packet
	if fs.active {
		for row, es := range fs.rowEntries {
			out = append(out, cc.Packet{
				Dst: fs.coordinator(fs.rowIdx[row]),
				M:   cc.Msg{Kind: kindCntInit, A: int64(row), B: int64(len(es))},
			})
		}
	}
	in := nd.Route(out)
	for _, m := range in {
		row := int32(m.A)
		st := fs.searches[row]
		if st == nil {
			st = &searchState{hi: maxRank, colHi: int64(fs.cs.n - 1)}
			fs.searches[row] = st
		}
		st.total += m.B
	}
	for row, st := range fs.searches {
		if st.total <= int64(rho) {
			st.done = true
			fs.setCut(row, cutoff{rank: maxRank, colCut: int32(fs.cs.n - 1)})
		}
	}

	// Value phase: find the smallest rank r with count(<= r) >= rho.
	query := func(val func(st *searchState) int64, phase uint8) map[int32]int64 {
		var q []cc.Packet
		if fs.active {
			for row, st := range fs.searches {
				if st.done {
					continue
				}
				for j := 0; j < fs.cs.par.A; j++ {
					q = append(q, cc.Packet{
						Dst: int32(fs.cs.subcubeID(fs.i, j, fs.k)),
						M:   cc.Msg{Kind: kindQuery, A: int64(row), B: val(st), C: int64(phase)},
					})
				}
			}
		}
		queries := nd.Route(q)
		var replies []cc.Packet
		for _, m := range queries {
			row := int32(m.A)
			es := fs.rowEntries[row]
			var cnt int64
			switch uint8(m.C) {
			case 0: // count rank <= B
				cnt = countAtMost(es, m.B)
			case 1: // count rank < B (pre-column round)
				cnt = countAtMost(es, m.B-1)
			case 2: // count rank == B(hi bits)... packed: B = rank, D = col
				cnt = countEqColAtMost(es, m.B, m.D)
			}
			replies = append(replies, cc.Packet{Dst: m.Src, M: cc.Msg{Kind: kindReply, A: int64(row), B: cnt}})
		}
		sums := make(map[int32]int64)
		for _, m := range nd.Route(replies) {
			sums[int32(m.A)] += m.B
		}
		return sums
	}

	valIters := bits.Len64(uint64(maxRank)) + 1
	for it := 0; it < valIters; it++ {
		// Pack mid into the query; converged searches are skipped.
		var q []cc.Packet
		if fs.active {
			for row, st := range fs.searches {
				if st.done || st.lo >= st.hi {
					continue
				}
				mid := st.lo + (st.hi-st.lo)/2
				for j := 0; j < fs.cs.par.A; j++ {
					q = append(q, cc.Packet{
						Dst: int32(fs.cs.subcubeID(fs.i, j, fs.k)),
						M:   cc.Msg{Kind: kindQuery, A: int64(row), B: mid, C: 0},
					})
				}
			}
		}
		queries := nd.Route(q)
		var replies []cc.Packet
		for _, m := range queries {
			cnt := countAtMost(fs.rowEntries[int32(m.A)], m.B)
			replies = append(replies, cc.Packet{Dst: m.Src, M: cc.Msg{Kind: kindReply, A: m.A, B: cnt}})
		}
		sums := make(map[int32]int64)
		for _, m := range nd.Route(replies) {
			sums[int32(m.A)] += m.B
		}
		for row, st := range fs.searches {
			if st.done || st.lo >= st.hi {
				continue
			}
			mid := st.lo + (st.hi-st.lo)/2
			if sums[row] >= int64(rho) {
				st.hi = mid
			} else {
				st.lo = mid + 1
			}
		}
	}

	// Pre-column round: learn count(rank < r) for the converged rank.
	sums := query(func(st *searchState) int64 { return st.lo }, 1)
	for row, st := range fs.searches {
		if !st.done {
			st.cntLess = sums[row]
		}
	}

	// Column phase: smallest colCut with cntLess + count(==r, col<=cut) >= rho.
	colIters := bits.Len64(uint64(fs.cs.n)) + 1
	for it := 0; it < colIters; it++ {
		var q []cc.Packet
		if fs.active {
			for row, st := range fs.searches {
				if st.done || st.colLo >= st.colHi {
					continue
				}
				mid := st.colLo + (st.colHi-st.colLo)/2
				for j := 0; j < fs.cs.par.A; j++ {
					q = append(q, cc.Packet{
						Dst: int32(fs.cs.subcubeID(fs.i, j, fs.k)),
						M:   cc.Msg{Kind: kindQuery, A: int64(row), B: st.lo, C: 2, D: mid},
					})
				}
			}
		}
		queries := nd.Route(q)
		var replies []cc.Packet
		for _, m := range queries {
			cnt := countEqColAtMost(fs.rowEntries[int32(m.A)], m.B, m.D)
			replies = append(replies, cc.Packet{Dst: m.Src, M: cc.Msg{Kind: kindReply, A: m.A, B: cnt}})
		}
		csums := make(map[int32]int64)
		for _, m := range nd.Route(replies) {
			csums[int32(m.A)] += m.B
		}
		for row, st := range fs.searches {
			if st.done || st.colLo >= st.colHi {
				continue
			}
			mid := st.colLo + (st.colHi-st.colLo)/2
			if st.cntLess+csums[row] >= int64(rho) {
				st.colHi = mid
			} else {
				st.colLo = mid + 1
			}
		}
	}

	// Disseminate cutoffs to the whole group.
	var cuts []cc.Packet
	if fs.active {
		for row, st := range fs.searches {
			if st.done {
				continue
			}
			for j := 0; j < fs.cs.par.A; j++ {
				cuts = append(cuts, cc.Packet{
					Dst: int32(fs.cs.subcubeID(fs.i, j, fs.k)),
					M:   cc.Msg{Kind: kindCutoff, A: int64(row), B: st.lo, C: st.colLo},
				})
			}
		}
		// Done (keep-all) rows: also disseminate, so helpers know them.
		for row, st := range fs.searches {
			if !st.done {
				continue
			}
			for j := 0; j < fs.cs.par.A; j++ {
				cuts = append(cuts, cc.Packet{
					Dst: int32(fs.cs.subcubeID(fs.i, j, fs.k)),
					M:   cc.Msg{Kind: kindCutoff, A: int64(row), B: maxRank, C: int64(fs.cs.n - 1)},
				})
			}
		}
	}
	for _, m := range nd.Route(cuts) {
		fs.setCut(int32(m.A), cutoff{rank: m.B, colCut: int32(m.C)})
	}
}

func (fs *filterState[E]) setCut(row int32, c cutoff) {
	fs.cutoffs[row] = c
}

// filter keeps the entries passing their row's cutoff. Rows with no learned
// cutoff had no entries anywhere in the group and cannot occur here.
func (fs *filterState[E]) filter(product []triple[E]) []triple[E] {
	kept := make([]triple[E], 0, len(product))
	for _, t := range product {
		cut, ok := fs.cutoffs[t.row]
		if !ok {
			continue
		}
		if cut.keeps(fs.sr.Rank(t.val), t.col) {
			kept = append(kept, t)
		}
	}
	return kept
}

// buildSigma2InGroups constructs the Lemma 16 helper assignment: within
// each group B_ik, a member with w >= ρ·α_i·c kept entries gets
// floor(w/(ρ·α_i·c)) helpers drawn from the same group. It returns the
// assignment and the per-node chunk capacity (capPer[v] = ρ·α_i·c of v's
// group; 0 for idle nodes).
func buildSigma2InGroups[E any](cs *cubeState[E], wkept []int64, rho int) (sigma2 []int32, capPer []int64) {
	n := cs.n
	sigma2 = make([]int32, n)
	for v := range sigma2 {
		sigma2[v] = -1
	}
	capPer = make([]int64, n)

	groupSize := make([]int, cs.par.B) // |C^S_i|
	for u := 0; u < n; u++ {
		groupSize[cs.sAssign[u]]++
	}
	nOverB := n / cs.par.B
	if nOverB < 1 {
		nOverB = 1
	}
	for i := 0; i < cs.par.B; i++ {
		alpha := (groupSize[i] + nOverB - 1) / nOverB
		if alpha < 1 {
			alpha = 1
		}
		capacity := int64(rho) * int64(alpha) * int64(cs.par.C)
		for k := 0; k < cs.par.C; k++ {
			// Pool and targets are the members of B_ik in j-order.
			pool := 0
			for j := 0; j < cs.par.A; j++ {
				sid := cs.subcubeID(i, j, k)
				capPer[sid] = capacity
				helpers := int(wkept[sid] / capacity)
				for t := 0; t < helpers && pool < cs.par.A; t++ {
					helper := cs.subcubeID(i, pool, k)
					sigma2[helper] = int32(sid)
					pool++
				}
			}
		}
	}
	return sigma2, capPer
}

// selectChunksPerGroup mirrors selectChunks with per-node capacities.
func selectChunksPerGroup[E any](cs *cubeState[E], me int, sigma1, sigma2 []int32, counts []int64, capPer []int64, p1, p2 []triple[E]) []triple[E] {
	var mine []triple[E]
	take := func(sid int, product []triple[E]) {
		if counts[sid] == 0 {
			return
		}
		capacity := capPer[sid]
		if capacity <= 0 {
			return
		}
		var positions []int
		pos := 0
		for v := 0; v < len(sigma1); v++ {
			if sigma1[v] >= 0 && int(sigma1[v]) == sid {
				if v == me {
					positions = append(positions, pos)
				}
				pos++
			}
		}
		for v := 0; v < len(sigma2); v++ {
			if sigma2[v] >= 0 && int(sigma2[v]) == sid {
				if v == me {
					positions = append(positions, pos)
				}
				pos++
			}
		}
		for _, p := range positions {
			if p == pos-1 {
				mine = append(mine, chunkTail(product, p, capacity)...)
			} else {
				mine = append(mine, chunk(product, p, capacity)...)
			}
		}
	}
	if s1 := int32OrNeg(sigma1, me); s1 >= 0 {
		take(s1, p1)
	}
	if s2 := int32OrNeg(sigma2, me); s2 >= 0 && s2 != int32OrNeg(sigma1, me) {
		take(s2, p2)
	}
	return mine
}
