// Package matmul implements the paper's distributed matrix multiplication
// machinery on the Congested Clique (§2): the partition lemmas (Lemmas
// 5-7), the cube partitioning of Lemma 9, the balanced delivery of Lemmas
// 10-12, balanced summation (Lemma 13), output-sensitive sparse matrix
// multiplication (Theorem 8) and sparse matrix multiplication with on-line
// sparsification of the output (Theorem 14).
package matmul

import (
	"math"
	"sort"
)

// PartitionBalanced implements Lemma 5: it partitions indices [0,n) into k
// groups of size at most ceil(n/k) such that each group's weight is at most
// W/k + max(w). It returns the group assignment per index. The construction
// sorts by weight (descending, ties by index) and deals round-robin, which
// realizes the bound deterministically; every node computes it identically
// from globally known weights.
func PartitionBalanced(weights []int64, k int) []int32 {
	n := len(weights)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if weights[idx[a]] != weights[idx[b]] {
			return weights[idx[a]] > weights[idx[b]]
		}
		return idx[a] < idx[b]
	})
	assign := make([]int32, n)
	for t, i := range idx {
		assign[i] = int32(t % k)
	}
	return assign
}

// PartitionConsecutive implements Lemma 6: it partitions [0,n) into at most
// k groups of consecutive indices, each of weight at most W/k + max(w). It
// returns half-open boundaries: group j is [starts[j], starts[j+1]), with
// len(starts) == k+1 (trailing groups may be empty).
func PartitionConsecutive(weights []int64, k int) []int {
	n := len(weights)
	var total int64
	for _, w := range weights {
		total += w
	}
	// Close a group once it reaches ceil(W/k): closed groups then weigh at
	// most ceil(W/k)-1+max(w) <= W/k + max(w), and at most k-1 groups close
	// before the remainder (at most W/k) forms the last group.
	target := (total + int64(k) - 1) / int64(k)
	starts := make([]int, 0, k+1)
	starts = append(starts, 0)
	var acc int64
	for i := 0; i < n && len(starts) < k; i++ {
		acc += weights[i]
		if total > 0 && acc >= target {
			starts = append(starts, i+1)
			acc = 0
		}
	}
	for len(starts) < k+1 {
		starts = append(starts, n)
	}
	starts[k] = n
	return starts
}

// PartitionConsecutive2 implements Lemma 7: it partitions [0,n) into at
// most k groups of consecutive indices such that each group's w-weight is at
// most 2(W/k + max w) and its u-weight is at most 2(U/k + max u). It
// returns half-open boundaries of length k+1, built by interleaving the
// fenceposts of the two Lemma 6 partitions and keeping every other one.
func PartitionConsecutive2(w, u []int64, k int) []int {
	n := len(w)
	sw := PartitionConsecutive(w, k)
	su := PartitionConsecutive(u, k)
	// Ends of the 2k groups, in sorted order (both lists are sorted; merge).
	ends := make([]int, 0, 2*k)
	i, j := 1, 1
	for i <= k || j <= k {
		switch {
		case i > k:
			ends = append(ends, su[j])
			j++
		case j > k:
			ends = append(ends, sw[i])
			i++
		case sw[i] <= su[j]:
			ends = append(ends, sw[i])
			i++
		default:
			ends = append(ends, su[j])
			j++
		}
	}
	starts := make([]int, k+1)
	for t := 1; t <= k; t++ {
		// Group t is (ends[2t-2], ends[2t]] in the paper's closed notation;
		// half-open: [prev, ends[2t-1]) taking every other fencepost.
		starts[t] = ends[2*t-1]
	}
	starts[k] = n
	for t := 1; t <= k; t++ {
		if starts[t] < starts[t-1] {
			starts[t] = starts[t-1]
		}
	}
	return starts
}

// locate returns the group of index x in a half-open boundary list
// (starts[g] <= x < starts[g+1]).
func locate(starts []int, x int) int {
	// starts is sorted; find the last g with starts[g] <= x.
	lo, hi := 0, len(starts)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if starts[mid] <= x {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// Params holds the subtask-shape parameters a, b, c of §2.1.1: the cube V³
// is split into (at most) n subcubes of shape (n/b) × (n/c) × (n/a), chosen
// to optimize ρS·a/n + ρT·b/n + ρ̂·c/n subject to a·b·c ≤ n.
type Params struct {
	A, B, C int
}

// ChooseParams computes the algorithm parameters of §2.1.1 from the input
// densities and the (known or assumed) output density, clamped to integers
// with A·B·C ≤ n. Rounding costs at most a constant factor (§2.1.1).
func ChooseParams(n, rhoS, rhoT, rhoHat int) Params {
	fs, ft, fh, fn := float64(rhoS), float64(rhoT), float64(rhoHat), float64(n)
	cStar := math.Cbrt(fs*ft*fn) / math.Pow(fh, 2.0/3.0)
	aStar := math.Cbrt(ft*fh*fn) / math.Pow(fs, 2.0/3.0)
	bStar := math.Cbrt(fs*fh*fn) / math.Pow(ft, 2.0/3.0)

	c := clampInt(int(cStar), 1, n)
	rem := n / c
	if rem < 1 {
		rem = 1
	}
	// If flooring c left a*·b* over budget, scale both down proportionally.
	if aStar*bStar > float64(rem) {
		scale := math.Sqrt(float64(rem) / (aStar * bStar))
		aStar *= scale
		bStar *= scale
	}
	a := clampInt(int(aStar), 1, rem)
	b := clampInt(int(bStar), 1, rem/a)
	return Params{A: a, B: b, C: c}
}

func clampInt(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
