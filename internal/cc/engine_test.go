package cc

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSyncRing(t *testing.T) {
	// Every node sends its ID to its successor; checks delivery, sender
	// stamping and round accounting.
	const n = 16
	got := make([]int64, n)
	stats, err := Run(context.Background(), Config{N: n}, func(nd *Node) error {
		succ := int32((nd.ID + 1) % nd.N)
		in := nd.Sync([]Packet{{Dst: succ, M: Msg{A: int64(nd.ID)}}})
		if len(in) != 1 {
			return fmt.Errorf("node %d: got %d messages, want 1", nd.ID, len(in))
		}
		if want := int32((nd.ID + n - 1) % n); in[0].Src != want {
			return fmt.Errorf("node %d: src=%d, want %d", nd.ID, in[0].Src, want)
		}
		got[nd.ID] = in[0].A
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < n; v++ {
		if got[v] != int64((v+n-1)%n) {
			t.Errorf("node %d received %d, want %d", v, got[v], (v+n-1)%n)
		}
	}
	if stats.SimRounds != 1 {
		t.Errorf("SimRounds=%d, want 1", stats.SimRounds)
	}
	if stats.Messages != n {
		t.Errorf("Messages=%d, want %d", stats.Messages, n)
	}
}

func TestSyncInboxSortedBySender(t *testing.T) {
	const n = 12
	stats, err := Run(context.Background(), Config{N: n}, func(nd *Node) error {
		// Everyone sends to node 0.
		var out []Packet
		if nd.ID != 0 {
			out = []Packet{{Dst: 0, M: Msg{A: int64(nd.ID)}}}
		}
		in := nd.Sync(out)
		if nd.ID != 0 {
			return nil
		}
		if len(in) != n-1 {
			return fmt.Errorf("inbox size %d, want %d", len(in), n-1)
		}
		for i := 1; i < len(in); i++ {
			if in[i-1].Src >= in[i].Src {
				return fmt.Errorf("inbox not sorted by sender: %d >= %d", in[i-1].Src, in[i].Src)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalRounds() != 1 {
		t.Errorf("TotalRounds=%d, want 1", stats.TotalRounds())
	}
}

func TestSyncLinkCapacityViolation(t *testing.T) {
	_, err := Run(context.Background(), Config{N: 4}, func(nd *Node) error {
		out := []Packet{{Dst: 1, M: Msg{A: 1}}, {Dst: 1, M: Msg{A: 2}}}
		nd.Sync(out)
		return nil
	})
	if err == nil {
		t.Fatal("want error for two messages on one link in one round")
	}
	if !strings.Contains(err.Error(), "link capacity") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestSyncInvalidDestination(t *testing.T) {
	_, err := Run(context.Background(), Config{N: 4}, func(nd *Node) error {
		nd.Sync([]Packet{{Dst: 99, M: Msg{}}})
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "invalid destination") {
		t.Fatalf("want invalid destination error, got %v", err)
	}
}

func TestBroadcastVal(t *testing.T) {
	const n = 10
	stats, err := Run(context.Background(), Config{N: n}, func(nd *Node) error {
		vals := nd.BroadcastVal(int64(nd.ID * nd.ID))
		for v := 0; v < n; v++ {
			if vals[v] != int64(v*v) {
				return fmt.Errorf("vals[%d]=%d, want %d", v, vals[v], v*v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SimRounds != 1 {
		t.Errorf("SimRounds=%d, want 1", stats.SimRounds)
	}
	if want := int64(n * (n - 1)); stats.Messages != want {
		t.Errorf("Messages=%d, want %d", stats.Messages, want)
	}
}

func TestRouteBalancedChargesConstant(t *testing.T) {
	// Each node sends exactly n messages (one per node): maxSend = n,
	// maxRecv = n, so the charge must be 1+1 = 2 rounds regardless of n.
	for _, n := range []int{4, 16, 64} {
		stats, err := Run(context.Background(), Config{N: n}, func(nd *Node) error {
			out := make([]Packet, n)
			for i := range out {
				out[i] = Packet{Dst: int32(i), M: Msg{A: int64(nd.ID), B: int64(i)}}
			}
			in := nd.Route(out)
			if len(in) != n {
				return fmt.Errorf("node %d received %d, want %d", nd.ID, len(in), n)
			}
			for i, m := range in {
				if m.Src != int32(i) || m.A != int64(i) || m.B != int64(nd.ID) {
					return fmt.Errorf("node %d msg %d corrupted: %+v", nd.ID, i, m)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got := stats.Charged["route"]; got != 2 {
			t.Errorf("n=%d: route charge=%d, want 2", n, got)
		}
		if stats.SimRounds != 0 {
			t.Errorf("n=%d: SimRounds=%d, want 0", n, stats.SimRounds)
		}
	}
}

func TestRouteOverloadedChargesProportionally(t *testing.T) {
	// One node sends 3n messages to a single destination: maxSend = 3n and
	// maxRecv = 3n, so the charge is 3+3 = 6.
	const n = 8
	stats, err := Run(context.Background(), Config{N: n}, func(nd *Node) error {
		var out []Packet
		if nd.ID == 0 {
			out = make([]Packet, 3*n)
			for i := range out {
				out[i] = Packet{Dst: 1, M: Msg{A: int64(i)}}
			}
		}
		in := nd.Route(out)
		if nd.ID == 1 {
			if len(in) != 3*n {
				return fmt.Errorf("received %d, want %d", len(in), 3*n)
			}
			// Delivery order within one sender preserves submission order.
			for i, m := range in {
				if m.A != int64(i) {
					return fmt.Errorf("msg %d out of order: %+v", i, m)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := stats.Charged["route"]; got != 6 {
		t.Errorf("route charge=%d, want 6", got)
	}
}

func TestRouteEmptyIsFree(t *testing.T) {
	stats, err := Run(context.Background(), Config{N: 4}, func(nd *Node) error {
		if in := nd.Route(nil); len(in) != 0 {
			return fmt.Errorf("unexpected messages: %d", len(in))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalRounds() != 0 {
		t.Errorf("TotalRounds=%d, want 0", stats.TotalRounds())
	}
}

func TestSortGlobalOrderAndRanks(t *testing.T) {
	const n = 8
	// Node v submits keys {v, v+n, v+2n, ...}: globally the sorted order is
	// 0..n*perNode-1.
	const perNode = 5
	collected := make([][]int64, n)
	starts := make([]int, n)
	_, err := Run(context.Background(), Config{N: n}, func(nd *Node) error {
		recs := make([]Rec, perNode)
		for i := range recs {
			key := int64(nd.ID + i*n)
			recs[i] = Rec{Key: key, M: Msg{A: key * 10}}
		}
		res := nd.Sort(recs)
		keys := make([]int64, len(res.Recs))
		for i, r := range res.Recs {
			if r.M.A != r.Key*10 {
				return fmt.Errorf("payload lost: key=%d payload=%d", r.Key, r.M.A)
			}
			keys[i] = r.Key
		}
		collected[nd.ID] = keys
		starts[nd.ID] = res.Start
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var all []int64
	for v := 0; v < n; v++ {
		if starts[v] != len(all) {
			t.Errorf("node %d Start=%d, want %d", v, starts[v], len(all))
		}
		all = append(all, collected[v]...)
	}
	if len(all) != n*perNode {
		t.Fatalf("total records %d, want %d", len(all), n*perNode)
	}
	if !sort.SliceIsSorted(all, func(i, j int) bool { return all[i] < all[j] }) {
		t.Error("global order not sorted")
	}
	for i, k := range all {
		if k != int64(i) {
			t.Fatalf("rank %d holds key %d", i, k)
		}
	}
}

func TestSortStableTieBreakBySender(t *testing.T) {
	const n = 6
	res := make([][]Rec, n)
	_, err := Run(context.Background(), Config{N: n}, func(nd *Node) error {
		// All keys equal: order must be by (sender, index).
		recs := []Rec{{Key: 7, M: Msg{A: int64(nd.ID * 2)}}, {Key: 7, M: Msg{A: int64(nd.ID*2 + 1)}}}
		r := nd.Sort(recs)
		res[nd.ID] = r.Recs
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var payloads []int64
	for v := 0; v < n; v++ {
		for _, r := range res[v] {
			payloads = append(payloads, r.M.A)
		}
	}
	for i, p := range payloads {
		if p != int64(i) {
			t.Fatalf("tie-break violated at rank %d: payload %d", i, p)
		}
	}
}

func TestChargeAccumulatesByTag(t *testing.T) {
	stats, err := Run(context.Background(), Config{N: 4}, func(nd *Node) error {
		nd.Charge("hitting-set", 27)
		nd.Charge("hitting-set", 27)
		nd.Charge("misc", 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := stats.Charged["hitting-set"]; got != 54 {
		t.Errorf("hitting-set=%d, want 54", got)
	}
	if got := stats.Charged["misc"]; got != 1 {
		t.Errorf("misc=%d, want 1", got)
	}
	if stats.TotalRounds() != 55 {
		t.Errorf("TotalRounds=%d, want 55", stats.TotalRounds())
	}
}

func TestMismatchedCollectivesFail(t *testing.T) {
	_, err := Run(context.Background(), Config{N: 2}, func(nd *Node) error {
		if nd.ID == 0 {
			nd.Sync(nil)
		} else {
			nd.BroadcastVal(0)
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "mismatched collectives") {
		t.Fatalf("want mismatched collectives error, got %v", err)
	}
}

func TestMismatchedChargeFails(t *testing.T) {
	_, err := Run(context.Background(), Config{N: 2}, func(nd *Node) error {
		nd.Charge("x", nd.ID+1)
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "mismatched charge") {
		t.Fatalf("want mismatched charge error, got %v", err)
	}
}

func TestNodeErrorAbortsRun(t *testing.T) {
	wantErr := errors.New("boom")
	_, err := Run(context.Background(), Config{N: 8}, func(nd *Node) error {
		if nd.ID == 3 {
			return wantErr
		}
		// Other nodes block in a collective; they must be released.
		nd.Sync(nil)
		nd.Sync(nil)
		return nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if !errors.Is(err, wantErr) && !strings.Contains(err.Error(), "boom") {
		t.Errorf("error should carry the node failure: %v", err)
	}
}

func TestNodePanicBecomesError(t *testing.T) {
	_, err := Run(context.Background(), Config{N: 4}, func(nd *Node) error {
		if nd.ID == 2 {
			panic("kaboom")
		}
		nd.Sync(nil)
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("want panic converted to error, got %v", err)
	}
}

func TestEarlyExitDuringCollectiveFails(t *testing.T) {
	// Whichever order the requests arrive in, a collective involving
	// fewer than all nodes is a protocol violation.
	for i := 0; i < 20; i++ {
		_, err := Run(context.Background(), Config{N: 3}, func(nd *Node) error {
			if nd.ID == 0 {
				return nil // exits while peers enter a collective
			}
			nd.Sync(nil)
			return nil
		})
		if err == nil || (!strings.Contains(err.Error(), "exited while") && !strings.Contains(err.Error(), "after")) {
			t.Fatalf("want early-exit protocol error, got %v", err)
		}
	}
}

func TestMaxRoundsGuard(t *testing.T) {
	_, err := Run(context.Background(), Config{N: 2, MaxRounds: 10}, func(nd *Node) error {
		for {
			nd.Sync(nil)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "round budget exceeded") {
		t.Fatalf("want round budget error, got %v", err)
	}
}

func TestInvalidConfig(t *testing.T) {
	if _, err := Run(context.Background(), Config{N: 0}, func(*Node) error { return nil }); err == nil {
		t.Fatal("want error for N=0")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (Stats, [][]int64) {
		const n = 10
		out := make([][]int64, n)
		stats, err := Run(context.Background(), Config{N: n, Seed: 42}, func(nd *Node) error {
			r := nd.Rand()
			var pkts []Packet
			for i := 0; i < n; i++ {
				pkts = append(pkts, Packet{Dst: int32(i), M: Msg{A: r.Int63n(1000)}})
			}
			in := nd.Route(pkts)
			for _, m := range in {
				out[nd.ID] = append(out[nd.ID], m.A)
			}
			vals := nd.BroadcastVal(out[nd.ID][0])
			out[nd.ID] = append(out[nd.ID], vals...)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats, out
	}
	s1, o1 := run()
	s2, o2 := run()
	if s1.String() != s2.String() {
		t.Errorf("stats differ: %v vs %v", s1.String(), s2.String())
	}
	if !reflect.DeepEqual(o1, o2) {
		t.Error("outputs differ between identical runs")
	}
}

func TestStatsAddAndString(t *testing.T) {
	a := Stats{N: 4, SimRounds: 3, Messages: 10, Charged: map[string]int{"route": 2}}
	b := Stats{N: 4, SimRounds: 1, Messages: 5, Charged: map[string]int{"route": 4, "sort": 3}}
	a.Add(&b)
	if a.SimRounds != 4 || a.Messages != 15 {
		t.Errorf("bad sums: %+v", a)
	}
	if a.Charged["route"] != 6 || a.Charged["sort"] != 3 {
		t.Errorf("bad charged: %+v", a.Charged)
	}
	if a.TotalRounds() != 13 {
		t.Errorf("TotalRounds=%d, want 13", a.TotalRounds())
	}
	if s := a.String(); !strings.Contains(s, "route=6") || !strings.Contains(s, "sort=3") {
		t.Errorf("String misses charges: %s", s)
	}
	var zero Stats
	zero.Add(nil) // must not panic
}

// TestSortPropertyRandom is a property-based check: for random multisets
// spread over nodes, the concatenated batches are the sorted global multiset.
func TestSortPropertyRandom(t *testing.T) {
	prop := func(raw []int16, nRaw uint8) bool {
		n := int(nRaw)%7 + 2
		keys := make([]int64, len(raw))
		for i, k := range raw {
			keys[i] = int64(k)
		}
		batches := make([][]int64, n)
		_, err := Run(context.Background(), Config{N: n}, func(nd *Node) error {
			var recs []Rec
			for i, k := range keys {
				if i%n == nd.ID {
					recs = append(recs, Rec{Key: k})
				}
			}
			res := nd.Sort(recs)
			out := make([]int64, len(res.Recs))
			for i, r := range res.Recs {
				out[i] = r.Key
			}
			batches[nd.ID] = out
			return nil
		})
		if err != nil {
			return false
		}
		var all []int64
		for _, b := range batches {
			all = append(all, b...)
		}
		want := append([]int64(nil), keys...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		return reflect.DeepEqual(all, want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
