package cc

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"
)

// spinProgram is an effectively unbounded workload: every node keeps
// exchanging one message around a ring. Only cancellation (or the round
// guard) can end it, which makes it the reference workload for the
// cancellation tests.
func spinProgram(rounds int) Program {
	return func(nd *Node) error {
		for i := 0; i < rounds; i++ {
			nd.Sync([]Packet{{Dst: int32((nd.ID + 1) % nd.N)}})
		}
		return nil
	}
}

const spinForever = 1 << 40 // rounds; never reached before the test would time out

// waitGoroutines polls until the goroutine count drops back to at most
// base+slack, failing the test if the run's goroutines never exit.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after canceled run: %d, baseline %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRunCanceledMidRun: canceling mid-run unwinds every node, returns the
// partial stats accumulated so far, and matches both cc and context
// sentinels via errors.Is.
func TestRunCanceledMidRun(t *testing.T) {
	for _, workers := range []int{1, 4} {
		base := runtime.NumGoroutine()
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(30 * time.Millisecond)
			cancel()
		}()
		stats, err := Run(ctx, Config{N: 4, MaxRounds: 1 << 30, Workers: workers}, spinProgram(spinForever))
		if err == nil {
			t.Fatalf("workers=%d: canceled run returned nil error", workers)
		}
		if !errors.Is(err, ErrCanceled) {
			t.Errorf("workers=%d: errors.Is(err, ErrCanceled) = false for %v", workers, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: errors.Is(err, context.Canceled) = false for %v", workers, err)
		}
		if stats.SimRounds == 0 {
			t.Errorf("workers=%d: partial stats lost: %+v", workers, stats)
		}
		waitGoroutines(t, base)
	}
}

// TestRunDeadlineExceeded: an expiring deadline aborts the run and the
// error matches ErrCanceled and context.DeadlineExceeded.
func TestRunDeadlineExceeded(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	_, err := Run(ctx, Config{N: 4, MaxRounds: 1 << 30}, spinProgram(spinForever))
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want ErrCanceled wrapping DeadlineExceeded, got %v", err)
	}
}

// TestRunPreCanceled: a context that is already dead aborts before any
// round executes; the returned stats are an empty (but well-formed) zero
// prefix.
func TestRunPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	stats, err := Run(ctx, Config{N: 4}, spinProgram(spinForever))
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("want ErrCanceled wrapping Canceled, got %v", err)
	}
	if stats.SimRounds != 0 || stats.TotalRounds() != 0 {
		t.Errorf("pre-canceled run executed rounds: %+v", stats)
	}
	if stats.N != 4 || stats.Charged == nil {
		t.Errorf("pre-canceled stats malformed: %+v", stats)
	}
}

// TestRunRoundLimitSentinel: exceeding MaxRounds is a typed failure.
func TestRunRoundLimitSentinel(t *testing.T) {
	_, err := Run(context.Background(), Config{N: 2, MaxRounds: 5}, spinProgram(spinForever))
	if !errors.Is(err, ErrRoundLimit) {
		t.Fatalf("want ErrRoundLimit, got %v", err)
	}
	if errors.Is(err, ErrCanceled) {
		t.Errorf("round-limit error must not match ErrCanceled: %v", err)
	}
}

// TestRunNonFiringDeadlineIsInvisible is the determinism guard at the
// simulator level: a run that completes before its deadline returns
// byte-identical results and identical deterministic Stats whether or not
// a context deadline was attached, for serial and pooled execution alike.
func TestRunNonFiringDeadlineIsInvisible(t *testing.T) {
	const n = 8
	workload := func(out []int64) Program {
		return func(nd *Node) error {
			acc := int64(nd.ID)
			for i := 0; i < 50; i++ {
				vals := nd.BroadcastVal(acc)
				msgs := nd.Sync([]Packet{{Dst: int32((nd.ID + i) % n), M: Msg{A: vals[i%n]}}})
				for _, m := range msgs {
					acc += m.A
				}
			}
			out[nd.ID] = acc
			return nil
		}
	}
	type outcome struct {
		out   []int64
		stats Stats
	}
	var ref *outcome
	for _, workers := range []int{1, 4} {
		for _, withDeadline := range []bool{false, true} {
			ctx := context.Background()
			if withDeadline {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, time.Hour)
				defer cancel()
			}
			out := make([]int64, n)
			stats, err := Run(ctx, Config{N: n, Workers: workers}, workload(out))
			if err != nil {
				t.Fatalf("workers=%d deadline=%v: %v", workers, withDeadline, err)
			}
			stats.CollectiveTime = nil
			if ref == nil {
				ref = &outcome{out: out, stats: stats}
				continue
			}
			if !reflect.DeepEqual(out, ref.out) {
				t.Errorf("workers=%d deadline=%v: results differ: %v vs %v", workers, withDeadline, out, ref.out)
			}
			if !reflect.DeepEqual(stats, ref.stats) {
				t.Errorf("workers=%d deadline=%v: stats differ:\n%+v\nvs\n%+v", workers, withDeadline, stats, ref.stats)
			}
		}
	}
}
