package cc

import (
	"context"
	"fmt"
	"testing"
)

func TestRouteAllowsParallelMessages(t *testing.T) {
	// Unlike Sync, routing may carry several messages between one pair in
	// one invocation (the primitive models multi-round delivery).
	const n = 4
	stats, err := Run(context.Background(), Config{N: n}, func(nd *Node) error {
		var out []Packet
		if nd.ID == 0 {
			for i := 0; i < 5; i++ {
				out = append(out, Packet{Dst: 2, M: Msg{A: int64(i)}})
			}
		}
		in := nd.Route(out)
		if nd.ID == 2 && len(in) != 5 {
			return fmt.Errorf("got %d messages, want 5", len(in))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Charged["route"] < 2 {
		t.Errorf("route charge=%d, want >=2", stats.Charged["route"])
	}
}

func TestRouteInvalidDestination(t *testing.T) {
	_, err := Run(context.Background(), Config{N: 2}, func(nd *Node) error {
		nd.Route([]Packet{{Dst: -1}})
		return nil
	})
	if err == nil {
		t.Fatal("want invalid destination error")
	}
}

func TestSortEmpty(t *testing.T) {
	stats, err := Run(context.Background(), Config{N: 3}, func(nd *Node) error {
		res := nd.Sort(nil)
		if len(res.Recs) != 0 || res.Total != 0 {
			return fmt.Errorf("unexpected sort result: %+v", res)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalRounds() != 0 {
		t.Errorf("empty sort charged %d rounds", stats.TotalRounds())
	}
}

func TestSortUnevenInputs(t *testing.T) {
	// One node contributes everything; batches must still partition the
	// global order with correct Start offsets.
	const n = 4
	const total = 10
	got := make([][]int64, n)
	starts := make([]int, n)
	_, err := Run(context.Background(), Config{N: n}, func(nd *Node) error {
		var recs []Rec
		if nd.ID == 1 {
			for i := total - 1; i >= 0; i-- {
				recs = append(recs, Rec{Key: int64(i)})
			}
		}
		res := nd.Sort(recs)
		keys := make([]int64, len(res.Recs))
		for i, r := range res.Recs {
			keys[i] = r.Key
		}
		got[nd.ID] = keys
		starts[nd.ID] = res.Start
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var all []int64
	for v := 0; v < n; v++ {
		if starts[v] != len(all) {
			t.Errorf("node %d Start=%d, want %d", v, starts[v], len(all))
		}
		all = append(all, got[v]...)
	}
	for i, k := range all {
		if k != int64(i) {
			t.Fatalf("rank %d has key %d", i, k)
		}
	}
}

func TestManySmallRuns(t *testing.T) {
	// Engine lifecycle: many short runs must not leak goroutines or state.
	for i := 0; i < 50; i++ {
		_, err := Run(context.Background(), Config{N: 3}, func(nd *Node) error {
			nd.BroadcastVal(int64(nd.ID))
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestSingleNodeClique(t *testing.T) {
	stats, err := Run(context.Background(), Config{N: 1}, func(nd *Node) error {
		vals := nd.BroadcastVal(7)
		if len(vals) != 1 || vals[0] != 7 {
			return fmt.Errorf("bad broadcast: %v", vals)
		}
		if in := nd.Sync(nil); len(in) != 0 {
			return fmt.Errorf("unexpected inbox")
		}
		res := nd.Sort([]Rec{{Key: 3}, {Key: 1}})
		if len(res.Recs) != 2 || res.Recs[0].Key != 1 {
			return fmt.Errorf("bad sort: %+v", res)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SimRounds != 2 {
		t.Errorf("SimRounds=%d, want 2", stats.SimRounds)
	}
}

func TestRandDeterministicPerSeed(t *testing.T) {
	draw := func(seed int64) []int64 {
		out := make([]int64, 4)
		_, err := Run(context.Background(), Config{N: 4, Seed: seed}, func(nd *Node) error {
			out[nd.ID] = nd.Rand().Int63()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := draw(5), draw(5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different node randomness")
		}
	}
	c := draw(6)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical node randomness")
	}
}
