// Package cc implements a deterministic simulator for the Congested Clique
// model of distributed computing, the substrate assumed by Censor-Hillel,
// Dory, Korhonen and Leitersdorf, "Fast Approximate Shortest Paths in the
// Congested Clique" (PODC 2019).
//
// # Model
//
// A Congested Clique consists of n nodes on a fully connected network.
// Computation proceeds in synchronous rounds; in each round every ordered
// pair of nodes may exchange one message of O(log n) bits. A message in this
// simulator is a Msg: a fixed struct of four 64-bit words plus a small kind
// tag, which is the standard "constant number of O(log n)-bit fields"
// discipline (graph weights are bounded by n^c, so every field is O(log n)
// bits).
//
// # Execution
//
// Each node runs a node program (a Go function receiving a *Node) on its own
// goroutine. All communication happens through collective operations: every
// node must invoke the same collective in the same order (the algorithms in
// the paper are globally synchronous, so this matches their structure). The
// engine validates the model's bandwidth constraint - at most one message per
// ordered pair per round for Sync and Broadcast - and accounts rounds.
//
// Collectives execute on a sharded worker pool (Config.Workers; see
// DESIGN.md §5): because the model is round-synchronous, the engine holds
// every node's request before executing a collective, so delivery can be
// partitioned by destination (and gathering by sender) across
// runtime.GOMAXPROCS workers. Workers=1 reproduces the serial engine
// bit-for-bit; every worker count yields identical results and identical
// deterministic Stats, with wall-clock per collective kind reported in
// Stats.CollectiveTime.
//
// # Round accounting
//
// Two kinds of rounds are accounted separately (see Stats):
//
//   - simulated rounds: barrier steps actually executed (Sync, Broadcast);
//   - charged rounds: rounds charged by primitives the paper itself uses as
//     black boxes with cited bounds - Lenzen's routing and sorting [43] and
//     the deterministic hitting set of [52]. The engine implements their
//     semantics (real data movement, validated preconditions) and charges
//     rounds by the cited bound, tagged by primitive name.
//
// # Determinism
//
// Node programs are expected to be deterministic. Message delivery order is
// normalized (inboxes sorted by sender), global sorts break ties by sender
// and submission index, and per-node randomness (used only by explicitly
// seeded baseline algorithms) comes from PRNGs seeded by (run seed, node ID).
// Two runs with equal seeds produce identical transcripts and Stats.
package cc
