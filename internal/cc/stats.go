package cc

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Stats reports the communication cost of a run.
type Stats struct {
	// N is the number of nodes in the clique.
	N int
	// SimRounds counts barrier-synchronized rounds actually executed
	// (Sync and Broadcast steps).
	SimRounds int
	// Charged counts rounds charged by validated primitives (routing,
	// sorting, hitting set, ...), keyed by primitive tag. See package
	// documentation.
	Charged map[string]int
	// Messages counts point-to-point messages delivered (a broadcast
	// counts as n-1 messages).
	Messages int64
	// Phases attributes total rounds to the phase labels set via
	// Node.Phase; rounds before the first label are attributed to "".
	Phases map[string]int
	// CollectiveTime is the wall-clock time the engine spent executing
	// each collective kind ("sync", "broadcast", "route", "sort", ...),
	// including response distribution. It is purely observational - used
	// to measure the worker pool's speedup - and is excluded from the
	// determinism guarantee and from String.
	CollectiveTime map[string]time.Duration
}

// addTime attributes wall-clock time to a collective kind.
func (s *Stats) addTime(kind string, d time.Duration) {
	if s.CollectiveTime == nil {
		s.CollectiveTime = make(map[string]time.Duration)
	}
	s.CollectiveTime[kind] += d
}

// ExecTime is the total wall-clock time spent executing collectives.
func (s *Stats) ExecTime() time.Duration {
	var total time.Duration
	for _, d := range s.CollectiveTime {
		total += d
	}
	return total
}

// TotalRounds is the round complexity of the run: simulated plus charged.
func (s *Stats) TotalRounds() int {
	total := s.SimRounds
	for _, r := range s.Charged {
		total += r
	}
	return total
}

// ChargedRounds is the sum of all charged rounds across tags.
func (s *Stats) ChargedRounds() int {
	total := 0
	for _, r := range s.Charged {
		total += r
	}
	return total
}

// Words is the total number of payload words moved.
func (s *Stats) Words() int64 { return s.Messages * WordsPerMsg }

// Add accumulates o into s. It is used to aggregate multi-phase algorithms.
func (s *Stats) Add(o *Stats) {
	if o == nil {
		return
	}
	if s.N == 0 {
		s.N = o.N
	}
	s.SimRounds += o.SimRounds
	s.Messages += o.Messages
	if len(o.Charged) > 0 && s.Charged == nil {
		s.Charged = make(map[string]int, len(o.Charged))
	}
	for tag, r := range o.Charged {
		s.Charged[tag] += r
	}
	if len(o.Phases) > 0 && s.Phases == nil {
		s.Phases = make(map[string]int, len(o.Phases))
	}
	for tag, r := range o.Phases {
		s.Phases[tag] += r
	}
	if len(o.CollectiveTime) > 0 && s.CollectiveTime == nil {
		s.CollectiveTime = make(map[string]time.Duration, len(o.CollectiveTime))
	}
	for kind, d := range o.CollectiveTime {
		s.CollectiveTime[kind] += d
	}
}

// String renders a compact one-line summary, with charged rounds broken down
// by tag in deterministic order.
func (s *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "rounds=%d (sim=%d", s.TotalRounds(), s.SimRounds)
	tags := make([]string, 0, len(s.Charged))
	for tag := range s.Charged {
		tags = append(tags, tag)
	}
	sort.Strings(tags)
	for _, tag := range tags {
		fmt.Fprintf(&b, " %s=%d", tag, s.Charged[tag])
	}
	fmt.Fprintf(&b, ") msgs=%d", s.Messages)
	return b.String()
}
