package cc

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"
)

// DefaultMaxRounds bounds the total rounds of a run as a runaway guard.
const DefaultMaxRounds = 1 << 21

// Config configures a simulation run.
type Config struct {
	// N is the number of nodes. Must be >= 1.
	N int
	// Seed seeds per-node PRNGs (used only by explicitly randomized
	// algorithms; the paper's algorithms are deterministic).
	Seed int64
	// MaxRounds bounds total rounds; 0 means DefaultMaxRounds.
	MaxRounds int
	// Workers sizes the worker pool that executes collectives. 0 means
	// runtime.GOMAXPROCS(0) (falling back to serial execution for cliques
	// smaller than autoParMinN, where fan-out overhead dominates); 1
	// forces the serial engine. Every value produces identical results and
	// identical deterministic statistics - only wall-clock time (and the
	// observational Stats.CollectiveTime) changes. Negative values are
	// rejected.
	Workers int
}

// Program is a node program. It runs once per node; the same function is
// executed by all n nodes, distinguished by nd.ID. A non-nil error aborts
// the whole run.
type Program func(nd *Node) error

// ErrAborted is returned (wrapped) when a run is torn down because some node
// failed.
var ErrAborted = errors.New("cc: run aborted")

// ErrCanceled is returned (wrapped) when a run is torn down because its
// context was canceled or its deadline expired. The returned error also
// wraps the context's own error, so errors.Is matches both ErrCanceled and
// context.Canceled/context.DeadlineExceeded.
var ErrCanceled = errors.New("cc: run canceled")

// ErrRoundLimit is returned (wrapped) when a run exceeds Config.MaxRounds.
var ErrRoundLimit = errors.New("cc: round budget exceeded")

// canceled wraps the context's error under ErrCanceled so callers can
// errors.Is-match either the cc sentinel or the context sentinel.
func canceled(ctx context.Context) error {
	return fmt.Errorf("%w: %w", ErrCanceled, context.Cause(ctx))
}

type reqKind uint8

const (
	reqSync reqKind = iota + 1
	reqBcast
	reqRoute
	reqSort
	reqCharge
	reqPhase
	reqExit
)

func (k reqKind) String() string {
	switch k {
	case reqSync:
		return "sync"
	case reqBcast:
		return "broadcast"
	case reqRoute:
		return "route"
	case reqSort:
		return "sort"
	case reqCharge:
		return "charge"
	case reqPhase:
		return "phase"
	case reqExit:
		return "exit"
	default:
		return fmt.Sprintf("reqKind(%d)", uint8(k))
	}
}

type request struct {
	node    int
	kind    reqKind
	tag     string // charge tag; also consistency-checked across a collective
	rounds  int    // charge amount
	packets []Packet
	bval    int64
	recs    []Rec
	err     error // exit status
}

type response struct {
	msgs      []Msg
	vals      []int64 // broadcast result, shared read-only across nodes
	recs      []Rec
	batchSize int // sort: global batch size (node i holds ranks [i*batchSize, ...))
	total     int // sort: total records
	err       error
}

type engine struct {
	n         int
	cfg       Config
	ctx       context.Context
	pool      *pool
	reqs      chan *request
	resps     []chan response
	stats     Stats
	batch     []*request
	batchSize int
	curPhase  string
}

// Run executes prog on a fresh n-node Congested Clique and returns the
// communication statistics. Node programs communicate through collective
// operations on *Node; outputs are typically written to caller-owned slices
// indexed by node ID (disjoint writes, so no synchronization is needed).
//
// Cancellation: ctx is checked at every barrier step (each completed
// collective, in both the serial and worker-pool execution paths). When ctx
// is canceled or its deadline expires, the run tears down cleanly - every
// node program unwinds, all goroutines exit - and Run returns the Stats
// accumulated so far (a consistent partial prefix of the run) together with
// an error wrapping both ErrCanceled and the context's own sentinel.
// Barrier granularity bounds the cancellation latency: one in-flight
// collective may complete before the check fires (EXPERIMENTS.md E16).
// A run that completes without ctx firing is byte-identical - results and
// all deterministic Stats fields - to one launched with context.Background.
func Run(ctx context.Context, cfg Config, prog Program) (Stats, error) {
	if cfg.N < 1 {
		return Stats{}, fmt.Errorf("cc: invalid N=%d", cfg.N)
	}
	if err := ctx.Err(); err != nil {
		return Stats{N: cfg.N, Charged: make(map[string]int)}, canceled(ctx)
	}
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = DefaultMaxRounds
	}
	if cfg.Workers < 0 {
		return Stats{}, fmt.Errorf("cc: invalid Workers=%d", cfg.Workers)
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
		if cfg.N < autoParMinN {
			workers = 1
		}
	}
	if workers > cfg.N {
		workers = cfg.N
	}
	e := &engine{
		n:     cfg.N,
		cfg:   cfg,
		ctx:   ctx,
		reqs:  make(chan *request, cfg.N),
		resps: make([]chan response, cfg.N),
		batch: make([]*request, cfg.N),
		stats: Stats{N: cfg.N, Charged: make(map[string]int)},
	}
	for v := 0; v < cfg.N; v++ {
		e.resps[v] = make(chan response, 1)
	}
	e.pool = newPool(workers)
	defer e.pool.close()

	var wg sync.WaitGroup
	wg.Add(cfg.N)
	for v := 0; v < cfg.N; v++ {
		nd := &Node{ID: v, N: cfg.N, eng: e}
		go func() {
			defer wg.Done()
			e.reqs <- &request{node: nd.ID, kind: reqExit, err: runNode(nd, prog)}
		}()
	}

	err := e.coordinate()
	wg.Wait()
	return e.stats, err
}

// runNode executes the program for one node, converting panics (including
// the engine's internal abort signal) into errors.
func runNode(nd *Node, prog Program) (err error) {
	defer func() {
		r := recover()
		switch r := r.(type) {
		case nil:
		case abortSignal:
			err = r.err
		default:
			err = fmt.Errorf("cc: node %d panicked: %v\n%s", nd.ID, r, debug.Stack())
		}
	}()
	return prog(nd)
}

// abortSignal is panicked by Node collectives when the engine reports an
// error; runNode converts it back to an error.
type abortSignal struct{ err error }

// coordinate is the engine's control loop: it collects one request per live
// node, validates that they form a consistent collective, executes it, and
// responds. It returns when every node has exited.
//
// Cancellation enters here: between collectives the loop selects on
// ctx.Done(), and a fired context becomes the run's failure exactly like a
// node error - pending collectives are failed, every subsequent request is
// answered with the abort, and the loop drains until all node goroutines
// have unwound. The serial barrier-step check lives in execute; the
// worker-pool paths check again inside scatter/sort (parallel.go).
func (e *engine) coordinate() error {
	live := e.n
	var failure error
	done := e.ctx.Done()
	for live > 0 {
		var r *request
		select {
		case r = <-e.reqs:
		case <-done:
			done = nil // fire once; drain on the reqs path from here on
			if failure == nil {
				failure = canceled(e.ctx)
				e.failPending(failure)
			}
			continue
		}
		if r.kind == reqExit {
			live--
			if r.err != nil && failure == nil {
				failure = r.err
			}
			if failure == nil && e.batchSize > 0 {
				failure = fmt.Errorf("cc: node %d exited while %d node(s) wait in a %v collective", r.node, e.batchSize, e.batch0().kind)
			}
			if failure != nil {
				// Tear down: fail any nodes currently blocked in a
				// collective so they can unwind and exit.
				e.failPending(failure)
			}
			continue
		}
		if failure != nil {
			e.resps[r.node] <- response{err: fmt.Errorf("%w: %w", ErrAborted, failure)}
			continue
		}
		if e.batch[r.node] != nil {
			failure = fmt.Errorf("cc: node %d submitted two collectives without awaiting a response", r.node)
			e.failPending(failure)
			continue
		}
		e.batch[r.node] = r
		e.batchSize++
		if e.batchSize < live {
			continue
		}
		// A collective must involve every node: completing one after some
		// node already exited is a protocol violation regardless of
		// request arrival order.
		if live < e.n {
			failure = fmt.Errorf("cc: %v collective after %d node(s) exited (all nodes must run the same collective sequence)", e.batch0().kind, e.n-live)
			e.failPending(failure)
			continue
		}
		if err := e.execute(); err != nil {
			failure = err
			e.failPending(failure)
		}
	}
	return failure
}

func (e *engine) batch0() *request {
	for _, r := range e.batch {
		if r != nil {
			return r
		}
	}
	return nil
}

func (e *engine) failPending(err error) {
	for v, r := range e.batch {
		if r != nil {
			e.batch[v] = nil
			e.batchSize--
			e.resps[v] <- response{err: fmt.Errorf("%w: %w", ErrAborted, err)}
		}
	}
}

// execute runs one full collective. All slots in e.batch are non-nil for
// live nodes; exited nodes cannot have pending slots (coordinate errors out
// in that case), so a complete batch covers exactly the live nodes.
func (e *engine) execute() error {
	first := e.batch0()
	for _, r := range e.batch {
		if r == nil {
			continue
		}
		if r.kind != first.kind || r.tag != first.tag {
			return fmt.Errorf("cc: mismatched collectives: node %d called %v(%q) while node %d called %v(%q)",
				first.node, first.kind, first.tag, r.node, r.kind, r.tag)
		}
	}
	// Barrier-step cancellation check (serial path; the pool-sharded
	// bodies re-check between their stages): a fired context aborts before
	// the collective executes, so the stats prefix stays consistent.
	if e.ctx.Err() != nil {
		return canceled(e.ctx)
	}
	before := e.stats.TotalRounds()
	start := time.Now()
	par := e.pool.size > 1
	var err error
	switch first.kind {
	case reqSync:
		if par {
			err = e.execSyncPar()
		} else {
			err = e.execSync()
		}
	case reqBcast:
		if par {
			err = e.execBcastPar()
		} else {
			err = e.execBcast()
		}
	case reqRoute:
		if par {
			err = e.execRoutePar()
		} else {
			err = e.execRoute()
		}
	case reqSort:
		if par {
			err = e.execSortPar()
		} else {
			err = e.execSort()
		}
	case reqCharge:
		err = e.execCharge()
	case reqPhase:
		err = e.execPhase(first.tag)
	default:
		err = fmt.Errorf("cc: unknown collective %v", first.kind)
	}
	if err != nil {
		return err
	}
	e.stats.addTime(first.kind.String(), time.Since(start))
	if delta := e.stats.TotalRounds() - before; delta > 0 {
		if e.stats.Phases == nil {
			e.stats.Phases = make(map[string]int)
		}
		e.stats.Phases[e.curPhase] += delta
	}
	if total := e.stats.TotalRounds(); total > e.cfg.MaxRounds {
		return fmt.Errorf("%w: %d > MaxRounds=%d", ErrRoundLimit, total, e.cfg.MaxRounds)
	}
	return nil
}

// execPhase switches round attribution to a new phase label (free: no
// communication).
func (e *engine) execPhase(tag string) error {
	e.curPhase = tag
	e.respond(func(int) response { return response{} })
	return nil
}

// respond delivers responses and clears the batch.
func (e *engine) respond(mk func(v int) response) {
	for v, r := range e.batch {
		if r == nil {
			continue
		}
		e.batch[v] = nil
		e.batchSize--
		e.resps[v] <- mk(v)
	}
}

// execSync performs one synchronous round: each node sends at most one
// message per destination. Inboxes are sorted by sender.
func (e *engine) execSync() error {
	inbox := make([][]Msg, e.n)
	var msgs int64
	// Iterate senders in ID order so inboxes come out sorted by Src.
	for v, r := range e.batch {
		if r == nil {
			continue
		}
		seen := make(map[int32]struct{}, len(r.packets))
		for _, p := range r.packets {
			if p.Dst < 0 || int(p.Dst) >= e.n {
				return fmt.Errorf("cc: node %d sent to invalid destination %d", v, p.Dst)
			}
			if _, dup := seen[p.Dst]; dup {
				return fmt.Errorf("cc: node %d sent two messages to node %d in one round (link capacity is one message per round)", v, p.Dst)
			}
			seen[p.Dst] = struct{}{}
			m := p.M
			m.Src = int32(v)
			inbox[p.Dst] = append(inbox[p.Dst], m)
			msgs++
		}
	}
	e.stats.SimRounds++
	e.stats.Messages += msgs
	e.respond(func(v int) response { return response{msgs: inbox[v]} })
	return nil
}

// execBcast performs one broadcast round: each node announces one word to
// everyone. The result slice (indexed by sender) is shared read-only by all
// nodes, which keeps the simulation at O(n) memory for an O(n^2)-message
// round; node programs must not mutate it.
func (e *engine) execBcast() error {
	vals := make([]int64, e.n)
	for v, r := range e.batch {
		if r != nil {
			vals[v] = r.bval
		}
	}
	e.stats.SimRounds++
	e.stats.Messages += int64(e.n) * int64(e.n-1)
	e.respond(func(int) response { return response{vals: vals} })
	return nil
}

// execRoute implements the semantics of Lenzen's routing scheme [43]: an
// arbitrary message set is delivered, and the run is charged
// ceil(maxSend/n) + ceil(maxRecv/n) rounds, which is O(1) when every node
// sends and receives at most n messages - exactly the guarantee of [43] that
// the paper uses as a black-box primitive (§1.5).
func (e *engine) execRoute() error {
	inbox := make([][]Msg, e.n)
	maxSend := 0
	var msgs int64
	for v, r := range e.batch {
		if r == nil {
			continue
		}
		if len(r.packets) > maxSend {
			maxSend = len(r.packets)
		}
		for _, p := range r.packets {
			if p.Dst < 0 || int(p.Dst) >= e.n {
				return fmt.Errorf("cc: node %d routed to invalid destination %d", v, p.Dst)
			}
			m := p.M
			m.Src = int32(v)
			inbox[p.Dst] = append(inbox[p.Dst], m)
			msgs++
		}
	}
	maxRecv := 0
	for _, in := range inbox {
		if len(in) > maxRecv {
			maxRecv = len(in)
		}
	}
	if msgs > 0 {
		e.stats.Charged["route"] += ceilDiv(maxSend, e.n) + ceilDiv(maxRecv, e.n)
		e.stats.Messages += msgs
	}
	e.respond(func(v int) response { return response{msgs: inbox[v]} })
	return nil
}

// execSort implements the semantics of Lenzen's sorting scheme [43]: the
// union of all submitted records is sorted globally by (Key, sender,
// submission index) and node i receives the i-th batch of the global order.
// The charge is 3 rounds per ceil(maxInput/n) "load unit", constant when
// every node submits at most n records, per [43].
func (e *engine) execSort() error {
	total := 0
	maxIn := 0
	for _, r := range e.batch {
		if r == nil {
			continue
		}
		total += len(r.recs)
		if len(r.recs) > maxIn {
			maxIn = len(r.recs)
		}
	}
	all := make([]sortItem, 0, total)
	for v, r := range e.batch {
		if r == nil {
			continue
		}
		for i, rec := range r.recs {
			m := rec.M
			m.Src = int32(v)
			all = append(all, sortItem{key: rec.Key, src: int32(v), idx: int32(i), m: m})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].key != all[j].key {
			return all[i].key < all[j].key
		}
		if all[i].src != all[j].src {
			return all[i].src < all[j].src
		}
		return all[i].idx < all[j].idx
	})
	batchSize := ceilDiv(total, e.n)
	if total > 0 {
		e.stats.Charged["sort"] += 3 * ceilDiv(maxIn, e.n)
		e.stats.Messages += int64(total)
	}
	e.respond(func(v int) response {
		lo := v * batchSize
		hi := lo + batchSize
		if lo > total {
			lo = total
		}
		if hi > total {
			hi = total
		}
		out := make([]Rec, hi-lo)
		for i := lo; i < hi; i++ {
			out[i-lo] = Rec{Key: all[i].key, M: all[i].m}
		}
		return response{recs: out, batchSize: batchSize, total: total}
	})
	return nil
}

type sortItem struct {
	key      int64
	src, idx int32
	m        Msg
}

// execCharge charges rounds for a primitive used as a black box with a cited
// bound (e.g. the hitting-set construction of [52], Lemma 4). All nodes must
// agree on tag and amount.
func (e *engine) execCharge() error {
	first := e.batch0()
	for _, r := range e.batch {
		if r != nil && r.rounds != first.rounds {
			return fmt.Errorf("cc: mismatched charge amounts for tag %q: %d vs %d", first.tag, first.rounds, r.rounds)
		}
	}
	if first.rounds < 0 {
		return fmt.Errorf("cc: negative charge %d for tag %q", first.rounds, first.tag)
	}
	e.stats.Charged[first.tag] += first.rounds
	e.respond(func(int) response { return response{} })
	return nil
}

func ceilDiv(a, b int) int {
	if a <= 0 {
		return 0
	}
	return (a + b - 1) / b
}
