package cc

// WordsPerMsg is the number of 64-bit payload words carried by one message.
// Graph weights are bounded by n^c (paper §1.5), so each word is O(log n)
// bits and a message is O(log n) bits total.
const WordsPerMsg = 4

// Msg is one Congested Clique message: a small constant number of
// O(log n)-bit fields. The meaning of A..D is defined by the algorithm that
// sends the message; Kind disambiguates message types within one algorithm.
type Msg struct {
	Src  int32 // filled in by the engine on delivery
	Kind uint8
	A    int64
	B    int64
	C    int64
	D    int64
}

// Packet is a message addressed to a destination node.
type Packet struct {
	Dst int32
	M   Msg
}

// Rec is a record participating in a global sort: a sort key plus a message
// payload that travels with it.
type Rec struct {
	Key int64
	M   Msg
}
