package cc

import (
	"math/rand"
)

// Node is the handle a node program uses to communicate. All methods that
// move data are collectives: every node must call the same method (with a
// consistent tag) in the same order, mirroring the globally synchronous
// structure of the paper's algorithms. A violated model constraint (e.g.
// two messages on one link in one round) aborts the whole run with an error
// returned from Run.
type Node struct {
	// ID is this node's identifier in [0, N).
	ID int
	// N is the clique size.
	N int

	eng *engine
	rng *rand.Rand
}

func (nd *Node) do(r *request) response {
	r.node = nd.ID
	nd.eng.reqs <- r
	resp := <-nd.eng.resps[nd.ID]
	if resp.err != nil {
		// Unwind the node program; runNode converts this back to an error.
		panic(abortSignal{err: resp.err})
	}
	return resp
}

// Sync performs one synchronous round. Each packet goes to a distinct
// destination (one message per link per round, the model's bandwidth
// constraint). It returns the messages received this round, sorted by
// sender. Passing nil participates in the round without sending.
func (nd *Node) Sync(out []Packet) []Msg {
	return nd.do(&request{kind: reqSync, packets: out}).msgs
}

// BroadcastVal performs one broadcast round in which every node announces
// one word. The returned slice is indexed by sender and shared read-only
// between all nodes; callers must not mutate it.
func (nd *Node) BroadcastVal(x int64) []int64 {
	return nd.do(&request{kind: reqBcast, bval: x}).vals
}

// Route delivers an arbitrary addressed message set using the semantics of
// Lenzen's routing scheme [43]; see the package documentation for the round
// charge. Received messages are sorted by (sender, submission order).
func (nd *Node) Route(out []Packet) []Msg {
	return nd.do(&request{kind: reqRoute, packets: out}).msgs
}

// SortResult is the outcome of a global Sort at one node.
type SortResult struct {
	// Recs is this node's batch of the global sorted order.
	Recs []Rec
	// Start is the global rank of Recs[0]; Recs[i] has global rank Start+i.
	Start int
	// BatchSize is the global batch size (every node's batch has this
	// size, except possibly truncated tail batches).
	BatchSize int
	// Total is the global number of records.
	Total int
}

// Rank returns the global rank of Recs[i].
func (sr *SortResult) Rank(i int) int { return sr.Start + i }

// Sort globally sorts the union of all nodes' records by (Key, sender,
// submission index) using the semantics of Lenzen's sorting scheme [43] and
// returns this node's batch of the sorted order together with its position.
func (nd *Node) Sort(recs []Rec) SortResult {
	resp := nd.do(&request{kind: reqSort, recs: recs})
	start := nd.ID * resp.batchSize
	if start > resp.total {
		start = resp.total
	}
	return SortResult{Recs: resp.recs, Start: start, BatchSize: resp.batchSize, Total: resp.total}
}

// Charge charges rounds for a primitive with a cited round bound that is
// used as a black box (e.g. Lemma 4's hitting set, [52]). All nodes must
// agree on tag and amount.
func (nd *Node) Charge(tag string, rounds int) {
	nd.do(&request{kind: reqCharge, tag: tag, rounds: rounds})
}

// Phase labels the following rounds for the per-phase breakdown in Stats.
// It is a collective (all nodes must call it with the same label) and
// costs no rounds.
func (nd *Node) Phase(label string) {
	nd.do(&request{kind: reqPhase, tag: label})
}

// Rand returns this node's deterministic PRNG, seeded by (run seed, node
// ID). The paper's algorithms are deterministic and do not use it; seeded
// baselines (e.g. Baswana-Sen spanners) do.
func (nd *Node) Rand() *rand.Rand {
	if nd.rng == nil {
		seed := nd.eng.cfg.Seed*0x7F4A7C15 + int64(nd.ID)*0x1CE4E5B9 + 1
		nd.rng = rand.New(rand.NewSource(seed))
	}
	return nd.rng
}
