package cc

import (
	"context"
	"strings"
	"testing"
)

func TestPhaseAttribution(t *testing.T) {
	stats, err := Run(context.Background(), Config{N: 4}, func(nd *Node) error {
		nd.Sync(nil) // attributed to ""
		nd.Phase("alpha")
		nd.Sync(nil)
		nd.BroadcastVal(0)
		nd.Phase("beta")
		nd.Charge("x", 5)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := stats.Phases[""]; got != 1 {
		t.Errorf("unlabeled rounds=%d, want 1", got)
	}
	if got := stats.Phases["alpha"]; got != 2 {
		t.Errorf("alpha rounds=%d, want 2", got)
	}
	if got := stats.Phases["beta"]; got != 5 {
		t.Errorf("beta rounds=%d, want 5", got)
	}
	total := 0
	for _, r := range stats.Phases {
		total += r
	}
	if total != stats.TotalRounds() {
		t.Errorf("phase rounds sum %d != total %d", total, stats.TotalRounds())
	}
}

func TestPhaseIsFree(t *testing.T) {
	stats, err := Run(context.Background(), Config{N: 3}, func(nd *Node) error {
		nd.Phase("only")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalRounds() != 0 {
		t.Errorf("phase switch cost %d rounds", stats.TotalRounds())
	}
}

func TestPhaseMismatchFails(t *testing.T) {
	_, err := Run(context.Background(), Config{N: 2}, func(nd *Node) error {
		if nd.ID == 0 {
			nd.Phase("a")
		} else {
			nd.Phase("b")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "mismatched collectives") {
		t.Fatalf("want mismatched collectives error, got %v", err)
	}
}

func TestStatsAddMergesPhases(t *testing.T) {
	a := Stats{Phases: map[string]int{"x": 1}}
	b := Stats{Phases: map[string]int{"x": 2, "y": 3}}
	a.Add(&b)
	if a.Phases["x"] != 3 || a.Phases["y"] != 3 {
		t.Errorf("merged phases: %v", a.Phases)
	}
}
