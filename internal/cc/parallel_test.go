package cc

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

// mixedWorkload exercises every collective kind: sync fan-out, broadcast,
// unbalanced routes, a global sort, charges and phase labels. Outputs are
// written to caller-owned per-node slices.
func mixedWorkload(out [][]int64) Program {
	return func(nd *Node) error {
		n := nd.N
		nd.Phase("fanout")
		// Sync: node v sends v*n+i to each destination i except itself.
		pkts := make([]Packet, 0, n-1)
		for i := 0; i < n; i++ {
			if i == nd.ID {
				continue
			}
			pkts = append(pkts, Packet{Dst: int32(i), M: Msg{A: int64(nd.ID*n + i)}})
		}
		for _, m := range nd.Sync(pkts) {
			out[nd.ID] = append(out[nd.ID], m.A)
		}
		// Broadcast one word.
		vals := nd.BroadcastVal(int64(nd.ID) * 7)
		out[nd.ID] = append(out[nd.ID], vals...)
		nd.Phase("shuffle")
		// Route: a skewed all-to-all (node v sends v+1 messages to each of
		// the first few nodes) plus self-addressed messages.
		var rpkts []Packet
		for i := 0; i <= nd.ID%5; i++ {
			for d := 0; d < n; d += 3 {
				rpkts = append(rpkts, Packet{Dst: int32(d), M: Msg{A: int64(nd.ID), B: int64(i), C: int64(d)}})
			}
		}
		for _, m := range nd.Route(rpkts) {
			out[nd.ID] = append(out[nd.ID], m.A, m.B, m.C)
		}
		// Sort: keys interleave across nodes, with deliberate ties.
		recs := make([]Rec, 0, 4)
		for i := 0; i < 4; i++ {
			recs = append(recs, Rec{Key: int64((nd.ID + i) % 9), M: Msg{A: int64(nd.ID*100 + i)}})
		}
		res := nd.Sort(recs)
		out[nd.ID] = append(out[nd.ID], int64(res.Start), int64(res.BatchSize), int64(res.Total))
		for _, r := range res.Recs {
			out[nd.ID] = append(out[nd.ID], r.Key, r.M.A)
		}
		nd.Charge("blackbox", 3)
		return nil
	}
}

// clearTime strips the observational wall-clock map so Stats can be
// compared with reflect.DeepEqual across worker counts.
func clearTime(s Stats) Stats {
	s.CollectiveTime = nil
	return s
}

// TestWorkersProduceIdenticalRuns: for several clique sizes, every worker
// count must yield byte-identical outputs and deterministic statistics -
// the engine's core parallelism contract.
func TestWorkersProduceIdenticalRuns(t *testing.T) {
	for _, n := range []int{3, 5, 16, 33, 64} {
		var refStats Stats
		var refOut [][]int64
		for _, w := range []int{1, 2, 3, 4, 8} {
			out := make([][]int64, n)
			stats, err := Run(context.Background(), Config{N: n, Workers: w}, mixedWorkload(out))
			if err != nil {
				t.Fatalf("n=%d workers=%d: %v", n, w, err)
			}
			if w == 1 {
				refStats, refOut = stats, out
				continue
			}
			if !reflect.DeepEqual(clearTime(stats), clearTime(refStats)) {
				t.Errorf("n=%d workers=%d: stats differ from serial:\n%+v\nvs\n%+v", n, w, clearTime(stats), clearTime(refStats))
			}
			if !reflect.DeepEqual(out, refOut) {
				t.Errorf("n=%d workers=%d: outputs differ from serial", n, w)
			}
		}
	}
}

// TestParallelSortProperty mirrors TestSortPropertyRandom on the parallel
// path: concatenated batches must be the sorted global multiset.
func TestParallelSortProperty(t *testing.T) {
	prop := func(raw []int16, nRaw uint8) bool {
		n := int(nRaw)%7 + 2
		keys := make([]int64, len(raw))
		for i, k := range raw {
			keys[i] = int64(k)
		}
		batches := make([][]int64, n)
		_, err := Run(context.Background(), Config{N: n, Workers: 4}, func(nd *Node) error {
			var recs []Rec
			for i, k := range keys {
				if i%n == nd.ID {
					recs = append(recs, Rec{Key: k})
				}
			}
			res := nd.Sort(recs)
			out := make([]int64, len(res.Recs))
			for i, r := range res.Recs {
				out[i] = r.Key
			}
			batches[nd.ID] = out
			return nil
		})
		if err != nil {
			return false
		}
		var all []int64
		for _, b := range batches {
			all = append(all, b...)
		}
		want := append([]int64(nil), keys...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		return reflect.DeepEqual(all, want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestParallelValidation: model violations must be caught on the parallel
// path with the same error text as the serial engine.
func TestParallelValidation(t *testing.T) {
	_, err := Run(context.Background(), Config{N: 4, Workers: 4}, func(nd *Node) error {
		nd.Sync([]Packet{{Dst: 1, M: Msg{A: 1}}, {Dst: 1, M: Msg{A: 2}}})
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "link capacity") {
		t.Errorf("want link capacity error, got %v", err)
	}
	_, err = Run(context.Background(), Config{N: 4, Workers: 4}, func(nd *Node) error {
		nd.Sync([]Packet{{Dst: 99}})
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "sent to invalid destination") {
		t.Errorf("want invalid destination error, got %v", err)
	}
	_, err = Run(context.Background(), Config{N: 4, Workers: 4}, func(nd *Node) error {
		nd.Route([]Packet{{Dst: -1}})
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "routed to invalid destination") {
		t.Errorf("want routed invalid destination error, got %v", err)
	}
}

func TestNegativeWorkersRejected(t *testing.T) {
	if _, err := Run(context.Background(), Config{N: 4, Workers: -1}, func(*Node) error { return nil }); err == nil {
		t.Fatal("want error for Workers=-1")
	}
}

// TestCollectiveTimeRecorded: the engine must attribute wall-clock time to
// the collective kinds a run actually used.
func TestCollectiveTimeRecorded(t *testing.T) {
	for _, w := range []int{1, 4} {
		stats, err := Run(context.Background(), Config{N: 8, Workers: w}, func(nd *Node) error {
			nd.Sync(nil)
			nd.BroadcastVal(1)
			nd.Route([]Packet{{Dst: int32((nd.ID + 1) % nd.N)}})
			nd.Sort([]Rec{{Key: int64(nd.ID)}})
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for _, kind := range []string{"sync", "broadcast", "route", "sort"} {
			if _, ok := stats.CollectiveTime[kind]; !ok {
				t.Errorf("workers=%d: no CollectiveTime for %q: %v", w, kind, stats.CollectiveTime)
			}
		}
		if stats.ExecTime() <= 0 {
			t.Errorf("workers=%d: ExecTime=%v, want > 0", w, stats.ExecTime())
		}
	}
}

// TestSpans: shard arithmetic must partition [0, n) exactly, with of() the
// inverse of bounds().
func TestSpans(t *testing.T) {
	for _, n := range []int{1, 2, 5, 7, 16, 100, 101} {
		for _, k := range []int{1, 2, 3, 8, 200} {
			sp := makeSpans(n, k)
			next := 0
			for i := 0; i < sp.k; i++ {
				lo, hi := sp.bounds(i)
				if lo != next {
					t.Fatalf("n=%d k=%d: shard %d starts at %d, want %d", n, k, i, lo, next)
				}
				if hi < lo {
					t.Fatalf("n=%d k=%d: shard %d empty-inverted [%d,%d)", n, k, i, lo, hi)
				}
				for x := lo; x < hi; x++ {
					if sp.of(x) != i {
						t.Fatalf("n=%d k=%d: of(%d)=%d, want %d", n, k, x, sp.of(x), i)
					}
				}
				next = hi
			}
			if next != n {
				t.Fatalf("n=%d k=%d: shards cover [0,%d), want [0,%d)", n, k, next, n)
			}
		}
	}
}

// engineStress is the benchmark workload: R route rounds with n messages
// per node, plus a global sort of n records per node, plus broadcasts -
// the collective mix of the paper's distance-product algorithms.
func engineStress(rounds int) Program {
	return func(nd *Node) error {
		n := nd.N
		for rep := 0; rep < rounds; rep++ {
			pkts := make([]Packet, n)
			for i := range pkts {
				pkts[i] = Packet{Dst: int32(i), M: Msg{A: int64(nd.ID ^ rep), B: int64(i)}}
			}
			if got := len(nd.Route(pkts)); got != n {
				return fmt.Errorf("node %d: %d messages, want %d", nd.ID, got, n)
			}
			recs := make([]Rec, n)
			for i := range recs {
				recs[i] = Rec{Key: int64((nd.ID*31 + i*17 + rep) % 1024), M: Msg{A: int64(i)}}
			}
			nd.Sort(recs)
			nd.BroadcastVal(int64(nd.ID))
		}
		return nil
	}
}

// BenchmarkEngineParallel measures the worker pool's wall-clock speedup on
// a collective-heavy workload at n>=256. On multicore hardware workers=P
// should be >=2x faster than workers=1; Stats are identical in both (the
// sub-benchmarks verify this). Single-core machines show parity.
func BenchmarkEngineParallel(b *testing.B) {
	const n = 256
	const rounds = 4
	for _, w := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("n=%d/workers=%d", n, w), func(b *testing.B) {
			var ref string
			for i := 0; i < b.N; i++ {
				stats, err := Run(context.Background(), Config{N: n, Workers: w}, engineStress(rounds))
				if err != nil {
					b.Fatal(err)
				}
				if ref == "" {
					ref = stats.String()
				} else if got := stats.String(); got != ref {
					b.Fatalf("stats changed between runs: %s vs %s", got, ref)
				}
			}
		})
	}
}
