package cc

import (
	"fmt"
	"sort"
	"sync"
)

// ctxStep is the worker-pool counterpart of the serial barrier-step check:
// the sharded collective bodies call it between their stages so a fired
// context.Context aborts a large collective between pool fan-outs instead
// of only at the next barrier. It returns nil while the context is live.
func (e *engine) ctxStep() error {
	if e.ctx.Err() != nil {
		return canceled(e.ctx)
	}
	return nil
}

// autoParMinN is the clique size below which a default (Workers=0) run
// stays serial: collective bodies on tiny cliques are too small to
// amortize the fan-out cost of the pool. An explicit Workers>1 always
// uses the pool, whatever the size.
const autoParMinN = 64

// pool is the engine's sharded worker pool. Collectives are embarrassingly
// parallel across destination (and sender) nodes because the model is
// round-synchronous: by the time the coordinator executes a collective it
// holds every node's request, so the body can be partitioned into disjoint
// shards with no locking. A pool of size 1 executes everything inline on
// the coordinator goroutine, reproducing the serial engine exactly.
type pool struct {
	size int
	jobs chan func()
}

func newPool(size int) *pool {
	p := &pool{size: size}
	if size > 1 {
		p.jobs = make(chan func())
		for i := 0; i < size; i++ {
			go func() {
				for f := range p.jobs {
					f()
				}
			}()
		}
	}
	return p
}

func (p *pool) close() {
	if p.jobs != nil {
		close(p.jobs)
	}
}

// run executes the tasks concurrently on the pool and returns when all of
// them have finished. It must only be called from the coordinator
// goroutine (tasks never submit nested tasks, so there is no deadlock).
func (p *pool) run(tasks []func()) {
	if p.jobs == nil || len(tasks) == 1 {
		for _, t := range tasks {
			t()
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(tasks))
	for _, t := range tasks {
		t := t
		p.jobs <- func() {
			defer wg.Done()
			t()
		}
	}
	wg.Wait()
}

// spans splits [0, n) into k balanced contiguous ranges: the first n%k
// spans have ceil(n/k) elements, the rest floor(n/k). Both directions
// (bounds and of) are pure arithmetic, so shard assignment is
// deterministic for a given (n, k).
type spans struct{ n, k int }

func makeSpans(n, k int) spans {
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	return spans{n: n, k: k}
}

func (s spans) bounds(i int) (lo, hi int) {
	q, r := s.n/s.k, s.n%s.k
	if i < r {
		lo = i * (q + 1)
		return lo, lo + q + 1
	}
	lo = r*(q+1) + (i-r)*q
	return lo, lo + q
}

func (s spans) of(x int) int {
	q, r := s.n/s.k, s.n%s.k
	if x < r*(q+1) {
		return x / (q + 1)
	}
	return r + (x-r*(q+1))/q
}

// forShards runs fn(shard, lo, hi) for every shard of sp on the pool and
// waits for completion. Shards own disjoint index ranges, so fn may write
// to per-index state without synchronization.
func (e *engine) forShards(sp spans, fn func(shard, lo, hi int)) {
	tasks := make([]func(), sp.k)
	for i := 0; i < sp.k; i++ {
		i := i
		lo, hi := sp.bounds(i)
		tasks[i] = func() { fn(i, lo, hi) }
	}
	e.pool.run(tasks)
}

// routedPkt is a packet that has been stamped with its sender and bucketed
// by destination shard during the scatter's first stage.
type routedPkt struct {
	dst int32
	m   Msg
}

// scatter builds the per-destination inboxes for a sync or route collective
// with a two-stage shuffle over the pool:
//
//   - stage 1 partitions senders into contiguous ID ranges; each shard
//     validates its senders' packets and buckets them by destination shard,
//     preserving sender order (and submission order within one sender);
//   - stage 2 partitions destinations; each shard concatenates the buckets
//     addressed to it, walking sender shards in ascending order so inboxes
//     come out sorted by Src exactly like the serial engine's.
//
// Each packet is touched twice regardless of pool size, so the work (and
// every byte of the result) is identical to the serial path; only the
// wall-clock changes.
func (e *engine) scatter(kind reqKind) (inbox [][]Msg, maxSend int, msgs int64, err error) {
	n := e.n
	sp := makeSpans(n, e.pool.size)
	k := sp.k
	dupCheck := kind == reqSync
	buckets := make([][][]routedPkt, k)
	errs := make([]error, k)
	counts := make([]int64, k)
	sendMax := make([]int, k)
	e.forShards(sp, func(s, lo, hi int) {
		bk := make([][]routedPkt, k)
		var seen []int32 // last sender stamped per destination (dup detection)
		if dupCheck {
			seen = make([]int32, n)
			for i := range seen {
				seen[i] = -1
			}
		}
		for v := lo; v < hi; v++ {
			r := e.batch[v]
			if r == nil {
				continue
			}
			if len(r.packets) > sendMax[s] {
				sendMax[s] = len(r.packets)
			}
			for _, p := range r.packets {
				if p.Dst < 0 || int(p.Dst) >= n {
					verb := "routed"
					if dupCheck {
						verb = "sent"
					}
					errs[s] = fmt.Errorf("cc: node %d %s to invalid destination %d", v, verb, p.Dst)
					return
				}
				if dupCheck {
					if seen[p.Dst] == int32(v) {
						errs[s] = fmt.Errorf("cc: node %d sent two messages to node %d in one round (link capacity is one message per round)", v, p.Dst)
						return
					}
					seen[p.Dst] = int32(v)
				}
				m := p.M
				m.Src = int32(v)
				d := sp.of(int(p.Dst))
				bk[d] = append(bk[d], routedPkt{dst: p.Dst, m: m})
			}
			counts[s] += int64(len(r.packets))
		}
		buckets[s] = bk
	})
	// Report the error of the lowest sender shard: shards scan senders in
	// ascending ID order, so this is the same violation the serial engine
	// would have reported first.
	for _, shardErr := range errs {
		if shardErr != nil {
			return nil, 0, 0, shardErr
		}
	}
	if err := e.ctxStep(); err != nil {
		return nil, 0, 0, err
	}
	inbox = make([][]Msg, n)
	e.forShards(sp, func(d, lo, hi int) {
		cnt := make([]int, hi-lo)
		for s := 0; s < k; s++ {
			for _, p := range buckets[s][d] {
				cnt[int(p.dst)-lo]++
			}
		}
		for j, c := range cnt {
			if c > 0 {
				inbox[lo+j] = make([]Msg, 0, c)
			}
		}
		for s := 0; s < k; s++ {
			for _, p := range buckets[s][d] {
				inbox[p.dst] = append(inbox[p.dst], p.m)
			}
		}
	})
	for s := 0; s < k; s++ {
		msgs += counts[s]
		if sendMax[s] > maxSend {
			maxSend = sendMax[s]
		}
	}
	return inbox, maxSend, msgs, nil
}

// execSyncPar is the pool-sharded counterpart of execSync.
func (e *engine) execSyncPar() error {
	inbox, _, msgs, err := e.scatter(reqSync)
	if err != nil {
		return err
	}
	e.stats.SimRounds++
	e.stats.Messages += msgs
	e.respond(func(v int) response { return response{msgs: inbox[v]} })
	return nil
}

// execRoutePar is the pool-sharded counterpart of execRoute.
func (e *engine) execRoutePar() error {
	inbox, maxSend, msgs, err := e.scatter(reqRoute)
	if err != nil {
		return err
	}
	maxRecv := 0
	for _, in := range inbox {
		if len(in) > maxRecv {
			maxRecv = len(in)
		}
	}
	if msgs > 0 {
		e.stats.Charged["route"] += ceilDiv(maxSend, e.n) + ceilDiv(maxRecv, e.n)
		e.stats.Messages += msgs
	}
	e.respond(func(v int) response { return response{msgs: inbox[v]} })
	return nil
}

// bcastChunkMinN is the clique size below which the broadcast gather runs
// inline: copying one word per node is so cheap that pool dispatch costs
// more than it saves.
const bcastChunkMinN = 4096

// execBcastPar is the pool-sharded counterpart of execBcast: the gather of
// one announced word per node is chunked across the pool (for cliques
// large enough to amortize the fan-out).
func (e *engine) execBcastPar() error {
	workers := e.pool.size
	if e.n < bcastChunkMinN {
		workers = 1
	}
	vals := make([]int64, e.n)
	e.forShards(makeSpans(e.n, workers), func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			if r := e.batch[v]; r != nil {
				vals[v] = r.bval
			}
		}
	})
	e.stats.SimRounds++
	e.stats.Messages += int64(e.n) * int64(e.n-1)
	e.respond(func(int) response { return response{vals: vals} })
	return nil
}

// execSortPar is the pool-sharded counterpart of execSort: per-node runs
// are sorted in parallel (sharded by sender), combined by a parallel
// pairwise merge tree under the full (Key, sender, index) order, and the
// output batches are materialized in parallel (sharded by destination).
// The comparator is a strict total order - (sender, index) pairs are
// unique - so the merged order is exactly the serial sort.Slice order.
func (e *engine) execSortPar() error {
	n := e.n
	sp := makeSpans(n, e.pool.size)
	runs := make([][]sortItem, n)
	maxInShard := make([]int, sp.k)
	e.forShards(sp, func(s, lo, hi int) {
		for v := lo; v < hi; v++ {
			r := e.batch[v]
			if r == nil || len(r.recs) == 0 {
				continue
			}
			if len(r.recs) > maxInShard[s] {
				maxInShard[s] = len(r.recs)
			}
			run := make([]sortItem, len(r.recs))
			for i, rec := range r.recs {
				m := rec.M
				m.Src = int32(v)
				run[i] = sortItem{key: rec.Key, src: int32(v), idx: int32(i), m: m}
			}
			sort.Slice(run, func(i, j int) bool {
				if run[i].key != run[j].key {
					return run[i].key < run[j].key
				}
				return run[i].idx < run[j].idx // src is constant within a run
			})
			runs[v] = run
		}
	})
	total := 0
	for _, run := range runs {
		total += len(run)
	}
	maxIn := 0
	for _, m := range maxInShard {
		if m > maxIn {
			maxIn = m
		}
	}
	if err := e.ctxStep(); err != nil {
		return err
	}
	all := e.mergeRunTree(runs)
	batchSize := ceilDiv(total, n)
	if total > 0 {
		e.stats.Charged["sort"] += 3 * ceilDiv(maxIn, n)
		e.stats.Messages += int64(total)
	}
	outs := make([][]Rec, n)
	e.forShards(sp, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			bLo, bHi := v*batchSize, v*batchSize+batchSize
			if bLo > total {
				bLo = total
			}
			if bHi > total {
				bHi = total
			}
			out := make([]Rec, bHi-bLo)
			for i := bLo; i < bHi; i++ {
				out[i-bLo] = Rec{Key: all[i].key, M: all[i].m}
			}
			outs[v] = out
		}
	})
	e.respond(func(v int) response { return response{recs: outs[v], batchSize: batchSize, total: total} })
	return nil
}

// mergeRunTree merges pre-sorted runs into one globally sorted slice with a
// pairwise merge tree; merges within one level run concurrently on the
// pool. The order is independent of the merge shape because itemLess is a
// strict total order.
func (e *engine) mergeRunTree(runs [][]sortItem) []sortItem {
	cur := make([][]sortItem, 0, len(runs))
	for _, r := range runs {
		if len(r) > 0 {
			cur = append(cur, r)
		}
	}
	if len(cur) == 0 {
		return nil
	}
	for len(cur) > 1 {
		pairs := len(cur) / 2
		next := make([][]sortItem, (len(cur)+1)/2)
		tasks := make([]func(), pairs)
		for i := 0; i < pairs; i++ {
			i := i
			a, b := cur[2*i], cur[2*i+1]
			tasks[i] = func() { next[i] = mergeRuns(a, b) }
		}
		if len(cur)%2 == 1 {
			next[pairs] = cur[len(cur)-1]
		}
		e.pool.run(tasks)
		cur = next
	}
	return cur[0]
}

func itemLess(a, b sortItem) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.idx < b.idx
}

func mergeRuns(a, b []sortItem) []sortItem {
	out := make([]sortItem, 0, len(a)+len(b))
	for len(a) > 0 && len(b) > 0 {
		if itemLess(a[0], b[0]) {
			out = append(out, a[0])
			a = a[1:]
		} else {
			out = append(out, b[0])
			b = b[1:]
		}
	}
	out = append(out, a...)
	return append(out, b...)
}
