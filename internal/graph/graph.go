// Package graph provides the weighted undirected graph representation shared
// by all algorithms, plus sequential ground-truth computations (Dijkstra over
// the plain and augmented min-plus orders, BFS, diameter, shortest-path
// diameter) used to verify the distributed algorithms and measure stretch.
package graph

import (
	"container/heap"
	"fmt"

	"github.com/congestedclique/ccsp/internal/matrix"
	"github.com/congestedclique/ccsp/internal/semiring"
)

// Edge is a directed half-edge in an adjacency list.
type Edge struct {
	To int32
	W  int64
}

// Graph is an undirected graph with non-negative integer edge weights
// (paper §1.5). Both half-edges of every undirected edge are stored.
type Graph struct {
	N   int
	Adj [][]Edge
}

// New returns an empty graph on n nodes.
func New(n int) *Graph {
	return &Graph{N: n, Adj: make([][]Edge, n)}
}

// AddEdge adds the undirected edge {u, v} with weight w. Self-loops and
// negative weights are rejected; parallel edges keep the lighter weight at
// query time (both are stored).
func (g *Graph) AddEdge(u, v int, w int64) error {
	if u == v {
		return fmt.Errorf("graph: self-loop at %d", u)
	}
	if u < 0 || v < 0 || u >= g.N || v >= g.N {
		return fmt.Errorf("graph: edge (%d,%d) out of range", u, v)
	}
	if w < 0 {
		return fmt.Errorf("graph: negative weight %d", w)
	}
	g.Adj[u] = append(g.Adj[u], Edge{To: int32(v), W: w})
	g.Adj[v] = append(g.Adj[v], Edge{To: int32(u), W: w})
	return nil
}

// MustAddEdge is AddEdge for statically valid construction code.
func (g *Graph) MustAddEdge(u, v int, w int64) {
	if err := g.AddEdge(u, v, w); err != nil {
		panic(err)
	}
}

// Clone returns a deep copy: mutating the copy's adjacency lists (or the
// original's) never affects the other. Used by the engine to decouple its
// cached artifacts from later mutation of the caller's graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{N: g.N, Adj: make([][]Edge, g.N)}
	for v, adj := range g.Adj {
		if len(adj) == 0 {
			continue
		}
		c.Adj[v] = append(make([]Edge, 0, len(adj)), adj...)
	}
	return c
}

// M returns the number of stored half-edges divided by two.
func (g *Graph) M() int {
	total := 0
	for _, adj := range g.Adj {
		total += len(adj)
	}
	return total / 2
}

// MaxW returns the maximum edge weight (at least 1 for use in bounds).
func (g *Graph) MaxW() int64 {
	var mx int64 = 1
	for _, adj := range g.Adj {
		for _, e := range adj {
			if e.W > mx {
				mx = e.W
			}
		}
	}
	return mx
}

// MaxDegree returns the maximum node degree.
func (g *Graph) MaxDegree() int {
	mx := 0
	for _, adj := range g.Adj {
		if len(adj) > mx {
			mx = len(adj)
		}
	}
	return mx
}

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return len(g.Adj[v]) }

// AugSemiring returns the augmented min-plus semiring sized for this graph:
// weights up to n·maxW and hop counts up to n.
func (g *Graph) AugSemiring() semiring.AugMinPlus {
	return semiring.NewAugMinPlus(int64(g.N)*g.MaxW()+1, int64(g.N)+1)
}

// WeightRow returns row v of the augmented weight matrix W of §3.1:
// (0,0) on the diagonal, (w(v,u), 1) for edges, implicit (∞,∞) elsewhere.
// Parallel edges collapse to the lightest.
func (g *Graph) WeightRow(v int) matrix.Row[semiring.WH] {
	row := make(matrix.Row[semiring.WH], 0, len(g.Adj[v])+1)
	row = append(row, matrix.Entry[semiring.WH]{Col: int32(v), Val: semiring.WH{}})
	for _, e := range g.Adj[v] {
		row = append(row, matrix.Entry[semiring.WH]{Col: e.To, Val: semiring.WH{W: e.W, H: 1}})
	}
	row = matrix.SortRow(row)
	// Collapse duplicate columns, keeping the lex-smallest.
	out := row[:0]
	for _, e := range row {
		if len(out) > 0 && out[len(out)-1].Col == e.Col {
			if semiring.LessWH(e.Val, out[len(out)-1].Val) {
				out[len(out)-1].Val = e.Val
			}
			continue
		}
		out = append(out, e)
	}
	return out
}

// RoutedSemiring returns the witness-tracking semiring sized for this
// graph (§3.1, recovering paths).
func (g *Graph) RoutedSemiring() semiring.RoutedMinPlus {
	return semiring.NewRoutedMinPlus(int64(g.N)*g.MaxW()+1, int64(g.N)+1)
}

// WeightRowRouted returns row v of the routed weight matrix: like
// WeightRow, but every edge entry carries its first hop as witness, so
// distance products produce routing tables (§3.1).
func (g *Graph) WeightRowRouted(v int) matrix.Row[semiring.WHF] {
	base := g.WeightRow(v)
	row := make(matrix.Row[semiring.WHF], 0, len(base))
	for _, e := range base {
		fh := e.Col
		if int(e.Col) == v {
			fh = -1
		}
		row = append(row, matrix.Entry[semiring.WHF]{Col: e.Col, Val: semiring.WHF{W: e.Val.W, H: e.Val.H, FH: fh}})
	}
	return row
}

// WeightMatrix returns the full augmented weight matrix (sequential helper
// for references and tests).
func (g *Graph) WeightMatrix() *matrix.Mat[semiring.WH] {
	m := matrix.New[semiring.WH](g.N)
	for v := 0; v < g.N; v++ {
		m.Rows[v] = g.WeightRow(v)
	}
	return m
}

type pqItem struct {
	v    int32
	dist semiring.WH
}

type pq []pqItem

func (q pq) Len() int { return len(q) }
func (q pq) Less(i, j int) bool {
	if q[i].dist != q[j].dist {
		return semiring.LessWH(q[i].dist, q[j].dist)
	}
	return q[i].v < q[j].v
}
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	it := old[len(old)-1]
	*q = old[:len(old)-1]
	return it
}

// DijkstraAug computes, for every node, the lexicographically minimal
// (distance, hops) pair from src over the augmented min-plus order: the
// true distance together with the minimum hop count among shortest paths.
// This is the ground truth for the augmented distance products of §3.1.
func (g *Graph) DijkstraAug(src int) []semiring.WH {
	dist := make([]semiring.WH, g.N)
	for i := range dist {
		dist[i] = semiring.InfWH
	}
	dist[src] = semiring.WH{}
	done := make([]bool, g.N)
	q := &pq{{v: int32(src), dist: semiring.WH{}}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if done[it.v] {
			continue
		}
		done[it.v] = true
		for _, e := range g.Adj[it.v] {
			cand := semiring.WH{W: it.dist.W + e.W, H: it.dist.H + 1}
			if semiring.LessWH(cand, dist[e.To]) {
				dist[e.To] = cand
				heap.Push(q, pqItem{v: e.To, dist: cand})
			}
		}
	}
	return dist
}

// Dijkstra computes single-source distances from src.
func (g *Graph) Dijkstra(src int) []int64 {
	aug := g.DijkstraAug(src)
	out := make([]int64, g.N)
	for i, d := range aug {
		if d.W >= semiring.Inf {
			out[i] = semiring.Inf
		} else {
			out[i] = d.W
		}
	}
	return out
}

// APSPRef computes all-pairs distances sequentially (ground truth for
// stretch measurements; quadratic memory, test-scale only).
func (g *Graph) APSPRef() [][]int64 {
	out := make([][]int64, g.N)
	for v := 0; v < g.N; v++ {
		out[v] = g.Dijkstra(v)
	}
	return out
}

// Diameter returns the exact weighted diameter (max finite distance), and
// whether the graph is connected.
func (g *Graph) Diameter() (int64, bool) {
	var diam int64
	connected := true
	for v := 0; v < g.N; v++ {
		for _, d := range g.Dijkstra(v) {
			switch {
			case d >= semiring.Inf:
				connected = false
			case d > diam:
				diam = d
			}
		}
	}
	return diam, connected
}

// SPD returns the shortest-path diameter: the maximum, over connected
// pairs, of the minimal hop count among shortest paths (the quantity that
// bounds Bellman-Ford; see §7.1 and [48]).
func (g *Graph) SPD() int {
	spd := 0
	for v := 0; v < g.N; v++ {
		for _, d := range g.DijkstraAug(v) {
			if d.W < semiring.Inf && int(d.H) > spd {
				spd = int(d.H)
			}
		}
	}
	return spd
}
