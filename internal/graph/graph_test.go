package graph

import (
	"testing"

	"github.com/congestedclique/ccsp/internal/matrix"
	"github.com/congestedclique/ccsp/internal/semiring"
)

// line returns a path graph 0-1-2-...-n-1 with the given uniform weight.
func line(n int, w int64) *Graph {
	g := New(n)
	for v := 0; v+1 < n; v++ {
		g.MustAddEdge(v, v+1, w)
	}
	return g
}

func TestAddEdgeValidation(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 0, 1); err == nil {
		t.Error("want error for self-loop")
	}
	if err := g.AddEdge(0, 5, 1); err == nil {
		t.Error("want error for out-of-range")
	}
	if err := g.AddEdge(0, 1, -2); err == nil {
		t.Error("want error for negative weight")
	}
	if err := g.AddEdge(0, 1, 3); err != nil {
		t.Errorf("valid edge rejected: %v", err)
	}
	if g.M() != 1 {
		t.Errorf("M=%d, want 1", g.M())
	}
}

func TestDijkstraLine(t *testing.T) {
	g := line(6, 2)
	d := g.Dijkstra(0)
	for v := 0; v < 6; v++ {
		if d[v] != int64(2*v) {
			t.Errorf("d[%d]=%d, want %d", v, d[v], 2*v)
		}
	}
}

func TestDijkstraAugPrefersFewerHops(t *testing.T) {
	// Two shortest paths of weight 4 from 0 to 3: 0-1-2-3 (3 hops, w=4 via
	// 1+1+2... adjust) vs direct heavy edges. Construct: 0-3 weight 4
	// (1 hop) and 0-1-2-3 each weight 1,1,2 => also 4 (3 hops).
	g := New(4)
	g.MustAddEdge(0, 3, 4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 2)
	d := g.DijkstraAug(0)
	if d[3].W != 4 || d[3].H != 1 {
		t.Errorf("d[3]=%v, want (4,1): minimum hops among shortest paths", d[3])
	}
}

func TestDijkstraDisconnected(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(2, 3, 1)
	d := g.Dijkstra(0)
	if d[2] < semiring.Inf || d[3] < semiring.Inf {
		t.Error("unreachable nodes must be at infinity")
	}
	if _, connected := g.Diameter(); connected {
		t.Error("graph must report disconnected")
	}
}

func TestDiameterAndSPD(t *testing.T) {
	g := line(5, 3)
	diam, connected := g.Diameter()
	if !connected {
		t.Fatal("line must be connected")
	}
	if diam != 12 {
		t.Errorf("diameter=%d, want 12", diam)
	}
	if spd := g.SPD(); spd != 4 {
		t.Errorf("SPD=%d, want 4", spd)
	}
	// Adding a heavy shortcut leaves shortest paths long, SPD unchanged.
	g.MustAddEdge(0, 4, 100)
	if spd := g.SPD(); spd != 4 {
		t.Errorf("SPD with heavy shortcut=%d, want 4", spd)
	}
}

func TestWeightRow(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, 5)
	g.MustAddEdge(0, 2, 7)
	row := g.WeightRow(0)
	if len(row) != 3 {
		t.Fatalf("row size %d, want 3 (diagonal + 2 edges)", len(row))
	}
	if row[0].Col != 0 || row[0].Val != (semiring.WH{}) {
		t.Errorf("diagonal entry wrong: %+v", row[0])
	}
	if row[1].Val != (semiring.WH{W: 5, H: 1}) || row[2].Val != (semiring.WH{W: 7, H: 1}) {
		t.Errorf("edge entries wrong: %+v", row)
	}
}

func TestWeightRowParallelEdgesCollapse(t *testing.T) {
	g := New(2)
	g.MustAddEdge(0, 1, 9)
	g.MustAddEdge(0, 1, 4)
	row := g.WeightRow(0)
	if len(row) != 2 {
		t.Fatalf("row size %d, want 2", len(row))
	}
	if row[1].Val.W != 4 {
		t.Errorf("parallel edges must keep the lighter: got %+v", row[1].Val)
	}
}

func TestWeightMatrixPowerMatchesDijkstra(t *testing.T) {
	// The n-th augmented power of W gives exactly DijkstraAug (§3.1).
	g := New(6)
	g.MustAddEdge(0, 1, 2)
	g.MustAddEdge(1, 2, 2)
	g.MustAddEdge(2, 3, 1)
	g.MustAddEdge(0, 4, 9)
	g.MustAddEdge(4, 3, 1)
	g.MustAddEdge(4, 5, 3)
	sr := g.AugSemiring()
	pow := g.WeightMatrix()
	for i := 0; i < 3; i++ { // W^8 >= W^6: closure reached
		pow = matrix.MulRef[semiring.WH](sr, pow, pow)
	}
	for v := 0; v < g.N; v++ {
		want := g.DijkstraAug(v)
		for u := 0; u < g.N; u++ {
			got := pow.Get(sr, v, u)
			if !sr.Eq(got, want[u]) {
				t.Errorf("W^8[%d,%d]=%v, want %v", v, u, got, want[u])
			}
		}
	}
}
