package semiring

import (
	"testing"
	"testing/quick"
)

func TestMinPlusAxioms(t *testing.T) {
	s := NewMinPlus(1 << 20)
	clamp := func(x int64) int64 {
		if x < 0 {
			x = -x
		}
		return x % (1 << 20)
	}
	// Associativity, commutativity of Add; distributivity; identities.
	prop := func(ar, br, cr int64) bool {
		a, b, c := clamp(ar), clamp(br), clamp(cr)
		if s.Add(a, s.Add(b, c)) != s.Add(s.Add(a, b), c) {
			return false
		}
		if s.Add(a, b) != s.Add(b, a) {
			return false
		}
		if s.Mul(a, s.Mul(b, c)) != s.Mul(s.Mul(a, b), c) {
			return false
		}
		if s.Mul(a, s.Add(b, c)) != s.Add(s.Mul(a, b), s.Mul(a, c)) {
			return false
		}
		if s.Add(a, s.Zero()) != a || s.Mul(a, s.One()) != a || s.Mul(s.One(), a) != a {
			return false
		}
		if !s.IsZero(s.Mul(a, s.Zero())) || !s.IsZero(s.Mul(s.Zero(), a)) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMinPlusRankMonotone(t *testing.T) {
	s := NewMinPlus(1000)
	vals := []int64{0, 1, 5, 999, 1000, Inf}
	for i := 0; i < len(vals); i++ {
		for j := 0; j < len(vals); j++ {
			if (vals[i] < vals[j]) != (s.Rank(vals[i]) < s.Rank(vals[j])) {
				t.Errorf("rank not monotone at (%d, %d)", vals[i], vals[j])
			}
		}
	}
	if s.Rank(Inf) != s.MaxRank() {
		t.Error("Inf must have max rank")
	}
}

func TestMinPlusEncDec(t *testing.T) {
	s := NewMinPlus(1 << 30)
	for _, v := range []int64{0, 1, 17, 1 << 30, Inf} {
		c, d := s.Enc(v)
		if got := s.Dec(c, d); !s.Eq(got, v) {
			t.Errorf("Enc/Dec roundtrip: %d -> %d", v, got)
		}
	}
}

func TestMinPlusSaturation(t *testing.T) {
	s := NewMinPlus(100)
	if !s.IsZero(s.Mul(Inf, 5)) || !s.IsZero(s.Mul(5, Inf)) {
		t.Error("Mul with Inf must saturate")
	}
	if s.Mul(Inf, Inf) < 0 {
		t.Error("saturating Mul overflowed")
	}
}

func TestAugMinPlusLexOrder(t *testing.T) {
	s := NewAugMinPlus(1000, 64)
	cases := []struct {
		a, b WH
		less bool
	}{
		{WH{1, 5}, WH{2, 1}, true},   // weight dominates
		{WH{3, 1}, WH{3, 2}, true},   // hops break weight ties
		{WH{3, 2}, WH{3, 2}, false},  // equal
		{InfWH, WH{1000, 64}, false}, // infinity is last
		{WH{0, 0}, InfWH, true},
	}
	for _, tc := range cases {
		if got := LessWH(tc.a, tc.b); got != tc.less {
			t.Errorf("LessWH(%v, %v)=%v, want %v", tc.a, tc.b, got, tc.less)
		}
		if got := s.Rank(tc.a) < s.Rank(tc.b); got != tc.less {
			t.Errorf("Rank order (%v, %v)=%v, want %v", tc.a, tc.b, got, tc.less)
		}
		if want := s.Add(tc.a, tc.b); tc.less && !s.Eq(want, tc.a) {
			t.Errorf("Add(%v, %v)=%v, want lex-min", tc.a, tc.b, want)
		}
	}
}

func TestAugMinPlusAxioms(t *testing.T) {
	s := NewAugMinPlus(1<<16, 1<<10)
	mk := func(w, h int64) WH {
		if w < 0 {
			w = -w
		}
		if h < 0 {
			h = -h
		}
		return WH{W: w % (1 << 16), H: h % (1 << 10)}
	}
	prop := func(w1, h1, w2, h2, w3, h3 int64) bool {
		a, b, c := mk(w1, h1), mk(w2, h2), mk(w3, h3)
		if s.Add(a, s.Add(b, c)) != s.Add(s.Add(a, b), c) {
			return false
		}
		if s.Add(a, b) != s.Add(b, a) {
			return false
		}
		if s.Add(a, a) != a { // idempotent addition (§3.1)
			return false
		}
		if s.Mul(a, s.Mul(b, c)) != s.Mul(s.Mul(a, b), c) {
			return false
		}
		if s.Mul(a, s.Add(b, c)) != s.Add(s.Mul(a, b), s.Mul(a, c)) {
			return false
		}
		if s.Add(a, s.Zero()) != a || s.Mul(a, s.One()) != a {
			return false
		}
		return s.IsZero(s.Mul(a, s.Zero()))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAugMinPlusEncDec(t *testing.T) {
	s := NewAugMinPlus(1<<20, 1<<12)
	for _, v := range []WH{{0, 0}, {5, 3}, {1 << 20, 1 << 12}, InfWH} {
		c, d := s.Enc(v)
		if got := s.Dec(c, d); !s.Eq(got, v) {
			t.Errorf("Enc/Dec roundtrip: %v -> %v", v, got)
		}
	}
}

func TestAugMinPlusRankDistinguishesHops(t *testing.T) {
	s := NewAugMinPlus(100, 10)
	a, b := WH{7, 2}, WH{7, 3}
	if s.Rank(a) >= s.Rank(b) {
		t.Error("rank must separate equal weights by hops")
	}
	if s.Rank(WH{7, 10}) >= s.Rank(WH{8, 0}) {
		t.Error("weight must dominate hops in rank")
	}
}

func TestBooleanSemiring(t *testing.T) {
	s := Boolean{}
	if s.Add(true, false) != true || s.Mul(true, false) != false {
		t.Error("boolean ops wrong")
	}
	if !s.IsZero(s.Zero()) || s.IsZero(s.One()) {
		t.Error("identities wrong")
	}
	for _, v := range []bool{true, false} {
		c, d := s.Enc(v)
		if s.Dec(c, d) != v {
			t.Error("Enc/Dec roundtrip failed")
		}
	}
}

func TestArithRing(t *testing.T) {
	s := Arith{}
	if s.Mul(3, 4) != 12 || s.Add(3, 4) != 7 {
		t.Error("arith ops wrong")
	}
	if s.Add(5, -5) != 0 || !s.IsZero(0) {
		t.Error("cancellation must produce zero")
	}
}

func TestNewValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: want panic", name)
			}
		}()
		f()
	}
	mustPanic("minplus zero", func() { NewMinPlus(0) })
	mustPanic("minplus inf", func() { NewMinPlus(Inf) })
	mustPanic("aug zero", func() { NewAugMinPlus(0, 5) })
	mustPanic("aug overflow", func() { NewAugMinPlus(Inf-1, Inf-1) })
}
