package semiring

import (
	"testing"
	"testing/quick"
)

func TestRoutedSemiringAxioms(t *testing.T) {
	s := NewRoutedMinPlus(1<<16, 1<<10)
	mk := func(w, h, f int64) WHF {
		if w < 0 {
			w = -w
		}
		if h < 0 {
			h = -h
		}
		if f < 0 {
			f = -f
		}
		return WHF{W: w % (1 << 16), H: h % (1 << 10), FH: int32(f % 64)}
	}
	prop := func(w1, h1, f1, w2, h2, f2, w3, h3, f3 int64) bool {
		a, b, c := mk(w1, h1, f1), mk(w2, h2, f2), mk(w3, h3, f3)
		if s.Add(a, s.Add(b, c)) != s.Add(s.Add(a, b), c) {
			return false
		}
		if s.Add(a, b) != s.Add(b, a) {
			return false
		}
		if s.Mul(a, s.Mul(b, c)) != s.Mul(s.Mul(a, b), c) {
			return false
		}
		if s.Mul(a, s.Add(b, c)) != s.Add(s.Mul(a, b), s.Mul(a, c)) {
			return false
		}
		if s.Mul(s.Add(b, c), a) != s.Add(s.Mul(b, a), s.Mul(c, a)) {
			return false
		}
		if s.Add(a, s.Zero()) != a {
			return false
		}
		return s.IsZero(s.Mul(a, s.Zero())) && s.IsZero(s.Mul(s.Zero(), a))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRoutedIdentity(t *testing.T) {
	s := NewRoutedMinPlus(1000, 100)
	// One is a two-sided identity, including the witness: a path composed
	// with the empty path keeps its first hop.
	a := WHF{W: 5, H: 2, FH: 9}
	if s.Mul(a, s.One()) != a {
		t.Error("right identity fails")
	}
	if s.Mul(s.One(), a) != a {
		t.Error("left identity fails (witness must pass through)")
	}
}

func TestRoutedWitnessComposition(t *testing.T) {
	s := NewRoutedMinPlus(1000, 100)
	// A path a (first hop 3) extended by path b (first hop 7) keeps a's
	// first hop: the route starts where a starts.
	a := WHF{W: 4, H: 1, FH: 3}
	b := WHF{W: 2, H: 1, FH: 7}
	got := s.Mul(a, b)
	if got.W != 6 || got.H != 2 || got.FH != 3 {
		t.Errorf("Mul=%+v, want (6,2,3)", got)
	}
}

func TestRoutedAddTieBreak(t *testing.T) {
	s := NewRoutedMinPlus(1000, 100)
	a := WHF{W: 5, H: 2, FH: 9}
	b := WHF{W: 5, H: 2, FH: 4}
	if got := s.Add(a, b); got.FH != 4 {
		t.Errorf("tie must break to the smaller witness, got %+v", got)
	}
	c := WHF{W: 5, H: 1, FH: 9}
	if got := s.Add(a, c); got != c {
		t.Errorf("fewer hops must win, got %+v", got)
	}
}

func TestRoutedEncDec(t *testing.T) {
	s := NewRoutedMinPlus(1<<20, 1<<12)
	for _, v := range []WHF{{0, 0, -1}, {5, 3, 17}, {1 << 20, 1 << 12, 0}, InfWHF} {
		c, d := s.Enc(v)
		if got := s.Dec(c, d); !s.Eq(got, v) {
			t.Errorf("Enc/Dec roundtrip: %+v -> %+v", v, got)
		}
	}
}

func TestRoutedRankIgnoresWitness(t *testing.T) {
	s := NewRoutedMinPlus(1000, 100)
	a := WHF{W: 5, H: 2, FH: 9}
	b := WHF{W: 5, H: 2, FH: 4}
	if s.Rank(a) != s.Rank(b) {
		t.Error("rank must depend only on (W, H)")
	}
	if s.Rank(WHF{W: 5, H: 2}) >= s.Rank(WHF{W: 5, H: 3}) {
		t.Error("rank must order by hops within equal weight")
	}
	if s.Rank(InfWHF) != s.MaxRank() {
		t.Error("infinity must rank last")
	}
}
