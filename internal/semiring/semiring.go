// Package semiring defines the algebraic structures the paper's matrix
// machinery operates over (§1.5, §3.1): a generic semiring interface, the
// min-plus (tropical) semiring, the augmented min-plus semiring that tracks
// hop counts, and the Boolean semiring used to define product densities.
package semiring

// Semiring is a semiring (R, +, ·, 0, 1) whose elements can be encoded into
// a constant number of O(log n)-bit message words (§1.5). Multiplication
// need not be commutative.
type Semiring[E any] interface {
	// Zero is the additive identity (the "non-entry" of sparse matrices;
	// for distance products this is infinity).
	Zero() E
	// One is the multiplicative identity.
	One() E
	// Add is the semiring addition.
	Add(a, b E) E
	// Mul is the semiring multiplication.
	Mul(a, b E) E
	// IsZero reports whether e is the additive identity.
	IsZero(e E) bool
	// Eq reports element equality.
	Eq(a, b E) bool
	// Enc encodes e into two 64-bit message words.
	Enc(e E) (int64, int64)
	// Dec inverts Enc.
	Dec(c, d int64) E
}

// Ordered is a semiring satisfying the conditions of §2.2: it carries a
// total order under which addition is min. Rank embeds the order
// monotonically into int64, which is what the distributed binary search of
// Lemma 15 searches over (the set R' of possible values is the rank range).
type Ordered[E any] interface {
	Semiring[E]
	// Rank is strictly monotone: Rank(a) < Rank(b) iff a precedes b.
	// Zero (infinity) has the maximum rank.
	Rank(e E) int64
	// MaxRank bounds Rank over every value that can appear during a
	// product computation; the binary search of Theorem 14 runs for
	// O(log MaxRank) iterations.
	MaxRank() int64
}

// Less orders two elements of an ordered semiring.
func Less[E any, S Ordered[E]](sr S, a, b E) bool { return sr.Rank(a) < sr.Rank(b) }
