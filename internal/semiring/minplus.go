package semiring

import "fmt"

// Inf is the additive identity ("no path") of the min-plus semirings. It is
// far below MaxInt64 so that saturating additions cannot overflow.
const Inf int64 = 1 << 60

// MinPlus is the tropical semiring (Z≥0 ∪ {∞}, min, +, ∞, 0) used for
// distance products. MaxVal bounds the finite values that can appear during
// a product (for graphs: n · maxWeight), defining the binary-search range W.
type MinPlus struct {
	// MaxVal is the largest finite value that can appear.
	MaxVal int64
}

// NewMinPlus returns a min-plus semiring whose finite values are bounded by
// maxVal.
func NewMinPlus(maxVal int64) MinPlus {
	if maxVal < 1 || maxVal >= Inf {
		panic(fmt.Sprintf("semiring: invalid MaxVal %d", maxVal))
	}
	return MinPlus{MaxVal: maxVal}
}

var _ Ordered[int64] = MinPlus{}

// Zero returns ∞.
func (MinPlus) Zero() int64 { return Inf }

// One returns 0.
func (MinPlus) One() int64 { return 0 }

// Add returns min(a, b).
func (MinPlus) Add(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Mul returns a+b, saturating at ∞.
func (MinPlus) Mul(a, b int64) int64 {
	if a >= Inf || b >= Inf {
		return Inf
	}
	return a + b
}

// IsZero reports whether e is ∞.
func (MinPlus) IsZero(e int64) bool { return e >= Inf }

// Eq reports value equality (all values ≥ Inf are identified with ∞).
func (s MinPlus) Eq(a, b int64) bool {
	if s.IsZero(a) && s.IsZero(b) {
		return true
	}
	return a == b
}

// Enc encodes e into message words.
func (MinPlus) Enc(e int64) (int64, int64) { return e, 0 }

// Dec inverts Enc.
func (MinPlus) Dec(c, _ int64) int64 { return c }

// Rank embeds the order: finite values rank as themselves, ∞ ranks last.
func (s MinPlus) Rank(e int64) int64 {
	if s.IsZero(e) {
		return s.MaxVal + 1
	}
	return e
}

// MaxRank is the rank of ∞.
func (s MinPlus) MaxRank() int64 { return s.MaxVal + 1 }
