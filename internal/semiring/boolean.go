package semiring

// Boolean is the Boolean semiring ({0,1}, ∨, ∧, 0, 1). Section 2.1 defines
// the density ρ̂_ST of a product through the Boolean product of the
// supports, ignoring cancellations.
type Boolean struct{}

var _ Semiring[bool] = Boolean{}

// Zero returns false.
func (Boolean) Zero() bool { return false }

// One returns true.
func (Boolean) One() bool { return true }

// Add returns a ∨ b.
func (Boolean) Add(a, b bool) bool { return a || b }

// Mul returns a ∧ b.
func (Boolean) Mul(a, b bool) bool { return a && b }

// IsZero reports whether e is false.
func (Boolean) IsZero(e bool) bool { return !e }

// Eq reports equality.
func (Boolean) Eq(a, b bool) bool { return a == b }

// Enc encodes e into message words.
func (Boolean) Enc(e bool) (int64, int64) {
	if e {
		return 1, 0
	}
	return 0, 0
}

// Dec inverts Enc.
func (Boolean) Dec(c, _ int64) bool { return c != 0 }

// Arith is the standard (Z, +, ·, 0, 1) ring, used in tests to exercise the
// generic matrix machinery on a semiring with cancellations, where ρ̂_ST
// (Boolean support density) differs from the true output density.
type Arith struct{}

var _ Semiring[int64] = Arith{}

// Zero returns 0.
func (Arith) Zero() int64 { return 0 }

// One returns 1.
func (Arith) One() int64 { return 1 }

// Add returns a+b.
func (Arith) Add(a, b int64) int64 { return a + b }

// Mul returns a·b.
func (Arith) Mul(a, b int64) int64 { return a * b }

// IsZero reports whether e is 0.
func (Arith) IsZero(e int64) bool { return e == 0 }

// Eq reports equality.
func (Arith) Eq(a, b int64) bool { return a == b }

// Enc encodes e into message words.
func (Arith) Enc(e int64) (int64, int64) { return e, 0 }

// Dec inverts Enc.
func (Arith) Dec(c, _ int64) int64 { return c }
