package semiring

import "fmt"

// WH is an element of the augmented min-plus semiring (§3.1): a path weight
// W together with its hop count H. The total order is lexicographic on
// (W, H), which is what gives the hop-consistency property of Lemma 17.
type WH struct {
	W int64
	H int64
}

// InfWH is the additive identity (∞, ∞) of the augmented semiring.
var InfWH = WH{W: Inf, H: Inf}

// LessWH reports whether a precedes b in the lexicographic order ≺.
func LessWH(a, b WH) bool {
	if a.W != b.W {
		return a.W < b.W
	}
	return a.H < b.H
}

// AugMinPlus is the augmented min-plus semiring of §3.1: elements are (w, t)
// pairs, addition is lexicographic min, multiplication is coordinate-wise
// addition. MaxW bounds finite weights and MaxH bounds hop counts; both are
// O(n^c), keeping elements within O(log n) bits and ranks within int64.
type AugMinPlus struct {
	// MaxW bounds finite weights that can appear during a product.
	MaxW int64
	// MaxH bounds finite hop counts (at most n).
	MaxH int64
}

// NewAugMinPlus returns the augmented min-plus semiring with the given
// bounds. It panics if the rank encoding would overflow int64, which cannot
// happen for weights ≤ n^c with small c and hops ≤ n at practical n.
func NewAugMinPlus(maxW, maxH int64) AugMinPlus {
	if maxW < 1 || maxH < 1 {
		panic(fmt.Sprintf("semiring: invalid bounds (%d, %d)", maxW, maxH))
	}
	if maxW+1 >= Inf/(maxH+2) {
		panic(fmt.Sprintf("semiring: rank overflow for bounds (%d, %d)", maxW, maxH))
	}
	return AugMinPlus{MaxW: maxW, MaxH: maxH}
}

var _ Ordered[WH] = AugMinPlus{}

// Zero returns (∞, ∞).
func (AugMinPlus) Zero() WH { return InfWH }

// One returns (0, 0).
func (AugMinPlus) One() WH { return WH{} }

// Add returns the lexicographic minimum of a and b.
func (AugMinPlus) Add(a, b WH) WH {
	if LessWH(a, b) {
		return a
	}
	return b
}

// Mul returns (a.W+b.W, a.H+b.H), saturating at (∞, ∞).
func (s AugMinPlus) Mul(a, b WH) WH {
	if s.IsZero(a) || s.IsZero(b) {
		return InfWH
	}
	return WH{W: a.W + b.W, H: a.H + b.H}
}

// IsZero reports whether e is (∞, ∞).
func (AugMinPlus) IsZero(e WH) bool { return e.W >= Inf }

// Eq reports element equality.
func (s AugMinPlus) Eq(a, b WH) bool {
	if s.IsZero(a) && s.IsZero(b) {
		return true
	}
	return a == b
}

// Enc encodes e into message words.
func (AugMinPlus) Enc(e WH) (int64, int64) { return e.W, e.H }

// Dec inverts Enc.
func (AugMinPlus) Dec(c, d int64) WH { return WH{W: c, H: d} }

// Rank embeds the lexicographic order: Rank(w, t) = w·(MaxH+2) + t, with
// (∞, ∞) ranking last.
func (s AugMinPlus) Rank(e WH) int64 {
	if s.IsZero(e) {
		return s.MaxRank()
	}
	h := e.H
	if h > s.MaxH {
		h = s.MaxH + 1
	}
	return e.W*(s.MaxH+2) + h
}

// MaxRank is the rank of (∞, ∞).
func (s AugMinPlus) MaxRank() int64 { return (s.MaxW + 1) * (s.MaxH + 2) }
