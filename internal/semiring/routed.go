package semiring

import "fmt"

// WHF augments a (weight, hops) pair with a first-hop witness, realizing
// the path-recovery remark of §3.1: the matrix multiplication algorithms
// can provide witnesses, from which routing tables follow. FH is the first
// hop of a shortest path from the row node (or -1 on diagonal entries).
type WHF struct {
	W  int64
	H  int64
	FH int32
}

// InfWHF is the additive identity of the routed semiring.
var InfWHF = WHF{W: Inf, H: Inf, FH: -1}

// RoutedMinPlus is the augmented min-plus semiring carrying first-hop
// witnesses. Multiplication composes paths, keeping the first defined
// witness (so a·b routes along a first); addition is the lexicographic
// minimum on (W, H), with ties broken by the smaller witness to keep runs
// deterministic.
type RoutedMinPlus struct {
	MaxW int64
	MaxH int64
}

// NewRoutedMinPlus returns the routed semiring with the given bounds.
func NewRoutedMinPlus(maxW, maxH int64) RoutedMinPlus {
	if maxW < 1 || maxH < 1 {
		panic(fmt.Sprintf("semiring: invalid bounds (%d, %d)", maxW, maxH))
	}
	if maxW+1 >= Inf/(maxH+2) {
		panic(fmt.Sprintf("semiring: rank overflow for bounds (%d, %d)", maxW, maxH))
	}
	return RoutedMinPlus{MaxW: maxW, MaxH: maxH}
}

var _ Ordered[WHF] = RoutedMinPlus{}

// Zero returns (∞, ∞, -1).
func (RoutedMinPlus) Zero() WHF { return InfWHF }

// One returns (0, 0, -1): the identity both for values and witness
// composition (a missing witness defers to the other operand).
func (RoutedMinPlus) One() WHF { return WHF{FH: -1} }

// Add returns the lexicographic minimum on (W, H), ties to the smaller
// witness.
func (RoutedMinPlus) Add(a, b WHF) WHF {
	switch {
	case a.W != b.W:
		if a.W < b.W {
			return a
		}
		return b
	case a.H != b.H:
		if a.H < b.H {
			return a
		}
		return b
	case a.FH <= b.FH:
		return a
	default:
		return b
	}
}

// Mul composes paths: weights and hops add; the witness is the first
// defined one.
func (s RoutedMinPlus) Mul(a, b WHF) WHF {
	if s.IsZero(a) || s.IsZero(b) {
		return InfWHF
	}
	fh := a.FH
	if fh < 0 {
		fh = b.FH
	}
	return WHF{W: a.W + b.W, H: a.H + b.H, FH: fh}
}

// IsZero reports whether e is the additive identity.
func (RoutedMinPlus) IsZero(e WHF) bool { return e.W >= Inf }

// Eq reports equality.
func (s RoutedMinPlus) Eq(a, b WHF) bool {
	if s.IsZero(a) && s.IsZero(b) {
		return true
	}
	return a == b
}

// Enc packs (W) and (H, FH) into two words; H and FH each fit 31 bits
// since hops and node IDs are at most n.
func (RoutedMinPlus) Enc(e WHF) (int64, int64) {
	return e.W, e.H<<32 | int64(uint32(e.FH))
}

// Dec inverts Enc.
func (RoutedMinPlus) Dec(c, d int64) WHF {
	return WHF{W: c, H: d >> 32, FH: int32(uint32(d))}
}

// Rank embeds the (W, H) order; witnesses do not affect the order.
func (s RoutedMinPlus) Rank(e WHF) int64 {
	if s.IsZero(e) {
		return s.MaxRank()
	}
	h := e.H
	if h > s.MaxH {
		h = s.MaxH + 1
	}
	return e.W*(s.MaxH+2) + h
}

// MaxRank is the rank of the additive identity.
func (s RoutedMinPlus) MaxRank() int64 { return (s.MaxW + 1) * (s.MaxH + 2) }
