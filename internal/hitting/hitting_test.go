package hitting

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/congestedclique/ccsp/internal/cc"
)

func randSets(n, k int, seed int64) [][]int32 {
	rng := rand.New(rand.NewSource(seed))
	sets := make([][]int32, n)
	for v := range sets {
		seen := map[int32]bool{}
		for len(sets[v]) < k {
			u := int32(rng.Intn(n))
			if !seen[u] {
				seen[u] = true
				sets[v] = append(sets[v], u)
			}
		}
	}
	return sets
}

func hitsAll(inA []bool, sets [][]int32) bool {
	for _, s := range sets {
		if len(s) == 0 {
			continue
		}
		ok := false
		for _, u := range s {
			if inA[u] {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

func sizeOf(inA []bool) int {
	c := 0
	for _, b := range inA {
		if b {
			c++
		}
	}
	return c
}

// TestGreedyHitsAndSizeBound property-checks the Lemma 4 guarantees of the
// greedy substitute: every set hit, size <= (ln n + 1)(n/k + 1).
func TestGreedyHitsAndSizeBound(t *testing.T) {
	prop := func(seed int64, nRaw, kRaw uint8) bool {
		n := int(nRaw)%50 + 2
		k := int(kRaw)%n + 1
		sets := randSets(n, k, seed)
		inA := Greedy(n, sets)
		if !hitsAll(inA, sets) {
			return false
		}
		bound := (math.Log(float64(n)) + 1) * (float64(n)/float64(k) + 1)
		return float64(sizeOf(inA)) <= bound+1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyEmptyAndSingletonSets(t *testing.T) {
	sets := [][]int32{nil, {3}, nil, {3}, {1}}
	inA := Greedy(5, sets)
	if !hitsAll(inA, sets) {
		t.Error("greedy missed a set")
	}
	if !inA[3] {
		t.Error("element 3 covers two sets and must be picked")
	}
	if sizeOf(inA) != 2 {
		t.Errorf("size=%d, want 2 (elements 3 and 1)", sizeOf(inA))
	}
}

func TestGreedyDeterministic(t *testing.T) {
	sets := randSets(30, 5, 42)
	a := Greedy(30, sets)
	b := Greedy(30, sets)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("greedy is not deterministic")
		}
	}
}

func TestSeededHits(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		n, k := 40, 6
		sets := randSets(n, k, seed+100)
		inA := Seeded(n, sets, k, seed)
		if !hitsAll(inA, sets) {
			t.Errorf("seed %d: seeded hitting set missed a set", seed)
		}
	}
}

func TestLemma4Rounds(t *testing.T) {
	if r := Lemma4Rounds(2); r != 1 {
		t.Errorf("n=2: rounds=%d, want 1", r)
	}
	// n=65536: log2=16, log2 log2 = 4, cubed = 64.
	if r := Lemma4Rounds(65536); r != 64 {
		t.Errorf("n=65536: rounds=%d, want 64", r)
	}
	// Monotone-ish growth, always positive.
	prev := 0
	for _, n := range []int{4, 16, 256, 4096} {
		r := Lemma4Rounds(n)
		if r < 1 || r < prev {
			t.Errorf("n=%d: rounds=%d not sane", n, r)
		}
		prev = r
	}
}

func TestBoardCollective(t *testing.T) {
	n, k := 16, 4
	sets := randSets(n, k, 7)
	board := NewBoard(n)
	results := make([][]bool, n)
	stats, err := cc.Run(context.Background(), cc.Config{N: n}, func(nd *cc.Node) error {
		results[nd.ID] = board.Hit(nd, sets[nd.ID])
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v < n; v++ {
		for u := 0; u < n; u++ {
			if results[v][u] != results[0][u] {
				t.Fatal("nodes disagree on the hitting set")
			}
		}
	}
	if !hitsAll(results[0], sets) {
		t.Error("collective hitting set missed a set")
	}
	if got, want := stats.Charged["hitting-set"], Lemma4Rounds(n); got != want {
		t.Errorf("charged %d rounds, want %d", got, want)
	}
}

func TestMembers(t *testing.T) {
	inA := []bool{false, true, false, true, true}
	m := Members(inA)
	if len(m) != 3 || m[0] != 1 || m[1] != 3 || m[2] != 4 {
		t.Errorf("Members=%v", m)
	}
}
