// Package hitting provides the hitting-set primitive of Lemma 4 (cited from
// Parter-Yogev [52]): given sets {S_v} of size >= k, construct a set A of
// size O(n log n / k) hitting every S_v, deterministically, charged at
// O((log log n)^3) rounds.
//
// Substitution note (see DESIGN.md §1.3): re-deriving [52]'s derandomized
// sampler is out of scope; we substitute the classical deterministic greedy
// hitting set, which achieves the same O(n log n / k) size bound (greedy set
// cover against the fractional optimum n/k), computed identically by every
// node from the exchanged sets, and charge Lemma 4's round bound through the
// engine's accounting. A seeded sampling variant is provided for ablations.
package hitting

import (
	"math"
	"sort"
	"sync"

	"github.com/congestedclique/ccsp/internal/cc"
)

// Lemma4Rounds is the round charge of the hitting-set primitive:
// ceil((log2 log2 n)^3) per Lemma 4.
func Lemma4Rounds(n int) int {
	if n < 4 {
		return 1
	}
	ll := math.Log2(math.Log2(float64(n)))
	r := int(math.Ceil(ll * ll * ll))
	if r < 1 {
		r = 1
	}
	return r
}

// Board is the exchange surface for one hitting-set invocation: nodes
// deposit their sets, synchronize through the engine (which charges the
// Lemma 4 rounds), and read back the deterministic result. A Board is
// single-use; allocate one per invocation site.
type Board struct {
	sets [][]int32
	once sync.Once
	inA  []bool
}

// NewBoard returns a Board for an n-node invocation.
func NewBoard(n int) *Board {
	return &Board{sets: make([][]int32, n)}
}

// Hit is the collective hitting-set primitive: node nd contributes its set
// sv (the paper's S_v, known locally, e.g. N_k(v)); the returned membership
// slice is identical at all nodes and must not be mutated. Empty sets are
// vacuously hit. k is used only for the round charge's documentation; the
// greedy construction adapts to the actual sets.
func (b *Board) Hit(nd *cc.Node, sv []int32) []bool {
	b.sets[nd.ID] = sv
	// The Charge collective is a barrier: all deposits happen-before the
	// computation below, which every node then shares via the once-cache.
	nd.Charge("hitting-set", Lemma4Rounds(nd.N))
	b.once.Do(func() {
		b.inA = Greedy(nd.N, b.sets)
	})
	return b.inA
}

// Greedy computes a deterministic greedy hitting set: repeatedly pick the
// element covering the most uncovered sets (ties to the smallest ID).
// Size is at most (ln n + 1)(n/k + 1) when all sets have size >= k.
func Greedy(n int, sets [][]int32) []bool {
	inA := make([]bool, n)
	covered := make([]bool, len(sets))
	count := make([]int64, n)
	// Inverted index: elem -> set indices.
	where := make([][]int32, n)
	remaining := 0
	for si, s := range sets {
		if len(s) == 0 {
			covered[si] = true
			continue
		}
		remaining++
		for _, u := range s {
			count[u]++
			where[u] = append(where[u], int32(si))
		}
	}
	for remaining > 0 {
		best := -1
		var bestCnt int64
		for u := 0; u < n; u++ {
			if count[u] > bestCnt {
				best, bestCnt = u, count[u]
			}
		}
		if best < 0 {
			break // unreachable: every uncovered set has counted elements
		}
		inA[best] = true
		for _, si := range where[best] {
			if covered[si] {
				continue
			}
			covered[si] = true
			remaining--
			for _, u := range sets[si] {
				count[u]--
			}
		}
	}
	return inA
}

// Seeded computes a sampling-based hitting set: elements are chosen by a
// deterministic hash with probability p ~ c·ln(n)/k, verified against the
// sets, escalating p until all sets are hit. Used for ablation against
// Greedy; both satisfy the Lemma 4 size bound in expectation/worst case.
func Seeded(n int, sets [][]int32, k int, seed int64) []bool {
	if k < 1 {
		k = 1
	}
	for mult := int64(1); ; mult *= 2 {
		thresh := int64(float64(mult) * math.Log(float64(n)+1) / float64(k) * (1 << 30))
		if thresh >= 1<<30 {
			// Degenerate: take everything that appears in some set.
			inA := make([]bool, n)
			for _, s := range sets {
				for _, u := range s {
					inA[u] = true
				}
			}
			return inA
		}
		inA := make([]bool, n)
		for u := 0; u < n; u++ {
			if hash64(seed, int64(u))&(1<<30-1) < thresh {
				inA[u] = true
			}
		}
		ok := true
		for _, s := range sets {
			if len(s) == 0 {
				continue
			}
			hit := false
			for _, u := range s {
				if inA[u] {
					hit = true
					break
				}
			}
			if !hit {
				ok = false
				break
			}
		}
		if ok {
			return inA
		}
	}
}

func hash64(seed, x int64) int64 {
	h := uint64(seed)*0x9E3779B9 + uint64(x)*0x85EBCA6B + 0xC2B2AE35
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	h *= 0xC4CEB9FE1A85EC53
	h ^= h >> 33
	return int64(h & (1<<62 - 1))
}

// BoardSeq hands out Boards for algorithms that invoke the hitting-set
// primitive several times: every node asks for its i-th board in the same
// global order, receiving the same Board per invocation site.
type BoardSeq struct {
	n      int
	mu     sync.Mutex
	boards []*Board
	idx    []int
}

// NewBoardSeq returns a sequencer for an n-node run.
func NewBoardSeq(n int) *BoardSeq {
	return &BoardSeq{n: n, idx: make([]int, n)}
}

// Next returns the calling node's next Board.
func (bs *BoardSeq) Next(nodeID int) *Board {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	i := bs.idx[nodeID]
	bs.idx[nodeID]++
	for len(bs.boards) <= i {
		bs.boards = append(bs.boards, NewBoard(bs.n))
	}
	return bs.boards[i]
}

// Members lists the members of a hitting set in ascending order.
func Members(inA []bool) []int32 {
	var out []int32
	for v, in := range inA {
		if in {
			out = append(out, int32(v))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
