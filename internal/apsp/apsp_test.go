package apsp

import (
	"context"
	"math/rand"
	"sort"
	"testing"

	"github.com/congestedclique/ccsp/internal/cc"
	"github.com/congestedclique/ccsp/internal/graph"
	"github.com/congestedclique/ccsp/internal/hitting"
	"github.com/congestedclique/ccsp/internal/hopset"
	"github.com/congestedclique/ccsp/internal/semiring"
)

func randGraph(n, extraEdges int, maxW int64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(v, rng.Intn(v), rng.Int63n(maxW)+1)
	}
	for e := 0; e < extraEdges; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.MustAddEdge(u, v, rng.Int63n(maxW)+1)
		}
	}
	return g
}

// minBottleneck[v] is the minimum over all shortest src-v paths of the
// heaviest edge on the path - the W of the (2+ε, (1+ε)W) guarantee in its
// strongest admissible reading.
func minBottleneck(g *graph.Graph, src int) []int64 {
	d := g.Dijkstra(src)
	n := g.N
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return d[order[a]] < d[order[b]] })
	w := make([]int64, n)
	for i := range w {
		w[i] = semiring.Inf
	}
	w[src] = 0
	for _, v := range order {
		if d[v] >= semiring.Inf {
			continue
		}
		for _, e := range g.Adj[v] {
			if d[v]+e.W == d[e.To] {
				cand := w[v]
				if e.W > cand {
					cand = e.W
				}
				if cand < w[e.To] {
					w[e.To] = cand
				}
			}
		}
	}
	return w
}

func runWeighted2(t *testing.T, g *graph.Graph, eps float64, hp hopset.Params) ([][]int64, cc.Stats) {
	t.Helper()
	sr := g.AugSemiring()
	boards := hitting.NewBoardSeq(g.N)
	rows := make([][]int64, g.N)
	stats, err := cc.Run(context.Background(), cc.Config{N: g.N}, func(nd *cc.Node) error {
		row, err := TwoPlusEpsWeighted(nd, sr, g.WeightRow(nd.ID), eps, boards, hp)
		if err != nil {
			return err
		}
		rows[nd.ID] = row
		return nil
	})
	if err != nil {
		t.Fatalf("TwoPlusEpsWeighted: %v", err)
	}
	return rows, stats
}

func runThree(t *testing.T, g *graph.Graph, eps float64, hp hopset.Params) ([][]int64, cc.Stats) {
	t.Helper()
	sr := g.AugSemiring()
	boards := hitting.NewBoardSeq(g.N)
	rows := make([][]int64, g.N)
	stats, err := cc.Run(context.Background(), cc.Config{N: g.N}, func(nd *cc.Node) error {
		row, err := ThreePlusEps(nd, sr, g.WeightRow(nd.ID), eps, boards, hp)
		if err != nil {
			return err
		}
		rows[nd.ID] = row
		return nil
	})
	if err != nil {
		t.Fatalf("ThreePlusEps: %v", err)
	}
	return rows, stats
}

func runUnweighted2(t *testing.T, g *graph.Graph, eps float64, hp hopset.Params) ([][]int64, cc.Stats) {
	t.Helper()
	sr := g.AugSemiring()
	boards := hitting.NewBoardSeq(g.N)
	rows := make([][]int64, g.N)
	stats, err := cc.Run(context.Background(), cc.Config{N: g.N}, func(nd *cc.Node) error {
		row, err := TwoPlusEpsUnweighted(nd, sr, g.WeightRow(nd.ID), eps, boards, hp)
		if err != nil {
			return err
		}
		rows[nd.ID] = row
		return nil
	})
	if err != nil {
		t.Fatalf("TwoPlusEpsUnweighted: %v", err)
	}
	return rows, stats
}

// checkNoUnderestimates: estimates are never below true distances, and
// unreachable pairs stay infinite.
func checkNoUnderestimates(t *testing.T, g *graph.Graph, rows [][]int64) {
	t.Helper()
	ref := g.APSPRef()
	for v := 0; v < g.N; v++ {
		for u := 0; u < g.N; u++ {
			d, got := ref[v][u], rows[v][u]
			if d >= semiring.Inf {
				if got < semiring.Inf {
					t.Fatalf("(%d,%d): estimate %d for unreachable pair", v, u, got)
				}
				continue
			}
			if got < d {
				t.Fatalf("(%d,%d): estimate %d below true distance %d", v, u, got, d)
			}
		}
	}
}

func TestTwoPlusEpsWeightedGuarantee(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		eps  float64
	}{
		{"random", randGraph(25, 30, 10, 1), 0.5},
		{"heavy-line", heavyLine(24), 0.5},
		{"dense", randGraph(20, 80, 5, 2), 1.0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rows, _ := runWeighted2(t, tc.g, tc.eps, hopset.Practical(1))
			checkNoUnderestimates(t, tc.g, rows)
			ref := tc.g.APSPRef()
			for v := 0; v < tc.g.N; v++ {
				bott := minBottleneck(tc.g, v)
				for u := 0; u < tc.g.N; u++ {
					d := ref[v][u]
					if d >= semiring.Inf {
						continue
					}
					bound := (2+tc.eps)*float64(d) + (1+tc.eps)*float64(bott[u])
					if got := float64(rows[v][u]); got > bound+1e-9 {
						t.Fatalf("(%d,%d): estimate %v exceeds (2+ε)·%d + (1+ε)·%d", v, u, got, d, bott[u])
					}
				}
			}
		})
	}
}

// heavyLine: a line whose edge weights grow, maximizing the W term.
func heavyLine(n int) *graph.Graph {
	g := graph.New(n)
	for v := 0; v+1 < n; v++ {
		g.MustAddEdge(v, v+1, int64(v%7)+1)
	}
	return g
}

func TestThreePlusEpsGuarantee(t *testing.T) {
	g := randGraph(25, 40, 10, 3)
	eps := 0.5
	rows, _ := runThree(t, g, eps, hopset.Practical(1))
	checkNoUnderestimates(t, g, rows)
	ref := g.APSPRef()
	for v := 0; v < g.N; v++ {
		for u := 0; u < g.N; u++ {
			d := ref[v][u]
			if d >= semiring.Inf {
				continue
			}
			if got := float64(rows[v][u]); got > (3+eps)*float64(d)+1e-9 {
				t.Fatalf("(%d,%d): estimate %v exceeds (3+ε)·%d", v, u, got, d)
			}
		}
	}
}

func unweightedRand(n, extra int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(v, rng.Intn(v), 1)
	}
	for e := 0; e < extra; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.MustAddEdge(u, v, 1)
		}
	}
	return g
}

// starPlusPath: a high-degree hub with pendant paths - exercises both the
// high-degree phase (hub) and the low-degree phase (paths).
func starPlusPath(n int) *graph.Graph {
	g := graph.New(n)
	half := n / 2
	for v := 1; v <= half; v++ {
		g.MustAddEdge(0, v, 1)
	}
	for v := half; v+1 < n; v++ {
		g.MustAddEdge(v, v+1, 1)
	}
	return g
}

func TestTwoPlusEpsUnweightedGuarantee(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		eps  float64
	}{
		{"sparse-random", unweightedRand(25, 12, 4), 0.5},
		{"dense-random", unweightedRand(24, 100, 5), 0.5},
		{"star-plus-path", starPlusPath(26), 0.5},
		{"cycle", cycleGraph(24), 1.0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rows, _ := runUnweighted2(t, tc.g, tc.eps, hopset.Practical(1))
			checkNoUnderestimates(t, tc.g, rows)
			ref := tc.g.APSPRef()
			for v := 0; v < tc.g.N; v++ {
				for u := 0; u < tc.g.N; u++ {
					d := ref[v][u]
					if d >= semiring.Inf {
						continue
					}
					if got := float64(rows[v][u]); got > (2+tc.eps)*float64(d)+1e-9 {
						t.Fatalf("(%d,%d): estimate %v exceeds (2+ε)·%d", v, u, got, d)
					}
				}
			}
		})
	}
}

func cycleGraph(n int) *graph.Graph {
	g := graph.New(n)
	for v := 0; v < n; v++ {
		g.MustAddEdge(v, (v+1)%n, 1)
	}
	return g
}

func TestAPSPAdjacentPairsExact(t *testing.T) {
	g := unweightedRand(24, 30, 6)
	rows, _ := runUnweighted2(t, g, 0.5, hopset.Practical(1))
	for v := 0; v < g.N; v++ {
		for _, e := range g.Adj[v] {
			if rows[v][e.To] != 1 {
				t.Errorf("adjacent pair (%d,%d) estimated %d, want 1", v, e.To, rows[v][e.To])
			}
		}
	}
}

func TestAPSPSymmetry(t *testing.T) {
	g := randGraph(24, 30, 8, 7)
	rows, _ := runWeighted2(t, g, 0.5, hopset.Practical(1))
	for v := 0; v < g.N; v++ {
		for u := 0; u < g.N; u++ {
			if rows[v][u] != rows[u][v] {
				t.Fatalf("asymmetric estimates: δ(%d,%d)=%d but δ(%d,%d)=%d", v, u, rows[v][u], u, v, rows[u][v])
			}
		}
	}
}

// TestLemma27Cases (Figure 3): constructions realizing the three cases of
// the §6.2 stretch analysis, asserting the per-case bound.
func TestLemma27Cases(t *testing.T) {
	eps := 0.5
	// Case 1: a short path - w is within N_k of both endpoints: exact.
	g1 := graph.New(16)
	g1.MustAddEdge(0, 1, 1)
	g1.MustAddEdge(1, 2, 1)
	for v := 3; v < 16; v++ {
		g1.MustAddEdge(v, v-1, 100)
	}
	rows, _ := runWeighted2(t, g1, eps, hopset.Practical(1))
	if rows[0][2] != 2 {
		t.Errorf("case 1: δ(0,2)=%d, want exact 2 (w ∈ N_k(u) ∩ N_k(v))", rows[0][2])
	}
	// Case 2: a long path - there is a middle node outside both
	// neighborhoods; the (2+ε) bound must hold via the pivots.
	g2 := heavyLine(24)
	rows2, _ := runWeighted2(t, g2, eps, hopset.Practical(1))
	ref2 := g2.APSPRef()
	d := ref2[0][23]
	bott := minBottleneck(g2, 0)[23]
	if got := float64(rows2[0][23]); got > (2+eps)*float64(d)+(1+eps)*float64(bott)+1e-9 {
		t.Errorf("case 2: δ(0,23)=%v exceeds bound for d=%d W=%d", got, d, bott)
	}
	// Case 3: endpoints' neighborhoods meet only at an edge {u',v'}: the
	// additive (1+ε)W term absorbs that edge.
	g3 := graph.New(12)
	for v := 0; v < 5; v++ {
		g3.MustAddEdge(v, v+1, 1)
	}
	g3.MustAddEdge(5, 6, 50) // the heavy bridge u'-v'
	for v := 6; v < 11; v++ {
		g3.MustAddEdge(v, v+1, 1)
	}
	rows3, _ := runWeighted2(t, g3, eps, hopset.Practical(1))
	ref3 := g3.APSPRef()
	d3 := ref3[0][11]
	bound := (2+eps)*float64(d3) + (1+eps)*50
	if got := float64(rows3[0][11]); got > bound+1e-9 {
		t.Errorf("case 3: δ(0,11)=%v exceeds (2+ε)·%d+(1+ε)·50", got, d3)
	}
}
