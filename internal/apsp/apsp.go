// Package apsp implements the paper's all-pairs shortest path
// approximations (§6): the (3+ε)-approximation (§6.1), the
// (2+ε, (1+ε)W)-approximation for weighted graphs (§6.2, Theorem 28), and
// the (2+ε)-approximation for unweighted graphs (§6.3, Theorem 31). All are
// deterministic and run in O(log²n/ε) rounds.
package apsp

import (
	"math"

	"github.com/congestedclique/ccsp/internal/cc"
	"github.com/congestedclique/ccsp/internal/disttools"
	"github.com/congestedclique/ccsp/internal/hitting"
	"github.com/congestedclique/ccsp/internal/hopset"
	"github.com/congestedclique/ccsp/internal/matrix"
	"github.com/congestedclique/ccsp/internal/mssp"
	"github.com/congestedclique/ccsp/internal/semiring"
)

// addSat adds distance estimates, saturating at infinity.
func addSat(a, b int64) int64 {
	if a >= semiring.Inf || b >= semiring.Inf {
		return semiring.Inf
	}
	return a + b
}

// est is one node's dense estimate row with monotone min updates.
type est struct {
	row []int64
}

func newEst(n, self int) *est {
	r := make([]int64, n)
	for i := range r {
		r[i] = semiring.Inf
	}
	r[self] = 0
	return &est{row: r}
}

func (e *est) upd(u int32, v int64) {
	if v < e.row[u] {
		e.row[u] = v
	}
}

func (e *est) updRowWH(r matrix.Row[semiring.WH]) {
	for _, en := range r {
		e.upd(en.Col, en.Val.W)
	}
}

func (e *est) updRow(r matrix.Row[int64]) {
	for _, en := range r {
		e.upd(en.Col, en.Val)
	}
}

// exactKNearest computes the √n-nearest with exact distances and applies
// the symmetric update ("if v ∈ N_k(u), u sends d(u,v) to v").
func exactKNearest(nd *cc.Node, sr semiring.AugMinPlus, wrow matrix.Row[semiring.WH], k int, e *est) matrix.Row[semiring.WH] {
	knear := disttools.KNearest(nd, sr, wrow, k)
	e.updRowWH(knear)
	out := make([]cc.Packet, 0, len(knear))
	for _, en := range knear {
		if int(en.Col) != nd.ID {
			out = append(out, cc.Packet{Dst: en.Col, M: cc.Msg{A: en.Val.W}})
		}
	}
	for _, m := range nd.Route(out) {
		e.upd(m.Src, m.A)
	}
	return knear
}

// pivotOf returns the closest hitting-set member within the k-nearest set.
func pivotOf(knear matrix.Row[semiring.WH], inA []bool) (int32, semiring.WH) {
	pv, dpv := int32(-1), semiring.InfWH
	for _, e := range knear {
		if inA[e.Col] && semiring.LessWH(e.Val, dpv) {
			pv, dpv = e.Col, e.Val
		}
	}
	return pv, dpv
}

// broadcastPivots shares (p(v), d(v,p(v))) of every node in two broadcast
// rounds.
func broadcastPivots(nd *cc.Node, pv int32, dpv int64) (pvs []int64, dpvs []int64) {
	return nd.BroadcastVal(int64(pv)), nd.BroadcastVal(dpv)
}

// pivotCombine applies the final estimate updates of §6.2 line (7) /
// §6.3 line (10): δ(u,v) = min(δ(u,v), δ(u,p(u)) + δ̃(p(u),v),
// δ(v,p(v)) + δ̃(p(v),u)). Node v knows δ̃(v, a) for every a (its
// msspDist); the cross terms δ̃(u, p(v)) arrive in one personalized round.
func pivotCombine(nd *cc.Node, e *est, msspDist []int64, pvs, dpvs []int64) {
	n := nd.N
	// Send δ̃(me, p(v)) to every v.
	out := make([]cc.Packet, 0, n)
	for v := 0; v < n; v++ {
		val := semiring.Inf
		if pv := pvs[v]; pv >= 0 {
			val = msspDist[pv]
		}
		out = append(out, cc.Packet{Dst: int32(v), M: cc.Msg{A: val}})
	}
	for _, m := range nd.Sync(out) {
		u := m.Src
		// Term δ(v,p(v)) + δ̃(p(v),u): my pivot distance plus u's distance
		// to my pivot.
		if pvs[nd.ID] >= 0 {
			e.upd(u, addSat(dpvs[nd.ID], m.A))
		}
		// Term δ(u,p(u)) + δ̃(p(u),v): u's pivot distance plus my distance
		// to u's pivot.
		if pu := pvs[u]; pu >= 0 {
			e.upd(u, addSat(dpvs[u], msspDist[pu]))
		}
	}
}

// whToDense extracts a dense distance slice from an augmented row.
func whToDense(n int, r matrix.Row[semiring.WH]) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = semiring.Inf
	}
	for _, e := range r {
		out[e.Col] = e.Val.W
	}
	return out
}

// estsFromRow converts exact (symmetric) distance entries into
// distance-through-sets inputs.
func estsFromRow(r matrix.Row[semiring.WH]) []disttools.Est {
	ests := make([]disttools.Est, 0, len(r))
	for _, e := range r {
		ests = append(ests, disttools.Est{W: e.Col, To: e.Val.W, From: e.Val.W})
	}
	return ests
}

func sqrtCeil(n int) int {
	k := int(math.Ceil(math.Sqrt(float64(n))))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}

// HopsetParams derives the hopset parameterization the §6 APSP
// algorithms use from the target stretch ε: the inner MSSP runs at
// ε' = ε/2 (Lemma 27 / Lemma 30). Preprocessing that wants to reuse one
// hopset across the ...WithHopset variants must build it with these
// params.
func HopsetParams(hp hopset.Params, eps float64) hopset.Params {
	hp.Eps = eps / 2
	return hp
}

// ThreePlusEps computes the (3+ε)-approximate weighted APSP of §6.1,
// returning this node's dense estimate row. All nodes pass identical eps
// and params; boards supplies the hitting-set invocations.
func ThreePlusEps(nd *cc.Node, sr semiring.AugMinPlus, wrow matrix.Row[semiring.WH], eps float64, boards *hitting.BoardSeq, hp hopset.Params) ([]int64, error) {
	// δ(u,v) <= d(u,p(u)) + (1+ε')(2d) <= (3+2ε')d for ε' = ε/2.
	hs, err := hopset.Build(nd, sr, wrow, boards.Next(nd.ID), HopsetParams(hp, eps))
	if err != nil {
		return nil, err
	}
	return ThreePlusEpsWithHopset(nd, sr, wrow, eps, boards, hs)
}

// ThreePlusEpsWithHopset is the query stage of ThreePlusEps against a
// previously built hopset (params HopsetParams(hp, eps) on G).
func ThreePlusEpsWithHopset(nd *cc.Node, sr semiring.AugMinPlus, wrow matrix.Row[semiring.WH], eps float64, boards *hitting.BoardSeq, hs *hopset.Result) ([]int64, error) {
	n := nd.N
	e := newEst(n, nd.ID)
	for _, en := range wrow {
		e.upd(en.Col, en.Val.W)
	}
	k := sqrtCeil(n)
	knear := exactKNearest(nd, sr, wrow, k, e)

	sv := colsOf(knear)
	inA := boards.Next(nd.ID).Hit(nd, sv)

	res, err := mssp.RunWithHopset(nd, sr, wrow, inA, hs)
	if err != nil {
		return nil, err
	}
	e.updRowWH(res.Dist)
	msspDense := whToDense(n, res.Dist)

	pv, dpv := pivotOf(knear, inA)
	pvs, dpvs := broadcastPivots(nd, pv, dpv.W)
	// δ(v,u) = min(δ, d(u,p(u)) + δ̃(v, p(u))) - no personalized exchange
	// needed for the one-sided §6.1 estimate.
	for u := 0; u < n; u++ {
		if pu := pvs[u]; pu >= 0 {
			e.upd(int32(u), addSat(dpvs[u], msspDense[pu]))
		}
	}
	return e.row, nil
}

func colsOf(r matrix.Row[semiring.WH]) []int32 {
	cols := make([]int32, 0, len(r))
	for _, e := range r {
		cols = append(cols, e.Col)
	}
	return cols
}

// TwoPlusEpsWeighted computes the (2+ε, (1+ε)W)-approximate weighted APSP
// of §6.2 (Theorem 28): for every pair, the estimate is at most
// (2+ε)d(u,v) + (1+ε)W where W is the heaviest edge on a shortest u-v path.
func TwoPlusEpsWeighted(nd *cc.Node, sr semiring.AugMinPlus, wrow matrix.Row[semiring.WH], eps float64, boards *hitting.BoardSeq, hp hopset.Params) ([]int64, error) {
	// The hopset backing line (5)'s MSSP runs at ε' = ε/2 (Lemma 27
	// yields (2+2ε')d + (1+ε')W); building it up front keeps it reusable.
	hs, err := hopset.Build(nd, sr, wrow, boards.Next(nd.ID), HopsetParams(hp, eps))
	if err != nil {
		return nil, err
	}
	return TwoPlusEpsWeightedWithHopset(nd, sr, wrow, eps, boards, hs)
}

// TwoPlusEpsWeightedWithHopset is the query stage of TwoPlusEpsWeighted
// against a previously built hopset (params HopsetParams(hp, eps) on G):
// everything except the §4 hopset construction.
func TwoPlusEpsWeightedWithHopset(nd *cc.Node, sr semiring.AugMinPlus, wrow matrix.Row[semiring.WH], eps float64, boards *hitting.BoardSeq, hs *hopset.Result) ([]int64, error) {
	n := nd.N
	// Line (1): edge estimates.
	e := newEst(n, nd.ID)
	for _, en := range wrow {
		e.upd(en.Col, en.Val.W)
	}
	// Line (2): exact distances to the √n nearest (both directions).
	nd.Phase("apsp/k-nearest")
	k := sqrtCeil(n)
	knear := exactKNearest(nd, sr, wrow, k, e)
	// Line (3): distances through N_k(u) ∩ N_k(v).
	nd.Phase("apsp/dist-through-sets")
	dts, err := disttools.DistThroughSets(nd, plainMinPlus(sr), estsFromRow(knear))
	if err != nil {
		return nil, err
	}
	e.updRow(dts)
	// Line (4): hitting set A of the N_k sets.
	nd.Phase("apsp/hitting-set")
	inA := boards.Next(nd.ID).Hit(nd, colsOf(knear))
	// Line (5): (1+ε')-approximate MSSP from A over the prebuilt hopset.
	res, err := mssp.RunWithHopset(nd, sr, wrow, inA, hs)
	if err != nil {
		return nil, err
	}
	e.updRowWH(res.Dist)
	msspDense := whToDense(n, res.Dist)
	// Lines (6)-(7): pivots and the symmetric combination.
	nd.Phase("apsp/pivot-combine")
	pv, dpv := pivotOf(knear, inA)
	pvs, dpvs := broadcastPivots(nd, pv, dpv.W)
	pivotCombine(nd, e, msspDense, pvs, dpvs)
	return e.row, nil
}

// plainMinPlus derives the plain min-plus semiring with value bound
// matching the augmented one.
func plainMinPlus(sr semiring.AugMinPlus) semiring.MinPlus {
	return semiring.NewMinPlus(sr.MaxW + 1)
}
