package apsp

import (
	"math"

	"github.com/congestedclique/ccsp/internal/cc"
	"github.com/congestedclique/ccsp/internal/disttools"
	"github.com/congestedclique/ccsp/internal/hitting"
	"github.com/congestedclique/ccsp/internal/hopset"
	"github.com/congestedclique/ccsp/internal/matmul"
	"github.com/congestedclique/ccsp/internal/matrix"
	"github.com/congestedclique/ccsp/internal/mssp"
	"github.com/congestedclique/ccsp/internal/semiring"
)

// TwoPlusEpsUnweighted computes the (2+ε)-approximate unweighted APSP of
// §6.3 (Theorem 31), returning this node's dense estimate row. The
// algorithm handles shortest paths through high-degree nodes via a
// neighborhood hitting set and MSSP (first phase), and paths confined to
// low-degree nodes via the sparse subgraph G', n^{1/4}-nearest sets, a
// sparse MSSP from an O~(n^{3/4}) hitting set, and the 3-hop triple product
// M1·M2·M3 (second phase).
func TwoPlusEpsUnweighted(nd *cc.Node, sr semiring.AugMinPlus, wrow matrix.Row[semiring.WH], eps float64, boards *hitting.BoardSeq, hp hopset.Params) ([]int64, error) {
	// Both MSSP stages run at ε' = ε/2 (Lemma 30 yields (2+2ε')). Their
	// hopsets - one on G, one on the low-degree subgraph G' - are built up
	// front so queries can reuse them.
	hpIn := HopsetParams(hp, eps)
	degs := nd.BroadcastVal(int64(len(wrow))) // wrow includes the diagonal: |N(v)|
	hsG, err := hopset.Build(nd, sr, wrow, boards.Next(nd.ID), hpIn)
	if err != nil {
		return nil, err
	}
	lowRow := LowDegreeRow(nd.ID, wrow, degs, DegreeThreshold(nd.N))
	hsLow, err := hopset.Build(nd, sr, lowRow, boards.Next(nd.ID), hpIn)
	if err != nil {
		return nil, err
	}
	return TwoPlusEpsUnweightedWithHopsets(nd, sr, wrow, eps, boards, degs, hsG, hsLow)
}

// DegreeThreshold returns the §6.3 high/low degree threshold k = ⌈√n⌉
// (neighborhoods of size >= k are "high-degree"; |N(v)| counts v itself).
func DegreeThreshold(n int) int { return sqrtCeil(n) }

// LowDegreeRow restricts node self's augmented weight row (diagonal
// included) to the subgraph G' induced on nodes of degree < k, where
// degs[v] = |N(v)| is the broadcast neighborhood-size vector.
// High-degree nodes are outside G' and get a nil row.
func LowDegreeRow(self int, wrow matrix.Row[semiring.WH], degs []int64, k int) matrix.Row[semiring.WH] {
	if int(degs[self]) >= k {
		return nil
	}
	low := make(matrix.Row[semiring.WH], 0, len(wrow))
	for _, en := range wrow {
		if int(degs[en.Col]) < k {
			low = append(low, en)
		}
	}
	return low
}

// TwoPlusEpsUnweightedWithHopsets is the query stage of
// TwoPlusEpsUnweighted against previously built hopsets: hsG on G and
// hsLow on the low-degree subgraph G' (both with params
// HopsetParams(hp, eps)), with degs the broadcast |N(v)| vector from the
// same preprocessing (no degree broadcast happens here).
func TwoPlusEpsUnweightedWithHopsets(nd *cc.Node, sr semiring.AugMinPlus, wrow matrix.Row[semiring.WH], eps float64, boards *hitting.BoardSeq, degs []int64, hsG, hsLow *hopset.Result) ([]int64, error) {
	n := nd.N

	// Line (1): edge estimates.
	e := newEst(n, nd.ID)
	for _, en := range wrow {
		e.upd(en.Col, en.Val.W)
	}

	// --- First phase: shortest paths with a high-degree node. ---

	// Degree threshold k = √n; |N(v)| counts v itself (§6.3).
	k := DegreeThreshold(n)
	degPlus := len(wrow) // wrow includes the diagonal, so this is |N(v)|
	highSet := make([]int32, 0, degPlus)
	if degPlus >= k {
		highSet = colsOf(wrow)
	}
	// Line (2): A hits every high-degree neighborhood.
	inA := boards.Next(nd.ID).Hit(nd, highSet)
	// Line (3): MSSP from A over the prebuilt G hopset.
	res, err := mssp.RunWithHopset(nd, sr, wrow, inA, hsG)
	if err != nil {
		return nil, err
	}
	e.updRowWH(res.Dist)
	// Line (4): distances through A - every node's set is its estimates
	// to all of A.
	aEsts := make([]disttools.Est, 0, len(res.Dist))
	for _, en := range res.Dist {
		aEsts = append(aEsts, disttools.Est{W: en.Col, To: en.Val.W, From: en.Val.W})
	}
	dts, err := disttools.DistThroughSets(nd, plainMinPlus(sr), aEsts)
	if err != nil {
		return nil, err
	}
	e.updRow(dts)

	// --- Second phase: shortest paths among low-degree nodes only. ---

	// G' is induced on nodes of degree < k; high-degree nodes have empty
	// rows (they are not in G').
	lowRow := LowDegreeRow(nd.ID, wrow, degs, k)
	// Line (5): n^{1/4}-nearest in G' (exact G'-distances, which upper
	// bound d_G and equal it for all-low shortest paths).
	kq := int(math.Ceil(math.Pow(float64(n), 0.25)))
	knearLow := disttools.KNearest(nd, sr, lowRow, kq)
	e.updRowWH(knearLow)
	// Line (6): distances through N_{k'}(u) ∩ N_{k'}(v).
	dts2, err := disttools.DistThroughSets(nd, plainMinPlus(sr), estsFromRow(knearLow))
	if err != nil {
		return nil, err
	}
	e.updRow(dts2)
	// Line (7): A' hits the N_{k'} sets of G' nodes.
	inA2 := boards.Next(nd.ID).Hit(nd, colsOf(knearLow))
	// Line (8): sparse MSSP from A' in G' over the prebuilt G' hopset
	// (the G' ∪ H graph has O~(n^{3/2}) edges).
	res2, err := mssp.RunWithHopset(nd, sr, lowRow, inA2, hsLow)
	if err != nil {
		return nil, err
	}
	e.updRowWH(res2.Dist)
	mssp2Dense := whToDense(n, res2.Dist)
	// Lines (9)-(10): pivots p'(v) and the symmetric combination.
	pv, dpv := pivotOf(knearLow, inA2)
	pvs, dpvs := broadcastPivots(nd, pv, dpv.W)
	pivotCombine(nd, e, mssp2Dense, pvs, dpvs)

	// Lines (11)-(12): 3-hop paths u - u' - v' - v with u' ∈ N_{k'}(u),
	// v' ∈ N_{k'}(v), {u',v'} ∈ E', via the triple product M1·M2·M3 over
	// min-plus (two Theorem 8 multiplications).
	pm := plainMinPlus(sr)
	m1 := make(matrix.Row[int64], 0, len(knearLow))
	for _, en := range knearLow {
		m1 = append(m1, matrix.Entry[int64]{Col: en.Col, Val: en.Val.W})
	}
	var m2 matrix.Row[int64]
	for _, en := range lowRow {
		if int(en.Col) != nd.ID {
			m2 = append(m2, matrix.Entry[int64]{Col: en.Col, Val: en.Val.W})
		}
	}
	// M3 = M1^T: ship each M1 entry to its column owner (one per link).
	out := make([]cc.Packet, 0, len(m1))
	for _, en := range m1 {
		out = append(out, cc.Packet{Dst: en.Col, M: cc.Msg{A: en.Val}})
	}
	var m3 matrix.Row[int64]
	for _, m := range nd.Sync(out) {
		m3 = append(m3, matrix.Entry[int64]{Col: m.Src, Val: m.A})
	}
	// ρ̂ for M1·M2: each output row has at most k'·maxdeg(G') <= k'·k
	// support entries.
	rho1 := kq * k
	if rho1 > n {
		rho1 = n
	}
	p1, err := matmul.Multiply(nd, pm, m1, m2, rho1)
	if err != nil {
		return nil, err
	}
	p2, err := matmul.Multiply(nd, pm, p1, m3, n)
	if err != nil {
		return nil, err
	}
	e.updRow(p2)
	return e.row, nil
}
