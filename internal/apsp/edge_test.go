package apsp

import (
	"testing"

	"github.com/congestedclique/ccsp/internal/graph"
	"github.com/congestedclique/ccsp/internal/hopset"
	"github.com/congestedclique/ccsp/internal/semiring"
)

// TestAPSPDisconnected: estimates must stay infinite across components and
// satisfy the guarantee within them.
func TestAPSPDisconnected(t *testing.T) {
	g := graph.New(20)
	// Two components: a cycle and a path.
	for v := 0; v < 9; v++ {
		g.MustAddEdge(v, (v+1)%10, 1)
	}
	g.MustAddEdge(9, 0, 1)
	for v := 10; v < 19; v++ {
		g.MustAddEdge(v, v+1, 1)
	}
	eps := 0.5
	rows, _ := runUnweighted2(t, g, eps, hopset.Practical(1))
	checkNoUnderestimates(t, g, rows)
	ref := g.APSPRef()
	for v := 0; v < g.N; v++ {
		for u := 0; u < g.N; u++ {
			if ref[v][u] >= semiring.Inf {
				continue
			}
			if got := float64(rows[v][u]); got > (2+eps)*float64(ref[v][u])+1e-9 {
				t.Fatalf("(%d,%d): %v exceeds (2+ε)·%d", v, u, got, ref[v][u])
			}
		}
	}
}

// TestAPSPTinyGraphs: degenerate sizes must not crash or violate bounds.
func TestAPSPTinyGraphs(t *testing.T) {
	for _, n := range []int{2, 3, 5} {
		g := graph.New(n)
		for v := 0; v+1 < n; v++ {
			g.MustAddEdge(v, v+1, 2)
		}
		rows, _ := runWeighted2(t, g, 1.0, hopset.Practical(1))
		checkNoUnderestimates(t, g, rows)
		ref := g.APSPRef()
		for v := 0; v < n; v++ {
			for u := 0; u < n; u++ {
				if ref[v][u] >= semiring.Inf {
					continue
				}
				// Worst admissible: (2+ε)d + (1+ε)W with W <= d.
				if float64(rows[v][u]) > (3+2.0)*float64(ref[v][u])+1e-9 {
					t.Fatalf("n=%d (%d,%d): estimate %d too large for d=%d", n, v, u, rows[v][u], ref[v][u])
				}
			}
		}
	}
}

// TestAPSPCompleteGraph: on K_n everything is adjacent - estimates must be
// exact after line (1).
func TestAPSPCompleteGraph(t *testing.T) {
	n := 16
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.MustAddEdge(u, v, 1)
		}
	}
	rows, _ := runUnweighted2(t, g, 0.5, hopset.Practical(1))
	for v := 0; v < n; v++ {
		for u := 0; u < n; u++ {
			want := int64(1)
			if u == v {
				want = 0
			}
			if rows[v][u] != want {
				t.Fatalf("(%d,%d)=%d, want %d", v, u, rows[v][u], want)
			}
		}
	}
}

// TestAPSPDeterministic: two identical runs agree bit for bit.
func TestAPSPDeterministic(t *testing.T) {
	g := randGraph(20, 24, 8, 42)
	r1, s1 := runWeighted2(t, g, 0.5, hopset.Practical(1))
	r2, s2 := runWeighted2(t, g, 0.5, hopset.Practical(1))
	if s1.String() != s2.String() {
		t.Errorf("stats differ: %v vs %v", s1.String(), s2.String())
	}
	for v := range r1 {
		for u := range r1[v] {
			if r1[v][u] != r2[v][u] {
				t.Fatalf("estimates differ at (%d,%d)", v, u)
			}
		}
	}
}
