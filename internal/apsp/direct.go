// Direct (host-side) counterparts of the §6 APSP query stages
// (DESIGN.md §12): the same algebra as the ...WithHopset collectives,
// computed for all nodes at once on the full weight matrix with the
// matmul kernels. Every estimate update is a monotone min on dense rows,
// so the accumulation order is irrelevant and each function's row v is
// byte-identical to what its collective sibling returns at node v.
package apsp

import (
	"context"
	"math"

	"github.com/congestedclique/ccsp/internal/disttools"
	"github.com/congestedclique/ccsp/internal/hitting"
	"github.com/congestedclique/ccsp/internal/matmul"
	"github.com/congestedclique/ccsp/internal/matrix"
	"github.com/congestedclique/ccsp/internal/mssp"
	"github.com/congestedclique/ccsp/internal/semiring"
)

// estAll is the dense n×n estimate table: row v mirrors node v's est.
type estAll struct {
	rows [][]int64
}

func newEstAll(n int) *estAll {
	e := &estAll{rows: make([][]int64, n)}
	for v := 0; v < n; v++ {
		row := make([]int64, n)
		for i := range row {
			row[i] = semiring.Inf
		}
		row[v] = 0
		e.rows[v] = row
	}
	return e
}

func (e *estAll) upd(v int, u int32, val int64) {
	if val < e.rows[v][u] {
		e.rows[v][u] = val
	}
}

func (e *estAll) updMatWH(m *matrix.Mat[semiring.WH]) {
	for v, r := range m.Rows {
		for _, en := range r {
			e.upd(v, en.Col, en.Val.W)
		}
	}
}

func (e *estAll) updMat(m *matrix.Mat[int64]) {
	for v, r := range m.Rows {
		for _, en := range r {
			e.upd(v, en.Col, en.Val)
		}
	}
}

// exactKNearestAll mirrors exactKNearest for all nodes: k-nearest rows
// plus the symmetric update (u learns d(v,u) for v with u ∈ N_k(v)).
func exactKNearestAll(ctx context.Context, sr semiring.AugMinPlus, w *matrix.Mat[semiring.WH], k, workers int, e *estAll) (*matrix.Mat[semiring.WH], error) {
	knear, err := disttools.KNearestAll[semiring.WH](ctx, sr, w, k, workers)
	if err != nil {
		return nil, err
	}
	for v, r := range knear.Rows {
		for _, en := range r {
			e.upd(v, en.Col, en.Val.W)
			if int(en.Col) != v {
				e.upd(int(en.Col), int32(v), en.Val.W)
			}
		}
	}
	return knear, nil
}

// pivotsAll mirrors pivotOf for all nodes.
func pivotsAll(knear *matrix.Mat[semiring.WH], inA []bool) (pvs []int64, dpvs []int64) {
	n := knear.N
	pvs = make([]int64, n)
	dpvs = make([]int64, n)
	for v := 0; v < n; v++ {
		pv, dpv := pivotOf(knear.Rows[v], inA)
		pvs[v] = int64(pv)
		dpvs[v] = dpv.W
	}
	return pvs, dpvs
}

// pivotCombineAll applies the §6.2 line (7) / §6.3 line (10) updates for
// every pair, mirroring pivotCombine: mssp[v] is node v's dense MSSP row.
func pivotCombineAll(e *estAll, mssp [][]int64, pvs, dpvs []int64) {
	n := len(pvs)
	for v := 0; v < n; v++ {
		for u := 0; u < n; u++ {
			if pvs[v] >= 0 {
				e.upd(v, int32(u), addSat(dpvs[v], mssp[u][pvs[v]]))
			}
			if pu := pvs[u]; pu >= 0 {
				e.upd(v, int32(u), addSat(dpvs[u], mssp[v][pu]))
			}
		}
	}
}

// denseAll converts an augmented result matrix to per-node dense rows.
func denseAll(m *matrix.Mat[semiring.WH]) [][]int64 {
	out := make([][]int64, m.N)
	for v := 0; v < m.N; v++ {
		out[v] = whToDense(m.N, m.Rows[v])
	}
	return out
}

// colSets extracts each row's column set (the hitting-set inputs).
func colSets(m *matrix.Mat[semiring.WH]) [][]int32 {
	sets := make([][]int32, m.N)
	for v := 0; v < m.N; v++ {
		sets[v] = colsOf(m.Rows[v])
	}
	return sets
}

// ThreePlusEpsDirect is the host-side counterpart of
// ThreePlusEpsWithHopset for all nodes. gh and beta come from the eps/2
// artifact on G (gh = mssp.MergeGH(sr, w, art), beta = art.Beta);
// callers serving many queries pass a cached merge (DESIGN.md §13). Row
// v of the result is byte-identical to node v's collective output.
func ThreePlusEpsDirect(ctx context.Context, sr semiring.AugMinPlus, w, gh *matrix.Mat[semiring.WH], beta, workers int) ([][]int64, error) {
	n := w.N
	e := newEstAll(n)
	for v := 0; v < n; v++ {
		for _, en := range w.Rows[v] {
			e.upd(v, en.Col, en.Val.W)
		}
	}
	knear, err := exactKNearestAll(ctx, sr, w, sqrtCeil(n), workers, e)
	if err != nil {
		return nil, err
	}
	inA := hitting.Greedy(n, colSets(knear))
	res, err := mssp.RunDirectMerged(ctx, gh, beta, inA, workers)
	if err != nil {
		return nil, err
	}
	e.updMatWH(res)
	msspDense := denseAll(res)
	pvs, dpvs := pivotsAll(knear, inA)
	// The one-sided §6.1 combine: δ(v,u) = min(δ, d(u,p(u)) + δ̃(v, p(u))).
	for v := 0; v < n; v++ {
		for u := 0; u < n; u++ {
			if pu := pvs[u]; pu >= 0 {
				e.upd(v, int32(u), addSat(dpvs[u], msspDense[v][pu]))
			}
		}
	}
	return e.rows, nil
}

// TwoPlusEpsWeightedDirect is the host-side counterpart of
// TwoPlusEpsWeightedWithHopset for all nodes. gh and beta come from the
// eps/2 artifact on G, as in ThreePlusEpsDirect.
func TwoPlusEpsWeightedDirect(ctx context.Context, sr semiring.AugMinPlus, w, gh *matrix.Mat[semiring.WH], beta, workers int) ([][]int64, error) {
	n := w.N
	// Line (1): edge estimates.
	e := newEstAll(n)
	for v := 0; v < n; v++ {
		for _, en := range w.Rows[v] {
			e.upd(v, en.Col, en.Val.W)
		}
	}
	// Line (2): exact distances to the √n nearest (both directions).
	knear, err := exactKNearestAll(ctx, sr, w, sqrtCeil(n), workers, e)
	if err != nil {
		return nil, err
	}
	// Line (3): distances through N_k(u) ∩ N_k(v).
	ests := make([][]disttools.Est, n)
	for v := 0; v < n; v++ {
		ests[v] = estsFromRow(knear.Rows[v])
	}
	dts, err := disttools.DistThroughSetsAll(ctx, plainMinPlus(sr), n, ests, workers)
	if err != nil {
		return nil, err
	}
	e.updMat(dts)
	// Line (4): hitting set A of the N_k sets.
	inA := hitting.Greedy(n, colSets(knear))
	// Line (5): (1+ε')-approximate MSSP from A over the prebuilt hopset.
	res, err := mssp.RunDirectMerged(ctx, gh, beta, inA, workers)
	if err != nil {
		return nil, err
	}
	e.updMatWH(res)
	// Lines (6)-(7): pivots and the symmetric combination.
	pvs, dpvs := pivotsAll(knear, inA)
	pivotCombineAll(e, denseAll(res), pvs, dpvs)
	return e.rows, nil
}

// TwoPlusEpsUnweightedDirect is the host-side counterpart of
// TwoPlusEpsUnweightedWithHopsets for all nodes. ghG/betaG come from the
// eps/2 hopset on G and ghLow/betaLow from the eps/2 hopset on the
// low-degree subgraph G', whose weight matrix low the caller builds with
// LowDegreeRow from the preprocessing's |N(v)| vector (and can cache
// across queries, DESIGN.md §13).
func TwoPlusEpsUnweightedDirect(ctx context.Context, sr semiring.AugMinPlus, w, ghG *matrix.Mat[semiring.WH], betaG int, low, ghLow *matrix.Mat[semiring.WH], betaLow, workers int) ([][]int64, error) {
	n := w.N

	// Line (1): edge estimates.
	e := newEstAll(n)
	for v := 0; v < n; v++ {
		for _, en := range w.Rows[v] {
			e.upd(v, en.Col, en.Val.W)
		}
	}

	// --- First phase: shortest paths with a high-degree node. ---

	k := DegreeThreshold(n)
	sets := make([][]int32, n)
	for v := 0; v < n; v++ {
		if len(w.Rows[v]) >= k { // the row includes the diagonal: |N(v)|
			sets[v] = colsOf(w.Rows[v])
		} else {
			sets[v] = make([]int32, 0)
		}
	}
	// Line (2): A hits every high-degree neighborhood.
	inA := hitting.Greedy(n, sets)
	// Line (3): MSSP from A over the prebuilt G hopset.
	res, err := mssp.RunDirectMerged(ctx, ghG, betaG, inA, workers)
	if err != nil {
		return nil, err
	}
	e.updMatWH(res)
	// Line (4): distances through A.
	aEsts := make([][]disttools.Est, n)
	for v := 0; v < n; v++ {
		lst := make([]disttools.Est, 0, len(res.Rows[v]))
		for _, en := range res.Rows[v] {
			lst = append(lst, disttools.Est{W: en.Col, To: en.Val.W, From: en.Val.W})
		}
		aEsts[v] = lst
	}
	dts, err := disttools.DistThroughSetsAll(ctx, plainMinPlus(sr), n, aEsts, workers)
	if err != nil {
		return nil, err
	}
	e.updMat(dts)

	// --- Second phase: shortest paths among low-degree nodes only. ---

	// Line (5): n^{1/4}-nearest in G'.
	kq := int(math.Ceil(math.Pow(float64(n), 0.25)))
	knearLow, err := disttools.KNearestAll[semiring.WH](ctx, sr, low, kq, workers)
	if err != nil {
		return nil, err
	}
	e.updMatWH(knearLow)
	// Line (6): distances through N_{k'}(u) ∩ N_{k'}(v).
	ests2 := make([][]disttools.Est, n)
	for v := 0; v < n; v++ {
		ests2[v] = estsFromRow(knearLow.Rows[v])
	}
	dts2, err := disttools.DistThroughSetsAll(ctx, plainMinPlus(sr), n, ests2, workers)
	if err != nil {
		return nil, err
	}
	e.updMat(dts2)
	// Line (7): A' hits the N_{k'} sets of G' nodes.
	inA2 := hitting.Greedy(n, colSets(knearLow))
	// Line (8): sparse MSSP from A' in G' over the prebuilt G' hopset.
	res2, err := mssp.RunDirectMerged(ctx, ghLow, betaLow, inA2, workers)
	if err != nil {
		return nil, err
	}
	e.updMatWH(res2)
	// Lines (9)-(10): pivots p'(v) and the symmetric combination.
	pvs, dpvs := pivotsAll(knearLow, inA2)
	pivotCombineAll(e, denseAll(res2), pvs, dpvs)

	// Lines (11)-(12): the 3-hop triple product M1·M2·M3 over min-plus.
	pm := plainMinPlus(sr)
	m1 := matrix.New[int64](n)
	m2 := matrix.New[int64](n)
	for v := 0; v < n; v++ {
		r1 := make(matrix.Row[int64], 0, len(knearLow.Rows[v]))
		for _, en := range knearLow.Rows[v] {
			r1 = append(r1, matrix.Entry[int64]{Col: en.Col, Val: en.Val.W})
		}
		m1.Rows[v] = r1
		for _, en := range low.Rows[v] {
			if int(en.Col) != v {
				m2.Rows[v] = append(m2.Rows[v], matrix.Entry[int64]{Col: en.Col, Val: en.Val.W})
			}
		}
	}
	m3 := m1.Transpose()
	p1 := matmul.KernelMul[int64](pm, m1, m2, workers)
	p2 := matmul.KernelMul[int64](pm, p1, m3, workers)
	e.updMat(p2)
	return e.rows, nil
}
