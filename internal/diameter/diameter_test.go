package diameter

import (
	"context"
	"math/rand"
	"testing"

	"github.com/congestedclique/ccsp/internal/cc"
	"github.com/congestedclique/ccsp/internal/graph"
	"github.com/congestedclique/ccsp/internal/hitting"
	"github.com/congestedclique/ccsp/internal/hopset"
)

func randGraph(n, extraEdges int, maxW int64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(v, rng.Intn(v), rng.Int63n(maxW)+1)
	}
	for e := 0; e < extraEdges; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.MustAddEdge(u, v, rng.Int63n(maxW)+1)
		}
	}
	return g
}

func lineGraph(n int, w int64) *graph.Graph {
	g := graph.New(n)
	for v := 0; v+1 < n; v++ {
		g.MustAddEdge(v, v+1, w)
	}
	return g
}

func cycleGraph(n int) *graph.Graph {
	g := graph.New(n)
	for v := 0; v < n; v++ {
		g.MustAddEdge(v, (v+1)%n, 1)
	}
	return g
}

func runDiameter(t *testing.T, g *graph.Graph, eps float64) int64 {
	t.Helper()
	sr := g.AugSemiring()
	boards := hitting.NewBoardSeq(g.N)
	var estimate int64
	_, err := cc.Run(context.Background(), cc.Config{N: g.N}, func(nd *cc.Node) error {
		est, err := Approx(nd, sr, g.WeightRow(nd.ID), eps, boards, hopset.Practical(eps))
		if err != nil {
			return err
		}
		if nd.ID == 0 {
			estimate = est
		}
		return nil
	})
	if err != nil {
		t.Fatalf("diameter failed: %v", err)
	}
	return estimate
}

// claim35Lower returns the Claim 35 lower bound for unweighted diameter D.
func claim35Lower(d int64) int64 {
	h, z := d/3, d%3
	if z == 2 {
		return 2*h + 1
	}
	return 2*h + z
}

func TestDiameterUnweightedBounds(t *testing.T) {
	eps := 0.5
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"line", lineGraph(25, 1)},
		{"cycle", cycleGraph(24)},
		{"random-sparse", randGraph(24, 10, 1, 3)},
		{"random-dense", randGraph(25, 80, 1, 4)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, connected := tc.g.Diameter()
			if !connected {
				t.Fatal("test graph must be connected")
			}
			got := runDiameter(t, tc.g, eps)
			if got < claim35Lower(d) {
				t.Errorf("estimate %d below Claim 35 lower bound %d (D=%d)", got, claim35Lower(d), d)
			}
			if float64(got) > (1+eps)*float64(d)+1e-9 {
				t.Errorf("estimate %d exceeds (1+ε)·D = (1+%v)·%d", got, eps, d)
			}
		})
	}
}

func TestDiameterWeightedBounds(t *testing.T) {
	// Weighted: floor(2D/3 - W) <= D' <= (1+ε)D (remark after Claim 35).
	eps := 0.5
	g := randGraph(25, 30, 10, 5)
	d, connected := g.Diameter()
	if !connected {
		t.Fatal("test graph must be connected")
	}
	got := runDiameter(t, g, eps)
	lower := 2*d/3 - g.MaxW()
	if got < lower {
		t.Errorf("estimate %d below weighted lower bound %d (D=%d, W=%d)", got, lower, d, g.MaxW())
	}
	if float64(got) > (1+eps)*float64(d)+1e-9 {
		t.Errorf("estimate %d exceeds (1+ε)·%d", got, d)
	}
}

func TestDiameterAgreesAcrossNodes(t *testing.T) {
	g := randGraph(20, 20, 5, 6)
	sr := g.AugSemiring()
	boards := hitting.NewBoardSeq(g.N)
	ests := make([]int64, g.N)
	_, err := cc.Run(context.Background(), cc.Config{N: g.N}, func(nd *cc.Node) error {
		est, err := Approx(nd, sr, g.WeightRow(nd.ID), 0.5, boards, hopset.Practical(0.5))
		if err != nil {
			return err
		}
		ests[nd.ID] = est
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v < g.N; v++ {
		if ests[v] != ests[0] {
			t.Fatalf("nodes disagree on the estimate: %d vs %d", ests[v], ests[0])
		}
	}
}
