package diameter

import (
	"context"
	"fmt"
	"math"

	"github.com/congestedclique/ccsp/internal/disttools"
	"github.com/congestedclique/ccsp/internal/hitting"
	"github.com/congestedclique/ccsp/internal/matrix"
	"github.com/congestedclique/ccsp/internal/mssp"
	"github.com/congestedclique/ccsp/internal/semiring"
)

// ApproxDirect is the host-side counterpart of ApproxWithHopset
// (DESIGN.md §12): the same Roditty-Vassilevska Williams scheme computed
// on the full weight matrix with the matmul kernels. The estimate is
// byte-identical to the collective version against the same artifact;
// every step - the k-nearest sets, the greedy hitting set, the pivot
// argmax tie-breaking, the N_k(w) membership and both MSSP stages -
// mirrors it exactly. gh and beta come from the artifact (gh =
// mssp.MergeGH(sr, w, art), beta = art.Beta); callers serving many
// queries pass a cached merge (DESIGN.md §13). workers sizes the kernel
// pool.
func ApproxDirect(ctx context.Context, sr semiring.AugMinPlus, w, gh *matrix.Mat[semiring.WH], beta, workers int) (int64, error) {
	n := w.N
	// Line (1): distances to the k nearest, k = O~(√n).
	k := int(math.Ceil(math.Sqrt(float64(n)) * math.Log2(float64(n)+1)))
	if k > n {
		k = n
	}
	knear, err := disttools.KNearestAll[semiring.WH](ctx, sr, w, k, workers)
	if err != nil {
		return 0, fmt.Errorf("diameter: %w", err)
	}
	sets := make([][]int32, n)
	for v := 0; v < n; v++ {
		sv := make([]int32, 0, len(knear.Rows[v]))
		for _, e := range knear.Rows[v] {
			sv = append(sv, e.Col)
		}
		sets[v] = sv
	}
	// Line (2): hitting set S.
	inS := hitting.Greedy(n, sets)
	// Line (3): MSSP from S over the shared hopset.
	res, err := mssp.RunDirectMerged(ctx, gh, beta, inS, workers)
	if err != nil {
		return 0, fmt.Errorf("diameter: %w", err)
	}
	// Line (4): pivot distances d(v, p(v)), 0 for nodes with no pivot.
	dpvs := make([]int64, n)
	for v := 0; v < n; v++ {
		dpv := semiring.InfWH
		for _, e := range knear.Rows[v] {
			if inS[e.Col] && semiring.LessWH(e.Val, dpv) {
				dpv = e.Val
			}
		}
		if dpv.W < semiring.Inf {
			dpvs[v] = dpv.W
		}
	}
	// Line (5): w maximizes d(v, p(v)), ties to the smallest ID; N_k(w)
	// membership is the columns of w's k-nearest row plus w itself.
	wNode := 0
	for v := 1; v < n; v++ {
		if dpvs[v] > dpvs[wNode] {
			wNode = v
		}
	}
	inNkwAll := make([]bool, n)
	for _, e := range knear.Rows[wNode] {
		inNkwAll[e.Col] = true
	}
	inNkwAll[wNode] = true
	res2, err := mssp.RunDirectMerged(ctx, gh, beta, inNkwAll, workers)
	if err != nil {
		return 0, fmt.Errorf("diameter: second MSSP: %w", err)
	}
	// Line (6): the estimate is the maximum finite distance in either MSSP.
	var best int64
	for _, m := range []*matrix.Mat[semiring.WH]{res, res2} {
		for v := 0; v < n; v++ {
			for _, e := range m.Rows[v] {
				if e.Val.W < semiring.Inf && e.Val.W > best {
					best = e.Val.W
				}
			}
		}
	}
	return best, nil
}
