// Package diameter implements the near-3/2 diameter approximation of §7.2
// (Claims 34-35): the Roditty-Vassilevska Williams scheme [54] built from
// the paper's distance tools - k-nearest sets, a hitting set S, a
// (1+ε)-MSSP from S, and a second (1+ε)-MSSP from N_k(w) for the node w
// farthest from its pivot. For unweighted diameter D = 3h+z the estimate D'
// satisfies 2h+z <= D' <= (1+ε)D (z ∈ {0,1}; 2h+1 for z = 2); weighted
// graphs lose an additive max-edge-weight term.
package diameter

import (
	"fmt"
	"math"

	"github.com/congestedclique/ccsp/internal/cc"
	"github.com/congestedclique/ccsp/internal/disttools"
	"github.com/congestedclique/ccsp/internal/hitting"
	"github.com/congestedclique/ccsp/internal/hopset"
	"github.com/congestedclique/ccsp/internal/matrix"
	"github.com/congestedclique/ccsp/internal/mssp"
	"github.com/congestedclique/ccsp/internal/semiring"
)

// Approx returns the diameter estimate (identical at all nodes). eps is
// the MSSP approximation parameter; hp configures the shared hopset.
func Approx(nd *cc.Node, sr semiring.AugMinPlus, wrow matrix.Row[semiring.WH], eps float64, boards *hitting.BoardSeq, hp hopset.Params) (int64, error) {
	hp.Eps = eps
	hs, err := hopset.Build(nd, sr, wrow, boards.Next(nd.ID), hp)
	if err != nil {
		return 0, fmt.Errorf("diameter: %w", err)
	}
	return ApproxWithHopset(nd, sr, wrow, boards, hs)
}

// ApproxWithHopset is the query stage of Approx against a previously
// built hopset on G (built at the target ε): both MSSP stages reuse it,
// so the run pays zero hopset-construction rounds.
func ApproxWithHopset(nd *cc.Node, sr semiring.AugMinPlus, wrow matrix.Row[semiring.WH], boards *hitting.BoardSeq, hs *hopset.Result) (int64, error) {
	n := nd.N
	// Line (1): distances to the k nearest, k = O~(√n) so that the
	// hitting set has size O~(√n).
	k := int(math.Ceil(math.Sqrt(float64(n)) * math.Log2(float64(n)+1)))
	if k > n {
		k = n
	}
	knear := disttools.KNearest(nd, sr, wrow, k)
	sv := make([]int32, 0, len(knear))
	for _, e := range knear {
		sv = append(sv, e.Col)
	}
	// Line (2): hitting set S.
	inS := boards.Next(nd.ID).Hit(nd, sv)
	// Line (3): MSSP from S over the shared hopset (reused by line (5)).
	res, err := mssp.RunWithHopset(nd, sr, wrow, inS, hs)
	if err != nil {
		return 0, fmt.Errorf("diameter: %w", err)
	}
	// Line (4): pivots p(v) ∈ S ∩ N_k(v), exact d(v, p(v)); all nodes
	// learn all pivot distances.
	dpv := semiring.InfWH
	for _, e := range knear {
		if inS[e.Col] && semiring.LessWH(e.Val, dpv) {
			dpv = e.Val
		}
	}
	pivD := int64(0)
	if dpv.W < semiring.Inf {
		pivD = dpv.W
	}
	dpvs := nd.BroadcastVal(pivD)
	// Line (5): w maximizes d(v, p(v)); ties to the smallest ID. w floods
	// N_k(w) membership (one message per member, then a membership
	// broadcast).
	w := 0
	for v := 1; v < n; v++ {
		if dpvs[v] > dpvs[w] {
			w = v
		}
	}
	var flood []cc.Packet
	if nd.ID == w {
		for _, e := range knear {
			flood = append(flood, cc.Packet{Dst: e.Col, M: cc.Msg{}})
		}
	}
	inNkw := len(nd.Sync(flood)) > 0 || nd.ID == w
	member := int64(0)
	if inNkw {
		member = 1
	}
	members := nd.BroadcastVal(member)
	inNkwAll := make([]bool, n)
	for v := range inNkwAll {
		inNkwAll[v] = members[v] == 1
	}
	res2, err := mssp.RunWithHopset(nd, sr, wrow, inNkwAll, hs)
	if err != nil {
		return 0, fmt.Errorf("diameter: second MSSP: %w", err)
	}
	// Line (6): the estimate is the maximum distance seen in either MSSP.
	var local int64
	for _, e := range res.Dist {
		if e.Val.W < semiring.Inf && e.Val.W > local {
			local = e.Val.W
		}
	}
	for _, e := range res2.Dist {
		if e.Val.W < semiring.Inf && e.Val.W > local {
			local = e.Val.W
		}
	}
	maxes := nd.BroadcastVal(local)
	best := int64(0)
	for _, m := range maxes {
		if m > best {
			best = m
		}
	}
	return best, nil
}
