// Package loadgen drives synthetic query traffic against a ccspd daemon
// or cluster and measures what came back: throughput, latency quantiles
// and a typed error census. It is the measurement half of the serving
// claims - the daemon bounds its concurrency with admission control,
// and loadgen is how we observe that bound from the outside (admitted
// requests keep their latency, the excess sheds as fast typed 503s).
//
// A Run replays a weighted mix of query kinds with randomized sources
// drawn from a uniform or Zipf distribution, either closed-loop (each
// of Concurrency workers issues its next request the moment the
// previous answer lands - throughput finds its own level) or open-loop
// (requests arrive at a fixed aggregate QPS regardless of how the
// daemon is doing - the honest model of external traffic, where
// overload shows up as shed errors rather than self-throttling).
// Runs are deterministic for a fixed Config.Seed apart from wall-clock
// jitter: the request sequence each worker generates is seeded.
//
// cmd/ccload is the CLI wrapper; experiment E19 (internal/bench) runs
// the same harness in-process against httptest daemons.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/congestedclique/ccsp"
	"github.com/congestedclique/ccsp/api"
)

// Target is the query surface a run drives. Both *client.Client (one
// daemon) and *client.Cluster (sharded tier) satisfy it.
type Target interface {
	Query(ctx context.Context, req api.Request) (*api.Response, error)
	Batch(ctx context.Context, reqs []api.Request) ([]api.Response, error)
}

// UpdateTarget is the optional mutation surface: a Target that also
// implements it can serve mixes containing the "update" kind
// (*client.Client does). Run type-asserts at startup and rejects an
// update-carrying mix against a read-only target.
type UpdateTarget interface {
	Update(ctx context.Context, graph string, ups []api.EdgeUpdate) (*api.UpdateResponse, error)
}

// Distribution selects how source node IDs are drawn.
type Distribution string

const (
	// Uniform draws sources uniformly over [0, Nodes).
	Uniform Distribution = "uniform"
	// Zipf draws sources Zipf-distributed (s=1.1): a few hot nodes
	// dominate, the realistic shape for cache-hit studies.
	Zipf Distribution = "zipf"
)

// ParseDistribution maps a flag string onto a Distribution.
func ParseDistribution(s string) (Distribution, error) {
	switch Distribution(s) {
	case Uniform, Zipf:
		return Distribution(s), nil
	case "":
		return Uniform, nil
	default:
		return "", fmt.Errorf("loadgen: unknown source distribution %q (uniform | zipf)", s)
	}
}

// DefaultMix is the kind mix used when Config.Mix is empty: mostly
// point lookups with a steady trickle of heavier sweeps, the shape of
// a distance-serving workload.
func DefaultMix() map[api.Kind]int {
	return map[api.Kind]int{
		api.KindDistance: 70,
		api.KindSSSP:     20,
		api.KindMSSP:     10,
	}
}

// mixKinds is the fixed kind order loadgen iterates mixes in: the
// query kinds plus the write kind (api.KindUpdate is deliberately not
// a query kind, but workload mixes name write traffic with it).
func mixKinds() []api.Kind {
	return append(api.Kinds(), api.KindUpdate)
}

// ParseMix parses a "kind=weight,kind=weight" flag string (e.g.
// "distance=70,sssp=20,update=5"). Weights must be positive integers
// and kinds must be valid api kinds (or "update" for write traffic).
func ParseMix(s string) (map[api.Kind]int, error) {
	if strings.TrimSpace(s) == "" {
		return DefaultMix(), nil
	}
	known := make(map[api.Kind]bool)
	for _, k := range mixKinds() {
		known[k] = true
	}
	mix := make(map[api.Kind]int)
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("loadgen: bad mix entry %q (want kind=weight)", part)
		}
		kind := api.Kind(strings.TrimSpace(kv[0]))
		if !known[kind] {
			return nil, fmt.Errorf("loadgen: unknown kind %q in mix", kv[0])
		}
		var w int
		if _, err := fmt.Sscanf(strings.TrimSpace(kv[1]), "%d", &w); err != nil || w <= 0 {
			return nil, fmt.Errorf("loadgen: bad weight %q for kind %q", kv[1], kind)
		}
		mix[kind] = w
	}
	return mix, nil
}

// Config parameterizes one load run. Zero values fall back to the
// documented defaults; Nodes is the one required field.
type Config struct {
	// Mix weights the query kinds; nil or empty uses DefaultMix.
	Mix map[api.Kind]int
	// Graphs lists the graph IDs to spread requests over; empty targets
	// the default (unnamed) graph only.
	Graphs []string
	// Nodes is the node-ID space: sources and targets are drawn from
	// [0, Nodes). Required (> 0); cmd/ccload discovers it via /healthz.
	Nodes int
	// Source selects the source-ID distribution (default Uniform).
	Source Distribution
	// Duration bounds the run's wall clock (default 5s).
	Duration time.Duration
	// Concurrency is the worker count: the closed-loop in-flight bound,
	// or the open-loop pool draining the pacer (default 8).
	Concurrency int
	// QPS > 0 switches to open-loop arrivals at this aggregate rate;
	// 0 runs closed-loop.
	QPS float64
	// BatchSize > 1 groups requests into POST /v1/batch operations of
	// this size; 0 or 1 issues single queries. Update positions are
	// always issued as individual POST /v1/update operations - the
	// update plane has no batch-of-batches endpoint.
	BatchSize int
	// UpdateMaxW bounds the weight of generated edge updates: each
	// update reweights one random edge {u, v} to a weight drawn
	// uniformly from [1, UpdateMaxW] (default 16). Only meaningful when
	// the mix contains the "update" kind.
	UpdateMaxW int64
	// Seed makes the generated request sequence deterministic (0 = 1).
	Seed int64
}

func (c *Config) defaults() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("loadgen: Config.Nodes must be positive (got %d)", c.Nodes)
	}
	if len(c.Mix) == 0 {
		c.Mix = DefaultMix()
	}
	if c.Source == "" {
		c.Source = Uniform
	}
	if c.Duration <= 0 {
		c.Duration = 5 * time.Second
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.BatchSize < 0 {
		return fmt.Errorf("loadgen: negative BatchSize %d", c.BatchSize)
	}
	if c.QPS < 0 {
		return fmt.Errorf("loadgen: negative QPS %.1f", c.QPS)
	}
	if c.UpdateMaxW < 0 {
		return fmt.Errorf("loadgen: negative UpdateMaxW %d", c.UpdateMaxW)
	}
	if c.UpdateMaxW == 0 {
		c.UpdateMaxW = 16
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return nil
}

// Report is what a run measured. Latency quantiles are per-operation
// (a batch is one operation) over every completed op, successes and
// errors alike - a shed 503 is deliberately counted, because "errors
// come back fast" is part of what overload behavior must prove.
type Report struct {
	// Config echo, for self-describing output.
	Workload string        `json:"workload"`
	Duration time.Duration `json:"-"`
	Seconds  float64       `json:"seconds"`

	// Ops counts HTTP operations; Requests counts query positions
	// (Ops == Requests unless batching).
	Ops      int64 `json:"ops"`
	Requests int64 `json:"requests"`
	// OK counts query positions that answered without a typed error.
	OK int64 `json:"ok"`
	// Missed counts open-loop arrivals dropped because the backlog was
	// full - the generator itself couldn't keep pace, so the offered
	// rate was effectively lower than QPS.
	Missed int64 `json:"missed,omitempty"`

	// QPS is completed query positions per second of run wall-clock.
	QPS float64 `json:"qps"`

	// ErrorsByCode censuses failed positions by api.ErrorCode string,
	// with "transport" for untyped failures (connection refused, etc).
	ErrorsByCode map[string]int64 `json:"errors_by_code,omitempty"`

	// ByKind counts issued query positions per kind.
	ByKind map[api.Kind]int64 `json:"by_kind"`

	// Per-op latency quantiles.
	P50  time.Duration `json:"-"`
	P95  time.Duration `json:"-"`
	P99  time.Duration `json:"-"`
	Max  time.Duration `json:"-"`
	Mean time.Duration `json:"-"`

	P50Millis  float64 `json:"p50_ms"`
	P95Millis  float64 `json:"p95_ms"`
	P99Millis  float64 `json:"p99_ms"`
	MaxMillis  float64 `json:"max_ms"`
	MeanMillis float64 `json:"mean_ms"`
}

// Errors sums the typed and transport error counts.
func (r *Report) Errors() int64 {
	var n int64
	for _, c := range r.ErrorsByCode {
		n += c
	}
	return n
}

// worker-local accumulator, merged once at the end so the measurement
// path shares nothing.
type tally struct {
	ops, requests, ok int64
	errs              map[string]int64
	byKind            map[api.Kind]int64
	samples           []time.Duration
}

func newTally() *tally {
	return &tally{errs: make(map[string]int64), byKind: make(map[api.Kind]int64)}
}

// errCode maps a failure onto its api.ErrorCode string via the sentinel
// taxonomy; anything untyped (socket errors, proxy pages) is "transport".
func errCode(err error) string {
	switch {
	case errors.Is(err, ccsp.ErrOverloaded):
		return string(api.CodeOverloaded)
	case errors.Is(err, ccsp.ErrUnavailable):
		return string(api.CodeUnavailable)
	case errors.Is(err, ccsp.ErrUnknownGraph):
		return string(api.CodeUnknownGraph)
	case errors.Is(err, ccsp.ErrRoundLimit):
		return string(api.CodeRoundLimit)
	case errors.Is(err, ccsp.ErrInvalidSource):
		return string(api.CodeInvalidSource)
	case errors.Is(err, ccsp.ErrInvalidOption):
		return string(api.CodeInvalidOption)
	case errors.Is(err, api.ErrMalformed):
		return string(api.CodeMalformed)
	case errors.Is(err, ccsp.ErrCanceled):
		return string(api.CodeCanceled)
	default:
		var apiErr *api.Error
		if errors.As(err, &apiErr) {
			return string(apiErr.Code)
		}
		return "transport"
	}
}

// gen produces the deterministic request stream for one worker.
type gen struct {
	rng    *rand.Rand
	zipf   *rand.Zipf
	kinds  []api.Kind // weight-expanded lookup table
	graphs []string
	nodes  int
	maxW   int64
}

func newGen(cfg *Config, worker int) *gen {
	rng := rand.New(rand.NewSource(cfg.Seed + int64(worker)*7919))
	g := &gen{rng: rng, graphs: cfg.Graphs, nodes: cfg.Nodes, maxW: cfg.UpdateMaxW}
	if cfg.Source == Zipf && cfg.Nodes > 1 {
		g.zipf = rand.NewZipf(rng, 1.1, 1, uint64(cfg.Nodes-1))
	}
	// Expand weights into a flat table; total weight is small (flag
	// strings), so O(total) memory beats per-draw weighted selection.
	kinds := make([]api.Kind, 0, len(cfg.Mix))
	for _, k := range mixKinds() { // fixed order for determinism
		for i := 0; i < cfg.Mix[k]; i++ {
			kinds = append(kinds, k)
		}
	}
	g.kinds = kinds
	return g
}

func (g *gen) node() int {
	if g.zipf != nil {
		return int(g.zipf.Uint64())
	}
	return g.rng.Intn(g.nodes)
}

func (g *gen) graph() string {
	if len(g.graphs) == 0 {
		return ""
	}
	return g.graphs[g.rng.Intn(len(g.graphs))]
}

// kind draws the next kind of the weighted mix.
func (g *gen) kind() api.Kind {
	return g.kinds[g.rng.Intn(len(g.kinds))]
}

// update generates one edge mutation: reweight a random edge {u, v} to
// a weight in [1, UpdateMaxW] (insert-or-reweight, never delete, so a
// long run cannot disconnect the graph under test).
func (g *gen) update() (string, []api.EdgeUpdate) {
	u := g.node()
	v := g.node()
	for v == u && g.nodes > 1 {
		v = g.node()
	}
	return g.graph(), []api.EdgeUpdate{{U: u, V: v, W: 1 + g.rng.Int63n(g.maxW)}}
}

// reqOf generates one query request of the given kind (never
// api.KindUpdate - updates are not queries; see update).
func (g *gen) reqOf(kind api.Kind) api.Request {
	req := api.Request{Kind: kind, Graph: g.graph()}
	switch req.Kind {
	case api.KindSSSP:
		req.SSSP = &api.SSSPParams{Source: g.node()}
	case api.KindMSSP:
		req.MSSP = &api.MSSPParams{Sources: []int{g.node(), g.node(), g.node()}}
	case api.KindAPSP:
		req.APSP = &api.APSPParams{}
	case api.KindDistance:
		req.Distance = &api.DistanceParams{From: g.node(), To: g.node()}
	case api.KindDiameter:
		// no parameters
	case api.KindKNearest:
		req.KNearest = &api.KNearestParams{K: 1 + g.rng.Intn(4)}
	case api.KindSourceDetection:
		req.SourceDetection = &api.SourceDetectionParams{
			Sources: []int{g.node(), g.node()}, D: 4, K: 2,
		}
	}
	return req
}

// Run drives cfg's workload against target and reports what happened.
// It returns early only on config errors; daemon-side failures are
// data, not errors (they land in Report.ErrorsByCode).
func Run(ctx context.Context, target Target, cfg Config) (*Report, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	// Write traffic needs the mutation surface; reject the mismatch up
	// front instead of counting a run's worth of synthetic failures.
	var upd UpdateTarget
	if cfg.Mix[api.KindUpdate] > 0 {
		u, ok := target.(UpdateTarget)
		if !ok {
			return nil, fmt.Errorf("loadgen: mix contains update traffic but target %T cannot apply updates", target)
		}
		upd = u
	}
	// stopCtx only gates *issuing*: when the duration elapses, workers
	// stop picking up new work but in-flight operations drain on the
	// caller's ctx - ending the run must not manufacture canceled
	// errors out of perfectly healthy requests.
	stopCtx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()

	// Open loop: a pacer feeds arrival tokens at QPS into a bounded
	// backlog; workers drain it. A full backlog means the generator
	// (not the daemon) fell behind - counted as Missed, never blocking
	// the pacer, so the arrival process stays time-driven.
	var arrivals chan struct{}
	var missed int64
	var pacerWG sync.WaitGroup
	if cfg.QPS > 0 {
		arrivals = make(chan struct{}, cfg.Concurrency*4)
		// The pacer owes QPS*elapsed arrivals at any instant and settles
		// the debt on every tick. Anchoring to wall clock (not tick
		// counts) keeps the offered rate exact even when ticker wakeups
		// coalesce under load - exactly the moment an overload
		// experiment most needs the arrival process to hold its rate.
		interval := time.Duration(float64(time.Second) / cfg.QPS)
		if interval < time.Millisecond {
			interval = time.Millisecond
		}
		pacerWG.Add(1)
		go func() {
			defer pacerWG.Done()
			defer close(arrivals)
			ticker := time.NewTicker(interval)
			defer ticker.Stop()
			begin := time.Now()
			var issued int64
			for {
				select {
				case <-stopCtx.Done():
					return
				case <-ticker.C:
					owed := int64(cfg.QPS*time.Since(begin).Seconds()) - issued
					for ; owed > 0; owed-- {
						issued++
						select {
						case arrivals <- struct{}{}:
						default:
							missed++ // pacer is the only writer; no race
						}
					}
				}
			}
		}()
	}

	tallies := make([]*tally, cfg.Concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Concurrency; w++ {
		t := newTally()
		tallies[w] = t
		g := newGen(&cfg, w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if arrivals != nil {
					if _, ok := <-arrivals; !ok {
						return // pacer closed: run over
					}
				} else if stopCtx.Err() != nil {
					return
				}
				issue(ctx, target, upd, g, &cfg, t)
			}
		}()
	}
	wg.Wait()
	pacerWG.Wait()
	elapsed := time.Since(start)

	return assemble(tallies, &cfg, elapsed, missed), nil
}

// issue performs one operation (a single query, one batch, or one
// update) and folds the outcome into t. Update positions drawn in batch
// mode are issued as their own POST /v1/update operations - each with
// its own latency sample - and the batch carries the remaining queries.
func issue(ctx context.Context, target Target, upd UpdateTarget, g *gen, cfg *Config, t *tally) {
	if cfg.BatchSize > 1 {
		reqs := make([]api.Request, 0, cfg.BatchSize)
		for i := 0; i < cfg.BatchSize; i++ {
			if k := g.kind(); k == api.KindUpdate {
				issueUpdate(ctx, upd, g, t)
			} else {
				req := g.reqOf(k)
				t.byKind[k]++
				reqs = append(reqs, req)
			}
		}
		if len(reqs) == 0 {
			return
		}
		begin := time.Now()
		resps, err := target.Batch(ctx, reqs)
		lat := time.Since(begin)
		t.ops++
		t.requests += int64(len(reqs))
		t.samples = append(t.samples, lat)
		if err != nil {
			code := errCode(err)
			t.errs[code] += int64(len(reqs))
			return
		}
		for i := range resps {
			if e := resps[i].Error; e != nil {
				t.errs[string(e.Code)]++
			} else {
				t.ok++
			}
		}
		return
	}
	k := g.kind()
	if k == api.KindUpdate {
		issueUpdate(ctx, upd, g, t)
		return
	}
	req := g.reqOf(k)
	t.byKind[k]++
	begin := time.Now()
	_, err := target.Query(ctx, req)
	lat := time.Since(begin)
	t.ops++
	t.requests++
	t.samples = append(t.samples, lat)
	if err != nil {
		t.errs[errCode(err)]++
	} else {
		t.ok++
	}
}

// issueUpdate performs one synchronous edge update (one graph
// generation: the latency sample covers staging plus the rebuild).
func issueUpdate(ctx context.Context, upd UpdateTarget, g *gen, t *tally) {
	graph, ups := g.update()
	t.byKind[api.KindUpdate]++
	begin := time.Now()
	_, err := upd.Update(ctx, graph, ups)
	lat := time.Since(begin)
	t.ops++
	t.requests++
	t.samples = append(t.samples, lat)
	if err != nil {
		t.errs[errCode(err)]++
	} else {
		t.ok++
	}
}

// assemble merges worker tallies into the final report.
func assemble(tallies []*tally, cfg *Config, elapsed time.Duration, missed int64) *Report {
	r := &Report{
		Workload:     describe(cfg),
		Duration:     elapsed,
		Seconds:      elapsed.Seconds(),
		ErrorsByCode: make(map[string]int64),
		ByKind:       make(map[api.Kind]int64),
		Missed:       missed,
	}
	var all []time.Duration
	var sum time.Duration
	for _, t := range tallies {
		r.Ops += t.ops
		r.Requests += t.requests
		r.OK += t.ok
		for c, n := range t.errs {
			r.ErrorsByCode[c] += n
		}
		for k, n := range t.byKind {
			r.ByKind[k] += n
		}
		all = append(all, t.samples...)
		for _, s := range t.samples {
			sum += s
		}
	}
	if elapsed > 0 {
		r.QPS = float64(r.Requests) / elapsed.Seconds()
	}
	if len(all) > 0 {
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		r.P50 = quantile(all, 0.50)
		r.P95 = quantile(all, 0.95)
		r.P99 = quantile(all, 0.99)
		r.Max = all[len(all)-1]
		r.Mean = sum / time.Duration(len(all))
	}
	r.P50Millis = ms(r.P50)
	r.P95Millis = ms(r.P95)
	r.P99Millis = ms(r.P99)
	r.MaxMillis = ms(r.Max)
	r.MeanMillis = ms(r.Mean)
	return r
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// quantile reads the q-quantile from sorted samples (nearest-rank).
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// describe renders the workload shape as a compact label, e.g.
// "closed c=8 distance=70,sssp=20,mssp=10 uniform" or
// "open qps=500 c=8 ... zipf batch=16".
func describe(cfg *Config) string {
	var b strings.Builder
	if cfg.QPS > 0 {
		fmt.Fprintf(&b, "open qps=%g c=%d", cfg.QPS, cfg.Concurrency)
	} else {
		fmt.Fprintf(&b, "closed c=%d", cfg.Concurrency)
	}
	parts := make([]string, 0, len(cfg.Mix))
	for _, k := range mixKinds() {
		if w := cfg.Mix[k]; w > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", k, w))
		}
	}
	fmt.Fprintf(&b, " %s %s", strings.Join(parts, ","), cfg.Source)
	if cfg.BatchSize > 1 {
		fmt.Fprintf(&b, " batch=%d", cfg.BatchSize)
	}
	return b.String()
}

// Fprint renders the report as human-readable text.
func (r *Report) Fprint(w io.Writer) {
	fmt.Fprintf(w, "workload:  %s\n", r.Workload)
	fmt.Fprintf(w, "duration:  %.2fs\n", r.Seconds)
	fmt.Fprintf(w, "ops:       %d (%d requests, %d ok)\n", r.Ops, r.Requests, r.OK)
	fmt.Fprintf(w, "qps:       %.1f\n", r.QPS)
	fmt.Fprintf(w, "latency:   p50 %.2fms  p95 %.2fms  p99 %.2fms  max %.2fms  mean %.2fms\n",
		r.P50Millis, r.P95Millis, r.P99Millis, r.MaxMillis, r.MeanMillis)
	if r.Missed > 0 {
		fmt.Fprintf(w, "missed:    %d open-loop arrivals dropped (generator fell behind)\n", r.Missed)
	}
	if len(r.ErrorsByCode) > 0 {
		codes := make([]string, 0, len(r.ErrorsByCode))
		for c := range r.ErrorsByCode {
			codes = append(codes, c)
		}
		sort.Strings(codes)
		fmt.Fprintf(w, "errors:    %d", r.Errors())
		for _, c := range codes {
			fmt.Fprintf(w, "  %s=%d", c, r.ErrorsByCode[c])
		}
		fmt.Fprintln(w)
	}
	kinds := make([]string, 0, len(r.ByKind))
	for _, k := range mixKinds() {
		if n := r.ByKind[k]; n > 0 {
			kinds = append(kinds, fmt.Sprintf("%s=%d", k, n))
		}
	}
	fmt.Fprintf(w, "by kind:   %s\n", strings.Join(kinds, "  "))
}

// BenchColumns is the shared BENCH row shape emitted by both
// `ccload -format bench` and experiment E19.
func BenchColumns() []string {
	return []string{"workload", "ops", "requests", "qps", "p50 ms", "p95 ms", "p99 ms", "ok", "shed", "other errors"}
}

// BenchRow renders the report as one BENCH table row under
// BenchColumns; label overrides the workload description when non-empty.
func (r *Report) BenchRow(label string) []string {
	if label == "" {
		label = r.Workload
	}
	shed := r.ErrorsByCode[string(api.CodeOverloaded)]
	return []string{
		label,
		fmt.Sprintf("%d", r.Ops),
		fmt.Sprintf("%d", r.Requests),
		fmt.Sprintf("%.1f", r.QPS),
		fmt.Sprintf("%.2f", r.P50Millis),
		fmt.Sprintf("%.2f", r.P95Millis),
		fmt.Sprintf("%.2f", r.P99Millis),
		fmt.Sprintf("%d", r.OK),
		fmt.Sprintf("%d", shed),
		fmt.Sprintf("%d", r.Errors()-shed),
	}
}
