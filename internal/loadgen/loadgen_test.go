package loadgen

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/congestedclique/ccsp"
	"github.com/congestedclique/ccsp/api"
	"github.com/congestedclique/ccsp/client"
	"github.com/congestedclique/ccsp/internal/server"
)

// newDaemon spins up a warm in-process daemon over a small random
// connected graph and returns a client plus the node count.
func newDaemon(t testing.TB, n int, cfg server.Config) (*client.Client, *httptest.Server) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(n) + 5))
	gr := ccsp.NewGraph(n)
	for v := 1; v < n; v++ {
		gr.MustAddEdge(v, rng.Intn(v), rng.Int63n(9)+1)
	}
	eng, err := ccsp.NewEngine(context.Background(), gr, ccsp.Options{Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Engine = eng
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return client.New(ts.URL), ts
}

func TestRunClosedLoop(t *testing.T) {
	c, _ := newDaemon(t, 24, server.Config{CacheSize: -1})
	rep, err := Run(context.Background(), c, Config{
		Nodes:       24,
		Duration:    300 * time.Millisecond,
		Concurrency: 4,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops == 0 || rep.Requests != rep.Ops {
		t.Fatalf("closed loop: ops=%d requests=%d, want equal and positive", rep.Ops, rep.Requests)
	}
	if rep.OK != rep.Requests {
		t.Fatalf("against a healthy daemon every request should succeed: ok=%d of %d (errors %v)",
			rep.OK, rep.Requests, rep.ErrorsByCode)
	}
	if rep.QPS <= 0 || rep.P50 <= 0 || rep.P99 < rep.P50 {
		t.Fatalf("implausible stats: qps=%.1f p50=%v p99=%v", rep.QPS, rep.P50, rep.P99)
	}
	var kinds int64
	for _, n := range rep.ByKind {
		kinds += n
	}
	if kinds != rep.Requests {
		t.Fatalf("by-kind counts %d don't sum to requests %d", kinds, rep.Requests)
	}
}

func TestRunBatch(t *testing.T) {
	c, _ := newDaemon(t, 24, server.Config{CacheSize: -1})
	rep, err := Run(context.Background(), c, Config{
		Nodes:       24,
		Duration:    300 * time.Millisecond,
		Concurrency: 2,
		BatchSize:   8,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != rep.Ops*8 {
		t.Fatalf("batch=8: requests=%d want ops*8=%d", rep.Requests, rep.Ops*8)
	}
	if rep.OK != rep.Requests {
		t.Fatalf("ok=%d of %d (errors %v)", rep.OK, rep.Requests, rep.ErrorsByCode)
	}
}

func TestRunOpenLoop(t *testing.T) {
	c, _ := newDaemon(t, 24, server.Config{})
	rep, err := Run(context.Background(), c, Config{
		Nodes:       24,
		Duration:    500 * time.Millisecond,
		Concurrency: 4,
		QPS:         100,
		Mix:         map[api.Kind]int{api.KindDistance: 1},
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Open loop at 100 QPS for 0.5s: roughly 50 arrivals; the daemon is
	// warm and cached so the pool keeps up. Allow wide slack for CI.
	if rep.Ops < 10 || rep.Ops > 70 {
		t.Fatalf("open loop at 100qps/0.5s issued %d ops, want ~50", rep.Ops)
	}
	if rep.OK != rep.Requests {
		t.Fatalf("ok=%d of %d (errors %v)", rep.OK, rep.Requests, rep.ErrorsByCode)
	}
}

// newDynamicDaemon is newDaemon with the graph registered mutable, so
// update traffic has somewhere to land.
func newDynamicDaemon(t testing.TB, n int) (*client.Client, *ccsp.DynamicEngine) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(n) + 5))
	gr := ccsp.NewGraph(n)
	for v := 1; v < n; v++ {
		gr.MustAddEdge(v, rng.Intn(v), rng.Int63n(9)+1)
	}
	eng, err := ccsp.NewEngine(context.Background(), gr, ccsp.Options{Epsilon: 0.5, Execution: ccsp.ExecDirect})
	if err != nil {
		t.Fatal(err)
	}
	dyn := ccsp.NewDynamicEngine(eng)
	t.Cleanup(dyn.Close)
	s, err := server.New(server.Config{Deferred: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddDynamicGraph("", dyn); err != nil {
		t.Fatal(err)
	}
	s.SetReady()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return client.New(ts.URL), dyn
}

// TestRunWithUpdates mixes write traffic into a closed loop: updates
// must be issued, succeed, advance the graph epoch, and count in the
// by-kind census.
func TestRunWithUpdates(t *testing.T) {
	c, dyn := newDynamicDaemon(t, 24)
	rep, err := Run(context.Background(), c, Config{
		Nodes:       24,
		Duration:    300 * time.Millisecond,
		Concurrency: 4,
		Mix:         map[api.Kind]int{api.KindDistance: 3, api.KindUpdate: 1},
		UpdateMaxW:  9,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ByKind[api.KindUpdate] == 0 {
		t.Fatalf("mix with update=1 issued no updates: %v", rep.ByKind)
	}
	if rep.OK != rep.Requests {
		t.Fatalf("ok=%d of %d (errors %v)", rep.OK, rep.Requests, rep.ErrorsByCode)
	}
	if dyn.Epoch() == 0 {
		t.Fatal("updates succeeded but the graph epoch never advanced")
	}
}

// TestRunBatchWithUpdates: update positions leave the batch and ride
// their own operations, so requests < ops*BatchSize but every position
// is still counted exactly once.
func TestRunBatchWithUpdates(t *testing.T) {
	c, _ := newDynamicDaemon(t, 24)
	rep, err := Run(context.Background(), c, Config{
		Nodes:       24,
		Duration:    300 * time.Millisecond,
		Concurrency: 2,
		BatchSize:   8,
		Mix:         map[api.Kind]int{api.KindDistance: 3, api.KindUpdate: 1},
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ByKind[api.KindUpdate] == 0 {
		t.Fatal("batch mode dropped the update traffic")
	}
	var kinds int64
	for _, n := range rep.ByKind {
		kinds += n
	}
	if kinds != rep.Requests {
		t.Fatalf("by-kind counts %d don't sum to requests %d", kinds, rep.Requests)
	}
	if rep.OK != rep.Requests {
		t.Fatalf("ok=%d of %d (errors %v)", rep.OK, rep.Requests, rep.ErrorsByCode)
	}
}

// TestRunRejectsUpdateMixOnReadOnlyTarget: a Target without the
// mutation surface cannot serve an update mix - config error, not a
// run's worth of failures.
func TestRunRejectsUpdateMixOnReadOnlyTarget(t *testing.T) {
	_, err := Run(context.Background(), readOnlyTarget{}, Config{
		Nodes: 8,
		Mix:   map[api.Kind]int{api.KindUpdate: 1},
	})
	if err == nil {
		t.Fatal("update mix accepted against a read-only target")
	}
}

type readOnlyTarget struct{}

func (readOnlyTarget) Query(context.Context, api.Request) (*api.Response, error) {
	return nil, nil
}
func (readOnlyTarget) Batch(context.Context, []api.Request) ([]api.Response, error) {
	return nil, nil
}

// TestRunCountsSheds drives a deliberately saturated daemon and checks
// that shed requests land in the overloaded bucket, typed - the
// loadgen side of the admission-control contract.
func TestRunCountsSheds(t *testing.T) {
	c, _ := newDaemon(t, 48, server.Config{
		CacheSize:   -1,
		MaxInFlight: 1,
		MaxQueue:    -1, // no wait line: excess sheds instantly
	})
	rep, err := Run(context.Background(), c, Config{
		Nodes:       48,
		Duration:    400 * time.Millisecond,
		Concurrency: 12,
		Mix:         map[api.Kind]int{api.KindMSSP: 1},
		Seed:        11,
	})
	if err != nil {
		t.Fatal(err)
	}
	shed := rep.ErrorsByCode[string(api.CodeOverloaded)]
	if shed == 0 {
		t.Fatalf("12 workers vs MaxInFlight=1 with no queue: expected sheds, got %v over %d requests",
			rep.ErrorsByCode, rep.Requests)
	}
	if got := rep.OK + rep.Errors(); got != rep.Requests {
		t.Fatalf("ok %d + errors %d != requests %d", rep.OK, rep.Errors(), rep.Requests)
	}
	for code := range rep.ErrorsByCode {
		if code == "transport" {
			t.Fatalf("all errors must be typed under overload, got transport errors: %v", rep.ErrorsByCode)
		}
	}
}

func TestGenDeterministic(t *testing.T) {
	cfg := Config{Nodes: 100, Seed: 42, Source: Zipf, Mix: DefaultMix()}
	if err := cfg.defaults(); err != nil {
		t.Fatal(err)
	}
	a, b := newGen(&cfg, 3), newGen(&cfg, 3)
	for i := 0; i < 200; i++ {
		ra, rb := a.reqOf(a.kind()), b.reqOf(b.kind())
		if ra.Kind != rb.Kind || ra.CacheKey() != rb.CacheKey() {
			t.Fatalf("draw %d diverged: %+v vs %+v", i, ra, rb)
		}
	}
	other := newGen(&cfg, 4)
	same := true
	for i := 0; i < 20; i++ {
		if a.reqOf(a.kind()).CacheKey() != other.reqOf(other.kind()).CacheKey() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("workers 3 and 4 generated identical streams; per-worker seeding broken")
	}
}

func TestZipfSkew(t *testing.T) {
	cfg := Config{Nodes: 1000, Seed: 1, Source: Zipf}
	if err := cfg.defaults(); err != nil {
		t.Fatal(err)
	}
	g := newGen(&cfg, 0)
	counts := make(map[int]int)
	for i := 0; i < 5000; i++ {
		counts[g.node()]++
	}
	// Zipf s=1.1 concentrates mass at small IDs: node 0 must dominate
	// any uniform share (5000/1000 = 5 expected under uniform).
	if counts[0] < 100 {
		t.Fatalf("zipf draw not skewed: node 0 drawn %d/5000 times", counts[0])
	}
}

func TestParseMix(t *testing.T) {
	mix, err := ParseMix("distance=70, sssp=20,mssp=10")
	if err != nil {
		t.Fatal(err)
	}
	want := map[api.Kind]int{api.KindDistance: 70, api.KindSSSP: 20, api.KindMSSP: 10}
	for k, w := range want {
		if mix[k] != w {
			t.Fatalf("mix[%s]=%d want %d", k, mix[k], w)
		}
	}
	upd, err := ParseMix("distance=9,update=1")
	if err != nil {
		t.Fatalf("update kind rejected in mix: %v", err)
	}
	if upd[api.KindUpdate] != 1 {
		t.Fatalf("update weight = %d, want 1", upd[api.KindUpdate])
	}
	if _, err := ParseMix("bogus=1"); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := ParseMix("distance=0"); err == nil {
		t.Fatal("zero weight accepted")
	}
	if _, err := ParseMix("distance"); err == nil {
		t.Fatal("missing weight accepted")
	}
	def, err := ParseMix("  ")
	if err != nil || len(def) == 0 {
		t.Fatalf("blank mix should yield the default, got %v, %v", def, err)
	}
}

func TestParseDistribution(t *testing.T) {
	for s, want := range map[string]Distribution{"": Uniform, "uniform": Uniform, "zipf": Zipf} {
		got, err := ParseDistribution(s)
		if err != nil || got != want {
			t.Fatalf("ParseDistribution(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseDistribution("pareto"); err == nil {
		t.Fatal("unknown distribution accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(context.Background(), nil, Config{}); err == nil {
		t.Fatal("Nodes=0 accepted")
	}
	if _, err := Run(context.Background(), nil, Config{Nodes: 5, QPS: -1}); err == nil {
		t.Fatal("negative QPS accepted")
	}
	if _, err := Run(context.Background(), nil, Config{Nodes: 5, BatchSize: -2}); err == nil {
		t.Fatal("negative BatchSize accepted")
	}
}

func TestBenchRowShape(t *testing.T) {
	r := &Report{Workload: "w", ErrorsByCode: map[string]int64{"overloaded": 3, "transport": 1}}
	row := r.BenchRow("")
	if len(row) != len(BenchColumns()) {
		t.Fatalf("row has %d cells, columns %d", len(row), len(BenchColumns()))
	}
	if row[0] != "w" || row[8] != "3" || row[9] != "1" {
		t.Fatalf("unexpected row %v", row)
	}
}
