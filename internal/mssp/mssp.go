// Package mssp implements the multi-source shortest paths algorithm of §5
// (Theorem 3): a deterministic (1+ε)-approximation of the distances from
// every node to a source set S, via a (β, ε)-hopset followed by β-hop
// source detection on G ∪ H. The complexity is polylogarithmic for
// |S| = O~(√n).
package mssp

import (
	"fmt"

	"github.com/congestedclique/ccsp/internal/cc"
	"github.com/congestedclique/ccsp/internal/disttools"
	"github.com/congestedclique/ccsp/internal/hitting"
	"github.com/congestedclique/ccsp/internal/hopset"
	"github.com/congestedclique/ccsp/internal/matrix"
	"github.com/congestedclique/ccsp/internal/semiring"
)

// Result is one node's MSSP output.
type Result struct {
	// Dist holds this node's (1+ε)-approximate distances to the sources:
	// entries (s, (d̃, hops)) for every reachable source s.
	Dist matrix.Row[semiring.WH]
	// Hopset is the constructed hopset, reusable for further queries.
	Hopset *hopset.Result
}

// Run computes (1+ε)-approximate distances from this node to every source
// in S (inS is the globally known membership; identical at all nodes).
// wrow is row nd.ID of the augmented weight matrix; params control the
// hopset (params.Eps is the ε of the approximation).
func Run(nd *cc.Node, sr semiring.AugMinPlus, wrow matrix.Row[semiring.WH], inS []bool, board *hitting.Board, params hopset.Params) (*Result, error) {
	hs, err := hopset.Build(nd, sr, wrow, board, params)
	if err != nil {
		return nil, fmt.Errorf("mssp: %w", err)
	}
	return RunWithHopset(nd, sr, wrow, inS, hs)
}

// RunWithHopset runs the source-detection stage against a previously built
// hopset (several source sets can share one hopset; the hopset does not
// depend on S).
func RunWithHopset(nd *cc.Node, sr semiring.AugMinPlus, wrow matrix.Row[semiring.WH], inS []bool, hs *hopset.Result) (*Result, error) {
	nd.Phase("mssp/source-detect")
	gRow := hs.GraphRow(sr, wrow)
	d := hs.Beta
	if d > nd.N {
		d = nd.N
	}
	dist, err := disttools.SourceDetect(nd, sr, gRow, inS, d)
	if err != nil {
		return nil, fmt.Errorf("mssp: source detection: %w", err)
	}
	return &Result{Dist: dist, Hopset: hs}, nil
}
