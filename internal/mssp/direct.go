package mssp

import (
	"context"
	"fmt"

	"github.com/congestedclique/ccsp/internal/disttools"
	"github.com/congestedclique/ccsp/internal/hopset"
	"github.com/congestedclique/ccsp/internal/matrix"
	"github.com/congestedclique/ccsp/internal/semiring"
)

// RunDirect is the host-side counterpart of RunWithHopset for every node
// at once (DESIGN.md §12): β-hop source detection on G ∪ H computed with
// the matmul kernels. Row v of the result is byte-identical to the Dist
// row RunWithHopset returns at node v against the same artifact. w is
// the full augmented weight matrix of the graph the artifact was built
// on; workers sizes the kernel pool (<= 0 means GOMAXPROCS).
func RunDirect(ctx context.Context, sr semiring.AugMinPlus, w *matrix.Mat[semiring.WH], inS []bool, art *hopset.Artifact, workers int) (*matrix.Mat[semiring.WH], error) {
	n := w.N
	g := matrix.New[semiring.WH](n)
	for v := 0; v < n; v++ {
		g.Rows[v] = matrix.MergeRows(sr, w.Rows[v], art.Rows[v])
	}
	d := art.Beta
	if d > n {
		d = n
	}
	dist, err := disttools.SourceDetectAll[semiring.WH](ctx, sr, g, inS, d, workers)
	if err != nil {
		return nil, fmt.Errorf("mssp: source detection: %w", err)
	}
	return dist, nil
}
