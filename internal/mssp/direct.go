package mssp

import (
	"context"
	"fmt"

	"github.com/congestedclique/ccsp/internal/disttools"
	"github.com/congestedclique/ccsp/internal/hopset"
	"github.com/congestedclique/ccsp/internal/matrix"
	"github.com/congestedclique/ccsp/internal/semiring"
)

// MergeGH builds the merged G ∪ H matrix the direct MSSP path detects
// sources over: row v is the semiring merge of the graph's weight row
// and the artifact's hopset row, exactly as RunWithHopset's per-node
// setup computes it. The result is immutable and depends only on
// (w, art), so callers serving many queries should build it once and
// reuse it via RunDirectMerged (DESIGN.md §13).
func MergeGH(sr semiring.AugMinPlus, w *matrix.Mat[semiring.WH], art *hopset.Artifact) *matrix.Mat[semiring.WH] {
	n := w.N
	g := matrix.New[semiring.WH](n)
	for v := 0; v < n; v++ {
		g.Rows[v] = matrix.MergeRows(sr, w.Rows[v], art.Rows[v])
	}
	return g
}

// RunDirectMerged is RunDirect against a prebuilt G ∪ H matrix (see
// MergeGH) and the artifact's β: the per-query merge is gone, and the
// β-hop detection runs the source-restricted panel, which propagates
// only the |S| source columns. Row v of the result is byte-identical to
// the Dist row RunWithHopset returns at node v against the same
// artifact.
func RunDirectMerged(ctx context.Context, gh *matrix.Mat[semiring.WH], beta int, inS []bool, workers int) (*matrix.Mat[semiring.WH], error) {
	d := beta
	if d > gh.N {
		d = gh.N
	}
	dist, err := disttools.SourceDetectAllRestricted(ctx, gh, inS, d, workers)
	if err != nil {
		return nil, fmt.Errorf("mssp: source detection: %w", err)
	}
	return dist, nil
}

// RunDirect is the host-side counterpart of RunWithHopset for every node
// at once (DESIGN.md §12): β-hop source detection on G ∪ H computed with
// the matmul kernels. Row v of the result is byte-identical to the Dist
// row RunWithHopset returns at node v against the same artifact. w is
// the full augmented weight matrix of the graph the artifact was built
// on; workers sizes the kernel pool (<= 0 means GOMAXPROCS).
func RunDirect(ctx context.Context, sr semiring.AugMinPlus, w *matrix.Mat[semiring.WH], inS []bool, art *hopset.Artifact, workers int) (*matrix.Mat[semiring.WH], error) {
	return RunDirectMerged(ctx, MergeGH(sr, w, art), art.Beta, inS, workers)
}
