package mssp

import (
	"context"
	"math/rand"
	"testing"

	"github.com/congestedclique/ccsp/internal/cc"
	"github.com/congestedclique/ccsp/internal/graph"
	"github.com/congestedclique/ccsp/internal/hitting"
	"github.com/congestedclique/ccsp/internal/hopset"
	"github.com/congestedclique/ccsp/internal/semiring"
)

func randGraph(n, extraEdges int, maxW int64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(v, rng.Intn(v), rng.Int63n(maxW)+1)
	}
	for e := 0; e < extraEdges; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.MustAddEdge(u, v, rng.Int63n(maxW)+1)
		}
	}
	return g
}

func pickSources(n, count int, seed int64) []bool {
	rng := rand.New(rand.NewSource(seed))
	inS := make([]bool, n)
	for c := 0; c < count; {
		v := rng.Intn(n)
		if !inS[v] {
			inS[v] = true
			c++
		}
	}
	return inS
}

// runMSSP executes the collective and returns per-node results plus stats.
func runMSSP(t *testing.T, g *graph.Graph, inS []bool, p hopset.Params) ([]*Result, cc.Stats) {
	t.Helper()
	sr := g.AugSemiring()
	board := hitting.NewBoard(g.N)
	results := make([]*Result, g.N)
	stats, err := cc.Run(context.Background(), cc.Config{N: g.N}, func(nd *cc.Node) error {
		res, err := Run(nd, sr, g.WeightRow(nd.ID), inS, board, p)
		if err != nil {
			return err
		}
		results[nd.ID] = res
		return nil
	})
	if err != nil {
		t.Fatalf("MSSP failed: %v", err)
	}
	return results, stats
}

// checkStretch asserts the Theorem 3 guarantee: d <= d̃ <= (1+ε)·d for
// every (node, source) pair, with unreachable pairs absent.
func checkStretch(t *testing.T, g *graph.Graph, inS []bool, results []*Result, eps float64) {
	t.Helper()
	sr := g.AugSemiring()
	for s := 0; s < g.N; s++ {
		if !inS[s] {
			continue
		}
		trueDist := g.Dijkstra(s)
		for v := 0; v < g.N; v++ {
			got := sr.Zero()
			for _, e := range results[v].Dist {
				if int(e.Col) == s {
					got = e.Val
				}
			}
			d := trueDist[v]
			if d >= semiring.Inf {
				if !sr.IsZero(got) {
					t.Fatalf("(%d,%d): unreachable pair got estimate %v", v, s, got)
				}
				continue
			}
			if sr.IsZero(got) {
				t.Fatalf("(%d,%d): reachable pair missing estimate (true %d)", v, s, d)
			}
			if got.W < d {
				t.Fatalf("(%d,%d): estimate %d below true %d", v, s, got.W, d)
			}
			if float64(got.W) > (1+eps)*float64(d)+1e-9 {
				t.Fatalf("(%d,%d): estimate %d exceeds (1+%v)·%d", v, s, got.W, eps, d)
			}
		}
	}
}

func TestMSSPStretch(t *testing.T) {
	cases := []struct {
		name    string
		g       *graph.Graph
		sources int
		p       hopset.Params
	}{
		{"sqrt-sources-paper", randGraph(25, 30, 10, 1), 5, hopset.Paper(0.5)},
		{"sqrt-sources-practical", randGraph(36, 50, 20, 2), 6, hopset.Practical(0.5)},
		{"single-source", randGraph(30, 30, 10, 3), 1, hopset.Practical(0.25)},
		{"many-sources", randGraph(24, 24, 5, 4), 12, hopset.Practical(1.0)},
		{"tree", randGraph(20, 0, 9, 5), 4, hopset.Paper(1.0)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inS := pickSources(tc.g.N, tc.sources, 99)
			results, _ := runMSSP(t, tc.g, inS, tc.p)
			checkStretch(t, tc.g, inS, results, tc.p.Eps)
		})
	}
}

func TestMSSPDisconnected(t *testing.T) {
	g := graph.New(10)
	for v := 0; v < 4; v++ {
		g.MustAddEdge(v, (v+1)%5, 2)
	}
	for v := 5; v < 9; v++ {
		g.MustAddEdge(v, v+1, 3)
	}
	inS := make([]bool, 10)
	inS[0] = true
	inS[7] = true
	results, _ := runMSSP(t, g, inS, hopset.Practical(0.5))
	checkStretch(t, g, inS, results, 0.5)
}

func TestMSSPHopsetReuse(t *testing.T) {
	// Two source sets against one hopset must both satisfy the guarantee.
	g := randGraph(24, 30, 10, 8)
	sr := g.AugSemiring()
	board := hitting.NewBoard(g.N)
	inS1 := pickSources(g.N, 4, 1)
	inS2 := pickSources(g.N, 4, 2)
	res1 := make([]*Result, g.N)
	res2 := make([]*Result, g.N)
	_, err := cc.Run(context.Background(), cc.Config{N: g.N}, func(nd *cc.Node) error {
		r1, err := Run(nd, sr, g.WeightRow(nd.ID), inS1, board, hopset.Practical(0.5))
		if err != nil {
			return err
		}
		res1[nd.ID] = r1
		r2, err := RunWithHopset(nd, sr, g.WeightRow(nd.ID), inS2, r1.Hopset)
		if err != nil {
			return err
		}
		res2[nd.ID] = r2
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	checkStretch(t, g, inS1, res1, 0.5)
	checkStretch(t, g, inS2, res2, 0.5)
}

// TestTheorem3Rounds: with |S| <= √n and the hop budget pinned (at the
// tiny test sizes the β = O(log n/ε) budget is still dominated by its
// n-cap, so we fix Levels and BetaFactor to isolate the n-dependence),
// rounds must grow sublinearly in n - the polylog claim of Theorem 3. The
// full formula sweep is benchmark E7.
func TestTheorem3Rounds(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling test")
	}
	p := hopset.Params{Eps: 1, Levels: 4, BetaFactor: 1}
	rounds := map[int]int{}
	for _, n := range []int{25, 100} {
		g := randGraph(n, 2*n, 10, int64(n))
		inS := pickSources(n, 5, 7)
		_, stats := runMSSP(t, g, inS, p)
		rounds[n] = stats.TotalRounds()
	}
	// A 4x increase in n must not double the rounds at a fixed hop budget.
	if rounds[100] > 2*rounds[25] {
		t.Errorf("MSSP rounds grew too fast: %v", rounds)
	}
}
