package sssp

import (
	"context"
	"math/rand"
	"testing"

	"github.com/congestedclique/ccsp/internal/cc"
	"github.com/congestedclique/ccsp/internal/graph"
)

func randGraph(n, extraEdges int, maxW int64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(v, rng.Intn(v), rng.Int63n(maxW)+1)
	}
	for e := 0; e < extraEdges; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.MustAddEdge(u, v, rng.Int63n(maxW)+1)
		}
	}
	return g
}

func lineGraph(n int, w int64) *graph.Graph {
	g := graph.New(n)
	for v := 0; v+1 < n; v++ {
		g.MustAddEdge(v, v+1, w)
	}
	return g
}

func TestBellmanFordExact(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		src  int
	}{
		{"random", randGraph(20, 25, 10, 1), 3},
		{"line", lineGraph(16, 4), 0},
		{"disconnected", disconnected(), 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := tc.g.Dijkstra(tc.src)
			var got []int64
			_, err := cc.Run(context.Background(), cc.Config{N: tc.g.N}, func(nd *cc.Node) error {
				dist, _ := BellmanFord(nd, tc.g.WeightRow(nd.ID), tc.src, tc.g.N+2)
				if nd.ID == 0 {
					got = append([]int64(nil), dist...)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for v := range want {
				if got[v] != want[v] {
					t.Errorf("d[%d]=%d, want %d", v, got[v], want[v])
				}
			}
		})
	}
}

func disconnected() *graph.Graph {
	g := graph.New(8)
	g.MustAddEdge(0, 1, 2)
	g.MustAddEdge(1, 2, 2)
	g.MustAddEdge(4, 5, 1)
	return g
}

func TestBellmanFordIterationsTrackSPD(t *testing.T) {
	// On a line, Bellman-Ford needs ~SPD iterations; convergence detection
	// must stop within SPD + 3.
	g := lineGraph(20, 1)
	var iters int
	_, err := cc.Run(context.Background(), cc.Config{N: g.N}, func(nd *cc.Node) error {
		_, it := BellmanFord(nd, g.WeightRow(nd.ID), 0, 100)
		if nd.ID == 0 {
			iters = it
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	spd := g.SPD()
	if iters < spd || iters > spd+3 {
		t.Errorf("iters=%d, want within [%d, %d]", iters, spd, spd+3)
	}
}

func TestExactSSSP(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		src  int
		k    int
	}{
		{"random-default-k", randGraph(24, 30, 10, 2), 5, 0},
		{"line-small-k", lineGraph(27, 3), 0, 9},
		{"line-default-k", lineGraph(32, 7), 31, 0},
		{"dense", randGraph(20, 100, 20, 3), 7, 0},
		{"disconnected", disconnected(), 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sr := tc.g.AugSemiring()
			want := tc.g.Dijkstra(tc.src)
			var got []int64
			_, err := cc.Run(context.Background(), cc.Config{N: tc.g.N}, func(nd *cc.Node) error {
				dist, _ := Exact(nd, sr, tc.g.WeightRow(nd.ID), tc.src, tc.k)
				if nd.ID == 0 {
					got = append([]int64(nil), dist...)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("d[%d]=%d, want %d", v, got[v], want[v])
				}
			}
		})
	}
}

// TestShortcutsCutIterations: the point of Theorem 33 - with shortcuts the
// Bellman-Ford phase needs ~n/k iterations instead of ~SPD.
func TestShortcutsCutIterations(t *testing.T) {
	g := lineGraph(64, 1) // SPD = 63
	sr := g.AugSemiring()
	k := 16
	var iters int
	_, err := cc.Run(context.Background(), cc.Config{N: g.N}, func(nd *cc.Node) error {
		dist, it := Exact(nd, sr, g.WeightRow(nd.ID), 0, k)
		if nd.ID == 0 {
			iters = it
			for v := 0; v < g.N; v++ {
				if dist[v] != int64(v) {
					t.Errorf("d[%d]=%d, want %d", v, dist[v], v)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if bound := 4*(g.N/k) + 3; iters > bound {
		t.Errorf("shortcut Bellman-Ford took %d iterations, want <= %d (4n/k+3)", iters, bound)
	}
}
