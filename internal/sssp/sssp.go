// Package sssp implements exact single-source shortest paths (§7.1,
// Theorem 33): the k-nearest tool builds the k-shortcut graph of [22,48],
// whose shortest-path diameter is below 4n/k (Lemma 32), and a distributed
// Bellman-Ford finishes in O(n/k) rounds. With k = n^{5/6} both phases cost
// O~(n^{1/6}) rounds. The plain Bellman-Ford here is also the paper's
// baseline (SPD rounds on G).
package sssp

import (
	"math"

	"github.com/congestedclique/ccsp/internal/cc"
	"github.com/congestedclique/ccsp/internal/disttools"
	"github.com/congestedclique/ccsp/internal/matrix"
	"github.com/congestedclique/ccsp/internal/semiring"
)

// BellmanFord runs the classic distributed Bellman-Ford from src on the
// graph given by this node's weight row (undirected; the row must contain
// this node's incident edges). Each iteration broadcasts every node's
// tentative distance (one round) and relaxes local edges. It stops after
// two consecutive identical distance vectors or maxIters iterations,
// whichever is first, and returns the final global distance vector (shared
// read-only) together with the number of iterations executed.
func BellmanFord(nd *cc.Node, row matrix.Row[semiring.WH], src, maxIters int) ([]int64, int) {
	my := semiring.Inf
	if nd.ID == src {
		my = 0
	}
	var prev []int64
	iters := 0
	for it := 0; it < maxIters; it++ {
		vals := nd.BroadcastVal(my)
		iters++
		same := prev != nil
		if same {
			for v := range vals {
				if vals[v] != prev[v] {
					same = false
					break
				}
			}
		}
		if same {
			return vals, iters
		}
		prev = append(prev[:0], vals...)
		for _, e := range row {
			if int(e.Col) == nd.ID {
				continue
			}
			if d := vals[e.Col]; d < semiring.Inf && d+e.Val.W < my {
				my = d + e.Val.W
			}
		}
	}
	return nd.BroadcastVal(my), iters + 1
}

// Exact computes exact single-source shortest paths from src (Theorem 33):
// k-nearest distances become shortcut edges, then Bellman-Ford runs for
// O(n/k) iterations on the shortcut graph. k = 0 selects the paper's
// n^{5/6}. It returns the global distance vector (shared read-only) and
// the Bellman-Ford iteration count.
func Exact(nd *cc.Node, sr semiring.AugMinPlus, wrow matrix.Row[semiring.WH], src, k int) ([]int64, int) {
	n := nd.N
	if k <= 0 {
		k = int(math.Ceil(math.Pow(float64(n), 5.0/6.0)))
	}
	if k > n {
		k = n
	}
	knear := disttools.KNearest(nd, sr, wrow, k)

	// Shortcut edges {v, u} for u ∈ N_k(v) with exact weights, symmetrized
	// so Bellman-Ford can relax in both directions.
	shortcuts := make(matrix.Row[semiring.WH], 0, len(knear))
	out := make([]cc.Packet, 0, len(knear))
	for _, e := range knear {
		if int(e.Col) == nd.ID {
			continue
		}
		shortcuts = append(shortcuts, matrix.Entry[semiring.WH]{Col: e.Col, Val: semiring.WH{W: e.Val.W, H: 1}})
		out = append(out, cc.Packet{Dst: e.Col, M: cc.Msg{A: e.Val.W}})
	}
	for _, m := range nd.Route(out) {
		shortcuts = append(shortcuts, matrix.Entry[semiring.WH]{Col: m.Src, Val: semiring.WH{W: m.A, H: 1}})
	}
	gRow := matrix.MergeRows[semiring.WH](sr, wrow, shortcuts)

	// Lemma 32: SPD(G') < 4n/k, so 4·ceil(n/k)+1 iterations always reach a
	// fixpoint; convergence detection usually stops earlier.
	maxIters := 4*((n+k-1)/k) + 2
	return BellmanFord(nd, gRow, src, maxIters)
}
