package sssp

import (
	"context"
	"math"

	"github.com/congestedclique/ccsp/internal/disttools"
	"github.com/congestedclique/ccsp/internal/matrix"
	"github.com/congestedclique/ccsp/internal/semiring"
)

// bellmanFordDirect runs the synchronous (Jacobi) Bellman-Ford iteration
// of BellmanFord on the host: vals is the per-round broadcast vector,
// relaxations read the pre-round values, and the convergence test and
// iteration accounting match the collective version exactly - including
// the final extra broadcast when the iteration cap is hit.
func bellmanFordDirect(rows []matrix.Row[semiring.WH], n, src, maxIters int) ([]int64, int) {
	my := make([]int64, n)
	for v := range my {
		my[v] = semiring.Inf
	}
	my[src] = 0
	var prev []int64
	vals := make([]int64, n)
	iters := 0
	for it := 0; it < maxIters; it++ {
		copy(vals, my) // the broadcast: every node sees the same vector
		iters++
		same := prev != nil
		if same {
			for v := range vals {
				if vals[v] != prev[v] {
					same = false
					break
				}
			}
		}
		if same {
			return vals, iters
		}
		prev = append(prev[:0], vals...)
		for v := 0; v < n; v++ {
			for _, e := range rows[v] {
				if int(e.Col) == v {
					continue
				}
				if d := vals[e.Col]; d < semiring.Inf && d+e.Val.W < my[v] {
					my[v] = d + e.Val.W
				}
			}
		}
	}
	out := make([]int64, n)
	copy(out, my)
	return out, iters + 1
}

// ExactDirect is the host-side counterpart of Exact (DESIGN.md §12):
// k-nearest shortcuts computed with the matmul kernels, then the
// synchronous Bellman-Ford on the shortcut graph. The distance vector
// and iteration count are byte-identical to what Exact reports on the
// same (graph, src, k). workers sizes the kernel pool.
func ExactDirect(ctx context.Context, sr semiring.AugMinPlus, w *matrix.Mat[semiring.WH], src, k, workers int) ([]int64, int, error) {
	n := w.N
	if k <= 0 {
		k = int(math.Ceil(math.Pow(float64(n), 5.0/6.0)))
	}
	if k > n {
		k = n
	}
	knear, err := disttools.KNearestAll[semiring.WH](ctx, sr, w, k, workers)
	if err != nil {
		return nil, 0, err
	}

	// Shortcut edges {v, u} for u ∈ N_k(v), symmetrized at both endpoints
	// (the collective version routes each edge to its other end).
	shortcuts := make([]matrix.Row[semiring.WH], n)
	for v := 0; v < n; v++ {
		for _, e := range knear.Rows[v] {
			if int(e.Col) == v {
				continue
			}
			shortcuts[v] = append(shortcuts[v], matrix.Entry[semiring.WH]{Col: e.Col, Val: semiring.WH{W: e.Val.W, H: 1}})
			shortcuts[e.Col] = append(shortcuts[e.Col], matrix.Entry[semiring.WH]{Col: int32(v), Val: semiring.WH{W: e.Val.W, H: 1}})
		}
	}
	rows := make([]matrix.Row[semiring.WH], n)
	for v := 0; v < n; v++ {
		rows[v] = matrix.MergeRows(sr, w.Rows[v], shortcuts[v])
	}

	maxIters := 4*((n+k-1)/k) + 2
	dist, iters := bellmanFordDirect(rows, n, src, maxIters)
	return dist, iters, nil
}
