package snapshot

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/congestedclique/ccsp/internal/graph"
	"github.com/congestedclique/ccsp/internal/hopset"
	"github.com/congestedclique/ccsp/internal/matrix"
	"github.com/congestedclique/ccsp/internal/semiring"
)

// testSnapshot builds a small but fully populated snapshot: a 4-node
// graph, non-default options, and two artifact sections (one per
// variant).
func testSnapshot(t testing.TB) *Snapshot {
	t.Helper()
	g := graph.New(4)
	g.MustAddEdge(0, 1, 2)
	g.MustAddEdge(1, 2, 3)
	g.MustAddEdge(2, 3, 1)
	g.MustAddEdge(0, 3, 9)
	art := &hopset.Artifact{
		N:    4,
		Beta: 6,
		K:    3,
		InA1: []bool{true, false, true, false},
		Rows: []matrix.Row[semiring.WH]{
			{{Col: 2, Val: semiring.WH{W: 5, H: 1}}},
			{},
			{{Col: 0, Val: semiring.WH{W: 5, H: 1}}, {Col: 3, Val: semiring.WH{W: 1, H: 1}}},
			{{Col: 2, Val: semiring.WH{W: 1, H: 1}}},
		},
		PV:  []int32{0, 0, 2, 2},
		DPV: []semiring.WH{{}, {W: 2, H: 1}, {}, {W: 1, H: 1}},
	}
	stats := Stats{
		Nodes:          4,
		TotalRounds:    120,
		SimRounds:      80,
		ChargedRounds:  map[string]int{"route": 30, "hitting": 10},
		Messages:       512,
		Words:          1024,
		PhaseRounds:    map[string]int{"hopset/levels": 100, "": 20},
		CollectiveTime: map[string]time.Duration{"sync": 3 * time.Millisecond},
	}
	return &Snapshot{
		Graph: g,
		Opts:  Options{Epsilon: 0.25, Preset: 1, Seed: 7, MaxRounds: 100000, Workers: 2},
		Artifacts: []Artifact{
			{Variant: 0, Params: hopset.Params{Eps: 0.125, BetaFactor: 2}, Stats: stats, Art: art},
			{Variant: 1, Params: hopset.Params{Eps: 0.125, BetaFactor: 12}, Degs: []int64{1, 2, 2, 1}, Stats: stats, Art: art},
		},
	}
}

func encodeToBytes(t testing.TB, s *Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := testSnapshot(t)
	data := encodeToBytes(t, s)
	got, err := Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	// Empty rows decode as empty (non-nil) slices, matching the encoder
	// input here, so the whole structure is directly comparable.
	if !reflect.DeepEqual(got, s) {
		t.Errorf("round-trip mismatch:\n got %+v\nwant %+v", got, s)
	}

	// Determinism: re-encoding the decoded snapshot is byte-identical.
	if again := encodeToBytes(t, got); !bytes.Equal(again, data) {
		t.Error("re-encode of decoded snapshot differs from original bytes")
	}
}

// TestDecodeDetectsEveryByteFlip flips every single byte of a valid
// snapshot and asserts the decoder rejects each mutant: the per-section
// CRC (plus header validation) leaves no silently-correctable byte.
func TestDecodeDetectsEveryByteFlip(t *testing.T) {
	data := encodeToBytes(t, testSnapshot(t))
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x5A
		if _, err := Decode(bytes.NewReader(mut)); err == nil {
			t.Fatalf("flip at byte %d of %d decoded successfully", i, len(data))
		}
	}
}

// TestDecodeRejectsEveryTruncation decodes every strict prefix of a valid
// snapshot; all must fail (the end marker catches section-boundary
// truncation, lengths catch mid-section truncation).
func TestDecodeRejectsEveryTruncation(t *testing.T) {
	data := encodeToBytes(t, testSnapshot(t))
	for i := 0; i < len(data); i++ {
		if _, err := Decode(bytes.NewReader(data[:i])); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded successfully", i, len(data))
		}
	}
}

func TestDecodeRejectsVersionSkew(t *testing.T) {
	data := encodeToBytes(t, testSnapshot(t))
	mut := append([]byte(nil), data...)
	mut[8], mut[9] = 0x63, 0x00 // version 99
	_, err := Decode(bytes.NewReader(mut))
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("version skew: err = %v, want version error", err)
	}
}

func TestDecodeRejectsBadMagic(t *testing.T) {
	data := encodeToBytes(t, testSnapshot(t))
	mut := append([]byte("NOTASNAP"), data[8:]...)
	_, err := Decode(bytes.NewReader(mut))
	if err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("bad magic: err = %v, want magic error", err)
	}
}

func TestDecodeRejectsTrailingGarbage(t *testing.T) {
	data := encodeToBytes(t, testSnapshot(t))
	if _, err := Decode(bytes.NewReader(append(data, 0x00))); err == nil {
		t.Error("trailing garbage: no error")
	}
}

func TestDecodeRejectsMissingSections(t *testing.T) {
	// A header with only an end marker: no graph, no options.
	var buf bytes.Buffer
	s := &Snapshot{Graph: graph.New(1)}
	buf.Write(encodeToBytes(t, s)[:10]) // magic + version
	if err := writeSection(&buf, secEnd, []byte{0}); err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("missing sections: no error")
	}
}

func TestDecodeRejectsMismatchedArtifact(t *testing.T) {
	s := testSnapshot(t)
	s.Artifacts[0].Art = &hopset.Artifact{
		N: 2, Beta: 1, K: 1,
		InA1: []bool{true, false},
		Rows: []matrix.Row[semiring.WH]{{}, {}},
		PV:   []int32{0, 0},
		DPV:  []semiring.WH{{}, {}},
	}
	data := encodeToBytes(t, s)
	_, err := Decode(bytes.NewReader(data))
	if err == nil || !strings.Contains(err.Error(), "does not match graph") {
		t.Errorf("artifact/graph size mismatch: err = %v", err)
	}
}
