package snapshot

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzDecode asserts the decoder's hardening contract: arbitrary bytes
// must either decode into a snapshot that re-encodes cleanly or return an
// error - never panic, and never allocate unboundedly. The committed seed
// corpus (testdata/fuzz/FuzzDecode) plus the seeds below cover the valid
// encoding and each corruption class the unit tests exercise.
func FuzzDecode(f *testing.F) {
	valid := encodeToBytes(f, testSnapshot(f))
	f.Add(valid)
	f.Add(valid[:len(valid)/2])               // truncated mid-section
	f.Add([]byte{})                           // empty
	f.Add([]byte(Magic))                      // magic only
	f.Add(append([]byte(nil), valid[:10]...)) // header only

	mut := append([]byte(nil), valid...)
	mut[8] = 0x7F // version skew
	f.Add(mut)

	mut = append([]byte(nil), valid...)
	mut[len(mut)/2] ^= 0xFF // corrupt payload byte
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything that decodes must re-encode and decode to the same
		// structure (the decoder only accepts canonical encodings).
		var buf bytes.Buffer
		if err := snap.Encode(&buf); err != nil {
			t.Fatalf("decoded snapshot fails to re-encode: %v", err)
		}
		again, err := Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded snapshot fails to decode: %v", err)
		}
		if !reflect.DeepEqual(again, snap) {
			t.Fatal("decode/encode/decode not a fixpoint")
		}
	})
}
