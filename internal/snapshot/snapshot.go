// Package snapshot defines the versioned, checksummed binary format that
// persists a warm query engine: the input graph, the normalized options,
// and one section per cached hopset artifact parameterization (including
// its preprocessing round-stats). Saving after preprocessing and loading
// at startup turns the paper's preprocess-once/query-many split into
// preprocess-once-ever: a restarted server pays file I/O instead of the
// full hopset construction.
//
// Wire layout (all multi-byte integers are varints unless noted; see
// DESIGN.md §9 for the field-by-field table):
//
//	magic   [8]byte  "ccspsnap"
//	version uint16   little-endian, currently 3
//	section*         type byte, payload length uint32 LE, payload,
//	                 CRC32-IEEE (uint32 LE) over type byte + payload
//	end section      type 0xFF, payload = uvarint count of prior sections
//
// Sections: 0x01 graph (exactly one, first), 0x02 options (exactly one),
// 0x03 artifact (zero or more, in engine completion order). The end
// section's count makes silent truncation at a section boundary
// detectable; the per-section CRC makes any byte flip detectable. Decoding
// is strict: unknown section types, duplicate singletons, missing
// sections, trailing bytes and version skew all fail loudly - the format
// is versioned, not forgiving.
package snapshot

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"time"

	"github.com/congestedclique/ccsp/internal/graph"
	"github.com/congestedclique/ccsp/internal/hopset"
	"github.com/congestedclique/ccsp/internal/wire"
)

// Magic identifies a snapshot file.
const Magic = "ccspsnap"

// Version is the current format version. Bump it on any incompatible
// layout change; decoders reject snapshots from other versions rather
// than guessing (the compat policy of DESIGN.md §9). Version 2 added the
// execution-mode byte to the options and stats encodings; version 3
// added the graph epoch to the options encoding.
const Version = 3

// Section type tags.
const (
	secGraph    = 0x01
	secOptions  = 0x02
	secArtifact = 0x03
	secEnd      = 0xFF
)

// maxSectionLen caps a single section payload (1 GiB); lengths beyond it
// are treated as corruption rather than allocation requests.
const maxSectionLen = 1 << 30

// Options is the engine configuration persisted with a snapshot,
// mirroring the public ccsp.Options after normalization.
type Options struct {
	Epsilon   float64
	Preset    uint8
	Seed      int64
	MaxRounds int
	Workers   int
	// Exec is the execution mode (the ccsp.Execution: 0 = simulated,
	// 1 = direct). Persisted so a loaded engine keeps answering in the
	// mode it was saved with.
	Exec uint8
	// Epoch is the graph version the engine was serving when saved
	// (ccsp.Engine.Epoch): 0 for a never-mutated graph, the generation
	// number of the newest published update batch otherwise. Persisted
	// so save/load round-trips a mutated engine without resetting its
	// epoch sequence (version 3).
	Epoch uint64
}

// Stats mirrors the public ccsp.Stats; preprocessing stats are persisted
// so a loaded engine reports the same PreprocessStats as the engine that
// was saved.
type Stats struct {
	Nodes          int
	TotalRounds    int
	SimRounds      int
	ChargedRounds  map[string]int
	Messages       int64
	Words          int64
	PhaseRounds    map[string]int
	CollectiveTime map[string]time.Duration
	// Exec is the execution mode that produced these stats (0 = simulated,
	// 1 = direct).
	Exec uint8
}

// Artifact is one persisted hopset parameterization: the cache key
// (variant + params), the artifact itself, the low-degree variant's
// degree broadcast, and the preprocessing cost of the build.
type Artifact struct {
	// Variant is the graph the hopset was built on (the ccsp artVariant:
	// 0 = G, 1 = the low-degree subgraph G').
	Variant uint8
	// Params is the hopset parameterization (the cache key's second half).
	Params hopset.Params
	// Degs is the broadcast degree vector defining G' (variant 1 only).
	Degs []int64
	// Stats is the cost of the preprocessing run that built the artifact.
	Stats Stats
	// Art is the artifact payload.
	Art *hopset.Artifact
}

// Snapshot is the decoded form of a snapshot file.
type Snapshot struct {
	Graph     *graph.Graph
	Opts      Options
	Artifacts []Artifact
}

// writeSection frames one section: type, length, payload, CRC over
// type + payload.
func writeSection(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > maxSectionLen {
		return fmt.Errorf("snapshot: section %#x payload too large (%d bytes)", typ, len(payload))
	}
	var hdr [5]byte
	hdr[0] = typ
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	crc := crc32.NewIEEE()
	crc.Write(hdr[:1])
	crc.Write(payload)
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	for _, b := range [][]byte{hdr[:], payload, sum[:]} {
		if _, err := w.Write(b); err != nil {
			return fmt.Errorf("snapshot: write: %w", err)
		}
	}
	return nil
}

// encodeGraph encodes the exact adjacency structure - every half-edge in
// storage order - so a decoded graph is DeepEqual to the original and
// queries on it are byte-identical.
func encodeGraph(g *graph.Graph) []byte {
	var w wire.Writer
	w.Int(g.N)
	for _, adj := range g.Adj {
		w.Uvarint(uint64(len(adj)))
		for _, e := range adj {
			w.Uvarint(uint64(e.To))
			w.Varint(e.W)
		}
	}
	return w.Bytes()
}

func decodeGraph(payload []byte) (*graph.Graph, error) {
	r := wire.NewReader(payload)
	n := r.Int()
	if r.Err() != nil {
		return nil, r.Err()
	}
	// Each node needs at least its degree byte.
	if n < 1 || n > r.Remaining()+1 {
		return nil, fmt.Errorf("snapshot: graph node count %d out of range", n)
	}
	g := graph.New(n)
	for v := 0; v < n; v++ {
		deg := r.Count(2) // each half-edge is at least 2 varint bytes
		if r.Err() != nil {
			return nil, r.Err()
		}
		adj := make([]graph.Edge, 0, deg)
		for i := 0; i < deg; i++ {
			to := r.Uvarint()
			wgt := r.Varint()
			if r.Err() != nil {
				return nil, r.Err()
			}
			if to >= uint64(n) {
				return nil, fmt.Errorf("snapshot: edge endpoint %d out of range [0, %d)", to, n)
			}
			if uint64(v) == to {
				return nil, fmt.Errorf("snapshot: self-loop at node %d", v)
			}
			if wgt < 0 {
				return nil, fmt.Errorf("snapshot: negative edge weight %d", wgt)
			}
			adj = append(adj, graph.Edge{To: int32(to), W: wgt})
		}
		g.Adj[v] = adj
	}
	r.Expect(0)
	return g, r.Err()
}

func encodeOptions(o Options) []byte {
	var w wire.Writer
	w.Float64(o.Epsilon)
	w.Byte(o.Preset)
	w.Varint(o.Seed)
	w.Int(o.MaxRounds)
	w.Int(o.Workers)
	w.Byte(o.Exec)
	w.Uvarint(o.Epoch)
	return w.Bytes()
}

func decodeOptions(payload []byte) (Options, error) {
	r := wire.NewReader(payload)
	o := Options{
		Epsilon:   r.Float64(),
		Preset:    r.Byte(),
		Seed:      r.Varint(),
		MaxRounds: r.Int(),
		Workers:   r.Int(),
		Exec:      r.Byte(),
		Epoch:     r.Uvarint(),
	}
	r.Expect(0)
	return o, r.Err()
}

// encodeStats writes s with map keys sorted, so the encoding is
// deterministic and snapshot round-trips are byte-identical.
func encodeStats(w *wire.Writer, s Stats) {
	w.Int(s.Nodes)
	w.Int(s.TotalRounds)
	w.Int(s.SimRounds)
	w.Varint(s.Messages)
	w.Varint(s.Words)
	encodeIntMap(w, s.ChargedRounds)
	encodeIntMap(w, s.PhaseRounds)
	w.Uvarint(uint64(len(s.CollectiveTime)))
	for _, k := range sortedKeys(s.CollectiveTime) {
		w.String(k)
		w.Varint(int64(s.CollectiveTime[k]))
	}
	w.Byte(s.Exec)
}

func decodeStats(r *wire.Reader) (Stats, error) {
	s := Stats{
		Nodes:       r.Int(),
		TotalRounds: r.Int(),
		SimRounds:   r.Int(),
		Messages:    r.Varint(),
		Words:       r.Varint(),
	}
	var err error
	if s.ChargedRounds, err = decodeIntMap(r); err != nil {
		return s, err
	}
	if s.PhaseRounds, err = decodeIntMap(r); err != nil {
		return s, err
	}
	cnt := r.Count(2)
	if cnt > 0 {
		s.CollectiveTime = make(map[string]time.Duration, cnt)
		for i := 0; i < cnt; i++ {
			k := r.String()
			v := r.Varint()
			if r.Err() != nil {
				return s, r.Err()
			}
			s.CollectiveTime[k] = time.Duration(v)
		}
	}
	s.Exec = r.Byte()
	return s, r.Err()
}

func encodeIntMap(w *wire.Writer, m map[string]int) {
	w.Uvarint(uint64(len(m)))
	for _, k := range sortedKeys(m) {
		w.String(k)
		w.Int(m[k])
	}
}

func decodeIntMap(r *wire.Reader) (map[string]int, error) {
	cnt := r.Count(2)
	if r.Err() != nil || cnt == 0 {
		return nil, r.Err()
	}
	m := make(map[string]int, cnt)
	for i := 0; i < cnt; i++ {
		k := r.String()
		v := r.Int()
		if r.Err() != nil {
			return nil, r.Err()
		}
		m[k] = v
	}
	return m, nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func encodeArtifact(a Artifact) []byte {
	var w wire.Writer
	w.Byte(a.Variant)
	hopset.EncodeParams(&w, a.Params)
	w.Uvarint(uint64(len(a.Degs)))
	for _, d := range a.Degs {
		w.Varint(d)
	}
	encodeStats(&w, a.Stats)
	hopset.EncodeArtifact(&w, a.Art)
	return w.Bytes()
}

func decodeArtifact(payload []byte) (Artifact, error) {
	r := wire.NewReader(payload)
	a := Artifact{Variant: r.Byte()}
	var err error
	if a.Params, err = hopset.DecodeParams(r); err != nil {
		return a, err
	}
	if cnt := r.Count(1); cnt > 0 {
		a.Degs = make([]int64, cnt)
		for i := range a.Degs {
			a.Degs[i] = r.Varint()
		}
	}
	if a.Stats, err = decodeStats(r); err != nil {
		return a, err
	}
	if a.Art, err = hopset.DecodeArtifact(r); err != nil {
		return a, err
	}
	r.Expect(0)
	return a, r.Err()
}

// Encode writes the snapshot to w. The encoding is deterministic: the
// same snapshot always produces the same bytes, so Save → Load → Save
// round-trips are byte-identical.
func (s *Snapshot) Encode(w io.Writer) error {
	if s.Graph == nil {
		return fmt.Errorf("snapshot: nil graph")
	}
	var hdr [10]byte
	copy(hdr[:8], Magic)
	binary.LittleEndian.PutUint16(hdr[8:], Version)
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("snapshot: write: %w", err)
	}
	if err := writeSection(w, secGraph, encodeGraph(s.Graph)); err != nil {
		return err
	}
	if err := writeSection(w, secOptions, encodeOptions(s.Opts)); err != nil {
		return err
	}
	for i, a := range s.Artifacts {
		if a.Art == nil {
			return fmt.Errorf("snapshot: artifact %d has nil payload", i)
		}
		if err := writeSection(w, secArtifact, encodeArtifact(a)); err != nil {
			return err
		}
	}
	var end wire.Writer
	end.Uvarint(uint64(2 + len(s.Artifacts)))
	return writeSection(w, secEnd, end.Bytes())
}

// Decode reads a snapshot from r, validating magic, version, section
// structure and every CRC. Corrupt, truncated or version-skewed input
// returns an error; Decode never panics on malformed bytes.
func Decode(r io.Reader) (*Snapshot, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("snapshot: read: %w", err)
	}
	if len(data) < 10 {
		return nil, fmt.Errorf("snapshot: truncated header (%d bytes)", len(data))
	}
	if string(data[:8]) != Magic {
		return nil, fmt.Errorf("snapshot: bad magic %q (not a snapshot file?)", data[:8])
	}
	if v := binary.LittleEndian.Uint16(data[8:10]); v != Version {
		return nil, fmt.Errorf("snapshot: unsupported format version %d (this build reads version %d)", v, Version)
	}
	data = data[10:]

	snap := &Snapshot{}
	sections := 0
	sawEnd := false
	sawOptions := false
	for !sawEnd {
		if len(data) < 9 {
			return nil, fmt.Errorf("snapshot: truncated section header (%d bytes left, no end marker)", len(data))
		}
		typ := data[0]
		plen := binary.LittleEndian.Uint32(data[1:5])
		if plen > maxSectionLen {
			return nil, fmt.Errorf("snapshot: section %#x length %d exceeds limit", typ, plen)
		}
		if uint64(len(data)) < 9+uint64(plen) {
			return nil, fmt.Errorf("snapshot: truncated section %#x (want %d payload bytes, have %d)", typ, plen, len(data)-9)
		}
		payload := data[5 : 5+plen]
		wantCRC := binary.LittleEndian.Uint32(data[5+plen : 9+plen])
		crc := crc32.NewIEEE()
		crc.Write(data[:1])
		crc.Write(payload)
		if got := crc.Sum32(); got != wantCRC {
			return nil, fmt.Errorf("snapshot: section %#x CRC mismatch (got %#x, want %#x): corrupt snapshot", typ, got, wantCRC)
		}
		data = data[9+plen:]

		switch typ {
		case secGraph:
			if snap.Graph != nil {
				return nil, fmt.Errorf("snapshot: duplicate graph section")
			}
			if snap.Graph, err = decodeGraph(payload); err != nil {
				return nil, err
			}
		case secOptions:
			if snap.Graph == nil {
				return nil, fmt.Errorf("snapshot: options section before graph section")
			}
			if sawOptions {
				return nil, fmt.Errorf("snapshot: duplicate options section")
			}
			sawOptions = true
			if snap.Opts, err = decodeOptions(payload); err != nil {
				return nil, err
			}
		case secArtifact:
			a, err := decodeArtifact(payload)
			if err != nil {
				return nil, err
			}
			if snap.Graph == nil || a.Art.N != snap.Graph.N {
				return nil, fmt.Errorf("snapshot: artifact built for n=%d does not match graph", a.Art.N)
			}
			if a.Degs != nil && len(a.Degs) != snap.Graph.N {
				return nil, fmt.Errorf("snapshot: artifact degree vector has %d entries, graph has %d nodes", len(a.Degs), snap.Graph.N)
			}
			snap.Artifacts = append(snap.Artifacts, a)
		case secEnd:
			er := wire.NewReader(payload)
			cnt := er.Uvarint()
			er.Expect(0)
			if er.Err() != nil {
				return nil, fmt.Errorf("snapshot: bad end section: %w", er.Err())
			}
			if cnt != uint64(sections) {
				return nil, fmt.Errorf("snapshot: end marker counts %d sections, decoded %d: truncated or spliced snapshot", cnt, sections)
			}
			sawEnd = true
			continue
		default:
			return nil, fmt.Errorf("snapshot: unknown section type %#x", typ)
		}
		sections++
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("snapshot: %d trailing bytes after end marker", len(data))
	}
	if snap.Graph == nil {
		return nil, fmt.Errorf("snapshot: missing graph section")
	}
	if !sawOptions {
		return nil, fmt.Errorf("snapshot: missing options section")
	}
	return snap, nil
}
