package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/congestedclique/ccsp/api"
)

// fuzzServer is one shared tiny engine + server for the fuzz run (built
// once: engine preprocessing is the expensive part, and the fuzz target
// only cares about the decode/validate/dispatch path).
var fuzzServer = struct {
	once sync.Once
	h    http.Handler
}{}

func fuzzHandler(t testing.TB) http.Handler {
	fuzzServer.once.Do(func() {
		eng := goldenGraph(t)
		s, err := New(Config{Engine: eng, CacheSize: 64})
		if err != nil {
			t.Fatal(err)
		}
		fuzzServer.h = s.Handler()
	})
	return fuzzServer.h
}

// FuzzQueryJSON asserts the /v1/query decoder's hardening contract over
// arbitrary JSON bodies: no panic, allocations capped by the request
// body limit (MaxBytesReader) plus the engine's own clamps (k and d
// clamp to n), and every outcome is a typed response - 200 with exactly
// one result, or 400/422 with a machine-readable error code. The
// committed seed corpus (testdata/fuzz/FuzzQueryJSON) covers every kind,
// each malformed-union class, out-of-range nodes, and oversized values.
func FuzzQueryJSON(f *testing.F) {
	seeds := []string{
		`{"kind":"sssp","sssp":{"source":0}}`,
		`{"kind":"mssp","mssp":{"sources":[0,3,5]}}`,
		`{"kind":"apsp","apsp":{"variant":"weighted3"}}`,
		`{"kind":"distance","distance":{"from":0,"to":7}}`,
		`{"kind":"diameter"}`,
		`{"kind":"knearest","knearest":{"k":3}}`,
		`{"kind":"source_detection","source_detection":{"sources":[0,3],"d":4,"k":2}}`,
		`{"kind":"sssp","mssp":{"sources":[1]}}`,                                              // union mismatch
		`{"kind":"bfs"}`,                                                                      // unknown kind
		`{"kind":"sssp","sssp":{"source":-9000000000000}}`,                                    // far out of range
		`{"kind":"mssp","mssp":{"sources":[0,0,0,0,0,0,0]}}`,                                  // duplicates
		`{"kind":"knearest","knearest":{"k":99999999}}`,                                       // clamped k
		`{"kind":"source_detection","source_detection":{"sources":[1],"d":2147483647,"k":1}}`, // clamped d
		`{"kind":`,                      // syntax error
		`{"kind":"diameter"}{"kind":1}`, // trailing garbage
		`[]`, `null`, `0`, `""`,         // wrong top-level types
		`{"kind":"mssp","mssp":{"sources":[]}}`, // empty source set -> 422
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body string) {
		h := fuzzHandler(t)
		req := httptest.NewRequest(http.MethodPost, "/v1/query", strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req) // must not panic
		switch rec.Code {
		case http.StatusOK:
			var resp api.Response
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				t.Fatalf("200 with non-JSON body: %v\n%s", err, rec.Body.Bytes())
			}
			if resp.Error != nil {
				t.Fatalf("200 carrying an error: %+v", resp.Error)
			}
			results := 0
			for _, set := range []bool{resp.SSSP != nil, resp.MSSP != nil, resp.APSP != nil,
				resp.Distance != nil, resp.Diameter != nil, resp.KNearest != nil, resp.SourceDetection != nil} {
				if set {
					results++
				}
			}
			if results != 1 || resp.Stats == nil {
				t.Fatalf("200 with %d results (stats=%v): %s", results, resp.Stats != nil, rec.Body.Bytes())
			}
		case http.StatusBadRequest, http.StatusUnprocessableEntity:
			var e errorBody
			if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
				t.Fatalf("%d with non-JSON body: %v\n%s", rec.Code, err, rec.Body.Bytes())
			}
			if e.Error == nil || e.Error.Code == "" || e.Error.Message == "" {
				t.Fatalf("%d without a typed error: %s", rec.Code, rec.Body.Bytes())
			}
			if rec.Code == http.StatusBadRequest && e.Error.Code != api.CodeMalformed {
				t.Fatalf("400 with code %q, want malformed: %s", e.Error.Code, rec.Body.Bytes())
			}
			if rec.Code == http.StatusUnprocessableEntity &&
				e.Error.Code != api.CodeInvalidSource && e.Error.Code != api.CodeInvalidOption {
				t.Fatalf("422 with code %q: %s", e.Error.Code, rec.Body.Bytes())
			}
		default:
			t.Fatalf("unexpected status %d: %s", rec.Code, rec.Body.Bytes())
		}
	})
}
