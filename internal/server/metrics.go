// Server-side telemetry: every Server owns a private telemetry.Registry
// (so tests and multi-server processes stay isolated) exposed at GET
// /metrics alongside the process-global telemetry.Default that engine-
// and cluster-level instrumentation records into. The expvar surface
// (/debug/vars, Vars) reads through the same metrics, so the two views
// can never drift.
package server

import (
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"time"

	"github.com/congestedclique/ccsp/internal/telemetry"
)

// initMetrics builds the server's registry: the serving counters the
// handlers bump, plus read-through children over state that is already
// counted elsewhere (the LRU's hit/miss tallies, the readiness bit, the
// admission high-water mark) where a second atomic would drift.
func (s *Server) initMetrics() {
	r := telemetry.NewRegistry()
	s.reg = r

	s.requests = r.Counter("ccspd_requests_total",
		"HTTP requests served, across every serving endpoint.")
	s.errors = r.Counter("ccspd_query_errors_total",
		"Failed queries (malformed, invalid, unavailable, shed), excluding timeouts.")
	s.timeouts = r.Counter("ccspd_query_timeouts_total",
		"Queries killed by the per-request server timeout.")
	s.queries = r.Counter("ccspd_queries_total",
		"Successfully answered query positions (cache hits included).")
	s.batches = r.Counter("ccspd_batches_total",
		"POST /v1/batch bodies served.")
	s.batchReqs = r.Counter("ccspd_batch_requests_total",
		"Total request positions across all batch bodies.")
	s.batchRuns = r.Counter("ccspd_batch_engine_runs_total",
		"Deduplicated engine runs executed for batch positions; the gap to ccspd_batch_requests_total is the dedup+cache win.")
	s.shed = r.Counter("ccspd_shed_total",
		"Queries rejected by admission control (bounded in-flight limit and wait queue both full).")
	s.updates = r.Counter("ccspd_updates_total",
		"Edge-update batches accepted by POST /v1/update (each one graph generation).")
	s.inflight = r.Gauge("ccspd_inflight",
		"Queries and batches currently executing on the engines.")

	r.GaugeFunc("ccspd_ready",
		"1 once every snapshot is loaded and queries may flow, else 0.",
		func() float64 {
			if s.ready.Load() {
				return 1
			}
			return 0
		})
	r.GaugeFunc("ccspd_graphs",
		"Graphs registered in the serving registry (default graph included).",
		func() float64 { return float64(len(s.graphIDs())) })
	r.GaugeFunc("ccspd_uptime_seconds",
		"Seconds since the server was constructed.",
		func() float64 { return time.Since(s.start).Seconds() })

	r.GaugeFunc("ccspd_cache_capacity",
		"Response LRU capacity in entries (0 = caching disabled).",
		func() float64 { return float64(s.cacheCap) })
	r.GaugeFunc("ccspd_cache_entries",
		"Responses currently held by the LRU.",
		func() float64 { e, _, _ := s.cache.Stats(); return float64(e) })
	r.CounterFunc("ccspd_cache_hits_total",
		"Queries answered from the response LRU.",
		func() float64 { _, h, _ := s.cache.Stats(); return float64(h) })
	r.CounterFunc("ccspd_cache_misses_total",
		"Queries that missed the response LRU.",
		func() float64 { _, _, m := s.cache.Stats(); return float64(m) })

	if s.adm != nil {
		r.GaugeFunc("ccspd_admission_limit",
			"Execution slots admission control allows concurrently.",
			func() float64 { return float64(cap(s.adm.slots)) })
		r.GaugeFunc("ccspd_admission_queue_capacity",
			"Wait-queue slots behind the execution limit.",
			func() float64 { return float64(cap(s.adm.queued)) })
		r.GaugeFunc("ccspd_inflight_peak",
			"High-water mark of queries concurrently holding an execution slot.",
			func() float64 { return float64(s.adm.peak.Load()) })
	}
}

// Metrics returns the server's private telemetry registry, for callers
// (the daemon's debug listener, tests) that mount it somewhere beyond
// the built-in /metrics route.
func (s *Server) Metrics() *telemetry.Registry { return s.reg }

// metricsHandler serves the exposition page: this server's registry
// plus the process-global Default (engine and cluster metrics).
func (s *Server) metricsHandler() http.Handler {
	return telemetry.Handler(s.reg, telemetry.Default)
}

// DebugHandler returns the opt-in debug surface cmd/ccspd serves on a
// separate -debug-addr listener: net/http/pprof profiles, the expvar
// page, and the same /metrics exposition as the public handler. It is
// deliberately not part of Handler so profiling endpoints never ride
// on the public serving port by accident.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/metrics", s.metricsHandler())
	return mux
}

// endpointMetrics is the pre-created per-endpoint instrumentation the
// middleware records into: one latency histogram plus one counter per
// status class, resolved once at mux construction so the request path
// never takes the registry mutex.
type endpointMetrics struct {
	hist    *telemetry.Histogram
	classes [6]*telemetry.Counter // indexed by status/100; [0] unused
}

// instrument wraps one endpoint handler with the request middleware:
// total-request count, per-endpoint/status-class counters, and a
// per-endpoint latency histogram.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.Handler {
	em := &endpointMetrics{
		hist: s.reg.Histogram("ccspd_http_request_seconds",
			"HTTP request latency by endpoint.", nil,
			telemetry.L("endpoint", endpoint)),
	}
	for class := 1; class < len(em.classes); class++ {
		em.classes[class] = s.reg.Counter("ccspd_http_requests_total",
			"HTTP requests by endpoint and status class.",
			telemetry.L("endpoint", endpoint),
			telemetry.L("class", fmt.Sprintf("%dxx", class)))
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Inc()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(rec, r)
		em.hist.ObserveDuration(time.Since(start))
		if class := rec.status / 100; class >= 1 && class < len(em.classes) {
			em.classes[class].Inc()
		}
	})
}

// statusRecorder captures the status code a handler writes; 200 when
// the handler never calls WriteHeader explicitly.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}
