package server

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/congestedclique/ccsp"
)

// pathEngine builds the weighted path 0-1-...-(n-1) (every edge weight
// w) and a warm engine; distances on a path are exact regardless of
// epsilon, so update tests can assert concrete numbers.
func pathEngine(t testing.TB, n int, w int64) (*ccsp.Graph, *ccsp.Engine) {
	t.Helper()
	gr := ccsp.NewGraph(n)
	for v := 1; v < n; v++ {
		gr.MustAddEdge(v-1, v, w)
	}
	eng, err := ccsp.NewEngine(context.Background(), gr, ccsp.Options{Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	return gr, eng
}

// newDynamicServer serves dyn as the default graph.
func newDynamicServer(t testing.TB, dyn *ccsp.DynamicEngine, cfg Config) *httptest.Server {
	t.Helper()
	cfg.Deferred = true
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddDynamicGraph("", dyn); err != nil {
		t.Fatal(err)
	}
	s.SetReady()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestUpdateBumpsEpochAndServesFresh is the end-to-end mutation flow
// and the epoch-keyed-LRU staleness proof in one: a distance is queried
// (and therefore cached), the graph is mutated through POST /v1/update,
// and the same query must answer with the post-update distance - if the
// LRU key ignored the epoch, the stale cached answer would come back.
func TestUpdateBumpsEpochAndServesFresh(t *testing.T) {
	_, eng := pathEngine(t, 8, 1)
	dyn := ccsp.NewDynamicEngine(eng)
	defer dyn.Close()
	ts := newDynamicServer(t, dyn, Config{})

	var ep epochResponse
	getJSON(t, ts.URL+"/v1/epoch", http.StatusOK, &ep)
	if ep.Epoch != 0 || ep.Pending != 0 {
		t.Fatalf("fresh epoch = %+v, want 0/0", ep)
	}

	// Warm the cache: dist(0,7) on the unit path is exactly 7.
	var d distResponse
	getJSON(t, ts.URL+"/v1/distance?from=0&to=7", http.StatusOK, &d)
	if d.Distance != 7 {
		t.Fatalf("pre-update distance = %d, want 7", d.Distance)
	}

	// Reweight edge {6,7} to 100: dist(0,7) becomes 106.
	var ur updateResponse
	postJSON(t, ts.URL+"/v1/update", `{"updates":[{"u":6,"v":7,"w":100}]}`, http.StatusOK, &ur)
	if ur.Epoch != 1 || ur.Applied != 1 || ur.Pending {
		t.Fatalf("update response = %+v, want epoch 1, applied 1, not pending", ur)
	}

	getJSON(t, ts.URL+"/v1/epoch", http.StatusOK, &ep)
	if ep.Epoch != 1 {
		t.Fatalf("post-update epoch = %d, want 1", ep.Epoch)
	}
	getJSON(t, ts.URL+"/v1/distance?from=0&to=7", http.StatusOK, &d)
	if d.Distance != 106 {
		t.Fatalf("post-update distance = %d, want 106 (stale cache?)", d.Distance)
	}

	// Delete the edge: node 7 falls off the path and the wire answers -1.
	postJSON(t, ts.URL+"/v1/update", `{"updates":[{"u":6,"v":7,"w":-1}]}`, http.StatusOK, &ur)
	if ur.Epoch != 2 {
		t.Fatalf("second update epoch = %d, want 2", ur.Epoch)
	}
	getJSON(t, ts.URL+"/v1/distance?from=0&to=7", http.StatusOK, &d)
	if d.Distance != -1 {
		t.Fatalf("post-delete distance = %d, want -1", d.Distance)
	}
}

// TestUpdateMatchesColdEngine pins the differential guarantee over HTTP:
// after a batch of mutations, the daemon's answers are byte-identical to
// a cold engine built from the final graph.
func TestUpdateMatchesColdEngine(t *testing.T) {
	_, eng := testEngine(t, 24)
	dyn := ccsp.NewDynamicEngine(eng)
	defer dyn.Close()
	ts := newDynamicServer(t, dyn, Config{})

	body := `{"updates":[{"u":0,"v":23,"w":3},{"u":5,"v":6,"w":-1},{"u":10,"v":11,"w":42}]}`
	var ur updateResponse
	postJSON(t, ts.URL+"/v1/update", body, http.StatusOK, &ur)

	// Cold engine on the equivalent final graph.
	cold := ccsp.NewGraph(24)
	gr := dyn.Engine().Graph()
	for u := 0; u < gr.N(); u++ {
		u := u
		gr.Neighbors(u, func(v int, w int64) {
			if u < v {
				cold.MustAddEdge(u, v, w)
			}
		})
	}
	coldEng, err := ccsp.NewEngine(context.Background(), cold, ccsp.Options{Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	want, err := coldEng.SSSP(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	var sr ssspResponse
	getJSON(t, ts.URL+"/v1/sssp?source=0", http.StatusOK, &sr)
	for v, wd := range want.Dist {
		if sr.Dist[v] != jsonDist(wd) {
			t.Fatalf("dist[%d] = %d over HTTP, cold engine says %d", v, sr.Dist[v], jsonDist(wd))
		}
	}
}

// TestUpdateStaticGraphRejected: a graph registered with AddGraph has no
// mutation path; the daemon must say so with a typed 422, not a 500.
func TestUpdateStaticGraphRejected(t *testing.T) {
	_, eng := testEngine(t, 8)
	ts := newTestServer(t, eng, Config{})
	body := postJSON(t, ts.URL+"/v1/update", `{"updates":[{"u":0,"v":1,"w":5}]}`,
		http.StatusUnprocessableEntity, nil)
	if !strings.Contains(string(body), "invalid_option") || !strings.Contains(string(body), "static") {
		t.Fatalf("static-graph rejection body = %s", body)
	}
}

// TestUpdateValidation walks the 4xx surface of POST /v1/update.
func TestUpdateValidation(t *testing.T) {
	_, eng := pathEngine(t, 8, 1)
	dyn := ccsp.NewDynamicEngine(eng)
	defer dyn.Close()
	ts := newDynamicServer(t, dyn, Config{})

	cases := []struct {
		name, body string
		wantCode   int
		wantFrag   string
	}{
		{"malformed JSON", `{"updates":`, http.StatusBadRequest, "malformed"},
		{"empty batch", `{"updates":[]}`, http.StatusBadRequest, "no updates"},
		{"unknown graph", `{"graph":"nope","updates":[{"u":0,"v":1,"w":5}]}`, http.StatusNotFound, "unknown_graph"},
		{"self loop", `{"updates":[{"u":3,"v":3,"w":5}]}`, http.StatusUnprocessableEntity, "invalid_option"},
		{"out of range", `{"updates":[{"u":0,"v":99,"w":5}]}`, http.StatusUnprocessableEntity, "invalid_option"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			body := postJSON(t, ts.URL+"/v1/update", tc.body, tc.wantCode, nil)
			if !strings.Contains(string(body), tc.wantFrag) {
				t.Fatalf("body = %s, want fragment %q", body, tc.wantFrag)
			}
		})
	}

	// Oversized batch (over maxUpdatesPerBatch entries) is refused
	// before any staging happens.
	var sb strings.Builder
	sb.WriteString(`{"updates":[`)
	for i := 0; i <= maxUpdatesPerBatch; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, `{"u":0,"v":1,"w":%d}`, i+1)
	}
	sb.WriteString(`]}`)
	postJSON(t, ts.URL+"/v1/update", sb.String(), http.StatusBadRequest, nil)

	// GET on the update endpoint is a 405.
	resp, err := http.Get(ts.URL + "/v1/update")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/update = %d, want 405", resp.StatusCode)
	}

	// Nothing above may have burned an epoch: the graph never changed.
	var ep epochResponse
	getJSON(t, ts.URL+"/v1/epoch", http.StatusOK, &ep)
	if ep.Epoch != 0 {
		t.Fatalf("epoch after rejected updates = %d, want 0", ep.Epoch)
	}
}

// TestAsyncUpdate: an async request answers Pending with the target
// epoch, and polling GET /v1/epoch observes the publish.
func TestAsyncUpdate(t *testing.T) {
	_, eng := pathEngine(t, 8, 1)
	dyn := ccsp.NewDynamicEngine(eng)
	defer dyn.Close()
	ts := newDynamicServer(t, dyn, Config{})

	var ur updateResponse
	postJSON(t, ts.URL+"/v1/update", `{"updates":[{"u":0,"v":1,"w":9}],"async":true}`,
		http.StatusOK, &ur)
	if ur.Epoch != 1 || !ur.Pending {
		t.Fatalf("async response = %+v, want epoch 1 pending", ur)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		var ep epochResponse
		getJSON(t, ts.URL+"/v1/epoch", http.StatusOK, &ep)
		if ep.Epoch >= ur.Epoch {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("epoch stuck at %d, async update never published", ep.Epoch)
		}
		time.Sleep(5 * time.Millisecond)
	}
	var d distResponse
	getJSON(t, ts.URL+"/v1/distance?from=0&to=1", http.StatusOK, &d)
	if d.Distance != 9 {
		t.Fatalf("post-async distance = %d, want 9", d.Distance)
	}
}

// TestEpochEndpointRouting: named graphs resolve, unknown graphs 404,
// and static graphs report their (fixed) epoch with no pending count.
func TestEpochEndpointRouting(t *testing.T) {
	_, eng := testEngine(t, 8)
	ts := newTestServer(t, eng, Config{})

	var ep epochResponse
	getJSON(t, ts.URL+"/v1/epoch", http.StatusOK, &ep)
	if ep.Epoch != 0 || ep.Pending != 0 {
		t.Fatalf("static epoch = %+v, want 0/0", ep)
	}
	resp, err := http.Get(ts.URL + "/v1/epoch?graph=nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown graph epoch = %d, want 404", resp.StatusCode)
	}
}

// epochResponse / updateResponse / distResponse mirror the wire shapes
// locally so the tests state expectations independently of api types.
type epochResponse struct {
	Graph   string `json:"graph"`
	Epoch   uint64 `json:"epoch"`
	Pending int    `json:"pending"`
}

type updateResponse struct {
	Graph   string `json:"graph"`
	Epoch   uint64 `json:"epoch"`
	Applied int    `json:"applied"`
	Pending bool   `json:"pending"`
}

type distResponse struct {
	Distance int64 `json:"distance"`
}
