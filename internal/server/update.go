// POST /v1/update and GET /v1/epoch: the mutation plane (DESIGN.md §16).
package server

import (
	"context"
	"fmt"
	"net/http"

	"github.com/congestedclique/ccsp"
	"github.com/congestedclique/ccsp/api"
)

const (
	// maxUpdateBytes caps a /v1/update body; an update is three small
	// integers, so 1 MiB admits tens of thousands per batch.
	maxUpdateBytes = 1 << 20
	// maxUpdatesPerBatch caps the updates one request may carry, for the
	// same reason maxBatchRequests exists: bound the work one request
	// can stage.
	maxUpdatesPerBatch = 4096
)

// handleUpdate serves POST /v1/update: one api.UpdateRequest staged as
// a single graph generation on the target dynamic graph. By default
// the handler blocks (under the request context plus the server
// timeout) until the background rebuild publishes the generation, so a
// 200 means queries already reflect the batch; Async requests answer
// as soon as the batch is staged, with Pending set.
//
// The rebuild itself does not pass admission control: it runs on the
// coordinator's single builder goroutine - there is never more than
// one per graph - so it cannot multiply under request pressure the way
// query work can.
func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.errors.Inc()
		writeAPIError(w, http.StatusMethodNotAllowed, api.KindUpdate,
			&api.Error{Code: api.CodeMalformed, Message: "use POST"})
		return
	}
	ur, err := api.DecodeUpdateRequest(http.MaxBytesReader(w, r.Body, maxUpdateBytes))
	if err != nil {
		s.errors.Inc()
		writeAPIError(w, statusForError(err), api.KindUpdate, ccsp.APIError(err))
		return
	}
	if len(ur.Updates) > maxUpdatesPerBatch {
		s.errors.Inc()
		writeAPIError(w, http.StatusBadRequest, api.KindUpdate,
			&api.Error{Code: api.CodeMalformed,
				Message: fmt.Sprintf("batch of %d updates exceeds the %d-update limit", len(ur.Updates), maxUpdatesPerBatch)})
		return
	}
	entry, err := s.engineFor(ur.Graph)
	if err != nil {
		s.errors.Inc()
		writeAPIError(w, statusForError(err), api.KindUpdate, ccsp.APIError(err))
		return
	}
	if entry.dyn == nil {
		s.errors.Inc()
		writeAPIError(w, http.StatusUnprocessableEntity, api.KindUpdate,
			&api.Error{Code: api.CodeInvalidOption, Message: "graph is static: this daemon did not register it for updates"})
		return
	}

	ups := make([]ccsp.EdgeUpdate, len(ur.Updates))
	for i, u := range ur.Updates {
		ups[i] = ccsp.EdgeUpdate{U: u.U, V: u.V, W: u.W}
	}
	ctx := r.Context()
	if s.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
		defer cancel()
	}
	epoch, err := entry.dyn.ApplyUpdates(ctx, ups)
	if err != nil {
		writeAPIError(w, s.countError(err), api.KindUpdate, ccsp.APIError(err))
		return
	}
	s.updates.Inc()
	resp := api.UpdateResponse{Graph: ur.Graph, Epoch: epoch, Applied: len(ur.Updates)}
	if ur.Async {
		resp.Pending = true
		writeJSON(w, http.StatusOK, resp)
		return
	}
	if err := entry.dyn.Wait(ctx, epoch); err != nil {
		// The generation did not publish within this request: rebuild
		// failure drops it (503/422 by taxonomy); a fired deadline only
		// abandons the wait - the rebuild continues and the epoch may
		// still publish, observable via GET /v1/epoch.
		writeAPIError(w, s.countError(err), api.KindUpdate, ccsp.APIError(err))
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleEpoch serves GET /v1/epoch?graph=ID: the serving epoch of one
// graph (the default graph when the parameter is absent), plus the
// count of staged-but-unpublished updates.
func (s *Server) handleEpoch(w http.ResponseWriter, r *http.Request) {
	graph := r.URL.Query().Get("graph")
	if err := api.ValidateGraphID(graph); err != nil {
		s.errors.Inc()
		writeAPIError(w, statusForError(err), "", ccsp.APIError(err))
		return
	}
	entry, err := s.engineFor(graph)
	if err != nil {
		s.errors.Inc()
		writeAPIError(w, statusForError(err), "", ccsp.APIError(err))
		return
	}
	resp := api.EpochResponse{Graph: graph, Epoch: entry.current().Epoch()}
	if entry.dyn != nil {
		resp.Pending = entry.dyn.Pending()
	}
	writeJSON(w, http.StatusOK, resp)
}
