package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/congestedclique/ccsp"
	"github.com/congestedclique/ccsp/api"
)

// newAdmissionServer builds a server with explicit admission knobs and
// returns both the Server (for white-box access to the admission state)
// and its test listener. Caching is disabled so every request reaches
// the admission gate.
func newAdmissionServer(t testing.TB, n int, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	_, eng := testEngine(t, n)
	cfg.Engine = eng
	cfg.CacheSize = -1
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// postQuery posts one SSSP request and returns the raw response.
func postQuery(t testing.TB, url string, source int) *http.Response {
	t.Helper()
	body, _ := json.Marshal(api.Request{Kind: api.KindSSSP, SSSP: &api.SSSPParams{Source: source}})
	resp, err := http.Post(url+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestAdmissionShedsWhenFull is the deterministic half of the contract:
// with one execution slot and no queue, a request arriving while the
// slot is held is shed with a typed 503 + Retry-After, and the slot's
// release restores service.
func TestAdmissionShedsWhenFull(t *testing.T) {
	s, ts := newAdmissionServer(t, 10, Config{MaxInFlight: 1, MaxQueue: -1})

	// Occupy the only execution slot directly - no racing a real query.
	s.adm.slots <- struct{}{}

	resp := postQuery(t, ts.URL, 0)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != retryAfterHint {
		t.Errorf("Retry-After %q, want %q", got, retryAfterHint)
	}
	var body errorBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Error == nil || body.Error.Code != api.CodeOverloaded {
		t.Fatalf("error body %+v, want code %q", body.Error, api.CodeOverloaded)
	}
	if got := s.shed.Value(); got != 1 {
		t.Errorf("shed counter %d, want 1", got)
	}

	// Health and readiness never queue: both answer 200 while saturated.
	for _, ep := range []string{"/healthz", "/readyz"} {
		r, err := http.Get(ts.URL + ep)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Errorf("GET %s during overload: status %d, want 200", ep, r.StatusCode)
		}
	}

	// Releasing the slot restores service.
	<-s.adm.slots
	ok := postQuery(t, ts.URL, 0)
	defer ok.Body.Close()
	if ok.StatusCode != http.StatusOK {
		t.Fatalf("after release: status %d, want 200", ok.StatusCode)
	}
}

// TestAdmissionQueueWaitSheds: a query that gets a queue slot but no
// execution slot within QueueWait is shed; one that gets a slot in time
// is served.
func TestAdmissionQueueWaitSheds(t *testing.T) {
	s, ts := newAdmissionServer(t, 10, Config{MaxInFlight: 1, MaxQueue: 1, QueueWait: 30 * time.Millisecond})

	s.adm.slots <- struct{}{}
	start := time.Now()
	resp := postQuery(t, ts.URL, 0)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("queued past wait: status %d, want 503", resp.StatusCode)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Errorf("shed after %s, want >= the 30ms queue wait", elapsed)
	}

	// Free the slot while a second query waits in the queue: it must be
	// admitted, not shed.
	done := make(chan *http.Response, 1)
	go func() {
		r, err := http.Post(ts.URL+"/v1/query", "application/json",
			strings.NewReader(`{"kind":"sssp","sssp":{"source":1}}`))
		if err == nil {
			done <- r
		}
	}()
	time.Sleep(5 * time.Millisecond) // let it reach the queue
	<-s.adm.slots
	select {
	case r := <-done:
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("queued query after release: status %d, want 200", r.StatusCode)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued query never completed")
	}
}

// TestAdmissionBoundsInFlight drives far more concurrency than the
// limit and asserts the executing high-water mark never exceeds it
// while every admitted request still succeeds (generous queue + wait).
func TestAdmissionBoundsInFlight(t *testing.T) {
	const limit, clients = 2, 16
	s, ts := newAdmissionServer(t, 12, Config{MaxInFlight: limit, MaxQueue: clients, QueueWait: 30 * time.Second})

	var wg sync.WaitGroup
	var failed atomic.Int64
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			resp := postQuery(t, ts.URL, src%12)
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				failed.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if n := failed.Load(); n != 0 {
		t.Errorf("%d/%d requests failed under a generous queue", n, clients)
	}
	if peak := s.adm.peak.Load(); peak > limit {
		t.Errorf("in-flight peak %d exceeds the limit %d", peak, limit)
	}
	if peak := s.adm.peak.Load(); peak == 0 {
		t.Error("in-flight peak never moved; admission gate not on the query path?")
	}
}

// TestAdmissionSaturation floods a one-slot server while the slot is
// held: everything is shed as a typed 503, no request sneaks past the
// bound, health stays green, and the flood leaks no goroutines.
func TestAdmissionSaturation(t *testing.T) {
	const clients = 24
	s, ts := newAdmissionServer(t, 10, Config{MaxInFlight: 1, MaxQueue: 1, QueueWait: 10 * time.Millisecond})

	baseline := runtime.NumGoroutine()
	s.adm.slots <- struct{}{}

	var wg sync.WaitGroup
	var got503, other atomic.Int64
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			resp := postQuery(t, ts.URL, src%10)
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusServiceUnavailable {
				other.Add(1)
				return
			}
			var body errorBody
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil ||
				body.Error == nil || body.Error.Code != api.CodeOverloaded {
				other.Add(1)
				return
			}
			got503.Add(1)
		}(i)
	}
	wg.Wait()

	if got503.Load() != clients || other.Load() != 0 {
		t.Errorf("typed 503s: %d, other outcomes: %d (want %d/0)", got503.Load(), other.Load(), clients)
	}
	if got := s.shed.Value(); got != clients {
		t.Errorf("shed counter %d, want %d", got, clients)
	}
	if peak := s.adm.peak.Load(); peak != 0 {
		t.Errorf("in-flight peak %d while the slot was held externally, want 0", peak)
	}

	r, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Errorf("healthz during saturation: %d, want 200", r.StatusCode)
	}

	<-s.adm.slots
	// The flood must drain completely: poll until the goroutine count
	// returns to (near) the pre-flood baseline. Idle keep-alive
	// connections in the shared client's pool carry goroutines of their
	// own; drop them so only a real server-side leak can fail this.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 {
		http.DefaultClient.CloseIdleConnections()
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now vs %d baseline", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAdmissionDisabled: a negative MaxInFlight turns the gate off
// entirely - no admission state, queries flow.
func TestAdmissionDisabled(t *testing.T) {
	s, ts := newAdmissionServer(t, 10, Config{MaxInFlight: -1})
	if s.adm != nil {
		t.Fatal("MaxInFlight < 0 should disable admission")
	}
	resp := postQuery(t, ts.URL, 0)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
}

// TestAdmissionDefaults pins the knob resolution: zero values pick the
// documented defaults.
func TestAdmissionDefaults(t *testing.T) {
	a := newAdmission(0, 0, 0)
	want := 4 * runtime.GOMAXPROCS(0)
	if cap(a.slots) != want {
		t.Errorf("default limit %d, want %d", cap(a.slots), want)
	}
	if cap(a.queued) != want {
		t.Errorf("default queue %d, want %d", cap(a.queued), want)
	}
	if a.wait != defaultQueueWait {
		t.Errorf("default wait %s, want %s", a.wait, defaultQueueWait)
	}
	if q := newAdmission(3, -1, time.Second); cap(q.queued) != 0 {
		t.Errorf("negative queue resolved to %d, want 0", cap(q.queued))
	}
}

// TestAdmissionCacheHitsBypass: with the cache enabled and the only
// slot held, a cached response still answers 200 - the bound protects
// engine work, not the LRU.
func TestAdmissionCacheHitsBypass(t *testing.T) {
	_, eng := testEngine(t, 10)
	s, err := New(Config{Engine: eng, MaxInFlight: 1, MaxQueue: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	warm := postQuery(t, ts.URL, 0) // populate the cache
	io.Copy(io.Discard, warm.Body)  //nolint:errcheck
	warm.Body.Close()
	if warm.StatusCode != http.StatusOK {
		t.Fatalf("warmup: status %d", warm.StatusCode)
	}

	s.adm.slots <- struct{}{}
	defer func() { <-s.adm.slots }()

	hit := postQuery(t, ts.URL, 0)
	defer hit.Body.Close()
	if hit.StatusCode != http.StatusOK {
		t.Fatalf("cache hit during saturation: status %d, want 200", hit.StatusCode)
	}
	var resp api.Response
	if err := json.NewDecoder(hit.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Cached {
		t.Error("response not marked cached")
	}
}

// TestLegacyOverloadShape: the frozen query-string shims shed with the
// historical {"error": ...} body plus the Retry-After hint.
func TestLegacyOverloadShape(t *testing.T) {
	s, ts := newAdmissionServer(t, 10, Config{MaxInFlight: 1, MaxQueue: -1})
	s.adm.slots <- struct{}{}
	defer func() { <-s.adm.slots }()

	resp, err := http.Get(ts.URL + "/v1/sssp?source=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != retryAfterHint {
		t.Errorf("Retry-After %q, want %q", got, retryAfterHint)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body["error"], "overloaded") {
		t.Errorf("legacy error body %q, want an overloaded message", body["error"])
	}
}

// TestAcquireHonorsContext: a caller whose context dies while queued
// gets the cancellation taxonomy, not an overload.
func TestAcquireHonorsContext(t *testing.T) {
	a := newAdmission(1, 1, time.Minute)
	a.slots <- struct{}{}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	err := a.acquire(ctx)
	if !errors.Is(err, ccsp.ErrCanceled) {
		t.Fatalf("queued past a dead context: %v, want ErrCanceled", err)
	}
	if errors.Is(err, ccsp.ErrOverloaded) {
		t.Fatal("context death misreported as overload")
	}
	// The queue slot must have been returned.
	select {
	case a.queued <- struct{}{}:
		<-a.queued
	default:
		t.Fatal("queue slot leaked after context cancellation")
	}
}
