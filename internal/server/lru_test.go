package server

import (
	"fmt"
	"sync"
	"testing"
)

// TestLRUEvictionOrder pins the eviction policy: least-recently-used
// goes first, and both Get and Put refresh recency.
func TestLRUEvictionOrder(t *testing.T) {
	c := newLRU(3)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("c", 3)

	// Touch "a" so "b" becomes the oldest, then overflow.
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	c.Put("d", 4)
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction; want LRU out first")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s evicted; want it retained", k)
		}
	}

	// Re-putting an existing key refreshes recency and replaces the value
	// without growing the cache.
	c.Put("c", 33)
	c.Put("e", 5) // evicts "a": the oldest after c's refresh (d, c were touched later)
	if _, ok := c.Get("a"); ok {
		t.Error("a survived; re-Put of c should have refreshed c, leaving a oldest")
	}
	if v, ok := c.Get("c"); !ok || v.(int) != 33 {
		t.Errorf("Get(c) = %v, %v; want the replaced value 33", v, ok)
	}
	if entries, _, _ := c.Stats(); entries != 3 {
		t.Errorf("entries = %d, want 3", entries)
	}
}

// TestLRUAccounting pins the hit/miss counters, including the disabled
// (max <= 0) cache where every lookup is a silent miss-without-counting.
func TestLRUAccounting(t *testing.T) {
	c := newLRU(2)
	c.Get("nope") // miss
	c.Put("k", "v")
	c.Get("k")    // hit
	c.Get("k")    // hit
	c.Get("gone") // miss
	entries, hits, misses := c.Stats()
	if entries != 1 || hits != 2 || misses != 2 {
		t.Errorf("Stats() = (%d, %d, %d), want (1, 2, 2)", entries, hits, misses)
	}

	off := newLRU(0)
	off.Put("k", "v")
	if _, ok := off.Get("k"); ok {
		t.Error("disabled cache returned a value")
	}
	if entries, hits, misses := off.Stats(); entries != 0 || hits != 0 || misses != 0 {
		t.Errorf("disabled cache Stats() = (%d, %d, %d), want zeros", entries, hits, misses)
	}
}

// TestLRUConcurrent hammers one small cache from many goroutines; run
// under -race (CI does) this is the data-race gate for the serving
// path's only shared mutable structure besides the engines themselves.
func TestLRUConcurrent(t *testing.T) {
	c := newLRU(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", (g+i)%16)
				if v, ok := c.Get(key); ok {
					if _, isInt := v.(int); !isInt {
						t.Errorf("corrupted value %v under key %s", v, key)
						return
					}
				}
				c.Put(key, i)
			}
		}(g)
	}
	wg.Wait()
	entries, hits, misses := c.Stats()
	if entries > 8 {
		t.Errorf("entries = %d, want <= capacity 8", entries)
	}
	if hits+misses != 8*500 {
		t.Errorf("hits+misses = %d, want %d lookups accounted", hits+misses, 8*500)
	}
}
