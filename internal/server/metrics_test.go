package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestMetricsEndpoint exercises the serving surface and asserts the
// Prometheus page reflects it: request counters by endpoint and class,
// latency histograms, cache and admission families, all under the
// exposition content type.
func TestMetricsEndpoint(t *testing.T) {
	_, eng := testEngine(t, 12)
	s, err := New(Config{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	// One success, one repeat (cache hit), one typed failure.
	for i := 0; i < 2; i++ {
		r := postQuery(t, ts.URL, 3)
		io.Copy(io.Discard, r.Body) //nolint:errcheck
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("query %d: status %d", i, r.StatusCode)
		}
	}
	bad := postQuery(t, ts.URL, 999)
	io.Copy(io.Discard, bad.Body) //nolint:errcheck
	bad.Body.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type %q, want the 0.0.4 exposition type", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	page := string(raw)
	for _, want := range []string{
		"# TYPE ccspd_requests_total counter",
		"# TYPE ccspd_http_requests_total counter",
		`ccspd_http_requests_total{endpoint="query",class="2xx"} 2`,
		`ccspd_http_requests_total{endpoint="query",class="4xx"} 1`,
		"# TYPE ccspd_http_request_seconds histogram",
		`ccspd_http_request_seconds_count{endpoint="query"} 3`,
		"ccspd_cache_hits_total 1",
		"ccspd_cache_misses_total 2",
		"ccspd_ready 1",
		"ccspd_graphs 1",
		"# TYPE ccspd_inflight gauge",
		"ccspd_shed_total 0",
		"# TYPE ccspd_admission_limit gauge",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("metrics page missing %q", want)
		}
	}
}

// TestVarsKeysStable pins the expvar snapshot's historical keys: the
// PR 8 surface must survive the move onto the telemetry registry
// (additions are fine, removals and renames are not).
func TestVarsKeysStable(t *testing.T) {
	_, eng := testEngine(t, 10)
	s, err := New(Config{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	vars, ok := s.Vars().(map[string]interface{})
	if !ok {
		t.Fatalf("Vars() is %T, want a map", s.Vars())
	}
	for _, key := range []string{
		"ready", "graphs", "requests", "errors", "timeouts", "queries",
		"batches", "batch_requests", "inflight",
		"cache_entries", "cache_hits", "cache_misses",
	} {
		if _, present := vars[key]; !present {
			t.Errorf("Vars() lost historical key %q", key)
		}
	}
}

// TestDebugHandler: the opt-in debug mux serves pprof, expvar and the
// metrics page; none of these ride on the public Handler's pprof paths.
func TestDebugHandler(t *testing.T) {
	_, eng := testEngine(t, 10)
	s, err := New(Config{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.DebugHandler())
	t.Cleanup(ts.Close)

	for path, wantInBody := range map[string]string{
		"/debug/pprof/":        "profiles",
		"/debug/pprof/cmdline": "",
		"/debug/vars":          "cmdline",
		"/metrics":             "ccspd_requests_total",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d, want 200", path, resp.StatusCode)
			continue
		}
		if wantInBody != "" && !strings.Contains(string(body), wantInBody) {
			t.Errorf("GET %s: body missing %q", path, wantInBody)
		}
	}

	// The public handler must NOT serve pprof profiles.
	pub := httptest.NewServer(s.Handler())
	t.Cleanup(pub.Close)
	resp, err := http.Get(pub.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("public handler serves /debug/pprof/; profiling must stay on the debug listener")
	}
}
