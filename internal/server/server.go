// Package server implements the HTTP/JSON serving layer of cmd/ccspd: a
// set of handlers over one shared, concurrency-safe ccsp.Engine. This is
// the process boundary the ROADMAP's serving goal needs - the engine
// preprocesses (or loads a snapshot) once, then every HTTP request is a
// cheap query-only run, optionally short-circuited by a small LRU cache
// of repeated queries.
//
// Endpoints (all GET, all JSON; distances use -1 for unreachable pairs):
//
//	/healthz                     liveness + graph shape
//	/v1/sssp?source=S            exact single-source distances
//	/v1/mssp?sources=A,B,...     (1+ε)-approximate multi-source distances
//	/v1/distance?from=U&to=V     one (1+ε)-approximate pair, via MSSP
//	/v1/diameter                 near-3/2 diameter estimate
//	/v1/stats                    server, cache, graph and preprocessing stats
//
// Every query runs under the request context (plus the per-request
// Config.Timeout): a fired deadline or a dropped client connection stops
// the underlying simulation at its next barrier - the CPU-bound run
// actually halts, it is not abandoned to burn in the background. Errors
// map to statuses through the ccsp typed-error taxonomy:
//
//	context.DeadlineExceeded   504 Gateway Timeout
//	context.Canceled           499 (client closed request)
//	ccsp.ErrRoundLimit         503 Service Unavailable
//	ccsp.ErrInvalidSource      422 Unprocessable Entity
//	ccsp.ErrInvalidOption      422 Unprocessable Entity
//	anything else (bad params) 400 Bad Request
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"github.com/congestedclique/ccsp"
)

// Config configures a Server.
type Config struct {
	// Engine serves every query. Required.
	Engine *ccsp.Engine
	// Timeout bounds each request's query; 0 means no timeout.
	Timeout time.Duration
	// CacheSize is the LRU capacity in responses; 0 picks the default
	// (128), negative disables caching.
	CacheSize int
}

// Server holds the shared engine and per-process serving state.
type Server struct {
	eng        *ccsp.Engine
	timeout    time.Duration
	cache      *lru
	cacheCap   int
	start      time.Time
	unweighted bool

	requests atomic.Int64
	errors   atomic.Int64
	timeouts atomic.Int64
}

// New returns a Server over cfg.Engine.
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("server: nil engine")
	}
	size := cfg.CacheSize
	if size == 0 {
		size = 128
	}
	if size < 0 {
		size = 0
	}
	return &Server{
		eng:        cfg.Engine,
		timeout:    cfg.Timeout,
		cache:      newLRU(size),
		cacheCap:   size,
		start:      time.Now(),
		unweighted: cfg.Engine.Graph().Unweighted(),
	}, nil
}

// Handler returns the HTTP handler serving all endpoints.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/sssp", s.handleSSSP)
	mux.HandleFunc("/v1/mssp", s.handleMSSP)
	mux.HandleFunc("/v1/distance", s.handleDistance)
	mux.HandleFunc("/v1/diameter", s.handleDiameter)
	mux.HandleFunc("/v1/stats", s.handleStats)
	return mux
}

// statsJSON is the deterministic core of a run's cost, embedded in query
// responses.
type statsJSON struct {
	TotalRounds int   `json:"total_rounds"`
	SimRounds   int   `json:"sim_rounds"`
	Messages    int64 `json:"messages"`
	Words       int64 `json:"words"`
}

func toStatsJSON(s ccsp.Stats) statsJSON {
	return statsJSON{TotalRounds: s.TotalRounds, SimRounds: s.SimRounds, Messages: s.Messages, Words: s.Words}
}

// unreachable is the JSON stand-in for disconnected pairs.
const unreachable = -1

func jsonDist(d int64) int64 {
	if d >= ccsp.Unreachable {
		return unreachable
	}
	return d
}

type ssspResponse struct {
	Source     int       `json:"source"`
	Dist       []int64   `json:"dist"`
	Iterations int       `json:"iterations"`
	Stats      statsJSON `json:"stats"`
	Cached     bool      `json:"cached"`
}

type msspResponse struct {
	Sources []int     `json:"sources"`
	Dist    [][]int64 `json:"dist"`
	Stats   statsJSON `json:"stats"`
	Cached  bool      `json:"cached"`
}

type distanceResponse struct {
	From      int       `json:"from"`
	To        int       `json:"to"`
	Distance  int64     `json:"distance"`
	Reachable bool      `json:"reachable"`
	Stats     statsJSON `json:"stats"`
	Cached    bool      `json:"cached"`
}

type diameterResponse struct {
	Estimate int64     `json:"estimate"`
	Stats    statsJSON `json:"stats"`
	Cached   bool      `json:"cached"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"status": "ok",
		"nodes":  s.eng.Graph().N(),
		"edges":  s.eng.Graph().M(),
	})
}

func (s *Server) handleSSSP(w http.ResponseWriter, r *http.Request) {
	s.serve(w, r, func() (string, queryFunc, error) {
		src, err := intParam(r, "source")
		if err != nil {
			return "", nil, err
		}
		return "sssp:" + strconv.Itoa(src), func(ctx context.Context) (interface{}, error) {
			res, err := s.eng.SSSP(ctx, src)
			if err != nil {
				return nil, err
			}
			dist := make([]int64, len(res.Dist))
			for i, d := range res.Dist {
				dist[i] = jsonDist(d)
			}
			return ssspResponse{Source: src, Dist: dist, Iterations: res.Iterations, Stats: toStatsJSON(res.Stats)}, nil
		}, nil
	})
}

func (s *Server) handleMSSP(w http.ResponseWriter, r *http.Request) {
	s.serve(w, r, func() (string, queryFunc, error) {
		sources, err := sourcesParam(r, "sources")
		if err != nil {
			return "", nil, err
		}
		return msspKey(sources), func(ctx context.Context) (interface{}, error) { return s.msspQuery(ctx, sources) }, nil
	})
}

func (s *Server) handleDistance(w http.ResponseWriter, r *http.Request) {
	from, errF := intParam(r, "from")
	to, errT := intParam(r, "to")
	s.serve(w, r, func() (string, queryFunc, error) {
		if errF != nil {
			return "", nil, errF
		}
		if errT != nil {
			return "", nil, errT
		}
		if to < 0 || to >= s.eng.Graph().N() {
			return "", nil, fmt.Errorf("%w: node %d out of range [0,%d)", ccsp.ErrInvalidSource, to, s.eng.Graph().N())
		}
		// One pair is an MSSP query from a single source; sharing the
		// MSSP cache key means repeated lookups from a hot source node
		// (and explicit /v1/mssp calls) all hit the same entry.
		return msspKey([]int{from}), func(ctx context.Context) (interface{}, error) { return s.msspQuery(ctx, []int{from}) }, nil
	}, func(v interface{}, cached bool) interface{} {
		m := v.(msspResponse)
		d := m.Dist[to][0]
		return distanceResponse{From: from, To: to, Distance: d, Reachable: d != unreachable,
			Stats: m.Stats, Cached: cached}
	})
}

func (s *Server) handleDiameter(w http.ResponseWriter, r *http.Request) {
	s.serve(w, r, func() (string, queryFunc, error) {
		return "diameter", func(ctx context.Context) (interface{}, error) {
			res, err := s.eng.Diameter(ctx)
			if err != nil {
				return nil, err
			}
			return diameterResponse{Estimate: res.Estimate, Stats: toStatsJSON(res.Stats)}, nil
		}, nil
	})
}

func (s *Server) msspQuery(ctx context.Context, sources []int) (interface{}, error) {
	res, err := s.eng.MSSP(ctx, sources)
	if err != nil {
		return nil, err
	}
	dist := make([][]int64, len(res.Dist))
	for v, row := range res.Dist {
		dist[v] = make([]int64, len(row))
		for i, d := range row {
			dist[v][i] = jsonDist(d)
		}
	}
	return msspResponse{Sources: res.Sources, Dist: dist, Stats: toStatsJSON(res.Stats)}, nil
}

// msspKey normalizes a source set into a cache key (sorted, deduplicated
// - the same normalization Engine.MSSP applies to the query itself).
func msspKey(sources []int) string {
	seen := map[int]bool{}
	uniq := make([]int, 0, len(sources))
	for _, s := range sources {
		if !seen[s] {
			seen[s] = true
			uniq = append(uniq, s)
		}
	}
	sort.Ints(uniq)
	parts := make([]string, len(uniq))
	for i, s := range uniq {
		parts[i] = strconv.Itoa(s)
	}
	return "mssp:" + strings.Join(parts, ",")
}

// queryFunc runs one query under a request-scoped context.
type queryFunc func(ctx context.Context) (interface{}, error)

// serve is the shared request path: parse (prepare), consult the cache,
// run the query under the request context + timeout, cache and render.
// The optional project function derives the response from the cached
// value (used by /v1/distance to slice one pair out of an MSSP row).
func (s *Server) serve(w http.ResponseWriter, r *http.Request,
	prepare func() (string, queryFunc, error),
	project ...func(v interface{}, cached bool) interface{}) {
	s.requests.Add(1)
	if r.Method != http.MethodGet {
		s.errors.Add(1)
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	key, query, err := prepare()
	if err != nil {
		s.errors.Add(1)
		writeError(w, statusForError(err), err)
		return
	}
	render := func(v interface{}, cached bool) {
		for _, p := range project {
			v = p(v, cached)
		}
		v = withCached(v, cached)
		writeJSON(w, http.StatusOK, v)
	}
	if v, ok := s.cache.Get(key); ok {
		render(v, true)
		return
	}
	v, err := s.run(r.Context(), key, query)
	if err == nil {
		render(v, false)
		return
	}
	code := statusForError(err)
	switch code {
	case http.StatusGatewayTimeout:
		s.timeouts.Add(1)
		err = fmt.Errorf("query exceeded the %s request timeout", s.timeout)
	case statusClientClosedRequest:
		// Client went away mid-query; report it as 499 (nginx's "client
		// closed request") so logs and proxies don't see an implicit 200.
		s.errors.Add(1)
		err = fmt.Errorf("client closed the request")
	default:
		s.errors.Add(1)
	}
	writeError(w, code, err)
}

// statusClientClosedRequest is nginx's non-standard 499, the
// conventional status for "the client went away before we could answer".
const statusClientClosedRequest = 499

// statusForError is the typed-error → HTTP status table. The context
// sentinels are checked first: ccsp.ErrCanceled wraps them, and whether
// the deadline fired (504) or the client went away (499) is the
// distinction that matters to proxies and logs.
func statusForError(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return statusClientClosedRequest
	case errors.Is(err, ccsp.ErrRoundLimit):
		return http.StatusServiceUnavailable
	case errors.Is(err, ccsp.ErrInvalidSource), errors.Is(err, ccsp.ErrInvalidOption):
		return http.StatusUnprocessableEntity
	default:
		return http.StatusBadRequest
	}
}

// run executes query under the request context plus the server timeout,
// synchronously on the request goroutine: when the context fires, the
// simulator unwinds at its next barrier and the query returns - no
// goroutine keeps burning CPU behind an abandoned request. Only completed
// results are cached.
func (s *Server) run(ctx context.Context, key string, query queryFunc) (interface{}, error) {
	if s.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
		defer cancel()
	}
	v, err := query(ctx)
	if err != nil {
		return nil, err
	}
	s.cache.Put(key, v)
	return v, nil
}

// withCached stamps the Cached field on the typed responses.
func withCached(v interface{}, cached bool) interface{} {
	switch resp := v.(type) {
	case ssspResponse:
		resp.Cached = cached
		return resp
	case msspResponse:
		resp.Cached = cached
		return resp
	case distanceResponse:
		resp.Cached = cached
		return resp
	case diameterResponse:
		resp.Cached = cached
		return resp
	default:
		return v
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	entries, hits, misses := s.cache.Stats()
	pre := s.eng.PreprocessStats()
	builds := make([]map[string]interface{}, 0, len(pre.Builds))
	for _, b := range pre.Builds {
		builds = append(builds, map[string]interface{}{
			"kind":   b.Kind,
			"eps":    b.Eps,
			"beta":   b.Beta,
			"edges":  b.Edges,
			"rounds": b.Stats.TotalRounds,
		})
	}
	gr := s.eng.Graph()
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"uptime_seconds": time.Since(s.start).Seconds(),
		"requests": map[string]int64{
			"total":    s.requests.Load(),
			"errors":   s.errors.Load(),
			"timeouts": s.timeouts.Load(),
		},
		"cache": map[string]interface{}{
			"capacity": s.cacheCap,
			"entries":  entries,
			"hits":     hits,
			"misses":   misses,
		},
		"graph": map[string]interface{}{
			"nodes":      gr.N(),
			"edges":      gr.M(),
			"max_weight": gr.MaxWeight(),
			"unweighted": s.unweighted,
		},
		"options": map[string]interface{}{
			"epsilon": s.eng.Options().Epsilon,
			"workers": s.eng.Options().Workers,
		},
		"preprocess": map[string]interface{}{
			"builds":       builds,
			"total_rounds": pre.Total.TotalRounds,
		},
	})
}

func intParam(r *http.Request, name string) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing required parameter %q", name)
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("bad parameter %s=%q: not an integer", name, raw)
	}
	return v, nil
}

func sourcesParam(r *http.Request, name string) ([]int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return nil, fmt.Errorf("missing required parameter %q", name)
	}
	parts := strings.Split(raw, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad parameter %s=%q: %q is not an integer", name, raw, p)
		}
		out = append(out, v)
	}
	return out, nil
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the client is gone if this fails
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
