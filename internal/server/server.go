// Package server implements the HTTP/JSON serving layer of cmd/ccspd: a
// set of handlers over one or more shared, concurrency-safe
// ccsp.Engines. This is the process boundary the ROADMAP's serving goal
// needs - each engine preprocesses (or loads a snapshot) once, then
// every HTTP request is a cheap query-only run, optionally
// short-circuited by a small LRU cache of repeated queries.
//
// A server holds a registry of engines keyed by graph ID: the default
// graph (the empty ID, the only one a pre-cluster daemon had) plus any
// number of named graphs. Requests select a graph with the api.Request
// Graph field; requests without one hit the default engine, byte-for-
// byte compatible with the single-graph wire protocol. A request naming
// a graph the registry does not hold gets a typed 404
// (api.CodeUnknownGraph) - in a cluster, that means the ring routed it
// to the wrong replica.
//
// The serving surface is the typed query plane of the api package
// (DESIGN.md §11, §14). Primary endpoints (JSON bodies; distances use
// -1 for unreachable pairs):
//
//	POST /v1/query    one api.Request (tagged union over all 7 query
//	                  algorithms), answered with an api.Response
//	POST /v1/batch    api.BatchRequest: many requests, one engine batch
//	                  per target graph with per-request errors and
//	                  shared deduped runs
//	POST /v1/update   api.UpdateRequest: one batch of edge mutations on
//	                  a dynamic graph, applied atomically by a
//	                  background rebuild + hot engine swap (update.go)
//	GET  /v1/epoch    the serving epoch of one graph (?graph=ID), for
//	                  freshness assertions and async-update polling
//	GET  /healthz     liveness + default graph shape (503 until ready)
//	GET  /readyz      readiness: 200 + the served graph list only once
//	                  every snapshot is loaded/preprocessed (the cluster
//	                  prober consumes this)
//	GET  /v1/stats    server, cache, graph and preprocessing stats
//	GET  /metrics     Prometheus text exposition (internal/telemetry)
//	GET  /debug/vars  expvar counters (queries, batches, cache, in-flight)
//
// Deprecated query-string shims, kept byte-identical for old clients
// (each is a thin projection of the same plan/execute path the POST
// endpoints use, sharing one response cache):
//
//	GET /v1/sssp?source=S            exact single-source distances
//	GET /v1/mssp?sources=A,B,...     (1+ε)-approximate multi-source distances
//	GET /v1/distance?from=U&to=V     one (1+ε)-approximate pair, via MSSP
//	GET /v1/diameter                 near-3/2 diameter estimate
//
// Every query runs under the request context (plus the per-request
// Config.Timeout): a fired deadline or a dropped client connection stops
// the underlying simulation at its next barrier - the CPU-bound run
// actually halts, it is not abandoned to burn in the background.
// Engine-bound work additionally passes admission control (a bounded
// in-flight limit plus a short wait queue, see admission.go): a
// saturated daemon sheds the excess with fast typed 503s instead of
// letting every request's latency collapse together. Errors map to
// statuses through the ccsp typed-error taxonomy:
//
//	context.DeadlineExceeded   504 Gateway Timeout
//	context.Canceled           499 (client closed request)
//	ccsp.ErrRoundLimit         503 Service Unavailable
//	ccsp.ErrUnavailable        503 Service Unavailable (still loading)
//	ccsp.ErrOverloaded         503 Service Unavailable + Retry-After (shed)
//	ccsp.ErrUnknownGraph       404 Not Found
//	ccsp.ErrInvalidSource      422 Unprocessable Entity
//	ccsp.ErrInvalidOption      422 Unprocessable Entity
//	api.ErrMalformed           400 Bad Request
//	anything else (bad params) 400 Bad Request
package server

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/congestedclique/ccsp"
	"github.com/congestedclique/ccsp/api"
	"github.com/congestedclique/ccsp/internal/telemetry"
)

// Config configures a Server.
type Config struct {
	// Engine serves requests without a graph ID (the default graph).
	// Required unless Engines or Deferred is set.
	Engine *ccsp.Engine
	// Engines maps graph IDs to their engines (multi-graph serving). IDs
	// must satisfy api.ValidateGraphID and be non-empty (the default
	// graph goes in Engine).
	Engines map[string]*ccsp.Engine
	// Deferred starts the server with no engines and not ready: the
	// daemon binds its listener first, registers engines with AddGraph as
	// snapshots load, then flips SetReady. Until then /readyz (and every
	// query) answers 503, which is how a cluster prober distinguishes
	// "replica restarting" from "replica gone".
	Deferred bool
	// Timeout bounds each request's query (a /v1/batch body counts as one
	// request: the timeout covers the whole batch); 0 means no timeout.
	Timeout time.Duration
	// CacheSize is the LRU capacity in responses; 0 picks the default
	// (128), negative disables caching.
	CacheSize int
	// MaxInFlight bounds queries executing on the engines concurrently
	// (admission control); 0 picks the default (4 × GOMAXPROCS),
	// negative disables admission control entirely. Cache hits are
	// always admitted: the bound protects simulator and kernel work,
	// not the LRU.
	MaxInFlight int
	// MaxQueue bounds queries waiting for an execution slot beyond
	// MaxInFlight; a query arriving with the queue full is shed
	// immediately with a typed 503 (api.CodeOverloaded + Retry-After).
	// 0 picks the default (= the resolved MaxInFlight); negative
	// disables queueing, so full slots shed instantly.
	MaxQueue int
	// QueueWait bounds how long a queued query waits for an execution
	// slot before being shed; 0 picks the default (1s).
	QueueWait time.Duration
}

// engineEntry is one registered graph: either a static engine (eng) or
// a dynamic one (dyn) accepting POST /v1/update mutations. Exactly one
// of the two is set.
type engineEntry struct {
	eng *ccsp.Engine
	dyn *ccsp.DynamicEngine
}

// current resolves the engine serving this graph right now. For a
// dynamic graph this is one atomic load; callers take the engine once
// per request so planning, cache keying and execution all see a single
// (engine, epoch) pair even if a swap lands mid-request.
func (e *engineEntry) current() *ccsp.Engine {
	if e.dyn != nil {
		return e.dyn.Engine()
	}
	return e.eng
}

// Server holds the engine registry and per-process serving state.
type Server struct {
	mu      sync.RWMutex
	engines map[string]*engineEntry // key "" = default graph

	ready    atomic.Bool
	timeout  time.Duration
	cache    *lru
	cacheCap int
	start    time.Time
	adm      *admission // nil = admission control disabled

	// Serving metrics, owned by the per-server telemetry registry (see
	// metrics.go); Vars and /v1/stats read through the same values, so
	// the expvar and Prometheus views can never drift.
	reg       *telemetry.Registry
	requests  *telemetry.Counter // every HTTP request hitting a handler
	errors    *telemetry.Counter // failed queries (non-timeout)
	timeouts  *telemetry.Counter // queries killed by the server timeout
	queries   *telemetry.Counter // successfully answered query positions
	batches   *telemetry.Counter // /v1/batch bodies served
	batchReqs *telemetry.Counter // total positions across those bodies
	batchRuns *telemetry.Counter // deduped engine runs those positions cost
	shed      *telemetry.Counter // queries rejected by admission control
	updates   *telemetry.Counter // update batches accepted by /v1/update
	inflight  *telemetry.Gauge   // queries/batches currently executing
}

// New returns a Server over the configured engines.
func New(cfg Config) (*Server, error) {
	size := cfg.CacheSize
	if size == 0 {
		size = 128
	}
	if size < 0 {
		size = 0
	}
	s := &Server{
		engines:  make(map[string]*engineEntry),
		timeout:  cfg.Timeout,
		cache:    newLRU(size),
		cacheCap: size,
		start:    time.Now(),
		adm:      newAdmission(cfg.MaxInFlight, cfg.MaxQueue, cfg.QueueWait),
	}
	s.initMetrics()
	if cfg.Engine != nil {
		s.addEntry("", cfg.Engine)
	}
	for name, eng := range cfg.Engines {
		if err := s.AddGraph(name, eng); err != nil {
			return nil, err
		}
	}
	if len(s.engines) == 0 {
		if !cfg.Deferred {
			return nil, fmt.Errorf("server: no engine (set Engine, Engines, or Deferred)")
		}
		return s, nil // not ready until SetReady
	}
	s.ready.Store(true)
	return s, nil
}

// AddGraph registers eng under the graph ID name ("" = default graph).
// Safe to call while serving (a Deferred daemon registers snapshots as
// they load); duplicate and malformed IDs are rejected.
func (s *Server) AddGraph(name string, eng *ccsp.Engine) error {
	if eng == nil {
		return fmt.Errorf("server: nil engine for graph %q", name)
	}
	if err := api.ValidateGraphID(name); err != nil {
		return fmt.Errorf("server: %w", err)
	}
	return s.register(name, &engineEntry{eng: eng})
}

// AddDynamicGraph registers a mutable graph: queries resolve the
// wrapper's current engine per request, and POST /v1/update routes its
// mutations here. Like AddGraph, safe to call while serving.
func (s *Server) AddDynamicGraph(name string, dyn *ccsp.DynamicEngine) error {
	if dyn == nil {
		return fmt.Errorf("server: nil dynamic engine for graph %q", name)
	}
	if err := api.ValidateGraphID(name); err != nil {
		return fmt.Errorf("server: %w", err)
	}
	return s.register(name, &engineEntry{dyn: dyn})
}

// register installs a validated entry and its per-graph epoch gauge.
func (s *Server) register(name string, entry *engineEntry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.engines[name]; dup {
		return fmt.Errorf("server: graph %q registered twice", name)
	}
	s.engines[name] = entry
	// The gauge captures the entry, not the server: reading it takes no
	// server lock, so a /metrics scrape can never contend with (or
	// deadlock against) the registry mutation paths.
	s.reg.GaugeFunc("ccspd_graph_epoch",
		"Serving epoch of each registered graph (0 = never mutated).",
		func() float64 { return float64(entry.current().Epoch()) },
		telemetry.L("graph", name))
	return nil
}

// addEntry is AddGraph without validation, for the constructor's default
// engine (registered before any concurrent access exists).
func (s *Server) addEntry(name string, eng *ccsp.Engine) {
	s.register(name, &engineEntry{eng: eng}) //nolint:errcheck // no duplicates at construction
}

// SetReady marks the server ready: every snapshot is loaded and queries
// may flow. Before this, /readyz and all query endpoints answer 503
// (ccsp.ErrUnavailable).
func (s *Server) SetReady() { s.ready.Store(true) }

// Ready reports whether the server has been marked ready.
func (s *Server) Ready() bool { return s.ready.Load() }

// engineFor resolves a request's graph ID against the registry.
func (s *Server) engineFor(graph string) (*engineEntry, error) {
	if !s.ready.Load() {
		return nil, fmt.Errorf("%w: snapshots still loading", ccsp.ErrUnavailable)
	}
	s.mu.RLock()
	e, ok := s.engines[graph]
	s.mu.RUnlock()
	if !ok {
		if graph == "" {
			return nil, fmt.Errorf("%w: this daemon serves no default graph (name one of its graphs)", ccsp.ErrUnknownGraph)
		}
		return nil, fmt.Errorf("%w: %q", ccsp.ErrUnknownGraph, graph)
	}
	return e, nil
}

// graphIDs returns the registered graph IDs, sorted, including "" for
// the default graph when present.
func (s *Server) graphIDs() []string {
	s.mu.RLock()
	ids := make([]string, 0, len(s.engines))
	for name := range s.engines {
		ids = append(ids, name)
	}
	s.mu.RUnlock()
	sort.Strings(ids)
	return ids
}

// namedGraphIDs is graphIDs without the default graph's empty ID.
func (s *Server) namedGraphIDs() []string {
	ids := s.graphIDs()
	if len(ids) > 0 && ids[0] == "" {
		ids = ids[1:]
	}
	return ids
}

// defaultEntry returns the default graph's entry, or nil.
func (s *Server) defaultEntry() *engineEntry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.engines[""]
}

// Handler returns the HTTP handler serving all endpoints. Serving
// endpoints run under the instrumentation middleware (per-endpoint
// status-class counters and latency histograms, see metrics.go); the
// metrics and expvar pages themselves are served bare so scrapes never
// pollute the request metrics they read.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/healthz", s.instrument("healthz", s.handleHealthz))
	mux.Handle("/readyz", s.instrument("readyz", s.handleReadyz))
	mux.Handle("/v1/query", s.instrument("query", s.handleQuery))
	mux.Handle("/v1/batch", s.instrument("batch", s.handleBatch))
	mux.Handle("/v1/update", s.instrument("update", s.handleUpdate))
	mux.Handle("/v1/epoch", s.instrument("epoch", s.handleEpoch))
	mux.Handle("/v1/stats", s.instrument("stats", s.handleStats))
	// Prometheus text exposition: this server's registry plus the
	// process-global one (engine and cluster metrics).
	mux.Handle("/metrics", s.metricsHandler())
	// expvar counters (see Vars); the handler serves the process-global
	// registry, cmd/ccspd publishes this server's snapshot into it.
	mux.Handle("/debug/vars", expvar.Handler())
	// Deprecated query-string shims (see legacy.go).
	mux.Handle("/v1/sssp", s.instrument("sssp", s.handleSSSP))
	mux.Handle("/v1/mssp", s.instrument("mssp", s.handleMSSP))
	mux.Handle("/v1/distance", s.instrument("distance", s.handleDistance))
	mux.Handle("/v1/diameter", s.instrument("diameter", s.handleDiameter))
	return mux
}

// plan is the executable form of one request: the owning engine, the
// canonical cache key, the request actually handed to the engine, and an
// optional projection from the executed response to the outward one. Two
// rewrites happen at planning time so that equivalent requests share
// cache entries and engine runs: a distance request becomes a
// single-source MSSP plus a pair projection (so hot-source distance
// lookups and explicit MSSP queries hit the same entry), and an auto
// APSP variant resolves to the concrete algorithm the graph selects.
// Cache keys are graph-qualified (api.Request.CacheKey), so one shared
// LRU serves every graph without cross-graph aliasing.
type plan struct {
	kind    api.Kind // outward kind, echoed on projected/error responses
	graph   string   // outward graph ID, echoed likewise
	eng     *ccsp.Engine
	key     string
	run     api.Request
	project func(api.Response) api.Response
}

// finish stamps the cache flag and applies the projection; error
// responses (from batch position) skip projection and keep the outward
// kind.
func (p plan) finish(resp api.Response, cached bool) api.Response {
	if resp.Error != nil {
		return api.Response{Kind: p.kind, Graph: p.graph, Error: resp.Error}
	}
	resp.Cached = cached
	if p.project != nil {
		resp = p.project(resp)
	}
	return resp
}

// plan validates and rewrites one request. Errors keep the typed
// taxonomy (api.ErrMalformed for structural problems,
// ccsp.ErrUnknownGraph for an unregistered graph ID,
// ccsp.ErrInvalidSource for the distance target check the engine would
// otherwise only make after the MSSP run).
func (s *Server) plan(req api.Request) (plan, error) {
	if err := req.Validate(); err != nil {
		return plan{}, err
	}
	entry, err := s.engineFor(req.Graph)
	if err != nil {
		return plan{}, err
	}
	// One engine snapshot per request: the engine carries its epoch, so
	// the plan's cache key, validation and execution all describe the
	// same graph generation even if a dynamic swap lands in between. A
	// cached answer keyed at epoch E can only ever be served to plans
	// that snapshotted the same E.
	eng := entry.current()
	epoch := eng.Epoch()
	switch req.Kind {
	case api.KindDistance:
		n := eng.Graph().N()
		from, to := req.Distance.From, req.Distance.To
		if to < 0 || to >= n {
			return plan{}, fmt.Errorf("%w: node %d out of range [0,%d)", ccsp.ErrInvalidSource, to, n)
		}
		inner := api.Request{Kind: api.KindMSSP, Graph: req.Graph, MSSP: &api.MSSPParams{Sources: []int{from}}}
		return plan{
			kind:  api.KindDistance,
			graph: req.Graph,
			eng:   eng,
			key:   inner.CacheKeyAt(epoch),
			run:   inner,
			project: func(in api.Response) api.Response {
				d := in.MSSP.Dist[to][0]
				return api.Response{
					Kind:     api.KindDistance,
					Graph:    in.Graph,
					Distance: &api.DistanceResult{From: from, To: to, Distance: d, Reachable: d != api.Unreachable},
					Stats:    in.Stats,
					Cached:   in.Cached,
				}
			},
		}, nil
	case api.KindAPSP:
		resolved := api.Request{Kind: api.KindAPSP, Graph: req.Graph,
			APSP: &api.APSPParams{Variant: eng.ResolveAPSPVariant(req.Variant())}}
		return plan{kind: api.KindAPSP, graph: req.Graph, eng: eng, key: resolved.CacheKeyAt(epoch), run: resolved}, nil
	default:
		return plan{kind: req.Kind, graph: req.Graph, eng: eng, key: req.CacheKeyAt(epoch), run: req}, nil
	}
}

// execute is the shared request path of every query endpoint: plan,
// consult the cache, run under the request context + timeout, cache and
// project. Only completed results are cached; cached responses repeat
// the original run's deterministic stats.
func (s *Server) execute(ctx context.Context, req api.Request) (api.Response, error) {
	p, err := s.plan(req)
	if err != nil {
		return api.Response{}, err
	}
	if v, ok := s.cache.Get(p.key); ok {
		s.queries.Inc()
		return p.finish(v.(api.Response), true), nil
	}
	// Engine-bound work passes admission control: a saturated daemon
	// sheds here with a fast typed 503 instead of queueing unboundedly.
	release, err := s.admit(ctx)
	if err != nil {
		return api.Response{}, err
	}
	resp, err := s.runQuery(ctx, p.eng, p.run)
	release()
	if err != nil {
		return api.Response{}, err
	}
	s.cache.Put(p.key, resp)
	s.queries.Inc()
	return p.finish(resp, false), nil
}

// runQuery executes one engine query under the request context plus the
// server timeout, synchronously on the request goroutine: when the
// context fires, the simulator unwinds at its next barrier and the query
// returns - no goroutine keeps burning CPU behind an abandoned request.
func (s *Server) runQuery(ctx context.Context, eng *ccsp.Engine, req api.Request) (api.Response, error) {
	if s.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
		defer cancel()
	}
	resp, err := eng.Query(ctx, req)
	if err != nil {
		return api.Response{}, err
	}
	return *resp, nil
}

// statusClientClosedRequest is nginx's non-standard 499, the
// conventional status for "the client went away before we could answer".
const statusClientClosedRequest = 499

// statusForError is the typed-error → HTTP status table. The context
// sentinels are checked first: ccsp.ErrCanceled wraps them, and whether
// the deadline fired (504) or the client went away (499) is the
// distinction that matters to proxies and logs.
func statusForError(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return statusClientClosedRequest
	case errors.Is(err, ccsp.ErrRoundLimit), errors.Is(err, ccsp.ErrUnavailable),
		errors.Is(err, ccsp.ErrOverloaded):
		return http.StatusServiceUnavailable
	case errors.Is(err, ccsp.ErrUnknownGraph):
		return http.StatusNotFound
	case errors.Is(err, ccsp.ErrInvalidSource), errors.Is(err, ccsp.ErrInvalidOption):
		return http.StatusUnprocessableEntity
	default:
		// api.ErrMalformed and unclassified parse errors.
		return http.StatusBadRequest
	}
}

// countError bumps the right per-class counter for a failed query and
// returns its status code.
func (s *Server) countError(err error) int {
	code := statusForError(err)
	if code == http.StatusGatewayTimeout {
		s.timeouts.Inc()
	} else {
		s.errors.Inc()
	}
	return code
}

// setRetryAfter attaches the Retry-After hint to a response about to
// report an admission-control shed; callers must invoke it before the
// status line is written.
func setRetryAfter(w http.ResponseWriter, err error) {
	if errors.Is(err, ccsp.ErrOverloaded) {
		w.Header().Set("Retry-After", retryAfterHint)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		// The process is alive but its snapshots are not all in yet;
		// non-200 keeps naive pollers (and the smoke scripts) waiting on
		// readiness, while /readyz carries the structured signal.
		writeJSON(w, http.StatusServiceUnavailable, api.Health{Status: "starting"})
		return
	}
	h := api.Health{Status: "ok", Graphs: s.namedGraphIDs()}
	if def := s.defaultEntry(); def != nil {
		gr := def.current().Graph()
		h.Nodes = gr.N()
		h.Edges = gr.M()
	}
	writeJSON(w, http.StatusOK, h)
}

// handleReadyz serves the readiness probe: 200 only once every snapshot
// is loaded/preprocessed, with the graph IDs this replica holds
// (including "" for the default graph). The cluster prober routes on
// exactly this advertisement.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, api.Ready{Ready: false, Graphs: []string{}})
		return
	}
	writeJSON(w, http.StatusOK, api.Ready{Ready: true, Graphs: s.graphIDs()})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	entries, hits, misses := s.cache.Stats()
	body := map[string]interface{}{
		"uptime_seconds": time.Since(s.start).Seconds(),
		"ready":          s.ready.Load(),
		"api": map[string]interface{}{
			"version":   api.Version,
			"max_batch": maxBatchRequests,
		},
		"requests": map[string]int64{
			"total":             s.requests.Value(),
			"errors":            s.errors.Value(),
			"timeouts":          s.timeouts.Value(),
			"queries":           s.queries.Value(),
			"batches":           s.batches.Value(),
			"batch_requests":    s.batchReqs.Value(),
			"batch_engine_runs": s.batchRuns.Value(),
			"shed":              s.shed.Value(),
			"updates":           s.updates.Value(),
			"inflight":          s.inflight.Value(),
		},
		"cache": map[string]interface{}{
			"capacity": s.cacheCap,
			"entries":  entries,
			"hits":     hits,
			"misses":   misses,
		},
	}
	if s.adm != nil {
		body["admission"] = map[string]interface{}{
			"max_inflight":       cap(s.adm.slots),
			"max_queue":          cap(s.adm.queued),
			"queue_wait_seconds": s.adm.wait.Seconds(),
			"peak_inflight":      s.adm.peak.Load(),
			"shed":               s.shed.Value(),
		}
	}
	// The default graph keeps its historical top-level keys; named graphs
	// nest under "graphs".
	if def := s.defaultEntry(); def != nil {
		g, o, p := engineStats(def)
		body["graph"], body["options"], body["preprocess"] = g, o, p
	}
	if named := s.namedGraphIDs(); len(named) > 0 {
		graphs := make(map[string]interface{}, len(named))
		for _, name := range named {
			entry, err := s.engineFor(name)
			if err != nil {
				continue // racing an unregister; nothing does that today
			}
			g, o, p := engineStats(entry)
			graphs[name] = map[string]interface{}{"graph": g, "options": o, "preprocess": p}
		}
		body["graphs"] = graphs
	}
	writeJSON(w, http.StatusOK, body)
}

// engineStats renders one engine's graph/options/preprocess stat blocks.
// It snapshots the entry's current engine once, so a dynamic graph's
// stats describe one consistent (graph, epoch) pair.
func engineStats(entry *engineEntry) (graph, options, preprocess map[string]interface{}) {
	eng := entry.current()
	pre := eng.PreprocessStats()
	builds := make([]map[string]interface{}, 0, len(pre.Builds))
	for _, b := range pre.Builds {
		builds = append(builds, map[string]interface{}{
			"kind":   b.Kind,
			"eps":    b.Eps,
			"beta":   b.Beta,
			"edges":  b.Edges,
			"rounds": b.Stats.TotalRounds,
		})
	}
	gr := eng.Graph()
	graph = map[string]interface{}{
		"nodes":      gr.N(),
		"edges":      gr.M(),
		"max_weight": gr.MaxWeight(),
		"unweighted": gr.Unweighted(),
		"epoch":      eng.Epoch(),
		"dynamic":    entry.dyn != nil,
	}
	if entry.dyn != nil {
		graph["pending_updates"] = entry.dyn.Pending()
	}
	options = map[string]interface{}{
		"epsilon": eng.Options().Epsilon,
		"workers": eng.Options().Workers,
	}
	preprocess = map[string]interface{}{
		"builds":       builds,
		"total_rounds": pre.Total.TotalRounds,
	}
	return graph, options, preprocess
}

// Vars returns a point-in-time snapshot of the serving counters in
// expvar's shape; cmd/ccspd publishes it as the "ccspd" expvar so
// /debug/vars exposes queries served, batch sizes, cache hit rates and
// in-flight load without a scrape dependency. It reads through the
// same telemetry metrics /metrics renders - one source of truth, two
// views - and its historical keys are a compatibility surface: they
// only ever gain siblings, never change.
func (s *Server) Vars() interface{} {
	entries, hits, misses := s.cache.Stats()
	return map[string]interface{}{
		"ready":          s.ready.Load(),
		"graphs":         len(s.graphIDs()),
		"requests":       s.requests.Value(),
		"errors":         s.errors.Value(),
		"timeouts":       s.timeouts.Value(),
		"queries":        s.queries.Value(),
		"batches":        s.batches.Value(),
		"batch_requests": s.batchReqs.Value(),
		"shed":           s.shed.Value(),
		"updates":        s.updates.Value(),
		"inflight":       s.inflight.Value(),
		"cache_entries":  entries,
		"cache_hits":     hits,
		"cache_misses":   misses,
	}
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the client is gone if this fails
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
