// Package server implements the HTTP/JSON serving layer of cmd/ccspd: a
// set of handlers over one shared, concurrency-safe ccsp.Engine. This is
// the process boundary the ROADMAP's serving goal needs - the engine
// preprocesses (or loads a snapshot) once, then every HTTP request is a
// cheap query-only run, optionally short-circuited by a small LRU cache
// of repeated queries.
//
// The serving surface is the typed query plane of the api package
// (DESIGN.md §11). Primary endpoints (JSON bodies; distances use -1 for
// unreachable pairs):
//
//	POST /v1/query    one api.Request (tagged union over all 7 query
//	                  algorithms), answered with an api.Response
//	POST /v1/batch    api.BatchRequest: many requests, one engine batch
//	                  with per-request errors and shared deduped runs
//	GET  /healthz     liveness + graph shape
//	GET  /v1/stats    server, cache, graph and preprocessing stats
//
// Deprecated query-string shims, kept byte-identical for old clients
// (each is a thin projection of the same plan/execute path the POST
// endpoints use, sharing one response cache):
//
//	GET /v1/sssp?source=S            exact single-source distances
//	GET /v1/mssp?sources=A,B,...     (1+ε)-approximate multi-source distances
//	GET /v1/distance?from=U&to=V     one (1+ε)-approximate pair, via MSSP
//	GET /v1/diameter                 near-3/2 diameter estimate
//
// Every query runs under the request context (plus the per-request
// Config.Timeout): a fired deadline or a dropped client connection stops
// the underlying simulation at its next barrier - the CPU-bound run
// actually halts, it is not abandoned to burn in the background. Errors
// map to statuses through the ccsp typed-error taxonomy:
//
//	context.DeadlineExceeded   504 Gateway Timeout
//	context.Canceled           499 (client closed request)
//	ccsp.ErrRoundLimit         503 Service Unavailable
//	ccsp.ErrInvalidSource      422 Unprocessable Entity
//	ccsp.ErrInvalidOption      422 Unprocessable Entity
//	api.ErrMalformed           400 Bad Request
//	anything else (bad params) 400 Bad Request
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"github.com/congestedclique/ccsp"
	"github.com/congestedclique/ccsp/api"
)

// Config configures a Server.
type Config struct {
	// Engine serves every query. Required.
	Engine *ccsp.Engine
	// Timeout bounds each request's query (a /v1/batch body counts as one
	// request: the timeout covers the whole batch); 0 means no timeout.
	Timeout time.Duration
	// CacheSize is the LRU capacity in responses; 0 picks the default
	// (128), negative disables caching.
	CacheSize int
}

// Server holds the shared engine and per-process serving state.
type Server struct {
	eng        *ccsp.Engine
	timeout    time.Duration
	cache      *lru
	cacheCap   int
	start      time.Time
	unweighted bool

	requests atomic.Int64
	errors   atomic.Int64
	timeouts atomic.Int64
}

// New returns a Server over cfg.Engine.
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("server: nil engine")
	}
	size := cfg.CacheSize
	if size == 0 {
		size = 128
	}
	if size < 0 {
		size = 0
	}
	return &Server{
		eng:        cfg.Engine,
		timeout:    cfg.Timeout,
		cache:      newLRU(size),
		cacheCap:   size,
		start:      time.Now(),
		unweighted: cfg.Engine.Graph().Unweighted(),
	}, nil
}

// Handler returns the HTTP handler serving all endpoints.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/query", s.handleQuery)
	mux.HandleFunc("/v1/batch", s.handleBatch)
	mux.HandleFunc("/v1/stats", s.handleStats)
	// Deprecated query-string shims (see legacy.go).
	mux.HandleFunc("/v1/sssp", s.handleSSSP)
	mux.HandleFunc("/v1/mssp", s.handleMSSP)
	mux.HandleFunc("/v1/distance", s.handleDistance)
	mux.HandleFunc("/v1/diameter", s.handleDiameter)
	return mux
}

// plan is the executable form of one request: the canonical cache key,
// the request actually handed to the engine, and an optional projection
// from the executed response to the outward one. Two rewrites happen at
// planning time so that equivalent requests share cache entries and
// engine runs: a distance request becomes a single-source MSSP plus a
// pair projection (so hot-source distance lookups and explicit MSSP
// queries hit the same entry), and an auto APSP variant resolves to the
// concrete algorithm the graph selects.
type plan struct {
	kind    api.Kind // outward kind, echoed on projected/error responses
	key     string
	run     api.Request
	project func(api.Response) api.Response
}

// finish stamps the cache flag and applies the projection; error
// responses (from batch position) skip projection and keep the outward
// kind.
func (p plan) finish(resp api.Response, cached bool) api.Response {
	if resp.Error != nil {
		return api.Response{Kind: p.kind, Error: resp.Error}
	}
	resp.Cached = cached
	if p.project != nil {
		resp = p.project(resp)
	}
	return resp
}

// plan validates and rewrites one request. Errors keep the typed
// taxonomy (api.ErrMalformed for structural problems,
// ccsp.ErrInvalidSource for the distance target check the engine would
// otherwise only make after the MSSP run).
func (s *Server) plan(req api.Request) (plan, error) {
	if err := req.Validate(); err != nil {
		return plan{}, err
	}
	switch req.Kind {
	case api.KindDistance:
		n := s.eng.Graph().N()
		from, to := req.Distance.From, req.Distance.To
		if to < 0 || to >= n {
			return plan{}, fmt.Errorf("%w: node %d out of range [0,%d)", ccsp.ErrInvalidSource, to, n)
		}
		inner := api.Request{Kind: api.KindMSSP, MSSP: &api.MSSPParams{Sources: []int{from}}}
		return plan{
			kind: api.KindDistance,
			key:  inner.CacheKey(),
			run:  inner,
			project: func(in api.Response) api.Response {
				d := in.MSSP.Dist[to][0]
				return api.Response{
					Kind:     api.KindDistance,
					Distance: &api.DistanceResult{From: from, To: to, Distance: d, Reachable: d != api.Unreachable},
					Stats:    in.Stats,
					Cached:   in.Cached,
				}
			},
		}, nil
	case api.KindAPSP:
		resolved := api.Request{Kind: api.KindAPSP, APSP: &api.APSPParams{Variant: s.eng.ResolveAPSPVariant(req.Variant())}}
		return plan{kind: api.KindAPSP, key: resolved.CacheKey(), run: resolved}, nil
	default:
		return plan{kind: req.Kind, key: req.CacheKey(), run: req}, nil
	}
}

// execute is the shared request path of every query endpoint: plan,
// consult the cache, run under the request context + timeout, cache and
// project. Only completed results are cached; cached responses repeat
// the original run's deterministic stats.
func (s *Server) execute(ctx context.Context, req api.Request) (api.Response, error) {
	p, err := s.plan(req)
	if err != nil {
		return api.Response{}, err
	}
	if v, ok := s.cache.Get(p.key); ok {
		return p.finish(v.(api.Response), true), nil
	}
	resp, err := s.runQuery(ctx, p.run)
	if err != nil {
		return api.Response{}, err
	}
	s.cache.Put(p.key, resp)
	return p.finish(resp, false), nil
}

// runQuery executes one engine query under the request context plus the
// server timeout, synchronously on the request goroutine: when the
// context fires, the simulator unwinds at its next barrier and the query
// returns - no goroutine keeps burning CPU behind an abandoned request.
func (s *Server) runQuery(ctx context.Context, req api.Request) (api.Response, error) {
	if s.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
		defer cancel()
	}
	resp, err := s.eng.Query(ctx, req)
	if err != nil {
		return api.Response{}, err
	}
	return *resp, nil
}

// statusClientClosedRequest is nginx's non-standard 499, the
// conventional status for "the client went away before we could answer".
const statusClientClosedRequest = 499

// statusForError is the typed-error → HTTP status table. The context
// sentinels are checked first: ccsp.ErrCanceled wraps them, and whether
// the deadline fired (504) or the client went away (499) is the
// distinction that matters to proxies and logs.
func statusForError(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return statusClientClosedRequest
	case errors.Is(err, ccsp.ErrRoundLimit):
		return http.StatusServiceUnavailable
	case errors.Is(err, ccsp.ErrInvalidSource), errors.Is(err, ccsp.ErrInvalidOption):
		return http.StatusUnprocessableEntity
	default:
		// api.ErrMalformed and unclassified parse errors.
		return http.StatusBadRequest
	}
}

// countError bumps the right per-class counter for a failed query and
// returns its status code.
func (s *Server) countError(err error) int {
	code := statusForError(err)
	if code == http.StatusGatewayTimeout {
		s.timeouts.Add(1)
	} else {
		s.errors.Add(1)
	}
	return code
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	writeJSON(w, http.StatusOK, api.Health{
		Status: "ok",
		Nodes:  s.eng.Graph().N(),
		Edges:  s.eng.Graph().M(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	entries, hits, misses := s.cache.Stats()
	pre := s.eng.PreprocessStats()
	builds := make([]map[string]interface{}, 0, len(pre.Builds))
	for _, b := range pre.Builds {
		builds = append(builds, map[string]interface{}{
			"kind":   b.Kind,
			"eps":    b.Eps,
			"beta":   b.Beta,
			"edges":  b.Edges,
			"rounds": b.Stats.TotalRounds,
		})
	}
	gr := s.eng.Graph()
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"uptime_seconds": time.Since(s.start).Seconds(),
		"api": map[string]interface{}{
			"version":   api.Version,
			"max_batch": maxBatchRequests,
		},
		"requests": map[string]int64{
			"total":    s.requests.Load(),
			"errors":   s.errors.Load(),
			"timeouts": s.timeouts.Load(),
		},
		"cache": map[string]interface{}{
			"capacity": s.cacheCap,
			"entries":  entries,
			"hits":     hits,
			"misses":   misses,
		},
		"graph": map[string]interface{}{
			"nodes":      gr.N(),
			"edges":      gr.M(),
			"max_weight": gr.MaxWeight(),
			"unweighted": s.unweighted,
		},
		"options": map[string]interface{}{
			"epsilon": s.eng.Options().Epsilon,
			"workers": s.eng.Options().Workers,
		},
		"preprocess": map[string]interface{}{
			"builds":       builds,
			"total_rounds": pre.Total.TotalRounds,
		},
	})
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the client is gone if this fails
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
