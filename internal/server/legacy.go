// Deprecated query-string endpoints: GET /v1/sssp, /v1/mssp,
// /v1/distance, /v1/diameter. They predate the typed query plane
// (DESIGN.md §11) and are kept as thin shims for old clients - each
// parses its query string into an api.Request, runs the same
// plan/execute path as POST /v1/query (sharing the one response cache),
// and renders the historical response shape byte-for-byte: same field
// order, same {"error": "..."} string bodies, same status codes. New
// integrations use POST /v1/query; these shims are frozen and will be
// removed with the next wire major version.
package server

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"github.com/congestedclique/ccsp/api"
)

// statsJSON is the deterministic core of a run's cost, embedded in the
// legacy query responses. It is the wire Stats under its historical name:
// the JSON encoding is identical.
type statsJSON = api.Stats

type ssspResponse struct {
	Source     int       `json:"source"`
	Dist       []int64   `json:"dist"`
	Iterations int       `json:"iterations"`
	Stats      statsJSON `json:"stats"`
	Cached     bool      `json:"cached"`
}

type msspResponse struct {
	Sources []int     `json:"sources"`
	Dist    [][]int64 `json:"dist"`
	Stats   statsJSON `json:"stats"`
	Cached  bool      `json:"cached"`
}

type distanceResponse struct {
	From      int       `json:"from"`
	To        int       `json:"to"`
	Distance  int64     `json:"distance"`
	Reachable bool      `json:"reachable"`
	Stats     statsJSON `json:"stats"`
	Cached    bool      `json:"cached"`
}

type diameterResponse struct {
	Estimate int64     `json:"estimate"`
	Stats    statsJSON `json:"stats"`
	Cached   bool      `json:"cached"`
}

func (s *Server) handleSSSP(w http.ResponseWriter, r *http.Request) {
	s.serveLegacy(w, r, func() (api.Request, error) {
		src, err := intParam(r, "source")
		if err != nil {
			return api.Request{}, err
		}
		return api.Request{Kind: api.KindSSSP, SSSP: &api.SSSPParams{Source: src}}, nil
	}, func(resp api.Response) interface{} {
		return ssspResponse{Source: resp.SSSP.Source, Dist: resp.SSSP.Dist,
			Iterations: resp.SSSP.Iterations, Stats: *resp.Stats, Cached: resp.Cached}
	})
}

func (s *Server) handleMSSP(w http.ResponseWriter, r *http.Request) {
	s.serveLegacy(w, r, func() (api.Request, error) {
		sources, err := sourcesParam(r, "sources")
		if err != nil {
			return api.Request{}, err
		}
		return api.Request{Kind: api.KindMSSP, MSSP: &api.MSSPParams{Sources: sources}}, nil
	}, func(resp api.Response) interface{} {
		return msspResponse{Sources: resp.MSSP.Sources, Dist: resp.MSSP.Dist,
			Stats: *resp.Stats, Cached: resp.Cached}
	})
}

func (s *Server) handleDistance(w http.ResponseWriter, r *http.Request) {
	s.serveLegacy(w, r, func() (api.Request, error) {
		from, err := intParam(r, "from")
		if err != nil {
			return api.Request{}, err
		}
		to, err := intParam(r, "to")
		if err != nil {
			return api.Request{}, err
		}
		return api.Request{Kind: api.KindDistance, Distance: &api.DistanceParams{From: from, To: to}}, nil
	}, func(resp api.Response) interface{} {
		d := resp.Distance
		return distanceResponse{From: d.From, To: d.To, Distance: d.Distance,
			Reachable: d.Reachable, Stats: *resp.Stats, Cached: resp.Cached}
	})
}

func (s *Server) handleDiameter(w http.ResponseWriter, r *http.Request) {
	s.serveLegacy(w, r, func() (api.Request, error) {
		return api.Request{Kind: api.KindDiameter}, nil
	}, func(resp api.Response) interface{} {
		return diameterResponse{Estimate: resp.Diameter.Estimate, Stats: *resp.Stats, Cached: resp.Cached}
	})
}

// serveLegacy is the shared shim path: parse the query string into an
// api.Request, run the common plan/execute core, and render the
// historical response shape. Error handling matches the pre-plane
// server exactly: parse failures render their own message, 504 and 499
// get the operator-friendly rewrites, everything else passes through.
func (s *Server) serveLegacy(w http.ResponseWriter, r *http.Request,
	prepare func() (api.Request, error), convert func(api.Response) interface{}) {
	if r.Method != http.MethodGet {
		s.errors.Inc()
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	req, err := prepare()
	if err != nil {
		s.errors.Inc()
		writeError(w, statusForError(err), err)
		return
	}
	resp, err := s.execute(r.Context(), req)
	if err != nil {
		setRetryAfter(w, err)
		code := s.countError(err)
		switch code {
		case http.StatusGatewayTimeout:
			err = fmt.Errorf("query exceeded the %s request timeout", s.timeout)
		case statusClientClosedRequest:
			// Client went away mid-query; report it as 499 (nginx's "client
			// closed request") so logs and proxies don't see an implicit 200.
			err = fmt.Errorf("client closed the request")
		}
		writeError(w, code, err)
		return
	}
	writeJSON(w, http.StatusOK, convert(resp))
}

func intParam(r *http.Request, name string) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing required parameter %q", name)
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("bad parameter %s=%q: not an integer", name, raw)
	}
	return v, nil
}

func sourcesParam(r *http.Request, name string) ([]int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return nil, fmt.Errorf("missing required parameter %q", name)
	}
	parts := strings.Split(raw, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad parameter %s=%q: %q is not an integer", name, raw, p)
		}
		out = append(out, v)
	}
	return out, nil
}
