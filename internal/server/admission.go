// Admission control: a bounded in-flight limit plus a short bounded
// wait queue in front of the engines (DESIGN.md §15). Engine runs are
// CPU-bound simulations - unbounded concurrency past the core count
// only inflates every request's latency until timeouts shed load for
// us, in the worst possible way. Admission control sheds early
// instead: a query that cannot get an execution slot within a short
// queue wait is rejected with a typed 503 (api.CodeOverloaded +
// Retry-After) in microseconds, so admitted requests keep their
// latency profile while the excess fails fast and retries elsewhere.
//
// Cache hits bypass admission entirely - the bound protects simulator
// and kernel work, not the LRU - and /healthz, /readyz and /v1/stats
// never queue, so probes stay honest on a saturated daemon.
package server

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"github.com/congestedclique/ccsp"
)

const (
	// defaultQueueWait bounds how long a queued query waits for an
	// execution slot before being shed.
	defaultQueueWait = time.Second
	// retryAfterHint is the Retry-After header value (in seconds) sent
	// with every overload 503: long enough for a queue-wait's worth of
	// work to drain, short enough that a retrying client converges fast.
	retryAfterHint = "1"
)

// admission is the semaphore pair implementing the bound: slots caps
// queries executing on the engines, queued caps queries waiting for a
// slot. Both are buffered channels used as counting semaphores, so the
// hot path is one non-blocking send.
type admission struct {
	wait   time.Duration
	slots  chan struct{} // execution slots (cap = MaxInFlight)
	queued chan struct{} // wait-queue slots (cap = MaxQueue)

	cur  atomic.Int64 // queries currently holding an execution slot
	peak atomic.Int64 // high-water mark of cur, for tests and /v1/stats
}

// newAdmission resolves the Config knobs: limit 0 picks the default
// (4 × GOMAXPROCS), negative disables admission entirely (nil);
// queue 0 defaults to the resolved limit, negative means no queue;
// wait 0 picks defaultQueueWait.
func newAdmission(limit, queue int, wait time.Duration) *admission {
	if limit < 0 {
		return nil
	}
	if limit == 0 {
		limit = 4 * runtime.GOMAXPROCS(0)
	}
	switch {
	case queue == 0:
		queue = limit
	case queue < 0:
		queue = 0
	}
	if wait == 0 {
		wait = defaultQueueWait
	}
	return &admission{
		wait:   wait,
		slots:  make(chan struct{}, limit),
		queued: make(chan struct{}, queue),
	}
}

// acquire takes one execution slot: immediately if one is free, else
// after waiting in the bounded queue for up to the queue wait. A full
// queue or an expired wait returns a ccsp.ErrOverloaded wrap (the
// caller maps it to 503 + Retry-After); a context that dies while
// queued returns the usual cancellation wrap. Every successful acquire
// must be paired with release.
func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.slots <- struct{}{}:
		a.admitted()
		return nil
	default:
	}
	select {
	case a.queued <- struct{}{}:
	default:
		return fmt.Errorf("%w: %d queries executing and %d queued",
			ccsp.ErrOverloaded, cap(a.slots), cap(a.queued))
	}
	defer func() { <-a.queued }()
	t := time.NewTimer(a.wait)
	defer t.Stop()
	select {
	case a.slots <- struct{}{}:
		a.admitted()
		return nil
	case <-t.C:
		return fmt.Errorf("%w: no execution slot freed within %s",
			ccsp.ErrOverloaded, a.wait)
	case <-ctx.Done():
		return fmt.Errorf("%w: %w", ccsp.ErrCanceled, ctx.Err())
	}
}

// admitted tracks the executing count and its high-water mark.
func (a *admission) admitted() {
	cur := a.cur.Add(1)
	for {
		p := a.peak.Load()
		if cur <= p || a.peak.CompareAndSwap(p, cur) {
			return
		}
	}
}

// release frees one execution slot.
func (a *admission) release() {
	a.cur.Add(-1)
	<-a.slots
}

// admit is the server-level gate every engine-bound query passes:
// acquire a slot (when admission control is enabled), track the
// in-flight gauge, count sheds. The returned release must be called
// once the engine work completes.
func (s *Server) admit(ctx context.Context) (release func(), err error) {
	if s.adm != nil {
		if err := s.adm.acquire(ctx); err != nil {
			if errors.Is(err, ccsp.ErrOverloaded) {
				s.shed.Inc()
			}
			return nil, err
		}
	}
	s.inflight.Inc()
	return func() {
		s.inflight.Dec()
		if s.adm != nil {
			s.adm.release()
		}
	}, nil
}
