package server

import (
	"context"
	"fmt"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"github.com/congestedclique/ccsp"
	"github.com/congestedclique/ccsp/api"
)

// multiGraphServer builds a server holding a default graph plus two
// named graphs with visibly different distance structures.
func multiGraphServer(t *testing.T) (*httptest.Server, map[string]*ccsp.Engine) {
	t.Helper()
	engines := make(map[string]*ccsp.Engine)
	_, engines[""] = testEngine(t, 8)
	_, engines["ring"] = testEngine(t, 10)
	_, engines["web"] = testEngine(t, 12)
	s, err := New(Config{
		Engine:  engines[""],
		Engines: map[string]*ccsp.Engine{"ring": engines["ring"], "web": engines["web"]},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts, engines
}

func TestReadyzAdvertisesGraphs(t *testing.T) {
	ts, _ := multiGraphServer(t)
	var ready api.Ready
	getJSON(t, ts.URL+"/readyz", 200, &ready)
	if !ready.Ready {
		t.Error("readyz reports not ready on a fully loaded server")
	}
	if want := []string{"", "ring", "web"}; !reflect.DeepEqual(ready.Graphs, want) {
		t.Errorf("readyz graphs = %v, want %v", ready.Graphs, want)
	}

	var h api.Health
	getJSON(t, ts.URL+"/healthz", 200, &h)
	if h.Status != "ok" {
		t.Errorf("healthz status = %q", h.Status)
	}
	if want := []string{"ring", "web"}; !reflect.DeepEqual(h.Graphs, want) {
		t.Errorf("healthz graphs = %v, want %v (named only)", h.Graphs, want)
	}
}

// TestGraphRoutedQueries pins that a graph-scoped request answers from
// that graph's engine (not the default), echoes the graph ID, and that
// an unregistered ID is a typed 404.
func TestGraphRoutedQueries(t *testing.T) {
	ts, engines := multiGraphServer(t)
	ctx := context.Background()
	for _, graph := range []string{"", "ring", "web"} {
		req := api.Request{Kind: api.KindSSSP, Graph: graph, SSSP: &api.SSSPParams{Source: 1}}
		want, err := engines[graph].Query(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		var got api.Response
		postJSON(t, ts.URL+"/v1/query",
			fmt.Sprintf(`{"kind":"sssp","graph":%q,"sssp":{"source":1}}`, graph), 200, &got)
		if got.Graph != graph {
			t.Errorf("graph %q: response echoes %q", graph, got.Graph)
		}
		got.Cached = false
		if !reflect.DeepEqual(got, *want) {
			t.Errorf("graph %q: served response diverges from its engine:\n got %+v\nwant %+v", graph, got, *want)
		}
	}

	// The three graphs have different sizes, so cross-graph cache
	// aliasing would be visible as a wrong-length distance vector.
	var a, b api.Response
	postJSON(t, ts.URL+"/v1/query", `{"kind":"sssp","graph":"ring","sssp":{"source":1}}`, 200, &a)
	postJSON(t, ts.URL+"/v1/query", `{"kind":"sssp","graph":"web","sssp":{"source":1}}`, 200, &b)
	if len(a.SSSP.Dist) == len(b.SSSP.Dist) {
		t.Fatal("test graphs must differ in size")
	}

	body := postJSON(t, ts.URL+"/v1/query", `{"kind":"diameter","graph":"nope"}`, 404, nil)
	if !strings.Contains(string(body), string(api.CodeUnknownGraph)) {
		t.Errorf("unknown graph error body lacks the typed code: %s", body)
	}
}

// TestMixedGraphBatch routes one batch across three engines and an
// unknown graph: every position answers from its own graph, the unknown
// position carries a typed per-position 404 error, and the batch itself
// still returns 200.
func TestMixedGraphBatch(t *testing.T) {
	ts, engines := multiGraphServer(t)
	ctx := context.Background()

	body := `{"requests":[
		{"kind":"sssp","sssp":{"source":0}},
		{"kind":"sssp","graph":"ring","sssp":{"source":0}},
		{"kind":"diameter","graph":"web"},
		{"kind":"diameter","graph":"missing"},
		{"kind":"distance","graph":"ring","distance":{"from":0,"to":3}}
	]}`
	var br api.BatchResponse
	postJSON(t, ts.URL+"/v1/batch", body, 200, &br)
	if len(br.Responses) != 5 {
		t.Fatalf("got %d responses, want 5", len(br.Responses))
	}

	check := func(i int, graph string, req api.Request) {
		t.Helper()
		want, err := engines[graph].Query(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		got := br.Responses[i]
		got.Cached = false
		if !reflect.DeepEqual(got, *want) {
			t.Errorf("position %d (graph %q):\n got %+v\nwant %+v", i, graph, got, *want)
		}
	}
	check(0, "", api.Request{Kind: api.KindSSSP, SSSP: &api.SSSPParams{Source: 0}})
	check(1, "ring", api.Request{Kind: api.KindSSSP, Graph: "ring", SSSP: &api.SSSPParams{Source: 0}})
	check(2, "web", api.Request{Kind: api.KindDiameter, Graph: "web"})
	check(4, "ring", api.Request{Kind: api.KindDistance, Graph: "ring", Distance: &api.DistanceParams{From: 0, To: 3}})

	bad := br.Responses[3]
	if bad.Error == nil || bad.Error.Code != api.CodeUnknownGraph {
		t.Errorf("unknown-graph position error = %+v, want code %s", bad.Error, api.CodeUnknownGraph)
	}
	if bad.Graph != "missing" || bad.Kind != api.KindDiameter {
		t.Errorf("error position echoes graph %q kind %q", bad.Graph, bad.Kind)
	}
}

// TestGraphScopedCache pins that graph-scoped requests hit the shared
// LRU under their own qualified keys: a repeat is Cached, and the same
// request on another graph is not.
func TestGraphScopedCache(t *testing.T) {
	ts, _ := multiGraphServer(t)
	var first, repeat, other api.Response
	postJSON(t, ts.URL+"/v1/query", `{"kind":"mssp","graph":"ring","mssp":{"sources":[0,2]}}`, 200, &first)
	postJSON(t, ts.URL+"/v1/query", `{"kind":"mssp","graph":"ring","mssp":{"sources":[2,0,2]}}`, 200, &repeat)
	postJSON(t, ts.URL+"/v1/query", `{"kind":"mssp","graph":"web","mssp":{"sources":[0,2]}}`, 200, &other)
	if first.Cached {
		t.Error("first scoped query reported Cached")
	}
	if !repeat.Cached {
		t.Error("equivalent scoped repeat missed the cache")
	}
	if other.Cached {
		t.Error("same request on a different graph hit the other graph's entry")
	}
	if !reflect.DeepEqual(first.MSSP, repeat.MSSP) {
		t.Error("cached repeat diverged from the original answer")
	}
}

// TestDeferredStartup pins the listen-early lifecycle: a Deferred server
// is alive but answers 503 everywhere until engines are registered and
// SetReady flips, at which point it serves normally.
func TestDeferredStartup(t *testing.T) {
	s, err := New(Config{Deferred: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	var ready api.Ready
	getJSON(t, ts.URL+"/readyz", 503, &ready)
	if ready.Ready {
		t.Error("deferred server reports ready before SetReady")
	}
	var h api.Health
	getJSON(t, ts.URL+"/healthz", 503, &h)
	if h.Status != "starting" {
		t.Errorf("healthz status = %q, want starting", h.Status)
	}
	body := postJSON(t, ts.URL+"/v1/query", `{"kind":"diameter"}`, 503, nil)
	if !strings.Contains(string(body), string(api.CodeUnavailable)) {
		t.Errorf("pre-ready query error lacks the unavailable code: %s", body)
	}

	_, eng := testEngine(t, 8)
	if err := s.AddGraph("", eng); err != nil {
		t.Fatal(err)
	}
	if err := s.AddGraph("", eng); err == nil {
		t.Error("duplicate graph registration accepted")
	}
	if err := s.AddGraph("no:colons", eng); err == nil {
		t.Error("malformed graph ID accepted")
	}
	s.SetReady()

	getJSON(t, ts.URL+"/readyz", 200, &ready)
	if !ready.Ready || !reflect.DeepEqual(ready.Graphs, []string{""}) {
		t.Errorf("post-ready readyz = %+v", ready)
	}
	var resp api.Response
	postJSON(t, ts.URL+"/v1/query", `{"kind":"diameter"}`, 200, &resp)
	if resp.Diameter == nil {
		t.Errorf("post-ready query failed: %+v", resp)
	}
}
