// POST /v1/query and /v1/batch: the typed query plane (DESIGN.md §11).
package server

import (
	"context"
	"fmt"
	"net/http"

	"github.com/congestedclique/ccsp"
	"github.com/congestedclique/ccsp/api"
)

const (
	// maxQueryBytes caps a /v1/query body. A request is a small tagged
	// union - the only unbounded field is a source list, and 1 MiB already
	// admits ~10^5 sources (far past the √n regime Theorem 3 serves) - so
	// the cap bounds decoder allocations without constraining real use.
	maxQueryBytes = 1 << 20
	// maxBatchBytes caps a /v1/batch body.
	maxBatchBytes = 8 << 20
	// maxBatchRequests caps the number of requests one batch may carry.
	maxBatchRequests = 256
)

// errorBody is the JSON envelope of a failed /v1/query or /v1/batch
// request: a typed api.Error (machine-readable code + message) under an
// "error" key, plus the echoed request kind when one was decodable.
type errorBody struct {
	Kind  api.Kind   `json:"kind,omitempty"`
	Error *api.Error `json:"error"`
}

func writeAPIError(w http.ResponseWriter, code int, kind api.Kind, apiErr *api.Error) {
	writeJSON(w, code, errorBody{Kind: kind, Error: apiErr})
}

// handleQuery serves POST /v1/query: one api.Request in, one
// api.Response out, cached and planned identically to the legacy shims
// (a distance request shares the single-source MSSP cache entry, an auto
// APSP variant resolves before keying).
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.errors.Inc()
		writeAPIError(w, http.StatusMethodNotAllowed, "",
			&api.Error{Code: api.CodeMalformed, Message: "use POST"})
		return
	}
	req, err := api.DecodeRequest(http.MaxBytesReader(w, r.Body, maxQueryBytes))
	if err != nil {
		s.errors.Inc()
		writeAPIError(w, statusForError(err), req.Kind, ccsp.APIError(err))
		return
	}
	resp, err := s.execute(r.Context(), req)
	if err != nil {
		setRetryAfter(w, err)
		writeAPIError(w, s.countError(err), req.Kind, ccsp.APIError(err))
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleBatch serves POST /v1/batch: many requests, one bounded engine
// batch. Per-request failures (malformed unions, out-of-range nodes,
// round-limit trips) answer in place with typed api.Errors - the batch
// itself still returns 200. The whole batch runs under one request
// timeout; a top-level error (unreadable body, oversized batch, context
// dead before any query ran) is the only way to get a non-200.
//
// Cache interplay: every position is planned like a single query, hits
// answer from the cache (Cached: true), distinct misses dedup onto one
// engine run each, and completed runs refill the cache for the next
// request - so a hot batch converges to zero simulator runs.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.errors.Inc()
		writeAPIError(w, http.StatusMethodNotAllowed, "",
			&api.Error{Code: api.CodeMalformed, Message: "use POST"})
		return
	}
	br, err := api.DecodeBatchRequest(http.MaxBytesReader(w, r.Body, maxBatchBytes))
	if err != nil {
		s.errors.Inc()
		writeAPIError(w, statusForError(err), "", ccsp.APIError(err))
		return
	}
	if len(br.Requests) == 0 {
		s.errors.Inc()
		writeAPIError(w, http.StatusBadRequest, "",
			&api.Error{Code: api.CodeMalformed, Message: "empty batch"})
		return
	}
	if len(br.Requests) > maxBatchRequests {
		s.errors.Inc()
		writeAPIError(w, http.StatusBadRequest, "",
			&api.Error{Code: api.CodeMalformed,
				Message: fmt.Sprintf("batch of %d requests exceeds the %d-request limit", len(br.Requests), maxBatchRequests)})
		return
	}

	s.batches.Inc()
	s.batchReqs.Add(int64(len(br.Requests)))

	resps := make([]api.Response, len(br.Requests))
	// Plan every position; answer cache hits and malformed requests in
	// place, group the rest by canonical key for one engine run each.
	// Positions sharing a key share the run but keep their own plans:
	// two distance requests from one source (or a distance and a plain
	// single-source MSSP) coalesce onto one engine run yet project
	// different responses out of it. Keys are graph-qualified, so a
	// mixed-graph batch groups into one sub-batch per engine.
	type member struct {
		idx int
		p   plan
	}
	type missGroup struct {
		run     api.Request
		eng     *ccsp.Engine
		members []member
	}
	var order []string
	misses := make(map[string]*missGroup)
	for i, req := range br.Requests {
		p, err := s.plan(req)
		if err != nil {
			resps[i] = api.Response{Kind: req.Kind, Graph: req.Graph, Error: ccsp.APIError(err)}
			continue
		}
		if v, ok := s.cache.Get(p.key); ok {
			s.queries.Inc()
			resps[i] = p.finish(v.(api.Response), true)
			continue
		}
		g, ok := misses[p.key]
		if !ok {
			g = &missGroup{run: p.run, eng: p.eng}
			misses[p.key] = g
			order = append(order, p.key)
		}
		g.members = append(g.members, member{idx: i, p: p})
	}

	if len(order) > 0 {
		// One Engine.Batch per distinct engine, preserving first-seen key
		// order within each; engines run one after another under the one
		// shared batch timeout (each engine's batch still fans out over
		// its own bounded worker group).
		var engines []*ccsp.Engine
		keysByEngine := make(map[*ccsp.Engine][]string)
		for _, key := range order {
			eng := misses[key].eng
			if _, seen := keysByEngine[eng]; !seen {
				engines = append(engines, eng)
			}
			keysByEngine[eng] = append(keysByEngine[eng], key)
		}
		ctx := r.Context()
		if s.timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.timeout)
			defer cancel()
		}
		// The whole batch takes one admission slot: its engine runs
		// execute sequentially, so it occupies one engine's worth of CPU
		// regardless of how many positions it carries.
		release, err := s.admit(ctx)
		if err != nil {
			setRetryAfter(w, err)
			writeAPIError(w, s.countError(err), "", ccsp.APIError(err))
			return
		}
		s.batchRuns.Add(int64(len(order)))
		for _, eng := range engines {
			keys := keysByEngine[eng]
			runs := make([]api.Request, len(keys))
			for j, key := range keys {
				runs[j] = misses[key].run
			}
			out, err := eng.Batch(ctx, runs)
			if err != nil {
				// Only "the batch never ran" (context dead on entry) lands here.
				release()
				writeAPIError(w, s.countError(err), "", ccsp.APIError(err))
				return
			}
			for j, key := range keys {
				if out[j].Error == nil {
					s.cache.Put(key, out[j])
					s.queries.Inc()
				}
				for _, m := range misses[key].members {
					resps[m.idx] = m.p.finish(out[j], false)
				}
			}
		}
		release()
	}
	// Per-position failures return inside a 200, but they still feed the
	// serving stats: a batch workload going bad must show up in
	// /v1/stats exactly like failing single queries would.
	for _, resp := range resps {
		if resp.Error == nil {
			continue
		}
		if resp.Error.Code == api.CodeDeadline {
			s.timeouts.Inc()
		} else {
			s.errors.Inc()
		}
	}
	writeJSON(w, http.StatusOK, api.BatchResponse{Responses: resps})
}
