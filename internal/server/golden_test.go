package server

import (
	"bytes"
	"context"
	"flag"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/congestedclique/ccsp"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden response files under testdata/golden")

// goldenGraph is a fixed 8-node weighted ring with chords (the smoke
// script's graph). Everything a query returns on it - distances AND
// round/message/word stats - is deterministic, so whole JSON responses
// can be pinned byte-for-byte.
func goldenGraph(t testing.TB) *ccsp.Engine {
	t.Helper()
	gr := ccsp.NewGraph(8)
	for _, e := range [][3]int64{
		{0, 1, 2}, {1, 2, 3}, {2, 3, 1}, {3, 4, 4}, {4, 5, 2}, {5, 6, 5}, {6, 7, 1}, {7, 0, 3},
		{0, 4, 9}, {1, 5, 2}, {2, 6, 7},
	} {
		gr.MustAddEdge(int(e[0]), int(e[1]), e[2])
	}
	eng, err := ccsp.NewEngine(context.Background(), gr, ccsp.Options{Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestGoldenResponses pins the full JSON bytes of POST /v1/query for
// every algorithm (and one typed error) against committed golden files.
// A wire-schema change that alters any byte shows up as a diff here -
// the review gate the versioning policy of DESIGN.md §11 relies on.
// Regenerate intentionally with: go test ./internal/server -run Golden -update
func TestGoldenResponses(t *testing.T) {
	eng := goldenGraph(t)
	ts := newTestServer(t, eng, Config{CacheSize: -1}) // no cache: every response is a fresh run

	cases := []struct {
		name string
		body string
		code int
	}{
		{"sssp", `{"kind":"sssp","sssp":{"source":0}}`, http.StatusOK},
		{"mssp", `{"kind":"mssp","mssp":{"sources":[0,3]}}`, http.StatusOK},
		{"apsp_auto", `{"kind":"apsp"}`, http.StatusOK},
		{"apsp_weighted3", `{"kind":"apsp","apsp":{"variant":"weighted3"}}`, http.StatusOK},
		{"distance", `{"kind":"distance","distance":{"from":0,"to":5}}`, http.StatusOK},
		{"diameter", `{"kind":"diameter"}`, http.StatusOK},
		{"knearest", `{"kind":"knearest","knearest":{"k":3}}`, http.StatusOK},
		{"source_detection", `{"kind":"source_detection","source_detection":{"sources":[0,3],"d":4,"k":2}}`, http.StatusOK},
		{"error_invalid_source", `{"kind":"sssp","sssp":{"source":99}}`, http.StatusUnprocessableEntity},
		{"error_malformed_union", `{"kind":"sssp","mssp":{"sources":[1]}}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			if _, err := buf.ReadFrom(resp.Body); err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != tc.code {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.code, buf.Bytes())
			}
			path := filepath.Join("testdata", "golden", tc.name+".json")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("response bytes diverged from %s\n got: %s\nwant: %s", path, buf.Bytes(), want)
			}
		})
	}
}

// TestGoldenUnweighted pins the auto-APSP resolution on a unit-weight
// graph (the unweighted Theorem 31 algorithm, with its two artifacts).
func TestGoldenUnweighted(t *testing.T) {
	gr := ccsp.NewGraph(8)
	for _, e := range [][2]int{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 0}, {1, 5}, {2, 6},
	} {
		gr.MustAddEdge(e[0], e[1], 1)
	}
	eng, err := ccsp.NewEngine(context.Background(), gr, ccsp.Options{Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestServer(t, eng, Config{CacheSize: -1})

	resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(`{"kind":"apsp"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, buf.Bytes())
	}
	if !strings.Contains(buf.String(), `"variant": "unweighted"`) {
		t.Fatalf("auto on a unit-weight graph must resolve to unweighted: %s", buf.Bytes())
	}
	path := filepath.Join("testdata", "golden", "apsp_unweighted.json")
	if *updateGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("response bytes diverged from %s\n got: %s\nwant: %s", path, buf.Bytes(), want)
	}
}
