package server

import (
	"container/list"
	"sync"
)

// lru is a small thread-safe LRU cache for query responses, keyed by the
// normalized query ("mssp:2,7", "diameter", ...). Repeated source-set
// queries - the common pattern of a distance-serving workload, where hot
// landmarks are queried over and over - hit the cache and skip the
// simulator run entirely.
//
// Concurrent misses for the same key may both compute and both store;
// queries are deterministic, so the duplicated work is a wasted run, not
// an inconsistency, and the engine itself is concurrency-safe.
type lru struct {
	mu      sync.Mutex
	max     int
	order   *list.List // front = most recent; values are *lruEntry
	entries map[string]*list.Element

	hits, misses int64
}

type lruEntry struct {
	key string
	val interface{}
}

// newLRU returns a cache holding up to max entries; max <= 0 disables
// caching (every Get misses, Put drops).
func newLRU(max int) *lru {
	return &lru{max: max, order: list.New(), entries: make(map[string]*list.Element)}
}

// Get returns the cached value for key and whether it was present.
func (c *lru) Get(key string) (interface{}, bool) {
	if c.max <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// Put stores val under key, evicting the least-recently-used entry when
// full.
func (c *lru) Put(key string, val interface{}) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*lruEntry).val = val
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&lruEntry{key: key, val: val})
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*lruEntry).key)
	}
}

// Stats returns (entries, hits, misses).
func (c *lru) Stats() (int, int64, int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len(), c.hits, c.misses
}
