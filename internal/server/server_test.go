package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/congestedclique/ccsp"
)

// jsonDist maps the in-process Unreachable sentinel to the wire's -1,
// the conversion the query plane applies before responses leave the
// engine (kept here so the tests state expectations independently).
func jsonDist(d int64) int64 {
	if d >= ccsp.Unreachable {
		return -1
	}
	return d
}

// testEngine builds a small connected weighted graph and a warm engine.
func testEngine(t testing.TB, n int) (*ccsp.Graph, *ccsp.Engine) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(n) + 5))
	gr := ccsp.NewGraph(n)
	for v := 1; v < n; v++ {
		gr.MustAddEdge(v, rng.Intn(v), rng.Int63n(9)+1)
	}
	for e := 0; e < n; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			gr.MustAddEdge(u, v, rng.Int63n(9)+1)
		}
	}
	eng, err := ccsp.NewEngine(context.Background(), gr, ccsp.Options{Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	return gr, eng
}

func newTestServer(t testing.TB, eng *ccsp.Engine, cfg Config) *httptest.Server {
	t.Helper()
	cfg.Engine = eng
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// getJSON fetches url and decodes the response into out, asserting the
// status code.
func getJSON(t *testing.T, url string, wantCode int, out interface{}) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s: status %d (want %d): %s", url, resp.StatusCode, wantCode, body)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("GET %s: bad JSON: %v\n%s", url, err, body)
		}
	}
}

func TestEndpointsMatchEngine(t *testing.T) {
	gr, eng := testEngine(t, 16)
	ts := newTestServer(t, eng, Config{})

	var h struct {
		Status string `json:"status"`
		Nodes  int    `json:"nodes"`
		Edges  int    `json:"edges"`
	}
	getJSON(t, ts.URL+"/healthz", http.StatusOK, &h)
	if h.Status != "ok" || h.Nodes != gr.N() || h.Edges != gr.M() {
		t.Errorf("healthz = %+v, want ok/%d/%d", h, gr.N(), gr.M())
	}

	// SSSP matches a direct engine call (with -1 for unreachable).
	want, err := eng.SSSP(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	var sr ssspResponse
	getJSON(t, ts.URL+"/v1/sssp?source=3", http.StatusOK, &sr)
	if sr.Source != 3 || sr.Iterations != want.Iterations || len(sr.Dist) != gr.N() {
		t.Errorf("sssp shape: %+v", sr)
	}
	for v, d := range want.Dist {
		if sr.Dist[v] != jsonDist(d) {
			t.Errorf("sssp dist[%d] = %d, want %d", v, sr.Dist[v], jsonDist(d))
		}
	}
	if sr.Stats.TotalRounds != want.Stats.TotalRounds {
		t.Errorf("sssp rounds %d, want %d", sr.Stats.TotalRounds, want.Stats.TotalRounds)
	}

	// MSSP matches, and /v1/distance agrees with the MSSP row.
	wantM, err := eng.MSSP(context.Background(), []int{2, 5})
	if err != nil {
		t.Fatal(err)
	}
	var mr msspResponse
	getJSON(t, ts.URL+"/v1/mssp?sources=5,2,5", http.StatusOK, &mr)
	if !reflect.DeepEqual(mr.Sources, wantM.Sources) {
		t.Errorf("mssp sources %v, want %v", mr.Sources, wantM.Sources)
	}
	for v := range wantM.Dist {
		for i := range wantM.Dist[v] {
			if mr.Dist[v][i] != jsonDist(wantM.Dist[v][i]) {
				t.Errorf("mssp dist[%d][%d] mismatch", v, i)
			}
		}
	}

	wantP, err := eng.MSSP(context.Background(), []int{2})
	if err != nil {
		t.Fatal(err)
	}
	var dr distanceResponse
	getJSON(t, ts.URL+"/v1/distance?from=2&to=9", http.StatusOK, &dr)
	if wd := jsonDist(wantP.Dist[9][0]); dr.Distance != wd || !dr.Reachable {
		t.Errorf("distance 2->9 = %+v, want %d", dr, wd)
	}

	// Diameter matches.
	wantD, err := eng.Diameter(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var er diameterResponse
	getJSON(t, ts.URL+"/v1/diameter", http.StatusOK, &er)
	if er.Estimate != wantD.Estimate {
		t.Errorf("diameter %d, want %d", er.Estimate, wantD.Estimate)
	}

	// Stats reports the serving state.
	var st struct {
		Requests map[string]int64 `json:"requests"`
		Cache    struct {
			Hits   int64 `json:"hits"`
			Misses int64 `json:"misses"`
		} `json:"cache"`
		Graph struct {
			Nodes int `json:"nodes"`
		} `json:"graph"`
		Preprocess struct {
			TotalRounds int `json:"total_rounds"`
		} `json:"preprocess"`
	}
	getJSON(t, ts.URL+"/v1/stats", http.StatusOK, &st)
	if st.Graph.Nodes != gr.N() || st.Requests["total"] == 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.Preprocess.TotalRounds != eng.PreprocessStats().Total.TotalRounds {
		t.Errorf("stats preprocess rounds %d, want %d", st.Preprocess.TotalRounds, eng.PreprocessStats().Total.TotalRounds)
	}
}

func TestCacheHits(t *testing.T) {
	_, eng := testEngine(t, 12)
	ts := newTestServer(t, eng, Config{CacheSize: 8})

	var first, second ssspResponse
	getJSON(t, ts.URL+"/v1/sssp?source=1", http.StatusOK, &first)
	getJSON(t, ts.URL+"/v1/sssp?source=1", http.StatusOK, &second)
	if first.Cached || !second.Cached {
		t.Errorf("cached flags: first=%v second=%v, want false/true", first.Cached, second.Cached)
	}
	if !reflect.DeepEqual(first.Dist, second.Dist) {
		t.Error("cached response differs")
	}

	// /v1/distance shares the MSSP cache: an mssp query for the same
	// single source must be a hit.
	var dr distanceResponse
	getJSON(t, ts.URL+"/v1/distance?from=4&to=7", http.StatusOK, &dr)
	var mr msspResponse
	getJSON(t, ts.URL+"/v1/mssp?sources=4", http.StatusOK, &mr)
	if dr.Cached || !mr.Cached {
		t.Errorf("distance/mssp cache sharing: distance.cached=%v mssp.cached=%v", dr.Cached, mr.Cached)
	}
}

func TestBadRequests(t *testing.T) {
	_, eng := testEngine(t, 10)
	ts := newTestServer(t, eng, Config{})

	for _, tc := range []struct {
		url  string
		code int
	}{
		{"/v1/sssp", http.StatusBadRequest},             // missing source
		{"/v1/sssp?source=x", http.StatusBadRequest},    // not an integer
		{"/v1/mssp", http.StatusBadRequest},             // missing sources
		{"/v1/mssp?sources=1,x", http.StatusBadRequest}, // bad list
		{"/v1/distance?from=0", http.StatusBadRequest},  // missing to
		// Out-of-range IDs are typed ccsp.ErrInvalidSource → 422.
		{"/v1/sssp?source=99", http.StatusUnprocessableEntity},
		{"/v1/mssp?sources=-2", http.StatusUnprocessableEntity},
		{"/v1/distance?from=0&to=1000", http.StatusUnprocessableEntity},
	} {
		var e struct {
			Error string `json:"error"`
		}
		getJSON(t, ts.URL+tc.url, tc.code, &e)
		if e.Error == "" {
			t.Errorf("%s: empty error message", tc.url)
		}
	}

	resp, err := http.Post(ts.URL+"/v1/diameter", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST: status %d, want 405", resp.StatusCode)
	}
}

func TestRequestTimeout(t *testing.T) {
	_, eng := testEngine(t, 24)
	// A nanosecond budget: every fresh query times out - and, unlike the
	// pre-context server, the timed-out run is actually stopped, so a
	// retry times out again instead of being rescued by a background
	// completion filling the cache.
	ts := newTestServer(t, eng, Config{Timeout: time.Nanosecond})
	for i := 0; i < 3; i++ {
		var e struct {
			Error string `json:"error"`
		}
		getJSON(t, ts.URL+"/v1/diameter", http.StatusGatewayTimeout, &e)
		if e.Error == "" {
			t.Error("timeout: empty error message")
		}
	}

	// The engine survives canceled queries unharmed: a direct call with a
	// live context still answers.
	if _, err := eng.Diameter(context.Background()); err != nil {
		t.Fatalf("engine unusable after timed-out requests: %v", err)
	}
}

// TestCanceledRequestStopsRun is the regression test for the old
// runBounded leak: a canceled request must observably stop the underlying
// simulation - the query goroutines exit and the CPU-bound run halts -
// not merely return an error while the run burns on in the background.
func TestCanceledRequestStopsRun(t *testing.T) {
	_, eng := testEngine(t, 48)
	s, err := New(Config{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	baseline := runtime.NumGoroutine()

	// A request whose context is already dead: the run aborts at entry.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodGet, "/v1/diameter", nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != statusClientClosedRequest {
		t.Fatalf("pre-canceled request: status %d, want %d: %s", rec.Code, statusClientClosedRequest, rec.Body)
	}

	// A request canceled mid-run: the handler returns 499 once the
	// simulator unwinds at its next barrier.
	ctx2, cancel2 := context.WithCancel(context.Background())
	timer := time.AfterFunc(10*time.Millisecond, cancel2)
	defer timer.Stop()
	req2 := httptest.NewRequest(http.MethodGet, "/v1/mssp?sources=1,2,3", nil).WithContext(ctx2)
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, req2)
	if rec2.Code != statusClientClosedRequest && rec2.Code != http.StatusOK {
		t.Fatalf("mid-run cancel: status %d: %s", rec2.Code, rec2.Body)
	}
	if rec2.Code == http.StatusOK {
		t.Log("query finished before the 10ms cancel; covered by the pre-canceled case above")
	}

	// The observable halt: every simulator goroutine (one per clique node
	// plus the coordinator) must exit promptly. The old runBounded left
	// the whole run alive for as long as the query took.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 {
		if time.Now().After(deadline) {
			t.Fatalf("canceled request leaked goroutines: %d running, baseline %d",
				runtime.NumGoroutine(), baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestStatusMapping pins the typed-error → HTTP status table, both as a
// unit table over statusForError and end-to-end through a handler whose
// engine is configured to trip each error class.
func TestStatusMapping(t *testing.T) {
	for _, tc := range []struct {
		name string
		err  error
		want int
	}{
		{"deadline", fmt.Errorf("q: %w: %w", ccsp.ErrCanceled, context.DeadlineExceeded), http.StatusGatewayTimeout},
		{"client-cancel", fmt.Errorf("q: %w: %w", ccsp.ErrCanceled, context.Canceled), statusClientClosedRequest},
		{"round-limit", fmt.Errorf("q: %w", ccsp.ErrRoundLimit), http.StatusServiceUnavailable},
		{"invalid-source", fmt.Errorf("q: %w", ccsp.ErrInvalidSource), http.StatusUnprocessableEntity},
		{"invalid-option", fmt.Errorf("q: %w", ccsp.ErrInvalidOption), http.StatusUnprocessableEntity},
		{"plain", fmt.Errorf("missing parameter"), http.StatusBadRequest},
	} {
		if got := statusForError(tc.err); got != tc.want {
			t.Errorf("%s: statusForError = %d, want %d", tc.name, got, tc.want)
		}
	}

	// End-to-end, the same chain is exercised by TestBadRequests (422),
	// TestRequestTimeout (504) and TestCanceledRequestStopsRun (499);
	// the ErrRoundLimit wrap from a real over-budget run is pinned by the
	// root package's typed-error tests.
}

// TestConcurrentHandlers is the race-enabled acceptance test for the
// serving layer: many goroutines hit SSSP/MSSP/distance/diameter/stats
// endpoints against one shared engine, and every response must match the
// corresponding direct Engine call.
func TestConcurrentHandlers(t *testing.T) {
	gr, eng := testEngine(t, 16)
	ts := newTestServer(t, eng, Config{CacheSize: 4}) // small cache: exercise eviction under load

	// Direct-engine expectations, computed once up front and converted to
	// the JSON convention (-1 for unreachable).
	wantSSSP := map[int][]int64{}
	wantMSSP := map[int][][]int64{}
	wantPair := map[int][][]int64{} // MSSP(context.Background(), {s}): what /v1/distance?from=s slices
	for s := 0; s < 4; s++ {
		r, err := eng.SSSP(context.Background(), s)
		if err != nil {
			t.Fatal(err)
		}
		wantSSSP[s] = jsonVec(r.Dist)
		m, err := eng.MSSP(context.Background(), []int{s, s + 4})
		if err != nil {
			t.Fatal(err)
		}
		wantMSSP[s] = jsonMat(m.Dist)
		p, err := eng.MSSP(context.Background(), []int{s})
		if err != nil {
			t.Fatal(err)
		}
		wantPair[s] = jsonMat(p.Dist)
	}
	wantD, err := eng.Diameter(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const iters = 6
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*iters)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				s := (g + i) % 4
				switch g % 4 {
				case 0:
					var sr ssspResponse
					if err := fetch(ts.URL+fmt.Sprintf("/v1/sssp?source=%d", s), &sr); err != nil {
						errs <- err
						continue
					}
					if !reflect.DeepEqual(sr.Dist, wantSSSP[s]) {
						errs <- fmt.Errorf("sssp(%d) distances differ from direct engine call", s)
					}
				case 1:
					var mr msspResponse
					if err := fetch(ts.URL+fmt.Sprintf("/v1/mssp?sources=%d,%d", s, s+4), &mr); err != nil {
						errs <- err
						continue
					}
					if !reflect.DeepEqual(mr.Dist, wantMSSP[s]) {
						errs <- fmt.Errorf("mssp(%d,%d) distances differ from direct engine call", s, s+4)
					}
				case 2:
					to := (s + 7) % gr.N()
					var dr distanceResponse
					if err := fetch(ts.URL+fmt.Sprintf("/v1/distance?from=%d&to=%d", s, to), &dr); err != nil {
						errs <- err
						continue
					}
					if want := wantPair[s][to][0]; dr.Distance != want {
						errs <- fmt.Errorf("distance(%d,%d) = %d, want %d", s, to, dr.Distance, want)
					}
				default:
					var er diameterResponse
					if err := fetch(ts.URL+"/v1/diameter", &er); err != nil {
						errs <- err
						continue
					}
					if er.Estimate != wantD.Estimate {
						errs <- fmt.Errorf("diameter = %d, want %d", er.Estimate, wantD.Estimate)
					}
				}
				// Interleave stats reads: they take the same locks.
				if i%3 == 0 {
					if err := fetch(ts.URL+"/v1/stats", &struct{}{}); err != nil {
						errs <- err
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func jsonVec(dist []int64) []int64 {
	out := make([]int64, len(dist))
	for i, d := range dist {
		out[i] = jsonDist(d)
	}
	return out
}

func jsonMat(dist [][]int64) [][]int64 {
	out := make([][]int64, len(dist))
	for i, row := range dist {
		out[i] = jsonVec(row)
	}
	return out
}

// fetch GETs url and decodes JSON into out, returning an error for any
// non-200.
func fetch(url string, out interface{}) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	return json.Unmarshal(body, out)
}
