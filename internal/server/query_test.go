package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/congestedclique/ccsp/api"
)

// postJSON POSTs body to url and decodes the response, asserting the
// status code.
func postJSON(t *testing.T, url, body string, wantCode int, out interface{}) []byte {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantCode {
		t.Fatalf("POST %s: status %d (want %d): %s", url, resp.StatusCode, wantCode, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("POST %s: bad JSON: %v\n%s", url, err, raw)
		}
	}
	return raw
}

// TestQueryEndpointAllKinds: every request kind through POST /v1/query
// answers identically to the direct Engine.Query call.
func TestQueryEndpointAllKinds(t *testing.T) {
	_, eng := testEngine(t, 16)
	ts := newTestServer(t, eng, Config{})

	reqs := []string{
		`{"kind":"sssp","sssp":{"source":3}}`,
		`{"kind":"mssp","mssp":{"sources":[2,5]}}`,
		`{"kind":"apsp"}`,
		`{"kind":"apsp","apsp":{"variant":"weighted3"}}`,
		`{"kind":"distance","distance":{"from":2,"to":9}}`,
		`{"kind":"diameter"}`,
		`{"kind":"knearest","knearest":{"k":3}}`,
		`{"kind":"source_detection","source_detection":{"sources":[0,5],"d":3,"k":2}}`,
	}
	for _, body := range reqs {
		var req api.Request
		if err := json.Unmarshal([]byte(body), &req); err != nil {
			t.Fatal(err)
		}
		want, err := eng.Query(context.Background(), req)
		if err != nil {
			t.Fatalf("%s: direct query: %v", body, err)
		}
		var got api.Response
		postJSON(t, ts.URL+"/v1/query", body, http.StatusOK, &got)
		got.Cached = want.Cached // the HTTP path may answer from cache
		if !reflect.DeepEqual(&got, want) {
			t.Errorf("%s: HTTP response differs from direct Engine.Query\n got %+v\nwant %+v", body, got, want)
		}
	}
}

// TestQueryEndpointSharesLegacyCache: the POST plane and the deprecated
// GET shims key the one cache identically - a POST warms the GET and
// vice versa, including the distance/MSSP sharing.
func TestQueryEndpointSharesLegacyCache(t *testing.T) {
	_, eng := testEngine(t, 12)
	ts := newTestServer(t, eng, Config{CacheSize: 16})

	var first api.Response
	postJSON(t, ts.URL+"/v1/query", `{"kind":"sssp","sssp":{"source":1}}`, http.StatusOK, &first)
	if first.Cached {
		t.Error("first POST sssp already cached")
	}
	var legacy ssspResponse
	getJSON(t, ts.URL+"/v1/sssp?source=1", http.StatusOK, &legacy)
	if !legacy.Cached {
		t.Error("GET after POST missed the shared cache")
	}
	if !reflect.DeepEqual(legacy.Dist, first.SSSP.Dist) {
		t.Error("legacy shim and query plane disagree")
	}

	// Distance via POST warms the MSSP entry for both planes.
	var dist api.Response
	postJSON(t, ts.URL+"/v1/query", `{"kind":"distance","distance":{"from":4,"to":7}}`, http.StatusOK, &dist)
	var mssp api.Response
	postJSON(t, ts.URL+"/v1/query", `{"kind":"mssp","mssp":{"sources":[4]}}`, http.StatusOK, &mssp)
	if !mssp.Cached {
		t.Error("distance POST did not warm the mssp cache entry")
	}
	var legacyM msspResponse
	getJSON(t, ts.URL+"/v1/mssp?sources=4", http.StatusOK, &legacyM)
	if !legacyM.Cached {
		t.Error("legacy mssp GET missed the entry a POST distance warmed")
	}

	// Auto and explicit APSP variants share one entry (auto resolves
	// before keying).
	var auto api.Response
	postJSON(t, ts.URL+"/v1/query", `{"kind":"apsp"}`, http.StatusOK, &auto)
	explicit := fmt.Sprintf(`{"kind":"apsp","apsp":{"variant":"%s"}}`, auto.APSP.Variant)
	var resolved api.Response
	postJSON(t, ts.URL+"/v1/query", explicit, http.StatusOK, &resolved)
	if !resolved.Cached {
		t.Error("explicit variant missed the entry auto warmed")
	}
}

// TestQueryEndpointErrors pins the typed 400/422 (and 405) behavior of
// the POST plane: structural problems are 400 CodeMalformed, semantic
// ones 422 with the engine's code.
func TestQueryEndpointErrors(t *testing.T) {
	_, eng := testEngine(t, 10)
	ts := newTestServer(t, eng, Config{})

	for _, tc := range []struct {
		name string
		body string
		code int
		want api.ErrorCode
	}{
		{"syntax", `{"kind":`, http.StatusBadRequest, api.CodeMalformed},
		{"unknown-kind", `{"kind":"bfs"}`, http.StatusBadRequest, api.CodeMalformed},
		{"union-mismatch", `{"kind":"sssp","mssp":{"sources":[1]}}`, http.StatusBadRequest, api.CodeMalformed},
		{"missing-payload", `{"kind":"knearest"}`, http.StatusBadRequest, api.CodeMalformed},
		{"out-of-range", `{"kind":"sssp","sssp":{"source":99}}`, http.StatusUnprocessableEntity, api.CodeInvalidSource},
		{"negative-source", `{"kind":"mssp","mssp":{"sources":[-2]}}`, http.StatusUnprocessableEntity, api.CodeInvalidSource},
		{"distance-to-range", `{"kind":"distance","distance":{"from":0,"to":1000}}`, http.StatusUnprocessableEntity, api.CodeInvalidSource},
		{"bad-k", `{"kind":"knearest","knearest":{"k":0}}`, http.StatusUnprocessableEntity, api.CodeInvalidOption},
		{"bad-d", `{"kind":"source_detection","source_detection":{"sources":[0],"d":0,"k":1}}`, http.StatusUnprocessableEntity, api.CodeInvalidOption},
	} {
		var e errorBody
		postJSON(t, ts.URL+"/v1/query", tc.body, tc.code, &e)
		if e.Error == nil || e.Error.Code != tc.want {
			t.Errorf("%s: error %+v, want code %q", tc.name, e.Error, tc.want)
		}
		if e.Error != nil && e.Error.Message == "" {
			t.Errorf("%s: empty error message", tc.name)
		}
	}

	// GET on the POST plane is 405.
	resp, err := http.Get(ts.URL + "/v1/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/query: status %d, want 405", resp.StatusCode)
	}
}

// TestBatchEndpoint: a mixed batch answers every position - successes,
// typed failures, duplicates and cache hits - and matches direct engine
// calls.
func TestBatchEndpoint(t *testing.T) {
	_, eng := testEngine(t, 14)
	ts := newTestServer(t, eng, Config{CacheSize: 16})

	// Warm one entry so the batch exercises the hit path.
	postJSON(t, ts.URL+"/v1/query", `{"kind":"diameter"}`, http.StatusOK, nil)

	body := `{"requests":[
		{"kind":"mssp","mssp":{"sources":[0,3]}},
		{"kind":"sssp","sssp":{"source":2}},
		{"kind":"diameter"},
		{"kind":"sssp","sssp":{"source":777}},
		{"kind":"mssp"},
		{"kind":"distance","distance":{"from":0,"to":5}},
		{"kind":"mssp","mssp":{"sources":[3,0,3]}}
	]}`
	var br api.BatchResponse
	postJSON(t, ts.URL+"/v1/batch", body, http.StatusOK, &br)
	if len(br.Responses) != 7 {
		t.Fatalf("%d responses, want 7", len(br.Responses))
	}
	r := br.Responses
	wantM, err := eng.Query(context.Background(), api.Request{Kind: api.KindMSSP, MSSP: &api.MSSPParams{Sources: []int{0, 3}}})
	if err != nil {
		t.Fatal(err)
	}
	if r[0].Error != nil || !reflect.DeepEqual(r[0].MSSP, wantM.MSSP) {
		t.Errorf("batch[0] mssp differs from direct call: %+v", r[0].Error)
	}
	if r[1].Error != nil || r[1].SSSP == nil {
		t.Errorf("batch[1] sssp failed: %+v", r[1].Error)
	}
	if r[2].Error != nil || !r[2].Cached {
		t.Errorf("batch[2] diameter should be a cache hit: err=%+v cached=%v", r[2].Error, r[2].Cached)
	}
	if r[3].Error == nil || r[3].Error.Code != api.CodeInvalidSource {
		t.Errorf("batch[3] error %+v, want invalid_source", r[3].Error)
	}
	if r[4].Error == nil || r[4].Error.Code != api.CodeMalformed {
		t.Errorf("batch[4] error %+v, want malformed", r[4].Error)
	}
	if r[5].Error != nil || r[5].Distance == nil || r[5].Kind != api.KindDistance {
		t.Errorf("batch[5] distance failed: %+v", r[5])
	}
	// Position 6 duplicates position 0 (same canonical sources).
	if !reflect.DeepEqual(r[6].MSSP, r[0].MSSP) {
		t.Error("batch[6] duplicate did not share batch[0]'s answer")
	}

	// The batch refilled the cache: re-running it answers entirely from
	// cache (every success Cached).
	var again api.BatchResponse
	postJSON(t, ts.URL+"/v1/batch", body, http.StatusOK, &again)
	for i, resp := range again.Responses {
		if resp.Error == nil && !resp.Cached {
			t.Errorf("rerun batch[%d] not served from cache", i)
		}
	}

	// Per-position failures feed the serving stats even inside a 200
	// batch (each run carried 2 failing positions).
	var st struct {
		Requests map[string]int64 `json:"requests"`
	}
	getJSON(t, ts.URL+"/v1/stats", http.StatusOK, &st)
	if st.Requests["errors"] < 4 {
		t.Errorf("stats errors = %d after 2 batches with 2 failing positions each", st.Requests["errors"])
	}
}

// TestBatchSharedRunDistinctProjections: positions that coalesce onto
// one engine run (two distances from the same source, plus the plain
// single-source MSSP they rewrite to) still project their own responses
// - the regression guard for per-position plans inside a shared miss
// group.
func TestBatchSharedRunDistinctProjections(t *testing.T) {
	_, eng := testEngine(t, 12)
	ts := newTestServer(t, eng, Config{CacheSize: 16})

	body := `{"requests":[
		{"kind":"distance","distance":{"from":2,"to":5}},
		{"kind":"distance","distance":{"from":2,"to":9}},
		{"kind":"mssp","mssp":{"sources":[2]}}
	]}`
	var br api.BatchResponse
	postJSON(t, ts.URL+"/v1/batch", body, http.StatusOK, &br)
	if len(br.Responses) != 3 {
		t.Fatalf("%d responses, want 3", len(br.Responses))
	}
	want, err := eng.Query(context.Background(), api.Request{Kind: api.KindMSSP, MSSP: &api.MSSPParams{Sources: []int{2}}})
	if err != nil {
		t.Fatal(err)
	}
	d0, d1, m := br.Responses[0], br.Responses[1], br.Responses[2]
	if d0.Error != nil || d1.Error != nil || m.Error != nil {
		t.Fatalf("errors: %+v %+v %+v", d0.Error, d1.Error, m.Error)
	}
	if d0.Distance.To != 5 || d1.Distance.To != 9 {
		t.Fatalf("projections mixed up: to=%d and to=%d", d0.Distance.To, d1.Distance.To)
	}
	if d0.Distance.Distance != want.MSSP.Dist[5][0] || d1.Distance.Distance != want.MSSP.Dist[9][0] {
		t.Error("shared-run distances do not match the MSSP row")
	}
	if m.Kind != api.KindMSSP || !reflect.DeepEqual(m.MSSP, want.MSSP) {
		t.Error("plain mssp position was not answered as mssp")
	}
	// One engine run for all three: the shared entry is now cached.
	var probe api.Response
	postJSON(t, ts.URL+"/v1/query", `{"kind":"mssp","mssp":{"sources":[2]}}`, http.StatusOK, &probe)
	if !probe.Cached {
		t.Error("shared run did not warm the cache")
	}
}

// TestBatchEndpointErrors pins the top-level failure modes.
func TestBatchEndpointErrors(t *testing.T) {
	_, eng := testEngine(t, 10)
	ts := newTestServer(t, eng, Config{})

	var e errorBody
	postJSON(t, ts.URL+"/v1/batch", `{"requests":[]}`, http.StatusBadRequest, &e)
	if e.Error == nil || e.Error.Code != api.CodeMalformed {
		t.Errorf("empty batch: %+v", e.Error)
	}

	var reqs []string
	for i := 0; i <= maxBatchRequests; i++ {
		reqs = append(reqs, `{"kind":"diameter"}`)
	}
	over := `{"requests":[` + strings.Join(reqs, ",") + `]}`
	postJSON(t, ts.URL+"/v1/batch", over, http.StatusBadRequest, &e)
	if e.Error == nil || !strings.Contains(e.Error.Message, "exceeds") {
		t.Errorf("oversized batch: %+v", e.Error)
	}

	postJSON(t, ts.URL+"/v1/batch", `{"requests":`, http.StatusBadRequest, &e)
	if e.Error == nil || e.Error.Code != api.CodeMalformed {
		t.Errorf("bad JSON batch: %+v", e.Error)
	}
}

// TestBatchTimeout: the server timeout covers the whole batch; expired
// positions report typed deadline errors while the batch still returns
// 200 (the context fires mid-run, after at least the decode succeeded).
func TestBatchTimeout(t *testing.T) {
	_, eng := testEngine(t, 24)
	ts := newTestServer(t, eng, Config{Timeout: time.Nanosecond})
	body := `{"requests":[{"kind":"diameter"},{"kind":"sssp","sssp":{"source":1}}]}`
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	switch resp.StatusCode {
	case http.StatusOK:
		var br api.BatchResponse
		if err := json.Unmarshal(raw, &br); err != nil {
			t.Fatalf("bad JSON: %v", err)
		}
		for i, r := range br.Responses {
			if r.Error == nil || r.Error.Code != api.CodeDeadline {
				t.Errorf("position %d: %+v, want deadline_exceeded", i, r.Error)
			}
		}
	case http.StatusGatewayTimeout:
		// The deadline fired before the engine saw the batch at all.
	default:
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
}

// TestLegacyShimsByteIdentical is the deprecation contract: the GET
// endpoints render exactly the bytes the pre-plane server rendered - the
// reference encoding of the legacy structs built from direct Engine
// calls.
func TestLegacyShimsByteIdentical(t *testing.T) {
	_, eng := testEngine(t, 12)
	ts := newTestServer(t, eng, Config{})

	render := func(v interface{}) []byte {
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		enc.SetIndent("", "  ")
		if err := enc.Encode(v); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	fetchRaw := func(path string) []byte {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d: %s", path, resp.StatusCode, raw)
		}
		return raw
	}

	wantS, err := eng.SSSP(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	dist := make([]int64, len(wantS.Dist))
	for i, d := range wantS.Dist {
		dist[i] = jsonDist(d)
	}
	wantBytes := render(ssspResponse{Source: 3, Dist: dist, Iterations: wantS.Iterations,
		Stats: statsJSON{TotalRounds: wantS.Stats.TotalRounds, SimRounds: wantS.Stats.SimRounds,
			Messages: wantS.Stats.Messages, Words: wantS.Stats.Words}})
	if got := fetchRaw("/v1/sssp?source=3"); !bytes.Equal(got, wantBytes) {
		t.Errorf("sssp shim bytes differ:\n got %s\nwant %s", got, wantBytes)
	}

	wantD, err := eng.Diameter(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	wantBytes = render(diameterResponse{Estimate: wantD.Estimate,
		Stats: statsJSON{TotalRounds: wantD.Stats.TotalRounds, SimRounds: wantD.Stats.SimRounds,
			Messages: wantD.Stats.Messages, Words: wantD.Stats.Words}})
	if got := fetchRaw("/v1/diameter"); !bytes.Equal(got, wantBytes) {
		t.Errorf("diameter shim bytes differ:\n got %s\nwant %s", got, wantBytes)
	}

	wantM, err := eng.MSSP(context.Background(), []int{2, 5})
	if err != nil {
		t.Fatal(err)
	}
	mdist := make([][]int64, len(wantM.Dist))
	for v, row := range wantM.Dist {
		mdist[v] = make([]int64, len(row))
		for i, d := range row {
			mdist[v][i] = jsonDist(d)
		}
	}
	wantBytes = render(msspResponse{Sources: wantM.Sources, Dist: mdist,
		Stats: statsJSON{TotalRounds: wantM.Stats.TotalRounds, SimRounds: wantM.Stats.SimRounds,
			Messages: wantM.Stats.Messages, Words: wantM.Stats.Words}})
	if got := fetchRaw("/v1/mssp?sources=5,2,5"); !bytes.Equal(got, wantBytes) {
		t.Errorf("mssp shim bytes differ:\n got %s\nwant %s", got, wantBytes)
	}

	// Error bodies keep the legacy {"error": "..."} string shape.
	resp, err := http.Get(ts.URL + "/v1/sssp?source=banana")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	wantErr := render(map[string]string{"error": `bad parameter source="banana": not an integer`})
	if resp.StatusCode != http.StatusBadRequest || !bytes.Equal(raw, wantErr) {
		t.Errorf("legacy error body: %d %s, want 400 %s", resp.StatusCode, raw, wantErr)
	}
}
