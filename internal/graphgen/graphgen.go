// Package graphgen provides deterministic synthetic graph generators for
// the experiment workloads (the paper is pure theory, so workloads are
// generated to span the regimes its theorems distinguish: sparse/dense,
// weighted/unweighted, low/high diameter, skewed degrees - see DESIGN.md).
// All generators are reproducible from the seed.
package graphgen

import (
	"math"
	"math/rand"

	"github.com/congestedclique/ccsp/internal/graph"
)

// Weights selects edge-weight generation.
type Weights struct {
	// Max is the maximum weight; 0 or 1 means unweighted (all ones).
	Max int64
}

func (w Weights) draw(rng *rand.Rand) int64 {
	if w.Max <= 1 {
		return 1
	}
	return rng.Int63n(w.Max) + 1
}

// Connected returns a connected random graph: a random attachment tree
// plus extra uniformly random edges.
func Connected(n, extraEdges int, w Weights, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(v, rng.Intn(v), w.draw(rng))
	}
	for e := 0; e < extraEdges; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.MustAddEdge(u, v, w.draw(rng))
		}
	}
	return g
}

// GNP returns an Erdős-Rényi G(n,p) graph (possibly disconnected).
func GNP(n int, p float64, w Weights, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.MustAddEdge(u, v, w.draw(rng))
			}
		}
	}
	return g
}

// Grid returns an r×c grid (a road-network-like workload: large diameter,
// degree at most 4).
func Grid(rows, cols int, w Weights, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.MustAddEdge(id(r, c), id(r, c+1), w.draw(rng))
			}
			if r+1 < rows {
				g.MustAddEdge(id(r, c), id(r+1, c), w.draw(rng))
			}
		}
	}
	return g
}

// Geometric returns a random geometric graph on the unit square with the
// given connection radius (weights scale with distance when weighted).
func Geometric(n int, radius float64, w Weights, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			dx, dy := xs[u]-xs[v], ys[u]-ys[v]
			d := math.Sqrt(dx*dx + dy*dy)
			if d <= radius {
				wt := int64(1)
				if w.Max > 1 {
					wt = int64(d/radius*float64(w.Max)) + 1
				}
				g.MustAddEdge(u, v, wt)
			}
		}
	}
	return g
}

// Star returns a star with hub 0 - the dense-product adversary named in
// §1.3 (squaring its adjacency matrix is dense).
func Star(n int, w Weights, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(0, v, w.draw(rng))
	}
	return g
}

// Path returns the path 0-1-...-n-1 (maximal SPD: the Bellman-Ford
// worst case of E10).
func Path(n int, w Weights, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for v := 0; v+1 < n; v++ {
		g.MustAddEdge(v, v+1, w.draw(rng))
	}
	return g
}

// Cycle returns the n-cycle.
func Cycle(n int, w Weights, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for v := 0; v < n; v++ {
		g.MustAddEdge(v, (v+1)%n, w.draw(rng))
	}
	return g
}

// PreferentialAttachment returns a Barabási-Albert-style graph: each new
// node attaches m edges preferentially to high-degree nodes - the
// power-law "social network" workload with a high-degree core.
func PreferentialAttachment(n, m int, w Weights, seed int64) *graph.Graph {
	if m < 1 {
		m = 1
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	// Attachment pool: node IDs appear once per incident edge.
	pool := make([]int, 0, 2*m*n)
	start := m + 1
	if start > n {
		start = n
	}
	for v := 1; v < start; v++ {
		g.MustAddEdge(v, v-1, w.draw(rng))
		pool = append(pool, v, v-1)
	}
	for v := start; v < n; v++ {
		chosen := map[int]bool{}
		order := make([]int, 0, m)
		for len(order) < m {
			var u int
			if len(pool) == 0 {
				u = rng.Intn(v)
			} else {
				u = pool[rng.Intn(len(pool))]
			}
			if u != v && !chosen[u] {
				chosen[u] = true
				order = append(order, u)
			}
		}
		for _, u := range order {
			g.MustAddEdge(v, u, w.draw(rng))
			pool = append(pool, v, u)
		}
	}
	return g
}

// Caterpillar returns a path with l leaves attached to each spine node - a
// mixed high/low-degree workload for the §6.3 split.
func Caterpillar(spine, leaves int, w Weights, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	n := spine * (1 + leaves)
	g := graph.New(n)
	for s := 0; s < spine; s++ {
		if s+1 < spine {
			g.MustAddEdge(s, s+1, w.draw(rng))
		}
		for l := 0; l < leaves; l++ {
			g.MustAddEdge(s, spine+s*leaves+l, w.draw(rng))
		}
	}
	return g
}
