package graphgen

import (
	"testing"

	"github.com/congestedclique/ccsp/internal/graph"
)

func checkValid(t *testing.T, g *graph.Graph) {
	t.Helper()
	for v := 0; v < g.N; v++ {
		for _, e := range g.Adj[v] {
			if int(e.To) == v {
				t.Fatalf("self-loop at %d", v)
			}
			if e.To < 0 || int(e.To) >= g.N {
				t.Fatalf("edge out of range at %d", v)
			}
			if e.W < 1 {
				t.Fatalf("non-positive weight at %d", v)
			}
		}
	}
}

func TestGeneratorsValidAndDeterministic(t *testing.T) {
	gens := map[string]func(seed int64) *graph.Graph{
		"connected":    func(s int64) *graph.Graph { return Connected(30, 20, Weights{Max: 10}, s) },
		"gnp":          func(s int64) *graph.Graph { return GNP(25, 0.2, Weights{}, s) },
		"grid":         func(s int64) *graph.Graph { return Grid(5, 6, Weights{Max: 4}, s) },
		"geometric":    func(s int64) *graph.Graph { return Geometric(30, 0.3, Weights{Max: 8}, s) },
		"star":         func(s int64) *graph.Graph { return Star(20, Weights{}, s) },
		"path":         func(s int64) *graph.Graph { return Path(20, Weights{Max: 5}, s) },
		"cycle":        func(s int64) *graph.Graph { return Cycle(17, Weights{}, s) },
		"preferential": func(s int64) *graph.Graph { return PreferentialAttachment(40, 2, Weights{}, s) },
		"caterpillar":  func(s int64) *graph.Graph { return Caterpillar(6, 4, Weights{}, s) },
	}
	for name, gen := range gens {
		t.Run(name, func(t *testing.T) {
			a := gen(7)
			checkValid(t, a)
			b := gen(7)
			if a.N != b.N || a.M() != b.M() {
				t.Fatal("generator not deterministic")
			}
			for v := 0; v < a.N; v++ {
				if len(a.Adj[v]) != len(b.Adj[v]) {
					t.Fatal("generator not deterministic (adjacency)")
				}
				for i := range a.Adj[v] {
					if a.Adj[v][i] != b.Adj[v][i] {
						t.Fatal("generator not deterministic (edges)")
					}
				}
			}
		})
	}
}

func TestConnectedIsConnected(t *testing.T) {
	g := Connected(40, 0, Weights{Max: 3}, 9)
	if _, connected := g.Diameter(); !connected {
		t.Fatal("Connected generator produced a disconnected graph")
	}
}

func TestStructuredShapes(t *testing.T) {
	if g := Star(10, Weights{}, 1); g.Degree(0) != 9 || g.M() != 9 {
		t.Error("star shape wrong")
	}
	if g := Path(10, Weights{}, 1); g.SPD() != 9 {
		t.Error("path SPD wrong")
	}
	if g := Cycle(10, Weights{}, 1); g.M() != 10 {
		t.Error("cycle size wrong")
	}
	g := Grid(4, 5, Weights{}, 1)
	if g.N != 20 || g.M() != 4*4+3*5 {
		t.Errorf("grid shape wrong: n=%d m=%d", g.N, g.M())
	}
	if d, connected := g.Diameter(); !connected || d != 7 {
		t.Errorf("unit grid diameter=%d, want 7", d)
	}
}

func TestPreferentialAttachmentSkew(t *testing.T) {
	g := PreferentialAttachment(100, 2, Weights{}, 3)
	if _, connected := g.Diameter(); !connected {
		t.Fatal("preferential attachment graph disconnected")
	}
	if g.MaxDegree() < 8 {
		t.Errorf("max degree %d suspiciously small for a preferential graph", g.MaxDegree())
	}
}

func TestCaterpillarDegrees(t *testing.T) {
	g := Caterpillar(5, 3, Weights{}, 2)
	if g.N != 20 {
		t.Fatalf("n=%d, want 20", g.N)
	}
	// Interior spine nodes: 2 spine edges + 3 leaves = 5.
	if g.Degree(2) != 5 {
		t.Errorf("spine degree=%d, want 5", g.Degree(2))
	}
	// Leaves have degree 1.
	if g.Degree(10) != 1 {
		t.Errorf("leaf degree=%d, want 1", g.Degree(10))
	}
}
