package ccsp

import (
	"fmt"

	"github.com/congestedclique/ccsp/internal/graph"
)

// Graph is an undirected graph with non-negative integer edge weights, the
// input of every algorithm in this package. Node IDs are 0..n-1; in the
// Congested Clique model each node is one processor.
type Graph struct {
	g *graph.Graph
}

// NewGraph returns an empty graph on n nodes.
func NewGraph(n int) *Graph {
	return &Graph{g: graph.New(n)}
}

// AddEdge adds the undirected edge {u, v} with weight w >= 0. Self-loops
// are rejected; parallel edges keep the lighter one.
func (gr *Graph) AddEdge(u, v int, w int64) error {
	return gr.g.AddEdge(u, v, w)
}

// MustAddEdge is AddEdge for statically valid construction code; it panics
// on invalid edges.
func (gr *Graph) MustAddEdge(u, v int, w int64) {
	gr.g.MustAddEdge(u, v, w)
}

// N returns the number of nodes.
func (gr *Graph) N() int { return gr.g.N }

// M returns the number of undirected edges.
func (gr *Graph) M() int { return gr.g.M() }

// MaxWeight returns the maximum edge weight (at least 1).
func (gr *Graph) MaxWeight() int64 { return gr.g.MaxW() }

// Degree returns the degree of node v.
func (gr *Graph) Degree(v int) int { return gr.g.Degree(v) }

// Neighbors calls fn for every half-edge incident to v.
func (gr *Graph) Neighbors(v int, fn func(u int, w int64)) {
	for _, e := range gr.g.Adj[v] {
		fn(int(e.To), e.W)
	}
}

// Unweighted reports whether all edges have weight 1.
func (gr *Graph) Unweighted() bool {
	for v := 0; v < gr.g.N; v++ {
		for _, e := range gr.g.Adj[v] {
			if e.W != 1 {
				return false
			}
		}
	}
	return true
}

// validate checks preconditions common to all entry points.
func (gr *Graph) validate() error {
	if gr == nil || gr.g == nil {
		return fmt.Errorf("ccsp: nil graph")
	}
	if gr.g.N < 1 {
		return fmt.Errorf("ccsp: empty graph")
	}
	return nil
}

// FromEdges builds a graph from an edge list.
func FromEdges(n int, edges [][3]int64) (*Graph, error) {
	gr := NewGraph(n)
	for _, e := range edges {
		if err := gr.AddEdge(int(e[0]), int(e[1]), e[2]); err != nil {
			return nil, err
		}
	}
	return gr, nil
}
