package ccsp

import (
	"context"
	"reflect"
	"testing"
)

// TestPublicDeterminism: the paper's algorithms are deterministic - two
// identical invocations must agree on every estimate and on the stats.
func TestPublicDeterminism(t *testing.T) {
	gr := testGraph(24, 30, 8, 11)
	r1, err := APSPWeighted(context.Background(), gr, Options{Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := APSPWeighted(context.Background(), gr, Options{Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Dist, r2.Dist) {
		t.Error("APSP estimates differ between identical runs")
	}
	// CollectiveTime is wall-clock and varies run to run; everything else
	// must match exactly.
	r1.Stats.CollectiveTime, r2.Stats.CollectiveTime = nil, nil
	if !reflect.DeepEqual(r1.Stats, r2.Stats) {
		t.Errorf("stats differ: %+v vs %+v", r1.Stats, r2.Stats)
	}
}

// TestPresetPaper: the proof-faithful constants also hold their guarantee
// through the public API (small size; the paper preset's hop budget is
// large).
func TestPresetPaper(t *testing.T) {
	gr := testGraph(16, 16, 5, 12)
	eps := 1.0
	res, err := APSPWeighted(context.Background(), gr, Options{Epsilon: eps, Preset: PresetPaper})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < gr.N(); u++ {
		ref := dijkstra(gr, u)
		for v := 0; v < gr.N(); v++ {
			if ref[v] >= Unreachable {
				continue
			}
			got := res.Distance(u, v)
			if got < ref[v] {
				t.Fatalf("(%d,%d): underestimate", u, v)
			}
			bound := (2+eps)*float64(ref[v]) + (1+eps)*float64(gr.MaxWeight())
			if float64(got) > bound+1e-9 {
				t.Fatalf("(%d,%d): %d above bound for d=%d", u, v, got, ref[v])
			}
		}
	}
}

// TestEndToEndPipeline chains the public tools the way a downstream user
// would: k-nearest to pick landmarks, MSSP for sketches, SSSP for exact
// routes - all on one graph, checking cross-consistency.
func TestEndToEndPipeline(t *testing.T) {
	gr := testGraph(30, 40, 6, 13)

	kn, err := KNearest(context.Background(), gr, 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Landmarks: every node's farthest of its 5-nearest.
	seen := map[int]bool{}
	var landmarks []int
	for v := 0; v < gr.N() && len(landmarks) < 5; v += 7 {
		l := kn.Neighbors[v][len(kn.Neighbors[v])-1].Node
		if !seen[l] {
			seen[l] = true
			landmarks = append(landmarks, l)
		}
	}
	ms, err := MSSP(context.Background(), gr, landmarks, Options{Epsilon: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range ms.Sources {
		ss, err := SSSP(context.Background(), gr, l, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < gr.N(); v++ {
			approx, err := ms.Distance(v, l)
			if err != nil {
				t.Fatal(err)
			}
			exact := ss.Dist[v]
			if exact >= Unreachable {
				continue
			}
			if approx < exact || float64(approx) > 1.25*float64(exact)+1e-9 {
				t.Fatalf("landmark %d node %d: approx %d vs exact %d", l, v, approx, exact)
			}
		}
	}
}

// TestUnreachableConstant pins the public sentinel to the internal one.
func TestUnreachableConstant(t *testing.T) {
	if Unreachable != 1<<60 {
		t.Fatalf("Unreachable=%d, want 2^60", Unreachable)
	}
}
