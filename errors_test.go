package ccsp

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/congestedclique/ccsp/internal/cc"
)

// TestTypedErrorsValidation: every validation failure wraps the right
// sentinel, from both the one-shot wrappers and Engine methods.
func TestTypedErrorsValidation(t *testing.T) {
	ctx := context.Background()
	gr := testGraph(10, 8, 4, 7)

	check := func(label string, err error, want error) {
		t.Helper()
		if err == nil {
			t.Errorf("%s: want error wrapping %v, got nil", label, want)
			return
		}
		if !errors.Is(err, want) {
			t.Errorf("%s: errors.Is(%v, %v) = false", label, err, want)
		}
	}

	// One-shot wrappers.
	_, err := MSSP(ctx, gr, nil, Options{})
	check("MSSP(no sources)", err, ErrInvalidSource)
	_, err = MSSP(ctx, gr, []int{99}, Options{})
	check("MSSP(out of range)", err, ErrInvalidSource)
	_, err = SSSP(ctx, gr, -1, Options{})
	check("SSSP(-1)", err, ErrInvalidSource)
	_, err = KNearest(ctx, gr, 0, Options{})
	check("KNearest(0)", err, ErrInvalidOption)
	_, err = SourceDetection(ctx, gr, []int{0}, 0, 1, Options{})
	check("SourceDetection(d=0)", err, ErrInvalidOption)
	_, err = SourceDetection(ctx, gr, []int{-3}, 1, 1, Options{})
	check("SourceDetection(bad source)", err, ErrInvalidSource)
	_, err = APSPWeighted(ctx, gr, Options{Epsilon: 2})
	check("APSPWeighted(eps=2)", err, ErrInvalidOption)
	_, err = Diameter(ctx, gr, Options{Workers: -1})
	check("Diameter(workers=-1)", err, ErrInvalidOption)

	// Engine methods report the same sentinels.
	eng, err := newEngine(gr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.MSSP(ctx, []int{42})
	check("Engine.MSSP(out of range)", err, ErrInvalidSource)
	_, err = eng.SSSP(ctx, 77)
	check("Engine.SSSP(out of range)", err, ErrInvalidSource)
	_, err = eng.KNearest(ctx, -2)
	check("Engine.KNearest(-2)", err, ErrInvalidOption)

	// Result-side source lookup.
	res, err := eng.MSSP(ctx, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Distance(0, 2); !errors.Is(err, ErrInvalidSource) {
		t.Errorf("MSSPResult.Distance(non-source): got %v, want ErrInvalidSource", err)
	}
}

// TestTypedErrorsRoundLimit: a real over-budget run surfaces ErrRoundLimit
// through the one-shot wrapper and the Engine alike.
func TestTypedErrorsRoundLimit(t *testing.T) {
	ctx := context.Background()
	gr := testGraph(12, 10, 4, 11)
	_, err := SSSP(ctx, gr, 0, Options{MaxRounds: 1})
	if !errors.Is(err, ErrRoundLimit) {
		t.Fatalf("one-shot SSSP with MaxRounds=1: got %v, want ErrRoundLimit", err)
	}
	if errors.Is(err, ErrCanceled) {
		t.Errorf("round-limit error must not match ErrCanceled: %v", err)
	}
	eng, err := newEngine(gr, Options{MaxRounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.SSSP(ctx, 0); !errors.Is(err, ErrRoundLimit) {
		t.Errorf("Engine.SSSP with MaxRounds=1: got %v, want ErrRoundLimit", err)
	}
	// Preprocessing is budgeted per run too: the eager build trips it.
	if _, err := NewEngine(ctx, gr, Options{MaxRounds: 1}); !errors.Is(err, ErrRoundLimit) {
		t.Errorf("NewEngine with MaxRounds=1: got %v, want ErrRoundLimit", err)
	}
}

// TestTypedErrorsCanceled: cancellation surfaces ErrCanceled (plus the
// context sentinel, plus the cc-layer sentinel) from every public layer.
func TestTypedErrorsCanceled(t *testing.T) {
	gr := testGraph(16, 14, 5, 13)
	dead, cancel := context.WithCancel(context.Background())
	cancel()

	checkCanceled := func(label string, err error, ctxSentinel error) {
		t.Helper()
		if !errors.Is(err, ErrCanceled) {
			t.Errorf("%s: errors.Is(err, ErrCanceled) = false for %v", label, err)
		}
		if !errors.Is(err, ctxSentinel) {
			t.Errorf("%s: errors.Is(err, %v) = false for %v", label, ctxSentinel, err)
		}
	}

	_, err := NewEngine(dead, gr, Options{})
	checkCanceled("NewEngine", err, context.Canceled)
	if !errors.Is(err, cc.ErrCanceled) {
		t.Errorf("NewEngine: cc sentinel lost from chain: %v", err)
	}
	_, err = MSSP(dead, gr, []int{0}, Options{})
	checkCanceled("one-shot MSSP", err, context.Canceled)
	_, err = SSSP(dead, gr, 0, Options{})
	checkCanceled("one-shot SSSP", err, context.Canceled)
	_, err = LoadEngine(dead, bytes.NewReader(nil))
	checkCanceled("LoadEngine", err, context.Canceled)

	// A deadline that expires mid-run maps to DeadlineExceeded.
	short, cancelShort := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancelShort()
	time.Sleep(2 * time.Millisecond)
	_, err = Diameter(short, testGraph(24, 20, 6, 17), Options{})
	checkCanceled("one-shot Diameter (deadline)", err, context.DeadlineExceeded)

	// Round-trip through a snapshot: a loaded engine cancels like a fresh
	// one.
	eng, err := NewEngine(context.Background(), gr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEngine(context.Background(), bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	_, err = loaded.MSSP(dead, []int{0})
	checkCanceled("loaded Engine.MSSP", err, context.Canceled)
}

// TestCanceledBuildDoesNotPoisonCache is the lazy-artifact rule of
// DESIGN.md §10: a canceled lazy build must leave the cache clean, so a
// later query with a live context rebuilds and succeeds; and a canceled
// *waiter* must neither abort the build nor poison the cache for the
// builder.
func TestCanceledBuildDoesNotPoisonCache(t *testing.T) {
	gr := testGraph(20, 18, 6, 23)
	eng, err := newEngine(gr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.MSSP(dead, []int{1}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled lazy build: got %v, want ErrCanceled", err)
	}
	if builds := eng.PreprocessStats().Builds; len(builds) != 0 {
		t.Fatalf("canceled build left %d cached builds, want 0", len(builds))
	}
	// The same engine recovers with a live context.
	want, err := eng.MSSP(context.Background(), []int{1})
	if err != nil {
		t.Fatalf("engine poisoned by canceled build: %v", err)
	}
	if builds := eng.PreprocessStats().Builds; len(builds) != 1 {
		t.Fatalf("recovered engine has %d builds, want 1", len(builds))
	}

	// A fresh cold engine must agree exactly: the canceled attempt left
	// no trace in the artifact state.
	cold, err := newEngine(gr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := cold.MSSP(context.Background(), []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Dist, ref.Dist) {
		t.Error("post-cancellation rebuild differs from a cold engine")
	}

	// Waiter cancellation: one goroutine builds (live ctx), another waits
	// on the same in-flight artifact with a context that dies immediately.
	// The waiter errors, the builder completes, and the cache ends up
	// with the artifact.
	eng2, err := newEngine(gr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var builderErr, waiterErr error
	wg.Add(2)
	waiterCtx, cancelWaiter := context.WithCancel(context.Background())
	go func() {
		defer wg.Done()
		_, builderErr = eng2.MSSP(context.Background(), []int{2})
	}()
	go func() {
		defer wg.Done()
		// Cancel while (most likely) waiting on the builder's in-flight
		// call; whichever interleaving occurs, the builder must succeed.
		time.AfterFunc(time.Millisecond, cancelWaiter)
		_, waiterErr = eng2.MSSP(waiterCtx, []int{2})
	}()
	wg.Wait()
	if builderErr != nil {
		t.Fatalf("builder failed despite only the waiter canceling: %v", builderErr)
	}
	if waiterErr != nil && !errors.Is(waiterErr, ErrCanceled) {
		t.Errorf("waiter error is untyped: %v", waiterErr)
	}
	if builds := eng2.PreprocessStats().Builds; len(builds) != 1 {
		t.Errorf("waiter cancellation corrupted the cache: %d builds, want 1", len(builds))
	}
}

// TestDeterminismGuardNonFiringDeadline is the public-API determinism
// guard: attaching a deadline that never fires changes nothing - results
// and all deterministic Stats fields are identical to a Background run,
// across worker counts. Run under -race in CI.
func TestDeterminismGuardNonFiringDeadline(t *testing.T) {
	gr := testGraph(32, 40, 8, 31)
	sources := []int{1, 9, 20}
	type outcome struct {
		m *MSSPResult
		a *APSPResult
	}
	var ref *outcome
	for _, workers := range []int{1, 0, 4} {
		for _, withDeadline := range []bool{false, true} {
			ctx := context.Background()
			if withDeadline {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, time.Hour)
				defer cancel()
			}
			opts := Options{Epsilon: 0.5, Workers: workers}
			m, err := MSSP(ctx, gr, sources, opts)
			if err != nil {
				t.Fatalf("workers=%d deadline=%v: %v", workers, withDeadline, err)
			}
			a, err := APSPWeighted(ctx, gr, opts)
			if err != nil {
				t.Fatalf("workers=%d deadline=%v: %v", workers, withDeadline, err)
			}
			if ref == nil {
				ref = &outcome{m: m, a: a}
				continue
			}
			if !reflect.DeepEqual(m.Dist, ref.m.Dist) || !reflect.DeepEqual(a.Dist, ref.a.Dist) {
				t.Errorf("workers=%d deadline=%v: distances differ from reference", workers, withDeadline)
			}
			statsEqual(t, "MSSP guard", m.Stats, ref.m.Stats)
			statsEqual(t, "APSP guard", a.Stats, ref.a.Stats)
		}
	}
}
