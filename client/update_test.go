package client

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/congestedclique/ccsp"
	"github.com/congestedclique/ccsp/api"
	"github.com/congestedclique/ccsp/internal/server"
)

// dynHarness serves a DynamicEngine over the unit-weight path 0-1-...-7
// as the default graph, with a client pointed at it.
func dynHarness(t testing.TB) (*ccsp.DynamicEngine, *Client) {
	t.Helper()
	gr := ccsp.NewGraph(8)
	for v := 1; v < 8; v++ {
		gr.MustAddEdge(v-1, v, 1)
	}
	eng, err := ccsp.NewEngine(context.Background(), gr, ccsp.Options{Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	dyn := ccsp.NewDynamicEngine(eng)
	t.Cleanup(dyn.Close)
	srv, err := server.New(server.Config{Deferred: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.AddDynamicGraph("", dyn); err != nil {
		t.Fatal(err)
	}
	srv.SetReady()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return dyn, New(ts.URL)
}

// TestClientUpdateAndEpoch: the synchronous mutation round trip - the
// response epoch serves immediately and later queries see the new graph.
func TestClientUpdateAndEpoch(t *testing.T) {
	dyn, c := dynHarness(t)
	ctx := context.Background()

	ep, err := c.Epoch(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	if ep.Epoch != 0 {
		t.Fatalf("fresh epoch = %d, want 0", ep.Epoch)
	}

	ur, err := c.Update(ctx, "", []api.EdgeUpdate{{U: 6, V: 7, W: 100}})
	if err != nil {
		t.Fatal(err)
	}
	if ur.Epoch != 1 || ur.Applied != 1 || ur.Pending {
		t.Fatalf("update response = %+v, want epoch 1, applied 1, published", ur)
	}
	if got := dyn.Epoch(); got != 1 {
		t.Fatalf("engine epoch = %d after sync update, want 1", got)
	}
	resp, err := c.Distance(ctx, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Distance.Distance != 106 {
		t.Fatalf("post-update distance = %d, want 106", resp.Distance.Distance)
	}
}

// TestClientUpdateAsync: the async variant reports Pending and the
// target epoch; Epoch polling observes the publish.
func TestClientUpdateAsync(t *testing.T) {
	_, c := dynHarness(t)
	ctx := context.Background()

	ur, err := c.UpdateAsync(ctx, "", []api.EdgeUpdate{{U: 0, V: 1, W: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if ur.Epoch != 1 || !ur.Pending {
		t.Fatalf("async response = %+v, want epoch 1 pending", ur)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		ep, err := c.Epoch(ctx, "")
		if err != nil {
			t.Fatal(err)
		}
		if ep.Epoch >= ur.Epoch {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("epoch stuck at %d", ep.Epoch)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestClientUpdateErrors: typed errors surface through the client - a
// self-loop is invalid (422) and an unknown graph is 404; neither burns
// an epoch.
func TestClientUpdateErrors(t *testing.T) {
	_, c := dynHarness(t)
	ctx := context.Background()

	if _, err := c.Update(ctx, "", []api.EdgeUpdate{{U: 3, V: 3, W: 1}}); err == nil {
		t.Fatal("self-loop update succeeded")
	}
	if _, err := c.Update(ctx, "nope", []api.EdgeUpdate{{U: 0, V: 1, W: 1}}); err == nil {
		t.Fatal("unknown-graph update succeeded")
	}
	if _, err := c.Epoch(ctx, "nope"); err == nil {
		t.Fatal("unknown-graph epoch succeeded")
	}
	ep, err := c.Epoch(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	if ep.Epoch != 0 {
		t.Fatalf("epoch after rejected updates = %d, want 0", ep.Epoch)
	}
}
