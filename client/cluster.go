package client

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/congestedclique/ccsp"
	"github.com/congestedclique/ccsp/api"
	"github.com/congestedclique/ccsp/internal/cluster"
)

// Cluster routes queries across a fixed set of ccspd replicas, each
// serving the graphs a shared consistent-hash ring assigns it. Requests
// carry a graph ID (api.Request.Graph); the cluster sends each to the
// graph's owner, failing over along the ring to the next live replica
// that advertises the graph. A background prober keeps the liveness
// view current, and data-path transport failures mark replicas down
// immediately. Close releases the prober; a Cluster is safe for
// concurrent use.
//
// The typed-error contract matches Client: a replica's answer (success
// or typed failure) returns as-is, and "no live replica serves this
// graph" is an error wrapping ccsp.ErrUnavailable - the same sentinel
// a single daemon uses while loading.
type Cluster struct {
	ring    *cluster.Ring
	prober  *cluster.Prober
	clients map[string]*Client
	cancel  context.CancelFunc
}

// ClusterOption configures a Cluster.
type ClusterOption func(*clusterOptions)

type clusterOptions struct {
	vnodes     int
	interval   time.Duration
	threshold  int
	timeout    time.Duration
	clientOpts []Option
}

// WithVirtualNodes overrides the ring's virtual-node count. Every
// participant (daemons' placement tooling and clients) must agree on
// it, or they will disagree on which replica owns which graph.
func WithVirtualNodes(n int) ClusterOption {
	return func(o *clusterOptions) { o.vnodes = n }
}

// WithProbeInterval overrides the health-probe period.
func WithProbeInterval(d time.Duration) ClusterOption {
	return func(o *clusterOptions) { o.interval = d }
}

// WithProbeThreshold overrides the consecutive-failure count after
// which a replica is marked down.
func WithProbeThreshold(n int) ClusterOption {
	return func(o *clusterOptions) { o.threshold = n }
}

// WithProbeTimeout overrides the per-probe deadline.
func WithProbeTimeout(d time.Duration) ClusterOption {
	return func(o *clusterOptions) { o.timeout = d }
}

// WithClientOptions applies per-replica Client options (WithRetry,
// WithHTTPClient, ...) to every member client.
func WithClientOptions(opts ...Option) ClusterOption {
	return func(o *clusterOptions) { o.clientOpts = append(o.clientOpts, opts...) }
}

// NewCluster builds a routing client over the replica base URLs in
// members. It probes every member once, synchronously, before
// returning - so a cluster whose replicas are up is routable
// immediately - then keeps probing in the background until Close.
func NewCluster(members []string, opts ...ClusterOption) *Cluster {
	var o clusterOptions
	for _, opt := range opts {
		opt(&o)
	}
	ring := cluster.NewRing(members, o.vnodes)
	clients := make(map[string]*Client, len(ring.Members()))
	for _, m := range ring.Members() {
		clients[m] = New(m, o.clientOpts...)
	}
	prober := cluster.NewProber(ring.Members(), cluster.Config{
		Interval:  o.interval,
		Threshold: o.threshold,
		Timeout:   o.timeout,
	})
	ctx, cancel := context.WithCancel(context.Background())
	c := &Cluster{ring: ring, prober: prober, clients: clients, cancel: cancel}
	c.prober.Sweep(ctx)
	go c.prober.Run(ctx)
	return c
}

// Close stops the background prober. In-flight queries finish.
func (c *Cluster) Close() { c.cancel() }

// Refresh runs one synchronous probe sweep, updating the liveness view
// immediately instead of waiting for the next background tick.
func (c *Cluster) Refresh(ctx context.Context) { c.prober.Sweep(ctx) }

// Live returns the replicas currently considered live, sorted.
func (c *Cluster) Live() []string { return c.prober.Live() }

// Members returns the full replica set, sorted.
func (c *Cluster) Members() []string { return c.ring.Members() }

// Owner returns the replica the ring assigns graph to, ignoring
// liveness (placement, not routing).
func (c *Cluster) Owner(graph string) (string, bool) { return c.ring.Owner(graph) }

// errNoReplica is the typed "nobody can serve this graph" outcome.
func errNoReplica(graph string) error {
	if graph == "" {
		return fmt.Errorf("client: %w: no live replica serves the default graph", ccsp.ErrUnavailable)
	}
	return fmt.Errorf("client: %w: no live replica serves graph %q", ccsp.ErrUnavailable, graph)
}

// unavailableResponse is errNoReplica in batch-position form.
func unavailableResponse(req api.Request) api.Response {
	msg := "no live replica serves the default graph"
	if req.Graph != "" {
		msg = fmt.Sprintf("no live replica serves graph %q", req.Graph)
	}
	return api.Response{Kind: req.Kind, Graph: req.Graph,
		Error: &api.Error{Code: api.CodeUnavailable, Message: msg}}
}

// Query answers one typed request on the replica owning req.Graph,
// failing over along the ring on transport failure (the failed replica
// is marked down so subsequent queries skip it). A replica's typed
// answer - including typed failures - returns without failover: it is
// the authoritative answer for that graph.
func (c *Cluster) Query(ctx context.Context, req api.Request) (*api.Response, error) {
	candidates := cluster.Route(c.ring, c.prober, req.Graph)
	if len(candidates) == 0 {
		return nil, errNoReplica(req.Graph)
	}
	var lastErr error
	for _, m := range candidates {
		resp, err := c.clients[m].Query(ctx, req)
		if err == nil {
			return resp, nil
		}
		if !errors.Is(err, ErrTransport) {
			return nil, err
		}
		c.failover(m)
		lastErr = err
		if ctx.Err() != nil {
			break
		}
	}
	return nil, fmt.Errorf("client: %w: every replica for graph %q failed: %w", ccsp.ErrUnavailable, req.Graph, lastErr)
}

// maxBatchRounds bounds Batch's failover loop: each round can only
// lose replicas (a retried position only re-routes after its replica
// was marked down), so the member count bounds useful rounds.
func (c *Cluster) maxBatchRounds() int { return len(c.clients) + 1 }

// Batch answers many requests, fanning the batch out as one sub-batch
// per owning replica, run concurrently, and merging the per-position
// responses back in request order. Per-position failures - typed query
// errors from a replica, and "no live replica holds this graph" 503s -
// answer in place with typed api.Errors; a dead replica never fails
// the whole batch. Positions orphaned by a replica dying mid-batch are
// re-routed to ring successors and, when none holds the graph, answer
// CodeUnavailable (convert with SentinelError for errors.Is dispatch).
func (c *Cluster) Batch(ctx context.Context, reqs []api.Request) ([]api.Response, error) {
	resps := make([]api.Response, len(reqs))
	pending := make([]int, len(reqs))
	for i := range reqs {
		pending[i] = i
	}
	for round := 0; round < c.maxBatchRounds() && len(pending) > 0; round++ {
		// Route every pending position to the first live holder of its
		// graph; positions with no live holder answer unavailable now.
		groups := make(map[string][]int)
		var order []string
		for _, i := range pending {
			candidates := cluster.Route(c.ring, c.prober, reqs[i].Graph)
			if len(candidates) == 0 {
				resps[i] = unavailableResponse(reqs[i])
				continue
			}
			m := candidates[0]
			if _, seen := groups[m]; !seen {
				order = append(order, m)
			}
			groups[m] = append(groups[m], i)
		}

		// One concurrent sub-batch per replica.
		var (
			wg    sync.WaitGroup
			mu    sync.Mutex
			retry []int
		)
		for _, m := range order {
			idxs := groups[m]
			wg.Add(1)
			go func(m string, idxs []int) {
				defer wg.Done()
				sub := make([]api.Request, len(idxs))
				for j, i := range idxs {
					sub[j] = reqs[i]
				}
				out, err := c.clients[m].Batch(ctx, sub)
				switch {
				case err == nil:
					for j, i := range idxs {
						resps[i] = out[j]
					}
				case errors.Is(err, ErrTransport) && ctx.Err() == nil:
					// The replica died mid-batch: down it and re-route its
					// positions next round.
					c.failover(m)
					mu.Lock()
					retry = append(retry, idxs...)
					mu.Unlock()
				default:
					// A typed whole-sub-batch failure (caller's context died,
					// oversized sub-batch, ...) answers its positions in place.
					apiErr := ccsp.APIError(err)
					for _, i := range idxs {
						resps[i] = api.Response{Kind: reqs[i].Kind, Graph: reqs[i].Graph, Error: apiErr}
					}
				}
			}(m, idxs)
		}
		wg.Wait()
		pending = retry
	}
	// Only reachable if replicas kept dying every round; the ring is out
	// of successors to try.
	for _, i := range pending {
		resps[i] = unavailableResponse(reqs[i])
	}
	return resps, nil
}

// Graph returns a view of the cluster scoped to one graph ID. Its
// method set mirrors *Client (and therefore *ccsp.Engine): each call
// builds the same typed request with Graph set and routes it through
// Cluster.Query, so code written against one daemon ports to a sharded
// cluster by swapping the receiver.
func (c *Cluster) Graph(id string) *GraphView { return &GraphView{c: c, graph: id} }

// GraphView is a single-graph facade over a Cluster; see Cluster.Graph.
type GraphView struct {
	c     *Cluster
	graph string
}

// Query answers one typed request against the view's graph. A request
// naming a different graph is rejected rather than silently rewritten.
func (g *GraphView) Query(ctx context.Context, req api.Request) (*api.Response, error) {
	if req.Graph != "" && req.Graph != g.graph {
		return nil, fmt.Errorf("client: %w: request names graph %q on a view of %q",
			ccsp.ErrInvalidOption, req.Graph, g.graph)
	}
	req.Graph = g.graph
	return g.c.Query(ctx, req)
}

// Batch answers many requests against the view's graph; see
// Cluster.Batch for the fan-out and error contract.
func (g *GraphView) Batch(ctx context.Context, reqs []api.Request) ([]api.Response, error) {
	scoped := make([]api.Request, len(reqs))
	for i, req := range reqs {
		if req.Graph != "" && req.Graph != g.graph {
			return nil, fmt.Errorf("client: %w: batch position %d names graph %q on a view of %q",
				ccsp.ErrInvalidOption, i, req.Graph, g.graph)
		}
		req.Graph = g.graph
		scoped[i] = req
	}
	return g.c.Batch(ctx, scoped)
}

// SSSP mirrors Client.SSSP.
func (g *GraphView) SSSP(ctx context.Context, source int) (*api.Response, error) {
	return g.Query(ctx, api.Request{Kind: api.KindSSSP, SSSP: &api.SSSPParams{Source: source}})
}

// MSSP mirrors Client.MSSP.
func (g *GraphView) MSSP(ctx context.Context, sources []int) (*api.Response, error) {
	return g.Query(ctx, api.Request{Kind: api.KindMSSP, MSSP: &api.MSSPParams{Sources: sources}})
}

// APSP mirrors Client.APSP.
func (g *GraphView) APSP(ctx context.Context) (*api.Response, error) {
	return g.Query(ctx, api.Request{Kind: api.KindAPSP})
}

// APSPWeighted mirrors Client.APSPWeighted.
func (g *GraphView) APSPWeighted(ctx context.Context) (*api.Response, error) {
	return g.apspVariant(ctx, api.APSPWeighted)
}

// APSPWeighted3 mirrors Client.APSPWeighted3.
func (g *GraphView) APSPWeighted3(ctx context.Context) (*api.Response, error) {
	return g.apspVariant(ctx, api.APSPWeighted3)
}

// APSPUnweighted mirrors Client.APSPUnweighted.
func (g *GraphView) APSPUnweighted(ctx context.Context) (*api.Response, error) {
	return g.apspVariant(ctx, api.APSPUnweighted)
}

func (g *GraphView) apspVariant(ctx context.Context, v api.APSPVariant) (*api.Response, error) {
	return g.Query(ctx, api.Request{Kind: api.KindAPSP, APSP: &api.APSPParams{Variant: v}})
}

// Distance mirrors Client.Distance.
func (g *GraphView) Distance(ctx context.Context, from, to int) (*api.Response, error) {
	return g.Query(ctx, api.Request{Kind: api.KindDistance, Distance: &api.DistanceParams{From: from, To: to}})
}

// Diameter mirrors Client.Diameter.
func (g *GraphView) Diameter(ctx context.Context) (*api.Response, error) {
	return g.Query(ctx, api.Request{Kind: api.KindDiameter})
}

// KNearest mirrors Client.KNearest.
func (g *GraphView) KNearest(ctx context.Context, k int) (*api.Response, error) {
	return g.Query(ctx, api.Request{Kind: api.KindKNearest, KNearest: &api.KNearestParams{K: k}})
}

// SourceDetection mirrors Client.SourceDetection.
func (g *GraphView) SourceDetection(ctx context.Context, sources []int, d, k int) (*api.Response, error) {
	return g.Query(ctx, api.Request{Kind: api.KindSourceDetection,
		SourceDetection: &api.SourceDetectionParams{Sources: sources, D: d, K: k}})
}

// Health probes the replica owning the view's graph, failing over like
// Query. It reports the serving replica's health, which in a cluster
// describes that replica's default graph shape - use it for liveness,
// not graph metadata.
func (g *GraphView) Health(ctx context.Context) (*api.Health, error) {
	candidates := cluster.Route(g.c.ring, g.c.prober, g.graph)
	if len(candidates) == 0 {
		return nil, errNoReplica(g.graph)
	}
	var lastErr error
	for _, m := range candidates {
		h, err := g.c.clients[m].Health(ctx)
		if err == nil {
			return h, nil
		}
		if !errors.Is(err, ErrTransport) {
			return nil, err
		}
		g.c.failover(m)
		lastErr = err
	}
	return nil, fmt.Errorf("client: %w: every replica for graph %q failed: %w", ccsp.ErrUnavailable, g.graph, lastErr)
}
