package client

import (
	"context"
	"errors"
	"math/rand"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"github.com/congestedclique/ccsp"
	"github.com/congestedclique/ccsp/api"
	"github.com/congestedclique/ccsp/internal/cluster"
	"github.com/congestedclique/ccsp/internal/server"
)

// buildEngine makes a small random connected weighted graph engine,
// sized differently per seed so graphs are distinguishable by their
// distance-vector lengths.
func buildEngine(t testing.TB, n int) *ccsp.Engine {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(n)))
	gr := ccsp.NewGraph(n)
	for v := 1; v < n; v++ {
		gr.MustAddEdge(v, rng.Intn(v), rng.Int63n(9)+1)
	}
	for e := 0; e < n; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			gr.MustAddEdge(u, v, rng.Int63n(9)+1)
		}
	}
	eng, err := ccsp.NewEngine(context.Background(), gr, ccsp.Options{Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// testCluster spins nReplicas real in-process daemons, places graphs
// onto them owner-only by the same ring the Cluster routes with, and
// returns the routing client plus the per-graph engines and servers.
// extraHolders lists graphs to ALSO register on their first ring
// successor, giving those graphs a live failover target.
func testCluster(t *testing.T, nReplicas int, graphs map[string]int, extraHolders []string) (*Cluster, map[string]*ccsp.Engine, map[string]*httptest.Server) {
	t.Helper()
	servers := make(map[string]*server.Server)
	tss := make(map[string]*httptest.Server)
	var members []string
	for i := 0; i < nReplicas; i++ {
		s, err := server.New(server.Config{Deferred: true})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(ts.Close)
		servers[ts.URL] = s
		tss[ts.URL] = ts
		members = append(members, ts.URL)
	}

	ring := cluster.NewRing(members, 0)
	extra := make(map[string]bool, len(extraHolders))
	for _, g := range extraHolders {
		extra[g] = true
	}
	engines := make(map[string]*ccsp.Engine, len(graphs))
	for g, n := range graphs {
		eng := buildEngine(t, n)
		engines[g] = eng
		owner, ok := ring.Owner(g)
		if !ok {
			t.Fatal("empty ring")
		}
		if err := servers[owner].AddGraph(g, eng); err != nil {
			t.Fatal(err)
		}
		if extra[g] {
			succ := ring.Successors(g)
			if len(succ) < 2 {
				t.Fatalf("graph %q needs a successor for failover, ring has %d members", g, len(succ))
			}
			if err := servers[succ[1]].AddGraph(g, eng); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, s := range servers {
		s.SetReady()
	}

	c := NewCluster(members, WithProbeInterval(time.Hour), WithProbeThreshold(1))
	t.Cleanup(c.Close)
	return c, engines, tss
}

var clusterGraphs = map[string]int{"alpha": 8, "beta": 10, "gamma": 12, "delta": 14, "omega": 9}

// spanCheck fails the test unless the ring spreads the test graphs over
// at least two replicas - otherwise the fan-out paths are vacuous.
func spanCheck(t *testing.T, c *Cluster) {
	t.Helper()
	owners := make(map[string]bool)
	for g := range clusterGraphs {
		o, _ := c.Owner(g)
		owners[o] = true
	}
	if len(owners) < 2 {
		t.Fatalf("placement spans %d replicas; test graphs must spread over >= 2", len(owners))
	}
}

// TestClusterRoutedQueries: every graph's query through the cluster
// equals the direct engine answer, for a placement spanning multiple
// replicas.
func TestClusterRoutedQueries(t *testing.T) {
	c, engines, _ := testCluster(t, 3, clusterGraphs, nil)
	spanCheck(t, c)
	ctx := context.Background()

	for g, eng := range engines {
		req := api.Request{Kind: api.KindSSSP, Graph: g, SSSP: &api.SSSPParams{Source: 1}}
		want, err := eng.Query(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Query(ctx, req)
		if err != nil {
			t.Fatalf("graph %s: %v", g, err)
		}
		got.Cached = want.Cached
		if !reflect.DeepEqual(got, want) {
			t.Errorf("graph %s: cluster answer differs from its engine\n got %+v\nwant %+v", g, got, want)
		}
	}

	// Unplaced graph: typed unavailable, errors.Is-dispatchable.
	if _, err := c.Query(ctx, api.Request{Kind: api.KindDiameter, Graph: "nowhere"}); !errors.Is(err, ccsp.ErrUnavailable) {
		t.Errorf("unplaced graph: err = %v, want ErrUnavailable", err)
	}
}

// TestClusterGraphView: the Engine-mirroring facade routes every method
// to the owning replica.
func TestClusterGraphView(t *testing.T) {
	c, engines, _ := testCluster(t, 3, clusterGraphs, nil)
	ctx := context.Background()
	v := c.Graph("beta")

	want, err := engines["beta"].Query(ctx, api.Request{Kind: api.KindMSSP, Graph: "beta", MSSP: &api.MSSPParams{Sources: []int{0, 3}}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := v.MSSP(ctx, []int{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	got.Cached = want.Cached
	if !reflect.DeepEqual(got, want) {
		t.Errorf("view MSSP differs from engine\n got %+v\nwant %+v", got, want)
	}
	if resp, err := v.Diameter(ctx); err != nil || resp.Graph != "beta" {
		t.Errorf("view Diameter = %+v, %v; want graph echo beta", resp, err)
	}
	if _, err := v.Query(ctx, api.Request{Kind: api.KindDiameter, Graph: "alpha"}); !errors.Is(err, ccsp.ErrInvalidOption) {
		t.Errorf("cross-graph request on a view: err = %v, want ErrInvalidOption", err)
	}
	if h, err := v.Health(ctx); err != nil || h.Status != "ok" {
		t.Errorf("view Health = %+v, %v", h, err)
	}
}

// TestClusterBatchFanout: one batch spanning every graph plus an
// unplaced one fans out per owning replica and merges back in request
// order; the unplaced position answers a typed in-place 503.
func TestClusterBatchFanout(t *testing.T) {
	c, engines, _ := testCluster(t, 3, clusterGraphs, nil)
	spanCheck(t, c)
	ctx := context.Background()

	var reqs []api.Request
	for _, g := range []string{"alpha", "beta", "gamma", "delta", "omega"} {
		reqs = append(reqs, api.Request{Kind: api.KindSSSP, Graph: g, SSSP: &api.SSSPParams{Source: 2}})
	}
	reqs = append(reqs, api.Request{Kind: api.KindDiameter, Graph: "nowhere"})
	reqs = append(reqs, api.Request{Kind: api.KindSSSP, Graph: "alpha", SSSP: &api.SSSPParams{Source: 999}}) // typed per-position failure

	resps, err := c.Batch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != len(reqs) {
		t.Fatalf("%d responses, want %d", len(resps), len(reqs))
	}
	for i, g := range []string{"alpha", "beta", "gamma", "delta", "omega"} {
		want, err := engines[g].Query(ctx, reqs[i])
		if err != nil {
			t.Fatal(err)
		}
		got := resps[i]
		got.Cached = want.Cached
		if !reflect.DeepEqual(got, *want) {
			t.Errorf("position %d (graph %s): cluster batch differs from engine\n got %+v\nwant %+v", i, g, got, *want)
		}
	}
	dead := resps[5]
	if dead.Error == nil || dead.Error.Code != api.CodeUnavailable {
		t.Errorf("unplaced position error = %+v, want unavailable", dead.Error)
	}
	if !errors.Is(SentinelError(dead.Error), ccsp.ErrUnavailable) {
		t.Error("unplaced position error does not dispatch to ErrUnavailable")
	}
	if bad := resps[6]; bad.Error == nil || bad.Error.Code != api.CodeInvalidSource {
		t.Errorf("typed per-position failure = %+v, want invalid_source", bad.Error)
	}
}

// TestClusterFailover: a graph registered on its owner AND first
// successor keeps answering after the owner dies; owner-only graphs on
// the dead replica degrade to typed 503s, and live replicas' graphs
// are untouched - both for queries and batch positions.
func TestClusterFailover(t *testing.T) {
	c, engines, tss := testCluster(t, 3, clusterGraphs, []string{"alpha"})
	spanCheck(t, c)
	ctx := context.Background()

	owner, _ := c.Owner("alpha")
	// Find a graph owned by the same replica as alpha (owner-only: it
	// dies with the replica) and one owned elsewhere (it must survive).
	var dying, surviving string
	for g := range clusterGraphs {
		if g == "alpha" {
			continue
		}
		if o, _ := c.Owner(g); o == owner {
			dying = g
		} else {
			surviving = g
		}
	}
	if surviving == "" {
		t.Fatal("no graph owned by another replica; enlarge the graph set")
	}

	tss[owner].Close() // SIGKILL-equivalent: connections refuse from here on

	// alpha has a live successor holding it: failover answers correctly.
	req := api.Request{Kind: api.KindSSSP, Graph: "alpha", SSSP: &api.SSSPParams{Source: 1}}
	want, err := engines["alpha"].Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Query(ctx, req)
	if err != nil {
		t.Fatalf("failover query: %v", err)
	}
	got.Cached = want.Cached
	if !reflect.DeepEqual(got, want) {
		t.Errorf("failover answer differs from engine\n got %+v\nwant %+v", got, want)
	}
	if alive := c.Live(); len(alive) != 2 {
		t.Errorf("Live() = %v after transport failure, want the 2 survivors", alive)
	}

	// Owner-only graph on the dead replica: typed unavailable.
	if dying != "" {
		if _, err := c.Query(ctx, api.Request{Kind: api.KindDiameter, Graph: dying}); !errors.Is(err, ccsp.ErrUnavailable) {
			t.Errorf("dead owner-only graph: err = %v, want ErrUnavailable", err)
		}
	}

	// Mixed batch: surviving positions answer, dead positions 503 in
	// place, never a whole-batch failure.
	reqs := []api.Request{
		{Kind: api.KindSSSP, Graph: surviving, SSSP: &api.SSSPParams{Source: 0}},
		{Kind: api.KindSSSP, Graph: "alpha", SSSP: &api.SSSPParams{Source: 0}},
	}
	if dying != "" {
		reqs = append(reqs, api.Request{Kind: api.KindDiameter, Graph: dying})
	}
	resps, err := c.Batch(ctx, reqs)
	if err != nil {
		t.Fatalf("batch with a dead replica: %v", err)
	}
	if resps[0].Error != nil || resps[1].Error != nil {
		t.Errorf("live positions errored: %+v / %+v", resps[0].Error, resps[1].Error)
	}
	wantSurv, err := engines[surviving].Query(ctx, reqs[0])
	if err != nil {
		t.Fatal(err)
	}
	r0 := resps[0]
	r0.Cached = wantSurv.Cached
	if !reflect.DeepEqual(r0, *wantSurv) {
		t.Errorf("surviving position differs from engine\n got %+v\nwant %+v", r0, *wantSurv)
	}
	if dying != "" {
		deadPos := resps[2]
		if deadPos.Error == nil || deadPos.Error.Code != api.CodeUnavailable {
			t.Errorf("dead position error = %+v, want unavailable", deadPos.Error)
		}
		if deadPos.Graph != dying || deadPos.Kind != api.KindDiameter {
			t.Errorf("dead position echo = graph %q kind %q", deadPos.Graph, deadPos.Kind)
		}
	}
}

// TestClusterRefreshRevival: a marked-down replica that answers probes
// again is routable after Refresh.
func TestClusterRefreshRevival(t *testing.T) {
	c, _, _ := testCluster(t, 3, clusterGraphs, nil)
	ctx := context.Background()
	owner, _ := c.Owner("alpha")

	// Simulate the data path downing the owner, then a probe sweep
	// discovering it healthy again.
	if _, err := c.Query(ctx, api.Request{Kind: api.KindDiameter, Graph: "alpha"}); err != nil {
		t.Fatal(err)
	}
	for _, m := range c.Members() {
		if m == owner {
			cProberMarkDown(c, m)
		}
	}
	if _, err := c.Query(ctx, api.Request{Kind: api.KindDiameter, Graph: "alpha"}); !errors.Is(err, ccsp.ErrUnavailable) {
		t.Fatalf("downed owner still routable: %v", err)
	}
	c.Refresh(ctx)
	if _, err := c.Query(ctx, api.Request{Kind: api.KindDiameter, Graph: "alpha"}); err != nil {
		t.Fatalf("revived owner not routable: %v", err)
	}
}

// cProberMarkDown reaches the prober for tests in this package.
func cProberMarkDown(c *Cluster, member string) { c.prober.MarkDown(member) }
