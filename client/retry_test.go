package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"github.com/congestedclique/ccsp"
)

// flakyServer answers 503 (the "still loading" status) to the first
// fail requests on /v1/query, then delegates to ok.
func flakyServer(t *testing.T, fail int64, ok http.Handler) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= fail {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":{"code":"unavailable","message":"loading snapshots"}}`)) //nolint:errcheck
			return
		}
		ok.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	return ts, &hits
}

func okDiameter() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"kind":"diameter","diameter":{"estimate":3}}`)) //nolint:errcheck
	})
}

// TestRetryRecoversTransient pins the satellite contract: with retries
// enabled a daemon that answers 503 twice then recovers is invisible to
// the caller; without them the first 503 is the answer.
func TestRetryRecoversTransient(t *testing.T) {
	ts, hits := flakyServer(t, 2, okDiameter())

	bare := New(ts.URL)
	if _, err := bare.Diameter(context.Background()); !errors.Is(err, ccsp.ErrUnavailable) {
		t.Fatalf("retry-less client: err = %v, want ErrUnavailable", err)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("retry-less client sent %d requests, want 1", got)
	}

	hits.Store(0)
	ts2, hits2 := flakyServer(t, 2, okDiameter())
	retrying := New(ts2.URL, WithRetry(3, time.Millisecond))
	resp, err := retrying.Diameter(context.Background())
	if err != nil {
		t.Fatalf("retrying client: %v", err)
	}
	if resp.Diameter == nil || resp.Diameter.Estimate != 3 {
		t.Fatalf("retrying client answer = %+v", resp)
	}
	if got := hits2.Load(); got != 3 {
		t.Fatalf("retrying client sent %d requests, want 3 (2 failures + 1 success)", got)
	}
}

// TestRetryExhaustion: when the budget runs out the last typed error
// surfaces.
func TestRetryExhaustion(t *testing.T) {
	ts, hits := flakyServer(t, 1<<30, okDiameter())
	c := New(ts.URL, WithRetry(2, time.Millisecond))
	if _, err := c.Diameter(context.Background()); !errors.Is(err, ccsp.ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable after exhausted retries", err)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("sent %d requests, want 3 (initial + 2 retries)", got)
	}
}

// TestRetrySkipsTypedFailures: deterministic query errors are answers,
// not transients - exactly one request goes out.
func TestRetrySkipsTypedFailures(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusUnprocessableEntity)
		w.Write([]byte(`{"error":{"code":"invalid_source","message":"source 999 out of range"}}`)) //nolint:errcheck
	}))
	t.Cleanup(ts.Close)
	c := New(ts.URL, WithRetry(5, time.Millisecond))
	if _, err := c.SSSP(context.Background(), 999); !errors.Is(err, ccsp.ErrInvalidSource) {
		t.Fatalf("err = %v, want ErrInvalidSource", err)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("typed failure retried: %d requests, want 1", got)
	}
}

// TestRetryTransportFailure: a connection-refused round trip is
// retryable, and exhausting the budget surfaces ErrTransport.
func TestRetryTransportFailure(t *testing.T) {
	c := New("http://127.0.0.1:1", WithRetry(1, time.Millisecond))
	_, err := c.Diameter(context.Background())
	if !errors.Is(err, ErrTransport) {
		t.Fatalf("err = %v, want ErrTransport", err)
	}
}

// TestBackoffDelay pins the sleep-selection table: exponential growth,
// the maxBackoff cap, and the Retry-After floor an overloaded daemon
// imposes on it.
func TestBackoffDelay(t *testing.T) {
	for name, tc := range map[string]struct {
		base    time.Duration
		attempt int
		floor   time.Duration
		want    time.Duration
	}{
		"exponential":        {100 * time.Millisecond, 2, 0, 400 * time.Millisecond},
		"capped":             {time.Second, 10, 0, maxBackoff},
		"overflow":           {time.Second, 62, 0, maxBackoff},
		"floor-raises":       {time.Millisecond, 0, time.Second, time.Second},
		"floor-ignored":      {4 * time.Second, 1, time.Second, maxBackoff},
		"floor-capped":       {time.Millisecond, 0, time.Minute, maxBackoff},
		"zero-base-defaults": {0, 0, 0, defaultRetryBase},
	} {
		if got := backoffDelay(tc.base, tc.attempt, tc.floor); got != tc.want {
			t.Errorf("%s: backoffDelay(%v, %d, %v) = %v, want %v",
				name, tc.base, tc.attempt, tc.floor, got, tc.want)
		}
	}
}

// TestParseRetryAfter: integer seconds parse (capped), everything else
// degrades to "no hint".
func TestParseRetryAfter(t *testing.T) {
	for h, want := range map[string]time.Duration{
		"1":                             time.Second,
		" 2 ":                           2 * time.Second,
		"9999":                          maxBackoff,
		"0":                             0,
		"-3":                            0,
		"":                              0,
		"bogus":                         0,
		"1.5":                           0,
		"Thu, 01 Jan 2026 00:00:00 GMT": 0,
	} {
		if got := parseRetryAfter(h); got != want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", h, got, want)
		}
	}
}

// TestRetryHonorsRetryAfter is the end-to-end timing half: a 503 with
// Retry-After: 1 must hold the retry back for at least a second even
// though the configured base is a millisecond.
func TestRetryHonorsRetryAfter(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":{"code":"overloaded","message":"shed"}}`)) //nolint:errcheck
			return
		}
		okDiameter().ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)

	c := New(ts.URL, WithRetry(1, time.Millisecond))
	start := time.Now()
	if _, err := c.Diameter(context.Background()); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < time.Second {
		t.Fatalf("retried after %v, want >= the 1s Retry-After hint", elapsed)
	}
	if got := hits.Load(); got != 2 {
		t.Fatalf("sent %d requests, want 2", got)
	}
}

// TestRetryOverloadedExhaustion: a daemon that sheds every attempt
// surfaces ErrOverloaded (typed, dispatchable) once the budget runs out
// - and the shed 503 counts as retryable in the first place.
func TestRetryOverloadedExhaustion(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":{"code":"overloaded","message":"shed"}}`)) //nolint:errcheck
	}))
	t.Cleanup(ts.Close)

	c := New(ts.URL, WithRetry(2, time.Millisecond))
	_, err := c.Diameter(context.Background())
	if !errors.Is(err, ccsp.ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("sent %d requests, want 3 (initial + 2 retries)", got)
	}
}

// TestRetryHonorsContext: a dead context stops the backoff loop
// promptly instead of sleeping through the remaining budget (50
// retries x 50ms would be seconds).
func TestRetryHonorsContext(t *testing.T) {
	ts, _ := flakyServer(t, 1<<30, okDiameter())
	c := New(ts.URL, WithRetry(50, 50*time.Millisecond))
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Diameter(ctx)
	if err == nil {
		t.Fatal("want error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("retry loop outlived its context by %v", elapsed)
	}
}
