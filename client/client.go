// Package client is the Go client of the ccspd query plane: it speaks
// POST /v1/query and /v1/batch (the api package's wire schema) and maps
// HTTP failures back onto the ccsp typed-error taxonomy, so code written
// against a local ccsp.Engine ports to a remote daemon by swapping the
// receiver - the method set mirrors the Engine's, errors.Is dispatch
// included:
//
//	c := client.New("http://localhost:8080")
//	resp, err := c.MSSP(ctx, []int{0, 5, 9})
//	switch {
//	case errors.Is(err, ccsp.ErrInvalidSource): // 422 invalid_source
//	case errors.Is(err, ccsp.ErrCanceled):      // canceled or timed out
//	}
//
// Every method returns the full *api.Response (typed result + run stats
// + cache flag); Batch returns one response per request with per-request
// errors in place, exactly like Engine.Batch.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/congestedclique/ccsp"
	"github.com/congestedclique/ccsp/api"
)

// Client talks to one ccspd daemon. It is safe for concurrent use.
type Client struct {
	base      string
	hc        *http.Client
	retries   int
	retryBase time.Duration
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (custom
// timeouts, transports, instrumentation), replacing the dedicated
// default transport.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithRetry enables bounded retries of transiently failed requests:
// transport errors (connection refused or reset - ErrTransport) and
// 502/503 statuses, which a restarting or not-yet-ready daemon emits.
// A failed attempt retries up to n more times, sleeping base, 2·base,
// 4·base, ... between attempts (capped at maxBackoff) with up to 50%
// random jitter added so competing clients decorrelate. A 503 carrying
// a Retry-After hint (an overloaded daemon shedding load) raises the
// sleep to at least the hinted duration. Typed query failures (invalid
// source, round limit, unknown graph, ...) never retry: they are
// deterministic answers, not transients. Off by default.
func WithRetry(n int, base time.Duration) Option {
	return func(c *Client) {
		if n > 0 {
			c.retries = n
		}
		if base > 0 {
			c.retryBase = base
		}
	}
}

// defaultRetryBase is the first backoff sleep when WithRetry leaves the
// base unset.
const defaultRetryBase = 100 * time.Millisecond

// defaultHTTPClient builds the transport a Client uses unless
// WithHTTPClient overrides it. Unlike http.DefaultClient it bounds
// every connection-establishment phase, so a black-holed daemon
// surfaces as a typed transport failure in seconds instead of hanging
// a goroutine forever. There is deliberately no overall request
// deadline: large queries legitimately run for minutes under a
// generous server timeout - bound them with a context instead.
func defaultHTTPClient() *http.Client {
	return &http.Client{
		Transport: &http.Transport{
			Proxy: http.ProxyFromEnvironment,
			DialContext: (&net.Dialer{
				Timeout:   10 * time.Second,
				KeepAlive: 30 * time.Second,
			}).DialContext,
			TLSHandshakeTimeout:   10 * time.Second,
			ExpectContinueTimeout: time.Second,
			IdleConnTimeout:       90 * time.Second,
			MaxIdleConnsPerHost:   16,
		},
	}
}

// New returns a client for the daemon at baseURL (e.g.
// "http://localhost:8080"; a trailing slash is tolerated).
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base:      strings.TrimRight(baseURL, "/"),
		hc:        defaultHTTPClient(),
		retryBase: defaultRetryBase,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Query answers one typed request via POST /v1/query.
func (c *Client) Query(ctx context.Context, req api.Request) (*api.Response, error) {
	var resp api.Response
	if err := c.post(ctx, "/v1/query", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Batch answers many requests via POST /v1/batch: one response per
// request, per-request typed errors in place (inspect Response.Error /
// Response.Err), mirroring Engine.Batch. The error return covers
// transport and whole-batch failures only.
func (c *Client) Batch(ctx context.Context, reqs []api.Request) ([]api.Response, error) {
	var br api.BatchResponse
	if err := c.post(ctx, "/v1/batch", api.BatchRequest{Requests: reqs}, &br); err != nil {
		return nil, err
	}
	if len(br.Responses) != len(reqs) {
		return nil, fmt.Errorf("client: batch answered %d of %d requests", len(br.Responses), len(reqs))
	}
	return br.Responses, nil
}

// SSSP mirrors Engine.SSSP: exact single-source distances (Theorem 33).
func (c *Client) SSSP(ctx context.Context, source int) (*api.Response, error) {
	return c.Query(ctx, api.Request{Kind: api.KindSSSP, SSSP: &api.SSSPParams{Source: source}})
}

// MSSP mirrors Engine.MSSP: (1+ε)-approximate multi-source distances
// (Theorem 3).
func (c *Client) MSSP(ctx context.Context, sources []int) (*api.Response, error) {
	return c.Query(ctx, api.Request{Kind: api.KindMSSP, MSSP: &api.MSSPParams{Sources: sources}})
}

// APSP mirrors Engine.APSP: the auto variant, resolved server-side to
// the strongest guarantee for the graph.
func (c *Client) APSP(ctx context.Context) (*api.Response, error) {
	return c.Query(ctx, api.Request{Kind: api.KindAPSP})
}

// APSPWeighted mirrors Engine.APSPWeighted (Theorem 28).
func (c *Client) APSPWeighted(ctx context.Context) (*api.Response, error) {
	return c.apspVariant(ctx, api.APSPWeighted)
}

// APSPWeighted3 mirrors Engine.APSPWeighted3 (§6.1).
func (c *Client) APSPWeighted3(ctx context.Context) (*api.Response, error) {
	return c.apspVariant(ctx, api.APSPWeighted3)
}

// APSPUnweighted mirrors Engine.APSPUnweighted (Theorem 31).
func (c *Client) APSPUnweighted(ctx context.Context) (*api.Response, error) {
	return c.apspVariant(ctx, api.APSPUnweighted)
}

func (c *Client) apspVariant(ctx context.Context, v api.APSPVariant) (*api.Response, error) {
	return c.Query(ctx, api.Request{Kind: api.KindAPSP, APSP: &api.APSPParams{Variant: v}})
}

// Distance answers one (1+ε)-approximate pair.
func (c *Client) Distance(ctx context.Context, from, to int) (*api.Response, error) {
	return c.Query(ctx, api.Request{Kind: api.KindDistance, Distance: &api.DistanceParams{From: from, To: to}})
}

// Diameter mirrors Engine.Diameter (§7.2).
func (c *Client) Diameter(ctx context.Context) (*api.Response, error) {
	return c.Query(ctx, api.Request{Kind: api.KindDiameter})
}

// KNearest mirrors Engine.KNearest (Theorem 18).
func (c *Client) KNearest(ctx context.Context, k int) (*api.Response, error) {
	return c.Query(ctx, api.Request{Kind: api.KindKNearest, KNearest: &api.KNearestParams{K: k}})
}

// SourceDetection mirrors Engine.SourceDetection (Theorem 19).
func (c *Client) SourceDetection(ctx context.Context, sources []int, d, k int) (*api.Response, error) {
	return c.Query(ctx, api.Request{Kind: api.KindSourceDetection,
		SourceDetection: &api.SourceDetectionParams{Sources: sources, D: d, K: k}})
}

// Update applies a batch of edge mutations to a dynamic graph via
// POST /v1/update, blocking until the background rebuild publishes the
// carrying epoch: on return, queries already reflect the batch.
// graph "" targets the daemon's default graph. Retries (WithRetry) are
// safe: updates are absolute (set-weight / delete), so replaying a
// batch is idempotent.
func (c *Client) Update(ctx context.Context, graph string, ups []api.EdgeUpdate) (*api.UpdateResponse, error) {
	return c.update(ctx, api.UpdateRequest{Graph: graph, Updates: ups})
}

// UpdateAsync stages the batch and returns as soon as the daemon
// assigned it an epoch, without waiting for the rebuild; poll Epoch
// until it reaches the returned value to observe the batch.
func (c *Client) UpdateAsync(ctx context.Context, graph string, ups []api.EdgeUpdate) (*api.UpdateResponse, error) {
	return c.update(ctx, api.UpdateRequest{Graph: graph, Updates: ups, Async: true})
}

func (c *Client) update(ctx context.Context, req api.UpdateRequest) (*api.UpdateResponse, error) {
	var resp api.UpdateResponse
	if err := c.post(ctx, "/v1/update", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Epoch calls GET /v1/epoch: the serving epoch of one graph ("" = the
// default graph), with the daemon's count of staged-but-unpublished
// updates.
func (c *Client) Epoch(ctx context.Context, graph string) (*api.EpochResponse, error) {
	url := c.base + "/v1/epoch"
	if graph != "" {
		url += "?graph=" + graph // the graph ID charset needs no escaping
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, transportError(ctx, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		return nil, transportError(ctx, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, statusError("/v1/epoch", resp.StatusCode, body)
	}
	var er api.EpochResponse
	if err := json.Unmarshal(body, &er); err != nil {
		return nil, fmt.Errorf("client: /v1/epoch: bad JSON: %w", err)
	}
	return &er, nil
}

// Health calls GET /healthz: daemon liveness plus the served graph's
// shape.
func (c *Client) Health(ctx context.Context) (*api.Health, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, transportError(ctx, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		return nil, transportError(ctx, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("client: healthz: status %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	var h api.Health
	if err := json.Unmarshal(body, &h); err != nil {
		return nil, fmt.Errorf("client: healthz: bad JSON: %w", err)
	}
	return &h, nil
}

// maxResponseBytes caps decoded response bodies. All-pairs matrices grow
// with n²; 1 GiB admits n ≈ 10⁴ with room to spare while still bounding
// a misbehaving endpoint.
const maxResponseBytes = 1 << 30

// post sends one JSON body and decodes the response, translating
// non-200 statuses through the typed-error taxonomy and retrying
// transient failures when WithRetry enabled them.
func (c *Client) post(ctx context.Context, path string, in, out interface{}) error {
	payload, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("client: encode %s: %w", path, err)
	}
	for attempt := 0; ; attempt++ {
		retryable, retryAfter, err := c.postOnce(ctx, path, payload, out)
		if err == nil {
			return nil
		}
		if !retryable || attempt >= c.retries || ctx.Err() != nil {
			return err
		}
		if serr := sleepBackoff(ctx, c.retryBase, attempt, retryAfter); serr != nil {
			return err
		}
	}
}

// postOnce runs one round trip. The bool classifies a failure as
// transient - a transport error, or a 502/503 status (a daemon still
// loading snapshots, shedding under admission control, or a proxy whose
// upstream died) - and therefore eligible for retry; typed query
// failures are final. On a retryable status the returned duration
// carries the server's Retry-After hint (0 when absent).
func (c *Client) postOnce(ctx context.Context, path string, payload []byte, out interface{}) (bool, time.Duration, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(payload))
	if err != nil {
		return false, 0, fmt.Errorf("client: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		terr := transportError(ctx, err)
		return errors.Is(terr, ErrTransport), 0, terr
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		terr := transportError(ctx, err)
		return errors.Is(terr, ErrTransport), 0, terr
	}
	if resp.StatusCode != http.StatusOK {
		retryable := resp.StatusCode == http.StatusBadGateway || resp.StatusCode == http.StatusServiceUnavailable
		return retryable, parseRetryAfter(resp.Header.Get("Retry-After")), statusError(path, resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, out); err != nil {
		return false, 0, fmt.Errorf("client: %s: bad JSON response: %w", path, err)
	}
	return false, 0, nil
}

// parseRetryAfter reads an integer-seconds Retry-After hint (the only
// form ccspd emits; HTTP-date forms are ignored), capped at maxBackoff.
func parseRetryAfter(h string) time.Duration {
	secs, err := strconv.Atoi(strings.TrimSpace(h))
	if err != nil || secs <= 0 {
		return 0
	}
	d := time.Duration(secs) * time.Second
	if d > maxBackoff {
		d = maxBackoff
	}
	return d
}

// maxBackoff caps one backoff sleep, so a long retry budget degrades
// into steady polling instead of ever-longer silences.
const maxBackoff = 5 * time.Second

// backoffDelay computes the pre-jitter sleep before the retry after
// `attempt`: exponential base·2^attempt capped at maxBackoff, raised to
// the server's Retry-After floor when one arrived - an overloaded
// daemon knows its own drain time better than our exponential guess.
func backoffDelay(base time.Duration, attempt int, floor time.Duration) time.Duration {
	if base <= 0 {
		base = defaultRetryBase
	}
	d := base << uint(attempt)
	if d <= 0 || d > maxBackoff { // <= 0 catches shift overflow
		d = maxBackoff
	}
	if floor > d {
		d = floor
	}
	if d > maxBackoff {
		d = maxBackoff
	}
	return d
}

// sleepBackoff sleeps backoffDelay plus up to 50% jitter (so competing
// clients decorrelate), returning early (with the context's error) if
// ctx dies first.
func sleepBackoff(ctx context.Context, base time.Duration, attempt int, floor time.Duration) error {
	d := backoffDelay(base, attempt, floor)
	d += time.Duration(rand.Int63n(int64(d)/2 + 1))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// ErrTransport marks a round trip that never produced a daemon answer:
// connection refused or reset, DNS failure, a torn response body.
// Cluster routing treats it as evidence the replica is gone (mark down
// and fail over); WithRetry treats it as transient. It is distinct
// from cancellation - a dead caller context takes precedence and maps
// to ccsp.ErrCanceled instead.
var ErrTransport = errors.New("client: transport failure")

// transportError classifies a failed round trip: if the caller's context
// died, the error joins the ccsp cancellation taxonomy (ErrCanceled plus
// the context's own sentinel, like every Engine method); otherwise it
// wraps ErrTransport.
func transportError(ctx context.Context, err error) error {
	if ctxErr := ctx.Err(); ctxErr != nil {
		return fmt.Errorf("client: %w: %w", ccsp.ErrCanceled, ctxErr)
	}
	return fmt.Errorf("%w: %w", ErrTransport, err)
}

// statusError maps a non-200 response back onto the typed taxonomy via
// the api.Error envelope. Responses without a decodable envelope (a
// proxy's HTML error page, say) degrade to a plain error carrying the
// status and body.
func statusError(path string, status int, body []byte) error {
	var envelope struct {
		Error *api.Error `json:"error"`
	}
	if err := json.Unmarshal(body, &envelope); err != nil || envelope.Error == nil {
		return fmt.Errorf("client: %s: status %d: %s", path, status, strings.TrimSpace(string(body)))
	}
	return fmt.Errorf("client: %s: %w", path, SentinelError(envelope.Error))
}

// SentinelError converts a typed api.Error into a Go error wrapping the
// matching ccsp sentinel, so errors.Is dispatch works identically
// whether a failure arrived as an HTTP status (surfaced by Query) or
// in place inside a batch position (Response.Error):
//
//	canceled           ErrCanceled (+ context.Canceled)
//	deadline_exceeded  ErrCanceled (+ context.DeadlineExceeded; a
//	                   server-side per-request timeout fired)
//	round_limit        ErrRoundLimit
//	invalid_source     ErrInvalidSource
//	invalid_option     ErrInvalidOption
//	malformed          api.ErrMalformed
//	unknown_graph      ErrUnknownGraph
//	unavailable        ErrUnavailable
//	overloaded         ErrOverloaded (the daemon shed the request under
//	                   admission control; WithRetry backs off and retries)
//
// Unrecognized codes pass through as the *api.Error itself.
func SentinelError(e *api.Error) error {
	switch e.Code {
	case api.CodeCanceled:
		return fmt.Errorf("%w: %w: %s", ccsp.ErrCanceled, context.Canceled, e.Message)
	case api.CodeDeadline:
		return fmt.Errorf("%w: %w: %s", ccsp.ErrCanceled, context.DeadlineExceeded, e.Message)
	case api.CodeRoundLimit:
		return fmt.Errorf("%w: %s", ccsp.ErrRoundLimit, e.Message)
	case api.CodeInvalidSource:
		return fmt.Errorf("%w: %s", ccsp.ErrInvalidSource, e.Message)
	case api.CodeInvalidOption:
		return fmt.Errorf("%w: %s", ccsp.ErrInvalidOption, e.Message)
	case api.CodeMalformed:
		return fmt.Errorf("%w: %s", api.ErrMalformed, e.Message)
	case api.CodeUnknownGraph:
		return fmt.Errorf("%w: %s", ccsp.ErrUnknownGraph, e.Message)
	case api.CodeUnavailable:
		return fmt.Errorf("%w: %s", ccsp.ErrUnavailable, e.Message)
	case api.CodeOverloaded:
		return fmt.Errorf("%w: %s", ccsp.ErrOverloaded, e.Message)
	default:
		return e
	}
}
