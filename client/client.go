// Package client is the Go client of the ccspd query plane: it speaks
// POST /v1/query and /v1/batch (the api package's wire schema) and maps
// HTTP failures back onto the ccsp typed-error taxonomy, so code written
// against a local ccsp.Engine ports to a remote daemon by swapping the
// receiver - the method set mirrors the Engine's, errors.Is dispatch
// included:
//
//	c := client.New("http://localhost:8080")
//	resp, err := c.MSSP(ctx, []int{0, 5, 9})
//	switch {
//	case errors.Is(err, ccsp.ErrInvalidSource): // 422 invalid_source
//	case errors.Is(err, ccsp.ErrCanceled):      // canceled or timed out
//	}
//
// Every method returns the full *api.Response (typed result + run stats
// + cache flag); Batch returns one response per request with per-request
// errors in place, exactly like Engine.Batch.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"github.com/congestedclique/ccsp"
	"github.com/congestedclique/ccsp/api"
)

// Client talks to one ccspd daemon. It is safe for concurrent use.
type Client struct {
	base string
	hc   *http.Client
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, instrumentation). The default is http.DefaultClient.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// New returns a client for the daemon at baseURL (e.g.
// "http://localhost:8080"; a trailing slash is tolerated).
func New(baseURL string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(baseURL, "/"), hc: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Query answers one typed request via POST /v1/query.
func (c *Client) Query(ctx context.Context, req api.Request) (*api.Response, error) {
	var resp api.Response
	if err := c.post(ctx, "/v1/query", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Batch answers many requests via POST /v1/batch: one response per
// request, per-request typed errors in place (inspect Response.Error /
// Response.Err), mirroring Engine.Batch. The error return covers
// transport and whole-batch failures only.
func (c *Client) Batch(ctx context.Context, reqs []api.Request) ([]api.Response, error) {
	var br api.BatchResponse
	if err := c.post(ctx, "/v1/batch", api.BatchRequest{Requests: reqs}, &br); err != nil {
		return nil, err
	}
	if len(br.Responses) != len(reqs) {
		return nil, fmt.Errorf("client: batch answered %d of %d requests", len(br.Responses), len(reqs))
	}
	return br.Responses, nil
}

// SSSP mirrors Engine.SSSP: exact single-source distances (Theorem 33).
func (c *Client) SSSP(ctx context.Context, source int) (*api.Response, error) {
	return c.Query(ctx, api.Request{Kind: api.KindSSSP, SSSP: &api.SSSPParams{Source: source}})
}

// MSSP mirrors Engine.MSSP: (1+ε)-approximate multi-source distances
// (Theorem 3).
func (c *Client) MSSP(ctx context.Context, sources []int) (*api.Response, error) {
	return c.Query(ctx, api.Request{Kind: api.KindMSSP, MSSP: &api.MSSPParams{Sources: sources}})
}

// APSP mirrors Engine.APSP: the auto variant, resolved server-side to
// the strongest guarantee for the graph.
func (c *Client) APSP(ctx context.Context) (*api.Response, error) {
	return c.Query(ctx, api.Request{Kind: api.KindAPSP})
}

// APSPWeighted mirrors Engine.APSPWeighted (Theorem 28).
func (c *Client) APSPWeighted(ctx context.Context) (*api.Response, error) {
	return c.apspVariant(ctx, api.APSPWeighted)
}

// APSPWeighted3 mirrors Engine.APSPWeighted3 (§6.1).
func (c *Client) APSPWeighted3(ctx context.Context) (*api.Response, error) {
	return c.apspVariant(ctx, api.APSPWeighted3)
}

// APSPUnweighted mirrors Engine.APSPUnweighted (Theorem 31).
func (c *Client) APSPUnweighted(ctx context.Context) (*api.Response, error) {
	return c.apspVariant(ctx, api.APSPUnweighted)
}

func (c *Client) apspVariant(ctx context.Context, v api.APSPVariant) (*api.Response, error) {
	return c.Query(ctx, api.Request{Kind: api.KindAPSP, APSP: &api.APSPParams{Variant: v}})
}

// Distance answers one (1+ε)-approximate pair.
func (c *Client) Distance(ctx context.Context, from, to int) (*api.Response, error) {
	return c.Query(ctx, api.Request{Kind: api.KindDistance, Distance: &api.DistanceParams{From: from, To: to}})
}

// Diameter mirrors Engine.Diameter (§7.2).
func (c *Client) Diameter(ctx context.Context) (*api.Response, error) {
	return c.Query(ctx, api.Request{Kind: api.KindDiameter})
}

// KNearest mirrors Engine.KNearest (Theorem 18).
func (c *Client) KNearest(ctx context.Context, k int) (*api.Response, error) {
	return c.Query(ctx, api.Request{Kind: api.KindKNearest, KNearest: &api.KNearestParams{K: k}})
}

// SourceDetection mirrors Engine.SourceDetection (Theorem 19).
func (c *Client) SourceDetection(ctx context.Context, sources []int, d, k int) (*api.Response, error) {
	return c.Query(ctx, api.Request{Kind: api.KindSourceDetection,
		SourceDetection: &api.SourceDetectionParams{Sources: sources, D: d, K: k}})
}

// Health calls GET /healthz: daemon liveness plus the served graph's
// shape.
func (c *Client) Health(ctx context.Context) (*api.Health, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, transportError(ctx, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		return nil, transportError(ctx, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("client: healthz: status %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	var h api.Health
	if err := json.Unmarshal(body, &h); err != nil {
		return nil, fmt.Errorf("client: healthz: bad JSON: %w", err)
	}
	return &h, nil
}

// maxResponseBytes caps decoded response bodies. All-pairs matrices grow
// with n²; 1 GiB admits n ≈ 10⁴ with room to spare while still bounding
// a misbehaving endpoint.
const maxResponseBytes = 1 << 30

// post sends one JSON body and decodes the response, translating non-200
// statuses through the typed-error taxonomy.
func (c *Client) post(ctx context.Context, path string, in, out interface{}) error {
	payload, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("client: encode %s: %w", path, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(payload))
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return transportError(ctx, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		return transportError(ctx, err)
	}
	if resp.StatusCode != http.StatusOK {
		return statusError(path, resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("client: %s: bad JSON response: %w", path, err)
	}
	return nil
}

// transportError classifies a failed round trip: if the caller's context
// died, the error joins the ccsp cancellation taxonomy (ErrCanceled plus
// the context's own sentinel, like every Engine method); otherwise it is
// a plain transport error.
func transportError(ctx context.Context, err error) error {
	if ctxErr := ctx.Err(); ctxErr != nil {
		return fmt.Errorf("client: %w: %w", ccsp.ErrCanceled, ctxErr)
	}
	return fmt.Errorf("client: %w", err)
}

// statusError maps a non-200 response back onto the typed taxonomy via
// the api.Error envelope, so errors.Is against the ccsp sentinels works
// identically for local and remote engines:
//
//	canceled           ErrCanceled (+ context.Canceled)
//	deadline_exceeded  ErrCanceled (+ context.DeadlineExceeded; the
//	                   server's per-request timeout fired)
//	round_limit        ErrRoundLimit
//	invalid_source     ErrInvalidSource
//	invalid_option     ErrInvalidOption
//	malformed          api.ErrMalformed
//
// Responses without a decodable envelope (a proxy's HTML error page, say)
// degrade to a plain error carrying the status and body.
func statusError(path string, status int, body []byte) error {
	var envelope struct {
		Error *api.Error `json:"error"`
	}
	if err := json.Unmarshal(body, &envelope); err != nil || envelope.Error == nil {
		return fmt.Errorf("client: %s: status %d: %s", path, status, strings.TrimSpace(string(body)))
	}
	e := envelope.Error
	switch e.Code {
	case api.CodeCanceled:
		return fmt.Errorf("client: %s: %w: %w: %s", path, ccsp.ErrCanceled, context.Canceled, e.Message)
	case api.CodeDeadline:
		return fmt.Errorf("client: %s: %w: %w: %s", path, ccsp.ErrCanceled, context.DeadlineExceeded, e.Message)
	case api.CodeRoundLimit:
		return fmt.Errorf("client: %s: %w: %s", path, ccsp.ErrRoundLimit, e.Message)
	case api.CodeInvalidSource:
		return fmt.Errorf("client: %s: %w: %s", path, ccsp.ErrInvalidSource, e.Message)
	case api.CodeInvalidOption:
		return fmt.Errorf("client: %s: %w: %s", path, ccsp.ErrInvalidOption, e.Message)
	case api.CodeMalformed:
		return fmt.Errorf("client: %s: %w: %s", path, api.ErrMalformed, e.Message)
	default:
		return fmt.Errorf("client: %s: status %d (%s): %s", path, status, e.Code, e.Message)
	}
}
