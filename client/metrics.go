package client

import "github.com/congestedclique/ccsp/internal/telemetry"

// Cluster routing telemetry, recorded into the process-global registry
// (a ccspd daemon does not serve these - they live in whatever process
// hosts the routing client, e.g. ccload or an application embedding
// Cluster; expose them with telemetry.Handler(telemetry.Default)).
var metFailovers = telemetry.Default.Counter("ccsp_cluster_failovers_total",
	"Data-path failovers: a replica's transport failure re-routed work to the next ring candidate.")

// failover records one data-path failover: the caller marked a replica
// down after a transport failure and is moving on along the ring.
func (c *Cluster) failover(member string) {
	c.prober.MarkDown(member)
	metFailovers.Inc()
}
