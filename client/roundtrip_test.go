package client

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"github.com/congestedclique/ccsp"
	"github.com/congestedclique/ccsp/api"
	"github.com/congestedclique/ccsp/internal/server"
)

// harness spins a real HTTP server over a warm engine and a client
// pointed at it - the full wire round trip, in process.
func harness(t testing.TB, n int, cfg server.Config) (*ccsp.Engine, *Client) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(n) + 5))
	gr := ccsp.NewGraph(n)
	for v := 1; v < n; v++ {
		gr.MustAddEdge(v, rng.Intn(v), rng.Int63n(9)+1)
	}
	for e := 0; e < n; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			gr.MustAddEdge(u, v, rng.Int63n(9)+1)
		}
	}
	eng, err := ccsp.NewEngine(context.Background(), gr, ccsp.Options{Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Engine = eng
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return eng, New(ts.URL)
}

// TestRoundTripAllKinds: every api.Request kind through client → server
// → Engine equals the direct Engine.Query call - result payloads AND
// deterministic stats, via reflect.DeepEqual over the whole response.
func TestRoundTripAllKinds(t *testing.T) {
	eng, c := harness(t, 16, server.Config{CacheSize: -1}) // no cache: each remote call is a real run
	ctx := context.Background()

	reqs := map[string]api.Request{
		"sssp":             {Kind: api.KindSSSP, SSSP: &api.SSSPParams{Source: 3}},
		"mssp":             {Kind: api.KindMSSP, MSSP: &api.MSSPParams{Sources: []int{2, 5, 2}}},
		"apsp-auto":        {Kind: api.KindAPSP},
		"apsp-weighted3":   {Kind: api.KindAPSP, APSP: &api.APSPParams{Variant: api.APSPWeighted3}},
		"distance":         {Kind: api.KindDistance, Distance: &api.DistanceParams{From: 2, To: 9}},
		"diameter":         {Kind: api.KindDiameter},
		"knearest":         {Kind: api.KindKNearest, KNearest: &api.KNearestParams{K: 3}},
		"source-detection": {Kind: api.KindSourceDetection, SourceDetection: &api.SourceDetectionParams{Sources: []int{0, 5}, D: 3, K: 2}},
	}
	if len(reqs) < len(api.Kinds()) {
		t.Fatalf("round-trip covers %d kinds, schema has %d", len(reqs), len(api.Kinds()))
	}
	for name, req := range reqs {
		want, err := eng.Query(ctx, req)
		if err != nil {
			t.Fatalf("%s: direct: %v", name, err)
		}
		got, err := c.Query(ctx, req)
		if err != nil {
			t.Fatalf("%s: remote: %v", name, err)
		}
		got.Cached = want.Cached
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: remote response differs from direct Engine.Query\n got %+v\nwant %+v", name, got, want)
		}
	}
}

// TestRoundTripConvenienceMethods: the Engine-mirroring methods build
// the same requests the Engine answers.
func TestRoundTripConvenienceMethods(t *testing.T) {
	eng, c := harness(t, 12, server.Config{})
	ctx := context.Background()

	wantS, err := eng.SSSP(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := c.SSSP(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	for v, d := range wantS.Dist {
		want := d
		if want >= ccsp.Unreachable {
			want = api.Unreachable
		}
		if rs.SSSP.Dist[v] != want {
			t.Errorf("sssp dist[%d] = %d, want %d", v, rs.SSSP.Dist[v], want)
		}
	}
	if rs.SSSP.Iterations != wantS.Iterations {
		t.Errorf("iterations %d, want %d", rs.SSSP.Iterations, wantS.Iterations)
	}

	rm, err := c.MSSP(ctx, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rm.MSSP.Sources, []int{1, 4}) {
		t.Errorf("mssp sources %v", rm.MSSP.Sources)
	}

	ra, err := c.APSP(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ra.APSP.Variant != api.APSPWeighted {
		t.Errorf("auto variant %q on a weighted graph", ra.APSP.Variant)
	}
	ra3, err := c.APSPWeighted3(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ra3.APSP.Variant != api.APSPWeighted3 {
		t.Errorf("weighted3 variant %q", ra3.APSP.Variant)
	}

	rd, err := c.Distance(ctx, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rd.Distance.From != 0 || rd.Distance.To != 5 {
		t.Errorf("distance echo %+v", rd.Distance)
	}
	if _, err := c.Diameter(ctx); err != nil {
		t.Fatal(err)
	}
	rk, err := c.KNearest(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rk.KNearest.K != 2 || len(rk.KNearest.Neighbors) != 12 {
		t.Errorf("knearest shape %+v", rk.KNearest)
	}
	rsd, err := c.SourceDetection(ctx, []int{0, 3}, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rsd.SourceDetection.D != 3 || rsd.SourceDetection.K != 2 {
		t.Errorf("source-detection echo %+v", rsd.SourceDetection)
	}

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Nodes != 12 {
		t.Errorf("health %+v", h)
	}
}

// TestRoundTripTypedErrors is the errors.Is identity half of the
// round-trip contract: remote failures dispatch on the same sentinels as
// local Engine calls.
func TestRoundTripTypedErrors(t *testing.T) {
	_, c := harness(t, 10, server.Config{})
	ctx := context.Background()

	if _, err := c.SSSP(ctx, 999); !errors.Is(err, ccsp.ErrInvalidSource) {
		t.Errorf("remote out-of-range source: %v, want ErrInvalidSource", err)
	}
	if _, err := c.MSSP(ctx, nil); !errors.Is(err, ccsp.ErrInvalidSource) {
		t.Errorf("remote empty source set: %v, want ErrInvalidSource", err)
	}
	if _, err := c.KNearest(ctx, 0); !errors.Is(err, ccsp.ErrInvalidOption) {
		t.Errorf("remote k=0: %v, want ErrInvalidOption", err)
	}
	if _, err := c.SourceDetection(ctx, []int{0}, 0, 1); !errors.Is(err, ccsp.ErrInvalidOption) {
		t.Errorf("remote d=0: %v, want ErrInvalidOption", err)
	}
	if _, err := c.Query(ctx, api.Request{Kind: "bfs"}); !errors.Is(err, api.ErrMalformed) {
		t.Errorf("remote unknown kind: %v, want api.ErrMalformed", err)
	}

	// Client-side cancellation: the caller's dead context joins the
	// cancellation taxonomy exactly like a local Engine call.
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	_, err := c.Diameter(canceled)
	if !errors.Is(err, ccsp.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Errorf("canceled ctx: %v, want ErrCanceled + context.Canceled", err)
	}
}

// TestSentinelErrorParity pins the wire-code → sentinel half of the
// contract directly, including the overload code the admission layer
// introduces: a shed request dispatches on ccsp.ErrOverloaded exactly
// like any other sentinel.
func TestSentinelErrorParity(t *testing.T) {
	for code, want := range map[api.ErrorCode]error{
		api.CodeUnavailable:  ccsp.ErrUnavailable,
		api.CodeOverloaded:   ccsp.ErrOverloaded,
		api.CodeUnknownGraph: ccsp.ErrUnknownGraph,
		api.CodeRoundLimit:   ccsp.ErrRoundLimit,
	} {
		err := SentinelError(&api.Error{Code: code, Message: "x"})
		if !errors.Is(err, want) {
			t.Errorf("code %q: %v, want errors.Is %v", code, err, want)
		}
	}
}

// TestRoundTripServerTimeout: the server's per-request deadline comes
// back as ErrCanceled wrapping context.DeadlineExceeded - remote and
// local deadline failures dispatch identically.
func TestRoundTripServerTimeout(t *testing.T) {
	_, c := harness(t, 24, server.Config{Timeout: time.Nanosecond})
	_, err := c.Diameter(context.Background())
	if !errors.Is(err, ccsp.ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("server timeout: %v, want ErrCanceled + context.DeadlineExceeded", err)
	}
}

// TestRoundTripBatch: a mixed remote batch equals the same batch run
// directly on the engine, per-request errors included.
func TestRoundTripBatch(t *testing.T) {
	eng, c := harness(t, 14, server.Config{CacheSize: -1})
	ctx := context.Background()

	reqs := []api.Request{
		{Kind: api.KindMSSP, MSSP: &api.MSSPParams{Sources: []int{0, 3}}},
		{Kind: api.KindSSSP, SSSP: &api.SSSPParams{Source: 2}},
		{Kind: api.KindDiameter},
		{Kind: api.KindSSSP, SSSP: &api.SSSPParams{Source: 500}}, // typed failure
		{Kind: api.KindDistance, Distance: &api.DistanceParams{From: 0, To: 5}},
		{Kind: api.KindKNearest, KNearest: &api.KNearestParams{K: 2}},
	}
	want, err := eng.Batch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Batch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d responses, want %d", len(got), len(want))
	}
	for i := range got {
		if (got[i].Error == nil) != (want[i].Error == nil) {
			t.Errorf("position %d: remote error %+v, direct %+v", i, got[i].Error, want[i].Error)
			continue
		}
		if got[i].Error != nil {
			if got[i].Error.Code != want[i].Error.Code {
				t.Errorf("position %d: code %q, direct %q", i, got[i].Error.Code, want[i].Error.Code)
			}
			continue
		}
		g := got[i]
		g.Cached = want[i].Cached
		if !reflect.DeepEqual(g, want[i]) {
			t.Errorf("position %d: remote response differs from Engine.Batch\n got %+v\nwant %+v", i, g, want[i])
		}
	}

	// Transport-level batch failure: a non-responding base URL surfaces
	// as a client error, never a half-filled slice.
	dead := New("http://127.0.0.1:1")
	if _, err := dead.Batch(ctx, reqs); err == nil {
		t.Error("batch against a dead daemon succeeded")
	}
}

// TestStatusErrorFallback: a body without the typed envelope (a proxy
// error page, say) degrades to a plain error instead of panicking or
// misclassifying.
func TestStatusErrorFallback(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "<html>bad gateway</html>", http.StatusBadGateway)
	}))
	defer ts.Close()
	c := New(ts.URL)
	_, err := c.Diameter(context.Background())
	if err == nil {
		t.Fatal("want error")
	}
	for _, sentinel := range []error{ccsp.ErrCanceled, ccsp.ErrRoundLimit, ccsp.ErrInvalidSource, ccsp.ErrInvalidOption, api.ErrMalformed} {
		if errors.Is(err, sentinel) {
			t.Errorf("untyped 502 misclassified as %v", sentinel)
		}
	}
}
