package ccsp

import (
	"io"

	"github.com/congestedclique/ccsp/internal/graphio"
)

// GraphFormat selects a graph file encoding for ReadGraph and
// Graph.Write.
type GraphFormat int

const (
	// GraphFormatAuto detects the format from content (DIMACS lines start
	// with a 'c'/'p'/'a' token; everything else parses as an edge list).
	GraphFormatAuto GraphFormat = GraphFormat(graphio.FormatAuto)
	// GraphFormatEdgeList is a whitespace edge list: "u v [w]" per line,
	// 0-based node IDs, optional weight (default 1), '#' comments.
	GraphFormatEdgeList GraphFormat = GraphFormat(graphio.FormatEdgeList)
	// GraphFormatDIMACS is the 9th DIMACS Challenge shortest-path format
	// (.gr): 'p sp <n> <m>' then 1-based 'a <u> <v> <w>' arc lines.
	GraphFormatDIMACS GraphFormat = GraphFormat(graphio.FormatDIMACS)
)

// ReadGraph parses a graph from r, auto-detecting the format. Use
// ReadGraphFormat to pin one.
func ReadGraph(r io.Reader) (*Graph, error) {
	return ReadGraphFormat(r, GraphFormatAuto)
}

// ReadGraphFormat parses a graph from r in the given format.
func ReadGraphFormat(r io.Reader, f GraphFormat) (*Graph, error) {
	g, err := graphio.Read(r, graphio.Format(f))
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// ReadGraphFile parses the graph file at path, inferring DIMACS from a
// ".gr" extension and auto-detecting otherwise.
func ReadGraphFile(path string) (*Graph, error) {
	g, err := graphio.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// Write renders the graph to w in the given format; GraphFormatAuto
// writes an edge list. Write → ReadGraph round-trips to an equivalent
// graph.
func (gr *Graph) Write(w io.Writer, f GraphFormat) error {
	return graphio.Write(w, gr.g, graphio.Format(f))
}
