package ccsp

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"github.com/congestedclique/ccsp/api"
)

// batchConcurrency bounds the worker group a Batch call fans queries out
// over. Each query is itself a parallel simulator run (Options.Workers),
// so the bound stays modest: enough to overlap lazy artifact builds with
// independent queries without oversubscribing the host.
func batchConcurrency(groups int) int {
	w := runtime.GOMAXPROCS(0)
	if w > 8 {
		w = 8
	}
	if w > groups {
		w = groups
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Batch answers many api.Requests against the one preprocessed engine -
// the paper's amortization claim (Theorems 3, 28, 31; EXPERIMENTS.md E14)
// as an API: the hopset artifacts are charged once, in PreprocessStats,
// no matter how many requests ride the batch.
//
// Semantics:
//
//   - Responses[i] always answers reqs[i]; the slice has len(reqs).
//   - Requests with the same canonical encoding (api.Request.CacheKey,
//     with auto APSP variants resolved) run once and share one response.
//   - Distinct requests run concurrently across a bounded worker group.
//     Requests needing the same preprocessing artifact still build it
//     exactly once: concurrent misses coalesce on the in-flight build
//     (DESIGN.md §10), so a batch of q MSSP queries charges the hopset
//     phases once, matching the E14 accounting.
//   - Failures are per-request: an invalid, over-budget, or canceled
//     query reports a typed api.Error in its own response and the rest
//     of the batch completes. Batch's own error is reserved for "the
//     batch never ran": it is non-nil only when ctx is already dead on
//     entry.
//
// Each response's Stats covers that request's query run only; merge with
// PreprocessStats for end-to-end accounting, exactly as for direct
// Engine calls.
func (e *Engine) Batch(ctx context.Context, reqs []api.Request) ([]api.Response, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, fmt.Errorf("ccsp: batch: %w", err)
	}
	resps := make([]api.Response, len(reqs))

	// Group positions by canonical request encoding; each group runs once.
	type group struct {
		req     api.Request
		indices []int
	}
	var order []string
	groups := make(map[string]*group)
	for i, req := range reqs {
		if err := req.Validate(); err != nil {
			resps[i] = api.Response{Kind: req.Kind, Graph: req.Graph, Error: APIError(err)}
			continue
		}
		key := e.canonicalKey(req)
		g, ok := groups[key]
		if !ok {
			g = &group{req: req}
			groups[key] = g
			order = append(order, key)
		}
		g.indices = append(g.indices, i)
	}

	sem := make(chan struct{}, batchConcurrency(len(order)))
	var wg sync.WaitGroup
	for _, key := range order {
		g := groups[key]
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			resp, err := e.Query(ctx, g.req)
			if err != nil {
				resp = &api.Response{Kind: g.req.Kind, Graph: g.req.Graph, Error: APIError(err)}
			}
			// Duplicates share the response value (and its read-only
			// result slices); per-position copies stay independent.
			for _, i := range g.indices {
				resps[i] = *resp
			}
		}()
	}
	wg.Wait()
	return resps, nil
}

// canonicalKey is the dedup key of a batch position: the canonical wire
// encoding with auto APSP variants resolved against the engine's graph,
// so "apsp" and the explicit variant it resolves to share one run.
func (e *Engine) canonicalKey(req api.Request) string {
	if req.Kind == api.KindAPSP {
		req.APSP = &api.APSPParams{Variant: e.ResolveAPSPVariant(req.Variant())}
	}
	return req.CacheKey()
}
