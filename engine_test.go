package ccsp

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// statsEqual compares the deterministic fields of two Stats (wall-clock
// CollectiveTime is observational and excluded).
func statsEqual(t *testing.T, label string, got, want Stats) {
	t.Helper()
	got.CollectiveTime, want.CollectiveTime = nil, nil
	if !reflect.DeepEqual(got, want) {
		t.Errorf("%s: stats differ:\n got %+v\nwant %+v", label, got, want)
	}
}

// TestEngineMatchesOneShot is the determinism contract of the Engine: for
// MSSP, APSP and Diameter, query results are byte-identical to the
// one-shot functions and preprocessing + query rounds equal the one-shot
// rounds exactly; and q=8 MSSP queries through one Engine charge the
// hopset-construction phases exactly once.
func TestEngineMatchesOneShot(t *testing.T) {
	gr := testGraph(24, 30, 8, 77)
	opts := Options{Epsilon: 0.5}
	sources := []int{2, 7, 13}

	oneM, err := MSSP(context.Background(), gr, sources, opts)
	if err != nil {
		t.Fatal(err)
	}
	oneA, err := APSPWeighted(context.Background(), gr, opts)
	if err != nil {
		t.Fatal(err)
	}
	oneD, err := Diameter(context.Background(), gr, opts)
	if err != nil {
		t.Fatal(err)
	}

	eng, err := NewEngine(context.Background(), gr, opts)
	if err != nil {
		t.Fatal(err)
	}
	base := eng.PreprocessStats()
	if len(base.Builds) != 1 {
		t.Fatalf("NewEngine ran %d preprocessing builds, want 1", len(base.Builds))
	}
	if b := base.Builds[0]; b.Kind != "hopset" || b.Eps != 0.5 || b.Beta <= 0 || b.Edges <= 0 {
		t.Errorf("base build metadata wrong: %+v", b)
	}

	// MSSP: same distances, and base preprocess + query = one-shot.
	qm, err := eng.MSSP(context.Background(), sources)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(qm.Dist, oneM.Dist) || !reflect.DeepEqual(qm.Sources, oneM.Sources) {
		t.Error("engine MSSP distances differ from one-shot")
	}
	statsEqual(t, "MSSP", base.Total.Merge(qm.Stats), oneM.Stats)

	// Diameter reuses the same base artifact: still one build.
	qd, err := eng.Diameter(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if qd.Estimate != oneD.Estimate {
		t.Errorf("engine diameter %d, one-shot %d", qd.Estimate, oneD.Estimate)
	}
	statsEqual(t, "Diameter", base.Total.Merge(qd.Stats), oneD.Stats)
	if ps := eng.PreprocessStats(); len(ps.Builds) != 1 {
		t.Errorf("MSSP+Diameter triggered %d builds, want the shared 1", len(ps.Builds))
	}

	// APSP needs the ε/2 artifact, built lazily as a second preprocessing
	// run; that run + the query must equal the one-shot APSP exactly.
	qa, err := eng.APSPWeighted(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(qa.Dist, oneA.Dist) {
		t.Error("engine APSP distances differ from one-shot")
	}
	ps := eng.PreprocessStats()
	if len(ps.Builds) != 2 {
		t.Fatalf("after APSP: %d builds, want 2", len(ps.Builds))
	}
	statsEqual(t, "APSPWeighted", ps.Builds[1].Stats.Merge(qa.Stats), oneA.Stats)

	// q=8 MSSP queries: hopset phases are charged exactly once, in the
	// preprocessing; no query run contains any hopset construction.
	eng2, err := NewEngine(context.Background(), gr, opts)
	if err != nil {
		t.Fatal(err)
	}
	querySum := Stats{}
	for i := 0; i < 8; i++ {
		r, err := eng2.MSSP(context.Background(), []int{i, i + 8})
		if err != nil {
			t.Fatal(err)
		}
		for phase := range r.Stats.PhaseRounds {
			if strings.HasPrefix(phase, "hopset/") {
				t.Fatalf("query %d charged hopset phase %q", i, phase)
			}
		}
		querySum = querySum.Merge(r.Stats)
	}
	ps2 := eng2.PreprocessStats()
	if len(ps2.Builds) != 1 {
		t.Fatalf("8 MSSP queries triggered %d builds, want 1", len(ps2.Builds))
	}
	// The engine's total hopset-phase rounds equal one one-shot MSSP's
	// hopset-phase rounds: the construction was paid exactly once.
	all := ps2.Total.Merge(querySum)
	for phase, rounds := range oneM.Stats.PhaseRounds {
		if strings.HasPrefix(phase, "hopset/") && all.PhaseRounds[phase] != rounds {
			t.Errorf("phase %q: engine total %d rounds over 8 queries, one-shot charges %d once",
				phase, all.PhaseRounds[phase], rounds)
		}
	}
}

// TestEngineMatchesOneShotUnweighted covers the two-artifact path of the
// unweighted APSP (hopsets on G and on the low-degree subgraph G').
func TestEngineMatchesOneShotUnweighted(t *testing.T) {
	gr := NewGraph(20)
	gr.MustAddEdge(0, 1, 1)
	for v := 2; v < 20; v++ {
		gr.MustAddEdge(v, (v*3+1)%v, 1)
		if u := (v * 7) % 20; u != v {
			gr.MustAddEdge(v, u, 1)
		}
	}
	if !gr.Unweighted() {
		t.Fatal("test graph must be unweighted")
	}
	opts := Options{Epsilon: 0.5}
	one, err := APSPUnweighted(context.Background(), gr, opts)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := newEngine(gr, opts) // lazy: no base artifact
	if err != nil {
		t.Fatal(err)
	}
	q, err := eng.APSP(context.Background()) // unweighted input dispatches to APSPUnweighted
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(q.Dist, one.Dist) {
		t.Error("engine unweighted APSP distances differ from one-shot")
	}
	ps := eng.PreprocessStats()
	if len(ps.Builds) != 2 {
		t.Fatalf("unweighted APSP used %d builds, want 2 (G and G')", len(ps.Builds))
	}
	kinds := []string{ps.Builds[0].Kind, ps.Builds[1].Kind}
	if !reflect.DeepEqual(kinds, []string{"hopset", "hopset-lowdeg"}) {
		t.Errorf("build kinds %v, want [hopset hopset-lowdeg]", kinds)
	}
	statsEqual(t, "APSPUnweighted", ps.Total.Merge(q.Stats), one.Stats)

	// A second query reuses both artifacts.
	q2, err := eng.APSPUnweighted(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(q2.Dist, one.Dist) {
		t.Error("second engine query differs")
	}
	if len(eng.PreprocessStats().Builds) != 2 {
		t.Error("second query triggered extra preprocessing")
	}
}

// TestEngineQueryOnlyMethods: SSSP, KNearest and SourceDetection need no
// artifacts and must match their one-shot twins without preprocessing.
func TestEngineQueryOnlyMethods(t *testing.T) {
	gr := testGraph(18, 20, 6, 99)
	opts := Options{}
	eng, err := newEngine(gr, opts)
	if err != nil {
		t.Fatal(err)
	}

	oneS, err := SSSP(context.Background(), gr, 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := eng.SSSP(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(qs.Dist, oneS.Dist) || qs.Iterations != oneS.Iterations {
		t.Error("engine SSSP differs from one-shot")
	}
	statsEqual(t, "SSSP", qs.Stats, oneS.Stats)

	oneK, err := KNearest(context.Background(), gr, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	qk, err := eng.KNearest(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(qk.Neighbors, oneK.Neighbors) {
		t.Error("engine KNearest differs from one-shot")
	}

	oneSD, err := SourceDetection(context.Background(), gr, []int{0, 5}, 3, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	qsd, err := eng.SourceDetection(context.Background(), []int{0, 5}, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(qsd.Detected, oneSD.Detected) {
		t.Error("engine SourceDetection differs from one-shot")
	}

	if builds := eng.PreprocessStats().Builds; len(builds) != 0 {
		t.Errorf("query-only methods ran %d preprocessing builds, want 0", len(builds))
	}
}

// TestEngineConcurrentQueries: one Engine, many goroutines. The cached
// artifact is read-only and each query runs in its own simulator, so
// concurrent queries must return exactly the sequential results. Run
// under -race in CI.
func TestEngineConcurrentQueries(t *testing.T) {
	gr := testGraph(20, 24, 7, 123)
	eng, err := NewEngine(context.Background(), gr, Options{Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	srcSets := [][]int{{0, 5}, {1, 9, 17}, {3}, {2, 4, 6, 8}}
	want := make([]*MSSPResult, len(srcSets))
	for i, s := range srcSets {
		if want[i], err = eng.MSSP(context.Background(), s); err != nil {
			t.Fatal(err)
		}
	}
	wantD, err := eng.Diameter(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			i := g % len(srcSets)
			res, err := eng.MSSP(context.Background(), srcSets[i])
			if err != nil {
				errs <- err
				return
			}
			if !reflect.DeepEqual(res.Dist, want[i].Dist) {
				errs <- fmt.Errorf("goroutine %d: MSSP(context.Background(), %v) differs from sequential", g, srcSets[i])
			}
			if g%4 == 0 {
				d, err := eng.Diameter(context.Background())
				if err != nil {
					errs <- err
					return
				}
				if d.Estimate != wantD.Estimate {
					errs <- fmt.Errorf("goroutine %d: diameter %d != %d", g, d.Estimate, wantD.Estimate)
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if ps := eng.PreprocessStats(); len(ps.Builds) != 1 {
		t.Errorf("concurrent queries triggered %d builds, want 1", len(ps.Builds))
	}
}

// TestEngineLazyAPSPBuildsConcurrently: concurrent first APSP queries
// must serialize on a single ε/2 artifact build.
func TestEngineLazyAPSPBuildsConcurrently(t *testing.T) {
	gr := testGraph(16, 18, 5, 321)
	eng, err := newEngine(gr, Options{Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	results := make([]*APSPResult, 4)
	errs := make([]error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[g], errs[g] = eng.APSPWeighted(context.Background())
		}()
	}
	wg.Wait()
	for g := 0; g < 4; g++ {
		if errs[g] != nil {
			t.Fatal(errs[g])
		}
		if !reflect.DeepEqual(results[g].Dist, results[0].Dist) {
			t.Errorf("goroutine %d: distances differ", g)
		}
	}
	if ps := eng.PreprocessStats(); len(ps.Builds) != 1 {
		t.Errorf("4 concurrent APSP queries ran %d builds, want 1", len(ps.Builds))
	}
}

// TestEngineValidation: argument errors surface before any simulation.
func TestEngineValidation(t *testing.T) {
	var nilGraph *Graph
	if _, err := NewEngine(context.Background(), nilGraph, Options{}); err == nil {
		t.Error("want nil-graph error")
	}
	if _, err := NewEngine(context.Background(), testGraph(8, 4, 3, 1), Options{Epsilon: 2}); err == nil {
		t.Error("want epsilon validation error")
	}
	eng, err := newEngine(testGraph(8, 4, 3, 1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.MSSP(context.Background(), nil); err == nil {
		t.Error("want no-sources error")
	}
	if _, err := eng.MSSP(context.Background(), []int{99}); err == nil {
		t.Error("want source-range error")
	}
	if _, err := eng.SSSP(context.Background(), -1); err == nil {
		t.Error("want source-range error")
	}
	if _, err := eng.KNearest(context.Background(), 0); err == nil {
		t.Error("want k validation error")
	}
	if _, err := eng.SourceDetection(context.Background(), []int{0}, 0, 1); err == nil {
		t.Error("want d validation error")
	}
	if _, err := eng.SourceDetection(context.Background(), []int{-4}, 1, 1); err == nil {
		t.Error("want source-range error")
	}
	if builds := eng.PreprocessStats().Builds; len(builds) != 0 {
		t.Errorf("failed validations ran %d builds, want 0", len(builds))
	}
	if eng.Graph() == nil || eng.Options().Epsilon != 0.5 {
		t.Error("accessors wrong")
	}
}
