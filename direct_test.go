package ccsp

import (
	"bytes"
	"context"
	"os"
	"reflect"
	"strconv"
	"testing"

	"github.com/congestedclique/ccsp/api"
	"github.com/congestedclique/ccsp/internal/graphgen"
	"github.com/congestedclique/ccsp/internal/hopset"
	"github.com/congestedclique/ccsp/internal/wire"
)

// The differential oracle suite: the simulated execution mode is the
// oracle, and every direct-mode artifact and query answer must be
// byte-identical to it - over graph families, every api.Request kind and
// APSP variant, and multiple kernel worker counts (DESIGN.md §12).

// diffFamilies are the graph families the oracle runs over.
func diffFamilies() []struct {
	name string
	gr   *Graph
} {
	clique := &Graph{g: graphgen.GNP(9, 1.0, graphgen.Weights{Max: 7}, 3)}
	grid := &Graph{g: graphgen.Grid(4, 5, graphgen.Weights{Max: 6}, 4)}
	path := &Graph{g: graphgen.Path(13, graphgen.Weights{Max: 9}, 5)}
	unweighted := &Graph{g: graphgen.Connected(16, 20, graphgen.Weights{Max: 1}, 6)}

	disconnected := NewGraph(14)
	for v := 1; v <= 5; v++ {
		disconnected.MustAddEdge(v, (v-1)/2, int64(v%3+1))
	}
	for v := 7; v <= 11; v++ {
		disconnected.MustAddEdge(v, 6+(v-7)/2, int64(v%4+1))
	}
	// Nodes 12 and 13 stay isolated.

	return []struct {
		name string
		gr   *Graph
	}{
		{"random-weighted", testGraph(18, 24, 8, 1)},
		{"path", path},
		{"grid", grid},
		{"clique", clique},
		{"disconnected", disconnected},
		{"unweighted", unweighted},
	}
}

// diffWorkerCounts returns the direct-mode worker counts to exercise. The
// CI race matrix pins one count per job via CCSP_WORKERS; locally both the
// serial and the GOMAXPROCS pools run.
func diffWorkerCounts(t *testing.T) []int {
	if s := os.Getenv("CCSP_WORKERS"); s != "" {
		w, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("bad CCSP_WORKERS %q: %v", s, err)
		}
		return []int{w}
	}
	return []int{1, 0}
}

// diffRequests covers every api.Request kind (and every APSP variant).
func diffRequests(n int) []api.Request {
	return []api.Request{
		{Kind: api.KindSSSP, SSSP: &api.SSSPParams{Source: 0}},
		{Kind: api.KindSSSP, SSSP: &api.SSSPParams{Source: n - 1}},
		{Kind: api.KindMSSP, MSSP: &api.MSSPParams{Sources: []int{0, 1, n / 2}}},
		{Kind: api.KindAPSP, APSP: &api.APSPParams{Variant: api.APSPWeighted}},
		{Kind: api.KindAPSP, APSP: &api.APSPParams{Variant: api.APSPWeighted3}},
		{Kind: api.KindAPSP, APSP: &api.APSPParams{Variant: api.APSPUnweighted}},
		{Kind: api.KindAPSP},
		{Kind: api.KindDistance, Distance: &api.DistanceParams{From: 1, To: n - 1}},
		{Kind: api.KindDiameter},
		{Kind: api.KindKNearest, KNearest: &api.KNearestParams{K: 3}},
		{Kind: api.KindSourceDetection, SourceDetection: &api.SourceDetectionParams{Sources: []int{0, n / 3}, D: 4, K: 2}},
	}
}

// stripStats removes the cost report before comparison: Stats are the one
// intentional difference between the modes (rounds/messages vs
// wall-clock).
func stripStats(r *api.Response) *api.Response {
	r.Stats = nil
	return r
}

// assertSameArtifacts asserts that every artifact the simulated engine
// built has a byte-identical direct twin (same cache key, same encoded
// bytes, same degree vector).
func assertSameArtifacts(t *testing.T, sim, dir *Engine) {
	t.Helper()
	sim.pre.mu.Lock()
	simArts := make(map[artifactKey]*artifactEntry, len(sim.pre.arts))
	for k, v := range sim.pre.arts {
		simArts[k] = v
	}
	sim.pre.mu.Unlock()
	dir.pre.mu.Lock()
	defer dir.pre.mu.Unlock()
	if len(simArts) == 0 {
		t.Fatal("simulated engine built no artifacts")
	}
	for key, simEnt := range simArts {
		dirEnt, ok := dir.pre.arts[key]
		if !ok {
			t.Errorf("direct engine missing artifact %v", key)
			continue
		}
		var simW, dirW wire.Writer
		hopset.EncodeArtifact(&simW, simEnt.art)
		hopset.EncodeArtifact(&dirW, dirEnt.art)
		simBytes, dirBytes := simW.Bytes(), dirW.Bytes()
		if !bytes.Equal(simBytes, dirBytes) {
			t.Errorf("artifact %v differs between modes (%d vs %d encoded bytes)", key, len(simBytes), len(dirBytes))
		}
		if !reflect.DeepEqual(simEnt.degs, dirEnt.degs) {
			t.Errorf("artifact %v degree vectors differ", key)
		}
	}
}

// TestDirectOracle is the cross-validation centerpiece: for each graph
// family, run every query kind in both modes and require byte-identical
// answers and byte-identical preprocessing artifacts.
func TestDirectOracle(t *testing.T) {
	ctx := context.Background()
	for _, fam := range diffFamilies() {
		fam := fam
		t.Run(fam.name, func(t *testing.T) {
			t.Parallel()
			n := fam.gr.N()
			sim, err := NewEngine(ctx, fam.gr, Options{Epsilon: 0.5})
			if err != nil {
				t.Fatalf("simulated NewEngine: %v", err)
			}
			for _, workers := range diffWorkerCounts(t) {
				dir, err := NewEngine(ctx, fam.gr, Options{Epsilon: 0.5, Workers: workers, Execution: ExecDirect})
				if err != nil {
					t.Fatalf("direct NewEngine (workers=%d): %v", workers, err)
				}
				for _, req := range diffRequests(n) {
					simResp, simErr := sim.Query(ctx, req)
					dirResp, dirErr := dir.Query(ctx, req)
					if (simErr == nil) != (dirErr == nil) {
						t.Fatalf("%s workers=%d: error mismatch: simulated %v, direct %v", req.Kind, workers, simErr, dirErr)
					}
					if simErr != nil {
						continue
					}
					if !reflect.DeepEqual(stripStats(simResp), stripStats(dirResp)) {
						t.Errorf("%s workers=%d: answers differ\nsimulated: %+v\ndirect:    %+v", req.Kind, workers, simResp, dirResp)
					}
				}
				assertSameArtifacts(t, sim, dir)
			}
		})
	}
}

// TestDirectOracleEpsilons re-runs one family at other stretch settings:
// the equivalence must hold for every hopset parameterization, not just
// the default.
func TestDirectOracleEpsilons(t *testing.T) {
	ctx := context.Background()
	gr := testGraph(15, 18, 6, 9)
	for _, eps := range []float64{0.25, 1.0} {
		opts := Options{Epsilon: eps}
		sim, err := NewEngine(ctx, gr, opts)
		if err != nil {
			t.Fatalf("simulated NewEngine (eps=%v): %v", eps, err)
		}
		opts.Execution = ExecDirect
		dir, err := NewEngine(ctx, gr, opts)
		if err != nil {
			t.Fatalf("direct NewEngine (eps=%v): %v", eps, err)
		}
		for _, req := range diffRequests(gr.N()) {
			simResp, err := sim.Query(ctx, req)
			if err != nil {
				t.Fatalf("simulated %s (eps=%v): %v", req.Kind, eps, err)
			}
			dirResp, err := dir.Query(ctx, req)
			if err != nil {
				t.Fatalf("direct %s (eps=%v): %v", req.Kind, eps, err)
			}
			if !reflect.DeepEqual(stripStats(simResp), stripStats(dirResp)) {
				t.Errorf("%s eps=%v: answers differ", req.Kind, eps)
			}
		}
		assertSameArtifacts(t, sim, dir)
	}
}

// TestDirectRepeatedQueries locks the per-artifact caching contract
// (DESIGN.md §13): repeated direct queries reuse the cached G ∪ H and
// routed matrices, and the second answer must be byte-identical to the
// first and to the simulated mode - the cache must be a pure memoization.
func TestDirectRepeatedQueries(t *testing.T) {
	ctx := context.Background()
	gr := testGraph(18, 20, 7, 41)
	sim, err := NewEngine(ctx, gr, Options{Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	dir, err := NewEngine(ctx, gr, Options{Epsilon: 0.5, Execution: ExecDirect})
	if err != nil {
		t.Fatal(err)
	}
	for _, req := range diffRequests(gr.N()) {
		simResp, simErr := sim.Query(ctx, req)
		first, firstErr := dir.Query(ctx, req)
		second, secondErr := dir.Query(ctx, req)
		if (simErr == nil) != (firstErr == nil) || (firstErr == nil) != (secondErr == nil) {
			t.Fatalf("%s: error mismatch: simulated %v, first %v, second %v", req.Kind, simErr, firstErr, secondErr)
		}
		if simErr != nil {
			continue
		}
		if !reflect.DeepEqual(stripStats(first), stripStats(second)) {
			t.Errorf("%s: repeated direct query differs from the first (cache not a pure memoization)", req.Kind)
		}
		if !reflect.DeepEqual(stripStats(simResp), stripStats(second)) {
			t.Errorf("%s: warm direct query differs from simulated", req.Kind)
		}
	}
}

// TestDirectPreprocessStats locks the satellite contract: a direct-mode
// engine reports zero rounds and messages but a real wall-clock cost, and
// tags its stats with the execution mode.
func TestDirectPreprocessStats(t *testing.T) {
	ctx := context.Background()
	gr := testGraph(16, 20, 5, 11)
	eng, err := NewEngine(ctx, gr, Options{Epsilon: 0.5, Execution: ExecDirect})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	ps := eng.PreprocessStats()
	if len(ps.Builds) != 1 {
		t.Fatalf("got %d builds, want 1", len(ps.Builds))
	}
	st := ps.Builds[0].Stats
	if st.Exec != ExecDirect {
		t.Errorf("build stats Exec = %v, want direct", st.Exec)
	}
	if st.TotalRounds != 0 || st.SimRounds != 0 || st.Messages != 0 || st.Words != 0 {
		t.Errorf("direct build reported nonzero communication: %+v", st)
	}
	if st.Wall() <= 0 {
		t.Errorf("direct build reported no wall-clock time: %+v", st)
	}
	if ps.Total.Exec != ExecDirect {
		t.Errorf("merged total Exec = %v, want direct", ps.Total.Exec)
	}
	res, err := eng.MSSP(ctx, []int{0, 3})
	if err != nil {
		t.Fatalf("MSSP: %v", err)
	}
	if res.Stats.Exec != ExecDirect || res.Stats.TotalRounds != 0 || res.Stats.Messages != 0 {
		t.Errorf("direct query stats = %+v, want zero rounds/messages and direct tag", res.Stats)
	}
}
