package ccsp

import (
	"errors"
	"reflect"
	"testing"
	"time"
)

func TestOptionsValidateEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		opts    Options
		wantErr bool
	}{
		{"negative epsilon", Options{Epsilon: -0.1}, true},
		{"epsilon above one", Options{Epsilon: 1.0001}, true},
		{"epsilon exactly one", Options{Epsilon: 1}, false},
		{"negative workers", Options{Epsilon: 0.5, Workers: -1}, true},
		{"zero value after defaults", Options{}.withDefaults(), false},
	}
	for _, tc := range cases {
		if err := tc.opts.validate(); (err != nil) != tc.wantErr {
			t.Errorf("%s: validate() err=%v, wantErr=%v", tc.name, err, tc.wantErr)
		}
	}
	if got := (Options{}).withDefaults().Epsilon; got != 0.5 {
		t.Errorf("default epsilon %v, want 0.5", got)
	}
	// prepare chains graph validation, defaulting and option validation.
	if _, err := prepare(nil, Options{}); err == nil {
		t.Error("prepare(nil graph): want error")
	}
	if _, err := prepare(NewGraph(0), Options{}); err == nil {
		t.Error("prepare(empty graph): want error")
	}
	if _, err := prepare(NewGraph(3), Options{Epsilon: -1}); err == nil {
		t.Error("prepare(bad epsilon): want error")
	}
	opts, err := prepare(NewGraph(3), Options{})
	if err != nil || opts.Epsilon != 0.5 {
		t.Errorf("prepare defaults: opts=%+v err=%v", opts, err)
	}
}

func TestParseExecution(t *testing.T) {
	valid := map[string]Execution{
		"": ExecSimulated, "simulated": ExecSimulated, "sim": ExecSimulated,
		"direct": ExecDirect,
	}
	for in, want := range valid {
		got, err := ParseExecution(in)
		if err != nil || got != want {
			t.Errorf("ParseExecution(%q) = %v, %v; want %v, nil", in, got, err, want)
		}
	}
	for _, in := range []string{"Direct", "DIRECT", "fast", "simulate", "0"} {
		if _, err := ParseExecution(in); !errors.Is(err, ErrInvalidOption) {
			t.Errorf("ParseExecution(%q) err = %v, want ErrInvalidOption", in, err)
		}
	}
	if got, want := ExecSimulated.String(), "simulated"; got != want {
		t.Errorf("ExecSimulated.String() = %q, want %q", got, want)
	}
	if got, want := ExecDirect.String(), "direct"; got != want {
		t.Errorf("ExecDirect.String() = %q, want %q", got, want)
	}
	// Out-of-range modes are rejected at validate time, matching the
	// snapshot loader's check.
	if err := (Options{Epsilon: 0.5, Execution: ExecDirect + 1}).validate(); !errors.Is(err, ErrInvalidOption) {
		t.Errorf("validate(Execution=%d) err = %v, want ErrInvalidOption", ExecDirect+1, err)
	}
}

func TestStatsStringFormat(t *testing.T) {
	// The word count must appear: it is the unit the paper's bandwidth
	// bounds are stated in (a summary that drops it hides the cost).
	s := Stats{Nodes: 5, TotalRounds: 10, SimRounds: 4, Messages: 100, Words: 400}
	if got, want := s.String(), "n=5 rounds=10 (sim=4 charged=6) msgs=100 words=400"; got != want {
		t.Errorf("Stats.String() = %q, want %q", got, want)
	}
	if got := (Stats{}).String(); got != "n=0 rounds=0 (sim=0 charged=0) msgs=0 words=0" {
		t.Errorf("zero Stats.String() = %q", got)
	}
	// Direct-mode stats have no round accounting; the summary says so
	// explicitly instead of printing misleading zeros as if measured.
	d := Stats{Nodes: 7, Exec: ExecDirect,
		CollectiveTime: map[string]time.Duration{"direct": 3 * time.Millisecond}}
	if got, want := d.String(), "n=7 exec=direct rounds=0 msgs=0 wall=3ms"; got != want {
		t.Errorf("direct Stats.String() = %q, want %q", got, want)
	}
	if got, want := d.Wall(), 3*time.Millisecond; got != want {
		t.Errorf("Wall() = %v, want %v", got, want)
	}
}

func TestStatsMerge(t *testing.T) {
	a := Stats{
		Nodes: 8, TotalRounds: 10, SimRounds: 6, Messages: 100, Words: 400,
		ChargedRounds:  map[string]int{"route": 3, "sort": 1},
		PhaseRounds:    map[string]int{"hopset/levels": 9, "": 1},
		CollectiveTime: map[string]time.Duration{"sync": time.Millisecond},
	}
	b := Stats{
		Nodes: 8, TotalRounds: 5, SimRounds: 2, Messages: 40, Words: 160,
		ChargedRounds: map[string]int{"route": 2, "hitting-set": 1},
		PhaseRounds:   map[string]int{"mssp/source-detect": 5},
	}
	got := a.Merge(b)
	want := Stats{
		Nodes: 8, TotalRounds: 15, SimRounds: 8, Messages: 140, Words: 560,
		ChargedRounds:  map[string]int{"route": 5, "sort": 1, "hitting-set": 1},
		PhaseRounds:    map[string]int{"hopset/levels": 9, "": 1, "mssp/source-detect": 5},
		CollectiveTime: map[string]time.Duration{"sync": time.Millisecond},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Merge = %+v, want %+v", got, want)
	}
	// Inputs are untouched.
	if a.ChargedRounds["route"] != 3 || b.ChargedRounds["route"] != 2 {
		t.Error("Merge mutated its inputs")
	}
	// Nodes is taken from the non-empty side.
	if m := (Stats{}).Merge(b); m.Nodes != 8 {
		t.Errorf("zero.Merge(b).Nodes = %d, want 8", m.Nodes)
	}
	// Exec propagates as a max: merging any direct-mode stats in taints
	// the total, because its zero rounds are not comparable to simulated
	// round counts.
	d := Stats{Nodes: 8, Exec: ExecDirect}
	if m := a.Merge(d); m.Exec != ExecDirect {
		t.Errorf("sim.Merge(direct).Exec = %v, want direct", m.Exec)
	}
	if m := d.Merge(a); m.Exec != ExecDirect {
		t.Errorf("direct.Merge(sim).Exec = %v, want direct", m.Exec)
	}
	if m := a.Merge(b); m.Exec != ExecSimulated {
		t.Errorf("sim.Merge(sim).Exec = %v, want simulated", m.Exec)
	}
}
