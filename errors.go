package ccsp

import (
	"context"
	"errors"
	"fmt"

	"github.com/congestedclique/ccsp/internal/cc"
)

// Typed errors. Every error returned from a public entry point wraps one of
// these sentinels (or is a plain validation error), so callers dispatch
// with errors.Is instead of matching message strings:
//
//	res, err := eng.MSSP(ctx, sources)
//	switch {
//	case errors.Is(err, ccsp.ErrCanceled):      // ctx canceled or deadline hit
//	case errors.Is(err, ccsp.ErrRoundLimit):    // Options.MaxRounds exceeded
//	case errors.Is(err, ccsp.ErrInvalidSource): // source ID out of range / empty set
//	case errors.Is(err, ccsp.ErrInvalidOption): // bad Options or query parameter
//	}
//
// ErrCanceled additionally wraps the context's own sentinel, so
// errors.Is(err, context.Canceled) and errors.Is(err, context.DeadlineExceeded)
// distinguish client cancellation from an expired deadline (the serving
// layer maps them to 499 and 504 respectively).
var (
	// ErrCanceled is wrapped by every error caused by a canceled or
	// deadline-expired context, at any stage: preprocessing, lazy artifact
	// builds, and query runs.
	ErrCanceled = errors.New("ccsp: canceled")
	// ErrRoundLimit is wrapped when a simulator run exceeds
	// Options.MaxRounds.
	ErrRoundLimit = errors.New("ccsp: round budget exceeded")
	// ErrInvalidSource is wrapped when a source (or target) node ID is out
	// of range, or a query's source set is empty.
	ErrInvalidSource = errors.New("ccsp: invalid source")
	// ErrInvalidOption is wrapped when Options fail validation or a query
	// parameter (k, d) is out of its domain.
	ErrInvalidOption = errors.New("ccsp: invalid option")
	// ErrUnknownGraph is wrapped when a request names a graph the serving
	// daemon does not hold (the cluster tier routes by graph ID; a replica
	// receiving a query for a graph outside its shard answers with this).
	// Maps to HTTP 404 / api.CodeUnknownGraph.
	ErrUnknownGraph = errors.New("ccsp: unknown graph")
	// ErrUnavailable is wrapped when a query cannot be served right now
	// but might be later or elsewhere: the daemon's snapshots are still
	// loading, or - cluster-side - every replica that could own the graph
	// is down. Maps to HTTP 503 / api.CodeUnavailable.
	ErrUnavailable = errors.New("ccsp: unavailable")
	// ErrOverloaded is wrapped when the serving daemon sheds a query
	// under admission control: its bounded in-flight limit and wait
	// queue are both full, so the request was rejected instead of piling
	// onto an already-saturated engine. Transient by definition - the
	// HTTP layer answers 503 with a Retry-After hint, and the client's
	// WithRetry honors it. Maps to api.CodeOverloaded.
	ErrOverloaded = errors.New("ccsp: overloaded")
)

// wrapRun translates a simulator-run error into the public error taxonomy,
// prefixed with the failing operation. The cc sentinels stay in the chain,
// so the context sentinels (which cc.ErrCanceled wraps) remain matchable.
func wrapRun(op string, err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, cc.ErrCanceled):
		return fmt.Errorf("ccsp: %s: %w: %w", op, ErrCanceled, err)
	case errors.Is(err, cc.ErrRoundLimit):
		return fmt.Errorf("ccsp: %s: %w: %w", op, ErrRoundLimit, err)
	default:
		return fmt.Errorf("ccsp: %s: %w", op, err)
	}
}

// ctxErr reports a context that is already dead as an ErrCanceled wrap (nil
// while the context is live). Entry points call it before starting work so
// a canceled caller never launches a simulator run.
func ctxErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	}
	return nil
}
