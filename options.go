package ccsp

import (
	"fmt"
	"time"

	"github.com/congestedclique/ccsp/internal/cc"
	"github.com/congestedclique/ccsp/internal/hopset"
	"github.com/congestedclique/ccsp/internal/semiring"
)

// Unreachable is the distance reported for disconnected pairs.
const Unreachable = semiring.Inf

// Preset selects the hopset parameterization (see DESIGN.md §6).
type Preset int

const (
	// PresetPractical (the default) uses a reduced hop budget whose
	// stretch guarantee is validated empirically (EXPERIMENTS.md E6); it
	// keeps the simulation fast at larger n.
	PresetPractical Preset = iota
	// PresetPaper uses the proof-faithful constants of Theorem 25
	// (δ = ε/4 per level, β = 3/δ).
	PresetPaper
)

// Execution selects how preprocessing and queries are computed
// (DESIGN.md §12).
type Execution uint8

const (
	// ExecSimulated (the default) runs every algorithm inside the
	// round-synchronous Congested Clique simulator, paying per-node
	// message construction, routing and sorting, and reporting the full
	// round/message accounting in Stats.
	ExecSimulated Execution = iota
	// ExecDirect computes the same algebra directly on flat host-side
	// matrices with the matmul kernels and a worker pool, skipping the
	// simulator entirely. Results are byte-identical to ExecSimulated
	// (the differential oracle guarantee); Stats report zero rounds and
	// messages but real wall-clock time.
	ExecDirect
)

// String returns "simulated" or "direct".
func (x Execution) String() string {
	if x == ExecDirect {
		return "direct"
	}
	return "simulated"
}

// ParseExecution parses an execution-mode name as accepted by the CLI
// -exec flags: "simulated" (or "sim", or empty) and "direct".
func ParseExecution(s string) (Execution, error) {
	switch s {
	case "", "simulated", "sim":
		return ExecSimulated, nil
	case "direct":
		return ExecDirect, nil
	}
	return ExecSimulated, fmt.Errorf("%w: unknown execution mode %q (want \"simulated\" or \"direct\")", ErrInvalidOption, s)
}

// Options configures a run. The zero value is valid: ε = 0.5, the
// practical preset, seed 0, simulated execution.
type Options struct {
	// Epsilon is the approximation parameter ε ∈ (0, 1]; 0 means 0.5.
	Epsilon float64
	// Preset selects hopset constants.
	Preset Preset
	// Seed seeds the randomized baselines; the paper's algorithms are
	// deterministic and ignore it.
	Seed int64
	// MaxRounds overrides the simulator's round guard; 0 keeps the
	// default. The guard applies to each simulator run individually: a
	// call that preprocesses and queries (or an Engine serving several
	// queries) runs the budget per run, not over the combined total.
	MaxRounds int
	// Workers sizes the simulator's worker pool, which executes each
	// collective sharded across destination nodes (DESIGN.md §5). 0 uses
	// runtime.GOMAXPROCS(0); 1 forces the serial engine. Results and all
	// deterministic statistics are identical for every value - only
	// wall-clock time (and the observational Stats.CollectiveTime)
	// changes. In direct mode the same knob sizes the kernel worker pool.
	Workers int
	// Execution selects the execution mode: ExecSimulated (default) runs
	// the round-synchronous simulator, ExecDirect computes the identical
	// results on flat matrices with the kernel worker pool (DESIGN.md
	// §12). Answers are byte-identical in both modes; only Stats (and
	// wall-clock) differ.
	Execution Execution
}

func (o Options) withDefaults() Options {
	if o.Epsilon == 0 {
		o.Epsilon = 0.5
	}
	return o
}

func (o Options) validate() error {
	if o.Epsilon < 0 || o.Epsilon > 1 {
		return fmt.Errorf("%w: epsilon %v outside (0, 1]", ErrInvalidOption, o.Epsilon)
	}
	if o.Workers < 0 {
		return fmt.Errorf("%w: negative Workers %d", ErrInvalidOption, o.Workers)
	}
	if o.MaxRounds < 0 {
		return fmt.Errorf("%w: negative MaxRounds %d", ErrInvalidOption, o.MaxRounds)
	}
	if o.Execution > ExecDirect {
		return fmt.Errorf("%w: unknown Execution %d", ErrInvalidOption, o.Execution)
	}
	return nil
}

func (o Options) hopsetParams() hopset.Params {
	if o.Preset == PresetPaper {
		return hopset.Paper(o.Epsilon)
	}
	return hopset.Practical(o.Epsilon)
}

func (o Options) config(n int) cc.Config {
	return cc.Config{N: n, Seed: o.Seed, MaxRounds: o.MaxRounds, Workers: o.Workers}
}

// prepare validates the graph and normalizes the options - the
// precondition chain shared by every public entry point.
func prepare(gr *Graph, opts Options) (Options, error) {
	if err := gr.validate(); err != nil {
		return opts, err
	}
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return opts, err
	}
	return opts, nil
}

// Stats reports the communication cost of a run in the Congested Clique
// model: TotalRounds = SimRounds (barrier steps actually executed) plus the
// rounds charged by the primitives the paper cites as black boxes (Lenzen
// routing/sorting, the Lemma 4 hitting set), broken down in ChargedRounds.
type Stats struct {
	Nodes int
	// Exec records which execution mode produced these stats. Direct-mode
	// runs have no rounds or messages - the round/message fields are all
	// zero by construction, not unmeasured - and report their cost as
	// wall-clock time under CollectiveTime["direct"].
	Exec          Execution
	TotalRounds   int
	SimRounds     int
	ChargedRounds map[string]int
	Messages      int64
	Words         int64
	// PhaseRounds attributes rounds to algorithm phases (e.g.
	// "hopset/levels", "mssp/source-detect") for cost breakdowns.
	PhaseRounds map[string]int
	// CollectiveTime is the wall-clock time the simulator spent executing
	// each collective kind ("sync", "broadcast", "route", "sort", ...).
	// It is observational - it varies run to run and with Options.Workers
	// - and is excluded from the determinism guarantee; all other fields
	// are identical across worker counts.
	CollectiveTime map[string]time.Duration
}

func statsFrom(s cc.Stats) Stats {
	charged := make(map[string]int, len(s.Charged))
	for k, v := range s.Charged {
		charged[k] = v
	}
	phases := make(map[string]int, len(s.Phases))
	for k, v := range s.Phases {
		phases[k] = v
	}
	times := make(map[string]time.Duration, len(s.CollectiveTime))
	for k, v := range s.CollectiveTime {
		times[k] = v
	}
	return Stats{
		Nodes:          s.N,
		TotalRounds:    s.TotalRounds(),
		SimRounds:      s.SimRounds,
		ChargedRounds:  charged,
		Messages:       s.Messages,
		Words:          s.Words(),
		PhaseRounds:    phases,
		CollectiveTime: times,
	}
}

// String renders a one-line summary. Words is included alongside the
// message count: machine words are the currency the paper's bandwidth
// bounds are stated in. Direct-mode stats have no round or message
// accounting, so they render the mode tag and the wall-clock cost
// instead.
func (s Stats) String() string {
	if s.Exec == ExecDirect {
		return fmt.Sprintf("n=%d exec=direct rounds=0 msgs=0 wall=%s", s.Nodes, s.Wall())
	}
	return fmt.Sprintf("n=%d rounds=%d (sim=%d charged=%d) msgs=%d words=%d",
		s.Nodes, s.TotalRounds, s.SimRounds, s.TotalRounds-s.SimRounds, s.Messages, s.Words)
}

// Wall returns the total wall-clock time recorded in CollectiveTime -
// for a direct-mode run, the real cost of the computation.
func (s Stats) Wall() time.Duration {
	var total time.Duration
	for _, d := range s.CollectiveTime {
		total += d
	}
	return total
}

// Merge returns the element-wise sum of s and o: rounds, messages and the
// per-tag breakdowns add; Nodes is carried over (the runs must be on the
// same clique). Use it to combine an Engine's PreprocessStats with
// per-query Stats into the end-to-end totals a one-shot call would
// report.
func (s Stats) Merge(o Stats) Stats {
	out := Stats{
		Nodes: s.Nodes,
		Exec:  max(s.Exec, o.Exec), // direct taints the total: its rounds are not comparable

		TotalRounds:    s.TotalRounds + o.TotalRounds,
		SimRounds:      s.SimRounds + o.SimRounds,
		Messages:       s.Messages + o.Messages,
		Words:          s.Words + o.Words,
		ChargedRounds:  addMaps(s.ChargedRounds, o.ChargedRounds),
		PhaseRounds:    addMaps(s.PhaseRounds, o.PhaseRounds),
		CollectiveTime: addMaps(s.CollectiveTime, o.CollectiveTime),
	}
	if out.Nodes == 0 {
		out.Nodes = o.Nodes
	}
	return out
}

// addMaps sums two breakdown maps into a fresh map, leaving both inputs
// untouched.
func addMaps[V int | time.Duration](a, b map[string]V) map[string]V {
	out := make(map[string]V, len(a)+len(b))
	for k, v := range a {
		out[k] += v
	}
	for k, v := range b {
		out[k] += v
	}
	return out
}
