package ccsp

import (
	"context"
	"fmt"
	"io"
	"time"

	"github.com/congestedclique/ccsp/internal/snapshot"
)

// Save persists the engine - graph, normalized options, and every
// preprocessing artifact completed so far, with its round-stats - to w in
// the versioned, checksummed binary format of internal/snapshot
// (DESIGN.md §9). A LoadEngine of the written bytes answers every query
// with results and Stats identical to this engine, reports the same
// PreprocessStats, and re-Saves to byte-identical output.
//
// Save is safe to call concurrently with queries; artifacts whose builds
// are still in flight are not included (they will be rebuilt lazily by
// the loaded engine, preserving results).
func (e *Engine) Save(w io.Writer) error {
	snap := &snapshot.Snapshot{
		Graph: e.gr.g,
		Opts: snapshot.Options{
			Epsilon:   e.opts.Epsilon,
			Preset:    uint8(e.opts.Preset),
			Seed:      e.opts.Seed,
			MaxRounds: e.opts.MaxRounds,
			Workers:   e.opts.Workers,
			Exec:      uint8(e.opts.Execution),
			Epoch:     e.epoch,
		},
	}
	e.pre.mu.Lock()
	for _, key := range e.pre.order {
		ent := e.pre.arts[key]
		snap.Artifacts = append(snap.Artifacts, snapshot.Artifact{
			Variant: uint8(key.variant),
			Params:  key.params,
			Degs:    ent.degs,
			Stats:   toSnapStats(ent.stats),
			Art:     ent.art,
		})
	}
	e.pre.mu.Unlock()
	return snap.Encode(w)
}

// LoadEngine reconstructs an Engine from a snapshot written by Save: the
// graph, options and all persisted artifacts are rehydrated without any
// simulator run, so startup pays file I/O instead of hopset
// construction. The loaded engine answers queries byte-identically to the
// saved one (and to a freshly preprocessed engine on the same graph and
// options), and its PreprocessStats reports the original builds.
// Artifacts the snapshot does not contain are built lazily on first use,
// exactly as on a fresh engine.
//
// LoadEngine runs no simulation; ctx is part of the uniform ctx-first API
// and is honored at entry (a dead context returns ErrCanceled without
// touching r) so callers can gate snapshot restores like any other call.
//
// Corrupt, truncated or version-skewed input returns an error.
func LoadEngine(ctx context.Context, r io.Reader) (*Engine, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, fmt.Errorf("ccsp: load engine: %w", err)
	}
	snap, err := snapshot.Decode(r)
	if err != nil {
		return nil, err
	}
	if p := Preset(snap.Opts.Preset); p != PresetPractical && p != PresetPaper {
		return nil, fmt.Errorf("ccsp: snapshot has unknown preset %d", snap.Opts.Preset)
	}
	if snap.Opts.Exec > uint8(ExecDirect) {
		return nil, fmt.Errorf("ccsp: snapshot has unknown execution mode %d", snap.Opts.Exec)
	}
	gr := &Graph{g: snap.Graph}
	opts := Options{
		Epsilon:   snap.Opts.Epsilon,
		Preset:    Preset(snap.Opts.Preset),
		Seed:      snap.Opts.Seed,
		MaxRounds: snap.Opts.MaxRounds,
		Workers:   snap.Opts.Workers,
		Execution: Execution(snap.Opts.Exec),
	}
	e, err := newEngine(gr, opts)
	if err != nil {
		return nil, err
	}
	// Restore the persisted graph version: a DynamicEngine wrapped
	// around the loaded engine resumes its epoch sequence from here.
	e.epoch = snap.Opts.Epoch
	for i, a := range snap.Artifacts {
		if a.Variant > uint8(artLowDegree) {
			return nil, fmt.Errorf("ccsp: snapshot artifact %d has unknown variant %d", i, a.Variant)
		}
		key := artifactKey{artVariant(a.Variant), a.Params}
		if _, dup := e.pre.arts[key]; dup {
			return nil, fmt.Errorf("ccsp: snapshot has duplicate artifact (%s, ε'=%g)", key.variant, a.Params.Eps)
		}
		if key.variant == artLowDegree && a.Degs == nil {
			return nil, fmt.Errorf("ccsp: snapshot low-degree artifact %d is missing its degree vector", i)
		}
		// Entries in arts are by definition complete: queries use the
		// rehydrated artifact as-is, with no build to wait on.
		ent := &artifactEntry{art: a.Art, degs: a.Degs, stats: fromSnapStats(a.Stats)}
		e.pre.arts[key] = ent
		e.pre.order = append(e.pre.order, key)
	}
	return e, nil
}

func toSnapStats(s Stats) snapshot.Stats {
	return snapshot.Stats{
		Nodes:          s.Nodes,
		TotalRounds:    s.TotalRounds,
		SimRounds:      s.SimRounds,
		ChargedRounds:  s.ChargedRounds,
		Messages:       s.Messages,
		Words:          s.Words,
		PhaseRounds:    s.PhaseRounds,
		CollectiveTime: s.CollectiveTime,
		Exec:           uint8(s.Exec),
	}
}

// fromSnapStats converts back, normalizing absent breakdown maps to empty
// ones (Stats built by statsFrom always carry non-nil maps, and the wire
// format does not distinguish nil from empty).
func fromSnapStats(s snapshot.Stats) Stats {
	out := Stats{
		Nodes:          s.Nodes,
		TotalRounds:    s.TotalRounds,
		SimRounds:      s.SimRounds,
		ChargedRounds:  s.ChargedRounds,
		Messages:       s.Messages,
		Words:          s.Words,
		PhaseRounds:    s.PhaseRounds,
		CollectiveTime: s.CollectiveTime,
		Exec:           Execution(s.Exec),
	}
	if out.ChargedRounds == nil {
		out.ChargedRounds = map[string]int{}
	}
	if out.PhaseRounds == nil {
		out.PhaseRounds = map[string]int{}
	}
	if out.CollectiveTime == nil {
		out.CollectiveTime = map[string]time.Duration{}
	}
	return out
}
