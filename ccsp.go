package ccsp

import (
	"context"
	"fmt"
	"sort"
)

// APSPResult holds all-pairs distance estimates.
type APSPResult struct {
	// Dist[u][v] is the estimate for the pair (u, v); Unreachable for
	// disconnected pairs. Estimates never underestimate true distances.
	Dist [][]int64
	// Stats is the communication cost of the run.
	Stats Stats
}

// Distance returns the estimate for (u, v).
func (r *APSPResult) Distance(u, v int) int64 { return r.Dist[u][v] }

// APSPUnweighted computes (2+ε)-approximate APSP on an unweighted graph
// (Theorem 31) in O(log²n/ε) rounds. The guarantee requires unit weights;
// on weighted inputs the estimates are still sound upper bounds but only
// the weighted guarantee of APSPWeighted applies.
func APSPUnweighted(ctx context.Context, gr *Graph, opts Options) (*APSPResult, error) {
	return oneShot(ctx, gr, opts, (*Engine).APSPUnweighted, apspStats)
}

// APSPWeighted computes (2+ε, (1+ε)W)-approximate APSP on a weighted graph
// (Theorem 28): each estimate is at most (2+ε)·d(u,v) + (1+ε)·W, where W
// is the heaviest edge on a shortest u-v path.
func APSPWeighted(ctx context.Context, gr *Graph, opts Options) (*APSPResult, error) {
	return oneShot(ctx, gr, opts, (*Engine).APSPWeighted, apspStats)
}

// APSPWeighted3 computes the simpler (3+ε)-approximate weighted APSP of
// §6.1 (fewer phases; kept for ablation against APSPWeighted).
func APSPWeighted3(ctx context.Context, gr *Graph, opts Options) (*APSPResult, error) {
	return oneShot(ctx, gr, opts, (*Engine).APSPWeighted3, apspStats)
}

func apspStats(r *APSPResult) *Stats { return &r.Stats }

// MSSPResult holds multi-source distance estimates.
type MSSPResult struct {
	// Sources lists the source nodes, ascending.
	Sources []int
	// Dist[v][i] is the (1+ε)-approximate distance from node v to
	// Sources[i]; Unreachable for disconnected pairs.
	Dist [][]int64
	// Stats is the communication cost of the run.
	Stats Stats
}

// Distance returns the estimate from node v to source s (which must be in
// Sources).
func (r *MSSPResult) Distance(v, s int) (int64, error) {
	i := sort.SearchInts(r.Sources, s)
	if i >= len(r.Sources) || r.Sources[i] != s {
		return 0, fmt.Errorf("%w: %d is not a source of this result", ErrInvalidSource, s)
	}
	return r.Dist[v][i], nil
}

// MSSP computes (1+ε)-approximate distances from every node to every
// source (Theorem 3): polylogarithmic rounds for |sources| up to ~√n.
func MSSP(ctx context.Context, gr *Graph, sources []int, opts Options) (*MSSPResult, error) {
	return oneShot(ctx, gr, opts, func(e *Engine, ctx context.Context) (*MSSPResult, error) { return e.MSSP(ctx, sources) },
		func(r *MSSPResult) *Stats { return &r.Stats })
}

// SSSPResult holds exact single-source distances.
type SSSPResult struct {
	// Source is the source node.
	Source int
	// Dist[v] is the exact distance from Source to v.
	Dist []int64
	// Iterations is the number of Bellman-Ford iterations on the shortcut
	// graph (bounded by 4·n/k + O(1), Lemma 32).
	Iterations int
	// Stats is the communication cost of the run.
	Stats Stats
}

// PathTo reconstructs a shortest path from the result's source to v on the
// original graph by predecessor descent over the exact distances. It
// returns nil if v is unreachable.
func (r *SSSPResult) PathTo(gr *Graph, v int) []int {
	if r.Dist[v] >= Unreachable {
		return nil
	}
	path := []int{v}
	cur := v
	for cur != r.Source {
		next := -1
		gr.Neighbors(cur, func(u int, w int64) {
			if r.Dist[u]+w == r.Dist[cur] && (next < 0 || u < next) {
				next = u
			}
		})
		if next < 0 {
			return nil // inconsistent distances; cannot happen for exact results
		}
		cur = next
		path = append(path, cur)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// SSSP computes exact single-source shortest paths (Theorem 33) in
// O~(n^{1/6}) rounds via the n^{5/6}-shortcut graph and Bellman-Ford.
func SSSP(ctx context.Context, gr *Graph, source int, opts Options) (*SSSPResult, error) {
	return oneShot(ctx, gr, opts, func(e *Engine, ctx context.Context) (*SSSPResult, error) { return e.SSSP(ctx, source) },
		func(r *SSSPResult) *Stats { return &r.Stats })
}

// DiameterResult holds the diameter estimate.
type DiameterResult struct {
	// Estimate satisfies roughly 2D/3 <= Estimate <= (1+ε)·D for true
	// diameter D (Claim 35; weighted graphs lose an additive max-weight
	// term on the lower side).
	Estimate int64
	// Stats is the communication cost of the run.
	Stats Stats
}

// Diameter computes the near-3/2 diameter approximation of §7.2.
func Diameter(ctx context.Context, gr *Graph, opts Options) (*DiameterResult, error) {
	return oneShot(ctx, gr, opts, (*Engine).Diameter,
		func(r *DiameterResult) *Stats { return &r.Stats })
}

// Neighbor is one entry of a k-nearest result: an exact distance plus the
// first hop of a shortest path (the routing witness of §3.1).
type Neighbor struct {
	// Node is the neighbor's ID.
	Node int
	// Dist is the exact distance.
	Dist int64
	// Hops is the minimal hop count among shortest paths.
	Hops int
	// FirstHop is the first edge of such a path (-1 for the self entry).
	FirstHop int
}

// KNearestResult holds per-node nearest-neighbor lists.
type KNearestResult struct {
	// Neighbors[v] lists v's k closest nodes (including itself), by
	// (distance, hops, ID).
	Neighbors [][]Neighbor
	// Stats is the communication cost of the run.
	Stats Stats
}

// KNearest computes, for every node, exact distances and routing witnesses
// to its k closest nodes (Theorem 18 over the witness-tracking semiring).
func KNearest(ctx context.Context, gr *Graph, k int, opts Options) (*KNearestResult, error) {
	return oneShot(ctx, gr, opts, func(e *Engine, ctx context.Context) (*KNearestResult, error) { return e.KNearest(ctx, k) },
		func(r *KNearestResult) *Stats { return &r.Stats })
}

// SourceDetectionResult holds hop-limited nearest-source lists.
type SourceDetectionResult struct {
	// Detected[v] lists the up-to-k nearest sources within d hops of v,
	// with d-hop-limited distances.
	Detected [][]Neighbor
	// Stats is the communication cost of the run.
	Stats Stats
}

// SourceDetection solves the (S, d, k)-source detection problem
// (Theorem 19): every node learns its k nearest sources within d hops.
func SourceDetection(ctx context.Context, gr *Graph, sources []int, d, k int, opts Options) (*SourceDetectionResult, error) {
	return oneShot(ctx, gr, opts, func(e *Engine, ctx context.Context) (*SourceDetectionResult, error) {
		return e.SourceDetection(ctx, sources, d, k)
	},
		func(r *SourceDetectionResult) *Stats { return &r.Stats })
}
