package ccsp

import (
	"fmt"
	"sort"

	"github.com/congestedclique/ccsp/internal/apsp"
	"github.com/congestedclique/ccsp/internal/cc"
	"github.com/congestedclique/ccsp/internal/diameter"
	"github.com/congestedclique/ccsp/internal/disttools"
	"github.com/congestedclique/ccsp/internal/hitting"
	"github.com/congestedclique/ccsp/internal/matrix"
	"github.com/congestedclique/ccsp/internal/mssp"
	"github.com/congestedclique/ccsp/internal/semiring"
	"github.com/congestedclique/ccsp/internal/sssp"
)

// APSPResult holds all-pairs distance estimates.
type APSPResult struct {
	// Dist[u][v] is the estimate for the pair (u, v); Unreachable for
	// disconnected pairs. Estimates never underestimate true distances.
	Dist [][]int64
	// Stats is the communication cost of the run.
	Stats Stats
}

// Distance returns the estimate for (u, v).
func (r *APSPResult) Distance(u, v int) int64 { return r.Dist[u][v] }

// APSPUnweighted computes (2+ε)-approximate APSP on an unweighted graph
// (Theorem 31) in O(log²n/ε) rounds. The guarantee requires unit weights;
// on weighted inputs the estimates are still sound upper bounds but only
// the weighted guarantee of APSPWeighted applies.
func APSPUnweighted(gr *Graph, opts Options) (*APSPResult, error) {
	return runAPSP(gr, opts, "unweighted", func(nd *cc.Node, sr semiring.AugMinPlus, wrow matrix.Row[semiring.WH], eps float64, boards *hitting.BoardSeq) ([]int64, error) {
		return apsp.TwoPlusEpsUnweighted(nd, sr, wrow, eps, boards, opts.hopsetParams())
	})
}

// APSPWeighted computes (2+ε, (1+ε)W)-approximate APSP on a weighted graph
// (Theorem 28): each estimate is at most (2+ε)·d(u,v) + (1+ε)·W, where W
// is the heaviest edge on a shortest u-v path.
func APSPWeighted(gr *Graph, opts Options) (*APSPResult, error) {
	return runAPSP(gr, opts, "weighted", func(nd *cc.Node, sr semiring.AugMinPlus, wrow matrix.Row[semiring.WH], eps float64, boards *hitting.BoardSeq) ([]int64, error) {
		return apsp.TwoPlusEpsWeighted(nd, sr, wrow, eps, boards, opts.hopsetParams())
	})
}

// APSPWeighted3 computes the simpler (3+ε)-approximate weighted APSP of
// §6.1 (fewer phases; kept for ablation against APSPWeighted).
func APSPWeighted3(gr *Graph, opts Options) (*APSPResult, error) {
	return runAPSP(gr, opts, "3+eps", func(nd *cc.Node, sr semiring.AugMinPlus, wrow matrix.Row[semiring.WH], eps float64, boards *hitting.BoardSeq) ([]int64, error) {
		return apsp.ThreePlusEps(nd, sr, wrow, eps, boards, opts.hopsetParams())
	})
}

type apspAlgo func(nd *cc.Node, sr semiring.AugMinPlus, wrow matrix.Row[semiring.WH], eps float64, boards *hitting.BoardSeq) ([]int64, error)

func runAPSP(gr *Graph, opts Options, name string, algo apspAlgo) (*APSPResult, error) {
	if err := gr.validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	n := gr.N()
	sr := gr.g.AugSemiring()
	boards := hitting.NewBoardSeq(n)
	dist := make([][]int64, n)
	stats, err := cc.Run(opts.config(n), func(nd *cc.Node) error {
		row, err := algo(nd, sr, gr.g.WeightRow(nd.ID), opts.Epsilon, boards)
		if err != nil {
			return err
		}
		dist[nd.ID] = row
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("ccsp: %s APSP: %w", name, err)
	}
	return &APSPResult{Dist: dist, Stats: statsFrom(stats)}, nil
}

// MSSPResult holds multi-source distance estimates.
type MSSPResult struct {
	// Sources lists the source nodes, ascending.
	Sources []int
	// Dist[v][i] is the (1+ε)-approximate distance from node v to
	// Sources[i]; Unreachable for disconnected pairs.
	Dist [][]int64
	// Stats is the communication cost of the run.
	Stats Stats
}

// Distance returns the estimate from node v to source s (which must be in
// Sources).
func (r *MSSPResult) Distance(v, s int) (int64, error) {
	i := sort.SearchInts(r.Sources, s)
	if i >= len(r.Sources) || r.Sources[i] != s {
		return 0, fmt.Errorf("ccsp: %d is not a source", s)
	}
	return r.Dist[v][i], nil
}

// MSSP computes (1+ε)-approximate distances from every node to every
// source (Theorem 3): polylogarithmic rounds for |sources| up to ~√n.
func MSSP(gr *Graph, sources []int, opts Options) (*MSSPResult, error) {
	if err := gr.validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	n := gr.N()
	inS := make([]bool, n)
	for _, s := range sources {
		if s < 0 || s >= n {
			return nil, fmt.Errorf("ccsp: source %d out of range", s)
		}
		inS[s] = true
	}
	srcList := make([]int, 0, len(sources))
	for v := 0; v < n; v++ {
		if inS[v] {
			srcList = append(srcList, v)
		}
	}
	if len(srcList) == 0 {
		return nil, fmt.Errorf("ccsp: no sources")
	}
	srcIdx := make(map[int32]int, len(srcList))
	for i, s := range srcList {
		srcIdx[int32(s)] = i
	}

	sr := gr.g.AugSemiring()
	boards := hitting.NewBoardSeq(n)
	dist := make([][]int64, n)
	stats, err := cc.Run(opts.config(n), func(nd *cc.Node) error {
		res, err := mssp.Run(nd, sr, gr.g.WeightRow(nd.ID), inS, boards.Next(nd.ID), opts.hopsetParams())
		if err != nil {
			return err
		}
		row := make([]int64, len(srcList))
		for i := range row {
			row[i] = Unreachable
		}
		for _, e := range res.Dist {
			if i, ok := srcIdx[e.Col]; ok {
				row[i] = e.Val.W
			}
		}
		dist[nd.ID] = row
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("ccsp: MSSP: %w", err)
	}
	return &MSSPResult{Sources: srcList, Dist: dist, Stats: statsFrom(stats)}, nil
}

// SSSPResult holds exact single-source distances.
type SSSPResult struct {
	// Source is the source node.
	Source int
	// Dist[v] is the exact distance from Source to v.
	Dist []int64
	// Iterations is the number of Bellman-Ford iterations on the shortcut
	// graph (bounded by 4·n/k + O(1), Lemma 32).
	Iterations int
	// Stats is the communication cost of the run.
	Stats Stats
}

// PathTo reconstructs a shortest path from the result's source to v on the
// original graph by predecessor descent over the exact distances. It
// returns nil if v is unreachable.
func (r *SSSPResult) PathTo(gr *Graph, v int) []int {
	if r.Dist[v] >= Unreachable {
		return nil
	}
	path := []int{v}
	cur := v
	for cur != r.Source {
		next := -1
		var nextW int64
		gr.Neighbors(cur, func(u int, w int64) {
			if r.Dist[u]+w == r.Dist[cur] && (next < 0 || u < next) {
				next, nextW = u, w
			}
		})
		_ = nextW
		if next < 0 {
			return nil // inconsistent distances; cannot happen for exact results
		}
		cur = next
		path = append(path, cur)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// SSSP computes exact single-source shortest paths (Theorem 33) in
// O~(n^{1/6}) rounds via the n^{5/6}-shortcut graph and Bellman-Ford.
func SSSP(gr *Graph, source int, opts Options) (*SSSPResult, error) {
	if err := gr.validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	n := gr.N()
	if source < 0 || source >= n {
		return nil, fmt.Errorf("ccsp: source %d out of range", source)
	}
	sr := gr.g.AugSemiring()
	var dist []int64
	var iters int
	stats, err := cc.Run(opts.config(n), func(nd *cc.Node) error {
		d, it := sssp.Exact(nd, sr, gr.g.WeightRow(nd.ID), source, 0)
		if nd.ID == 0 {
			dist = append([]int64(nil), d...)
			iters = it
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("ccsp: SSSP: %w", err)
	}
	return &SSSPResult{Source: source, Dist: dist, Iterations: iters, Stats: statsFrom(stats)}, nil
}

// DiameterResult holds the diameter estimate.
type DiameterResult struct {
	// Estimate satisfies roughly 2D/3 <= Estimate <= (1+ε)·D for true
	// diameter D (Claim 35; weighted graphs lose an additive max-weight
	// term on the lower side).
	Estimate int64
	// Stats is the communication cost of the run.
	Stats Stats
}

// Diameter computes the near-3/2 diameter approximation of §7.2.
func Diameter(gr *Graph, opts Options) (*DiameterResult, error) {
	if err := gr.validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	n := gr.N()
	sr := gr.g.AugSemiring()
	boards := hitting.NewBoardSeq(n)
	var estimate int64
	stats, err := cc.Run(opts.config(n), func(nd *cc.Node) error {
		est, err := diameter.Approx(nd, sr, gr.g.WeightRow(nd.ID), opts.Epsilon, boards, opts.hopsetParams())
		if err != nil {
			return err
		}
		if nd.ID == 0 {
			estimate = est
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("ccsp: diameter: %w", err)
	}
	return &DiameterResult{Estimate: estimate, Stats: statsFrom(stats)}, nil
}

// Neighbor is one entry of a k-nearest result: an exact distance plus the
// first hop of a shortest path (the routing witness of §3.1).
type Neighbor struct {
	// Node is the neighbor's ID.
	Node int
	// Dist is the exact distance.
	Dist int64
	// Hops is the minimal hop count among shortest paths.
	Hops int
	// FirstHop is the first edge of such a path (-1 for the self entry).
	FirstHop int
}

// KNearestResult holds per-node nearest-neighbor lists.
type KNearestResult struct {
	// Neighbors[v] lists v's k closest nodes (including itself), by
	// (distance, hops, ID).
	Neighbors [][]Neighbor
	// Stats is the communication cost of the run.
	Stats Stats
}

// KNearest computes, for every node, exact distances and routing witnesses
// to its k closest nodes (Theorem 18 over the witness-tracking semiring).
func KNearest(gr *Graph, k int, opts Options) (*KNearestResult, error) {
	if err := gr.validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, fmt.Errorf("ccsp: k must be positive, got %d", k)
	}
	n := gr.N()
	sr := gr.g.RoutedSemiring()
	out := make([][]Neighbor, n)
	stats, err := cc.Run(opts.config(n), func(nd *cc.Node) error {
		row := disttools.KNearest[semiring.WHF](nd, sr, gr.g.WeightRowRouted(nd.ID), k)
		nb := make([]Neighbor, 0, len(row))
		for _, e := range row {
			nb = append(nb, Neighbor{Node: int(e.Col), Dist: e.Val.W, Hops: int(e.Val.H), FirstHop: int(e.Val.FH)})
		}
		sort.Slice(nb, func(i, j int) bool {
			if nb[i].Dist != nb[j].Dist {
				return nb[i].Dist < nb[j].Dist
			}
			if nb[i].Hops != nb[j].Hops {
				return nb[i].Hops < nb[j].Hops
			}
			return nb[i].Node < nb[j].Node
		})
		out[nd.ID] = nb
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("ccsp: k-nearest: %w", err)
	}
	return &KNearestResult{Neighbors: out, Stats: statsFrom(stats)}, nil
}

// SourceDetectionResult holds hop-limited nearest-source lists.
type SourceDetectionResult struct {
	// Detected[v] lists the up-to-k nearest sources within d hops of v,
	// with d-hop-limited distances.
	Detected [][]Neighbor
	// Stats is the communication cost of the run.
	Stats Stats
}

// SourceDetection solves the (S, d, k)-source detection problem
// (Theorem 19): every node learns its k nearest sources within d hops.
func SourceDetection(gr *Graph, sources []int, d, k int, opts Options) (*SourceDetectionResult, error) {
	if err := gr.validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if d < 1 || k < 1 {
		return nil, fmt.Errorf("ccsp: d and k must be positive (d=%d, k=%d)", d, k)
	}
	n := gr.N()
	inS := make([]bool, n)
	for _, s := range sources {
		if s < 0 || s >= n {
			return nil, fmt.Errorf("ccsp: source %d out of range", s)
		}
		inS[s] = true
	}
	sr := gr.g.AugSemiring()
	out := make([][]Neighbor, n)
	stats, err := cc.Run(opts.config(n), func(nd *cc.Node) error {
		row := disttools.SourceDetectK[semiring.WH](nd, sr, gr.g.WeightRow(nd.ID), inS, d, k)
		nb := make([]Neighbor, 0, len(row))
		for _, e := range row {
			nb = append(nb, Neighbor{Node: int(e.Col), Dist: e.Val.W, Hops: int(e.Val.H), FirstHop: -1})
		}
		out[nd.ID] = nb
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("ccsp: source detection: %w", err)
	}
	return &SourceDetectionResult{Detected: out, Stats: statsFrom(stats)}, nil
}
