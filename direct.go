package ccsp

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/congestedclique/ccsp/internal/apsp"
	"github.com/congestedclique/ccsp/internal/diameter"
	"github.com/congestedclique/ccsp/internal/disttools"
	"github.com/congestedclique/ccsp/internal/hopset"
	"github.com/congestedclique/ccsp/internal/matrix"
	"github.com/congestedclique/ccsp/internal/mssp"
	"github.com/congestedclique/ccsp/internal/semiring"
	"github.com/congestedclique/ccsp/internal/sssp"
)

// This file implements ExecDirect (DESIGN.md §12): every Engine query and
// preprocessing step computed on flat host-side matrices with the matmul
// kernels, bypassing the per-node simulator. The results are byte-identical
// to the simulated paths - each direct function mirrors its collective
// sibling step by step, and the differential oracle suite (direct_test.go,
// FuzzDirectVsSimulated) asserts the equivalence over graph families,
// algorithms, and worker counts.

// directState is the Engine's direct-mode cache: the full augmented weight
// matrix and its routed (first-hop witness) sibling, each materialized
// once on first direct use and immutable afterwards (the graph must not
// change after NewEngine).
type directState struct {
	once sync.Once
	w    *matrix.Mat[semiring.WH]

	routedOnce sync.Once
	routed     *matrix.Mat[semiring.WHF]
}

// weightMat returns the cached full augmented weight matrix.
func (e *Engine) weightMat() *matrix.Mat[semiring.WH] {
	e.direct.once.Do(func() {
		e.direct.w = e.gr.g.WeightMatrix()
	})
	return e.direct.w
}

// routedMat returns the cached routed weight matrix (the k-nearest query
// input), so repeated queries stop paying the O(n·deg) row rebuild.
func (e *Engine) routedMat() *matrix.Mat[semiring.WHF] {
	e.direct.routedOnce.Do(func() {
		n := e.gr.N()
		w := matrix.New[semiring.WHF](n)
		for v := 0; v < n; v++ {
			w.Rows[v] = e.gr.g.WeightRowRouted(v)
		}
		e.direct.routed = w
	})
	return e.direct.routed
}

// artifactMats returns the artifact's cached direct-query matrices: the
// weight matrix the artifact was built on (G, or the low-degree subgraph
// G' for artLowDegree, reconstructed from the entry's degs vector exactly
// as the build did) and the merged G ∪ H matrix the β-hop detections run
// over. Built once per entry under its sync.Once - also for entries
// restored from a snapshot - and immutable afterwards, so every query
// after the first skips the O(n·deg) merge entirely (DESIGN.md §13).
func (e *Engine) artifactMats(variant artVariant, ent *artifactEntry) (base, gh *matrix.Mat[semiring.WH]) {
	ent.ghOnce.Do(func() {
		w := e.weightMat()
		if variant == artLowDegree {
			n := e.gr.N()
			k := apsp.DegreeThreshold(n)
			low := matrix.New[semiring.WH](n)
			for v := 0; v < n; v++ {
				low.Rows[v] = apsp.LowDegreeRow(v, w.Rows[v], ent.degs, k)
			}
			w = low
		}
		ent.base = w
		ent.gh = mssp.MergeGH(e.gr.g.AugSemiring(), w, ent.art)
	})
	return ent.base, ent.gh
}

// directStats is the Stats of a direct-mode computation: no rounds, no
// messages - the maps are empty rather than nil so snapshots round-trip
// losslessly - and the real cost as wall-clock time.
func directStats(n int, wall time.Duration) Stats {
	return Stats{
		Nodes:          n,
		Exec:           ExecDirect,
		ChargedRounds:  map[string]int{},
		PhaseRounds:    map[string]int{},
		CollectiveTime: map[string]time.Duration{"direct": wall},
	}
}

// wrapDirectErr is the direct-mode analogue of wrapRun: it maps the raw
// context sentinels (which the kernel loops return on cancellation) into
// the public ErrCanceled taxonomy, keeping the originals matchable.
func wrapDirectErr(op string, err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("ccsp: %s: %w: %w", op, ErrCanceled, err)
	default:
		return fmt.Errorf("ccsp: %s: %w", op, err)
	}
}

// buildArtifactDirect is the ExecDirect counterpart of buildArtifact: the
// §4 hopset construction on the host via hopset.BuildDirect. The resulting
// artifactEntry is byte-identical to the simulated build's (same Artifact,
// same degs vector); only its stats differ (wall-clock instead of rounds).
func (e *Engine) buildArtifactDirect(ctx context.Context, key artifactKey) (*artifactEntry, error) {
	op := fmt.Sprintf("preprocess (%s)", key.variant)
	if err := ctx.Err(); err != nil {
		return nil, wrapDirectErr(op, err)
	}
	n := e.gr.N()
	sr := e.gr.g.AugSemiring()
	start := time.Now()
	w := e.weightMat()
	var degsShared []int64
	if key.variant == artLowDegree {
		degs := make([]int64, n)
		for v := 0; v < n; v++ {
			degs[v] = int64(len(w.Rows[v])) // the row includes the diagonal: |N(v)|
		}
		degsShared = degs
		k := apsp.DegreeThreshold(n)
		low := matrix.New[semiring.WH](n)
		for v := 0; v < n; v++ {
			low.Rows[v] = apsp.LowDegreeRow(v, w.Rows[v], degs, k)
		}
		w = low
	}
	art, err := hopset.BuildDirect(ctx, sr, w, key.params, e.opts.Workers)
	if err != nil {
		return nil, wrapDirectErr(op, err)
	}
	return &artifactEntry{art: art, degs: degsShared, stats: directStats(n, time.Since(start))}, nil
}

// msspDirect answers an MSSP query from the cached artifact on the host.
func (e *Engine) msspDirect(ctx context.Context, inS []bool, srcList []int, srcIdx map[int32]int, ent *artifactEntry) (*MSSPResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, wrapDirectErr("MSSP", err)
	}
	n := e.gr.N()
	start := time.Now()
	_, gh := e.artifactMats(artFull, ent)
	res, err := mssp.RunDirectMerged(ctx, gh, ent.art.Beta, inS, e.opts.Workers)
	if err != nil {
		return nil, wrapDirectErr("MSSP", err)
	}
	dist := make([][]int64, n)
	for v := 0; v < n; v++ {
		row := make([]int64, len(srcList))
		for i := range row {
			row[i] = Unreachable
		}
		for _, en := range res.Rows[v] {
			if i, ok := srcIdx[en.Col]; ok {
				row[i] = en.Val.W
			}
		}
		dist[v] = row
	}
	return &MSSPResult{Sources: srcList, Dist: dist, Stats: directStats(n, time.Since(start))}, nil
}

// ssspDirect answers an exact SSSP query on the host.
func (e *Engine) ssspDirect(ctx context.Context, source int) (*SSSPResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, wrapDirectErr("SSSP", err)
	}
	n := e.gr.N()
	start := time.Now()
	dist, iters, err := sssp.ExactDirect(ctx, e.gr.g.AugSemiring(), e.weightMat(), source, 0, e.opts.Workers)
	if err != nil {
		return nil, wrapDirectErr("SSSP", err)
	}
	return &SSSPResult{Source: source, Dist: dist, Iterations: iters, Stats: directStats(n, time.Since(start))}, nil
}

// apspDirect wraps one direct APSP variant into an APSPResult.
func (e *Engine) apspDirect(ctx context.Context, name string, algo func() ([][]int64, error)) (*APSPResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, wrapDirectErr(name+" APSP", err)
	}
	start := time.Now()
	dist, err := algo()
	if err != nil {
		return nil, wrapDirectErr(name+" APSP", err)
	}
	return &APSPResult{Dist: dist, Stats: directStats(e.gr.N(), time.Since(start))}, nil
}

// diameterDirect answers a diameter query from the cached base artifact on
// the host.
func (e *Engine) diameterDirect(ctx context.Context, ent *artifactEntry) (*DiameterResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, wrapDirectErr("diameter", err)
	}
	n := e.gr.N()
	start := time.Now()
	_, gh := e.artifactMats(artFull, ent)
	est, err := diameter.ApproxDirect(ctx, e.gr.g.AugSemiring(), e.weightMat(), gh, ent.art.Beta, e.opts.Workers)
	if err != nil {
		return nil, wrapDirectErr("diameter", err)
	}
	return &DiameterResult{Estimate: est, Stats: directStats(n, time.Since(start))}, nil
}

// knearestDirect answers a k-nearest query on the host, over the routed
// (first-hop witness) semiring like its simulated sibling.
func (e *Engine) knearestDirect(ctx context.Context, k int) (*KNearestResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, wrapDirectErr("k-nearest", err)
	}
	n := e.gr.N()
	start := time.Now()
	knear, err := disttools.KNearestAll[semiring.WHF](ctx, e.gr.g.RoutedSemiring(), e.routedMat(), k, e.opts.Workers)
	if err != nil {
		return nil, wrapDirectErr("k-nearest", err)
	}
	out := make([][]Neighbor, n)
	for v := 0; v < n; v++ {
		row := knear.Rows[v]
		nb := make([]Neighbor, 0, len(row))
		for _, en := range row {
			nb = append(nb, Neighbor{Node: int(en.Col), Dist: en.Val.W, Hops: int(en.Val.H), FirstHop: int(en.Val.FH)})
		}
		sort.Slice(nb, func(i, j int) bool {
			if nb[i].Dist != nb[j].Dist {
				return nb[i].Dist < nb[j].Dist
			}
			if nb[i].Hops != nb[j].Hops {
				return nb[i].Hops < nb[j].Hops
			}
			return nb[i].Node < nb[j].Node
		})
		out[v] = nb
	}
	return &KNearestResult{Neighbors: out, Stats: directStats(n, time.Since(start))}, nil
}

// sourceDetectionDirect answers an (S, d, k)-source detection query on the
// host.
func (e *Engine) sourceDetectionDirect(ctx context.Context, inS []bool, d, k int) (*SourceDetectionResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, wrapDirectErr("source detection", err)
	}
	n := e.gr.N()
	start := time.Now()
	det, err := disttools.SourceDetectKAll[semiring.WH](ctx, e.gr.g.AugSemiring(), e.weightMat(), inS, d, k, e.opts.Workers)
	if err != nil {
		return nil, wrapDirectErr("source detection", err)
	}
	out := make([][]Neighbor, n)
	for v := 0; v < n; v++ {
		row := det.Rows[v]
		nb := make([]Neighbor, 0, len(row))
		for _, en := range row {
			nb = append(nb, Neighbor{Node: int(en.Col), Dist: en.Val.W, Hops: int(en.Val.H), FirstHop: -1})
		}
		out[v] = nb
	}
	return &SourceDetectionResult{Detected: out, Stats: directStats(n, time.Since(start))}, nil
}
