package ccsp

import (
	"container/heap"
	"context"
	"math/rand"
	"reflect"
	"testing"
)

// testGraph builds a connected random weighted graph through the public
// API.
func testGraph(n, extra int, maxW int64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	gr := NewGraph(n)
	for v := 1; v < n; v++ {
		gr.MustAddEdge(v, rng.Intn(v), rng.Int63n(maxW)+1)
	}
	for e := 0; e < extra; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			gr.MustAddEdge(u, v, rng.Int63n(maxW)+1)
		}
	}
	return gr
}

// dijkstra is an API-independent ground truth.
func dijkstra(gr *Graph, src int) []int64 {
	n := gr.N()
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[src] = 0
	q := &itemHeap{{v: src}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if it.d > dist[it.v] {
			continue
		}
		gr.Neighbors(it.v, func(u int, w int64) {
			if it.d+w < dist[u] {
				dist[u] = it.d + w
				heap.Push(q, pqItem{v: u, d: dist[u]})
			}
		})
	}
	return dist
}

type pqItem struct {
	v int
	d int64
}

type itemHeap []pqItem

func (h itemHeap) Len() int            { return len(h) }
func (h itemHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h itemHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *itemHeap) Push(x interface{}) { *h = append(*h, x.(pqItem)) }
func (h *itemHeap) Pop() interface{} {
	old := *h
	it := old[len(old)-1]
	*h = old[:len(old)-1]
	return it
}

func TestGraphBuilder(t *testing.T) {
	gr := NewGraph(4)
	if err := gr.AddEdge(0, 0, 1); err == nil {
		t.Error("want self-loop rejection")
	}
	if err := gr.AddEdge(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if gr.N() != 4 || gr.M() != 1 || gr.MaxWeight() != 2 {
		t.Errorf("builder metadata wrong: n=%d m=%d w=%d", gr.N(), gr.M(), gr.MaxWeight())
	}
	if gr.Unweighted() {
		t.Error("graph with weight-2 edge reported unweighted")
	}
	deg := 0
	gr.Neighbors(0, func(int, int64) { deg++ })
	if deg != 1 || gr.Degree(0) != 1 {
		t.Error("neighbor iteration wrong")
	}
	if _, err := FromEdges(3, [][3]int64{{0, 1, 1}, {1, 2, 4}}); err != nil {
		t.Fatal(err)
	}
	if _, err := FromEdges(3, [][3]int64{{0, 9, 1}}); err == nil {
		t.Error("want out-of-range rejection")
	}
}

func TestOptionsValidation(t *testing.T) {
	gr := testGraph(8, 4, 5, 1)
	if _, err := APSPWeighted(context.Background(), gr, Options{Epsilon: 2}); err == nil {
		t.Error("want epsilon validation error")
	}
	if _, err := MSSP(context.Background(), gr, nil, Options{}); err == nil {
		t.Error("want no-sources error")
	}
	if _, err := MSSP(context.Background(), gr, []int{99}, Options{}); err == nil {
		t.Error("want source range error")
	}
	if _, err := SSSP(context.Background(), gr, -1, Options{}); err == nil {
		t.Error("want source range error")
	}
	if _, err := KNearest(context.Background(), gr, 0, Options{}); err == nil {
		t.Error("want k validation error")
	}
	if _, err := SourceDetection(context.Background(), gr, []int{0}, 0, 1, Options{}); err == nil {
		t.Error("want d validation error")
	}
	var nilGraph *Graph
	if _, err := SSSP(context.Background(), nilGraph, 0, Options{}); err == nil {
		t.Error("want nil graph error")
	}
}

func TestAPSPWeightedPublic(t *testing.T) {
	gr := testGraph(24, 30, 8, 2)
	eps := 0.5
	res, err := APSPWeighted(context.Background(), gr, Options{Epsilon: eps})
	if err != nil {
		t.Fatal(err)
	}
	maxW := gr.MaxWeight()
	for u := 0; u < gr.N(); u++ {
		ref := dijkstra(gr, u)
		for v := 0; v < gr.N(); v++ {
			d, got := ref[v], res.Distance(u, v)
			if d >= Unreachable {
				if got < Unreachable {
					t.Fatalf("(%d,%d): estimate for unreachable pair", u, v)
				}
				continue
			}
			if got < d {
				t.Fatalf("(%d,%d): underestimate %d < %d", u, v, got, d)
			}
			bound := (2+eps)*float64(d) + (1+eps)*float64(maxW)
			if float64(got) > bound+1e-9 {
				t.Fatalf("(%d,%d): %d above (2+ε)d+(1+ε)W bound for d=%d", u, v, got, d)
			}
		}
	}
	if res.Stats.TotalRounds <= 0 || res.Stats.Messages <= 0 {
		t.Error("stats not populated")
	}
}

func TestAPSPUnweightedPublic(t *testing.T) {
	gr := NewGraph(20)
	rng := rand.New(rand.NewSource(5))
	for v := 1; v < 20; v++ {
		gr.MustAddEdge(v, rng.Intn(v), 1)
	}
	for e := 0; e < 15; e++ {
		u, v := rng.Intn(20), rng.Intn(20)
		if u != v {
			gr.MustAddEdge(u, v, 1)
		}
	}
	if !gr.Unweighted() {
		t.Fatal("test graph must be unweighted")
	}
	eps := 0.5
	res, err := APSPUnweighted(context.Background(), gr, Options{Epsilon: eps})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < gr.N(); u++ {
		ref := dijkstra(gr, u)
		for v := 0; v < gr.N(); v++ {
			if ref[v] >= Unreachable {
				continue
			}
			got := res.Distance(u, v)
			if got < ref[v] || float64(got) > (2+eps)*float64(ref[v])+1e-9 {
				t.Fatalf("(%d,%d): estimate %d for true %d violates (2+ε)", u, v, got, ref[v])
			}
		}
	}
}

func TestAPSPWeighted3Public(t *testing.T) {
	gr := testGraph(20, 24, 6, 3)
	eps := 0.5
	res, err := APSPWeighted3(context.Background(), gr, Options{Epsilon: eps})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < gr.N(); u++ {
		ref := dijkstra(gr, u)
		for v := 0; v < gr.N(); v++ {
			if ref[v] >= Unreachable {
				continue
			}
			got := res.Distance(u, v)
			if got < ref[v] || float64(got) > (3+eps)*float64(ref[v])+1e-9 {
				t.Fatalf("(%d,%d): estimate %d for true %d violates (3+ε)", u, v, got, ref[v])
			}
		}
	}
}

func TestMSSPPublic(t *testing.T) {
	gr := testGraph(25, 30, 10, 4)
	sources := []int{3, 7, 11, 19}
	eps := 0.5
	res, err := MSSP(context.Background(), gr, sources, Options{Epsilon: eps})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sources {
		ref := dijkstra(gr, s)
		for v := 0; v < gr.N(); v++ {
			got, err := res.Distance(v, s)
			if err != nil {
				t.Fatal(err)
			}
			if ref[v] >= Unreachable {
				continue
			}
			if got < ref[v] || float64(got) > (1+eps)*float64(ref[v])+1e-9 {
				t.Fatalf("(%d,%d): %d violates (1+ε) for true %d", v, s, got, ref[v])
			}
		}
	}
	if _, err := res.Distance(0, 5); err == nil {
		t.Error("want error for non-source query")
	}
	// Duplicate sources are deduplicated.
	res2, err := MSSP(context.Background(), gr, []int{3, 3, 3}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Sources) != 1 {
		t.Errorf("duplicated sources not deduped: %v", res2.Sources)
	}
}

func TestSSSPPublicExactAndPath(t *testing.T) {
	gr := testGraph(30, 40, 10, 6)
	src := 4
	res, err := SSSP(context.Background(), gr, src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref := dijkstra(gr, src)
	for v := 0; v < gr.N(); v++ {
		if res.Dist[v] != ref[v] {
			t.Fatalf("d[%d]=%d, want %d", v, res.Dist[v], ref[v])
		}
	}
	for v := 0; v < gr.N(); v++ {
		if ref[v] >= Unreachable {
			if res.PathTo(gr, v) != nil {
				t.Fatalf("path to unreachable %d", v)
			}
			continue
		}
		path := res.PathTo(gr, v)
		if len(path) == 0 || path[0] != src || path[len(path)-1] != v {
			t.Fatalf("bad path to %d: %v", v, path)
		}
		var total int64
		for i := 1; i < len(path); i++ {
			best := int64(-1)
			gr.Neighbors(path[i-1], func(u int, w int64) {
				if u == path[i] && (best < 0 || w < best) {
					best = w
				}
			})
			if best < 0 {
				t.Fatalf("path step %d-%d is not an edge", path[i-1], path[i])
			}
			total += best
		}
		if total != ref[v] {
			t.Fatalf("path to %d has weight %d, want %d", v, total, ref[v])
		}
	}
}

// TestSSSPPathToUnit pins PathTo's behavior on a handcrafted graph: a
// reachable target yields the unique shortest path, the source yields the
// single-node path, and an unreachable target yields nil.
func TestSSSPPathToUnit(t *testing.T) {
	// 0 --2-- 1 --3-- 2, with node 3 disconnected.
	gr := NewGraph(4)
	gr.MustAddEdge(0, 1, 2)
	gr.MustAddEdge(1, 2, 3)
	res, err := SSSP(context.Background(), gr, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.PathTo(gr, 2), []int{0, 1, 2}; !reflect.DeepEqual(got, want) {
		t.Errorf("PathTo(2) = %v, want %v", got, want)
	}
	if got, want := res.PathTo(gr, 0), []int{0}; !reflect.DeepEqual(got, want) {
		t.Errorf("PathTo(source) = %v, want %v", got, want)
	}
	if got := res.PathTo(gr, 3); got != nil {
		t.Errorf("PathTo(unreachable) = %v, want nil", got)
	}
}

func TestDiameterPublic(t *testing.T) {
	gr := NewGraph(24)
	for v := 0; v+1 < 24; v++ {
		gr.MustAddEdge(v, v+1, 1)
	}
	eps := 0.5
	res, err := Diameter(context.Background(), gr, Options{Epsilon: eps})
	if err != nil {
		t.Fatal(err)
	}
	d := int64(23)
	if res.Estimate < 2*d/3 || float64(res.Estimate) > (1+eps)*float64(d)+1e-9 {
		t.Errorf("diameter estimate %d outside [2D/3, (1+ε)D] for D=%d", res.Estimate, d)
	}
}

func TestKNearestPublic(t *testing.T) {
	gr := testGraph(20, 25, 8, 7)
	k := 6
	res, err := KNearest(context.Background(), gr, k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < gr.N(); v++ {
		nb := res.Neighbors[v]
		if len(nb) != k {
			t.Fatalf("node %d has %d neighbors, want %d", v, len(nb), k)
		}
		if nb[0].Node != v || nb[0].Dist != 0 || nb[0].FirstHop != -1 {
			t.Fatalf("node %d: first entry must be self: %+v", v, nb[0])
		}
		ref := dijkstra(gr, v)
		for i, e := range nb {
			if e.Dist != ref[e.Node] {
				t.Fatalf("node %d neighbor %d: dist %d, want %d", v, e.Node, e.Dist, ref[e.Node])
			}
			if i > 0 && nb[i-1].Dist > e.Dist {
				t.Fatalf("node %d: neighbors not sorted", v)
			}
			if e.Node != v {
				// The witness must be adjacent and on a shortest path.
				ok := false
				gr.Neighbors(v, func(u int, w int64) {
					if u == e.FirstHop && w+dijkstra(gr, u)[e.Node] == e.Dist {
						ok = true
					}
				})
				if !ok {
					t.Fatalf("node %d neighbor %d: witness %d invalid", v, e.Node, e.FirstHop)
				}
			}
		}
	}
}

func TestSourceDetectionPublic(t *testing.T) {
	gr := NewGraph(12)
	for v := 0; v+1 < 12; v++ {
		gr.MustAddEdge(v, v+1, 1)
	}
	res, err := SourceDetection(context.Background(), gr, []int{0, 11}, 3, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Node 5 is 5 and 6 hops from the sources: nothing within 3 hops.
	if len(res.Detected[5]) != 0 {
		t.Errorf("node 5 detected %v within 3 hops", res.Detected[5])
	}
	// Node 2 sees source 0 at distance 2.
	found := false
	for _, e := range res.Detected[2] {
		if e.Node == 0 && e.Dist == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("node 2 missed source 0: %v", res.Detected[2])
	}
}

func TestStatsString(t *testing.T) {
	gr := testGraph(10, 5, 3, 8)
	res, err := SSSP(context.Background(), gr, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s := res.Stats.String(); s == "" {
		t.Error("empty stats string")
	}
	if res.Stats.Nodes != 10 {
		t.Errorf("stats nodes=%d, want 10", res.Stats.Nodes)
	}
	if res.Stats.Words != res.Stats.Messages*4 {
		t.Errorf("words=%d, want 4x messages", res.Stats.Words)
	}
}
