package ccsp

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"github.com/congestedclique/ccsp/api"
)

// allKindRequests is one request per api kind (plus the apsp3 variant),
// the coverage set for differential checks.
func allKindRequests() map[string]api.Request {
	return map[string]api.Request{
		"sssp":             {Kind: api.KindSSSP, SSSP: &api.SSSPParams{Source: 3}},
		"mssp":             {Kind: api.KindMSSP, MSSP: &api.MSSPParams{Sources: []int{2, 5, 2}}},
		"apsp-auto":        {Kind: api.KindAPSP},
		"apsp-weighted3":   {Kind: api.KindAPSP, APSP: &api.APSPParams{Variant: api.APSPWeighted3}},
		"distance":         {Kind: api.KindDistance, Distance: &api.DistanceParams{From: 2, To: 9}},
		"diameter":         {Kind: api.KindDiameter},
		"knearest":         {Kind: api.KindKNearest, KNearest: &api.KNearestParams{K: 3}},
		"source-detection": {Kind: api.KindSourceDetection, SourceDetection: &api.SourceDetectionParams{Sources: []int{0, 5}, D: 3, K: 2}},
	}
}

// edgeSet flattens a graph into its canonical pair->weight map.
func edgeSet(gr *Graph) map[[2]int]int64 {
	edges := make(map[[2]int]int64)
	for u := 0; u < gr.N(); u++ {
		u := u
		gr.Neighbors(u, func(v int, w int64) {
			if u < v {
				edges[[2]int{u, v}] = w
			}
		})
	}
	return edges
}

// TestDynamicDifferentialAllKinds pins the central guarantee of the
// mutation subsystem: after a batch of inserts, reweights and deletes,
// a DynamicEngine answers every query kind identically - results AND
// stats - to a cold engine built from scratch on the final graph. Both
// execution modes.
func TestDynamicDifferentialAllKinds(t *testing.T) {
	ups := []EdgeUpdate{
		{U: 0, V: 1, W: 3},   // reweight (the spanning edge {1,0} always exists)
		{U: 2, V: 9, W: 7},   // insert-or-reweight
		{U: 4, V: 11, W: -1}, // delete (maybe a no-op)
	}
	for _, exec := range []Execution{ExecSimulated, ExecDirect} {
		t.Run(fmt.Sprint(exec), func(t *testing.T) {
			ctx := context.Background()
			gr := testGraph(16, 16, 9, 3)
			opts := Options{Epsilon: 0.5, Execution: exec}
			eng, err := NewEngine(ctx, gr, opts)
			if err != nil {
				t.Fatal(err)
			}
			dyn := NewDynamicEngine(eng)
			defer dyn.Close()
			epoch, err := dyn.Update(ctx, ups)
			if err != nil {
				t.Fatal(err)
			}
			if epoch != 1 || dyn.Epoch() != 1 {
				t.Fatalf("epoch = %d (Epoch() %d), want 1", epoch, dyn.Epoch())
			}

			// Expected final graph: the update semantics replayed by hand
			// on the original edge set.
			edges := edgeSet(gr)
			for _, u := range ups {
				key := [2]int{u.U, u.V}
				if key[0] > key[1] {
					key[0], key[1] = key[1], key[0]
				}
				if u.W < 0 {
					delete(edges, key)
				} else {
					edges[key] = u.W
				}
			}
			final := NewGraph(16)
			for key, w := range edges {
				final.MustAddEdge(key[0], key[1], w)
			}
			cold, err := NewEngine(ctx, final, opts)
			if err != nil {
				t.Fatal(err)
			}

			reqs := allKindRequests()
			if len(reqs) < len(api.Kinds()) {
				t.Fatalf("differential covers %d kinds, schema has %d", len(reqs), len(api.Kinds()))
			}
			for name, req := range reqs {
				want, err := cold.Query(ctx, req)
				if err != nil {
					t.Fatalf("%s: cold: %v", name, err)
				}
				got, err := dyn.Engine().Query(ctx, req)
				if err != nil {
					t.Fatalf("%s: dynamic: %v", name, err)
				}
				got.Cached, want.Cached = false, false
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s: rebuilt engine differs from cold engine on the final graph\n got %+v\nwant %+v", name, got, want)
				}
			}
		})
	}
}

// TestDynamicEngineConcurrentSwaps is the torture test behind the
// "readers never block, never mix epochs" claim, run under -race: while
// a writer publishes generations back-to-back, readers snapshot the
// engine, query it, and check (a) the per-reader epoch sequence is
// monotone, and (b) every answer equals the canonical answer of the
// epoch it was served at - an answer straddling a swap would disagree
// with both neighbors.
func TestDynamicEngineConcurrentSwaps(t *testing.T) {
	ctx := context.Background()
	gr := testGraph(12, 10, 9, 7)
	eng, err := NewEngine(ctx, gr, Options{Epsilon: 0.5, Execution: ExecDirect})
	if err != nil {
		t.Fatal(err)
	}
	dyn := NewDynamicEngine(eng)
	defer dyn.Close()

	const generations = 8
	req := api.Request{Kind: api.KindDistance, Distance: &api.DistanceParams{From: 0, To: 11}}
	var byEpoch sync.Map // epoch -> *api.Response, first answer wins
	canonical := func(e *Engine) *api.Response {
		resp, err := e.Query(ctx, req)
		if err != nil {
			t.Errorf("query at epoch %d: %v", e.Epoch(), err)
			return nil
		}
		resp.Cached = false
		return resp
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last uint64
			for {
				select {
				case <-done:
					return
				default:
				}
				e := dyn.Engine() // one atomic load: a single-epoch view
				epoch := e.Epoch()
				if epoch < last {
					t.Errorf("reader saw epoch go backwards: %d after %d", epoch, last)
					return
				}
				last = epoch
				got := canonical(e)
				if got == nil {
					return
				}
				want, _ := byEpoch.LoadOrStore(epoch, got)
				if !reflect.DeepEqual(got, want.(*api.Response)) {
					t.Errorf("epoch %d answered inconsistently:\n got %+v\nwant %+v", epoch, got, want)
					return
				}
			}
		}()
	}

	for i := 0; i < generations; i++ {
		// Reweight one spanning edge per generation so every swap changes
		// real distances.
		epoch, err := dyn.Update(ctx, []EdgeUpdate{{U: i + 1, V: 0, W: int64(10 + i)}})
		if err != nil {
			t.Fatalf("generation %d: %v", i, err)
		}
		if epoch != uint64(i+1) {
			t.Fatalf("generation %d published at epoch %d", i, epoch)
		}
	}
	close(done)
	wg.Wait()
	if got := dyn.Epoch(); got != generations {
		t.Fatalf("final epoch = %d, want %d", got, generations)
	}
}

// TestGraphMutationAfterNewEngineInvisible is the regression test for
// the silent-mutation hazard: AddEdge on the input graph after the
// engine is built must not leak into served answers (the engine owns a
// deep copy; DynamicEngine is the supported mutation path).
func TestGraphMutationAfterNewEngineInvisible(t *testing.T) {
	ctx := context.Background()
	gr := NewGraph(4)
	gr.MustAddEdge(0, 1, 1)
	gr.MustAddEdge(1, 2, 1)
	gr.MustAddEdge(2, 3, 1)
	eng, err := NewEngine(ctx, gr, Options{Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	before, err := eng.SSSP(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Mutate the caller's graph under the engine: a shortcut that would
	// change dist(0,3) from 3 to 1 if the engine shared storage.
	gr.MustAddEdge(0, 3, 1)

	if got := eng.Graph().M(); got != 3 {
		t.Fatalf("engine graph has %d edges after caller mutation, want 3", got)
	}
	after, err := eng.SSSP(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before.Dist, after.Dist) {
		t.Fatalf("caller AddEdge leaked into the engine: %v -> %v", before.Dist, after.Dist)
	}
	if after.Dist[3] != 3 {
		t.Fatalf("dist(0,3) = %d, want 3 (engine must not see the shortcut)", after.Dist[3])
	}
}

// TestSnapshotEpochRoundTrip: Save persists the engine's epoch, Load
// restores it, and a DynamicEngine wrapped around the loaded engine
// resumes the generation sequence instead of reusing burned numbers.
func TestSnapshotEpochRoundTrip(t *testing.T) {
	ctx := context.Background()
	gr := testGraph(10, 8, 9, 5)
	eng, err := NewEngine(ctx, gr, Options{Epsilon: 0.5, Execution: ExecDirect})
	if err != nil {
		t.Fatal(err)
	}
	dyn := NewDynamicEngine(eng)
	for i := 0; i < 3; i++ {
		if _, err := dyn.Update(ctx, []EdgeUpdate{{U: 0, V: 9, W: int64(i + 2)}}); err != nil {
			t.Fatal(err)
		}
	}
	dyn.Close()

	var buf bytes.Buffer
	if err := dyn.Engine().Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEngine(ctx, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got := loaded.Epoch(); got != 3 {
		t.Fatalf("loaded epoch = %d, want 3", got)
	}

	dyn2 := NewDynamicEngine(loaded)
	defer dyn2.Close()
	epoch, err := dyn2.Update(ctx, []EdgeUpdate{{U: 1, V: 2, W: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 4 {
		t.Fatalf("resumed sequence published at %d, want 4", epoch)
	}
}
