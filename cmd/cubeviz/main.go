// Command cubeviz regenerates the paper's Figure 1 and Figure 2: the cube
// partitioning of the matrix multiplication task (Lemma 9) and the layer
// matrices P_k assembled from the subtask blocks, rendered as text from the
// actual distributed partitioning run.
//
// Usage:
//
//	cubeviz              # n=8 like the paper's Figure 1
//	cubeviz -n 16 -rho 4 # denser example
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"github.com/congestedclique/ccsp/internal/matmul"
	"github.com/congestedclique/ccsp/internal/matrix"
	"github.com/congestedclique/ccsp/internal/semiring"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cubeviz:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n    = flag.Int("n", 8, "matrix dimension (the paper's figures use 8)")
		rho  = flag.Int("rho", 3, "non-zero entries per row of the random inputs")
		seed = flag.Int64("seed", 1, "workload seed")
	)
	flag.Parse()
	if *n < 2 || *n > 64 {
		return fmt.Errorf("n must be in [2, 64] for a readable rendering, got %d", *n)
	}

	sr := semiring.NewMinPlus(1 << 30)
	rng := rand.New(rand.NewSource(*seed))
	mk := func(s int64) *matrix.Mat[int64] {
		m := matrix.New[int64](*n)
		for i, cols := range matrix.RandomSupport(*n, *rho, s) {
			row := make(matrix.Row[int64], 0, len(cols))
			for _, c := range cols {
				row = append(row, matrix.Entry[int64]{Col: c, Val: int64(rng.Intn(100) + 1)})
			}
			m.Rows[i] = matrix.SortRow(row)
		}
		return m
	}
	s := mk(*seed)
	t := mk(*seed + 1)
	sketch, err := matmul.PartitionSketch[int64](sr, s, t, matrix.SupportDensity[int64](s, t))
	if err != nil {
		return err
	}
	fmt.Print(sketch)

	bal, err := matmul.MeasureBalance[int64](sr, s, t, matrix.SupportDensity[int64](s, t))
	if err != nil {
		return err
	}
	fmt.Printf("\nLemma 9 guarantee check: maxS=%d <= %d, maxT=%d <= %d\n",
		bal.MaxSubS, bal.BoundSubS, bal.MaxSubT, bal.BoundSubT)
	return nil
}
