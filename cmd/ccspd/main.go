// Command ccspd is the distance-serving daemon: it loads (or builds,
// then saves) preprocessed snapshots of one or more graphs and serves
// approximate shortest-path queries over HTTP/JSON from shared query
// engines.
//
// Startup sources (at least one required):
//
//	ccspd -load warm.snap                       # restore a saved engine: no preprocessing
//	ccspd -graph g.txt                          # build from an edge-list or DIMACS .gr file
//	ccspd -graph g.gr -save warm.snap           # build once, persist for the next restart
//	ccspd -graph g.gr -exec direct              # direct-kernel build: identical answers, seconds not minutes
//	ccspd -load roads=roads.snap -load web=web.snap   # serve named graphs (api.Request.Graph routes)
//	ccspd -graphs snapdir/                      # serve every NAME.snap in a directory as graph NAME
//
// A bare -load PATH or -graph serves the default (unnamed) graph -
// requests without a "graph" field - and is byte-identical to the
// single-graph daemon of earlier releases. NAME=PATH loads and -graphs
// entries serve named graphs addressed by api.Request.Graph; both
// forms combine freely as long as names are unique.
//
// Serving:
//
//	ccspd -graph g.txt -addr :8080 -timeout 30s -cache 128 -workers 0
//
// The daemon listens immediately and loads snapshots behind the
// listener: GET /healthz answers 503 {"status":"starting"} and GET
// /readyz answers 503 {"ready":false} until every snapshot is loaded
// and preprocessed, then both flip (readyz lists the served graph
// IDs). Cluster probers key on /readyz; load balancers on /healthz.
//
// Endpoints: the typed query plane POST /v1/query (one api.Request:
// sssp, mssp, apsp, distance, diameter, knearest, source_detection) and
// POST /v1/batch (many requests, one deduped engine batch with
// per-request errors), plus GET /healthz, /readyz, /v1/stats and
// /debug/vars (expvar; serving counters under "ccspd"); the pre-plane
// GET endpoints (/v1/sssp, /v1/mssp, /v1/distance, /v1/diameter) remain
// as deprecated byte-identical shims. Distances are -1 for unreachable
// pairs. The client package (and cmd/ccsp -server) speaks the POST
// plane. GET /metrics exposes every serving and engine counter in
// Prometheus text format.
//
// Every graph is served mutable: POST /v1/update applies a batch of
// edge insertions, reweights, and deletions as one atomic graph
// generation - a background rebuild preprocesses the mutated graph and
// hot-swaps it in while queries keep answering at the previous epoch -
// and GET /v1/epoch reports the serving graph version (which also keys
// the response cache, so stale answers can never be served across an
// update). A snapshot restored with -load resumes its persisted epoch.
//
// Admission control bounds concurrent query execution: -max-inflight
// slots (default 4×GOMAXPROCS) plus a short -max-queue wait line.
// Requests beyond both shed immediately with a typed 503 "overloaded"
// error and a Retry-After hint; cache hits and health probes bypass
// admission entirely, so /healthz stays green under overload.
//
// -debug-addr starts a second listener (keep it loopback-only) with
// pprof profiles, expvar, and the same /metrics page - profiling stays
// off the public port. SIGINT/SIGTERM during startup aborts a build in
// flight at its next simulator barrier (a partial -save snapshot is never
// left behind: the write is temp-file + rename, and an interrupted build
// never reaches it); during serving it drains in-flight requests, then
// cancels whatever is still running after the drain window, and exits
// cleanly.
//
// Example:
//
//	$ ccspd -graph graph.txt -save warm.snap &
//	$ curl -s localhost:8080/v1/query -d '{"kind":"distance","distance":{"from":0,"to":41}}'
//	{"kind":"distance","distance":{"from":0,"to":41,"distance":12,"reachable":true},...}
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"github.com/congestedclique/ccsp"
	"github.com/congestedclique/ccsp/api"
	"github.com/congestedclique/ccsp/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ccspd:", err)
		os.Exit(1)
	}
}

// loadList collects repeated -load flags.
type loadList []string

func (l *loadList) String() string { return strings.Join(*l, ",") }

func (l *loadList) Set(v string) error {
	*l = append(*l, v)
	return nil
}

// source is one graph to serve: a snapshot to restore, or (for the
// default graph only) a graph file to preprocess.
type source struct {
	name     string // "" = default graph
	path     string
	build    bool   // preprocess path as a graph file instead of restoring
	savePath string // non-empty: persist the built engine
}

func run() error {
	var loads loadList
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		graphPath = flag.String("graph", "", "graph file (edge list or DIMACS .gr) to build the default engine from")
		savePath  = flag.String("save", "", "write the preprocessed engine to this snapshot file after building (with -graph)")
		graphsDir = flag.String("graphs", "", "directory of NAME.snap snapshots to serve as named graphs")
		eps       = flag.Float64("eps", 0.5, "approximation parameter ε (ignored with -load: the snapshot pins it)")
		workers   = flag.Int("workers", 0, "simulator worker-pool size (0 = GOMAXPROCS; ignored with -load)")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-request query timeout (0 = none)")
		cacheSize = flag.Int("cache", 128, "response cache capacity in entries (negative = disabled)")
		execMode  = flag.String("exec", "simulated", "execution mode: simulated (round accounting) | direct (kernel, identical answers, fast startup; ignored with -load)")
		maxInFl   = flag.Int("max-inflight", 0, "admission control: max queries executing concurrently (0 = 4×GOMAXPROCS, negative = unlimited)")
		maxQueue  = flag.Int("max-queue", 0, "admission control: max queries waiting for an execution slot (0 = same as -max-inflight, negative = no queue)")
		debugAddr = flag.String("debug-addr", "", "optional separate listener for pprof + expvar + /metrics (e.g. 127.0.0.1:6060); off when empty")
	)
	flag.Var(&loads, "load", "snapshot to restore: PATH for the default graph, or NAME=PATH for a named graph (repeatable)")
	flag.Parse()
	if flag.NArg() != 0 {
		return fmt.Errorf("unexpected arguments %v (use -graph/-load/-graphs)", flag.Args())
	}
	exec, err := ccsp.ParseExecution(*execMode)
	if err != nil {
		return err
	}

	sources, err := gatherSources(*graphPath, *savePath, loads, *graphsDir)
	if err != nil {
		return err
	}

	// One signal context governs the whole lifecycle: SIGINT/SIGTERM
	// during the (potentially minutes-long) preprocessing builds aborts
	// them at the next simulator barrier; during serving it triggers the
	// graceful drain below.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Listen before loading: the daemon is immediately probeable
	// (healthz/readyz answer 503 "starting") while snapshots restore and
	// builds run, so cluster membership sees alive-but-loading instead
	// of connection-refused.
	srv, err := server.New(server.Config{
		Deferred:    true,
		Timeout:     *timeout,
		CacheSize:   *cacheSize,
		MaxInFlight: *maxInFl,
		MaxQueue:    *maxQueue,
	})
	if err != nil {
		return err
	}
	expvar.Publish("ccspd", expvar.Func(srv.Vars))

	// Opt-in debug listener: pprof profiles, expvar, and the same
	// /metrics page as the serving port. A separate listener (typically
	// loopback-only) keeps profiling endpoints off the public port.
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		dbgSrv := &http.Server{Handler: srv.DebugHandler(), ReadHeaderTimeout: 10 * time.Second}
		go func() {
			if err := dbgSrv.Serve(dln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("ccspd: debug listener: %v", err)
			}
		}()
		defer dbgSrv.Close() //nolint:errcheck
		log.Printf("ccspd: debug endpoints (pprof, expvar, metrics) on %s", dln.Addr())
	}

	// Request contexts derive from serveCtx: if the drain window below
	// expires with queries still running, canceling it stops them at
	// their next barrier instead of leaking CPU-bound runs past exit.
	serveCtx, cancelServe := context.WithCancel(context.Background())
	defer cancelServe()
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return serveCtx },
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	log.Printf("ccspd: listening on %s (loading %d graph(s); poll /readyz for readiness)", ln.Addr(), len(sources))

	opts := ccsp.Options{Epsilon: *eps, Workers: *workers, Execution: exec}
	interrupted := false
	for _, src := range sources {
		eng, err := loadSource(ctx, src, opts)
		if err != nil {
			if errors.Is(err, ccsp.ErrCanceled) {
				log.Printf("ccspd: interrupted during startup, exiting (no snapshot written)")
				interrupted = true
				break
			}
			httpSrv.Close() //nolint:errcheck
			return err
		}
		// Every graph serves mutable: POST /v1/update stages edge
		// mutations, a background rebuild publishes them, and the epoch
		// (resumed from the snapshot, if any) keys the response cache.
		dyn := ccsp.NewDynamicEngine(eng)
		defer dyn.Close()
		if err := srv.AddDynamicGraph(src.name, dyn); err != nil {
			httpSrv.Close() //nolint:errcheck
			return err
		}
	}
	if !interrupted {
		srv.SetReady()
		log.Printf("ccspd: ready, serving %s", describeGraphs(sources))
	}

	if !interrupted {
		select {
		case err := <-errc:
			return err
		case <-ctx.Done():
		}
	}
	log.Printf("ccspd: shutting down (draining in-flight queries)")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err = httpSrv.Shutdown(shutCtx)
	cancelServe() // whatever outlived the drain window unwinds now
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		// The doc contract: an expired drain window is still a clean
		// exit - the base-context cancellation above stops the stragglers.
		log.Printf("ccspd: drain window expired; canceled remaining queries")
	case err != nil:
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// gatherSources validates the flag combinations and produces the load
// plan: at most one default-graph source (-graph, or a bare -load
// PATH), any number of uniquely named snapshots (NAME=PATH loads and
// -graphs directory entries), at least one source overall.
func gatherSources(graphPath, savePath string, loads loadList, graphsDir string) ([]source, error) {
	var sources []source
	seen := make(map[string]string) // name -> origin, for duplicate diagnostics
	add := func(s source, origin string) error {
		if prev, dup := seen[s.name]; dup {
			if s.name == "" {
				return fmt.Errorf("two default-graph sources (%s and %s); name one with NAME=PATH", prev, origin)
			}
			return fmt.Errorf("graph %q defined twice (%s and %s)", s.name, prev, origin)
		}
		if err := api.ValidateGraphID(s.name); err != nil {
			return fmt.Errorf("%s: %w", origin, err)
		}
		seen[s.name] = origin
		sources = append(sources, s)
		return nil
	}

	if savePath != "" && graphPath == "" {
		return nil, fmt.Errorf("-save requires -graph (snapshots restored with -load are already saved)")
	}
	if graphPath != "" {
		if err := add(source{path: graphPath, build: true, savePath: savePath}, "-graph "+graphPath); err != nil {
			return nil, err
		}
	}
	for _, l := range loads {
		s := source{path: l}
		if eq := strings.IndexByte(l, '='); eq >= 0 {
			s.name, s.path = l[:eq], l[eq+1:]
			if s.path == "" {
				return nil, fmt.Errorf("-load %s: empty path", l)
			}
		}
		if err := add(s, "-load "+l); err != nil {
			return nil, err
		}
	}
	if graphsDir != "" {
		snaps, err := filepath.Glob(filepath.Join(graphsDir, "*.snap"))
		if err != nil {
			return nil, err
		}
		if len(snaps) == 0 {
			return nil, fmt.Errorf("-graphs %s: no *.snap files", graphsDir)
		}
		sort.Strings(snaps) // deterministic load order and duplicate reporting
		for _, p := range snaps {
			name := strings.TrimSuffix(filepath.Base(p), ".snap")
			if err := add(source{name: name, path: p}, "-graphs entry "+p); err != nil {
				return nil, err
			}
		}
	}
	if len(sources) == 0 {
		return nil, fmt.Errorf("at least one of -graph, -load or -graphs is required")
	}
	return sources, nil
}

// describeGraphs renders the serving set for the ready log line.
func describeGraphs(sources []source) string {
	var names []string
	for _, s := range sources {
		if s.name == "" {
			names = append(names, "the default graph")
		} else {
			names = append(names, fmt.Sprintf("%q", s.name))
		}
	}
	return fmt.Sprintf("%d graph(s): %s", len(sources), strings.Join(names, ", "))
}

// loadSource realizes one source: restore its snapshot, or build from a
// graph file (optionally persisting the warm engine). Canceling ctx
// aborts a build in flight; a -save snapshot is only written after a
// completed build, atomically.
func loadSource(ctx context.Context, src source, opts ccsp.Options) (*ccsp.Engine, error) {
	label := src.name
	if label == "" {
		label = "default"
	}
	if src.build {
		g, err := ccsp.ReadGraphFile(src.path)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		eng, err := ccsp.NewEngine(ctx, g, opts)
		if err != nil {
			return nil, err
		}
		log.Printf("ccspd: [%s] preprocessed %s in %v (%d rounds)",
			label, src.path, time.Since(start).Round(time.Millisecond), eng.PreprocessStats().Total.TotalRounds)
		if src.savePath != "" {
			if err := saveSnapshot(eng, src.savePath); err != nil {
				return nil, err
			}
			log.Printf("ccspd: [%s] saved snapshot to %s", label, src.savePath)
		}
		return eng, nil
	}
	f, err := os.Open(src.path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	start := time.Now()
	eng, err := ccsp.LoadEngine(ctx, f)
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", src.path, err)
	}
	log.Printf("ccspd: [%s] restored snapshot %s in %v (%d artifacts, %d preprocessing rounds skipped)",
		label, src.path, time.Since(start).Round(time.Millisecond),
		len(eng.PreprocessStats().Builds), eng.PreprocessStats().Total.TotalRounds)
	return eng, nil
}

// saveSnapshot writes atomically: temp file + rename, so a crash mid-save
// never leaves a truncated snapshot at the target path (the decoder would
// reject it anyway, but the previous good snapshot should survive).
func saveSnapshot(eng *ccsp.Engine, path string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".ccspd-snap-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := eng.Save(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
