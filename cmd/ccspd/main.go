// Command ccspd is the distance-serving daemon: it loads (or builds,
// then saves) a preprocessed snapshot of a graph and serves approximate
// shortest-path queries over HTTP/JSON from one shared query engine.
//
// Startup sources (exactly one required):
//
//	ccspd -load warm.snap                       # restore a saved engine: no preprocessing
//	ccspd -graph g.txt                          # build from an edge-list or DIMACS .gr file
//	ccspd -graph g.gr -save warm.snap           # build once, persist for the next restart
//	ccspd -graph g.gr -exec direct              # direct-kernel build: identical answers, seconds not minutes
//
// Serving:
//
//	ccspd -graph g.txt -addr :8080 -timeout 30s -cache 128 -workers 0
//
// Endpoints: the typed query plane POST /v1/query (one api.Request:
// sssp, mssp, apsp, distance, diameter, knearest, source_detection) and
// POST /v1/batch (many requests, one deduped engine batch with
// per-request errors), plus GET /healthz and /v1/stats; the pre-plane
// GET endpoints (/v1/sssp, /v1/mssp, /v1/distance, /v1/diameter) remain
// as deprecated byte-identical shims. Distances are -1 for unreachable
// pairs. The client package (and cmd/ccsp -server) speaks the POST
// plane. SIGINT/SIGTERM during startup aborts a build in
// flight at its next simulator barrier (a partial -save snapshot is never
// left behind: the write is temp-file + rename, and an interrupted build
// never reaches it); during serving it drains in-flight requests, then
// cancels whatever is still running after the drain window, and exits
// cleanly.
//
// Example:
//
//	$ ccspd -graph graph.txt -save warm.snap &
//	$ curl -s localhost:8080/v1/query -d '{"kind":"distance","distance":{"from":0,"to":41}}'
//	{"kind":"distance","distance":{"from":0,"to":41,"distance":12,"reachable":true},...}
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"github.com/congestedclique/ccsp"
	"github.com/congestedclique/ccsp/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ccspd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		graphPath = flag.String("graph", "", "graph file (edge list or DIMACS .gr) to build an engine from")
		loadPath  = flag.String("load", "", "snapshot file to restore a preprocessed engine from")
		savePath  = flag.String("save", "", "write the preprocessed engine to this snapshot file after building")
		eps       = flag.Float64("eps", 0.5, "approximation parameter ε (ignored with -load: the snapshot pins it)")
		workers   = flag.Int("workers", 0, "simulator worker-pool size (0 = GOMAXPROCS; ignored with -load)")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-request query timeout (0 = none)")
		cacheSize = flag.Int("cache", 128, "response cache capacity in entries (negative = disabled)")
		execMode  = flag.String("exec", "simulated", "execution mode: simulated (round accounting) | direct (kernel, identical answers, fast startup; ignored with -load)")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		return fmt.Errorf("unexpected arguments %v (use -graph/-load)", flag.Args())
	}
	exec, err := ccsp.ParseExecution(*execMode)
	if err != nil {
		return err
	}

	// One signal context governs the whole lifecycle: SIGINT/SIGTERM
	// during the (potentially minutes-long) preprocessing build aborts it
	// at the next simulator barrier; during serving it triggers the
	// graceful drain below.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	eng, err := buildEngine(ctx, *graphPath, *loadPath, *savePath,
		ccsp.Options{Epsilon: *eps, Workers: *workers, Execution: exec})
	if err != nil {
		if errors.Is(err, ccsp.ErrCanceled) {
			log.Printf("ccspd: interrupted during startup, exiting (no snapshot written)")
			return nil
		}
		return err
	}
	srv, err := server.New(server.Config{Engine: eng, Timeout: *timeout, CacheSize: *cacheSize})
	if err != nil {
		return err
	}

	// Request contexts derive from serveCtx: if the drain window below
	// expires with queries still running, canceling it stops them at
	// their next barrier instead of leaking CPU-bound runs past exit.
	serveCtx, cancelServe := context.WithCancel(context.Background())
	defer cancelServe()
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return serveCtx },
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("ccspd: serving on %s (n=%d, m=%d)", *addr, eng.Graph().N(), eng.Graph().M())
		errc <- httpSrv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("ccspd: shutting down (draining in-flight queries)")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err = httpSrv.Shutdown(shutCtx)
	cancelServe() // whatever outlived the drain window unwinds now
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		// The doc contract: an expired drain window is still a clean
		// exit - the base-context cancellation above stops the stragglers.
		log.Printf("ccspd: drain window expired; canceled remaining queries")
	case err != nil:
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// buildEngine realizes the startup contract: restore from a snapshot, or
// build from a graph file (optionally persisting the warm engine).
// Canceling ctx aborts a build in flight; the -save snapshot is only
// written after a completed build, atomically.
func buildEngine(ctx context.Context, graphPath, loadPath, savePath string, opts ccsp.Options) (*ccsp.Engine, error) {
	switch {
	case loadPath != "" && graphPath != "":
		return nil, fmt.Errorf("use -graph or -load, not both")
	case loadPath != "":
		if savePath != "" {
			return nil, fmt.Errorf("-save with -load would rewrite an identical snapshot; drop one")
		}
		f, err := os.Open(loadPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		start := time.Now()
		eng, err := ccsp.LoadEngine(ctx, f)
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", loadPath, err)
		}
		log.Printf("ccspd: restored snapshot %s in %v (%d artifacts, %d preprocessing rounds skipped)",
			loadPath, time.Since(start).Round(time.Millisecond),
			len(eng.PreprocessStats().Builds), eng.PreprocessStats().Total.TotalRounds)
		return eng, nil
	case graphPath != "":
		g, err := ccsp.ReadGraphFile(graphPath)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		eng, err := ccsp.NewEngine(ctx, g, opts)
		if err != nil {
			return nil, err
		}
		log.Printf("ccspd: preprocessed %s in %v (%d rounds)",
			graphPath, time.Since(start).Round(time.Millisecond), eng.PreprocessStats().Total.TotalRounds)
		if savePath != "" {
			if err := saveSnapshot(eng, savePath); err != nil {
				return nil, err
			}
			log.Printf("ccspd: saved snapshot to %s", savePath)
		}
		return eng, nil
	default:
		return nil, fmt.Errorf("one of -graph or -load is required")
	}
}

// saveSnapshot writes atomically: temp file + rename, so a crash mid-save
// never leaves a truncated snapshot at the target path (the decoder would
// reject it anyway, but the previous good snapshot should survive).
func saveSnapshot(eng *ccsp.Engine, path string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".ccspd-snap-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := eng.Save(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
