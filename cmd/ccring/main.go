// Command ccring prints the consistent-hash placement of graph IDs
// onto cluster members - the same ring the client.Cluster routes with,
// so deployment tooling can decide which replica should load which
// snapshot before any daemon starts.
//
//	$ ccring -members http://a:8080,http://b:8080,http://c:8080 roads web social
//	roads	http://b:8080
//	web	http://a:8080
//	social	http://b:8080
//
// With -succ k each line lists the owner followed by the next k-1 ring
// successors (the failover order), tab-separated; load the snapshot on
// all of them for k-way redundancy:
//
//	$ ccring -members ... -succ 2 roads
//	roads	http://b:8080	http://c:8080
//
// All participants must agree on -vnodes (clients default to the same
// value), or placement diverges.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/congestedclique/ccsp/api"
	"github.com/congestedclique/ccsp/internal/cluster"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ccring:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		members = flag.String("members", "", "comma-separated replica base URLs (required)")
		vnodes  = flag.Int("vnodes", cluster.DefaultVirtualNodes, "virtual nodes per member (all participants must agree)")
		succ    = flag.Int("succ", 1, "members to print per graph: the owner plus succ-1 ring successors")
	)
	flag.Parse()
	if *members == "" {
		return fmt.Errorf("-members is required")
	}
	if *succ < 1 {
		return fmt.Errorf("-succ must be >= 1")
	}
	var ms []string
	for _, m := range strings.Split(*members, ",") {
		if m = strings.TrimSpace(m); m != "" {
			ms = append(ms, m)
		}
	}
	if len(ms) == 0 {
		return fmt.Errorf("-members is empty")
	}
	graphs := flag.Args()
	if len(graphs) == 0 {
		return fmt.Errorf("no graph IDs given (pass them as arguments)")
	}
	ring := cluster.NewRing(ms, *vnodes)
	for _, g := range graphs {
		if err := api.ValidateGraphID(g); err != nil {
			return err
		}
		succs := ring.Successors(g)
		n := *succ
		if n > len(succs) {
			n = len(succs)
		}
		fmt.Printf("%s\t%s\n", g, strings.Join(succs[:n], "\t"))
	}
	return nil
}
