// Output rendering shared by the local and remote query paths. The
// formats are the historical ones (node-indexed rows for sssp/mssp,
// bare rows for apsp, "v: n(d=..,via=..)" neighbor lists), so local
// engine runs, snapshot runs and -server runs print identically and
// can be diffed line for line.
package main

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/congestedclique/ccsp"
	"github.com/congestedclique/ccsp/api"
)

// distStr renders one distance, accepting both conventions: the
// in-process ccsp.Unreachable sentinel and the wire's -1.
func distStr(d int64) string {
	if d < 0 || d >= ccsp.Unreachable {
		return "inf"
	}
	return strconv.FormatInt(d, 10)
}

// printVector prints "v<TAB>dist" rows (sssp).
func printVector(dist []int64) {
	for v, d := range dist {
		fmt.Printf("%d\t%s\n", v, distStr(d))
	}
}

// printIndexedMatrix prints "v<TAB>d1<TAB>d2..." rows (mssp: one column
// per sorted source).
func printIndexedMatrix(dist [][]int64) {
	for v, row := range dist {
		parts := make([]string, len(row))
		for i, d := range row {
			parts[i] = distStr(d)
		}
		fmt.Printf("%d\t%s\n", v, strings.Join(parts, "\t"))
	}
}

// printMatrix prints bare tab-joined rows (apsp).
func printMatrix(dist [][]int64) {
	for _, row := range dist {
		parts := make([]string, len(row))
		for i, d := range row {
			parts[i] = distStr(d)
		}
		fmt.Println(strings.Join(parts, "\t"))
	}
}

// printNeighborRows prints "v: n(d=..,via=..)" lists (knearest) or
// "v: n(d=..,hops=..)" (sourcedetect, which tracks no witnesses).
func printNeighborRows(lists [][]api.Neighbor, withVia bool) {
	for v, nbs := range lists {
		fmt.Printf("%d:", v)
		for _, e := range nbs {
			if withVia {
				fmt.Printf(" %d(d=%d,via=%d)", e.Node, e.Dist, e.FirstHop)
			} else {
				fmt.Printf(" %d(d=%d,hops=%d)", e.Node, e.Dist, e.Hops)
			}
		}
		fmt.Println()
	}
}

// wireLists converts in-process neighbor lists to the wire type so the
// one-shot path shares the printers.
func wireLists(lists [][]ccsp.Neighbor) [][]api.Neighbor {
	out := make([][]api.Neighbor, len(lists))
	for v, nbs := range lists {
		row := make([]api.Neighbor, len(nbs))
		for i, nb := range nbs {
			row[i] = api.Neighbor{Node: nb.Node, Dist: nb.Dist, Hops: nb.Hops, FirstHop: nb.FirstHop}
		}
		out[v] = row
	}
	return out
}

// statsLine renders wire stats in the ccsp.Stats one-line format (the
// charged count is rounds minus simulated rounds, so the wire core
// reconstructs the line exactly).
func statsLine(s *api.Stats, n int) string {
	if s == nil {
		return "(no stats)"
	}
	return ccsp.Stats{Nodes: n, TotalRounds: s.TotalRounds, SimRounds: s.SimRounds,
		Messages: s.Messages, Words: s.Words}.String()
}

// responseNodes derives the answering graph's node count from a
// response's own per-node vectors; 0 when the kind carries none
// (distance, diameter) and the caller must fall back to /healthz.
func responseNodes(resp *api.Response) int {
	switch resp.Kind {
	case api.KindSSSP:
		if resp.SSSP != nil {
			return len(resp.SSSP.Dist)
		}
	case api.KindMSSP:
		if resp.MSSP != nil {
			return len(resp.MSSP.Dist)
		}
	case api.KindAPSP:
		if resp.APSP != nil {
			return len(resp.APSP.Dist)
		}
	case api.KindKNearest:
		if resp.KNearest != nil {
			return len(resp.KNearest.Neighbors)
		}
	case api.KindSourceDetection:
		if resp.SourceDetection != nil {
			return len(resp.SourceDetection.Detected)
		}
	}
	return 0
}

// printResponse renders one api.Response in the historical per-algorithm
// format: result rows (suppressed by -quiet, except the one-line
// diameter/distance answers), then the stats line.
func printResponse(resp *api.Response, n int, quiet bool) {
	switch resp.Kind {
	case api.KindSSSP:
		if !quiet {
			printVector(resp.SSSP.Dist)
		}
	case api.KindMSSP:
		if !quiet {
			printIndexedMatrix(resp.MSSP.Dist)
		}
	case api.KindAPSP:
		if !quiet {
			printMatrix(resp.APSP.Dist)
		}
	case api.KindDistance:
		d := resp.Distance
		fmt.Printf("distance %d -> %d: %s\n", d.From, d.To, distStr(d.Distance))
	case api.KindDiameter:
		fmt.Printf("diameter estimate: %d\n", resp.Diameter.Estimate)
	case api.KindKNearest:
		if !quiet {
			printNeighborRows(resp.KNearest.Neighbors, true)
		}
	case api.KindSourceDetection:
		if !quiet {
			printNeighborRows(resp.SourceDetection.Detected, false)
		}
	}
	fmt.Println(statsLine(resp.Stats, n))
}
