// Batch mode: parse a query file into typed api.Requests and answer the
// whole set through the query plane - Engine.Batch locally (one
// preprocessing for the entire batch, the paper's amortization claim) or
// client.Batch against a daemon (one POST /v1/batch).
package main

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/congestedclique/ccsp"
	"github.com/congestedclique/ccsp/api"
)

// batchQuery is one parsed line of a batch file.
type batchQuery struct {
	line int
	text string
	req  api.Request
}

// parseBatchFile reads the query lines of path ("-" for stdin).
func parseBatchFile(path string) ([]batchQuery, error) {
	in := os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		in = f
	}
	var queries []batchQuery
	sc := bufio.NewScanner(in)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		req, err := parseQueryLine(strings.Fields(text))
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, line, err)
		}
		queries = append(queries, batchQuery{line: line, text: text, req: req})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return queries, nil
}

// parseQueryLine translates one batch line into a typed request.
func parseQueryLine(fields []string) (api.Request, error) {
	switch fields[0] {
	case "mssp":
		if len(fields) != 2 {
			return api.Request{}, fmt.Errorf("want 'mssp s1,s2,...'")
		}
		srcs, err := parseSources(fields[1])
		if err != nil {
			return api.Request{}, err
		}
		return api.Request{Kind: api.KindMSSP, MSSP: &api.MSSPParams{Sources: srcs}}, nil
	case "sssp":
		if len(fields) != 2 {
			return api.Request{}, fmt.Errorf("want 'sssp src'")
		}
		s, err := strconv.Atoi(fields[1])
		if err != nil {
			return api.Request{}, err
		}
		return api.Request{Kind: api.KindSSSP, SSSP: &api.SSSPParams{Source: s}}, nil
	case "apsp":
		if len(fields) != 1 {
			return api.Request{}, fmt.Errorf("want 'apsp' with no arguments")
		}
		return api.Request{Kind: api.KindAPSP}, nil
	case "apsp3":
		if len(fields) != 1 {
			return api.Request{}, fmt.Errorf("want 'apsp3' with no arguments")
		}
		return api.Request{Kind: api.KindAPSP, APSP: &api.APSPParams{Variant: api.APSPWeighted3}}, nil
	case "distance":
		if len(fields) != 3 {
			return api.Request{}, fmt.Errorf("want 'distance from to'")
		}
		from, err := strconv.Atoi(fields[1])
		if err != nil {
			return api.Request{}, err
		}
		to, err := strconv.Atoi(fields[2])
		if err != nil {
			return api.Request{}, err
		}
		return api.Request{Kind: api.KindDistance, Distance: &api.DistanceParams{From: from, To: to}}, nil
	case "diameter":
		if len(fields) != 1 {
			return api.Request{}, fmt.Errorf("want 'diameter' with no arguments")
		}
		return api.Request{Kind: api.KindDiameter}, nil
	case "knearest":
		if len(fields) != 2 {
			return api.Request{}, fmt.Errorf("want 'knearest k'")
		}
		k, err := strconv.Atoi(fields[1])
		if err != nil {
			return api.Request{}, err
		}
		return api.Request{Kind: api.KindKNearest, KNearest: &api.KNearestParams{K: k}}, nil
	case "sourcedetect":
		if len(fields) != 4 {
			return api.Request{}, fmt.Errorf("want 'sourcedetect s1,s2,... d k'")
		}
		srcs, err := parseSources(fields[1])
		if err != nil {
			return api.Request{}, err
		}
		d, err := strconv.Atoi(fields[2])
		if err != nil {
			return api.Request{}, err
		}
		k, err := strconv.Atoi(fields[3])
		if err != nil {
			return api.Request{}, err
		}
		return api.Request{Kind: api.KindSourceDetection,
			SourceDetection: &api.SourceDetectionParams{Sources: srcs, D: d, K: k}}, nil
	default:
		return api.Request{}, fmt.Errorf("unknown query %q", fields[0])
	}
}

// printBatchResponses renders each answer in input order and returns the
// summed query rounds. The first failed response aborts with its source
// line, after every answer before it has printed.
func printBatchResponses(path string, queries []batchQuery, resps []api.Response, n int, quiet bool) (int, error) {
	// Graph-scoped answers may come from a graph of a different size
	// than the daemon's default (whose shape is all /healthz reports),
	// so prefer a node count derived from the batch's own per-node
	// vectors; n stays the last-resort fallback for batches made up
	// entirely of kinds that carry none (distance, diameter).
	batchN := n
	for i := range resps {
		if rn := responseNodes(&resps[i]); rn != 0 {
			batchN = rn
			break
		}
	}
	queryRounds := 0
	for i, q := range queries {
		resp := resps[i]
		if resp.Error != nil {
			return 0, fmt.Errorf("%s:%d: %s", path, q.line, resp.Error)
		}
		rn := responseNodes(&resp)
		if rn == 0 {
			rn = batchN
		}
		printResponse(&resp, rn, quiet)
		fmt.Printf("query %q: %s\n", q.text, statsLine(resp.Stats, rn))
		if resp.Stats != nil {
			queryRounds += resp.Stats.TotalRounds
		}
	}
	return queryRounds, nil
}

// runBatchLocal preprocesses the graph once (or reuses a -load'ed
// engine) and answers every query line through Engine.Batch, reporting
// per-query stats and the amortization summary: total rounds actually
// paid vs what one-shot calls would have cost.
func runBatchLocal(ctx context.Context, g *ccsp.Graph, eng *ccsp.Engine, opts ccsp.Options, path string, quiet bool, savePath string) error {
	queries, err := parseBatchFile(path)
	if err != nil {
		return err
	}
	if eng == nil {
		if eng, err = ccsp.NewEngine(ctx, g, opts); err != nil {
			return err
		}
	}
	pre := eng.PreprocessStats()
	fmt.Printf("preprocess: %s\n", pre.Total)
	for _, b := range pre.Builds {
		fmt.Printf("  %s eps=%g beta=%d edges=%d: %s\n", b.Kind, b.Eps, b.Beta, b.Edges, b.Stats)
	}

	reqs := make([]api.Request, len(queries))
	for i, q := range queries {
		reqs[i] = q.req
	}
	resps, err := eng.Batch(ctx, reqs)
	if err != nil {
		return err
	}
	queryRounds, err := printBatchResponses(path, queries, resps, g.N(), quiet)
	if err != nil {
		return err
	}
	pre = eng.PreprocessStats() // lazy artifacts may have been added
	fmt.Printf("batch: %d queries, %d preprocessing rounds (%d builds) + %d query rounds = %d total\n",
		len(queries), pre.Total.TotalRounds, len(pre.Builds), queryRounds, pre.Total.TotalRounds+queryRounds)
	return saveEngine(eng, savePath, false)
}

// runBatchRemote ships the whole batch to a daemon (one POST /v1/batch)
// or a cluster (one sub-batch per owning shard, merged in order).
func runBatchRemote(ctx context.Context, rc remote, graphID string, n int, path string, quiet bool) error {
	queries, err := parseBatchFile(path)
	if err != nil {
		return err
	}
	reqs := make([]api.Request, len(queries))
	for i, q := range queries {
		reqs[i] = q.req
		reqs[i].Graph = graphID
	}
	resps, err := rc.Batch(ctx, reqs)
	if err != nil {
		return err
	}
	queryRounds, err := printBatchResponses(path, queries, resps, n, quiet)
	if err != nil {
		return err
	}
	fmt.Printf("batch: %d queries, %d query rounds (preprocessing amortized server-side)\n",
		len(queries), queryRounds)
	return nil
}
